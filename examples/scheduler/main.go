// Scheduler: the slide-16/17 story in isolation. A heavily used testbed
// makes whole-cluster tests nearly impossible to place; the external
// scheduler polls testbed availability, defers with exponential backoff,
// avoids peak hours and same-site concurrency, and marks builds unstable
// when their OAR job loses the race.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"

	"repro/internal/ci"
	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func main() {
	clock := simclock.New(9)
	tb := testbed.Default()
	oarSrv := oar.NewServer(clock, tb)
	ciSrv := ci.NewServer(clock, 4)
	scheduler := sched.New(clock, oarSrv, ciSrv, sched.DefaultConfig())

	// A CI job that needs ALL of the sol cluster for 30 minutes.
	ciSrv.CreateJob(&ci.Job{Name: "disk/sol", Script: func(bc *ci.BuildContext) ci.Outcome {
		j, _ := oarSrv.Submit("cluster='sol'/nodes=ALL,walltime=1",
			oar.SubmitOptions{User: "jenkins", Immediate: true})
		if j.State != oar.Running {
			return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
		}
		clock.After(30*simclock.Minute, func() { oarSrv.Release(j.ID) })
		return ci.Outcome{Result: ci.Success, Duration: 30 * simclock.Minute}
	}})
	scheduler.Register(&sched.Spec{
		Name: "disk/sol", JobName: "disk/sol", Cluster: "sol", Site: "sophia",
		Kind:    sched.HardwareCentric,
		Request: "cluster='sol'/nodes=ALL,walltime=1", Period: simclock.Day,
	})

	// Users keep grabbing sol nodes: 16 of 20 nodes for the next ~30 hours.
	oarSrv.Submit("cluster='sol'/nodes=16,walltime=30", oar.SubmitOptions{User: "alice"})

	scheduler.Start()
	clock.RunFor(2 * simclock.Day)

	fmt.Println("scheduler decision log (first 14 entries):")
	for i, d := range scheduler.Decisions() {
		if i >= 14 {
			break
		}
		extra := ""
		if d.Backoff > 0 {
			extra = fmt.Sprintf(" (next retry in %v)", d.Backoff)
		}
		fmt.Printf("  %-12s %-10s %s%s\n", d.At, d.Spec, d.Action, extra)
	}
	fmt.Println("\ndecision totals:")
	for _, ac := range scheduler.DecisionCountsSorted() {
		fmt.Printf("  %-24s %d\n", ac.Action, ac.Count)
	}
	for _, st := range scheduler.Stats() {
		fmt.Printf("\nspec %s: %d triggers, %d completed runs, %d unstable, backoff now %v\n",
			st.Name, st.Triggers, st.Runs, st.Unstables, st.Backoff)
	}
	fmt.Println("\nnote the exponential backoff sequence while the cluster is full,")
	fmt.Println("and the reset once the user job ends and the test finally runs.")
}
