// Faultcampaign: the slide-22 experiment — run the full framework for
// several simulated weeks on a testbed with a realistic fault backlog and
// ongoing entropy, and reproduce the headline: "118 bugs filed (inc. 84
// already fixed)", broken down by test family.
//
//	go run ./examples/faultcampaign [-weeks 8]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/simclock"
)

func main() {
	weeks := flag.Int("weeks", 8, "simulated weeks")
	flag.Parse()

	f := core.New(core.PaperCampaignConfig(2017))
	f.Start()
	fmt.Printf("testbed: %s\n", f.TB.Stats())
	fmt.Printf("running %d simulated weeks of throughout testing...\n\n", *weeks)

	for w := 1; w <= *weeks; w++ {
		f.RunFor(simclock.Week)
		st := f.Bugs.Stats()
		fmt.Printf("week %2d: %s  (%d faults still latent)\n",
			w, st, f.Faults.ActiveCount())
	}

	fmt.Println("\nbugs by test family (who earns their keep):")
	for _, fc := range f.Bugs.ByFamily() {
		fmt.Printf("  %-16s %3d\n", fc.Family, fc.Count)
	}

	fmt.Println("\nexample open bugs:")
	for i, b := range f.Bugs.OpenBugs() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", b)
	}
	fmt.Printf("\npaper reports: 118 bugs filed (inc. 84 already fixed)\n")
	fmt.Printf("this campaign: %s\n", f.Bugs.Stats())
}
