// Quickstart: assemble the whole testing framework, inject one silent
// hardware fault, run two simulated days of operations, and watch the
// framework detect it, file a deduplicated bug, and the operators fix it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simclock"
)

func main() {
	// A quiet configuration: no background entropy, so the one fault we
	// inject is the whole story.
	cfg := core.DefaultConfig()
	cfg.InitialFaults = 0
	cfg.FaultMeanInterval = 0
	cfg.UserJobInterval = 0
	cfg.EnvMatrixPeriod = 0
	cfg.OperatorMinAge = 6 * simclock.Hour

	f := core.New(cfg)
	f.Start()
	fmt.Printf("testbed: %s\n", f.TB.Stats())
	fmt.Printf("test configurations: %d simple jobs + 448 matrix cells\n\n", len(f.Tests))

	// Someone re-enabled C-states in the BIOS of one node — the classic
	// silent performance bug from the paper's slide 13.
	node := "taurus-7.lyon"
	f.Faults.InjectNode(faults.CStatesOn, node)
	fmt.Printf("[day 0] injected silent fault: C-states re-enabled on %s\n", node)

	f.RunFor(2 * simclock.Day)

	bug := f.Bugs.BySignature("cstates-on:" + node)
	if bug == nil {
		fmt.Println("bug not detected (unexpected)")
		return
	}
	fmt.Printf("[%s] bug #%d filed by the %s test family: %s\n",
		bug.FiledAt, bug.ID, bug.Family, bug.Title)
	fmt.Printf("         detected %d times (deduplicated into one report)\n", bug.Occurrences)
	if bug.State.String() == "fixed" {
		fmt.Printf("[%s] operators fixed it; node verified clean again\n", bug.FixedAt)
	}
	rep, _ := f.Checker.CheckNode(node)
	fmt.Printf("final g5k-checks verdict: %s\n", rep.Summary())
	fmt.Printf("\n%s\n", f.Summary())
}
