// Nodecheck: the slide-7 workflow in isolation — describe resources in the
// Reference API, let reality drift (broken RAM, disk firmware update,
// cables swapped by mistake), and verify the description with the
// g5k-checks equivalent. Also demonstrates the archived-versions feature
// ("state of the testbed 6 months ago?").
//
//	go run ./examples/nodecheck
package main

import (
	"fmt"
	"sort"

	"repro/internal/checks"
	"repro/internal/faults"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func main() {
	clock := simclock.New(7)
	tb := testbed.Default()
	ref := refapi.NewStore(tb, clock.Now())
	inj := faults.NewInjector(clock, tb)
	checker := checks.NewChecker(clock, tb, ref)

	fmt.Printf("captured Reference API v%d for %s\n\n", ref.Current().Version, tb.Stats())

	// Reality drifts.
	inj.InjectNode(faults.RAMLoss, "griffon-12.nancy")
	inj.InjectNode(faults.DiskFirmwareDrift, "griffon-30.nancy")
	inj.InjectCablingSwap("griffon-7.nancy", "griffon-8.nancy")
	fmt.Println("three things silently went wrong on the griffon cluster...")

	reports, failing, err := checker.CheckCluster("griffon")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ng5k-checks over %d nodes found %d drifted nodes:\n", len(reports), len(failing))
	for _, r := range reports {
		if r.OK {
			continue
		}
		fmt.Printf("  %s\n", r.Summary())
		for _, m := range r.Mismatches {
			fmt.Printf("    %s\n", m)
		}
	}

	// Homogeneity view: one drifted firmware splits the cluster.
	byFW, _ := checker.HomogeneityReport("griffon", func(inv testbed.Inventory) string {
		return inv.Disks[0].Firmware
	})
	fmt.Printf("\ndisk firmware homogeneity on griffon: %d distinct versions\n", len(byFW))
	firmwares := make([]string, 0, len(byFW))
	for fw := range byFW {
		firmwares = append(firmwares, fw)
	}
	sort.Strings(firmwares)
	for _, fw := range firmwares {
		fmt.Printf("  %-14s %d node(s)\n", fw, len(byFW[fw]))
	}

	// Archive: fix the RAM, re-capture, and ask for the old state.
	clock.RunUntil(30 * simclock.Day)
	inj.FixBySignature("ram-loss:griffon-12.nancy")
	inv := tb.Node("griffon-12.nancy").Inv.Clone()
	ref.Update(clock.Now(), "griffon-12.nancy", inv)
	fmt.Printf("\nafter repair: Reference API now at v%d\n", ref.Current().Version)
	old := ref.At(simclock.Day)
	fmt.Printf("description as of day 1 (v%d): griffon-12 RAM = %d GB\n",
		old.Version, old.Nodes["griffon-12.nancy"].Inv.RAMGB)
	cur, _ := ref.Describe("griffon-12.nancy")
	fmt.Printf("description today        (v%d): griffon-12 RAM = %d GB\n",
		ref.Current().Version, cur.Inv.RAMGB)
}
