// Regression: the paper's future-work extension (slide 23: "Adding real
// user experiments as regression tests?") in action. A researcher donates
// the disk-IO experiment behind one of their figures; the framework replays
// it weekly. When the cluster's disks silently change firmware, the replay
// regresses by ~28 % and a bug is filed before any user wastes a paper on
// wrong numbers.
//
//	go run ./examples/regression
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/suites"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.InitialFaults = 0
	cfg.FaultMeanInterval = 0
	cfg.UserJobInterval = 0
	cfg.EnvMatrixPeriod = 0
	cfg.OperatorMinAge = simclock.Day
	cfg.RetainBuildLogs = true // this walkthrough prints the failing build's log
	f := core.New(cfg)

	exp := &suites.Experiment{
		Name:     "alice-europar16-fig5",
		Owner:    "alice",
		Cluster:  "suno",
		Nodes:    2,
		Env:      "jessie-x64-std",
		Workload: suites.WorkloadDiskIO,
		// The value Alice measured when the figure was made.
		Baseline:  140, // MB/s on suno's 10k-rpm disks
		Tolerance: 0.10,
		Period:    simclock.Day,
	}
	if err := f.AddExperiments(exp); err != nil {
		panic(err)
	}
	f.Start()
	fmt.Printf("registered user experiment %q (baseline %.0f MB/s ±%.0f%%)\n\n",
		exp.Name, exp.Baseline, 100*exp.Tolerance)

	f.RunFor(simclock.Day)
	last := f.CI.LastCompleted("regression/" + exp.Name)
	fmt.Printf("[day 1] first replay: %s\n", last.Result)

	// A maintenance pass flashes different disk firmware on suno.
	for _, n := range f.TB.Cluster("suno").Nodes {
		f.Faults.InjectNode(faults.DiskFirmwareDrift, n.Name)
	}
	fmt.Println("[day 1] maintenance flashed a different disk firmware on all of suno...")

	f.RunFor(3 * simclock.Day)
	bug := f.Bugs.BySignature("disk-firmware-drift:suno-1.sophia")
	if bug == nil {
		for _, b := range f.Bugs.All() {
			if b.Family == "regression" {
				bug = b
				break
			}
		}
	}
	if bug == nil {
		fmt.Println("no bug filed (unexpected)")
		return
	}
	fmt.Printf("[%s] bug #%d filed by the %s family: %s\n", bug.FiledAt, bug.ID, bug.Family, bug.Title)
	fmt.Printf("         (the regression replay and the disk/refapi families race to\n")
	fmt.Printf("          detect the same fault; deduplication keeps a single report)\n")
	for _, b := range f.CI.Builds("regression/" + exp.Name) {
		if b.Result.String() == "FAILURE" {
			fmt.Printf("\nthe failing replay build #%d logged:\n", b.Number)
			for _, line := range b.Log {
				fmt.Printf("    %s\n", line)
			}
			break
		}
	}
	fmt.Printf("\nbug state now: %s (operators %s)\n", bug.State,
		map[bool]string{true: "already repaired the firmware", false: "still on it"}[bug.State.String() == "fixed"])
}
