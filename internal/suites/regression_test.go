package suites

import (
	"strings"
	"testing"

	"repro/internal/ci"
	"repro/internal/faults"
	"repro/internal/testbed"
)

func diskExperiment(cluster string) *Experiment {
	return &Experiment{
		Name:      "io-paper-fig3",
		Owner:     "alice",
		Cluster:   cluster,
		Nodes:     2,
		Env:       "jessie-x64-std",
		Workload:  WorkloadDiskIO,
		Baseline:  110, // 7200 rpm HDD expectation
		Tolerance: 0.10,
	}
}

func TestExperimentValidation(t *testing.T) {
	tb := testbed.Default()
	good := diskExperiment("suno")
	good.Baseline = ExpectedBaseline(tb, good)
	if err := good.Validate(tb); err != nil {
		t.Fatal(err)
	}
	bad := []*Experiment{
		{},
		{Name: "x", Cluster: "nimbus", Nodes: 1, Env: "jessie-x64-std", Workload: WorkloadDiskIO, Tolerance: 0.1},
		{Name: "x", Cluster: "suno", Nodes: 500, Env: "jessie-x64-std", Workload: WorkloadDiskIO, Tolerance: 0.1},
		{Name: "x", Cluster: "suno", Nodes: 1, Env: "win311", Workload: WorkloadDiskIO, Tolerance: 0.1},
		{Name: "x", Cluster: "suno", Nodes: 1, Env: "jessie-x64-std", Workload: "quantum", Tolerance: 0.1},
		{Name: "x", Cluster: "suno", Nodes: 1, Env: "jessie-x64-std", Workload: WorkloadMPI, Tolerance: 0.1}, // no IB on suno
		{Name: "x", Cluster: "suno", Nodes: 1, Env: "jessie-x64-std", Workload: WorkloadDiskIO, Tolerance: 0},
	}
	for i, e := range bad {
		if err := e.Validate(tb); err == nil {
			t.Errorf("bad experiment %d accepted", i)
		}
	}
	if _, err := RegressionTests(tb, bad[1:2]); err == nil {
		t.Error("RegressionTests accepted invalid experiment")
	}
}

func TestExpectedBaselines(t *testing.T) {
	tb := testbed.Default()
	if got := ExpectedBaseline(tb, diskExperiment("suno")); got != 140 {
		t.Errorf("suno (10k rpm) disk baseline = %v, want 140", got)
	}
	if got := ExpectedBaseline(tb, diskExperiment("paravance")); got != 430 {
		t.Errorf("paravance (SSD) disk baseline = %v, want 430", got)
	}
	cpu := &Experiment{Workload: WorkloadCPU}
	if got := ExpectedBaseline(tb, cpu); got != 1.0 {
		t.Errorf("cpu baseline = %v", got)
	}
}

func runRegression(t *testing.T, ctx *Context, e *Experiment) ci.Outcome {
	t.Helper()
	e.Baseline = ExpectedBaseline(ctx.TB, e)
	tests, err := RegressionTests(ctx.TB, []*Experiment{e})
	if err != nil {
		t.Fatal(err)
	}
	if tests[0].Family != "regression" {
		t.Fatalf("family = %q", tests[0].Family)
	}
	return runTest(ctx, tests[0])
}

func TestRegressionPassesOnHealthyTestbed(t *testing.T) {
	ctx := newContext(301)
	out := runRegression(t, ctx, diskExperiment("suno"))
	if out.Result != ci.Success {
		t.Fatalf("healthy replay failed: %v", out.Log)
	}
	if ctx.OAR.BusyNodes() != 0 {
		t.Fatal("experiment leaked nodes")
	}
}

func TestRegressionCatchesDiskDrift(t *testing.T) {
	ctx := newContext(302)
	// Drift the firmware of the first two suno nodes (the ones OAR picks).
	ctx.Faults.InjectNode(faults.DiskFirmwareDrift, "suno-1.sophia")
	ctx.Faults.InjectNode(faults.DiskFirmwareDrift, "suno-2.sophia")
	out := runRegression(t, ctx, diskExperiment("suno"))
	if out.Result != ci.Failure {
		t.Fatalf("28%% disk regression not caught: %v", out.Log)
	}
	if !strings.HasPrefix(out.BugSignatures[0], "disk-firmware-drift:suno-") {
		t.Fatalf("sigs = %v", out.BugSignatures)
	}
}

func TestRegressionCatchesCStates(t *testing.T) {
	ctx := newContext(303)
	for _, n := range ctx.TB.Cluster("taurus").Nodes {
		ctx.Faults.InjectNode(faults.CStatesOn, n.Name)
	}
	e := &Experiment{
		Name: "hpl-variance", Owner: "bob", Cluster: "taurus", Nodes: 1,
		Env: "jessie-x64-std", Workload: WorkloadCPU, Tolerance: 0.5,
	}
	out := runRegression(t, ctx, e)
	if out.Result != ci.Failure {
		t.Fatalf("jitter regression not caught: %v", out.Log)
	}
	if !strings.HasPrefix(out.BugSignatures[0], "cstates-on:taurus-") {
		t.Fatalf("sigs = %v", out.BugSignatures)
	}
}

func TestRegressionCatchesOFED(t *testing.T) {
	ctx := newContext(304)
	for _, n := range ctx.TB.Cluster("taurus").Nodes {
		ctx.Faults.InjectNode(faults.OFEDFlaky, n.Name)
	}
	e := &Experiment{
		Name: "ring-latency", Owner: "carol", Cluster: "taurus", Nodes: 4,
		Env: "jessie-x64-min", Workload: WorkloadMPI, Tolerance: 0.2,
	}
	// OFED failures are probabilistic (50 % per node per start): with 4
	// nodes a few replays are virtually certain to trip it.
	failed := false
	for i := 0; i < 6 && !failed; i++ {
		out := runRegression(t, ctx, e)
		failed = out.Result == ci.Failure
	}
	if !failed {
		t.Fatal("OFED regression never caught in 6 replays")
	}
}

func TestRelativeDeviation(t *testing.T) {
	if d := relativeDeviation(90, 100); d != 0.1 {
		t.Fatalf("dev = %v", d)
	}
	if d := relativeDeviation(110, 100); d < 0.0999 || d > 0.1001 {
		t.Fatalf("dev = %v", d)
	}
	if d := relativeDeviation(5, 0); d != 0 {
		t.Fatalf("zero baseline dev = %v", d)
	}
}
