package suites

// Service-health families (slide 21: "Testbed status", "Basic
// functionality of command-line tools, REST API", "Other important
// services"): oarstate, cmdline, sidapi, console, kavlan, kwapi.

import (
	"fmt"

	"repro/internal/kavlan"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// probeService rolls n simulated requests against a site service and
// reports how many failed.
func probeService(ctx *Context, site, service string, n int) int {
	fails := 0
	for i := 0; i < n; i++ {
		if ctx.Faults.ServiceFails(site, service) {
			fails++
		}
	}
	return fails
}

// oarstateTests: one per site. Verifies that the site's OAR answers and
// that its nodes are not quietly rotting in Suspected/Dead state.
func oarstateTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, site := range tb.Sites {
		site := site
		out = append(out, &Test{
			Family:  "oarstate",
			Name:    "oarstate/" + site.Name,
			Site:    site.Name,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("site='%s'/nodes=1,walltime=0:30", site.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 2 * simclock.Minute
				if fails := probeService(ctx, site.Name, "oar", 10); fails > 0 {
					v.fail(fmt.Sprintf("service-flaky:%s/oar", site.Name),
						"%d/10 oarstat calls failed", fails)
				}
				nodes := site.Nodes()
				down := 0
				for _, n := range nodes {
					if n.State != testbed.Alive {
						down++
					}
				}
				if down*10 > len(nodes) { // >10% of the site down
					v.fail("oarstate-degraded:"+site.Name,
						"%d/%d nodes not alive", down, len(nodes))
				}
				v.logf("%s: %d/%d nodes alive", site.Name, len(nodes)-down, len(nodes))
				return v
			},
		})
	}
	return out
}

// cmdlineTests: one per site. Exercises the basic command-line tools
// (oarsub/oarstat/kadeploy front-ends) against the site services.
func cmdlineTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, site := range tb.Sites {
		site := site
		out = append(out, &Test{
			Family:  "cmdline",
			Name:    "cmdline/" + site.Name,
			Site:    site.Name,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("site='%s'/nodes=1,walltime=1", site.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 10 * simclock.Minute
				for _, svc := range []string{"oar", "kadeploy"} {
					if fails := probeService(ctx, site.Name, svc, 8); fails > 0 {
						v.fail(fmt.Sprintf("service-flaky:%s/%s", site.Name, svc),
							"%d/8 %s CLI invocations failed", fails, svc)
					}
				}
				v.logf("cmdline tools OK at %s", site.Name)
				return v
			},
		})
	}
	return out
}

// sidapiTests: one per site. Exercises the site's REST API (the paper's
// sidapi covers the Grid'5000 API stack).
func sidapiTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, site := range tb.Sites {
		site := site
		out = append(out, &Test{
			Family:  "sidapi",
			Name:    "sidapi/" + site.Name,
			Site:    site.Name,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("site='%s'/nodes=1,walltime=0:30", site.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 5 * simclock.Minute
				if fails := probeService(ctx, site.Name, "api", 12); fails > 0 {
					v.fail(fmt.Sprintf("service-flaky:%s/api", site.Name),
						"%d/12 REST calls failed", fails)
				}
				// The API must serve a description for every node of the site.
				for _, n := range site.Nodes() {
					if _, err := ctx.Ref.Describe(n.Name); err != nil {
						v.fail("refapi-missing:"+n.Name, "%v", err)
					}
				}
				v.logf("REST API OK at %s", site.Name)
				return v
			},
		})
	}
	return out
}

// consoleTests: one per cluster. Checks that the serial console of a node
// is usable (operators depend on it to debug boot problems) and that the
// console service answers.
func consoleTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "console",
			Name:    "console/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=0:30", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 3 * simclock.Minute
				if fails := probeService(ctx, cl.Site, "console", 4); fails > 0 {
					v.fail(fmt.Sprintf("service-flaky:%s/console", cl.Site),
						"%d/4 console service calls failed", fails)
				}
				for _, name := range job.Nodes {
					if !ctx.Faults.ConsoleWorks(name) {
						v.fail("console-broken:"+name, "serial console unusable on %s", name)
					}
				}
				v.logf("console OK on %v", job.Nodes)
				return v
			},
		})
	}
	return out
}

// kavlanTests: one per site. Moves two nodes into a local VLAN, verifies
// the isolation semantics in both directions, and restores the default
// VLAN.
func kavlanTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, site := range tb.Sites {
		site := site
		out = append(out, &Test{
			Family:  "kavlan",
			Name:    "kavlan/" + site.Name,
			Site:    site.Name,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("site='%s'/nodes=3,walltime=1", site.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 5 * simclock.Minute
				vl := ctx.VLAN.FindVLAN(kavlan.Local, site.Name)
				if vl == nil {
					v.fail("kavlan-pool:"+site.Name, "no local VLAN available")
					return v
				}
				a, b, outside := job.Nodes[0], job.Nodes[1], job.Nodes[2]
				defer func() {
					// Always restore, even on failure paths.
					ctx.VLAN.SetNodes(kavlan.DefaultID, []string{a, b}) //nolint:errcheck
				}()
				if _, err := ctx.VLAN.SetNodes(vl.ID, []string{a, b}); err != nil {
					v.fail(fmt.Sprintf("service-flaky:%s/kavlan", site.Name),
						"VLAN reconfiguration failed: %v", err)
					return v
				}
				if ok, _ := ctx.VLAN.Reachable(a, b); !ok {
					v.fail("kavlan-semantics:"+site.Name, "members cannot reach each other")
				}
				if ok, _ := ctx.VLAN.Reachable(outside, a); ok {
					v.fail("kavlan-semantics:"+site.Name, "local VLAN reachable from outside")
				}
				v.logf("kavlan isolation verified at %s with %v", site.Name, job.Nodes[:2])
				return v
			},
		})
	}
	return out
}

// kwapiTests: one per site. Verifies the monitoring service: probe
// liveness at ≈1 Hz, query health, and correct power attribution (a
// cabling mistake sends a node's consumption to another node's series).
func kwapiTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, site := range tb.Sites {
		site := site
		out = append(out, &Test{
			Family:  "kwapi",
			Name:    "kwapi/" + site.Name,
			Site:    site.Name,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("site='%s'/nodes=1,walltime=1", site.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 6 * simclock.Minute
				node := job.Nodes[0]
				now := ctx.Clock.Now()
				from := now - 2*simclock.Minute
				if from < 0 {
					from = 0
				}
				ss, err := ctx.Monitor.Query(monitor.MetricPowerW, node, from, now)
				if err != nil {
					v.fail(fmt.Sprintf("service-flaky:%s/kwapi", site.Name),
						"power query failed: %v", err)
					return v
				}
				if err := monitor.CheckRate(ss); err != nil {
					v.fail(fmt.Sprintf("kwapi-gaps:%s", site.Name), "probe gaps: %v", err)
				}
				// Attribution check across the whole site: the wiring
				// database must point each series at its own node.
				for _, n := range site.Nodes() {
					if got := ctx.Monitor.Attribution(n.Name); got != n.Name {
						v.fail(cablingSignature(n.Name, n.Inv.NICs[0].SwitchPort),
							"power of %s is measured on %s's probe", n.Name, got)
					}
				}
				v.logf("kwapi OK at %s (%d samples)", site.Name, len(ss))
				return v
			},
		})
	}
	return out
}
