package suites

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/refapi"
)

// SignatureForDiff maps a description mismatch onto the bug signature of
// the underlying problem, in the same namespace the fault injector uses —
// that is what lets the operator model (internal/core) locate and fix the
// physical cause when the corresponding bug is closed.
func SignatureForDiff(d refapi.Difference) string {
	switch {
	case strings.HasPrefix(d.Field, "disks[") && strings.HasSuffix(d.Field, ".firmware"):
		return "disk-firmware-drift:" + d.Node
	case strings.HasPrefix(d.Field, "disks[") && strings.HasSuffix(d.Field, ".write_cache"):
		return "disk-cache-off:" + d.Node
	case d.Field == "bios.c_states":
		return "cstates-on:" + d.Node
	case d.Field == "bios.hyperthreading":
		return "hyperthread-flip:" + d.Node
	case d.Field == "bios.turbo_boost":
		return "turbo-flip:" + d.Node
	case d.Field == "ram_gb":
		return "ram-loss:" + d.Node
	case d.Field == "os_kernel":
		return "wrong-kernel:" + d.Node
	case strings.HasPrefix(d.Field, "nics[") && strings.HasSuffix(d.Field, ".switch_port"):
		return cablingSignature(d.Node, d.Actual)
	default:
		return fmt.Sprintf("desc-drift:%s/%s", d.Node, d.Field)
	}
}

// cablingSignature reconstructs the swapped pair from the port the node is
// actually plugged into. Experiment ports are formatted
// "sw-<site>-<cluster>:<index>", so the unexpected port names the peer.
func cablingSignature(node, actualPort string) string {
	peer, ok := nodeForPort(actualPort)
	if !ok || peer == node {
		return "cabling-swap:" + node
	}
	a, b := node, peer
	if nodeLess(b, a) {
		a, b = b, a
	}
	return fmt.Sprintf("cabling-swap:%s+%s", a, b)
}

// nodeForPort inverts the generator's port naming ("sw-nancy-graphene:12" →
// "graphene-12.nancy").
func nodeForPort(port string) (string, bool) {
	if !strings.HasPrefix(port, "sw-") || strings.HasPrefix(port, "sw-adm-") {
		return "", false
	}
	rest := strings.TrimPrefix(port, "sw-")
	colon := strings.LastIndex(rest, ":")
	if colon < 0 {
		return "", false
	}
	idx := rest[colon+1:]
	parts := strings.SplitN(rest[:colon], "-", 2)
	if len(parts) != 2 {
		return "", false
	}
	site, cluster := parts[0], parts[1]
	return fmt.Sprintf("%s-%s.%s", cluster, idx, site), true
}

// nodeLess orders node names by (site, cluster, numeric index), matching
// the injector's convention that the lower-indexed node comes first in a
// cabling-swap signature.
func nodeLess(a, b string) bool {
	ca, ia, sa := splitNodeName(a)
	cb, ib, sb := splitNodeName(b)
	if sa != sb {
		return sa < sb
	}
	if ca != cb {
		return ca < cb
	}
	return ia < ib
}

func splitNodeName(name string) (cluster string, index int, site string) {
	dot := strings.LastIndex(name, ".")
	if dot < 0 {
		return name, 0, ""
	}
	site = name[dot+1:]
	host := name[:dot]
	dash := strings.LastIndex(host, "-")
	if dash < 0 {
		return host, 0, site
	}
	index, _ = strconv.Atoi(host[dash+1:])
	return host[:dash], index, site
}
