// Package suites implements the paper's test-script library (slide 21): the
// sixteen test families totalling 751 test configurations that cover
// description correctness, testbed status, tooling, system images, service
// reliability and specific hardware.
//
// Per the paper's philosophy the scripts are deliberately simple ("Keep It
// Simple, Stupid"): each one exercises one aspect of the testbed against
// the simulated substrate, and on failure reports bug signatures precise
// enough for operators to locate the problem (internal/core routes them to
// the tracker and the operator model).
//
// Coverage (total 751 configurations):
//
//	environments     14 images × 32 clusters = 448   (matrix job)
//	refapi           32   oarproperties 32   stdenv        32
//	paralleldeploy   32   multireboot   32   multideploy   32
//	console          32   disk          24   dellbios       9
//	oarstate          8   cmdline        8   sidapi         8
//	kavlan            8   kwapi          8   mpigraph       6
package suites

import (
	"fmt"

	"repro/internal/checks"
	"repro/internal/ci"
	"repro/internal/faults"
	"repro/internal/kadeploy"
	"repro/internal/kavlan"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Context hands a test script every substrate it may exercise.
type Context struct {
	Clock    *simclock.Clock
	TB       *testbed.Testbed
	Ref      *refapi.Store
	OAR      *oar.Server
	Deployer *kadeploy.Deployer
	VLAN     *kavlan.Manager
	Monitor  *monitor.Collector
	Checker  *checks.Checker
	Faults   *faults.Injector

	// Quiet suppresses verdict log rendering (signatures and results are
	// unaffected). Campaigns that discard build logs set it so scripts
	// never format the lines the CI server would throw away.
	Quiet bool
}

// NewVerdict returns a verdict carrying the context's log policy; test
// scripts start from it instead of a zero Verdict.
func (ctx *Context) NewVerdict() Verdict { return Verdict{Quiet: ctx.Quiet} }

// Verdict is the outcome of one test run (before CI bookkeeping).
type Verdict struct {
	Failed     bool
	Duration   simclock.Time
	Log        []string
	Signatures []string // bug signatures for every problem found
	Quiet      bool     // drop log lines (bug signatures still recorded)
}

func (v *Verdict) logf(format string, args ...any) {
	if v.Quiet {
		return
	}
	v.Log = append(v.Log, fmt.Sprintf(format, args...))
}

// fail records a problem with its signature.
func (v *Verdict) fail(sig, format string, args ...any) {
	v.Failed = true
	v.Signatures = append(v.Signatures, sig)
	if v.Quiet {
		return
	}
	v.logf("FAIL[%s]: %s", sig, fmt.Sprintf(format, args...))
}

// Test is one schedulable test configuration.
type Test struct {
	Family  string
	Name    string // unique: "family/target"
	Cluster string // "" for site-scoped tests
	Site    string
	Kind    sched.TestKind
	Request string        // OAR resource request
	Period  simclock.Time // desired run frequency
	Run     func(ctx *Context, job *oar.Job) Verdict
}

// Script wraps a test into a CI build script implementing the paper's
// submission protocol (slide 17): submit the OAR job in immediate mode; if
// it cannot start right away, cancel and mark the build unstable; otherwise
// run the payload and release the resources when it completes.
func (t *Test) Script(ctx *Context) ci.Script {
	return func(bc *ci.BuildContext) ci.Outcome {
		job, err := ctx.OAR.Submit(t.Request, oar.SubmitOptions{User: "jenkins", Immediate: true})
		if err != nil {
			bc.Logf("oarsub failed: %v", err)
			return ci.Outcome{Result: ci.Failure, Duration: simclock.Minute}
		}
		if job.State != oar.Running {
			bc.Logf("testbed job could not be scheduled immediately; cancelled")
			return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
		}
		v := t.Run(ctx, job)
		dur := v.Duration
		if dur <= 0 {
			dur = simclock.Minute
		}
		jobID := job.ID
		ctx.Clock.After(dur, func() {
			if ctx.OAR.Job(jobID).State == oar.Running {
				ctx.OAR.Release(jobID) //nolint:errcheck // released at walltime otherwise
			}
		})
		res := ci.Success
		if v.Failed {
			res = ci.Failure
		}
		return ci.Outcome{Result: res, Duration: dur, Log: v.Log, BugSignatures: v.Signatures}
	}
}

// All builds the complete test registry against a testbed. The result is
// deterministic: tests are ordered family by family, clusters in testbed
// order.
func All(tb *testbed.Testbed) []*Test {
	var out []*Test
	out = append(out, refapiTests(tb)...)
	out = append(out, oarPropertiesTests(tb)...)
	out = append(out, dellbiosTests(tb)...)
	out = append(out, oarstateTests(tb)...)
	out = append(out, cmdlineTests(tb)...)
	out = append(out, sidapiTests(tb)...)
	out = append(out, stdenvTests(tb)...)
	out = append(out, paralleldeployTests(tb)...)
	out = append(out, multirebootTests(tb)...)
	out = append(out, multideployTests(tb)...)
	out = append(out, consoleTests(tb)...)
	out = append(out, kavlanTests(tb)...)
	out = append(out, kwapiTests(tb)...)
	out = append(out, mpigraphTests(tb)...)
	out = append(out, diskTests(tb)...)
	return out
}

// EnvironmentsJob returns the CI matrix job covering every (image, cluster)
// combination — the paper's flagship matrix: 14 × 32 = 448 configurations.
func EnvironmentsJob(ctx *Context) *ci.Job {
	images := make([]string, len(kadeploy.Registry))
	for i, e := range kadeploy.Registry {
		images[i] = e.Name
	}
	return &ci.Job{
		Name:        "environments",
		Description: "deploy every supported image on every cluster",
		Axes: []ci.Axis{
			{Name: "image", Values: images},
			{Name: "cluster", Values: ctx.TB.ClusterNames()},
		},
		Retention: 4000, // a full matrix build is 449 records
		Script:    environmentsCellScript(ctx),
	}
}

// ConfigurationCount returns the total number of test configurations:
// simple tests plus environments matrix cells. The paper reports 751.
func ConfigurationCount(tb *testbed.Testbed) int {
	return len(All(tb)) + len(kadeploy.Registry)*len(tb.Clusters())
}

// CountByFamily tallies configurations per family (the slide-21 table).
func CountByFamily(tb *testbed.Testbed) map[string]int {
	out := map[string]int{"environments": len(kadeploy.Registry) * len(tb.Clusters())}
	for _, t := range All(tb) {
		out[t.Family]++
	}
	return out
}
