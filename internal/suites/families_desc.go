package suites

// Description-correctness families (slide 21: "Homogeneity and correctness
// of testbed description"): refapi, oarproperties, dellbios, plus stdenv
// which verifies the standard environment and runs node checks at boot.

import (
	"fmt"

	"repro/internal/kadeploy"
	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// sweepWorkers is the fan-out of the refapi family's cluster sweep: how
// many node checks run concurrently (in simulated time) per cluster, the
// way the real g5k-checks campaign fans out over the management network.
const sweepWorkers = 4

// refapiTests: one per cluster. Verifies every node of the cluster against
// the Reference API (g5k-checks across the cluster). Software-centric: it
// only reserves one node as a vantage point; checks read node inventories
// through the management network. The sweep is sharded across sweepWorkers
// simulation goroutines — test scripts run on CI executor goroutines, so
// the parallel, run-token calling convention holds.
func refapiTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "refapi",
			Name:    "refapi/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=1", cl.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 5 * simclock.Minute
				reports, _, err := ctx.Checker.CheckClusterParallel(cl.Name, sweepWorkers)
				if err != nil {
					v.fail("refapi-error:"+cl.Name, "check run failed: %v", err)
					return v
				}
				for _, r := range reports {
					for _, d := range r.Mismatches {
						v.fail(SignatureForDiff(d), "%s", d)
					}
				}
				v.logf("checked %d nodes of %s", len(reports), cl.Name)
				return v
			},
		})
	}
	return out
}

// oarPropertiesTests: one per cluster. The OAR database is filled from the
// Reference API (slide 7); this test verifies that the properties OAR
// serves match what the reference description implies, so that resource
// selection (gpu='YES', ram_gb, ...) gives users what they asked for.
func oarPropertiesTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "oarproperties",
			Name:    "oarproperties/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=1", cl.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 3 * simclock.Minute
				for _, n := range ctx.TB.Cluster(cl.Name).Nodes {
					ref, err := ctx.Ref.Describe(n.Name)
					if err != nil {
						v.fail("refapi-missing:"+n.Name, "no description: %v", err)
						continue
					}
					props := oar.Properties(n)
					if props["ram_gb"] != fmt.Sprint(ref.Inv.RAMGB) {
						v.fail("ram-loss:"+n.Name,
							"oar ram_gb=%s but reference says %d", props["ram_gb"], ref.Inv.RAMGB)
					}
					wantGPU := "NO"
					if ref.Inv.HasGPU() {
						wantGPU = "YES"
					}
					if props["gpu"] != wantGPU {
						v.fail(fmt.Sprintf("desc-drift:%s/gpu", n.Name),
							"oar gpu=%s, reference %s", props["gpu"], wantGPU)
					}
				}
				v.logf("verified OAR properties for %s", cl.Name)
				return v
			},
		})
	}
	return out
}

// dellbiosTests: recent Dell PowerEdge clusters need specific BIOS settings
// applied by hand (slide 12: "hardware requiring some manual
// configuration"); this family verifies BIOS version and settings
// homogeneity on those clusters.
func dellbiosTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		if cl.Vendor != "Dell" || cl.ModelYear < 2013 {
			continue
		}
		cl := cl
		out = append(out, &Test{
			Family:  "dellbios",
			Name:    "dellbios/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=1", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 5 * simclock.Minute
				for _, n := range ctx.TB.Cluster(cl.Name).Nodes {
					ref, err := ctx.Ref.Describe(n.Name)
					if err != nil {
						v.fail("refapi-missing:"+n.Name, "no description: %v", err)
						continue
					}
					if n.Inv.BIOS.Version != ref.Inv.BIOS.Version {
						v.fail("desc-drift:"+n.Name+"/bios.version",
							"BIOS %s, expected %s", n.Inv.BIOS.Version, ref.Inv.BIOS.Version)
					}
					if n.Inv.BIOS.CStates != ref.Inv.BIOS.CStates {
						v.fail("cstates-on:"+n.Name, "C-states setting drifted")
					}
					if n.Inv.BIOS.HyperThreading != ref.Inv.BIOS.HyperThreading {
						v.fail("hyperthread-flip:"+n.Name, "hyper-threading setting drifted")
					}
					if n.Inv.BIOS.TurboBoost != ref.Inv.BIOS.TurboBoost {
						v.fail("turbo-flip:"+n.Name, "turbo boost setting drifted")
					}
				}
				v.logf("verified Dell BIOS settings on %s", cl.Name)
				return v
			},
		})
	}
	return out
}

// stdenvTests: one per cluster. Deploys the standard environment on one
// node and runs g5k-checks at boot, verifying in particular that the node
// boots the advertised kernel (the paper's wrong-kernel class of bugs).
func stdenvTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "stdenv",
			Name:    "stdenv/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=1", cl.Name),
			Period:  simclock.Day,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				node := ctx.TB.Node(job.Nodes[0])
				res, err := ctx.Deployer.Deploy([]*testbed.Node{node}, kadeploy.StdEnv)
				if err != nil {
					v.Duration = 2 * simclock.Minute
					v.fail(fmt.Sprintf("service-flaky:%s/kadeploy", cl.Site), "deploy error: %v", err)
					return v
				}
				v.Duration = res.Duration + 2*simclock.Minute
				if res.OK != 1 {
					v.fail("random-reboots:"+node.Name, "std env deployment failed: %s",
						res.PerNode[0].Reason)
					return v
				}
				// g5k-checks at node boot.
				rep, err := ctx.Checker.CheckNode(node.Name)
				if err != nil {
					v.fail("refapi-missing:"+node.Name, "check failed: %v", err)
					return v
				}
				for _, d := range rep.Mismatches {
					v.fail(SignatureForDiff(d), "%s", d)
				}
				v.logf("std env deployed and verified on %s in %v", node.Name, res.Duration)
				return v
			},
		})
	}
	return out
}
