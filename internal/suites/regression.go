package suites

// Regression experiments — the paper's future-work item (slide 23: "Adding
// real user experiments as regression tests?"), implemented as an opt-in
// extension. A user donates a canned experiment (environment, resources,
// workload, the result they measured when it worked); the framework replays
// it periodically and fails when the measured result drifts outside the
// recorded tolerance — exactly the "5 % performance change → wrong
// conclusions" scenario of slide 13, detected before the next user hits it.
//
// Regression tests are NOT part of the paper's 751 configurations; they are
// registered separately (see core.Config.Experiments).

import (
	"fmt"

	"repro/internal/kadeploy"
	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Workload identifies the canned payload an experiment replays.
type Workload string

// The supported canned workloads.
const (
	// WorkloadDiskIO measures sequential disk read bandwidth (MB/s) and is
	// sensitive to firmware drift, cache settings and dying media.
	WorkloadDiskIO Workload = "disk-io"
	// WorkloadCPU measures the runtime variance of a CPU kernel (%) and is
	// sensitive to power-management settings (C-states).
	WorkloadCPU Workload = "cpu-kernel"
	// WorkloadMPI starts an MPI job over InfiniBand and is sensitive to the
	// OFED stack's health.
	WorkloadMPI Workload = "mpi-latency"
)

// Experiment is one user-donated regression experiment.
type Experiment struct {
	Name     string // unique, e.g. "smith-sc16-fig4"
	Owner    string
	Cluster  string
	Nodes    int
	Env      string // kadeploy environment name
	Workload Workload

	// Baseline is the result the owner measured when the experiment was
	// donated; Tolerance is the acceptable relative deviation (e.g. 0.1).
	Baseline  float64
	Tolerance float64

	Period simclock.Time // replay frequency (default: weekly)
}

// Validate checks an experiment registration against the testbed.
func (e *Experiment) Validate(tb *testbed.Testbed) error {
	if e.Name == "" {
		return fmt.Errorf("suites: experiment needs a name")
	}
	cl := tb.Cluster(e.Cluster)
	if cl == nil {
		return fmt.Errorf("suites: experiment %s targets unknown cluster %q", e.Name, e.Cluster)
	}
	if e.Nodes < 1 || e.Nodes > len(cl.Nodes) {
		return fmt.Errorf("suites: experiment %s wants %d nodes of %d-node %s",
			e.Name, e.Nodes, len(cl.Nodes), e.Cluster)
	}
	if _, err := kadeploy.EnvByName(e.Env); err != nil {
		return err
	}
	switch e.Workload {
	case WorkloadDiskIO, WorkloadCPU, WorkloadMPI:
	default:
		return fmt.Errorf("suites: experiment %s has unknown workload %q", e.Name, e.Workload)
	}
	if e.Workload == WorkloadMPI && !cl.Nodes[0].Inv.HasIB() {
		return fmt.Errorf("suites: experiment %s needs InfiniBand, %s has none", e.Name, e.Cluster)
	}
	if e.Tolerance <= 0 {
		return fmt.Errorf("suites: experiment %s needs a positive tolerance", e.Name)
	}
	return nil
}

// ExpectedBaseline computes the healthy-testbed result of an experiment's
// workload — what the owner would have measured when donating it.
func ExpectedBaseline(tb *testbed.Testbed, e *Experiment) float64 {
	cl := tb.Cluster(e.Cluster)
	switch e.Workload {
	case WorkloadDiskIO:
		ref, err := describeDisk(cl)
		if err != nil {
			return 0
		}
		return expectedReadMBps(ref)
	case WorkloadCPU:
		return 1.0 // 1 % run-to-run variance on a well-configured node
	case WorkloadMPI:
		return 1.6 // µs small-message latency, flat model
	}
	return 0
}

func describeDisk(cl *testbed.Cluster) (testbed.Disk, error) {
	if len(cl.Nodes[0].Inv.Disks) == 0 {
		return testbed.Disk{}, fmt.Errorf("suites: cluster %s has no disks", cl.Name)
	}
	return cl.Nodes[0].Inv.Disks[0], nil
}

// RegressionTests wraps experiments into schedulable tests of the
// "regression" family. Invalid experiments are rejected.
func RegressionTests(tb *testbed.Testbed, experiments []*Experiment) ([]*Test, error) {
	var out []*Test
	for _, e := range experiments {
		if err := e.Validate(tb); err != nil {
			return nil, err
		}
		e := e
		period := e.Period
		if period <= 0 {
			period = simclock.Week
		}
		out = append(out, &Test{
			Family:  "regression",
			Name:    "regression/" + e.Name,
			Cluster: e.Cluster,
			Site:    tb.Cluster(e.Cluster).Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=%d,walltime=2", e.Cluster, e.Nodes),
			Period:  period,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				return runExperiment(ctx, e, job)
			},
		})
	}
	return out, nil
}

// runExperiment deploys the experiment's environment and replays its
// workload, comparing the measurement against the recorded baseline.
func runExperiment(ctx *Context, e *Experiment, job *oar.Job) Verdict {
	v := ctx.NewVerdict()
	env, _ := kadeploy.EnvByName(e.Env)
	nodes := make([]*testbed.Node, len(job.Nodes))
	for i, name := range job.Nodes {
		nodes[i] = ctx.TB.Node(name)
	}
	res, err := ctx.Deployer.Deploy(nodes, env)
	if err != nil {
		v.Duration = 2 * simclock.Minute
		v.fail(fmt.Sprintf("service-flaky:%s/kadeploy", nodes[0].Site),
			"experiment %s: deploy error: %v", e.Name, err)
		return v
	}
	v.Duration = res.Duration + 15*simclock.Minute // deploy + workload replay
	if res.Failed > 0 {
		for _, name := range res.FailedNodes() {
			v.fail("random-reboots:"+name, "experiment %s lost node %s", e.Name, name)
		}
		return v
	}

	for _, name := range job.Nodes {
		measured, sig := measure(ctx, e, name)
		dev := relativeDeviation(measured, e.Baseline)
		if dev > e.Tolerance {
			v.fail(sig, "experiment %s on %s: measured %.2f, baseline %.2f (%.0f%% off)",
				e.Name, name, measured, e.Baseline, 100*dev)
		} else {
			v.logf("experiment %s on %s: %.2f (baseline %.2f, within %.0f%%)",
				e.Name, name, measured, e.Baseline, 100*e.Tolerance)
		}
	}
	return v
}

// measure replays the workload on one node and returns the measurement and
// the bug signature to file if it regressed (diagnosed from the substrate,
// the way an operator would bisect a user report).
func measure(ctx *Context, e *Experiment, node string) (float64, string) {
	switch e.Workload {
	case WorkloadDiskIO:
		read := e.Baseline * ctx.Faults.DiskReadFactor(node)
		sig := "disk-firmware-drift:" + node
		if ctx.Faults.DiskReadFactor(node) < 0.4 {
			sig = "disk-dying:" + node
		}
		return read, sig
	case WorkloadCPU:
		return 100 * ctx.Faults.CPUJitter(node), "cstates-on:" + node
	case WorkloadMPI:
		if ctx.Faults.OFEDStartFails(node) {
			// Failure to start at all: report as infinite latency.
			return e.Baseline * 1000, "ofed-flaky:" + node
		}
		return e.Baseline, "ofed-flaky:" + node
	}
	return 0, "regression:" + e.Name
}

func relativeDeviation(measured, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	d := (measured - baseline) / baseline
	if d < 0 {
		d = -d
	}
	return d
}
