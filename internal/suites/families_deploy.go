package suites

// Deployment families (slide 21: "Provided system images" and "Reliability
// of key services"): environments (the 14×32 matrix), paralleldeploy,
// multireboot, multideploy.

import (
	"fmt"

	"repro/internal/ci"
	"repro/internal/kadeploy"
	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// environmentsCellScript is the payload of one (image, cluster) matrix
// cell: reserve one node of the cluster, deploy the image, verify the
// booted kernel, release.
func environmentsCellScript(ctx *Context) ci.Script {
	// Per-cluster request strings rendered once: a 448-cell matrix fires
	// this script constantly and the requests never change.
	reqByCluster := map[string]string{}
	for _, cl := range ctx.TB.Clusters() {
		reqByCluster[cl.Name] = fmt.Sprintf("cluster='%s'/nodes=1,walltime=1", cl.Name)
	}
	return func(bc *ci.BuildContext) ci.Outcome {
		image, cluster := bc.Axis("image"), bc.Axis("cluster")
		env, err := kadeploy.EnvByName(image)
		if err != nil {
			bc.Logf("%v", err)
			return ci.Outcome{Result: ci.Failure, Duration: simclock.Minute,
				BugSignatures: []string{"env-unregistered:" + image}}
		}
		req, ok := reqByCluster[cluster]
		if !ok {
			req = fmt.Sprintf("cluster='%s'/nodes=1,walltime=1", cluster)
		}
		job, err := ctx.OAR.Submit(req, oar.SubmitOptions{User: "jenkins", Immediate: true})
		if err != nil {
			bc.Logf("oarsub failed: %v", err)
			return ci.Outcome{Result: ci.Failure, Duration: simclock.Minute}
		}
		if job.State != oar.Running {
			bc.Logf("no node available right now; cancelled")
			return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
		}
		node := ctx.TB.Node(job.Nodes[0])
		out := ci.Outcome{Result: ci.Success}
		res, err := ctx.Deployer.Deploy([]*testbed.Node{node}, env)
		switch {
		case err != nil:
			out.Result = ci.Failure
			out.Duration = 2 * simclock.Minute
			bc.Logf("deploy error: %v", err)
			out.BugSignatures = append(out.BugSignatures,
				"service-flaky:"+node.Site+"/kadeploy")
		case res.OK != 1:
			out.Result = ci.Failure
			out.Duration = res.Duration + simclock.Minute
			bc.Logf("deployment of %s failed on %s: %s", image, node.Name, res.PerNode[0].Reason)
			out.BugSignatures = append(out.BugSignatures, "random-reboots:"+node.Name)
		default:
			out.Duration = res.Duration + simclock.Minute
			bc.Logf("%s deployed on %s in %v", image, node.Name, res.Duration)
		}
		jobID := job.ID
		ctx.Clock.After(out.Duration, func() {
			if ctx.OAR.Job(jobID).State == oar.Running {
				ctx.OAR.Release(jobID) //nolint:errcheck // walltime reclaims otherwise
			}
		})
		return out
	}
}

// paralleldeployTests: one per cluster, hardware-centric. Deploys the
// standard environment on ALL nodes of the cluster at once and fails when
// more than 5 % of nodes do not come back — the scalability and
// reliability guarantee users depend on.
func paralleldeployTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "paralleldeploy",
			Name:    "paralleldeploy/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.HardwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=ALL,walltime=2", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				nodes := make([]*testbed.Node, len(job.Nodes))
				for i, name := range job.Nodes {
					nodes[i] = ctx.TB.Node(name)
				}
				res, err := ctx.Deployer.Deploy(nodes, kadeploy.StdEnv)
				if err != nil {
					v.Duration = 2 * simclock.Minute
					v.fail(fmt.Sprintf("service-flaky:%s/kadeploy", cl.Site), "deploy error: %v", err)
					return v
				}
				v.Duration = res.Duration + 2*simclock.Minute
				if res.Failed*20 > len(nodes) { // >5%
					for _, name := range res.FailedNodes() {
						v.fail("random-reboots:"+name, "node lost during parallel deploy")
					}
				}
				v.logf("deployed %d/%d nodes of %s in %v", res.OK, len(nodes), cl.Name, res.Duration)
				return v
			},
		})
	}
	return out
}

// multirebootTests: one per cluster. Reboots a node several times in a row;
// slow boots reveal the kernel race the paper mentions, missing boots
// reveal flaky hardware.
func multirebootTests(tb *testbed.Testbed) []*Test {
	const reboots = 5
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "multireboot",
			Name:    "multireboot/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=2", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				node := ctx.TB.Node(job.Nodes[0])
				var total simclock.Time
				for i := 0; i < reboots; i++ {
					dur, err := ctx.Deployer.Reboot(node)
					if err != nil {
						// One lost reboot can be fleet background noise;
						// retry before declaring the hardware bad.
						v.logf("reboot %d/%d lost, retrying", i+1, reboots)
						total += 5 * simclock.Minute
						dur, err = ctx.Deployer.Reboot(node)
					}
					if err != nil {
						v.Duration = total + 10*simclock.Minute
						v.fail("random-reboots:"+node.Name,
							"reboot %d/%d: node did not come back twice", i+1, reboots)
						return v
					}
					if dur > 3*simclock.Minute {
						v.fail("boot-delay:"+node.Name,
							"reboot %d/%d took %v (kernel race?)", i+1, reboots, dur)
					}
					total += dur
				}
				v.Duration = total + simclock.Minute
				v.logf("%d reboots of %s in %v", reboots, node.Name, total)
				return v
			},
		})
	}
	return out
}

// multideployTests: one per cluster. Chains several deployments on one node
// to catch state leaking between deployments and intermittent failures.
func multideployTests(tb *testbed.Testbed) []*Test {
	const rounds = 3
	var out []*Test
	for _, cl := range tb.Clusters() {
		cl := cl
		out = append(out, &Test{
			Family:  "multideploy",
			Name:    "multideploy/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.SoftwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=1,walltime=2", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				node := ctx.TB.Node(job.Nodes[0])
				var total simclock.Time
				for i := 0; i < rounds; i++ {
					res, err := ctx.Deployer.Deploy([]*testbed.Node{node}, kadeploy.StdEnv)
					if err != nil {
						v.Duration = total + 2*simclock.Minute
						v.fail(fmt.Sprintf("service-flaky:%s/kadeploy", cl.Site),
							"round %d/%d: %v", i+1, rounds, err)
						return v
					}
					total += res.Duration
					if res.OK != 1 {
						v.Duration = total + simclock.Minute
						v.fail("random-reboots:"+node.Name,
							"round %d/%d failed: %s", i+1, rounds, res.PerNode[0].Reason)
						return v
					}
				}
				v.Duration = total + simclock.Minute
				v.logf("%d consecutive deployments on %s in %v", rounds, node.Name, total)
				return v
			},
		})
	}
	return out
}
