package suites

// Specific-hardware families (slide 21: "Specific hardware: Infiniband,
// hard disk drives"): mpigraph and disk.

import (
	"fmt"

	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// mpigraphTests: one per InfiniBand cluster, hardware-centric. Starts an
// MPI all-to-all bandwidth test over IB on every node; the OFED stack bug
// the paper quotes makes application start-up fail randomly.
func mpigraphTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		if !cl.Nodes[0].Inv.HasIB() {
			continue
		}
		cl := cl
		out = append(out, &Test{
			Family:  "mpigraph",
			Name:    "mpigraph/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.HardwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=ALL,walltime=2", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 20 * simclock.Minute
				started := 0
				for _, name := range job.Nodes {
					if ctx.Faults.OFEDStartFails(name) {
						v.fail("ofed-flaky:"+name,
							"mpigraph failed to start over InfiniBand on %s (OFED)", name)
						continue
					}
					started++
				}
				if started == len(job.Nodes) {
					v.logf("mpigraph ran on all %d nodes of %s", started, cl.Name)
				}
				return v
			},
		})
	}
	return out
}

// expectedReadMBps is the fleet-calibrated expectation for a healthy disk.
func expectedReadMBps(d testbed.Disk) float64 {
	switch {
	case d.SSD():
		return 430
	case d.RPM >= 15000:
		return 170
	case d.RPM >= 10000:
		return 140
	default:
		return 110
	}
}

// diskTests: one per cluster with spinning disks, hardware-centric.
// Benchmarks every node's disk and compares against the model expected
// from the reference description — the way the framework caught both the
// R/W cache misconfigurations and the "different performance due to
// different disk firmware versions" bug (slide 22).
func diskTests(tb *testbed.Testbed) []*Test {
	var out []*Test
	for _, cl := range tb.Clusters() {
		if !cl.Nodes[0].Inv.HasHDD() {
			continue
		}
		cl := cl
		out = append(out, &Test{
			Family:  "disk",
			Name:    "disk/" + cl.Name,
			Cluster: cl.Name,
			Site:    cl.Site,
			Kind:    sched.HardwareCentric,
			Request: fmt.Sprintf("cluster='%s'/nodes=ALL,walltime=2", cl.Name),
			Period:  simclock.Week,
			Run: func(ctx *Context, job *oar.Job) Verdict {
				v := ctx.NewVerdict()
				v.Duration = 30 * simclock.Minute
				for _, name := range job.Nodes {
					node := ctx.TB.Node(name)
					ref, err := ctx.Ref.Describe(name)
					if err != nil || len(ref.Inv.Disks) == 0 {
						v.fail("refapi-missing:"+name, "no disk description")
						continue
					}
					expect := expectedReadMBps(ref.Inv.Disks[0])
					read := expect * ctx.Faults.DiskReadFactor(name)
					write := expect * 0.9 * ctx.Faults.DiskWriteFactor(name)

					switch {
					case read < 0.4*expect:
						// Collapsed reads without a description change: the
						// medium itself is failing.
						v.fail("disk-dying:"+name,
							"read %.0f MB/s, expected ≈%.0f", read, expect)
					case node.Inv.Disks[0].Firmware != ref.Inv.Disks[0].Firmware:
						v.fail("disk-firmware-drift:"+name,
							"firmware %s (ref %s): read %.0f MB/s vs expected %.0f",
							node.Inv.Disks[0].Firmware, ref.Inv.Disks[0].Firmware, read, expect)
					case read < 0.8*expect:
						v.fail("disk-firmware-drift:"+name,
							"read %.0f MB/s, expected ≈%.0f", read, expect)
					}
					// Only attribute slow writes to the cache setting when the
					// medium itself is healthy, otherwise the dying disk is
					// the explanation for both.
					if read >= 0.4*expect && write < 0.5*0.9*expect {
						v.fail("disk-cache-off:"+name,
							"write %.0f MB/s, expected ≈%.0f (write cache?)", write, 0.9*expect)
					}
				}
				if !v.Failed {
					v.logf("disk performance nominal on %d nodes of %s", len(job.Nodes), cl.Name)
				}
				return v
			},
		})
	}
	return out
}
