package suites

import (
	"strings"
	"testing"

	"repro/internal/checks"
	"repro/internal/ci"
	"repro/internal/faults"
	"repro/internal/kadeploy"
	"repro/internal/kavlan"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func newContext(seed int64) *Context {
	clock := simclock.New(seed)
	tb := testbed.Default()
	ref := refapi.NewStore(tb, clock.Now())
	inj := faults.NewInjector(clock, tb)
	return &Context{
		Clock:    clock,
		TB:       tb,
		Ref:      ref,
		OAR:      oar.NewServer(clock, tb),
		Deployer: kadeploy.NewDeployer(clock, inj),
		VLAN:     kavlan.NewManager(clock, tb, inj),
		Monitor:  monitor.NewCollector(clock, tb, inj),
		Checker:  checks.NewChecker(clock, tb, ref),
		Faults:   inj,
	}
}

func findTest(t *testing.T, tests []*Test, name string) *Test {
	t.Helper()
	for _, tt := range tests {
		if tt.Name == name {
			return tt
		}
	}
	t.Fatalf("test %q not in registry", name)
	return nil
}

// runTest drives one test through its full CI-script protocol. The script
// runs on a simulation goroutine, exactly as the CI executor pool runs it
// in production — required by scripts that fan out parallel sweeps.
func runTest(ctx *Context, tt *Test) ci.Outcome {
	var out ci.Outcome
	script := tt.Script(ctx)
	ctx.Clock.Go(func() { out = script(&ci.BuildContext{Clock: ctx.Clock}) })
	ctx.Clock.Run() // run the script, then let OAR releases fire
	return out
}

func TestCoverageIs751Configurations(t *testing.T) {
	tb := testbed.Default()
	if got := ConfigurationCount(tb); got != 751 {
		t.Fatalf("total configurations = %d, want 751 (paper, slide 21)", got)
	}
	want := map[string]int{
		"environments": 448, "refapi": 32, "oarproperties": 32, "dellbios": 9,
		"oarstate": 8, "cmdline": 8, "sidapi": 8, "stdenv": 32,
		"paralleldeploy": 32, "multireboot": 32, "multideploy": 32,
		"console": 32, "kavlan": 8, "kwapi": 8, "mpigraph": 6, "disk": 24,
	}
	got := CountByFamily(tb)
	for fam, n := range want {
		if got[fam] != n {
			t.Errorf("family %s: %d configurations, want %d", fam, got[fam], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("families = %d, want %d", len(got), len(want))
	}
}

func TestUniqueTestNames(t *testing.T) {
	tests := All(testbed.Default())
	seen := map[string]bool{}
	for _, tt := range tests {
		if seen[tt.Name] {
			t.Fatalf("duplicate test name %q", tt.Name)
		}
		seen[tt.Name] = true
		if tt.Site == "" || tt.Request == "" || tt.Period <= 0 || tt.Run == nil {
			t.Fatalf("degenerate test %+v", tt)
		}
		if _, err := oar.ParseRequest(tt.Request); err != nil {
			t.Fatalf("test %s has invalid request: %v", tt.Name, err)
		}
	}
}

func TestAllTestsPassOnHealthyTestbed(t *testing.T) {
	ctx := newContext(101)
	// Run off-peak to keep semantics pure; resources are all free.
	for _, tt := range All(ctx.TB) {
		out := runTest(ctx, tt)
		if out.Result != ci.Success {
			t.Fatalf("%s on healthy testbed: %v\n%s", tt.Name, out.Result,
				strings.Join(out.Log, "\n"))
		}
		if out.Duration <= 0 {
			t.Fatalf("%s has non-positive duration", tt.Name)
		}
	}
	// All resources must have been released.
	if ctx.OAR.BusyNodes() != 0 {
		t.Fatalf("%d nodes leaked", ctx.OAR.BusyNodes())
	}
}

func TestRefapiDetectsDrift(t *testing.T) {
	ctx := newContext(102)
	ctx.Faults.InjectNode(faults.CStatesOn, "taurus-4.lyon")
	tt := findTest(t, All(ctx.TB), "refapi/taurus")
	out := runTest(ctx, tt)
	if out.Result != ci.Failure {
		t.Fatalf("result = %v", out.Result)
	}
	if len(out.BugSignatures) != 1 || out.BugSignatures[0] != "cstates-on:taurus-4.lyon" {
		t.Fatalf("signatures = %v", out.BugSignatures)
	}
}

func TestRefapiDetectsCablingSwapWithPairSignature(t *testing.T) {
	ctx := newContext(103)
	f, err := ctx.Faults.InjectCablingSwap("griffon-3.nancy", "griffon-4.nancy")
	if err != nil {
		t.Fatal(err)
	}
	tt := findTest(t, All(ctx.TB), "refapi/griffon")
	out := runTest(ctx, tt)
	if out.Result != ci.Failure {
		t.Fatal("swap not detected")
	}
	// Both nodes produce the same pair signature → single bug after dedup.
	for _, sig := range out.BugSignatures {
		if sig != f.Signature() {
			t.Fatalf("signature %q != fault %q", sig, f.Signature())
		}
	}
}

func TestOarPropertiesDetectsRAMLoss(t *testing.T) {
	ctx := newContext(104)
	ctx.Faults.InjectNode(faults.RAMLoss, "suno-2.sophia")
	out := runTest(ctx, findTest(t, All(ctx.TB), "oarproperties/suno"))
	if out.Result != ci.Failure {
		t.Fatal("RAM loss not detected")
	}
	if out.BugSignatures[0] != "ram-loss:suno-2.sophia" {
		t.Fatalf("signatures = %v", out.BugSignatures)
	}
}

func TestDellbiosDetectsSettingsDrift(t *testing.T) {
	ctx := newContext(105)
	ctx.Faults.InjectNode(faults.TurboFlip, "paravance-9.rennes")
	out := runTest(ctx, findTest(t, All(ctx.TB), "dellbios/paravance"))
	if out.Result != ci.Failure || out.BugSignatures[0] != "turbo-flip:paravance-9.rennes" {
		t.Fatalf("result=%v sigs=%v", out.Result, out.BugSignatures)
	}
}

func TestStdenvDetectsWrongKernel(t *testing.T) {
	ctx := newContext(106)
	cl := ctx.TB.Cluster("graphite")
	for _, n := range cl.Nodes {
		ctx.Faults.InjectNode(faults.WrongKernel, n.Name)
	}
	out := runTest(ctx, findTest(t, All(ctx.TB), "stdenv/graphite"))
	if out.Result != ci.Failure {
		t.Fatalf("wrong kernel not detected: %v", out.Log)
	}
	found := false
	for _, sig := range out.BugSignatures {
		if strings.HasPrefix(sig, "wrong-kernel:graphite-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("signatures = %v", out.BugSignatures)
	}
}

func TestCmdlineDetectsFlakyService(t *testing.T) {
	ctx := newContext(107)
	ctx.Faults.InjectService("nancy", "oar", 0.9)
	out := runTest(ctx, findTest(t, All(ctx.TB), "cmdline/nancy"))
	if out.Result != ci.Failure || out.BugSignatures[0] != "service-flaky:nancy/oar" {
		t.Fatalf("result=%v sigs=%v", out.Result, out.BugSignatures)
	}
}

func TestSidapiDetectsFlakyAPI(t *testing.T) {
	ctx := newContext(108)
	ctx.Faults.InjectService("rennes", "api", 0.9)
	out := runTest(ctx, findTest(t, All(ctx.TB), "sidapi/rennes"))
	if out.Result != ci.Failure || out.BugSignatures[0] != "service-flaky:rennes/api" {
		t.Fatalf("result=%v sigs=%v", out.Result, out.BugSignatures)
	}
}

func TestOarstateDetectsDegradedSite(t *testing.T) {
	ctx := newContext(109)
	// Down 12 of 100 lyon nodes (>10%).
	lyon := ctx.TB.Site("lyon").Nodes()
	for _, n := range lyon[:12] {
		n.State = testbed.Suspected
	}
	out := runTest(ctx, findTest(t, All(ctx.TB), "oarstate/lyon"))
	if out.Result != ci.Failure || out.BugSignatures[0] != "oarstate-degraded:lyon" {
		t.Fatalf("result=%v sigs=%v", out.Result, out.BugSignatures)
	}
}

func TestConsoleDetectsBrokenConsole(t *testing.T) {
	ctx := newContext(110)
	for _, n := range ctx.TB.Cluster("sol").Nodes {
		ctx.Faults.InjectNode(faults.ConsoleBroken, n.Name)
	}
	out := runTest(ctx, findTest(t, All(ctx.TB), "console/sol"))
	if out.Result != ci.Failure {
		t.Fatal("broken console not detected")
	}
	if !strings.HasPrefix(out.BugSignatures[0], "console-broken:sol-") {
		t.Fatalf("sigs = %v", out.BugSignatures)
	}
}

func TestKavlanDetectsFlakyService(t *testing.T) {
	ctx := newContext(111)
	ctx.Faults.InjectService("sophia", "kavlan", 1.0)
	out := runTest(ctx, findTest(t, All(ctx.TB), "kavlan/sophia"))
	if out.Result != ci.Failure || out.BugSignatures[0] != "service-flaky:sophia/kavlan" {
		t.Fatalf("result=%v sigs=%v", out.Result, out.BugSignatures)
	}
}

func TestKavlanRestoresMembershipOnSuccess(t *testing.T) {
	ctx := newContext(112)
	out := runTest(ctx, findTest(t, All(ctx.TB), "kavlan/lyon"))
	if out.Result != ci.Success {
		t.Fatalf("kavlan test failed: %v", out.Log)
	}
	for _, n := range ctx.TB.Site("lyon").Nodes() {
		v, _ := ctx.VLAN.VLANOf(n.Name)
		if v.ID != kavlan.DefaultID {
			t.Fatalf("%s left in %v", n.Name, v)
		}
	}
}

func TestKwapiDetectsCablingSwap(t *testing.T) {
	ctx := newContext(113)
	ctx.Clock.RunUntil(5 * simclock.Minute) // give the probes a window
	f, _ := ctx.Faults.InjectCablingSwap("helios-1.sophia", "helios-2.sophia")
	out := runTest(ctx, findTest(t, All(ctx.TB), "kwapi/sophia"))
	if out.Result != ci.Failure {
		t.Fatal("cabling swap invisible to kwapi test")
	}
	for _, sig := range out.BugSignatures {
		if sig != f.Signature() {
			t.Fatalf("signature %q != fault %q", sig, f.Signature())
		}
	}
}

func TestKwapiDetectsFlakyService(t *testing.T) {
	ctx := newContext(114)
	ctx.Clock.RunUntil(5 * simclock.Minute)
	ctx.Faults.InjectService("grenoble", "kwapi", 1.0)
	out := runTest(ctx, findTest(t, All(ctx.TB), "kwapi/grenoble"))
	if out.Result != ci.Failure || out.BugSignatures[0] != "service-flaky:grenoble/kwapi" {
		t.Fatalf("result=%v sigs=%v", out.Result, out.BugSignatures)
	}
}

func TestMpigraphDetectsOFED(t *testing.T) {
	ctx := newContext(115)
	for _, n := range ctx.TB.Cluster("taurus").Nodes {
		ctx.Faults.InjectNode(faults.OFEDFlaky, n.Name)
	}
	out := runTest(ctx, findTest(t, All(ctx.TB), "mpigraph/taurus"))
	if out.Result != ci.Failure {
		t.Fatal("OFED flakiness not detected")
	}
	if !strings.HasPrefix(out.BugSignatures[0], "ofed-flaky:taurus-") {
		t.Fatalf("sigs = %v", out.BugSignatures)
	}
}

func TestDiskDetectsCacheAndFirmwareAndDying(t *testing.T) {
	ctx := newContext(116)
	ctx.Faults.InjectNode(faults.DiskCacheOff, "suno-1.sophia")
	ctx.Faults.InjectNode(faults.DiskFirmwareDrift, "suno-2.sophia")
	ctx.Faults.InjectNode(faults.DiskDying, "suno-3.sophia")
	out := runTest(ctx, findTest(t, All(ctx.TB), "disk/suno"))
	if out.Result != ci.Failure {
		t.Fatal("disk problems not detected")
	}
	sigs := map[string]bool{}
	for _, s := range out.BugSignatures {
		sigs[s] = true
	}
	for _, want := range []string{
		"disk-cache-off:suno-1.sophia",
		"disk-firmware-drift:suno-2.sophia",
		"disk-dying:suno-3.sophia",
	} {
		if !sigs[want] {
			t.Errorf("missing signature %s (got %v)", want, out.BugSignatures)
		}
	}
	// No spurious cache signature on the dying disk.
	if sigs["disk-cache-off:suno-3.sophia"] {
		t.Error("dying disk misattributed to write cache")
	}
}

func TestMultirebootDetectsBootDelay(t *testing.T) {
	ctx := newContext(117)
	for _, n := range ctx.TB.Cluster("uvb").Nodes {
		ctx.Faults.InjectNode(faults.BootDelay, n.Name)
	}
	out := runTest(ctx, findTest(t, All(ctx.TB), "multireboot/uvb"))
	if out.Result != ci.Failure {
		t.Fatal("boot delay not detected")
	}
	if !strings.HasPrefix(out.BugSignatures[0], "boot-delay:uvb-") {
		t.Fatalf("sigs = %v", out.BugSignatures)
	}
}

func TestScriptGoesUnstableWhenClusterBusy(t *testing.T) {
	ctx := newContext(118)
	ctx.OAR.Submit("cluster='sol'/nodes=ALL,walltime=100", oar.SubmitOptions{User: "user"})
	out := runTest(ctx, findTest(t, All(ctx.TB), "disk/sol"))
	if out.Result != ci.Unstable {
		t.Fatalf("result = %v, want UNSTABLE", out.Result)
	}
	_, _, canceled := ctx.OAR.Stats()
	if canceled != 1 {
		t.Fatalf("OAR canceled = %d, want 1 (immediate job withdrawn)", canceled)
	}
}

func TestEnvironmentsJobShape(t *testing.T) {
	ctx := newContext(119)
	job := EnvironmentsJob(ctx)
	if job.CellCount() != 448 {
		t.Fatalf("matrix cells = %d, want 448", job.CellCount())
	}
	if !job.IsMatrix() || job.Name != "environments" {
		t.Fatalf("job = %+v", job)
	}
}

func TestEnvironmentsCellDeploysAndReleases(t *testing.T) {
	ctx := newContext(120)
	script := environmentsCellScript(ctx)
	out := script(&ci.BuildContext{Clock: ctx.Clock,
		Cell: map[string]string{"image": "jessie-x64-min", "cluster": "graphite"}})
	if out.Result != ci.Success {
		t.Fatalf("cell failed: %v", out.Log)
	}
	ctx.Clock.Run()
	if ctx.OAR.BusyNodes() != 0 {
		t.Fatal("cell leaked its node")
	}
	// Unknown image is its own bug class.
	out = script(&ci.BuildContext{Clock: ctx.Clock,
		Cell: map[string]string{"image": "win311", "cluster": "graphite"}})
	if out.Result != ci.Failure || out.BugSignatures[0] != "env-unregistered:win311" {
		t.Fatalf("unknown image: %v %v", out.Result, out.BugSignatures)
	}
}

func TestEnvironmentsCellUnstableWhenBusy(t *testing.T) {
	ctx := newContext(121)
	ctx.OAR.Submit("cluster='graphite'/nodes=ALL,walltime=100", oar.SubmitOptions{})
	script := environmentsCellScript(ctx)
	out := script(&ci.BuildContext{Clock: ctx.Clock,
		Cell: map[string]string{"image": "jessie-x64-min", "cluster": "graphite"}})
	if out.Result != ci.Unstable {
		t.Fatalf("result = %v", out.Result)
	}
}

func TestTestKindsMatchPaperScheduling(t *testing.T) {
	tests := All(testbed.Default())
	for _, tt := range tests {
		hw := tt.Kind == sched.HardwareCentric
		wantHW := tt.Family == "paralleldeploy" || tt.Family == "mpigraph" || tt.Family == "disk"
		if hw != wantHW {
			t.Errorf("%s: hardware-centric=%v", tt.Name, hw)
		}
		if hw && !strings.Contains(tt.Request, "nodes=ALL") {
			t.Errorf("%s: hardware-centric but not nodes=ALL", tt.Name)
		}
	}
}

func TestSignatureHelpers(t *testing.T) {
	if n, ok := nodeForPort("sw-nancy-graphene:12"); !ok || n != "graphene-12.nancy" {
		t.Fatalf("nodeForPort = %q %v", n, ok)
	}
	if _, ok := nodeForPort("sw-adm-nancy-graphene:12"); ok {
		t.Fatal("management port accepted")
	}
	if _, ok := nodeForPort("bogus"); ok {
		t.Fatal("bogus port accepted")
	}
	if !nodeLess("sol-2.sophia", "sol-10.sophia") {
		t.Fatal("numeric index ordering broken")
	}
	if nodeLess("sol-10.sophia", "sol-2.sophia") {
		t.Fatal("ordering asymmetry")
	}
	sig := cablingSignature("sol-2.sophia", "sw-sophia-sol:1")
	if sig != "cabling-swap:sol-1.sophia+sol-2.sophia" {
		t.Fatalf("sig = %q", sig)
	}
}
