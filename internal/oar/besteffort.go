package oar

// Best-effort jobs, as on the real Grid'5000: opportunistic jobs that run
// on idle resources and are killed whenever a normal job needs their nodes.
// They matter to the testing framework because a testbed full of
// best-effort work still looks "available" to tests — the scheduler's
// availability probe and the immediate-submission path both see through
// them via preemption.

import "repro/internal/testbed"

// Preempted marks a best-effort job killed to make room for a normal job.
const Preempted JobState = 100

// BestEffort reports whether the job was submitted in best-effort mode.
func (j *Job) BestEffort() bool { return j.bestEffort }

// allocateWithPreemption is the fallback when a normal allocation fails:
// it retries treating nodes held by best-effort jobs as free, and returns
// the set of best-effort job IDs that must die for the allocation to
// succeed. It does not mutate anything.
func (s *Server) allocateWithPreemption(req Request) (nodes []string, victims []int, ok bool) {
	// Temporarily hide best-effort allocations from the busy map.
	hidden := map[string]int{}
	for node, jobID := range s.busy {
		if j := s.jobs[jobID]; j != nil && j.bestEffort {
			hidden[node] = jobID
		}
	}
	if len(hidden) == 0 {
		return nil, nil, false
	}
	penalized := make(map[string]bool, len(hidden))
	for node := range hidden {
		delete(s.busy, node)
		penalized[node] = true
	}
	nodes, ok = s.allocatePreferring(req, penalized)
	for node, jobID := range hidden {
		s.busy[node] = jobID
	}
	if !ok {
		return nil, nil, false
	}
	seen := map[int]bool{}
	for _, node := range nodes {
		if jobID, held := hidden[node]; held && !seen[jobID] {
			seen[jobID] = true
			victims = append(victims, jobID)
		}
	}
	return nodes, victims, true
}

// preempt kills a running best-effort job (no walltime refund, like OAR's
// checkpoint-less best-effort).
func (s *Server) preempt(j *Job) {
	j.State = Preempted
	j.EndedAt = s.clock.Now()
	if j.walltimeEvent != nil {
		j.walltimeEvent.Cancel()
	}
	for _, n := range j.Nodes {
		delete(s.busy, n)
	}
	s.preempted++
}

// PreemptedCount returns how many best-effort jobs were killed.
func (s *Server) PreemptedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.preempted
}

// startWithPreemption tries a normal allocation first, then the preempting
// fallback (normal jobs only). Returns the nodes to use, or ok=false.
func (s *Server) startWithPreemption(j *Job) ([]string, bool) {
	if nodes, ok := s.allocate(j.Request); ok {
		return nodes, true
	}
	if j.bestEffort {
		return nil, false // best-effort never preempts anyone
	}
	nodes, victims, ok := s.allocateWithPreemption(j.Request)
	if !ok {
		return nil, false
	}
	for _, id := range victims {
		s.preempt(s.jobs[id])
	}
	return nodes, true
}

// FreeOrPreemptable counts nodes that a normal request could use right now:
// free Alive nodes plus those held only by best-effort jobs.
func (s *Server) FreeOrPreemptable(e Expr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	for _, n := range s.nodeList {
		if n.State != testbed.Alive {
			continue
		}
		if jobID, used := s.busy[n.Name]; used {
			if j := s.jobs[jobID]; j == nil || !j.bestEffort {
				continue
			}
		}
		if e.EvalNode(n) {
			count++
		}
	}
	return count
}
