package oar

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

func TestBestEffortRunsOnIdleResources(t *testing.T) {
	_, _, s := newServer()
	j, err := s.Submit("cluster='sol'/nodes=10,walltime=10", SubmitOptions{
		User: "greedy", BestEffort: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running || !j.BestEffort() {
		t.Fatalf("best-effort job: state=%v be=%v", j.State, j.BestEffort())
	}
}

func TestNormalJobPreemptsBestEffort(t *testing.T) {
	_, _, s := newServer()
	be, _ := s.Submit("cluster='sol'/nodes=ALL,walltime=100", SubmitOptions{
		User: "greedy", BestEffort: true,
	})
	if be.State != Running {
		t.Fatal("best-effort did not start on idle cluster")
	}
	// A normal whole-cluster job arrives: the best-effort job dies.
	normal, _ := s.Submit("cluster='sol'/nodes=ALL,walltime=1", SubmitOptions{User: "alice"})
	if normal.State != Running {
		t.Fatalf("normal job = %v, want Running via preemption", normal.State)
	}
	if be.State != Preempted {
		t.Fatalf("best-effort job = %v, want Preempted", be.State)
	}
	if be.State.String() != "Preempted" {
		t.Fatalf("state string = %q", be.State.String())
	}
	if s.PreemptedCount() != 1 {
		t.Fatalf("preempted count = %d", s.PreemptedCount())
	}
}

func TestPreemptionKillsOnlyNeededJobs(t *testing.T) {
	_, _, s := newServer()
	be1, _ := s.Submit("cluster='sol'/nodes=8,walltime=100", SubmitOptions{BestEffort: true})
	be2, _ := s.Submit("cluster='sol'/nodes=8,walltime=100", SubmitOptions{BestEffort: true})
	// 4 nodes remain free; a 10-node job needs 6 more → one victim suffices.
	normal, _ := s.Submit("cluster='sol'/nodes=10,walltime=1", SubmitOptions{})
	if normal.State != Running {
		t.Fatalf("normal = %v", normal.State)
	}
	preempted := 0
	if be1.State == Preempted {
		preempted++
	}
	if be2.State == Preempted {
		preempted++
	}
	if preempted != 1 {
		t.Fatalf("preempted %d best-effort jobs, want exactly 1", preempted)
	}
}

func TestBestEffortNeverPreempts(t *testing.T) {
	_, _, s := newServer()
	s.Submit("cluster='hercule'/nodes=ALL,walltime=10", SubmitOptions{User: "alice"})
	be, _ := s.Submit("cluster='hercule'/nodes=1,walltime=1", SubmitOptions{BestEffort: true})
	if be.State != Waiting {
		t.Fatalf("best-effort = %v, should wait behind a normal job", be.State)
	}
	be2, _ := s.Submit("cluster='hercule'/nodes=1,walltime=1", SubmitOptions{
		BestEffort: true, Immediate: true,
	})
	if be2.State != Canceled {
		t.Fatalf("immediate best-effort = %v, want Canceled", be2.State)
	}
}

func TestBestEffortDoesNotPreemptPeerBestEffort(t *testing.T) {
	_, _, s := newServer()
	be1, _ := s.Submit("cluster='sol'/nodes=ALL,walltime=100", SubmitOptions{BestEffort: true})
	be2, _ := s.Submit("cluster='sol'/nodes=1,walltime=1", SubmitOptions{BestEffort: true})
	if be1.State != Running || be2.State != Waiting {
		t.Fatalf("be1=%v be2=%v", be1.State, be2.State)
	}
}

func TestCanStartNowSeesThroughBestEffort(t *testing.T) {
	_, _, s := newServer()
	s.Submit("cluster='sol'/nodes=ALL,walltime=100", SubmitOptions{BestEffort: true})
	ok, err := s.CanStartNow("cluster='sol'/nodes=ALL,walltime=1")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("availability probe blind to preemptable resources")
	}
	// But a cluster held by a NORMAL job is genuinely unavailable.
	s2 := NewServer(simclock.New(1), testbed.Default())
	s2.Submit("cluster='sol'/nodes=ALL,walltime=100", SubmitOptions{})
	ok, _ = s2.CanStartNow("cluster='sol'/nodes=ALL,walltime=1")
	if ok {
		t.Fatal("probe claims availability through a normal job")
	}
}

func TestFreeOrPreemptable(t *testing.T) {
	_, tb, s := newServer()
	e := MustParseExpr("cluster='sol'")
	s.Submit("cluster='sol'/nodes=12,walltime=100", SubmitOptions{BestEffort: true})
	s.Submit("cluster='sol'/nodes=4,walltime=100", SubmitOptions{})
	if got := s.FreeMatching(e); got != 4 {
		t.Fatalf("free = %d, want 4", got)
	}
	if got := s.FreeOrPreemptable(e); got != 16 {
		t.Fatalf("free-or-preemptable = %d, want 16", got)
	}
	tb.Node("sol-20.sophia").State = testbed.Dead
	if got := s.FreeOrPreemptable(e); got > 16 {
		t.Fatalf("dead node counted: %d", got)
	}
}

func TestPreemptionFreesWalltimeEvent(t *testing.T) {
	c, _, s := newServer()
	be, _ := s.Submit("cluster='uvb'/nodes=ALL,walltime=2", SubmitOptions{BestEffort: true})
	s.Submit("cluster='uvb'/nodes=ALL,walltime=1", SubmitOptions{})
	if be.State != Preempted {
		t.Fatal("not preempted")
	}
	// The dead job's walltime expiry must not double-free nodes.
	c.RunUntil(5 * simclock.Hour)
	if s.BusyNodes() != 0 {
		t.Fatalf("busy = %d after everything ended", s.BusyNodes())
	}
	if be.State != Preempted {
		t.Fatalf("state mutated post-mortem: %v", be.State)
	}
}

func TestQueuedNormalJobPreemptsWhenDue(t *testing.T) {
	c, _, s := newServer()
	// Normal job holds the cluster; BE job queues; normal ends; BE runs;
	// then another normal job preempts it via the queue path.
	n1, _ := s.Submit("cluster='hercule'/nodes=ALL,walltime=1", SubmitOptions{})
	be, _ := s.Submit("cluster='hercule'/nodes=ALL,walltime=50", SubmitOptions{BestEffort: true})
	c.RunUntil(2 * simclock.Hour)
	if n1.State != Terminated || be.State != Running {
		t.Fatalf("n1=%v be=%v", n1.State, be.State)
	}
	n2, _ := s.Submit("cluster='hercule'/nodes=ALL,walltime=1", SubmitOptions{})
	if n2.State != Running || be.State != Preempted {
		t.Fatalf("n2=%v be=%v", n2.State, be.State)
	}
}
