package oar

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/testbed"
)

func props(kv ...string) map[string]string {
	m := map[string]string{}
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func TestParseExprBasics(t *testing.T) {
	cases := []struct {
		expr  string
		props map[string]string
		want  bool
	}{
		{"cluster='taurus'", props("cluster", "taurus"), true},
		{"cluster='taurus'", props("cluster", "sol"), false},
		{"cluster!='taurus'", props("cluster", "sol"), true},
		{"gpu='YES'", props("gpu", "NO"), false},
		{"cores>8", props("cores", "12"), true},
		{"cores>8", props("cores", "8"), false},
		{"cores>=8", props("cores", "8"), true},
		{"cores<8", props("cores", "4"), true},
		{"cores<=4", props("cores", "4"), true},
		{"ram_gb=32", props("ram_gb", "32"), true},
		// numeric equality, not string equality
		{"ram_gb=32", props("ram_gb", "32.0"), true},
		{"cluster='a' and gpu='YES'", props("cluster", "a", "gpu", "YES"), true},
		{"cluster='a' and gpu='YES'", props("cluster", "a", "gpu", "NO"), false},
		{"cluster='a' or cluster='b'", props("cluster", "b"), true},
		{"not cluster='a'", props("cluster", "b"), true},
		{"not (cluster='a' or cluster='b')", props("cluster", "c"), true},
		{"(cluster='a' or cluster='b') and gpu='YES'", props("cluster", "b", "gpu", "YES"), true},
		// missing property never matches
		{"whatever='x'", props(), false},
		// case-insensitive keywords, double quotes
		{`cluster="a" AND gpu="YES"`, props("cluster", "a", "gpu", "YES"), true},
		// empty expression is always true
		{"", props(), true},
		{"   ", props("x", "y"), true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.expr)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.expr, err)
			continue
		}
		if got := e.Eval(c.props); got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.expr, c.props, got, c.want)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	// and binds tighter than or: a or b and c == a or (b and c)
	e := MustParseExpr("x='1' or x='2' and y='3'")
	if !e.Eval(props("x", "1")) {
		t.Error("x=1 should satisfy")
	}
	if e.Eval(props("x", "2", "y", "4")) {
		t.Error("x=2,y=4 should not satisfy")
	}
	if !e.Eval(props("x", "2", "y", "3")) {
		t.Error("x=2,y=3 should satisfy")
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{
		"cluster=",
		"cluster",
		"='a'",
		"cluster='a' and",
		"(cluster='a'",
		"cluster='a')",
		"cluster ! 'a'",
		"cluster='unterminated",
		"cluster='a' garbage='b'",
		"cluster@='a'",
	}
	for _, s := range bad {
		if _, err := ParseExpr(s); err == nil {
			t.Errorf("ParseExpr(%q) should fail", s)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseExpr("((")
}

// Property: String() of a parsed expression re-parses to an expression with
// identical evaluation on arbitrary property maps.
func TestExprStringRoundTripProperty(t *testing.T) {
	exprs := []string{
		"cluster='a'",
		"cluster='a' and gpu='YES'",
		"not (cluster='a' or cores>8)",
		"eth10g='Y' or (ib='YES' and cores>=12)",
		"",
	}
	f := func(cluster string, cores uint8, gpuYes bool) bool {
		p := props("cluster", strings.ToLower(cluster),
			"cores", string(rune('0'+cores%10)),
			"gpu", map[bool]string{true: "YES", false: "NO"}[gpuYes],
			"eth10g", "N", "ib", "NO")
		for _, s := range exprs {
			e1, err := ParseExpr(s)
			if err != nil {
				return false
			}
			e2, err := ParseExpr(e1.String())
			if err != nil {
				return false
			}
			if e1.Eval(p) != e2.Eval(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRequest(t *testing.T) {
	// The paper's slide-7 example, verbatim modulo typographic quotes.
	r, err := ParseRequest("cluster='a' and gpu='YES'/nodes=1+cluster='b' and eth10g='Y'/nodes=2,walltime=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(r.Segments))
	}
	if r.Segments[0].Nodes != 1 || r.Segments[1].Nodes != 2 {
		t.Fatalf("node counts = %d,%d", r.Segments[0].Nodes, r.Segments[1].Nodes)
	}
	if r.Walltime != 2*3600*1e9 {
		t.Fatalf("walltime = %v", r.Walltime)
	}
}

func TestParseRequestVariants(t *testing.T) {
	r := MustParseRequest("nodes=3")
	if len(r.Segments) != 1 || r.Segments[0].Nodes != 3 {
		t.Fatalf("bare nodes parse: %+v", r)
	}
	if r.Walltime.Duration().Hours() != 1 {
		t.Fatalf("default walltime = %v, want 1h", r.Walltime)
	}

	r = MustParseRequest("cluster='sol'/nodes=ALL,walltime=0:30")
	if r.Segments[0].Nodes != AllNodes {
		t.Fatal("ALL not parsed")
	}
	if r.Walltime.Duration().Minutes() != 30 {
		t.Fatalf("walltime = %v, want 30m", r.Walltime)
	}

	r = MustParseRequest("nodes=1,walltime=1:30:30")
	if got := r.Walltime.Duration().Seconds(); got != 5430 {
		t.Fatalf("walltime seconds = %v", got)
	}
}

func TestParseRequestErrors(t *testing.T) {
	bad := []string{
		"",
		",walltime=2",
		"nodes=0",
		"nodes=-2",
		"nodes=xyz",
		"cluster='a'/n=2",
		"cluster='a'/nodes=1,walltime=0",
		"cluster='a'/nodes=1,walltime=1:2:3:4",
		"cluster=('a'/nodes=1",
	}
	for _, s := range bad {
		if _, err := ParseRequest(s); err == nil {
			t.Errorf("ParseRequest(%q) should fail", s)
		}
	}
}

func TestRequestStringRoundTrip(t *testing.T) {
	in := "cluster='a' and gpu='YES'/nodes=1+eth10g='Y'/nodes=2,walltime=2:00:00"
	r1 := MustParseRequest(in)
	r2 := MustParseRequest(r1.String())
	if r1.Walltime != r2.Walltime || len(r1.Segments) != len(r2.Segments) {
		t.Fatalf("round trip mismatch: %v vs %v", r1, r2)
	}
	for i := range r1.Segments {
		if r1.Segments[i].Nodes != r2.Segments[i].Nodes {
			t.Fatal("segment node counts diverged")
		}
	}
}

func TestProperties(t *testing.T) {
	tb := testbed.Default()
	p := Properties(tb.Node("orion-1.lyon"))
	if p["cluster"] != "orion" || p["site"] != "lyon" {
		t.Fatalf("identity props: %v", p)
	}
	if p["gpu"] != "YES" {
		t.Errorf("orion gpu = %q", p["gpu"])
	}
	if p["cores"] != "12" {
		t.Errorf("orion cores = %q", p["cores"])
	}
	if p["disktype"] != "HDD" {
		t.Errorf("orion disktype = %q", p["disktype"])
	}
	p = Properties(tb.Node("paravance-3.rennes"))
	if p["eth10g"] != "Y" || p["disktype"] != "SSD" {
		t.Errorf("paravance props: eth10g=%q disktype=%q", p["eth10g"], p["disktype"])
	}
	p = Properties(tb.Node("taurus-1.lyon"))
	if p["ib"] != "YES" {
		t.Errorf("taurus ib = %q", p["ib"])
	}
}
