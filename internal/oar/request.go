package oar

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// AllNodes requests every node matching the segment's expression (used by
// hardware-centric tests that need a whole cluster, slide 16).
const AllNodes = -1

// Segment is one resource demand: N nodes matching an expression.
type Segment struct {
	Expr  Expr
	Nodes int // AllNodes for "every matching node"
	raw   string

	// anchorKey/anchorVal cache the narrowing constraint extracted from
	// Expr at parse time ("cluster"/"site"/"host" equality, or empty), so
	// the allocator can scan just the anchored subset of the testbed.
	anchorKey, anchorVal string
}

// Anchor returns the segment's parse-time narrowing constraint: a
// ("cluster"|"site"|"host", value) pair every matching node must satisfy,
// or ("", "") when the expression carries none. The allocator uses it to
// scan one cluster or site instead of the whole testbed; the federated
// gateway uses it to route a submission to the shard owning the anchored
// site.
func (s Segment) Anchor() (key, val string) { return s.anchorKey, s.anchorVal }

func (s Segment) String() string {
	n := "ALL"
	if s.Nodes != AllNodes {
		n = strconv.Itoa(s.Nodes)
	}
	if s.raw == "" {
		return "nodes=" + n
	}
	return s.raw + "/nodes=" + n
}

// Request is a full oarsub -l resource request, e.g.
//
//	cluster='a' and gpu='YES'/nodes=1+cluster='b' and eth10g='Y'/nodes=2,walltime=2
type Request struct {
	Segments []Segment
	Walltime simclock.Time
}

func (r Request) String() string {
	parts := make([]string, len(r.Segments))
	for i, s := range r.Segments {
		parts[i] = s.String()
	}
	return strings.Join(parts, "+") + ",walltime=" + formatWalltime(r.Walltime)
}

func formatWalltime(w simclock.Time) string {
	secs := int64(w.Duration().Seconds())
	return fmt.Sprintf("%d:%02d:%02d", secs/3600, secs/60%60, secs%60)
}

// ParseRequest parses the oarsub -l syntax. Walltime accepts either plain
// hours ("2") or "H:MM" / "H:MM:SS". A missing walltime defaults to 1 hour,
// like OAR.
func ParseRequest(s string) (Request, error) {
	req := Request{Walltime: simclock.Hour}
	body := s
	if i := strings.LastIndex(s, ",walltime="); i >= 0 {
		body = s[:i]
		w, err := parseWalltime(s[i+len(",walltime="):])
		if err != nil {
			return Request{}, err
		}
		req.Walltime = w
	}
	if strings.TrimSpace(body) == "" {
		return Request{}, fmt.Errorf("oar: empty resource request %q", s)
	}
	for _, part := range strings.Split(body, "+") {
		seg, err := parseSegment(part)
		if err != nil {
			return Request{}, err
		}
		req.Segments = append(req.Segments, seg)
	}
	return req, nil
}

// PinnedToSite returns a copy of the request in which every unanchored
// segment is additionally constrained to the named site (site='X' AND
// expr) and re-anchored, so the allocator scans only that site's nodes.
// Already-anchored segments pass through unchanged — callers are expected
// to have validated that those anchors fall within the site (the
// federated gateway's site-scoped submit route does exactly that).
func (r Request) PinnedToSite(site string) Request {
	out := Request{Walltime: r.Walltime, Segments: append([]Segment(nil), r.Segments...)}
	for i, seg := range out.Segments {
		if seg.anchorKey != "" {
			continue
		}
		pin := cmpExpr{key: "site", op: "=", val: site}
		e := Expr(pin)
		raw := pin.String()
		if _, always := seg.Expr.(trueExpr); !always {
			// Parenthesize the original expression: it may contain OR.
			e = andExpr{pin, seg.Expr}
			raw = raw + " and (" + seg.raw + ")"
		}
		out.Segments[i] = Segment{Expr: e, Nodes: seg.Nodes, raw: raw,
			anchorKey: "site", anchorVal: site}
	}
	return out
}

// MustParseRequest is ParseRequest for requests known valid at compile time.
func MustParseRequest(s string) Request {
	r, err := ParseRequest(s)
	if err != nil {
		panic(err)
	}
	return r
}

func parseSegment(s string) (Segment, error) {
	exprPart, nodesPart := "", s
	if i := strings.LastIndex(s, "/"); i >= 0 {
		exprPart, nodesPart = s[:i], s[i+1:]
	}
	nodesPart = strings.TrimSpace(nodesPart)
	if !strings.HasPrefix(nodesPart, "nodes=") {
		return Segment{}, fmt.Errorf("oar: segment %q lacks nodes=N", s)
	}
	nStr := strings.TrimPrefix(nodesPart, "nodes=")
	var n int
	if strings.EqualFold(nStr, "ALL") {
		n = AllNodes
	} else {
		v, err := strconv.Atoi(nStr)
		if err != nil || v <= 0 {
			return Segment{}, fmt.Errorf("oar: bad node count %q in segment %q", nStr, s)
		}
		n = v
	}
	e, err := ParseExpr(exprPart)
	if err != nil {
		return Segment{}, err
	}
	ak, av := anchor(e)
	return Segment{Expr: e, Nodes: n, raw: strings.TrimSpace(exprPart),
		anchorKey: ak, anchorVal: av}, nil
}

func parseWalltime(s string) (simclock.Time, error) {
	s = strings.TrimSpace(s)
	parts := strings.Split(s, ":")
	switch len(parts) {
	case 1:
		h, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || h <= 0 {
			return 0, fmt.Errorf("oar: bad walltime %q", s)
		}
		return simclock.Time(h * float64(simclock.Hour)), nil
	case 2, 3:
		var total simclock.Time
		units := []simclock.Time{simclock.Hour, simclock.Minute, simclock.Second}
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("oar: bad walltime %q", s)
			}
			total += simclock.Time(v) * units[i]
		}
		if total <= 0 {
			return 0, fmt.Errorf("oar: zero walltime %q", s)
		}
		return total, nil
	}
	return 0, fmt.Errorf("oar: bad walltime %q", s)
}

// Properties derives the OAR property map of a node from its live
// inventory. The Reference API fills the OAR database on a real testbed
// (slide 7); here the live inventory plays that role and the property names
// follow Grid'5000 conventions (gpu='YES', eth10g='Y', ...).
func Properties(n *testbed.Node) map[string]string {
	return map[string]string{
		"cluster":   n.Cluster,
		"site":      n.Site,
		"host":      n.Name,
		"cores":     strconv.Itoa(n.Cores()),
		"ram_gb":    strconv.Itoa(n.Inv.RAMGB),
		"gpu":       yesNo(n.Inv.HasGPU()),
		"ib":        yesNo(n.Inv.HasIB()),
		"eth10g":    yn(n.Inv.Has10G()),
		"disktype":  diskType(n),
		"cpu_model": n.Inv.CPU.Model,
	}
}

// yesNo renders a boolean property the Grid'5000 way ("YES"/"NO").
func yesNo(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}

// yn renders a boolean property in the short form ("Y"/"N").
func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

func diskType(n *testbed.Node) string {
	if len(n.Inv.Disks) == 0 {
		return "none"
	}
	if n.Inv.Disks[0].SSD() {
		return "SSD"
	}
	return "HDD"
}
