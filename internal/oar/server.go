package oar

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// JobState is the lifecycle state of an OAR job.
type JobState int

const (
	// Waiting means the job is queued, not yet allocated.
	Waiting JobState = iota
	// Running means resources are allocated and the walltime is ticking.
	Running
	// Terminated means the job ended (normally or via early release).
	Terminated
	// Canceled means the job was withdrawn before it started.
	Canceled
)

func (s JobState) String() string {
	switch s {
	case Waiting:
		return "Waiting"
	case Running:
		return "Running"
	case Terminated:
		return "Terminated"
	case Canceled:
		return "Canceled"
	case Preempted:
		return "Preempted"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one resource reservation.
type Job struct {
	ID      int
	User    string
	Request Request
	State   JobState

	SubmittedAt simclock.Time
	StartedAt   simclock.Time
	EndedAt     simclock.Time

	// Nodes assigned while Running/Terminated.
	Nodes []string

	// OnStart fires when the job's resources are allocated; test jobs run
	// their payload from here.
	OnStart func(j *Job)

	bestEffort    bool
	walltimeEvent *simclock.Event
}

// Server is the OAR resource manager for one testbed. A single Server
// manages all sites (like Grid'5000's per-site OARs federated behind one
// API; one instance keeps the simulation simple while preserving the
// scheduling semantics the paper's framework interacts with).
//
// The server is safe for concurrent use: CI build scripts run on executor
// goroutines (see internal/ci) and submit/release jobs while the event
// loop runs walltime expiries, so every public method takes the server
// mutex. OnStart callbacks always fire with the mutex released — they may
// re-enter the server (Submit/Release from a callback is the normal test
// payload pattern).
type Server struct {
	mu    sync.Mutex
	clock *simclock.Clock
	tb    *testbed.Testbed

	nextID int
	jobs   map[int]*Job
	queue  []*Job         // waiting jobs, FCFS order
	busy   map[string]int // node name → running job ID

	// Scheduling fast path. The node list and the cluster/site indexes are
	// static (topology never changes); expressions evaluate directly
	// against live node state (Expr.EvalNode), so no property maps are
	// built on the allocation path. Requests anchored on cluster='x' or
	// site='y' scan only that subset of nodes.
	nodeList  []*testbed.Node
	byCluster map[string][]*testbed.Node
	bySite    map[string][]*testbed.Node

	// reqCache interns parsed requests by their source string: the test
	// scheduler re-probes a fixed set of requests every poll and user jobs
	// draw from a small family of request shapes, so parsing each string
	// once removes the parser from the hot path entirely.
	reqCache map[string]Request

	// Scratch buffers reused across allocation attempts (all access is
	// under the server mutex). chosen/taken/free hold the in-progress
	// selection; only a successful allocation copies the result out.
	chosenScratch []string
	freeScratch   []*testbed.Node
	orderScratch  []*testbed.Node
	hostScratch   [1]*testbed.Node

	// Re-entrancy guard: OnStart callbacks may Submit or Release
	// synchronously, which re-invokes Schedule.
	inSchedule bool
	again      bool

	// stats
	submitted, started, canceled, preempted int
}

// NewServer returns an OAR server over the testbed.
func NewServer(clock *simclock.Clock, tb *testbed.Testbed) *Server {
	s := &Server{
		clock:     clock,
		tb:        tb,
		jobs:      map[int]*Job{},
		busy:      map[string]int{},
		nodeList:  tb.Nodes(),
		byCluster: map[string][]*testbed.Node{},
		bySite:    map[string][]*testbed.Node{},
		reqCache:  map[string]Request{},
	}
	for _, n := range s.nodeList {
		s.byCluster[n.Cluster] = append(s.byCluster[n.Cluster], n)
		s.bySite[n.Site] = append(s.bySite[n.Site], n)
	}
	return s
}

// parseRequestCached is ParseRequest through the server's intern table.
// The cached Request (including its Segments slice) is shared between
// callers and must be treated as read-only — which every consumer does.
// The caller holds the mutex.
func (s *Server) parseRequestCachedLocked(request string) (Request, error) {
	if req, ok := s.reqCache[request]; ok {
		return req, nil
	}
	req, err := ParseRequest(request)
	if err != nil {
		return Request{}, err
	}
	if len(s.reqCache) >= 8192 { // defensive bound; request families are small
		s.reqCache = map[string]Request{}
	}
	s.reqCache[request] = req
	return req, nil
}

// segmentCandidates narrows the nodes a segment can possibly match using
// its parse-time anchor, falling back to the full node list.
func (s *Server) segmentCandidates(seg Segment) []*testbed.Node {
	switch seg.anchorKey {
	case "cluster":
		return s.byCluster[seg.anchorVal]
	case "site":
		return s.bySite[seg.anchorVal]
	case "host":
		if n := s.tb.Node(seg.anchorVal); n != nil {
			s.hostScratch[0] = n
			return s.hostScratch[:]
		}
		return nil
	}
	return s.nodeList
}

// SubmitOptions tweak job submission.
type SubmitOptions struct {
	User string
	// Immediate cancels the job if it cannot start at submission time —
	// slide 17: "if that testbed job fails to be scheduled immediately, it
	// is cancelled and the build is marked as unstable".
	Immediate bool
	// BestEffort runs the job on idle resources only; it is killed the
	// moment a normal job needs its nodes.
	BestEffort bool
	// OnStart runs when resources are allocated.
	OnStart func(*Job)
}

// Submit parses and enqueues a resource request, then attempts to schedule
// the queue. The returned job's State tells the caller what happened:
// Running (scheduled now), Waiting (queued), or Canceled (Immediate was set
// and resources were unavailable).
func (s *Server) Submit(request string, opts SubmitOptions) (*Job, error) {
	s.mu.Lock()
	req, err := s.parseRequestCachedLocked(request)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.SubmitReq(req, opts), nil
}

// SubmitReq is Submit for a pre-parsed request — nothing can fail. The
// federated gateway submits through it after pinning site constraints
// onto the parsed form (Request.PinnedToSite).
func (s *Server) SubmitReq(req Request, opts SubmitOptions) *Job {
	s.mu.Lock()
	s.nextID++
	j := &Job{
		ID:          s.nextID,
		User:        opts.User,
		Request:     req,
		State:       Waiting,
		SubmittedAt: s.clock.Now(),
		OnStart:     opts.OnStart,
		bestEffort:  opts.BestEffort,
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.submitted++
	// A new submission can only start itself (first-fit: it cannot free
	// resources for anyone else), so try just this job instead of walking
	// the whole waiting queue — submissions are the hot path.
	started := s.tryStartOneLocked(j)
	if opts.Immediate && j.State == Waiting {
		s.cancelLocked(j)
	}
	s.mu.Unlock()
	if started && j.OnStart != nil {
		j.OnStart(j)
	}
	return j
}

// Job returns the job with the given ID, or nil.
func (s *Server) Job(id int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel withdraws a waiting job. Canceling a running or finished job is an
// error; use Release to end a running job early.
func (s *Server) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("oar: no job %d", id)
	}
	if j.State != Waiting {
		return fmt.Errorf("oar: job %d is %s, cannot cancel", id, j.State)
	}
	s.cancelLocked(j)
	return nil
}

func (s *Server) cancelLocked(j *Job) {
	j.State = Canceled
	j.EndedAt = s.clock.Now()
	s.removeFromQueue(j)
	s.canceled++
}

// Release ends a running job before its walltime (tests finishing early
// free resources for the next test).
func (s *Server) Release(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("oar: no job %d", id)
	}
	if j.State != Running {
		return fmt.Errorf("oar: job %d is %s, cannot release", id, j.State)
	}
	s.finishLocked(j)
	return nil
}

func (s *Server) finishLocked(j *Job) {
	j.State = Terminated
	j.EndedAt = s.clock.Now()
	if j.walltimeEvent != nil {
		j.walltimeEvent.Cancel()
	}
	for _, n := range j.Nodes {
		delete(s.busy, n)
	}
	// Freed resources may unblock queued jobs.
	s.scheduleLocked()
}

func (s *Server) removeFromQueue(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Schedule runs scheduling passes over the waiting queue until no further
// job can start. Jobs are considered in FCFS order but a stuck job does not
// block later ones (first-fit, i.e. conservative backfilling without
// reservations — OAR proper uses a Gantt, but what matters to the paper's
// external scheduler is only that whole-cluster jobs wait a long time under
// contention, which first-fit preserves).
//
// Re-entrant calls (from OnStart callbacks that Submit or Release) are
// deferred to an extra pass instead of recursing.
func (s *Server) Schedule() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scheduleLocked()
}

// scheduleLocked is Schedule with the mutex held. OnStart callbacks fire
// with the mutex temporarily released, so they may re-enter the server.
func (s *Server) scheduleLocked() {
	if s.inSchedule {
		s.again = true
		return
	}
	s.inSchedule = true
	defer func() { s.inSchedule = false }()
	for {
		s.again = false
		started := s.schedulePass()
		for _, j := range started {
			if j.OnStart != nil {
				s.mu.Unlock()
				j.OnStart(j)
				s.mu.Lock()
			}
		}
		if !s.again && len(started) == 0 {
			return
		}
	}
}

// tryStartOneLocked attempts to start a single waiting job right now. It
// reports whether the job started; the caller fires OnStart after
// releasing the mutex.
func (s *Server) tryStartOneLocked(j *Job) bool {
	if s.inSchedule {
		// A Submit from inside an OnStart callback: let the outer Schedule
		// loop pick the job up on its extra pass.
		s.again = true
		return false
	}
	nodes, ok := s.startWithPreemption(j)
	if !ok {
		return false
	}
	s.removeFromQueue(j)
	s.startJob(j, nodes)
	return true
}

// startJob transitions a waiting job to Running on the given nodes. The
// caller holds the mutex, is responsible for removing the job from the
// queue, and fires OnStart itself (with the mutex released).
func (s *Server) startJob(j *Job, nodes []string) {
	j.State = Running
	j.StartedAt = s.clock.Now()
	j.Nodes = nodes
	for _, n := range nodes {
		s.busy[n] = j.ID
	}
	s.started++
	jj := j
	j.walltimeEvent = s.clock.After(j.Request.Walltime, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if jj.State == Running {
			s.finishLocked(jj)
		}
	})
}

// schedulePass walks the queue once, starting every job that fits. OnStart
// callbacks are NOT invoked here (the caller fires them after the walk) so
// that queue mutations from callbacks cannot corrupt the iteration.
// The caller holds the mutex.
func (s *Server) schedulePass() []*Job {
	var started []*Job
	i := 0
	for i < len(s.queue) {
		j := s.queue[i]
		if j.State != Waiting {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			continue
		}
		nodes, ok := s.startWithPreemption(j)
		if !ok {
			i++
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.startJob(j, nodes)
		started = append(started, j)
	}
	return started
}

// allocate tries to satisfy every segment of the request with distinct free
// Alive nodes. Returns the chosen node names sorted, or ok=false.
func (s *Server) allocate(req Request) ([]string, bool) {
	return s.allocatePreferring(req, nil)
}

// allocatePreferring is allocate with an optional penalty set: when picking
// N of M candidate nodes, non-penalized nodes are chosen first. The
// preemption path penalizes nodes held by best-effort jobs so that only the
// minimum number of them get killed.
//
// This is the scheduler's hottest path (every Submit, every availability
// probe): candidates come pre-narrowed by the segment anchor, expressions
// evaluate against live node state without property maps, and all working
// storage is reused scratch — a failed attempt allocates nothing, a
// successful one allocates only the returned name slice.
func (s *Server) allocatePreferring(req Request, penalized map[string]bool) ([]string, bool) {
	chosen := s.chosenScratch[:0]
	defer func() { s.chosenScratch = chosen[:0] }()
	// taken tracks nodes already claimed by an earlier segment of the same
	// request; requests are at most a few segments of bounded size, so a
	// linear scan beats a map here.
	isTaken := func(name string) bool {
		for _, t := range chosen {
			if t == name {
				return true
			}
		}
		return false
	}
	multi := len(req.Segments) > 1
	for _, seg := range req.Segments {
		cands := s.segmentCandidates(seg)
		if seg.Nodes == AllNodes {
			// Every matching node must exist, be Alive and be free.
			matched := false
			for _, n := range cands {
				if multi && isTaken(n.Name) {
					continue
				}
				if !seg.Expr.EvalNode(n) {
					continue
				}
				matched = true
				if n.State != testbed.Alive {
					return nil, false
				}
				if _, used := s.busy[n.Name]; used {
					return nil, false
				}
				chosen = append(chosen, n.Name)
			}
			if !matched {
				return nil, false
			}
			continue
		}
		free := s.freeScratch[:0]
		for _, n := range cands {
			if multi && isTaken(n.Name) {
				continue
			}
			if n.State != testbed.Alive {
				continue
			}
			if _, used := s.busy[n.Name]; used {
				continue
			}
			if !seg.Expr.EvalNode(n) {
				continue
			}
			free = append(free, n)
			// First-fit takes the first N free candidates in testbed
			// order; without a penalty set we can stop right there.
			if penalized == nil && len(free) == seg.Nodes {
				break
			}
		}
		s.freeScratch = free[:0]
		if len(free) < seg.Nodes {
			return nil, false
		}
		if penalized != nil {
			// Stable partition: genuinely free nodes first.
			ordered := s.orderScratch[:0]
			for _, n := range free {
				if !penalized[n.Name] {
					ordered = append(ordered, n)
				}
			}
			for _, n := range free {
				if penalized[n.Name] {
					ordered = append(ordered, n)
				}
			}
			s.orderScratch = ordered[:0]
			free = ordered
		}
		for _, n := range free[:seg.Nodes] {
			chosen = append(chosen, n.Name)
		}
	}
	sort.Strings(chosen)
	out := make([]string, len(chosen))
	copy(out, chosen)
	return out, true
}

// ---- availability queries (used by the external test scheduler) ----

// FreeMatching counts free Alive nodes matching the expression.
func (s *Server) FreeMatching(e Expr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	for _, n := range s.nodeList {
		if n.State != testbed.Alive {
			continue
		}
		if _, used := s.busy[n.Name]; used {
			continue
		}
		if e.EvalNode(n) {
			count++
		}
	}
	return count
}

// CanStartNow reports whether a normal-priority request could be allocated
// immediately, counting nodes that would be freed by preempting best-effort
// jobs.
func (s *Server) CanStartNow(request string) (bool, error) {
	s.mu.Lock()
	req, err := s.parseRequestCachedLocked(request)
	if err != nil {
		s.mu.Unlock()
		return false, err
	}
	ok := s.canStartNowLocked(req)
	s.mu.Unlock()
	return ok, nil
}

// CanStartNowReq is CanStartNow for a pre-parsed request — the external
// scheduler parses each spec's request once at registration and probes
// with it every poll.
func (s *Server) CanStartNowReq(req Request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.canStartNowLocked(req)
}

func (s *Server) canStartNowLocked(req Request) bool {
	if _, ok := s.allocate(req); ok {
		return true
	}
	_, _, ok := s.allocateWithPreemption(req)
	return ok
}

// BusyNodes returns how many nodes are currently allocated.
func (s *Server) BusyNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.busy)
}

// QueueLength returns the number of waiting jobs.
func (s *Server) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats reports cumulative submission counters.
func (s *Server) Stats() (submitted, started, canceled int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted, s.started, s.canceled
}

// SetNodeState changes a node's OAR state (Alive/Absent/Suspected/Dead).
// Marking a busy node non-Alive does not kill its job (matching OAR, where
// suspecting happens at job epilogue); it only prevents new allocations.
//
// The write happens under the server mutex (in addition to the testbed's
// own mutex) so that it synchronizes with every state read the server's
// allocation and query paths perform under the same lock.
func (s *Server) SetNodeState(nodeName string, st testbed.NodeState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tb.SetNodeState(nodeName, st) {
		return fmt.Errorf("oar: unknown node %q", nodeName)
	}
	if st == testbed.Alive {
		s.scheduleLocked() // a healed node may unblock the queue
	}
	return nil
}

// ResourceInfo is a point-in-time view of one node as OAR sees it: its
// administrative state plus the job occupying it, if any. This is the wire
// form behind the gateway's /oar/resources endpoint (the equivalent of
// oarnodes / the OAR REST API's resource listing).
type ResourceInfo struct {
	Name    string `json:"name"`
	Cluster string `json:"cluster"`
	Site    string `json:"site"`
	State   string `json:"state"`
	JobID   int    `json:"job_id,omitempty"`
}

// Resources snapshots every node's allocation state in testbed order,
// optionally narrowed to one cluster (empty = all). The copy is taken under
// the server mutex, so it is consistent with a single scheduling instant.
func (s *Server) Resources(cluster string) []ResourceInfo {
	return s.ResourcesIn(cluster, "")
}

// ResourcesIn is Resources narrowed by cluster and/or site (empty = any).
// When both are given the filters intersect: a cluster that lives at a
// different site yields nothing. Unknown names simply select the empty
// subset — the gateway turns that into its 404/400 answers.
func (s *Server) ResourcesIn(cluster, site string) []ResourceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := s.nodeList
	switch {
	case cluster != "":
		nodes = s.byCluster[cluster]
	case site != "":
		nodes = s.bySite[site]
	}
	out := make([]ResourceInfo, 0, len(nodes))
	for _, n := range nodes {
		if site != "" && n.Site != site {
			continue
		}
		out = append(out, ResourceInfo{
			Name:    n.Name,
			Cluster: n.Cluster,
			Site:    n.Site,
			State:   n.State.String(),
			JobID:   s.busy[n.Name],
		})
	}
	return out
}

// JobInfo is a point-in-time copy of one job's externally visible state —
// the wire form behind the gateway's /oar/jobs endpoint (oarstat).
type JobInfo struct {
	ID             int      `json:"id"`
	User           string   `json:"user,omitempty"`
	Request        string   `json:"request"`
	State          string   `json:"state"`
	Nodes          []string `json:"nodes,omitempty"`
	SubmittedAtSec float64  `json:"submitted_at_sec"`
	StartedAtSec   float64  `json:"started_at_sec,omitempty"`
	EndedAtSec     float64  `json:"ended_at_sec,omitempty"`
}

// jobInfoLocked copies one job's externally visible state. The caller
// holds the server mutex.
func jobInfoLocked(j *Job) JobInfo {
	return JobInfo{
		ID:             j.ID,
		User:           j.User,
		Request:        j.Request.String(),
		State:          j.State.String(),
		Nodes:          append([]string(nil), j.Nodes...),
		SubmittedAtSec: j.SubmittedAt.Seconds(),
		StartedAtSec:   j.StartedAt.Seconds(),
		EndedAtSec:     j.EndedAt.Seconds(),
	}
}

// JobsInfo snapshots the most recently submitted limit jobs (0 = all),
// newest first. Node name slices are copied, so callers may hold the result
// while the scheduler keeps running.
func (s *Server) JobsInfo(limit int) []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit <= 0 || limit > s.nextID {
		limit = s.nextID
	}
	out := make([]JobInfo, 0, limit)
	for id := s.nextID; id >= 1 && len(out) < limit; id-- {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		out = append(out, jobInfoLocked(j))
	}
	return out
}

// JobInfoByID snapshots one job's externally visible state; ok is false
// when the job is unknown. Unlike Job, the returned copy is safe to read
// while the scheduler keeps mutating the live object.
func (s *Server) JobInfoByID(id int) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobInfo{}, false
	}
	return jobInfoLocked(j), true
}

// StateSummary counts nodes per state, the oarstate test family's input.
func (s *Server) StateSummary() map[testbed.NodeState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[testbed.NodeState]int{}
	for _, n := range s.nodeList {
		out[n.State]++
	}
	return out
}
