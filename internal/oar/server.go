package oar

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// JobState is the lifecycle state of an OAR job.
type JobState int

const (
	// Waiting means the job is queued, not yet allocated.
	Waiting JobState = iota
	// Running means resources are allocated and the walltime is ticking.
	Running
	// Terminated means the job ended (normally or via early release).
	Terminated
	// Canceled means the job was withdrawn before it started.
	Canceled
)

func (s JobState) String() string {
	switch s {
	case Waiting:
		return "Waiting"
	case Running:
		return "Running"
	case Terminated:
		return "Terminated"
	case Canceled:
		return "Canceled"
	case Preempted:
		return "Preempted"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one resource reservation.
type Job struct {
	ID      int
	User    string
	Request Request
	State   JobState

	SubmittedAt simclock.Time
	StartedAt   simclock.Time
	EndedAt     simclock.Time

	// Nodes assigned while Running/Terminated.
	Nodes []string

	// OnStart fires when the job's resources are allocated; test jobs run
	// their payload from here.
	OnStart func(j *Job)

	bestEffort    bool
	walltimeEvent *simclock.Event
}

// Server is the OAR resource manager for one testbed. A single Server
// manages all sites (like Grid'5000's per-site OARs federated behind one
// API; one instance keeps the simulation simple while preserving the
// scheduling semantics the paper's framework interacts with).
//
// The server is safe for concurrent use: CI build scripts run on executor
// goroutines (see internal/ci) and submit/release jobs while the event
// loop runs walltime expiries, so every public method takes the server
// mutex. OnStart callbacks always fire with the mutex released — they may
// re-enter the server (Submit/Release from a callback is the normal test
// payload pattern).
type Server struct {
	mu    sync.Mutex
	clock *simclock.Clock
	tb    *testbed.Testbed

	nextID int
	jobs   map[int]*Job
	queue  []*Job         // waiting jobs, FCFS order
	busy   map[string]int // node name → running job ID

	// Scheduling fast path: the node list is static, and the property maps
	// used for matching are cached per node (see nodeProps). The properties
	// requests select on (cluster, site, gpu, eth10g, ib, cores, disktype)
	// are immutable for a node's lifetime; mutable ones (ram_gb) are served
	// fresh by the package-level Properties function, which tests use.
	nodeList  []*testbed.Node
	propCache map[string]map[string]string

	// Re-entrancy guard: OnStart callbacks may Submit or Release
	// synchronously, which re-invokes Schedule.
	inSchedule bool
	again      bool

	// stats
	submitted, started, canceled, preempted int
}

// NewServer returns an OAR server over the testbed.
func NewServer(clock *simclock.Clock, tb *testbed.Testbed) *Server {
	return &Server{
		clock:     clock,
		tb:        tb,
		jobs:      map[int]*Job{},
		busy:      map[string]int{},
		nodeList:  tb.Nodes(),
		propCache: map[string]map[string]string{},
	}
}

// nodeProps returns the cached matching properties of a node.
func (s *Server) nodeProps(n *testbed.Node) map[string]string {
	if p, ok := s.propCache[n.Name]; ok {
		return p
	}
	p := Properties(n)
	s.propCache[n.Name] = p
	return p
}

// SubmitOptions tweak job submission.
type SubmitOptions struct {
	User string
	// Immediate cancels the job if it cannot start at submission time —
	// slide 17: "if that testbed job fails to be scheduled immediately, it
	// is cancelled and the build is marked as unstable".
	Immediate bool
	// BestEffort runs the job on idle resources only; it is killed the
	// moment a normal job needs its nodes.
	BestEffort bool
	// OnStart runs when resources are allocated.
	OnStart func(*Job)
}

// Submit parses and enqueues a resource request, then attempts to schedule
// the queue. The returned job's State tells the caller what happened:
// Running (scheduled now), Waiting (queued), or Canceled (Immediate was set
// and resources were unavailable).
func (s *Server) Submit(request string, opts SubmitOptions) (*Job, error) {
	req, err := ParseRequest(request)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	j := &Job{
		ID:          s.nextID,
		User:        opts.User,
		Request:     req,
		State:       Waiting,
		SubmittedAt: s.clock.Now(),
		OnStart:     opts.OnStart,
		bestEffort:  opts.BestEffort,
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.submitted++
	// A new submission can only start itself (first-fit: it cannot free
	// resources for anyone else), so try just this job instead of walking
	// the whole waiting queue — submissions are the hot path.
	started := s.tryStartOneLocked(j)
	if opts.Immediate && j.State == Waiting {
		s.cancelLocked(j)
	}
	s.mu.Unlock()
	if started && j.OnStart != nil {
		j.OnStart(j)
	}
	return j, nil
}

// Job returns the job with the given ID, or nil.
func (s *Server) Job(id int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel withdraws a waiting job. Canceling a running or finished job is an
// error; use Release to end a running job early.
func (s *Server) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("oar: no job %d", id)
	}
	if j.State != Waiting {
		return fmt.Errorf("oar: job %d is %s, cannot cancel", id, j.State)
	}
	s.cancelLocked(j)
	return nil
}

func (s *Server) cancelLocked(j *Job) {
	j.State = Canceled
	j.EndedAt = s.clock.Now()
	s.removeFromQueue(j)
	s.canceled++
}

// Release ends a running job before its walltime (tests finishing early
// free resources for the next test).
func (s *Server) Release(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("oar: no job %d", id)
	}
	if j.State != Running {
		return fmt.Errorf("oar: job %d is %s, cannot release", id, j.State)
	}
	s.finishLocked(j)
	return nil
}

func (s *Server) finishLocked(j *Job) {
	j.State = Terminated
	j.EndedAt = s.clock.Now()
	if j.walltimeEvent != nil {
		j.walltimeEvent.Cancel()
	}
	for _, n := range j.Nodes {
		delete(s.busy, n)
	}
	// Freed resources may unblock queued jobs.
	s.scheduleLocked()
}

func (s *Server) removeFromQueue(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Schedule runs scheduling passes over the waiting queue until no further
// job can start. Jobs are considered in FCFS order but a stuck job does not
// block later ones (first-fit, i.e. conservative backfilling without
// reservations — OAR proper uses a Gantt, but what matters to the paper's
// external scheduler is only that whole-cluster jobs wait a long time under
// contention, which first-fit preserves).
//
// Re-entrant calls (from OnStart callbacks that Submit or Release) are
// deferred to an extra pass instead of recursing.
func (s *Server) Schedule() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scheduleLocked()
}

// scheduleLocked is Schedule with the mutex held. OnStart callbacks fire
// with the mutex temporarily released, so they may re-enter the server.
func (s *Server) scheduleLocked() {
	if s.inSchedule {
		s.again = true
		return
	}
	s.inSchedule = true
	defer func() { s.inSchedule = false }()
	for {
		s.again = false
		started := s.schedulePass()
		for _, j := range started {
			if j.OnStart != nil {
				s.mu.Unlock()
				j.OnStart(j)
				s.mu.Lock()
			}
		}
		if !s.again && len(started) == 0 {
			return
		}
	}
}

// tryStartOneLocked attempts to start a single waiting job right now. It
// reports whether the job started; the caller fires OnStart after
// releasing the mutex.
func (s *Server) tryStartOneLocked(j *Job) bool {
	if s.inSchedule {
		// A Submit from inside an OnStart callback: let the outer Schedule
		// loop pick the job up on its extra pass.
		s.again = true
		return false
	}
	nodes, ok := s.startWithPreemption(j)
	if !ok {
		return false
	}
	s.removeFromQueue(j)
	s.startJob(j, nodes)
	return true
}

// startJob transitions a waiting job to Running on the given nodes. The
// caller holds the mutex, is responsible for removing the job from the
// queue, and fires OnStart itself (with the mutex released).
func (s *Server) startJob(j *Job, nodes []string) {
	j.State = Running
	j.StartedAt = s.clock.Now()
	j.Nodes = nodes
	for _, n := range nodes {
		s.busy[n] = j.ID
	}
	s.started++
	jj := j
	j.walltimeEvent = s.clock.After(j.Request.Walltime, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if jj.State == Running {
			s.finishLocked(jj)
		}
	})
}

// schedulePass walks the queue once, starting every job that fits. OnStart
// callbacks are NOT invoked here (the caller fires them after the walk) so
// that queue mutations from callbacks cannot corrupt the iteration.
// The caller holds the mutex.
func (s *Server) schedulePass() []*Job {
	var started []*Job
	i := 0
	for i < len(s.queue) {
		j := s.queue[i]
		if j.State != Waiting {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			continue
		}
		nodes, ok := s.startWithPreemption(j)
		if !ok {
			i++
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.startJob(j, nodes)
		started = append(started, j)
	}
	return started
}

// allocate tries to satisfy every segment of the request with distinct free
// Alive nodes. Returns the chosen node names sorted, or ok=false.
func (s *Server) allocate(req Request) ([]string, bool) {
	return s.allocatePreferring(req, nil)
}

// allocatePreferring is allocate with an optional penalty set: when picking
// N of M candidate nodes, non-penalized nodes are chosen first. The
// preemption path penalizes nodes held by best-effort jobs so that only the
// minimum number of them get killed.
func (s *Server) allocatePreferring(req Request, penalized map[string]bool) ([]string, bool) {
	taken := map[string]bool{}
	var chosen []string
	for _, seg := range req.Segments {
		var matching []*testbed.Node
		for _, n := range s.nodeList {
			if taken[n.Name] {
				continue
			}
			if seg.Expr.Eval(s.nodeProps(n)) {
				matching = append(matching, n)
			}
		}
		if seg.Nodes == AllNodes {
			// Every matching node must exist, be Alive and be free.
			if len(matching) == 0 {
				return nil, false
			}
			for _, n := range matching {
				if n.State != testbed.Alive {
					return nil, false
				}
				if _, used := s.busy[n.Name]; used {
					return nil, false
				}
				taken[n.Name] = true
				chosen = append(chosen, n.Name)
			}
			continue
		}
		var free []*testbed.Node
		for _, n := range matching {
			if n.State != testbed.Alive {
				continue
			}
			if _, used := s.busy[n.Name]; used {
				continue
			}
			free = append(free, n)
		}
		if len(free) < seg.Nodes {
			return nil, false
		}
		if penalized != nil {
			// Stable partition: genuinely free nodes first.
			ordered := make([]*testbed.Node, 0, len(free))
			for _, n := range free {
				if !penalized[n.Name] {
					ordered = append(ordered, n)
				}
			}
			for _, n := range free {
				if penalized[n.Name] {
					ordered = append(ordered, n)
				}
			}
			free = ordered
		}
		for _, n := range free[:seg.Nodes] {
			taken[n.Name] = true
			chosen = append(chosen, n.Name)
		}
	}
	sort.Strings(chosen)
	return chosen, true
}

// ---- availability queries (used by the external test scheduler) ----

// FreeMatching counts free Alive nodes matching the expression.
func (s *Server) FreeMatching(e Expr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	for _, n := range s.nodeList {
		if n.State != testbed.Alive {
			continue
		}
		if _, used := s.busy[n.Name]; used {
			continue
		}
		if e.Eval(s.nodeProps(n)) {
			count++
		}
	}
	return count
}

// CanStartNow reports whether a normal-priority request could be allocated
// immediately, counting nodes that would be freed by preempting best-effort
// jobs.
func (s *Server) CanStartNow(request string) (bool, error) {
	req, err := ParseRequest(request)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.allocate(req); ok {
		return true, nil
	}
	_, _, ok := s.allocateWithPreemption(req)
	return ok, nil
}

// BusyNodes returns how many nodes are currently allocated.
func (s *Server) BusyNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.busy)
}

// QueueLength returns the number of waiting jobs.
func (s *Server) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats reports cumulative submission counters.
func (s *Server) Stats() (submitted, started, canceled int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted, s.started, s.canceled
}

// SetNodeState changes a node's OAR state (Alive/Absent/Suspected/Dead).
// Marking a busy node non-Alive does not kill its job (matching OAR, where
// suspecting happens at job epilogue); it only prevents new allocations.
//
// The write happens under the server mutex (in addition to the testbed's
// own mutex) so that it synchronizes with every state read the server's
// allocation and query paths perform under the same lock.
func (s *Server) SetNodeState(nodeName string, st testbed.NodeState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tb.SetNodeState(nodeName, st) {
		return fmt.Errorf("oar: unknown node %q", nodeName)
	}
	if st == testbed.Alive {
		s.scheduleLocked() // a healed node may unblock the queue
	}
	return nil
}

// StateSummary counts nodes per state, the oarstate test family's input.
func (s *Server) StateSummary() map[testbed.NodeState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[testbed.NodeState]int{}
	for _, n := range s.nodeList {
		out[n.State]++
	}
	return out
}
