package oar

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

func newServer() (*simclock.Clock, *testbed.Testbed, *Server) {
	c := simclock.New(5)
	tb := testbed.Default()
	return c, tb, NewServer(c, tb)
}

func TestSubmitStartsImmediatelyWhenFree(t *testing.T) {
	_, _, s := newServer()
	j, err := s.Submit("cluster='taurus'/nodes=2,walltime=1", SubmitOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatalf("state = %v, want Running", j.State)
	}
	if len(j.Nodes) != 2 {
		t.Fatalf("assigned %d nodes", len(j.Nodes))
	}
	for _, n := range j.Nodes {
		if got := s.busy[n]; got != j.ID {
			t.Fatalf("node %s busy with job %d", n, got)
		}
	}
}

func TestWalltimeExpiryFreesNodes(t *testing.T) {
	c, _, s := newServer()
	j, _ := s.Submit("cluster='sol'/nodes=5,walltime=2", SubmitOptions{})
	if j.State != Running {
		t.Fatal("job did not start")
	}
	c.RunUntil(simclock.Hour)
	if j.State != Running {
		t.Fatal("job ended before walltime")
	}
	c.RunUntil(3 * simclock.Hour)
	if j.State != Terminated {
		t.Fatalf("state = %v after walltime", j.State)
	}
	if s.BusyNodes() != 0 {
		t.Fatalf("busy = %d after expiry", s.BusyNodes())
	}
	if j.EndedAt != 2*simclock.Hour {
		t.Fatalf("ended at %v", j.EndedAt)
	}
}

func TestQueueingAndFCFS(t *testing.T) {
	c, _, s := newServer()
	// sol has 20 nodes; take them all, then queue two more jobs.
	j1, _ := s.Submit("cluster='sol'/nodes=ALL,walltime=1", SubmitOptions{})
	if j1.State != Running {
		t.Fatal("j1 did not start")
	}
	j2, _ := s.Submit("cluster='sol'/nodes=12,walltime=1", SubmitOptions{})
	j3, _ := s.Submit("cluster='sol'/nodes=12,walltime=1", SubmitOptions{})
	if j2.State != Waiting || j3.State != Waiting {
		t.Fatalf("j2=%v j3=%v, want Waiting", j2.State, j3.State)
	}
	if s.QueueLength() != 2 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
	c.RunUntil(90 * simclock.Minute)
	// After j1 ends, j2 starts; j3 (needs 12 of 20, 12 busy) still waits.
	if j2.State != Running {
		t.Fatalf("j2 = %v after j1 finished", j2.State)
	}
	if j3.State != Waiting {
		t.Fatalf("j3 = %v, want Waiting", j3.State)
	}
	c.RunUntil(4 * simclock.Hour)
	if j3.State != Terminated {
		t.Fatalf("j3 = %v at end", j3.State)
	}
}

func TestFirstFitSkipsStuckJob(t *testing.T) {
	_, tb, s := newServer()
	// Make one sol node Suspected so nodes=ALL on sol can never start.
	tb.Node("sol-1.sophia").State = testbed.Suspected
	big, _ := s.Submit("cluster='sol'/nodes=ALL,walltime=1", SubmitOptions{})
	if big.State != Waiting {
		t.Fatalf("big = %v, want Waiting", big.State)
	}
	// A later small job must still start (first-fit).
	small, _ := s.Submit("cluster='sol'/nodes=2,walltime=1", SubmitOptions{})
	if small.State != Running {
		t.Fatalf("small = %v, want Running", small.State)
	}
}

func TestImmediateCancelsWhenBusy(t *testing.T) {
	_, _, s := newServer()
	s.Submit("cluster='hercule'/nodes=ALL,walltime=10", SubmitOptions{})
	j, err := s.Submit("cluster='hercule'/nodes=1,walltime=1", SubmitOptions{Immediate: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Canceled {
		t.Fatalf("immediate job = %v, want Canceled", j.State)
	}
	_, _, canceled := s.Stats()
	if canceled != 1 {
		t.Fatalf("canceled counter = %d", canceled)
	}
}

func TestImmediateStartsWhenFree(t *testing.T) {
	_, _, s := newServer()
	j, _ := s.Submit("cluster='hercule'/nodes=1,walltime=1", SubmitOptions{Immediate: true})
	if j.State != Running {
		t.Fatalf("immediate job = %v, want Running", j.State)
	}
}

func TestReleaseEarly(t *testing.T) {
	c, _, s := newServer()
	j, _ := s.Submit("cluster='uvb'/nodes=4,walltime=5", SubmitOptions{})
	c.RunUntil(10 * simclock.Minute)
	if err := s.Release(j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State != Terminated || s.BusyNodes() != 0 {
		t.Fatal("release did not free resources")
	}
	// The walltime event must not re-finish the job.
	c.RunUntil(6 * simclock.Hour)
	if j.EndedAt != 10*simclock.Minute {
		t.Fatalf("EndedAt = %v", j.EndedAt)
	}
	if err := s.Release(j.ID); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestCancelWaitingOnly(t *testing.T) {
	_, _, s := newServer()
	j1, _ := s.Submit("cluster='sol'/nodes=ALL,walltime=1", SubmitOptions{})
	j2, _ := s.Submit("cluster='sol'/nodes=1,walltime=1", SubmitOptions{})
	if err := s.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if j2.State != Canceled {
		t.Fatal("cancel failed")
	}
	if err := s.Cancel(j1.ID); err == nil {
		t.Fatal("canceled a running job")
	}
	if err := s.Cancel(9999); err == nil {
		t.Fatal("canceled a ghost job")
	}
}

func TestOnStartFires(t *testing.T) {
	c, _, s := newServer()
	s.Submit("cluster='sol'/nodes=ALL,walltime=1", SubmitOptions{})
	started := simclock.Time(-1)
	s.Submit("cluster='sol'/nodes=3,walltime=1", SubmitOptions{
		OnStart: func(j *Job) { started = c.Now() },
	})
	c.Run()
	if started != simclock.Hour {
		t.Fatalf("OnStart at %v, want 1h", started)
	}
}

func TestOnStartCanReleaseSynchronously(t *testing.T) {
	c, _, s := newServer()
	// A job whose payload finishes instantly and releases itself, plus a
	// queued successor: exercises Schedule's re-entrancy guard.
	s.Submit("cluster='sol'/nodes=ALL,walltime=4", SubmitOptions{})
	var j2, j3 *Job
	j2, _ = s.Submit("cluster='sol'/nodes=ALL,walltime=4", SubmitOptions{
		OnStart: func(j *Job) { s.Release(j.ID) },
	})
	j3, _ = s.Submit("cluster='sol'/nodes=2,walltime=1", SubmitOptions{})
	c.Run()
	if j2.State != Terminated || j3.State != Terminated {
		t.Fatalf("j2=%v j3=%v", j2.State, j3.State)
	}
	// j2 released at its own start time, so j3 started then too.
	if j3.StartedAt != j2.StartedAt {
		t.Fatalf("j3 started %v, j2 %v", j3.StartedAt, j2.StartedAt)
	}
}

func TestOnStartCanSubmitSynchronously(t *testing.T) {
	c, _, s := newServer()
	var child *Job
	s.Submit("cluster='uvb'/nodes=1,walltime=1", SubmitOptions{
		OnStart: func(j *Job) {
			child, _ = s.Submit("cluster='uvb'/nodes=1,walltime=1", SubmitOptions{})
		},
	})
	c.Run()
	if child == nil || child.State != Terminated {
		t.Fatalf("child = %+v", child)
	}
}

func TestMultiSegmentAllocation(t *testing.T) {
	_, _, s := newServer()
	j, err := s.Submit("cluster='adonis' and gpu='YES'/nodes=1+cluster='grisou' and eth10g='Y'/nodes=2,walltime=2", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running || len(j.Nodes) != 3 {
		t.Fatalf("state=%v nodes=%v", j.State, j.Nodes)
	}
	adonis, grisou := 0, 0
	for _, n := range j.Nodes {
		switch {
		case n[:6] == "adonis":
			adonis++
		case n[:6] == "grisou":
			grisou++
		}
	}
	if adonis != 1 || grisou != 2 {
		t.Fatalf("allocation split: %v", j.Nodes)
	}
}

func TestAllNodesRequiresWholeClusterAlive(t *testing.T) {
	_, tb, s := newServer()
	tb.Node("graphite-2.nancy").State = testbed.Dead
	ok, err := s.CanStartNow("cluster='graphite'/nodes=ALL,walltime=1")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ALL satisfiable with a dead node")
	}
	tb.Node("graphite-2.nancy").State = testbed.Alive
	ok, _ = s.CanStartNow("cluster='graphite'/nodes=ALL,walltime=1")
	if !ok {
		t.Fatal("ALL unsatisfiable on healthy cluster")
	}
}

func TestFreeMatching(t *testing.T) {
	_, tb, s := newServer()
	e := MustParseExpr("cluster='sol'")
	if got := s.FreeMatching(e); got != 20 {
		t.Fatalf("free sol = %d, want 20", got)
	}
	s.Submit("cluster='sol'/nodes=15,walltime=1", SubmitOptions{})
	if got := s.FreeMatching(e); got != 5 {
		t.Fatalf("free sol = %d, want 5", got)
	}
	tb.Node("sol-20.sophia").State = testbed.Suspected
	if got := s.FreeMatching(e); got > 5 {
		t.Fatalf("suspected node counted free: %d", got)
	}
}

func TestSetNodeStateUnblocksQueue(t *testing.T) {
	_, tb, s := newServer()
	tb.Node("hercule-1.lyon").State = testbed.Suspected
	j, _ := s.Submit("cluster='hercule'/nodes=ALL,walltime=1", SubmitOptions{})
	if j.State != Waiting {
		t.Fatal("job started with suspected node")
	}
	if err := s.SetNodeState("hercule-1.lyon", testbed.Alive); err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatalf("job = %v after node healed", j.State)
	}
	if err := s.SetNodeState("ghost-1.limbo", testbed.Alive); err == nil {
		t.Fatal("SetNodeState accepted unknown node")
	}
}

func TestStateSummary(t *testing.T) {
	_, tb, s := newServer()
	tb.Node("sol-1.sophia").State = testbed.Suspected
	tb.Node("sol-2.sophia").State = testbed.Dead
	sum := s.StateSummary()
	if sum[testbed.Alive] != 892 || sum[testbed.Suspected] != 1 || sum[testbed.Dead] != 1 {
		t.Fatalf("summary = %v", sum)
	}
}

func TestCanStartNowParseError(t *testing.T) {
	_, _, s := newServer()
	if _, err := s.CanStartNow("((("); err == nil {
		t.Fatal("bad request accepted")
	}
}

func TestNoOverlapBetweenConcurrentJobs(t *testing.T) {
	c, _, s := newServer()
	for i := 0; i < 30; i++ {
		s.Submit("cluster='griffon'/nodes=5,walltime=1", SubmitOptions{})
	}
	// At any step, assert no node is double-booked.
	for c.Step() {
		seen := map[string]int{}
		for id, j := range s.jobs {
			if j.State != Running {
				continue
			}
			for _, n := range j.Nodes {
				if prev, dup := seen[n]; dup {
					t.Fatalf("node %s in jobs %d and %d", n, prev, id)
				}
				seen[n] = id
			}
		}
	}
	sub, started, _ := s.Stats()
	if sub != 30 || started != 30 {
		t.Fatalf("stats: submitted=%d started=%d", sub, started)
	}
}

func TestJobStateString(t *testing.T) {
	for st, want := range map[JobState]string{
		Waiting: "Waiting", Running: "Running", Terminated: "Terminated", Canceled: "Canceled",
	} {
		if st.String() != want {
			t.Errorf("%d = %q", int(st), st.String())
		}
	}
	if JobState(9).String() != "JobState(9)" {
		t.Error("unknown state formatting")
	}
}

// TestAnchoredNarrowingUnknownNames covers the nil-slice paths of
// segmentCandidates: requests anchored on a site, cluster or host that
// does not exist select the empty candidate set (s.bySite[v] and friends
// return nil), so they queue instead of panicking or matching anything.
func TestAnchoredNarrowingUnknownNames(t *testing.T) {
	_, _, s := newServer()
	for _, req := range []string{
		"site='atlantis'/nodes=2,walltime=1",
		"cluster='unobtainium'/nodes=1,walltime=1",
		"host='ghost-1.atlantis'/nodes=1,walltime=1",
		"site='atlantis'/nodes=ALL,walltime=1",
	} {
		ok, err := s.CanStartNow(req)
		if err != nil {
			t.Fatalf("CanStartNow(%q): %v", req, err)
		}
		if ok {
			t.Fatalf("CanStartNow(%q) = true for an unknown anchor", req)
		}
		j, err := s.Submit(req, SubmitOptions{User: "alice"})
		if err != nil {
			t.Fatalf("Submit(%q): %v", req, err)
		}
		if j.State != Waiting {
			t.Fatalf("Submit(%q) = %s, want Waiting (unsatisfiable)", req, j.State)
		}
	}
	if sub, started, _ := s.Stats(); sub != 4 || started != 0 {
		t.Fatalf("stats after unknown-anchor submits: submitted=%d started=%d", sub, started)
	}
}

// TestAnchoredNarrowingEmptyValues: an anchor with an empty value
// (site=”/...) must behave like any other unknown name — bySite[""] is a
// nil slice, not the whole testbed.
func TestAnchoredNarrowingEmptyValues(t *testing.T) {
	_, _, s := newServer()
	for _, req := range []string{
		"site=''/nodes=1,walltime=1",
		"cluster=''/nodes=2,walltime=1",
		"host=''/nodes=1,walltime=1",
	} {
		parsed, err := ParseRequest(req)
		if err != nil {
			t.Fatalf("ParseRequest(%q): %v", req, err)
		}
		key, val := parsed.Segments[0].Anchor()
		if key == "" || val != "" {
			t.Fatalf("anchor of %q = (%q, %q), want a keyed empty value", req, key, val)
		}
		if cands := s.segmentCandidates(parsed.Segments[0]); len(cands) != 0 {
			t.Fatalf("segmentCandidates(%q) = %d nodes, want 0", req, len(cands))
		}
		if s.CanStartNowReq(parsed) {
			t.Fatalf("CanStartNowReq(%q) = true on an empty anchor", req)
		}
	}
}

// TestAnchoredNarrowingMatchesFullScan: for every anchored request shape,
// the narrowed allocation must agree with what the un-anchored expression
// would select — the anchor is an optimization, not a semantic change.
func TestAnchoredNarrowingMatchesFullScan(t *testing.T) {
	_, tb, s := newServer()
	// An AND chain anchored on site narrows to the site but still applies
	// the rest of the expression.
	j, err := s.Submit("site='lyon' and gpu='YES'/nodes=ALL,walltime=1", SubmitOptions{User: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatalf("gpu-at-lyon request = %s, want Running", j.State)
	}
	orion := tb.Cluster("orion") // lyon's only GPU cluster
	if len(j.Nodes) != len(orion.Nodes) {
		t.Fatalf("allocated %d nodes, want orion's %d", len(j.Nodes), len(orion.Nodes))
	}
	for _, n := range j.Nodes {
		if node := tb.Node(n); node == nil || node.Cluster != "orion" {
			t.Fatalf("node %s is not in orion", n)
		}
	}
	// Under OR the site constraint is no longer necessary: no anchor, full
	// scan, and nodes outside lyon may match.
	parsed := MustParseRequest("site='lyon' or site='nancy'/nodes=1,walltime=1")
	if key, val := parsed.Segments[0].Anchor(); key != "" || val != "" {
		t.Fatalf("OR expression anchored to (%q, %q)", key, val)
	}
	if got := len(s.segmentCandidates(parsed.Segments[0])); got != tb.TotalNodes() {
		t.Fatalf("OR candidates = %d, want full scan %d", got, tb.TotalNodes())
	}
}
