package oar

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// TestPinnedToSite: unanchored segments gain a site anchor (and keep their
// expression, parenthesized), anchored segments pass through untouched.
func TestPinnedToSite(t *testing.T) {
	clock := simclock.New(3)
	tb := testbed.Default()
	s := NewServer(clock, tb)

	req := MustParseRequest("nodes=2,walltime=1").PinnedToSite("lyon")
	if key, val := req.Segments[0].Anchor(); key != "site" || val != "lyon" {
		t.Fatalf("pinned anchor = (%q, %q)", key, val)
	}
	j := s.SubmitReq(req, SubmitOptions{User: "a"})
	if j.State != Running || len(j.Nodes) != 2 {
		t.Fatalf("pinned submit = %s with %d nodes", j.State, len(j.Nodes))
	}
	for _, name := range j.Nodes {
		if n := tb.Node(name); n == nil || n.Site != "lyon" {
			t.Fatalf("pinned allocation picked %s outside lyon", name)
		}
	}

	// An OR expression (no anchor of its own) is parenthesized under the
	// pin, so the site constraint distributes over both branches.
	req = MustParseRequest("gpu='YES' or ib='YES'/nodes=ALL,walltime=1").PinnedToSite("lyon")
	j = s.SubmitReq(req, SubmitOptions{User: "b"})
	if j.State != Running {
		t.Fatalf("pinned OR submit = %s", j.State)
	}
	for _, name := range j.Nodes {
		n := tb.Node(name)
		if n == nil || n.Site != "lyon" || (!n.Inv.HasGPU() && !n.Inv.HasIB()) {
			t.Fatalf("pinned OR allocation picked %s", name)
		}
	}
	// lyon's GPU/IB nodes: orion (16, GPU) + taurus (30, IB).
	if len(j.Nodes) != 46 {
		t.Fatalf("pinned OR matched %d nodes, want 46", len(j.Nodes))
	}

	// Already-anchored segments are untouched.
	orig := MustParseRequest("cluster='taurus'/nodes=1,walltime=1")
	pinned := orig.PinnedToSite("nancy")
	if pinned.String() != orig.String() {
		t.Fatalf("anchored segment rewritten: %q -> %q", orig, pinned)
	}

	// The pinned request round-trips through its own String form.
	src := MustParseRequest("ram_gb>='16'/nodes=1,walltime=1").PinnedToSite("rennes")
	re, err := ParseRequest(src.String())
	if err != nil {
		t.Fatalf("pinned request %q does not re-parse: %v", src, err)
	}
	if key, val := re.Segments[0].Anchor(); key != "site" || val != "rennes" {
		t.Fatalf("re-parsed anchor = (%q, %q)", key, val)
	}
}
