// Package oar implements a resource manager in the style of OAR, the batch
// scheduler used by Grid'5000: property-based resource selection
// (slide 7's oarsub example), FCFS scheduling with walltimes, node state
// management, and the submit-immediately-or-cancel mode that the paper's
// external test scheduler depends on (slide 17).
package oar

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/testbed"
)

// Expr is a parsed property expression, e.g.
//
//	cluster='a' and gpu='YES'
//
// evaluated against a node's property map — or, on the scheduling hot
// path, directly against a node via EvalNode, which reads the live
// inventory without materialising a property map.
type Expr interface {
	Eval(props map[string]string) bool
	// EvalNode evaluates the expression against a node's live state. It is
	// semantically Eval(Properties(n)) without the map allocation and
	// lookups, reading mutable properties (ram_gb, cores) live.
	EvalNode(n *testbed.Node) bool
	String() string
}

type andExpr struct{ l, r Expr }
type orExpr struct{ l, r Expr }
type notExpr struct{ e Expr }
type cmpExpr struct {
	key, op, val string
	valNum       float64
	valIsNum     bool
}
type trueExpr struct{}

func (e andExpr) Eval(p map[string]string) bool { return e.l.Eval(p) && e.r.Eval(p) }
func (e orExpr) Eval(p map[string]string) bool  { return e.l.Eval(p) || e.r.Eval(p) }
func (e notExpr) Eval(p map[string]string) bool { return !e.e.Eval(p) }
func (trueExpr) Eval(map[string]string) bool    { return true }

func (e andExpr) EvalNode(n *testbed.Node) bool { return e.l.EvalNode(n) && e.r.EvalNode(n) }
func (e orExpr) EvalNode(n *testbed.Node) bool  { return e.l.EvalNode(n) || e.r.EvalNode(n) }
func (e notExpr) EvalNode(n *testbed.Node) bool { return !e.e.EvalNode(n) }
func (trueExpr) EvalNode(*testbed.Node) bool    { return true }

func (e andExpr) String() string { return fmt.Sprintf("(%s and %s)", e.l, e.r) }
func (e orExpr) String() string  { return fmt.Sprintf("(%s or %s)", e.l, e.r) }
func (e notExpr) String() string { return fmt.Sprintf("not %s", e.e) }

// String returns the empty string, which ParseExpr maps back to the
// always-true expression — keeping parse/print a round trip.
func (trueExpr) String() string  { return "" }
func (e cmpExpr) String() string { return fmt.Sprintf("%s%s'%s'", e.key, e.op, e.val) }

func (e cmpExpr) Eval(p map[string]string) bool {
	actual, ok := p[e.key]
	if !ok {
		return false
	}
	return e.evalStr(actual)
}

// evalStr compares a property's string value against the literal. Numeric
// comparison only when the literal parsed as a number at parse time AND
// the property value looks numeric; the quick first-byte test avoids
// allocating a strconv syntax error per node per evaluation.
func (e cmpExpr) evalStr(actual string) bool {
	var an, vn float64
	numeric := false
	if e.valIsNum && looksNumeric(actual) {
		if a, err := strconv.ParseFloat(actual, 64); err == nil {
			an, vn = a, e.valNum
			numeric = true
		}
	}
	switch e.op {
	case "=":
		if numeric {
			return an == vn
		}
		return actual == e.val
	case "!=":
		if numeric {
			return an != vn
		}
		return actual != e.val
	case "<":
		return numeric && an < vn
	case "<=":
		return numeric && an <= vn
	case ">":
		return numeric && an > vn
	case ">=":
		return numeric && an >= vn
	}
	return false
}

// evalIntProp compares an integer property against the literal, matching
// evalStr's semantics exactly: numeric comparison when the literal is
// numeric, string comparison of the rendered value otherwise (so e.g.
// cores!='abc' behaves identically through Eval and EvalNode).
func (e cmpExpr) evalIntProp(actual int) bool {
	if e.valIsNum {
		return e.evalNum(float64(actual))
	}
	return e.evalStr(strconv.Itoa(actual))
}

// evalNum compares a numeric property value against the literal.
func (e cmpExpr) evalNum(actual float64) bool {
	if !e.valIsNum {
		return false
	}
	switch e.op {
	case "=":
		return actual == e.valNum
	case "!=":
		return actual != e.valNum
	case "<":
		return actual < e.valNum
	case "<=":
		return actual <= e.valNum
	case ">":
		return actual > e.valNum
	case ">=":
		return actual >= e.valNum
	}
	return false
}

// EvalNode evaluates the comparison directly against the node, without
// building a property map. The keys mirror Properties; unknown keys fall
// back to the map form so custom properties keep working.
func (e cmpExpr) EvalNode(n *testbed.Node) bool {
	switch e.key {
	case "cluster":
		return e.evalStr(n.Cluster)
	case "site":
		return e.evalStr(n.Site)
	case "host":
		return e.evalStr(n.Name)
	case "cpu_model":
		return e.evalStr(n.Inv.CPU.Model)
	case "cores":
		return e.evalIntProp(n.Cores())
	case "ram_gb":
		return e.evalIntProp(n.Inv.RAMGB)
	case "gpu":
		return e.evalStr(yesNo(n.Inv.HasGPU()))
	case "ib":
		return e.evalStr(yesNo(n.Inv.HasIB()))
	case "eth10g":
		return e.evalStr(yn(n.Inv.Has10G()))
	case "disktype":
		return e.evalStr(diskType(n))
	}
	return e.Eval(Properties(n))
}

// anchor extracts a narrowing constraint from the expression: a
// (key, value) pair such that every matching node satisfies key=value.
// Only equality comparisons reachable through a pure AND chain qualify —
// under OR or NOT the constraint is no longer necessary. The allocator
// uses it to scan one cluster or site instead of the whole testbed.
func anchor(e Expr) (key, val string) {
	switch x := e.(type) {
	case cmpExpr:
		if x.op == "=" && (x.key == "cluster" || x.key == "site" || x.key == "host") {
			return x.key, x.val
		}
	case andExpr:
		// Prefer the most selective anchor: host > cluster > site.
		lk, lv := anchor(x.l)
		rk, rv := anchor(x.r)
		switch {
		case lk == "host":
			return lk, lv
		case rk == "host":
			return rk, rv
		case lk == "cluster":
			return lk, lv
		case rk == "cluster":
			return rk, rv
		case lk != "":
			return lk, lv
		default:
			return rk, rv
		}
	}
	return "", ""
}

// ---- lexer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp // = != < <= > >=
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t') {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF}, nil
	}
	c := l.in[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "("}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")"}, nil
	case c == '\'' || c == '"':
		quote := c
		end := l.pos + 1
		for end < len(l.in) && l.in[end] != quote {
			end++
		}
		if end >= len(l.in) {
			return token{}, fmt.Errorf("oar: unterminated string at %d in %q", l.pos, l.in)
		}
		t := token{kind: tokString, text: l.in[l.pos+1 : end]}
		l.pos = end + 1
		return t, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "="}, nil
	case c == '!':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!="}, nil
		}
		return token{}, fmt.Errorf("oar: stray '!' at %d in %q", l.pos, l.in)
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{kind: tokOp, text: op}, nil
	case c >= '0' && c <= '9':
		end := l.pos
		for end < len(l.in) && (l.in[end] >= '0' && l.in[end] <= '9' || l.in[end] == '.') {
			end++
		}
		t := token{kind: tokNumber, text: l.in[l.pos:end]}
		l.pos = end
		return t, nil
	case isIdentChar(c):
		end := l.pos
		for end < len(l.in) && isIdentChar(l.in[end]) {
			end++
		}
		t := token{kind: tokIdent, text: l.in[l.pos:end]}
		l.pos = end
		return t, nil
	}
	return token{}, fmt.Errorf("oar: unexpected character %q at %d in %q", c, l.pos, l.in)
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// ---- parser (recursive descent) ----

type parser struct {
	lex  *lexer
	cur  token
	err  error
	done bool
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	p.cur, p.err = p.lex.next()
}

// ParseExpr parses a property expression. The empty string parses to an
// always-true expression (OAR's "any resource").
func ParseExpr(s string) (Expr, error) {
	if strings.TrimSpace(s) == "" {
		return trueExpr{}, nil
	}
	p := &parser{lex: &lexer{in: s}}
	p.advance()
	e := p.parseOr()
	if p.err != nil {
		return nil, p.err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("oar: trailing input %q in expression %q", p.cur.text, s)
	}
	return e, nil
}

// MustParseExpr is ParseExpr for expressions known valid at compile time.
func MustParseExpr(s string) Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) parseOr() Expr {
	e := p.parseAnd()
	for p.err == nil && p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "or") {
		p.advance()
		e = orExpr{e, p.parseAnd()}
	}
	return e
}

func (p *parser) parseAnd() Expr {
	e := p.parseUnary()
	for p.err == nil && p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "and") {
		p.advance()
		e = andExpr{e, p.parseUnary()}
	}
	return e
}

func (p *parser) parseUnary() Expr {
	if p.err != nil {
		return trueExpr{}
	}
	if p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "not") {
		p.advance()
		return notExpr{p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() Expr {
	if p.err != nil {
		return trueExpr{}
	}
	if p.cur.kind == tokLParen {
		p.advance()
		e := p.parseOr()
		if p.err == nil && p.cur.kind != tokRParen {
			p.err = fmt.Errorf("oar: missing ')' near %q", p.cur.text)
			return trueExpr{}
		}
		p.advance()
		return e
	}
	if p.cur.kind != tokIdent {
		p.err = fmt.Errorf("oar: expected property name, got %q", p.cur.text)
		return trueExpr{}
	}
	key := p.cur.text
	p.advance()
	if p.err != nil || p.cur.kind != tokOp {
		p.err = fmt.Errorf("oar: expected comparison operator after %q", key)
		return trueExpr{}
	}
	op := p.cur.text
	p.advance()
	if p.err != nil || (p.cur.kind != tokString && p.cur.kind != tokNumber && p.cur.kind != tokIdent) {
		p.err = fmt.Errorf("oar: expected value after %s%s", key, op)
		return trueExpr{}
	}
	val := p.cur.text
	p.advance()
	e := cmpExpr{key: key, op: op, val: val}
	if n, err := strconv.ParseFloat(val, 64); err == nil {
		e.valNum, e.valIsNum = n, true
	}
	return e
}

// looksNumeric is a cheap pre-filter before strconv.ParseFloat.
func looksNumeric(s string) bool {
	if len(s) == 0 {
		return false
	}
	c := s[0]
	return c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.'
}
