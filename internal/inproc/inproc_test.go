package inproc

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestClientRoundTrip(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", `"v1"`)
		json.NewEncoder(w).Encode(map[string]int{"n": 42}) //nolint:errcheck
	})
	mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusCreated)
		w.Write(body) //nolint:errcheck
	})

	c := Client(mux)

	resp, err := c.Get("http://local/json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != `"v1"` {
		t.Fatalf("ETag = %q", got)
	}
	var v map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v["n"] != 42 {
		t.Fatalf("body = %v", v)
	}

	resp, err = c.Post("http://local/echo", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Fatalf("body = %q", body)
	}
	if resp.ContentLength != int64(len("hello")) {
		t.Fatalf("ContentLength = %d", resp.ContentLength)
	}
}

func TestNotFoundAndNilHandler(t *testing.T) {
	c := Client(http.NewServeMux())
	resp, err := c.Get("http://local/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}

	if _, err := (Transport{}).RoundTrip(&http.Request{}); err == nil {
		t.Fatal("nil handler round trip should fail")
	}
}

// TestHeaderFrozenAtWriteHeader: net/http drops header mutations made
// after the status line goes out; the in-process transport must behave
// identically, or handler bugs stay invisible to in-process tests.
func TestHeaderFrozenAtWriteHeader(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Before", "yes")
		w.WriteHeader(http.StatusCreated)
		w.Header().Set("X-After", "yes")
		io.WriteString(w, "body") //nolint:errcheck
	})
	resp, err := Client(h).Get("http://local/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Before") != "yes" {
		t.Fatal("pre-WriteHeader header lost")
	}
	if resp.Header.Get("X-After") != "" {
		t.Fatal("post-WriteHeader header mutation leaked into the response")
	}
}

// TestImplicitOK covers handlers that write a body without an explicit
// WriteHeader call — the recorder must report 200, like net/http does.
func TestImplicitOK(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok") //nolint:errcheck
	})
	resp, err := Client(h).Get("http://local/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}
