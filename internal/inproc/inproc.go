// Package inproc provides an in-process http.RoundTripper: requests are
// dispatched straight into an http.Handler on the caller's goroutine, with
// no TCP listener, no loopback hop and no real network I/O.
//
// The testbed's services (the CI REST API, the gateway) are consumed both
// remotely — over a real listener — and from inside the same process: the
// status page renders the grid through the very API it publishes, and the
// load generator benchmarks the gateway without measuring the kernel's
// socket stack. Both use an *http.Client whose Transport is one of these,
// so the client-side code path (URLs, headers, JSON decoding, status
// handling) stays identical to the networked one.
package inproc

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// Transport dispatches every request to Handler, in process.
type Transport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper. The handler runs synchronously on
// the calling goroutine; its response is captured in memory and returned as
// a regular *http.Response.
func (t Transport) RoundTrip(r *http.Request) (*http.Response, error) {
	if t.Handler == nil {
		return nil, fmt.Errorf("inproc: nil handler")
	}
	rec := &recorder{header: make(http.Header)}
	t.Handler.ServeHTTP(rec, r)
	if rec.code == 0 {
		rec.code = http.StatusOK
		rec.sent = rec.header.Clone()
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.sent,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       r,
	}, nil
}

// Client returns an *http.Client that serves every request from h. Use any
// syntactically valid base URL with it ("http://local"); the host is never
// resolved.
func Client(h http.Handler) *http.Client {
	return &http.Client{Transport: Transport{Handler: h}}
}

// recorder is the minimal in-memory http.ResponseWriter behind Transport.
// Like net/http, it freezes the header map at WriteHeader time: mutations
// after the status line would be silently dropped on a real connection,
// and must be equally invisible here so handler bugs cannot hide behind
// the in-process transport.
type recorder struct {
	header http.Header
	sent   http.Header // snapshot taken at WriteHeader
	body   bytes.Buffer
	code   int
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.code != 0 {
		return
	}
	r.code = code
	r.sent = r.header.Clone()
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}
