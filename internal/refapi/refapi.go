// Package refapi implements the Reference API: the machine-parsable (JSON)
// description of the testbed's resources, with archived versions.
//
// Slide 7 of the paper: resources are described in JSON so that scripts can
// consume them, descriptions are archived ("state of the testbed 6 months
// ago?"), and — critically — the description must be *verified* against
// reality, because maintenance and broken hardware make it drift. The
// verification itself lives in internal/checks; this package provides the
// description store and the structural diff.
package refapi

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// NodeDescription is the reference (claimed) description of one node.
type NodeDescription struct {
	Name    string            `json:"name"`
	Cluster string            `json:"cluster"`
	Site    string            `json:"site"`
	Inv     testbed.Inventory `json:"inventory"`
}

// Snapshot is one archived version of the whole testbed description.
type Snapshot struct {
	Version int                        `json:"version"`
	TakenAt simclock.Time              `json:"taken_at"`
	Nodes   map[string]NodeDescription `json:"nodes"`
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{Version: s.Version, TakenAt: s.TakenAt, Nodes: make(map[string]NodeDescription, len(s.Nodes))}
	for k, v := range s.Nodes {
		v.Inv = v.Inv.Clone()
		out.Nodes[k] = v
	}
	return out
}

// MarshalJSONIndent renders the snapshot as pretty JSON — the format users
// script against.
func (s *Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Store holds the current description plus the archive of every previous
// version. It is safe for concurrent read access (the status page's HTTP
// handlers read it); mutations happen from the single simulation goroutine.
type Store struct {
	mu       sync.RWMutex
	versions []*Snapshot
}

// NewStore captures version 1 of the description from the testbed's current
// live state. By construction the initial description is accurate; drift
// appears when faults later mutate live inventories.
func NewStore(tb *testbed.Testbed, now simclock.Time) *Store {
	st := &Store{}
	st.CaptureFrom(tb, now)
	return st
}

// CaptureFrom archives a new description version reflecting the testbed's
// current live state. Operators do this after fixing hardware ("update the
// reference API"), re-baselining the description.
func (st *Store) CaptureFrom(tb *testbed.Testbed, now simclock.Time) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := &Snapshot{
		Version: len(st.versions) + 1,
		TakenAt: now,
		Nodes:   make(map[string]NodeDescription),
	}
	for _, n := range tb.Nodes() {
		snap.Nodes[n.Name] = NodeDescription{
			Name:    n.Name,
			Cluster: n.Cluster,
			Site:    n.Site,
			Inv:     n.Inv.Clone(),
		}
	}
	st.versions = append(st.versions, snap)
	return snap
}

// Current returns the latest description version.
func (st *Store) Current() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.versions[len(st.versions)-1]
}

// Version returns the archived snapshot with the given version number, or
// nil if it does not exist.
func (st *Store) Version(v int) *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if v < 1 || v > len(st.versions) {
		return nil
	}
	return st.versions[v-1]
}

// VersionCount returns how many versions are archived.
func (st *Store) VersionCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.versions)
}

// At returns the snapshot that was current at time t (the latest version
// with TakenAt ≤ t), or nil if t precedes the first capture. This answers
// the paper's archival question: "state of the testbed 6 months ago?".
func (st *Store) At(t simclock.Time) *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var best *Snapshot
	for _, s := range st.versions {
		if s.TakenAt <= t {
			best = s
		}
	}
	return best
}

// Describe returns the current reference description of one node, or an
// error when the node is unknown — the refapi test family treats a missing
// description as a bug in itself.
func (st *Store) Describe(node string) (NodeDescription, error) {
	cur := st.Current()
	d, ok := cur.Nodes[node]
	if !ok {
		return NodeDescription{}, fmt.Errorf("refapi: no description for node %q", node)
	}
	return d, nil
}

// Update replaces the description of a single node in a *new* version
// (descriptions are immutable once archived).
func (st *Store) Update(now simclock.Time, node string, inv testbed.Inventory) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.versions[len(st.versions)-1]
	if _, ok := cur.Nodes[node]; !ok {
		return fmt.Errorf("refapi: cannot update unknown node %q", node)
	}
	next := cur.Clone()
	next.Version = len(st.versions) + 1
	next.TakenAt = now
	d := next.Nodes[node]
	d.Inv = inv.Clone()
	next.Nodes[node] = d
	st.versions = append(st.versions, next)
	return nil
}

// Difference is one divergence between two descriptions of the same node.
type Difference struct {
	Node     string `json:"node"`
	Field    string `json:"field"`
	Expected string `json:"expected"`
	Actual   string `json:"actual"`
}

func (d Difference) String() string {
	return fmt.Sprintf("%s: %s: expected %q, got %q", d.Node, d.Field, d.Expected, d.Actual)
}

// DiffInventories compares a reference inventory against an observed one and
// returns every field-level divergence. This is the comparison g5k-checks
// performs between the Reference API and what OHAI/ethtool report.
func DiffInventories(node string, ref, got testbed.Inventory) []Difference {
	var out []Difference
	add := func(field, exp, act string) {
		if exp != act {
			out = append(out, Difference{Node: node, Field: field, Expected: exp, Actual: act})
		}
	}
	add("cpu.model", ref.CPU.Model, got.CPU.Model)
	add("cpu.sockets", itoa(ref.CPU.Sockets), itoa(got.CPU.Sockets))
	add("cpu.cores_per_socket", itoa(ref.CPU.CoresPerSocket), itoa(got.CPU.CoresPerSocket))
	add("cpu.freq_mhz", itoa(ref.CPU.FreqMHz), itoa(got.CPU.FreqMHz))
	add("cpu.microcode", ref.CPU.Microcode, got.CPU.Microcode)
	add("ram_gb", itoa(ref.RAMGB), itoa(got.RAMGB))
	add("bios.version", ref.BIOS.Version, got.BIOS.Version)
	add("bios.hyperthreading", btoa(ref.BIOS.HyperThreading), btoa(got.BIOS.HyperThreading))
	add("bios.turbo_boost", btoa(ref.BIOS.TurboBoost), btoa(got.BIOS.TurboBoost))
	add("bios.c_states", btoa(ref.BIOS.CStates), btoa(got.BIOS.CStates))
	add("bios.power_profile", ref.BIOS.PowerProfile, got.BIOS.PowerProfile)
	add("gpu_model", ref.GPUModel, got.GPUModel)
	add("infiniband", ref.Infiniband, got.Infiniband)
	add("os_kernel", ref.OSKernel, got.OSKernel)

	if len(ref.Disks) != len(got.Disks) {
		add("disks.count", itoa(len(ref.Disks)), itoa(len(got.Disks)))
	} else {
		for i := range ref.Disks {
			p := fmt.Sprintf("disks[%s].", ref.Disks[i].Device)
			add(p+"vendor", ref.Disks[i].Vendor, got.Disks[i].Vendor)
			add(p+"model", ref.Disks[i].Model, got.Disks[i].Model)
			add(p+"firmware", ref.Disks[i].Firmware, got.Disks[i].Firmware)
			add(p+"capacity_gb", itoa(ref.Disks[i].CapacityGB), itoa(got.Disks[i].CapacityGB))
			add(p+"write_cache", btoa(ref.Disks[i].WriteCache), btoa(got.Disks[i].WriteCache))
		}
	}
	if len(ref.NICs) != len(got.NICs) {
		add("nics.count", itoa(len(ref.NICs)), itoa(len(got.NICs)))
	} else {
		for i := range ref.NICs {
			p := fmt.Sprintf("nics[%s].", ref.NICs[i].Name)
			add(p+"rate_gbps", itoa(ref.NICs[i].RateGbps), itoa(got.NICs[i].RateGbps))
			add(p+"driver", ref.NICs[i].Driver, got.NICs[i].Driver)
			add(p+"mac", ref.NICs[i].MAC, got.NICs[i].MAC)
			add(p+"switch_port", ref.NICs[i].SwitchPort, got.NICs[i].SwitchPort)
		}
	}
	return out
}

// DiffSnapshots compares two whole-testbed snapshots and returns all
// node-level differences, plus differences for nodes present in only one of
// the two. Output is sorted by node then field for deterministic reports.
func DiffSnapshots(a, b *Snapshot) []Difference {
	var out []Difference
	for name, da := range a.Nodes {
		db, ok := b.Nodes[name]
		if !ok {
			out = append(out, Difference{Node: name, Field: "presence", Expected: "present", Actual: "missing"})
			continue
		}
		out = append(out, DiffInventories(name, da.Inv, db.Inv)...)
	}
	for name := range b.Nodes {
		if _, ok := a.Nodes[name]; !ok {
			out = append(out, Difference{Node: name, Field: "presence", Expected: "missing", Actual: "present"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func itoa(i int) string  { return fmt.Sprintf("%d", i) }
func btoa(b bool) string { return fmt.Sprintf("%t", b) }
