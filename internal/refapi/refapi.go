// Package refapi implements the Reference API: the machine-parsable (JSON)
// description of the testbed's resources, with archived versions.
//
// Slide 7 of the paper: resources are described in JSON so that scripts can
// consume them, descriptions are archived ("state of the testbed 6 months
// ago?"), and — critically — the description must be *verified* against
// reality, because maintenance and broken hardware make it drift. The
// verification itself lives in internal/checks; this package provides the
// description store and the structural diff.
//
// Performance notes: the diff is the hottest path of the whole simulator
// (g5k-checks runs it for every node at every boot and across whole
// clusters), so DiffInventories compares fields natively and only builds
// strings for fields that actually diverge — checking a clean node performs
// zero heap allocations. The Store archives versions as a copy-on-write
// delta chain: Update records only the changed nodes (O(changed) time and
// memory), and full Snapshots are materialized lazily — and cached — when
// an archived version is actually read.
package refapi

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// NodeDescription is the reference (claimed) description of one node.
type NodeDescription struct {
	Name    string            `json:"name"`
	Cluster string            `json:"cluster"`
	Site    string            `json:"site"`
	Inv     testbed.Inventory `json:"inventory"`
}

// Snapshot is one archived version of the whole testbed description.
// Snapshots handed out by a Store are immutable: mutate a Clone instead.
type Snapshot struct {
	Version int                        `json:"version"`
	TakenAt simclock.Time              `json:"taken_at"`
	Nodes   map[string]NodeDescription `json:"nodes"`
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{Version: s.Version, TakenAt: s.TakenAt, Nodes: make(map[string]NodeDescription, len(s.Nodes))}
	for k, v := range s.Nodes {
		v.Inv = v.Inv.Clone()
		out.Nodes[k] = v
	}
	return out
}

// MarshalJSONIndent renders the snapshot as pretty JSON — the format users
// script against.
func (s *Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// version is one link of the store's copy-on-write chain. Exactly one of
// the two cases holds:
//
//   - capture point (CaptureFrom/NewStore): snap is set eagerly and holds
//     the complete node set;
//   - delta (Update): delta holds only the nodes whose description changed
//     relative to the previous version, and snap is materialized lazily.
//
// TakenAt values are monotone non-decreasing along the chain (simulated
// time only moves forward), which is what lets At binary-search it.
type version struct {
	num     int
	takenAt simclock.Time
	delta   map[string]NodeDescription // changed nodes (delta versions only)
	snap    *Snapshot                  // cached materialization, immutable once set
}

// Store holds the current description plus the archive of every previous
// version. It is safe for concurrent read access (the status page's HTTP
// handlers read it); mutations happen from the single simulation goroutine.
type Store struct {
	mu       sync.RWMutex
	versions []*version
	// cur is the live accumulated node map of the latest version. It is
	// owned by the store and mutated in place by Update (O(changed nodes)),
	// never aliased by a handed-out Snapshot.
	cur map[string]NodeDescription

	// materializations counts how many times a full snapshot was actually
	// built (cache misses of the lazy delta chain). Readers that claim to
	// avoid re-materialization — the gateway's ETag/304 path — assert
	// against it.
	materializations atomic.Int64
}

// Materializations returns how many full-snapshot builds the store has
// performed. Cached reads (Version/At/Current returning an already
// materialized snapshot) do not count.
func (st *Store) Materializations() int64 { return st.materializations.Load() }

// NewStore captures version 1 of the description from the testbed's current
// live state. By construction the initial description is accurate; drift
// appears when faults later mutate live inventories.
func NewStore(tb *testbed.Testbed, now simclock.Time) *Store {
	st := &Store{}
	st.CaptureFrom(tb, now)
	return st
}

// CaptureFrom archives a new description version reflecting the testbed's
// current live state. Operators do this after fixing hardware ("update the
// reference API"), re-baselining the description. Captures are inherently
// O(total nodes); single-node corrections should use Update, which is
// O(changed nodes).
func (st *Store) CaptureFrom(tb *testbed.Testbed, now simclock.Time) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	nodes := make(map[string]NodeDescription)
	for _, n := range tb.Nodes() {
		nodes[n.Name] = NodeDescription{
			Name:    n.Name,
			Cluster: n.Cluster,
			Site:    n.Site,
			Inv:     n.Inv.Clone(),
		}
	}
	now = st.clampMonotoneLocked(now)
	v := &version{
		num:     len(st.versions) + 1,
		takenAt: now,
		snap:    &Snapshot{Version: len(st.versions) + 1, TakenAt: now, Nodes: nodes},
	}
	st.versions = append(st.versions, v)
	// cur must not alias the archived map: later Updates rewrite cur entries
	// in place. The NodeDescription values (and their cloned slices) are
	// shared — safe, because Update replaces whole values, never mutating
	// the inventories an archived snapshot points at.
	st.cur = make(map[string]NodeDescription, len(nodes))
	for k, d := range nodes {
		st.cur[k] = d
	}
	return v.snap
}

// Update replaces the description of a single node in a *new* version
// (descriptions are immutable once archived). Unlike CaptureFrom, Update is
// copy-on-write: it records a one-node delta, costing O(1) regardless of
// testbed size.
func (st *Store) Update(now simclock.Time, node string, inv testbed.Inventory) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.cur[node]
	if !ok {
		return fmt.Errorf("refapi: cannot update unknown node %q", node)
	}
	d.Inv = inv.Clone()
	st.cur[node] = d
	st.versions = append(st.versions, &version{
		num:     len(st.versions) + 1,
		takenAt: st.clampMonotoneLocked(now),
		delta:   map[string]NodeDescription{node: d},
	})
	return nil
}

// clampMonotoneLocked enforces the invariant At's binary search relies on:
// version timestamps never go backwards. Simulated time is monotone, so a
// caller-supplied `now` earlier than the chain tail is a caller bug; we
// archive it at the tail's time rather than corrupting every archival
// query after it. Called with the write lock held.
func (st *Store) clampMonotoneLocked(now simclock.Time) simclock.Time {
	if n := len(st.versions); n > 0 && now < st.versions[n-1].takenAt {
		return st.versions[n-1].takenAt
	}
	return now
}

// Current returns the latest description version, materializing it if the
// store has seen Updates since the last materialization.
func (st *Store) Current() *Snapshot {
	st.mu.RLock()
	last := st.versions[len(st.versions)-1]
	snap := last.snap
	st.mu.RUnlock()
	if snap != nil {
		return snap
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.materializeLocked(len(st.versions) - 1)
}

// Version returns the archived snapshot with the given version number, or
// nil if it does not exist. Delta versions are materialized on first read
// and cached, so repeated archival queries stay cheap.
func (st *Store) Version(v int) *Snapshot {
	st.mu.RLock()
	if v < 1 || v > len(st.versions) {
		st.mu.RUnlock()
		return nil
	}
	if snap := st.versions[v-1].snap; snap != nil {
		st.mu.RUnlock()
		return snap
	}
	st.mu.RUnlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.materializeLocked(v - 1)
}

// Materialize is the explicit escape hatch from the copy-on-write
// representation: it returns the full snapshot of the given version number
// (nil when out of range), exactly like Version. The name exists so call
// sites can document that they are deliberately paying for a complete
// node map rather than a cheap point read (Describe).
func (st *Store) Materialize(v int) *Snapshot { return st.Version(v) }

// materializeLocked builds (and caches) the full snapshot of versions[i] by
// walking back to the nearest materialized ancestor and replaying deltas
// forward. Called with the write lock held.
func (st *Store) materializeLocked(i int) *Snapshot {
	ver := st.versions[i]
	if ver.snap != nil {
		return ver.snap
	}
	base := i
	for st.versions[base].snap == nil {
		base-- // version 1 is a capture point, so this terminates
	}
	src := st.versions[base].snap.Nodes
	nodes := make(map[string]NodeDescription, len(src))
	for k, d := range src {
		nodes[k] = d
	}
	for j := base + 1; j <= i; j++ {
		for k, d := range st.versions[j].delta {
			nodes[k] = d
		}
	}
	ver.snap = &Snapshot{Version: ver.num, TakenAt: ver.takenAt, Nodes: nodes}
	st.materializations.Add(1)
	return ver.snap
}

// VersionCount returns how many versions are archived.
func (st *Store) VersionCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.versions)
}

// At returns the snapshot that was current at time t (the latest version
// with TakenAt ≤ t), or nil if t precedes the first capture. This answers
// the paper's archival question: "state of the testbed 6 months ago?".
// Versions are timestamped in monotone simulated order, so the lookup is a
// binary search over the version chain.
func (st *Store) At(t simclock.Time) *Snapshot {
	st.mu.RLock()
	i := sort.Search(len(st.versions), func(i int) bool {
		return st.versions[i].takenAt > t
	}) - 1
	if i < 0 {
		st.mu.RUnlock()
		return nil
	}
	if snap := st.versions[i].snap; snap != nil {
		st.mu.RUnlock()
		return snap
	}
	st.mu.RUnlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.materializeLocked(i)
}

// VersionAt returns the number of the version that was current at time t
// (the latest version with TakenAt ≤ t) without materializing anything.
// ok is false when t precedes the first capture. This is the archival
// ETag path: the gateway builds composite per-site version vectors from
// it, so a conditional "grid as of T" request costs one binary search per
// site and zero snapshot builds.
func (st *Store) VersionAt(t simclock.Time) (int, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	i := sort.Search(len(st.versions), func(i int) bool {
		return st.versions[i].takenAt > t
	}) - 1
	if i < 0 {
		return 0, false
	}
	return st.versions[i].num, true
}

// Describe returns the current reference description of one node, or an
// error when the node is unknown — the refapi test family treats a missing
// description as a bug in itself. This is the verification hot path: a
// point read of the live map, no snapshot materialization, no copies
// beyond the returned value.
func (st *Store) Describe(node string) (NodeDescription, error) {
	st.mu.RLock()
	d, ok := st.cur[node]
	st.mu.RUnlock()
	if !ok {
		return NodeDescription{}, fmt.Errorf("refapi: no description for node %q", node)
	}
	return d, nil
}

// Difference is one divergence between two descriptions of the same node.
type Difference struct {
	Node     string `json:"node"`
	Field    string `json:"field"`
	Expected string `json:"expected"`
	Actual   string `json:"actual"`
}

func (d Difference) String() string {
	var b strings.Builder
	b.Grow(len(d.Node) + len(d.Field) + len(d.Expected) + len(d.Actual) + 32)
	b.WriteString(d.Node)
	b.WriteString(": ")
	b.WriteString(d.Field)
	b.WriteString(": expected ")
	b.WriteString(strconv.Quote(d.Expected))
	b.WriteString(", got ")
	b.WriteString(strconv.Quote(d.Actual))
	return b.String()
}

// Differ compares inventories into a reusable buffer, letting hot loops
// (cluster sweeps, whole-campaign verification) diff thousands of nodes
// without reallocating the result slice. The slice returned by Diff is
// valid until the next Diff call.
type Differ struct {
	buf []Difference
}

// Diff compares ref against got and returns the divergences, reusing the
// Differ's internal buffer.
func (d *Differ) Diff(node string, ref, got testbed.Inventory) []Difference {
	d.buf = AppendDiff(d.buf[:0], node, ref, got)
	return d.buf
}

// DiffInventories compares a reference inventory against an observed one and
// returns every field-level divergence. This is the comparison g5k-checks
// performs between the Reference API and what OHAI/ethtool report.
func DiffInventories(node string, ref, got testbed.Inventory) []Difference {
	return AppendDiff(nil, node, ref, got)
}

// AppendDiff appends every field-level divergence between ref and got to
// dst and returns the extended slice. Fields are compared natively —
// strings are only built for fields that actually diverge, so diffing two
// identical inventories performs zero allocations.
func AppendDiff(dst []Difference, node string, ref, got testbed.Inventory) []Difference {
	if ref.CPU.Model != got.CPU.Model {
		dst = append(dst, Difference{node, "cpu.model", ref.CPU.Model, got.CPU.Model})
	}
	if ref.CPU.Sockets != got.CPU.Sockets {
		dst = append(dst, Difference{node, "cpu.sockets", itoa(ref.CPU.Sockets), itoa(got.CPU.Sockets)})
	}
	if ref.CPU.CoresPerSocket != got.CPU.CoresPerSocket {
		dst = append(dst, Difference{node, "cpu.cores_per_socket", itoa(ref.CPU.CoresPerSocket), itoa(got.CPU.CoresPerSocket)})
	}
	if ref.CPU.FreqMHz != got.CPU.FreqMHz {
		dst = append(dst, Difference{node, "cpu.freq_mhz", itoa(ref.CPU.FreqMHz), itoa(got.CPU.FreqMHz)})
	}
	if ref.CPU.Microcode != got.CPU.Microcode {
		dst = append(dst, Difference{node, "cpu.microcode", ref.CPU.Microcode, got.CPU.Microcode})
	}
	if ref.RAMGB != got.RAMGB {
		dst = append(dst, Difference{node, "ram_gb", itoa(ref.RAMGB), itoa(got.RAMGB)})
	}
	if ref.BIOS.Version != got.BIOS.Version {
		dst = append(dst, Difference{node, "bios.version", ref.BIOS.Version, got.BIOS.Version})
	}
	if ref.BIOS.HyperThreading != got.BIOS.HyperThreading {
		dst = append(dst, Difference{node, "bios.hyperthreading", btoa(ref.BIOS.HyperThreading), btoa(got.BIOS.HyperThreading)})
	}
	if ref.BIOS.TurboBoost != got.BIOS.TurboBoost {
		dst = append(dst, Difference{node, "bios.turbo_boost", btoa(ref.BIOS.TurboBoost), btoa(got.BIOS.TurboBoost)})
	}
	if ref.BIOS.CStates != got.BIOS.CStates {
		dst = append(dst, Difference{node, "bios.c_states", btoa(ref.BIOS.CStates), btoa(got.BIOS.CStates)})
	}
	if ref.BIOS.PowerProfile != got.BIOS.PowerProfile {
		dst = append(dst, Difference{node, "bios.power_profile", ref.BIOS.PowerProfile, got.BIOS.PowerProfile})
	}
	if ref.GPUModel != got.GPUModel {
		dst = append(dst, Difference{node, "gpu_model", ref.GPUModel, got.GPUModel})
	}
	if ref.Infiniband != got.Infiniband {
		dst = append(dst, Difference{node, "infiniband", ref.Infiniband, got.Infiniband})
	}
	if ref.OSKernel != got.OSKernel {
		dst = append(dst, Difference{node, "os_kernel", ref.OSKernel, got.OSKernel})
	}

	if len(ref.Disks) != len(got.Disks) {
		dst = append(dst, Difference{node, "disks.count", itoa(len(ref.Disks)), itoa(len(got.Disks))})
	} else {
		for i := range ref.Disks {
			rd, gd := &ref.Disks[i], &got.Disks[i]
			// Field labels are keyed by the reference device name; a device
			// identity drift is itself a difference.
			if rd.Device != gd.Device {
				dst = append(dst, Difference{node, diskField(rd.Device, "device"), rd.Device, gd.Device})
			}
			if rd.Vendor != gd.Vendor {
				dst = append(dst, Difference{node, diskField(rd.Device, "vendor"), rd.Vendor, gd.Vendor})
			}
			if rd.Model != gd.Model {
				dst = append(dst, Difference{node, diskField(rd.Device, "model"), rd.Model, gd.Model})
			}
			if rd.Firmware != gd.Firmware {
				dst = append(dst, Difference{node, diskField(rd.Device, "firmware"), rd.Firmware, gd.Firmware})
			}
			if rd.CapacityGB != gd.CapacityGB {
				dst = append(dst, Difference{node, diskField(rd.Device, "capacity_gb"), itoa(rd.CapacityGB), itoa(gd.CapacityGB)})
			}
			if rd.WriteCache != gd.WriteCache {
				dst = append(dst, Difference{node, diskField(rd.Device, "write_cache"), btoa(rd.WriteCache), btoa(gd.WriteCache)})
			}
		}
	}
	if len(ref.NICs) != len(got.NICs) {
		dst = append(dst, Difference{node, "nics.count", itoa(len(ref.NICs)), itoa(len(got.NICs))})
	} else {
		for i := range ref.NICs {
			rn, gn := &ref.NICs[i], &got.NICs[i]
			if rn.Name != gn.Name {
				dst = append(dst, Difference{node, nicField(rn.Name, "name"), rn.Name, gn.Name})
			}
			if rn.RateGbps != gn.RateGbps {
				dst = append(dst, Difference{node, nicField(rn.Name, "rate_gbps"), itoa(rn.RateGbps), itoa(gn.RateGbps)})
			}
			if rn.Driver != gn.Driver {
				dst = append(dst, Difference{node, nicField(rn.Name, "driver"), rn.Driver, gn.Driver})
			}
			if rn.MAC != gn.MAC {
				dst = append(dst, Difference{node, nicField(rn.Name, "mac"), rn.MAC, gn.MAC})
			}
			if rn.SwitchPort != gn.SwitchPort {
				dst = append(dst, Difference{node, nicField(rn.Name, "switch_port"), rn.SwitchPort, gn.SwitchPort})
			}
		}
	}
	return dst
}

// diskField builds "disks[<device>].<field>" — only reached on mismatch.
func diskField(device, field string) string {
	return "disks[" + device + "]." + field
}

// nicField builds "nics[<name>].<field>" — only reached on mismatch.
func nicField(name, field string) string {
	return "nics[" + name + "]." + field
}

// DiffSnapshots compares two whole-testbed snapshots and returns all
// node-level differences, plus differences for nodes present in only one of
// the two. Output is sorted by node then field, so the report is
// deterministic regardless of map iteration order.
func DiffSnapshots(a, b *Snapshot) []Difference {
	var out []Difference
	for name, da := range a.Nodes {
		db, ok := b.Nodes[name]
		if !ok {
			out = append(out, Difference{Node: name, Field: "presence", Expected: "present", Actual: "missing"})
			continue
		}
		out = AppendDiff(out, name, da.Inv, db.Inv)
	}
	for name := range b.Nodes {
		if _, ok := a.Nodes[name]; !ok {
			out = append(out, Difference{Node: name, Field: "presence", Expected: "missing", Actual: "present"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func itoa(i int) string  { return strconv.Itoa(i) }
func btoa(b bool) string { return strconv.FormatBool(b) }
