package refapi

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

func newStore(t *testing.T) (*testbed.Testbed, *Store) {
	t.Helper()
	tb := testbed.Default()
	return tb, NewStore(tb, 0)
}

func TestInitialSnapshotAccurate(t *testing.T) {
	tb, st := newStore(t)
	cur := st.Current()
	if cur.Version != 1 {
		t.Fatalf("version = %d, want 1", cur.Version)
	}
	if len(cur.Nodes) != tb.TotalNodes() {
		t.Fatalf("described %d nodes, want %d", len(cur.Nodes), tb.TotalNodes())
	}
	for _, n := range tb.Nodes() {
		if diffs := DiffInventories(n.Name, cur.Nodes[n.Name].Inv, n.Inv); len(diffs) != 0 {
			t.Fatalf("fresh description already drifted for %s: %v", n.Name, diffs)
		}
	}
}

func TestSnapshotDoesNotAliasLiveState(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("griffon-1.nancy")
	n.Inv.Disks[0].Firmware = "MUTATED"
	if st.Current().Nodes[n.Name].Inv.Disks[0].Firmware == "MUTATED" {
		t.Fatal("snapshot aliases live inventory")
	}
}

func TestDescribe(t *testing.T) {
	_, st := newStore(t)
	d, err := st.Describe("taurus-7.lyon")
	if err != nil {
		t.Fatal(err)
	}
	if d.Cluster != "taurus" || d.Site != "lyon" {
		t.Fatalf("bad description: %+v", d)
	}
	if _, err := st.Describe("ghost-1.limbo"); err == nil {
		t.Fatal("Describe of unknown node succeeded")
	}
}

func TestDiffDetectsMutations(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("suno-3.sophia")
	ref, _ := st.Describe(n.Name)

	n.Inv.BIOS.CStates = true
	n.Inv.Disks[0].WriteCache = false
	n.Inv.Disks[0].Firmware = "ES62"
	n.Inv.RAMGB = 16 // one DIMM died

	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	fields := map[string]bool{}
	for _, d := range diffs {
		fields[d.Field] = true
	}
	for _, want := range []string{"bios.c_states", "disks[sda].write_cache", "disks[sda].firmware", "ram_gb"} {
		if !fields[want] {
			t.Errorf("diff missed field %s (got %v)", want, diffs)
		}
	}
	if len(diffs) != 4 {
		t.Errorf("got %d diffs, want 4: %v", len(diffs), diffs)
	}
}

func TestDiffReportsExpectedAndActual(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("edel-2.grenoble")
	ref, _ := st.Describe(n.Name)
	n.Inv.RAMGB = 12
	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %v", diffs)
	}
	d := diffs[0]
	if d.Expected != "24" || d.Actual != "12" {
		t.Fatalf("expected/actual = %q/%q", d.Expected, d.Actual)
	}
	if !strings.Contains(d.String(), "edel-2.grenoble") {
		t.Fatalf("String() = %q", d.String())
	}
}

// A drifted disk device or NIC name is an identity mismatch in its own
// right, even when every other field agrees.
func TestDiffDetectsDeviceIdentityDrift(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("griffon-3.nancy")
	ref, _ := st.Describe(n.Name)
	n.Inv.Disks[0].Device = "nvme0n1"
	n.Inv.NICs[0].Name = "enp1s0"
	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v, want 2", diffs)
	}
	if diffs[0].Field != "disks[sda].device" || diffs[0].Actual != "nvme0n1" {
		t.Fatalf("disk identity diff = %+v", diffs[0])
	}
	if diffs[1].Field != "nics[eth0].name" || diffs[1].Actual != "enp1s0" {
		t.Fatalf("nic identity diff = %+v", diffs[1])
	}
}

func TestDiffDiskCountMismatch(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("parasilo-1.rennes")
	ref, _ := st.Describe(n.Name)
	n.Inv.Disks = n.Inv.Disks[:3] // two disks vanished
	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	if len(diffs) != 1 || diffs[0].Field != "disks.count" {
		t.Fatalf("diffs = %v", diffs)
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("helios-5.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 16
	if err := st.Update(3*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}
	if st.VersionCount() != 2 {
		t.Fatalf("versions = %d, want 2", st.VersionCount())
	}
	if got, _ := st.Describe(n.Name); got.Inv.RAMGB != 16 {
		t.Fatalf("updated RAM = %d, want 16", got.Inv.RAMGB)
	}
	// The old version is untouched.
	if st.Version(1).Nodes[n.Name].Inv.RAMGB != 8 {
		t.Fatal("archived version mutated by Update")
	}
	if err := st.Update(0, "ghost-1.limbo", inv); err == nil {
		t.Fatal("Update of unknown node succeeded")
	}
}

func TestArchiveAt(t *testing.T) {
	tb := testbed.Default()
	st := NewStore(tb, 10*simclock.Hour)
	n := tb.Node("sol-1.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 8
	if err := st.Update(20*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}

	if s := st.At(5 * simclock.Hour); s != nil {
		t.Fatal("At before first capture should be nil")
	}
	if s := st.At(15 * simclock.Hour); s == nil || s.Version != 1 {
		t.Fatalf("At(15h) = %v, want version 1", s)
	}
	if s := st.At(25 * simclock.Hour); s == nil || s.Version != 2 {
		t.Fatalf("At(25h) = %v, want version 2", s)
	}
	if st.Version(0) != nil || st.Version(3) != nil {
		t.Fatal("out-of-range Version lookups should be nil")
	}
}

// TestArchiveAtEdges pins the binary search down at its edges: exactly on
// a capture boundary, strictly between versions, before the first capture,
// and the caching contract — repeated At calls for the same instant build
// the snapshot once (Materializations is how the gateway's 304 path proves
// it re-materializes nothing).
func TestArchiveAtEdges(t *testing.T) {
	tb := testbed.Default()
	st := NewStore(tb, 10*simclock.Hour)
	n := tb.Node("sol-1.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 8
	if err := st.Update(20*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}
	inv2 := inv.Clone()
	inv2.RAMGB = 12
	if err := st.Update(30*simclock.Hour, n.Name, inv2); err != nil {
		t.Fatal(err)
	}

	// Exactly on a capture boundary: TakenAt ≤ t is inclusive, so t equal
	// to a version's timestamp selects that version, not its predecessor.
	if s := st.At(20 * simclock.Hour); s == nil || s.Version != 2 {
		t.Fatalf("At(boundary 20h) version = %v, want 2", s)
	}
	if s := st.At(10 * simclock.Hour); s == nil || s.Version != 1 {
		t.Fatalf("At(first capture boundary) version = %v, want 1", s)
	}
	// Strictly between versions: the earlier one is still current.
	if s := st.At(25 * simclock.Hour); s == nil || s.Version != 2 {
		t.Fatalf("At(between 20h and 30h) version = %v, want 2", s)
	}
	// Before the first capture: no version existed.
	if s := st.At(10*simclock.Hour - 1); s != nil {
		t.Fatalf("At(before first capture) = %v, want nil", s)
	}

	// Repeated At for the same instant must hit the cached materialization.
	// Version 3 (the 30h delta) has not been read yet: the first At builds
	// it, every later At returns the cached snapshot.
	before := st.Materializations()
	first := st.At(35 * simclock.Hour)
	afterFirst := st.Materializations()
	if afterFirst != before+1 {
		t.Fatalf("first At materialized %d times, want 1", afterFirst-before)
	}
	for i := 0; i < 10; i++ {
		if again := st.At(35 * simclock.Hour); again != first {
			t.Fatal("repeated At returned a different snapshot pointer")
		}
	}
	if st.Materializations() != afterFirst {
		t.Fatalf("repeated At re-materialized (%d builds after, %d before)",
			st.Materializations(), afterFirst)
	}
}

// TestVersionAt pins the materialization-free twin of At: same binary
// search, version numbers only, zero snapshot builds.
func TestVersionAt(t *testing.T) {
	tb := testbed.Default()
	st := NewStore(tb, 10*simclock.Hour)
	n := tb.Node("sol-1.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 8
	if err := st.Update(20*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}

	if v, ok := st.VersionAt(5 * simclock.Hour); ok {
		t.Fatalf("VersionAt(before first capture) = %d, want none", v)
	}
	if v, ok := st.VersionAt(10 * simclock.Hour); !ok || v != 1 {
		t.Fatalf("VersionAt(10h) = %d,%v, want 1", v, ok)
	}
	if v, ok := st.VersionAt(15 * simclock.Hour); !ok || v != 1 {
		t.Fatalf("VersionAt(15h) = %d,%v, want 1", v, ok)
	}
	if v, ok := st.VersionAt(20 * simclock.Hour); !ok || v != 2 {
		t.Fatalf("VersionAt(20h) = %d,%v, want 2", v, ok)
	}
	if v, ok := st.VersionAt(52 * simclock.Week); !ok || v != 2 {
		t.Fatalf("VersionAt(far future) = %d,%v, want 2", v, ok)
	}
	// The whole point: answering "which version" builds no snapshots.
	if st.Materializations() != 0 {
		t.Fatalf("VersionAt materialized %d snapshots, want 0", st.Materializations())
	}
}

func TestDiffSnapshotsPresence(t *testing.T) {
	_, st := newStore(t)
	a := st.Current()
	b := a.Clone()
	delete(b.Nodes, "uvb-1.sophia")
	diffs := DiffSnapshots(a, b)
	if len(diffs) != 1 || diffs[0].Field != "presence" || diffs[0].Actual != "missing" {
		t.Fatalf("diffs = %v", diffs)
	}
	// And symmetric direction.
	diffs = DiffSnapshots(b, a)
	if len(diffs) != 1 || diffs[0].Actual != "present" {
		t.Fatalf("reverse diffs = %v", diffs)
	}
}

func TestDiffSnapshotsSorted(t *testing.T) {
	_, st := newStore(t)
	a := st.Current()
	b := a.Clone()
	for _, name := range []string{"sol-9.sophia", "edel-1.grenoble", "graphene-40.nancy"} {
		d := b.Nodes[name]
		d.Inv.RAMGB++
		d.Inv.BIOS.CStates = true
		b.Nodes[name] = d
	}
	diffs := DiffSnapshots(a, b)
	for i := 1; i < len(diffs); i++ {
		if diffs[i-1].Node > diffs[i].Node {
			t.Fatalf("diff output not sorted: %v before %v", diffs[i-1], diffs[i])
		}
	}
	if len(diffs) != 6 {
		t.Fatalf("got %d diffs, want 6", len(diffs))
	}
}

// Property: DiffInventories(x, x) is empty for arbitrary mutations of a real
// inventory — a description always matches itself.
func TestDiffSelfIsEmptyProperty(t *testing.T) {
	tb := testbed.Default()
	base := tb.Node("griffon-1.nancy").Inv
	f := func(ram uint16, fw string, cstates bool) bool {
		inv := base.Clone()
		inv.RAMGB = int(ram)
		inv.Disks[0].Firmware = fw
		inv.BIOS.CStates = cstates
		return len(DiffInventories("n", inv, inv.Clone())) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of differences equals the number of mutated scalar
// fields (no double counting, no misses) for the fields we mutate.
func TestDiffCountsProperty(t *testing.T) {
	tb := testbed.Default()
	base := tb.Node("taurus-1.lyon").Inv
	f := func(mutRAM, mutKernel, mutTurbo bool) bool {
		inv := base.Clone()
		want := 0
		if mutRAM {
			inv.RAMGB += 7
			want++
		}
		if mutKernel {
			inv.OSKernel += "-broken"
			want++
		}
		if mutTurbo {
			inv.BIOS.TurboBoost = !inv.BIOS.TurboBoost
			want++
		}
		return len(DiffInventories("n", base, inv)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The copy-on-write store must preserve archival semantics: once a version
// is handed out (or even merely recorded), later Updates and CaptureFroms
// must not change what it says — byte-for-byte, since users script against
// the JSON. This covers the paper's "state of the testbed 6 months ago"
// query across subsequent churn.
func TestArchivedVersionsImmutableUnderChurn(t *testing.T) {
	tb := testbed.Default()
	st := NewStore(tb, simclock.Hour)
	n := tb.Node("taurus-3.lyon")

	inv := n.Inv.Clone()
	inv.RAMGB = 64
	if err := st.Update(2*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}

	// Render v1 and v2 (and the archival At query) before the churn.
	v1Before, err := st.Version(1).MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	v2Before, _ := st.Version(2).MarshalJSONIndent()
	atBefore, _ := st.At(90 * simclock.Minute).MarshalJSONIndent()

	// Churn: many single-node updates, a live-state mutation, and a full
	// re-capture ("6 months" later).
	for i, name := range []string{"sol-1.sophia", "edel-2.grenoble", "taurus-3.lyon", "griffon-10.nancy"} {
		inv := tb.Node(name).Inv.Clone()
		inv.OSKernel = "4.9.0-churn"
		if err := st.Update(simclock.Time(3+i)*simclock.Hour, name, inv); err != nil {
			t.Fatal(err)
		}
	}
	tb.Node("taurus-3.lyon").Inv.BIOS.TurboBoost = false
	st.CaptureFrom(tb, 6*30*simclock.Day)

	v1After, _ := st.Version(1).MarshalJSONIndent()
	v2After, _ := st.Version(2).MarshalJSONIndent()
	atAfter, _ := st.At(90 * simclock.Minute).MarshalJSONIndent()
	if string(v1Before) != string(v1After) {
		t.Fatal("version 1 changed after later Update/CaptureFrom")
	}
	if string(v2Before) != string(v2After) {
		t.Fatal("version 2 changed after later Update/CaptureFrom")
	}
	if string(atBefore) != string(atAfter) {
		t.Fatal("archival At() answer changed after later churn")
	}

	// The archival question still answers from the far future.
	old := st.At(3 * 30 * simclock.Day)
	if old == nil || old.Nodes["taurus-3.lyon"].Inv.BIOS.TurboBoost != true {
		t.Fatal("state-6-months-ago query does not reflect the pre-repair description")
	}
	if cur := st.Current(); cur.Nodes["taurus-3.lyon"].Inv.BIOS.TurboBoost != false {
		t.Fatalf("current description missed the re-capture: %+v", cur.Nodes["taurus-3.lyon"].Inv.BIOS)
	}
}

// A delta version materialized *lazily* (first read long after later
// versions were appended) must equal the same version materialized eagerly.
func TestLazyMaterializationMatchesEager(t *testing.T) {
	mkStore := func() (*Store, *testbed.Testbed) {
		tb := testbed.Default()
		st := NewStore(tb, 0)
		for i, name := range []string{"uvb-1.sophia", "hercule-2.lyon", "uvb-1.sophia"} {
			inv := tb.Node(name).Inv.Clone()
			inv.CPU.Microcode = "0xcafe"
			inv.RAMGB += i + 1
			if err := st.Update(simclock.Time(i+1)*simclock.Hour, name, inv); err != nil {
				t.Fatal(err)
			}
		}
		return st, tb
	}

	eagerSt, _ := mkStore()
	var eager [][]byte
	for v := 1; v <= eagerSt.VersionCount(); v++ { // materialize as we go
		data, err := eagerSt.Version(v).MarshalJSONIndent()
		if err != nil {
			t.Fatal(err)
		}
		eager = append(eager, data)
	}

	lazySt, _ := mkStore()
	for v := lazySt.VersionCount(); v >= 1; v-- { // materialize backwards, after all churn
		data, err := lazySt.Version(v).MarshalJSONIndent()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(eager[v-1]) {
			t.Fatalf("lazy materialization of v%d diverges from eager", v)
		}
	}
	if lazySt.Materialize(2) != lazySt.Version(2) {
		t.Fatal("Materialize is not the Version escape hatch")
	}
	if lazySt.Materialize(99) != nil {
		t.Fatal("Materialize out of range should be nil")
	}
}

// Version timestamps must never go backwards (At binary-searches them): a
// caller handing Update/CaptureFrom an earlier time gets clamped to the
// chain tail instead of corrupting later archival queries.
func TestVersionTimesClampedMonotone(t *testing.T) {
	tb := testbed.Default()
	st := NewStore(tb, 10*simclock.Hour)
	inv := tb.Node("sol-1.sophia").Inv.Clone()
	inv.RAMGB = 2
	if err := st.Update(20*simclock.Hour, "sol-1.sophia", inv); err != nil {
		t.Fatal(err)
	}
	// Buggy caller: time goes backwards.
	inv.RAMGB = 3
	if err := st.Update(15*simclock.Hour, "sol-1.sophia", inv); err != nil {
		t.Fatal(err)
	}
	st.CaptureFrom(tb, 5*simclock.Hour)

	if s := st.Version(3); s.TakenAt != 20*simclock.Hour {
		t.Fatalf("v3 archived at %v, want clamp to 20h", s.TakenAt)
	}
	if s := st.At(19 * simclock.Hour); s == nil || s.Version != 1 {
		t.Fatalf("At(19h) = %v, want version 1", s)
	}
	// The latest version wins at and after the clamped instant.
	if s := st.At(20 * simclock.Hour); s == nil || s.Version != 4 {
		t.Fatalf("At(20h) = %v, want version 4", s)
	}
	if s := st.At(simclock.Week); s == nil || s.Version != 4 {
		t.Fatalf("At(week) = %v, want version 4", s)
	}
}

// DiffSnapshots iterates Go maps internally; its sorted output must be
// identical across repeated calls regardless of iteration order.
func TestDiffSnapshotsDeterministic(t *testing.T) {
	_, st := newStore(t)
	a := st.Current()
	b := a.Clone()
	for _, name := range []string{"sol-9.sophia", "edel-1.grenoble", "graphene-40.nancy", "uvb-7.sophia"} {
		d := b.Nodes[name]
		d.Inv.RAMGB++
		d.Inv.BIOS.CStates = !d.Inv.BIOS.CStates
		d.Inv.Disks[0].Firmware += "-x"
		b.Nodes[name] = d
	}
	delete(b.Nodes, "taurus-1.lyon")

	first := DiffSnapshots(a, b)
	if len(first) == 0 {
		t.Fatal("no differences found")
	}
	for run := 0; run < 10; run++ {
		again := DiffSnapshots(a, b)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d diffs, first run had %d", run, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d: diff %d = %+v, first run had %+v", run, i, again[i], first[i])
			}
		}
	}
	// Sorted by (node, field).
	for i := 1; i < len(first); i++ {
		if first[i-1].Node > first[i].Node ||
			(first[i-1].Node == first[i].Node && first[i-1].Field > first[i].Field) {
			t.Fatalf("output not sorted: %v before %v", first[i-1], first[i])
		}
	}
}

// A Differ reuses its buffer across calls: after warming up, diffing
// a clean node allocates nothing.
func TestDifferReusesBuffer(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("griffon-1.nancy")
	ref, _ := st.Describe(n.Name)

	var d Differ
	drifted := n.Inv.Clone()
	drifted.RAMGB = 1
	if diffs := d.Diff(n.Name, ref.Inv, drifted); len(diffs) != 1 {
		t.Fatalf("diffs = %v", diffs)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if diffs := d.Diff(n.Name, ref.Inv, n.Inv); len(diffs) != 0 {
			t.Fatalf("clean node drifted: %v", diffs)
		}
	})
	if allocs != 0 {
		t.Fatalf("clean-node diff allocates %v times per run, want 0", allocs)
	}
}

func TestDifferenceStringFormat(t *testing.T) {
	d := Difference{Node: "sol-1.sophia", Field: "ram_gb", Expected: "4", Actual: "2"}
	want := `sol-1.sophia: ram_gb: expected "4", got "2"`
	if d.String() != want {
		t.Fatalf("String() = %q, want %q", d.String(), want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	_, st := newStore(t)
	data, err := st.Current().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 || len(back.Nodes) != len(st.Current().Nodes) {
		t.Fatal("JSON round trip lost data")
	}
	d := back.Nodes["griffon-1.nancy"]
	if d.Inv.CPU.Model != "Intel Xeon L5420" {
		t.Fatalf("round-tripped CPU model = %q", d.Inv.CPU.Model)
	}
}
