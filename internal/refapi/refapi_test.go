package refapi

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

func newStore(t *testing.T) (*testbed.Testbed, *Store) {
	t.Helper()
	tb := testbed.Default()
	return tb, NewStore(tb, 0)
}

func TestInitialSnapshotAccurate(t *testing.T) {
	tb, st := newStore(t)
	cur := st.Current()
	if cur.Version != 1 {
		t.Fatalf("version = %d, want 1", cur.Version)
	}
	if len(cur.Nodes) != tb.TotalNodes() {
		t.Fatalf("described %d nodes, want %d", len(cur.Nodes), tb.TotalNodes())
	}
	for _, n := range tb.Nodes() {
		if diffs := DiffInventories(n.Name, cur.Nodes[n.Name].Inv, n.Inv); len(diffs) != 0 {
			t.Fatalf("fresh description already drifted for %s: %v", n.Name, diffs)
		}
	}
}

func TestSnapshotDoesNotAliasLiveState(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("griffon-1.nancy")
	n.Inv.Disks[0].Firmware = "MUTATED"
	if st.Current().Nodes[n.Name].Inv.Disks[0].Firmware == "MUTATED" {
		t.Fatal("snapshot aliases live inventory")
	}
}

func TestDescribe(t *testing.T) {
	_, st := newStore(t)
	d, err := st.Describe("taurus-7.lyon")
	if err != nil {
		t.Fatal(err)
	}
	if d.Cluster != "taurus" || d.Site != "lyon" {
		t.Fatalf("bad description: %+v", d)
	}
	if _, err := st.Describe("ghost-1.limbo"); err == nil {
		t.Fatal("Describe of unknown node succeeded")
	}
}

func TestDiffDetectsMutations(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("suno-3.sophia")
	ref, _ := st.Describe(n.Name)

	n.Inv.BIOS.CStates = true
	n.Inv.Disks[0].WriteCache = false
	n.Inv.Disks[0].Firmware = "ES62"
	n.Inv.RAMGB = 16 // one DIMM died

	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	fields := map[string]bool{}
	for _, d := range diffs {
		fields[d.Field] = true
	}
	for _, want := range []string{"bios.c_states", "disks[sda].write_cache", "disks[sda].firmware", "ram_gb"} {
		if !fields[want] {
			t.Errorf("diff missed field %s (got %v)", want, diffs)
		}
	}
	if len(diffs) != 4 {
		t.Errorf("got %d diffs, want 4: %v", len(diffs), diffs)
	}
}

func TestDiffReportsExpectedAndActual(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("edel-2.grenoble")
	ref, _ := st.Describe(n.Name)
	n.Inv.RAMGB = 12
	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %v", diffs)
	}
	d := diffs[0]
	if d.Expected != "24" || d.Actual != "12" {
		t.Fatalf("expected/actual = %q/%q", d.Expected, d.Actual)
	}
	if !strings.Contains(d.String(), "edel-2.grenoble") {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestDiffDiskCountMismatch(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("parasilo-1.rennes")
	ref, _ := st.Describe(n.Name)
	n.Inv.Disks = n.Inv.Disks[:3] // two disks vanished
	diffs := DiffInventories(n.Name, ref.Inv, n.Inv)
	if len(diffs) != 1 || diffs[0].Field != "disks.count" {
		t.Fatalf("diffs = %v", diffs)
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	tb, st := newStore(t)
	n := tb.Node("helios-5.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 16
	if err := st.Update(3*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}
	if st.VersionCount() != 2 {
		t.Fatalf("versions = %d, want 2", st.VersionCount())
	}
	if got, _ := st.Describe(n.Name); got.Inv.RAMGB != 16 {
		t.Fatalf("updated RAM = %d, want 16", got.Inv.RAMGB)
	}
	// The old version is untouched.
	if st.Version(1).Nodes[n.Name].Inv.RAMGB != 8 {
		t.Fatal("archived version mutated by Update")
	}
	if err := st.Update(0, "ghost-1.limbo", inv); err == nil {
		t.Fatal("Update of unknown node succeeded")
	}
}

func TestArchiveAt(t *testing.T) {
	tb := testbed.Default()
	st := NewStore(tb, 10*simclock.Hour)
	n := tb.Node("sol-1.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 8
	if err := st.Update(20*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}

	if s := st.At(5 * simclock.Hour); s != nil {
		t.Fatal("At before first capture should be nil")
	}
	if s := st.At(15 * simclock.Hour); s == nil || s.Version != 1 {
		t.Fatalf("At(15h) = %v, want version 1", s)
	}
	if s := st.At(25 * simclock.Hour); s == nil || s.Version != 2 {
		t.Fatalf("At(25h) = %v, want version 2", s)
	}
	if st.Version(0) != nil || st.Version(3) != nil {
		t.Fatal("out-of-range Version lookups should be nil")
	}
}

func TestDiffSnapshotsPresence(t *testing.T) {
	_, st := newStore(t)
	a := st.Current()
	b := a.Clone()
	delete(b.Nodes, "uvb-1.sophia")
	diffs := DiffSnapshots(a, b)
	if len(diffs) != 1 || diffs[0].Field != "presence" || diffs[0].Actual != "missing" {
		t.Fatalf("diffs = %v", diffs)
	}
	// And symmetric direction.
	diffs = DiffSnapshots(b, a)
	if len(diffs) != 1 || diffs[0].Actual != "present" {
		t.Fatalf("reverse diffs = %v", diffs)
	}
}

func TestDiffSnapshotsSorted(t *testing.T) {
	_, st := newStore(t)
	a := st.Current()
	b := a.Clone()
	for _, name := range []string{"sol-9.sophia", "edel-1.grenoble", "graphene-40.nancy"} {
		d := b.Nodes[name]
		d.Inv.RAMGB++
		d.Inv.BIOS.CStates = true
		b.Nodes[name] = d
	}
	diffs := DiffSnapshots(a, b)
	for i := 1; i < len(diffs); i++ {
		if diffs[i-1].Node > diffs[i].Node {
			t.Fatalf("diff output not sorted: %v before %v", diffs[i-1], diffs[i])
		}
	}
	if len(diffs) != 6 {
		t.Fatalf("got %d diffs, want 6", len(diffs))
	}
}

// Property: DiffInventories(x, x) is empty for arbitrary mutations of a real
// inventory — a description always matches itself.
func TestDiffSelfIsEmptyProperty(t *testing.T) {
	tb := testbed.Default()
	base := tb.Node("griffon-1.nancy").Inv
	f := func(ram uint16, fw string, cstates bool) bool {
		inv := base.Clone()
		inv.RAMGB = int(ram)
		inv.Disks[0].Firmware = fw
		inv.BIOS.CStates = cstates
		return len(DiffInventories("n", inv, inv.Clone())) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of differences equals the number of mutated scalar
// fields (no double counting, no misses) for the fields we mutate.
func TestDiffCountsProperty(t *testing.T) {
	tb := testbed.Default()
	base := tb.Node("taurus-1.lyon").Inv
	f := func(mutRAM, mutKernel, mutTurbo bool) bool {
		inv := base.Clone()
		want := 0
		if mutRAM {
			inv.RAMGB += 7
			want++
		}
		if mutKernel {
			inv.OSKernel += "-broken"
			want++
		}
		if mutTurbo {
			inv.BIOS.TurboBoost = !inv.BIOS.TurboBoost
			want++
		}
		return len(DiffInventories("n", base, inv)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	_, st := newStore(t)
	data, err := st.Current().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 || len(back.Nodes) != len(st.Current().Nodes) {
		t.Fatal("JSON round trip lost data")
	}
	d := back.Nodes["griffon-1.nancy"]
	if d.Inv.CPU.Model != "Intel Xeon L5420" {
		t.Fatalf("round-tripped CPU model = %q", d.Inv.CPU.Model)
	}
}
