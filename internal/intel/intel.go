// Package intel is the grid intelligence layer: the federation-wide
// answers to the paper's archival and longitudinal questions, built on
// top of the per-site subsystems without owning any simulation state.
//
// Three pillars, one per file:
//
//   - archive.go — federated time travel. GridArchive answers "what was
//     the grid's inventory as of sim-time T" by binary-searching every
//     site's refapi.Store delta chain (Store.At / Store.VersionAt) under
//     the per-site read gates, and "what changed anywhere between T1 and
//     T2" as a per-site-tagged diff. The version vector it computes is
//     the composite strong ETag the gateway serves, so conditional
//     re-reads cost one binary search per site and zero snapshot builds.
//   - incidents.go — cross-site incident rollup. Per-site bug trackers
//     file independently, so one root cause at two sites is two tickets;
//     Correlate folds every tracker's tickets into signature-keyed
//     incidents with first-seen/last-seen sim-times, affected-site sets
//     and an open/closed lifecycle, optionally scoped to "open as of T"
//     (composing with the archive's time travel).
//   - reliability.go — fleet reliability sweeps. A core.RunFleet result
//     (N independently seeded campaigns) becomes a Trend: per-week
//     mean ± spread confidence bands, rendered identically by the CLI
//     (g5ktest -reliability) and the gateway (GET /reliability/trend)
//     through the one shared renderer, and stored versioned in a
//     TrendStore so the gateway can ETag it.
//
// Everything here is deterministic: inputs are read under the caller's
// gates in caller-given (shard) order, and every emitted collection is
// explicitly sorted — never map iteration order.
package intel
