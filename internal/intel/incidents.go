package intel

// Cross-site incident rollup: signature-keyed correlation over every
// site's bug tracker. See the package comment for where this sits.

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/bugs"
	"repro/internal/simclock"
)

// SiteTracker couples one site's bug tracker with the read gate that
// guards it against campaign progress (nil Gate = no gating).
type SiteTracker struct {
	Site string
	Bugs *bugs.Tracker
	Gate func(func())
}

func (s *SiteTracker) gated(fn func()) {
	if s.Gate != nil {
		s.Gate(fn)
		return
	}
	fn()
}

// Incident is one root cause seen across the grid: every ticket sharing a
// signature, wherever it was filed, folded into a single lifecycle view.
type Incident struct {
	Signature   string
	Title       string
	Family      string
	Sites       []string // affected sites, sorted
	Tickets     int      // tickets across all sites
	OpenTickets int      // of those, still open (at the query instant)
	Occurrences int      // summed occurrence counters
	Reopens     int      // summed reopen counters
	FirstSeen   simclock.Time
	LastSeen    simclock.Time // latest filing or fix among the tickets
	Open        bool          // any ticket open (at the query instant)
}

// CorrelateOptions scope a correlation pass.
type CorrelateOptions struct {
	// At, when ≥ 0, asks for the incident view as of that sim-time:
	// tickets filed later are invisible, and only incidents with a ticket
	// open at that instant are returned. Use -1 (or AtNow) for the live
	// view. The reconstruction is as faithful as the tracker's record: a
	// ticket reopened after At reads as open (trackers keep current state
	// plus first-fix times, not full transition histories).
	At simclock.Time
	// IncludeClosed keeps incidents whose every ticket is resolved (the
	// live view's ?state=all). Ignored when At ≥ 0 — a time-scoped query
	// asks precisely for what was open then.
	IncludeClosed bool
}

// AtNow marks an unscoped (live) correlation.
const AtNow = simclock.Time(-1)

// TrackerSnapshot is one site's single-pass gated read: the tracker's
// mutation version plus the ticket list that version pins. Reading both
// under one gate acquisition is what keeps a version-keyed ETag honest —
// the key and the body cannot straddle a campaign step.
type TrackerSnapshot struct {
	Site    string
	Version int64
	List    []*bugs.Bug
}

// SnapshotTrackers reads every tracker once, each under its own gate, in
// caller (shard) order.
func SnapshotTrackers(sources []SiteTracker) []TrackerSnapshot {
	out := make([]TrackerSnapshot, len(sources))
	for i := range sources {
		src := &sources[i]
		out[i].Site = src.Site
		src.gated(func() {
			out[i].Version = src.Bugs.Version()
			out[i].List = src.Bugs.All()
		})
	}
	return out
}

// VersionKey64 renders the snapshots' version vector as an ETag payload,
// e.g. "12.0.7" — equal vectors guarantee byte-identical correlations.
func VersionKey64(snaps []TrackerSnapshot) string {
	var sb strings.Builder
	for i := range snaps {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatInt(snaps[i].Version, 10))
	}
	return sb.String()
}

// Correlate folds every tracker's tickets into signature-keyed incidents,
// each tracker read under its own gate in caller (shard) order. Output is
// sorted first-seen ascending, signature as the tie-break — deterministic
// regardless of how many sites filed or in what interleaving.
func Correlate(sources []SiteTracker, opts CorrelateOptions) []Incident {
	return CorrelateSnapshots(SnapshotTrackers(sources), opts)
}

// CorrelateSnapshots is Correlate over pre-read tracker snapshots (the
// gateway path: the same snapshots also key the ETag).
func CorrelateSnapshots(snaps []TrackerSnapshot, opts CorrelateOptions) []Incident {
	timeScoped := opts.At >= 0
	acc := map[string]*Incident{}
	for i := range snaps {
		src := &snaps[i]
		for _, b := range src.List {
			if timeScoped && b.FiledAt > opts.At {
				continue
			}
			open := b.State == bugs.Open
			last := b.FiledAt
			if timeScoped {
				// Reconstruct the ticket's state as of At: a fix later than
				// At had not happened yet.
				if b.State == bugs.Fixed && b.FixedAt > opts.At {
					open = true
				}
				if !open && b.FixedAt > last {
					last = b.FixedAt
				}
			} else if b.State == bugs.Fixed && b.FixedAt > last {
				last = b.FixedAt
			}
			e := acc[b.Signature]
			if e == nil {
				e = &Incident{
					Signature: b.Signature,
					Title:     b.Title,
					Family:    b.Family,
					FirstSeen: b.FiledAt,
					LastSeen:  last,
				}
				acc[b.Signature] = e
			}
			if b.FiledAt < e.FirstSeen {
				e.FirstSeen = b.FiledAt
			}
			if last > e.LastSeen {
				e.LastSeen = last
			}
			e.Sites = appendSite(e.Sites, src.Site)
			e.Tickets++
			e.Occurrences += b.Occurrences
			e.Reopens += b.Reopens
			if open {
				e.OpenTickets++
				e.Open = true
			}
		}
	}
	out := make([]Incident, 0, len(acc))
	for _, e := range acc {
		if !e.Open && timeScoped {
			continue // "open as of At" is the whole question
		}
		if !e.Open && !opts.IncludeClosed {
			continue
		}
		sort.Strings(e.Sites)
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstSeen != out[j].FirstSeen {
			return out[i].FirstSeen < out[j].FirstSeen
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// appendSite adds site to the set (small slices; linear scan beats a map).
func appendSite(sites []string, site string) []string {
	for _, s := range sites {
		if s == site {
			return sites
		}
	}
	return append(sites, site)
}
