package intel

// Fleet reliability sweeps: the cross-seed confidence-band view of the
// grid's reliability trend. See the package comment for where this sits.

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
)

// Band is one statistic's mean ± spread across the sweep's seeds. Units
// follow the field it describes (percent for rates, counts for bugs).
type Band struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

func bandOf(a core.Aggregate, scale float64) Band {
	return Band{
		Mean: scale * a.Mean,
		Std:  scale * a.Std,
		Min:  scale * a.Min,
		Max:  scale * a.Max,
		N:    a.N,
	}
}

// TrendPoint is one week's confidence band: the success rate across every
// seed that reported the week, in percent.
type TrendPoint struct {
	Week int  `json:"week"` // 1-based, the human-facing numbering
	Rate Band `json:"rate_pct"`
}

// Trend is the grid reliability view of one fleet sweep. Every field is
// wire-shaped (JSON tags, plain floats): the gateway serves it verbatim
// and a client can decode it back into an identical Trend — which is how
// the CLI/API render-equality test proves the two reports match.
type Trend struct {
	Seeds    int   `json:"seeds"`
	BaseSeed int64 `json:"base_seed"`
	Weeks    int   `json:"weeks"`

	Points []TrendPoint `json:"points"`

	// FirstWeek / FinalWeeks are the E9 trend endpoints in percent; the
	// Bugs bands are tracker counters in plain counts.
	FirstWeek  Band `json:"first_week_pct"`
	FinalWeeks Band `json:"final_weeks_pct"`
	BugsFiled  Band `json:"bugs_filed"`
	BugsFixed  Band `json:"bugs_fixed"`
	BugsOpen   Band `json:"bugs_open"`
}

// TrendFromFleet folds a fleet sweep into the reliability trend.
// Deterministic: core.RunFleet aggregates in seed order regardless of
// scheduling, so equal (seeds, weeks, config) inputs yield equal Trends.
func TrendFromFleet(res *core.FleetResult, baseSeed int64, weeks int) *Trend {
	t := &Trend{
		Seeds:      len(res.Campaigns),
		BaseSeed:   baseSeed,
		Weeks:      weeks,
		Points:     make([]TrendPoint, 0, len(res.Weekly)),
		FirstWeek:  bandOf(res.FirstWeek, 100),
		FinalWeeks: bandOf(res.FinalWeeks, 100),
		BugsFiled:  bandOf(res.BugsFiled, 1),
		BugsFixed:  bandOf(res.BugsFixed, 1),
		BugsOpen:   bandOf(res.BugsOpen, 1),
	}
	for _, w := range res.Weekly {
		t.Points = append(t.Points, TrendPoint{Week: w.Week + 1, Rate: bandOf(w.Rate, 100)})
	}
	return t
}

// RenderText writes the human-facing report. This is the ONE renderer:
// g5ktest -reliability prints it from a locally computed Trend, and a
// gateway client prints it from the decoded /reliability/trend body — the
// render-equality test holds both outputs byte-for-byte equal.
func (t *Trend) RenderText(w io.Writer) {
	fmt.Fprintf(w, "grid reliability: %d seeds (base %d), %d weeks\n",
		t.Seeds, t.BaseSeed, t.Weeks)
	fmt.Fprintln(w, "weekly success rate across seeds (mean ± std):")
	for _, p := range t.Points {
		fmt.Fprintf(w, "  week %2d: %5.1f%% ± %4.1f  (min %5.1f%%, max %5.1f%%, %d seeds)\n",
			p.Week, p.Rate.Mean, p.Rate.Std, p.Rate.Min, p.Rate.Max, p.Rate.N)
	}
	fmt.Fprintln(w, "aggregates:")
	fmt.Fprintf(w, "  first week ok  %s\n", pctBand(t.FirstWeek))
	fmt.Fprintf(w, "  final weeks ok %s\n", pctBand(t.FinalWeeks))
	fmt.Fprintf(w, "  bugs filed     %s\n", countBand(t.BugsFiled))
	fmt.Fprintf(w, "  bugs fixed     %s\n", countBand(t.BugsFixed))
	fmt.Fprintf(w, "  bugs open      %s\n", countBand(t.BugsOpen))
}

func pctBand(b Band) string {
	return fmt.Sprintf("%.1f%% ± %.1f (min %.1f%%, max %.1f%%, n=%d)",
		b.Mean, b.Std, b.Min, b.Max, b.N)
}

func countBand(b Band) string {
	return fmt.Sprintf("%.2f ± %.2f (min %.2f, max %.2f, n=%d)",
		b.Mean, b.Std, b.Min, b.Max, b.N)
}

// TrendStore holds the computed trend, versioned: a sweep is expensive
// (N whole campaigns), so it runs once, is Put here, and every gateway
// read serves the stored result under a version-keyed strong ETag.
type TrendStore struct {
	mu      sync.RWMutex
	version int
	trend   *Trend
}

// Put installs a freshly computed trend and returns its version number.
func (s *TrendStore) Put(t *Trend) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.trend = t
	return s.version
}

// Latest returns the stored trend and its version (nil, 0 before any Put).
func (s *TrendStore) Latest() (*Trend, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.trend, s.version
}
