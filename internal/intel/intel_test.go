package intel

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// twoSiteArchive builds an archive over two independent stores: site a
// captured at 10h with a one-node update at 20h, site b captured at 15h.
func twoSiteArchive(t *testing.T) (*GridArchive, *testbed.Testbed) {
	t.Helper()
	tbA := testbed.Default()
	stA := refapi.NewStore(tbA, 10*simclock.Hour)
	n := tbA.Node("sol-1.sophia")
	inv := n.Inv.Clone()
	inv.RAMGB = 8
	if err := stA.Update(20*simclock.Hour, n.Name, inv); err != nil {
		t.Fatal(err)
	}
	tbB := testbed.Default()
	stB := refapi.NewStore(tbB, 15*simclock.Hour)
	return NewGridArchive([]SiteArchive{
		{Site: "a", Ref: stA},
		{Site: "b", Ref: stB},
	}), tbB
}

func TestVersionVector(t *testing.T) {
	arch, _ := twoSiteArchive(t)

	vec := arch.VersionVector(5*simclock.Hour, nil)
	want := []SiteVersion{{Site: "a"}, {Site: "b"}}
	if !reflect.DeepEqual(vec, want) {
		t.Fatalf("vector before any capture = %v, want %v", vec, want)
	}
	if k := VersionKey(vec); k != "0.0" {
		t.Fatalf("key = %q, want 0.0", k)
	}

	vec = arch.VersionVector(12*simclock.Hour, nil)
	want = []SiteVersion{{Site: "a", Version: 1}, {Site: "b"}}
	if !reflect.DeepEqual(vec, want) {
		t.Fatalf("vector at 12h = %v, want %v", vec, want)
	}

	vec = arch.VersionVector(25*simclock.Hour, nil)
	want = []SiteVersion{{Site: "a", Version: 2}, {Site: "b", Version: 1}}
	if !reflect.DeepEqual(vec, want) {
		t.Fatalf("vector at 25h = %v, want %v", vec, want)
	}
	if k := VersionKey(vec); k != "2.1" {
		t.Fatalf("key = %q, want 2.1", k)
	}

	// The degraded set drops a site from the vector (and so from the key:
	// a body rendered while b was down must never match a whole-grid ETag).
	vec = arch.VersionVector(25*simclock.Hour, map[string]bool{"b": true})
	want = []SiteVersion{{Site: "a", Version: 2}}
	if !reflect.DeepEqual(vec, want) {
		t.Fatalf("vector excluding b = %v, want %v", vec, want)
	}
}

func TestGridAt(t *testing.T) {
	arch, _ := twoSiteArchive(t)

	if snap := arch.At(5*simclock.Hour, nil); len(snap.Sites) != 0 {
		t.Fatalf("At before any capture carries %d sites, want 0", len(snap.Sites))
	}

	snap := arch.At(12*simclock.Hour, nil)
	if len(snap.Sites) != 1 || snap.Sites[0].Site != "a" || snap.Sites[0].Version != 1 {
		t.Fatalf("At(12h) sites = %+v, want a@1 only", snap.Sites)
	}
	if snap.AsOf != 10*simclock.Hour {
		t.Fatalf("AsOf = %v, want 10h", snap.AsOf)
	}

	snap = arch.At(25*simclock.Hour, nil)
	if len(snap.Sites) != 2 || snap.Sites[0].Version != 2 || snap.Sites[1].Version != 1 {
		t.Fatalf("At(25h) sites = %+v, want a@2, b@1", snap.Sites)
	}
	if snap.AsOf != 20*simclock.Hour {
		t.Fatalf("AsOf = %v, want 20h (a's update)", snap.AsOf)
	}
	if snap.Sites[0].Snapshot.Nodes["sol-1.sophia"].Inv.RAMGB != 8 {
		t.Fatal("At(25h) does not reflect a's update")
	}
}

func TestMaterializePinsVector(t *testing.T) {
	arch, _ := twoSiteArchive(t)

	// A pinned render must equal the time-based render for the same vector…
	vec := arch.VersionVector(25*simclock.Hour, nil)
	if !reflect.DeepEqual(arch.Materialize(vec), arch.At(25*simclock.Hour, nil)) {
		t.Fatal("Materialize(vector at 25h) != At(25h)")
	}

	// …and stay pinned to old versions even after that vector goes stale,
	// which is exactly what keeps a gateway body honest to its ETag.
	old := arch.Materialize(vec)
	if old.Sites[0].Snapshot.Nodes["sol-1.sophia"].Inv.RAMGB != 8 {
		t.Fatal("pinned render does not reflect a@2")
	}
	stale := arch.Materialize([]SiteVersion{{Site: "a", Version: 1}, {Site: "b", Version: 1}})
	if stale.Sites[0].Version != 1 || stale.AsOf != 15*simclock.Hour {
		t.Fatalf("stale vector render = a@%d AsOf %v, want a@1 AsOf 15h",
			stale.Sites[0].Version, stale.AsOf)
	}

	// Version-0 entries and unknown sites drop out instead of panicking.
	empty := arch.Materialize([]SiteVersion{{Site: "a"}, {Site: "nowhere", Version: 3}})
	if len(empty.Sites) != 0 {
		t.Fatalf("degenerate vector carries %d sites, want 0", len(empty.Sites))
	}

	// The pinned diff equals the time-based diff for the same two vectors,
	// presence rows (version 0 at from) included.
	vFrom := arch.VersionVector(12*simclock.Hour, nil)
	if !reflect.DeepEqual(arch.DiffVector(vFrom, vec), arch.Diff(12*simclock.Hour, 25*simclock.Hour, nil)) {
		t.Fatal("DiffVector(vectors at 12h, 25h) != Diff(12h, 25h)")
	}
}

func TestGridAtRunsUnderGates(t *testing.T) {
	tb := testbed.Default()
	st := refapi.NewStore(tb, simclock.Hour)
	gated := 0
	arch := NewGridArchive([]SiteArchive{{
		Site: "a",
		Ref:  st,
		Gate: func(fn func()) { gated++; fn() },
	}})
	arch.VersionVector(2*simclock.Hour, nil)
	arch.At(2*simclock.Hour, nil)
	arch.Diff(simclock.Hour, 2*simclock.Hour, nil)
	if gated != 3 {
		t.Fatalf("gate ran %d times, want 3 (every store access gated)", gated)
	}
}

func TestGridDiff(t *testing.T) {
	arch, tbB := twoSiteArchive(t)

	d := arch.Diff(12*simclock.Hour, 25*simclock.Hour, nil)
	if len(d.Sites) != 2 {
		t.Fatalf("diff sites = %d, want 2", len(d.Sites))
	}
	a := d.Sites[0]
	if a.Site != "a" || a.FromVersion != 1 || a.ToVersion != 2 {
		t.Fatalf("site a diff header = %+v", a)
	}
	if len(a.Differences) != 1 || a.Differences[0].Field != "ram_gb" {
		t.Fatalf("site a differences = %v, want the one RAM drift", a.Differences)
	}
	// Site b had no capture at 12h: everything reads as newly present.
	b := d.Sites[1]
	if b.Site != "b" || b.FromVersion != 0 || b.ToVersion != 1 {
		t.Fatalf("site b diff header = %+v", b)
	}
	if len(b.Differences) != len(tbB.Nodes()) {
		t.Fatalf("site b differences = %d, want one presence row per node (%d)",
			len(b.Differences), len(tbB.Nodes()))
	}
	if d.Count != len(a.Differences)+len(b.Differences) {
		t.Fatalf("Count = %d, want %d", d.Count, len(a.Differences)+len(b.Differences))
	}

	// Same instant twice: zero drift, present sites still listed.
	d = arch.Diff(25*simclock.Hour, 25*simclock.Hour, nil)
	if d.Count != 0 || len(d.Sites) != 2 {
		t.Fatalf("self diff = %+v, want 0 differences across 2 sites", d)
	}
}

// trackerAt builds a tracker whose clock sits at the given time.
func trackerAt(seed int64, at simclock.Time) (*bugs.Tracker, *simclock.Clock) {
	c := simclock.New(seed)
	if at > 0 {
		c.RunUntil(at)
	}
	return bugs.NewTracker(c), c
}

func TestCorrelateFoldsAcrossSites(t *testing.T) {
	trA, _ := trackerAt(1, simclock.Hour)
	trB, _ := trackerAt(2, 2*simclock.Hour)
	trA.File("grid/outage", "outage", "grid", "lyon")
	trB.File("grid/outage", "outage", "grid", "lyon")
	trB.File("disk/smart", "disk", "hw", "nancy")

	sources := []SiteTracker{
		{Site: "b-site", Bugs: trB},
		{Site: "a-site", Bugs: trA},
	}
	inc := Correlate(sources, CorrelateOptions{At: AtNow})
	if len(inc) != 2 {
		t.Fatalf("incidents = %d, want 2", len(inc))
	}
	// Sorted by first-seen: the outage (1h at site a) precedes the disk (2h).
	out := inc[0]
	if out.Signature != "grid/outage" {
		t.Fatalf("first incident = %q, want grid/outage", out.Signature)
	}
	if out.Tickets != 2 || out.OpenTickets != 2 || !out.Open {
		t.Fatalf("outage incident = %+v, want 2 open tickets", out)
	}
	if !reflect.DeepEqual(out.Sites, []string{"a-site", "b-site"}) {
		t.Fatalf("outage sites = %v, want sorted [a-site b-site]", out.Sites)
	}
	if out.FirstSeen != simclock.Hour || out.LastSeen != 2*simclock.Hour {
		t.Fatalf("outage first/last = %v/%v, want 1h/2h", out.FirstSeen, out.LastSeen)
	}
	if inc[1].Signature != "disk/smart" || inc[1].Tickets != 1 {
		t.Fatalf("second incident = %+v", inc[1])
	}
}

func TestCorrelateLifecycle(t *testing.T) {
	trA, cA := trackerAt(3, simclock.Hour)
	b, _ := trA.File("x/y", "x", "f", "t")
	cA.RunUntil(4 * simclock.Hour)
	if err := trA.Fix(b.ID); err != nil {
		t.Fatal(err)
	}
	sources := []SiteTracker{{Site: "a", Bugs: trA}}

	if inc := Correlate(sources, CorrelateOptions{At: AtNow}); len(inc) != 0 {
		t.Fatalf("open-only view shows %d incidents, want 0 (all fixed)", len(inc))
	}
	inc := Correlate(sources, CorrelateOptions{At: AtNow, IncludeClosed: true})
	if len(inc) != 1 || inc[0].Open || inc[0].OpenTickets != 0 {
		t.Fatalf("all view = %+v, want one closed incident", inc)
	}
	if inc[0].LastSeen != 4*simclock.Hour {
		t.Fatalf("closed LastSeen = %v, want the fix time 4h", inc[0].LastSeen)
	}
}

func TestCorrelateTimeScoped(t *testing.T) {
	trA, cA := trackerAt(4, simclock.Hour)
	b, _ := trA.File("x/y", "x", "f", "t")
	cA.RunUntil(4 * simclock.Hour)
	if err := trA.Fix(b.ID); err != nil {
		t.Fatal(err)
	}
	trB, _ := trackerAt(5, 2*simclock.Hour)
	trB.File("x/y", "x", "f", "t")
	sources := []SiteTracker{{Site: "a", Bugs: trA}, {Site: "b", Bugs: trB}}

	// Before anything was filed: no incidents existed.
	if inc := Correlate(sources, CorrelateOptions{At: 30 * simclock.Minute}); len(inc) != 0 {
		t.Fatalf("at 30m: %d incidents, want 0", len(inc))
	}
	// Between a's filing and b's: one ticket, open (a's fix came later).
	inc := Correlate(sources, CorrelateOptions{At: 90 * simclock.Minute})
	if len(inc) != 1 || inc[0].Tickets != 1 || !inc[0].Open {
		t.Fatalf("at 90m = %+v, want one open single-ticket incident", inc)
	}
	if !reflect.DeepEqual(inc[0].Sites, []string{"a"}) {
		t.Fatalf("at 90m sites = %v, want [a]", inc[0].Sites)
	}
	// After both filings, before a's fix: two open tickets.
	inc = Correlate(sources, CorrelateOptions{At: 3 * simclock.Hour})
	if len(inc) != 1 || inc[0].Tickets != 2 || inc[0].OpenTickets != 2 {
		t.Fatalf("at 3h = %+v, want two open tickets", inc)
	}
	// After a's fix: b's ticket keeps the incident open.
	inc = Correlate(sources, CorrelateOptions{At: 5 * simclock.Hour})
	if len(inc) != 1 || inc[0].OpenTickets != 1 {
		t.Fatalf("at 5h = %+v, want one remaining open ticket", inc)
	}
}

func TestSnapshotTrackers(t *testing.T) {
	trA, _ := trackerAt(6, simclock.Hour)
	trB, _ := trackerAt(7, simclock.Hour)
	trA.File("s", "t", "f", "x")
	trA.File("s", "t", "f", "x")
	sources := []SiteTracker{{Site: "a", Bugs: trA}, {Site: "b", Bugs: trB}}
	snaps := SnapshotTrackers(sources)
	if len(snaps) != 2 || snaps[0].Version != 2 || snaps[1].Version != 0 {
		t.Fatalf("snapshots = %+v, want versions [2 0]", snaps)
	}
	if len(snaps[0].List) != 1 || len(snaps[1].List) != 0 {
		t.Fatalf("snapshot lists = %d/%d tickets, want 1/0", len(snaps[0].List), len(snaps[1].List))
	}
	if k := VersionKey64(snaps); k != "2.0" {
		t.Fatalf("version key = %q, want 2.0", k)
	}
	// Correlating the snapshots equals correlating the live sources.
	a := Correlate(sources, CorrelateOptions{At: AtNow})
	b := CorrelateSnapshots(snaps, CorrelateOptions{At: AtNow})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot correlation diverges: %+v vs %+v", a, b)
	}
}

// fixtureFleet is a hand-built sweep result (every field of FleetResult is
// wire-visible, so no campaign needs to run to test the fold).
func fixtureFleet() *core.FleetResult {
	return &core.FleetResult{
		Campaigns: make([]core.FleetCampaign, 3),
		Weekly: []core.WeeklyAggregate{
			{Week: 0, Rate: core.Aggregate{Mean: 0.85, Std: 0.02, Min: 0.83, Max: 0.87, N: 3}},
			{Week: 1, Rate: core.Aggregate{Mean: 0.90, Std: 0.01, Min: 0.89, Max: 0.91, N: 3}},
		},
		FirstWeek:  core.Aggregate{Mean: 0.85, Std: 0.02, Min: 0.83, Max: 0.87, N: 3},
		FinalWeeks: core.Aggregate{Mean: 0.90, Std: 0.01, Min: 0.89, Max: 0.91, N: 3},
		BugsFiled:  core.Aggregate{Mean: 12, Std: 1, Min: 11, Max: 13, N: 3},
		BugsFixed:  core.Aggregate{Mean: 8, Std: 1, Min: 7, Max: 9, N: 3},
		BugsOpen:   core.Aggregate{Mean: 4, Std: 0.5, Min: 3, Max: 5, N: 3},
	}
}

func TestTrendFromFleet(t *testing.T) {
	trend := TrendFromFleet(fixtureFleet(), 42, 2)
	if trend.Seeds != 3 || trend.BaseSeed != 42 || trend.Weeks != 2 {
		t.Fatalf("trend header = %+v", trend)
	}
	if len(trend.Points) != 2 || trend.Points[0].Week != 1 {
		t.Fatalf("points = %+v, want 2 points, 1-based weeks", trend.Points)
	}
	if trend.Points[0].Rate.Mean != 85 || trend.Points[1].Rate.Max != 91 {
		t.Fatalf("rates not converted to percent: %+v", trend.Points)
	}
	if trend.BugsFiled.Mean != 12 {
		t.Fatalf("bug bands must stay in counts: %+v", trend.BugsFiled)
	}
}

// TestTrendRenderRoundTrip is the CLI ≡ API proof at the package level:
// rendering a Trend decoded from its own JSON (what a gateway client
// holds) is byte-identical to rendering the original (what the CLI holds).
func TestTrendRenderRoundTrip(t *testing.T) {
	trend := TrendFromFleet(fixtureFleet(), 42, 2)
	body, err := json.Marshal(trend)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Trend
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	var direct, viaWire bytes.Buffer
	trend.RenderText(&direct)
	decoded.RenderText(&viaWire)
	if direct.String() != viaWire.String() {
		t.Fatalf("renders diverge:\ndirect:\n%s\nvia wire:\n%s", direct.String(), viaWire.String())
	}
	if direct.Len() == 0 {
		t.Fatal("renderer produced nothing")
	}
}

func TestTrendStore(t *testing.T) {
	var store TrendStore
	if tr, v := store.Latest(); tr != nil || v != 0 {
		t.Fatalf("empty store = %v, %d", tr, v)
	}
	trend := TrendFromFleet(fixtureFleet(), 42, 2)
	if v := store.Put(trend); v != 1 {
		t.Fatalf("first Put version = %d, want 1", v)
	}
	if tr, v := store.Latest(); tr != trend || v != 1 {
		t.Fatalf("Latest = %v, %d", tr, v)
	}
	if v := store.Put(trend); v != 2 {
		t.Fatalf("second Put version = %d, want 2", v)
	}
}
