package intel

// Federated time travel: the grid-wide view of every site's archived
// Reference API chain. See the package comment for where this sits.

import (
	"strconv"
	"strings"

	"repro/internal/refapi"
	"repro/internal/simclock"
)

// SiteArchive couples one store's Reference API archive with the read
// gate that guards it against campaign progress. Site labels who owns the
// store; Cluster narrows the label when a site is split into per-cluster
// micro-shards (empty for one-store-per-site layouts — the two never mix
// within one archive). Gate runs fn under the owning shard's read lock;
// nil means the store needs no gating (tests, standalone use).
type SiteArchive struct {
	Site    string
	Cluster string
	Ref     *refapi.Store
	Gate    func(func())
}

// key is the archive's identity: site alone for one-store-per-site
// layouts, site/cluster once micro-sharded.
func (s *SiteArchive) key() string { return archiveKey(s.Site, s.Cluster) }

func archiveKey(site, cluster string) string {
	if cluster == "" {
		return site
	}
	return site + "/" + cluster
}

func (s *SiteArchive) gated(fn func()) {
	if s.Gate != nil {
		s.Gate(fn)
		return
	}
	fn()
}

// GridArchive answers archival questions over every store at once.
// Entries keep caller order (shard order: site-grouped, cluster order
// within a site), so all outputs are deterministic for a given federation
// layout.
type GridArchive struct {
	sites []SiteArchive
	byKey map[string]*SiteArchive
}

// NewGridArchive builds an archive over the given stores (order is
// preserved and becomes the output order everywhere).
func NewGridArchive(sites []SiteArchive) *GridArchive {
	a := &GridArchive{
		sites: append([]SiteArchive(nil), sites...),
		byKey: make(map[string]*SiteArchive, len(sites)),
	}
	for i := range a.sites {
		a.byKey[a.sites[i].key()] = &a.sites[i]
	}
	return a
}

// Len returns how many archived stores the grid covers (one per site, or
// one per micro-shard once cluster-carved).
func (a *GridArchive) Len() int { return len(a.sites) }

// SiteVersion is one store's archived version number at a query time.
// Cluster carries the micro-shard label when the site is cluster-carved.
type SiteVersion struct {
	Site    string
	Cluster string
	Version int // 0 = the query time precedes the store's first capture
}

// VersionVector answers "which version was current at t at every site"
// without materializing a single snapshot: one binary search per site,
// each under that site's gate. Sites in exclude (the degraded set) are
// skipped entirely. This is the gateway's conditional-request fast path.
func (a *GridArchive) VersionVector(t simclock.Time, exclude map[string]bool) []SiteVersion {
	out := make([]SiteVersion, 0, len(a.sites))
	for i := range a.sites {
		s := &a.sites[i]
		if exclude[s.Site] {
			continue
		}
		sv := SiteVersion{Site: s.Site, Cluster: s.Cluster}
		s.gated(func() {
			if v, ok := s.Ref.VersionAt(t); ok {
				sv.Version = v
			}
		})
		out = append(out, sv)
	}
	return out
}

// VersionKey renders a vector as the composite ETag payload, e.g.
// "3.1.7" — strong because every site's archived content is immutable and
// pinned by its version number.
func VersionKey(vec []SiteVersion) string {
	var sb strings.Builder
	for i, sv := range vec {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.Itoa(sv.Version))
	}
	return sb.String()
}

// SiteCapture is one store's slice of a grid snapshot.
type SiteCapture struct {
	Site     string
	Cluster  string
	Version  int
	TakenAt  simclock.Time
	Snapshot *refapi.Snapshot
}

// GridSnapshot is the federation-wide answer to "inventory as of T":
// every included site's snapshot current at that instant, in site order.
// Sites whose first capture postdates T are omitted (they did not exist
// yet, archivally speaking); AsOf is the latest capture time among the
// included sites — the instant the grid view actually reflects.
type GridSnapshot struct {
	AsOf  simclock.Time
	Sites []SiteCapture
}

// At materializes the grid snapshot current at t. Each site's snapshot is
// built (and cached) by its own store under its own gate; repeated calls
// for the same t re-materialize nothing (refapi.Store.Materializations
// proves it).
func (a *GridArchive) At(t simclock.Time, exclude map[string]bool) GridSnapshot {
	var out GridSnapshot
	for i := range a.sites {
		s := &a.sites[i]
		if exclude[s.Site] {
			continue
		}
		var snap *refapi.Snapshot
		s.gated(func() { snap = s.Ref.At(t) })
		if snap == nil {
			continue
		}
		if snap.TakenAt > out.AsOf {
			out.AsOf = snap.TakenAt
		}
		out.Sites = append(out.Sites, SiteCapture{
			Site:     s.Site,
			Version:  snap.Version,
			TakenAt:  snap.TakenAt,
			Snapshot: snap,
		})
	}
	return out
}

// Materialize builds the grid snapshot for an exact version vector
// (VersionVector's output). This is the gateway's body path: the rendered
// body is pinned to the same versions the composite ETag names, immune to
// shards archiving new versions between the vector read and the render.
// Vector entries with version 0 (or naming unknown sites) are omitted.
func (a *GridArchive) Materialize(vec []SiteVersion) GridSnapshot {
	var out GridSnapshot
	for _, sv := range vec {
		s := a.byKey[archiveKey(sv.Site, sv.Cluster)]
		if s == nil || sv.Version < 1 {
			continue
		}
		var snap *refapi.Snapshot
		s.gated(func() { snap = s.Ref.Version(sv.Version) })
		if snap == nil {
			continue
		}
		if snap.TakenAt > out.AsOf {
			out.AsOf = snap.TakenAt
		}
		out.Sites = append(out.Sites, SiteCapture{
			Site:     sv.Site,
			Cluster:  sv.Cluster,
			Version:  snap.Version,
			TakenAt:  snap.TakenAt,
			Snapshot: snap,
		})
	}
	return out
}

// SiteDiff is one store's contribution to a grid-level historical diff.
type SiteDiff struct {
	Site        string
	Cluster     string
	FromVersion int // 0 = the store had no capture at from yet
	ToVersion   int
	Differences []refapi.Difference
}

// GridDiff answers "what changed anywhere between from and to": one
// per-site field-level diff per included site, in site order. Count sums
// the differences.
type GridDiff struct {
	Count int
	Sites []SiteDiff
}

// emptySnapshot is the diff base for a site that had no capture at the
// earlier instant: everything present later reads as "missing → present".
var emptySnapshot = &refapi.Snapshot{}

// Diff computes the grid-level historical diff between two instants.
// Sites with no capture at either instant are omitted; a site that only
// exists at the later instant diffs against the empty snapshot.
func (a *GridArchive) Diff(from, to simclock.Time, exclude map[string]bool) GridDiff {
	var out GridDiff
	for i := range a.sites {
		s := &a.sites[i]
		if exclude[s.Site] {
			continue
		}
		var sa, sb *refapi.Snapshot
		s.gated(func() { sa, sb = s.Ref.At(from), s.Ref.At(to) })
		if sa == nil && sb == nil {
			continue
		}
		sd := SiteDiff{Site: s.Site, Cluster: s.Cluster}
		if sa == nil {
			sa = emptySnapshot
		} else {
			sd.FromVersion = sa.Version
		}
		if sb == nil {
			sb = emptySnapshot
		} else {
			sd.ToVersion = sb.Version
		}
		if sa != sb {
			sd.Differences = refapi.DiffSnapshots(sa, sb)
		}
		if sd.Differences == nil {
			sd.Differences = []refapi.Difference{}
		}
		out.Count += len(sd.Differences)
		out.Sites = append(out.Sites, sd)
	}
	return out
}

// DiffVector is Diff pinned to two exact version vectors (VersionVector's
// outputs for the two instants) — the gateway's body path, for the same
// reason Materialize exists. Site order follows the to vector; version-0
// entries diff against the empty snapshot; sites absent from both (or
// unknown) are skipped.
func (a *GridArchive) DiffVector(from, to []SiteVersion) GridDiff {
	fromOf := make(map[string]int, len(from))
	for _, sv := range from {
		fromOf[archiveKey(sv.Site, sv.Cluster)] = sv.Version
	}
	var out GridDiff
	for _, sv := range to {
		k := archiveKey(sv.Site, sv.Cluster)
		s := a.byKey[k]
		if s == nil || (fromOf[k] == 0 && sv.Version == 0) {
			continue
		}
		sd := SiteDiff{Site: sv.Site, Cluster: sv.Cluster, FromVersion: fromOf[k], ToVersion: sv.Version}
		var sa, sb *refapi.Snapshot
		s.gated(func() {
			if sd.FromVersion > 0 {
				sa = s.Ref.Version(sd.FromVersion)
			}
			if sd.ToVersion > 0 {
				sb = s.Ref.Version(sd.ToVersion)
			}
		})
		if sa == nil {
			sa = emptySnapshot
			sd.FromVersion = 0
		}
		if sb == nil {
			sb = emptySnapshot
			sd.ToVersion = 0
		}
		if sa != sb {
			sd.Differences = refapi.DiffSnapshots(sa, sb)
		}
		if sd.Differences == nil {
			sd.Differences = []refapi.Difference{}
		}
		out.Count += len(sd.Differences)
		out.Sites = append(out.Sites, sd)
	}
	return out
}
