package faults

import (
	"fmt"

	"repro/internal/simclock"
)

// InjectNode injects a node-scoped fault of the given kind on the named
// node. It returns an error if the node is unknown, the kind is
// site-scoped, or an identical fault is already active on the node
// (injecting the same problem twice is meaningless).
func (in *Injector) InjectNode(kind Kind, nodeName string) (*Fault, error) {
	n := in.tb.Node(nodeName)
	if n == nil {
		return nil, fmt.Errorf("faults: unknown node %q", nodeName)
	}
	if kind == ServiceFlaky {
		return nil, fmt.Errorf("faults: %s is site-scoped, use InjectService", kind)
	}
	if kind == CablingSwap {
		return nil, fmt.Errorf("faults: %s needs two nodes, use InjectCablingSwap", kind)
	}
	if in.HasFault(nodeName, kind) {
		return nil, fmt.Errorf("faults: %s already active on %s", kind, nodeName)
	}

	f := &Fault{Kind: kind, Node: nodeName}
	switch kind {
	case DiskFirmwareDrift:
		if len(n.Inv.Disks) == 0 {
			return nil, fmt.Errorf("faults: %s has no disks", nodeName)
		}
		old := n.Inv.Disks[0].Firmware
		n.Inv.Disks[0].Firmware = old + "-alt"
		f.undo = func() { n.Inv.Disks[0].Firmware = old }
	case DiskCacheOff:
		if len(n.Inv.Disks) == 0 {
			return nil, fmt.Errorf("faults: %s has no disks", nodeName)
		}
		old := n.Inv.Disks[0].WriteCache
		if !old {
			return nil, fmt.Errorf("faults: write cache already off on %s", nodeName)
		}
		n.Inv.Disks[0].WriteCache = false
		f.undo = func() { n.Inv.Disks[0].WriteCache = true }
	case DiskDying:
		if len(n.Inv.Disks) == 0 {
			return nil, fmt.Errorf("faults: %s has no disks", nodeName)
		}
		// Purely behavioural: the description still matches, only measured
		// performance collapses (the disk test family exists for this).
		f.undo = func() {}
	case CStatesOn:
		old := n.Inv.BIOS.CStates
		n.Inv.BIOS.CStates = true
		f.undo = func() { n.Inv.BIOS.CStates = old }
	case HyperThreadFlip:
		n.Inv.BIOS.HyperThreading = !n.Inv.BIOS.HyperThreading
		f.undo = func() { n.Inv.BIOS.HyperThreading = !n.Inv.BIOS.HyperThreading }
	case TurboFlip:
		n.Inv.BIOS.TurboBoost = !n.Inv.BIOS.TurboBoost
		f.undo = func() { n.Inv.BIOS.TurboBoost = !n.Inv.BIOS.TurboBoost }
	case RAMLoss:
		old := n.Inv.RAMGB
		n.Inv.RAMGB = old / 2
		f.undo = func() { n.Inv.RAMGB = old }
	case WrongKernel:
		old := n.Inv.OSKernel
		n.Inv.OSKernel = "3.14.2-custom"
		f.undo = func() { n.Inv.OSKernel = old }
	case RandomReboots, BootDelay, OFEDFlaky, ConsoleBroken:
		// Behavioural knobs; queried through the Behaviour methods below.
		f.undo = func() {}
	default:
		return nil, fmt.Errorf("faults: unknown kind %q", kind)
	}
	return in.register(f), nil
}

// InjectCablingSwap exchanges the experiment-NIC switch ports of two nodes,
// reproducing the paper's "cabling issue → wrong measurements by testbed
// monitoring service": the monitoring wiring is keyed by switch port, so
// each node's power/network samples get attributed to the other node.
func (in *Injector) InjectCablingSwap(nodeA, nodeB string) (*Fault, error) {
	a, b := in.tb.Node(nodeA), in.tb.Node(nodeB)
	if a == nil || b == nil {
		return nil, fmt.Errorf("faults: unknown node in swap %q/%q", nodeA, nodeB)
	}
	if nodeA == nodeB {
		return nil, fmt.Errorf("faults: cannot swap %q with itself", nodeA)
	}
	if in.HasFault(nodeA, CablingSwap) || in.HasFault(nodeB, CablingSwap) {
		return nil, fmt.Errorf("faults: cabling already swapped on %s or %s", nodeA, nodeB)
	}
	pa, pb := &a.Inv.NICs[0], &b.Inv.NICs[0]
	pa.SwitchPort, pb.SwitchPort = pb.SwitchPort, pa.SwitchPort
	f := &Fault{Kind: CablingSwap, Node: nodeA, PeerNode: nodeB}
	f.undo = func() { pa.SwitchPort, pb.SwitchPort = pb.SwitchPort, pa.SwitchPort }
	return in.register(f), nil
}

// InjectService makes one service at one site flaky, failing requests with
// the given probability.
func (in *Injector) InjectService(site, service string, errRate float64) (*Fault, error) {
	if in.tb.Site(site) == nil {
		return nil, fmt.Errorf("faults: unknown site %q", site)
	}
	valid := false
	for _, s := range Services {
		if s == service {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("faults: unknown service %q", service)
	}
	key := site + "/" + service
	if _, dup := in.serviceErr[key]; dup {
		return nil, fmt.Errorf("faults: %s already flaky", key)
	}
	if errRate <= 0 || errRate > 1 {
		return nil, fmt.Errorf("faults: error rate %v out of (0,1]", errRate)
	}
	in.serviceErr[key] = errRate
	f := &Fault{Kind: ServiceFlaky, Site: site, Service: service}
	f.undo = func() { delete(in.serviceErr, key) }
	return in.register(f), nil
}

// InjectRandom draws a fault kind and target from the clock's RNG, weighted
// roughly by how often each class shows up in the paper's bug list
// (hardware-setting drift dominates). It retries a few times when the draw
// lands on an already-faulted target, and returns nil if it cannot place a
// fault (extremely unlikely on a healthy testbed).
func (in *Injector) InjectRandom() *Fault {
	rng := in.clock.Rand()
	nodes := in.nodes
	for attempt := 0; attempt < 10; attempt++ {
		k := weightedKind(rng.Float64())
		switch k {
		case ServiceFlaky:
			site := simclock.Pick(rng, in.siteNames)
			svc := simclock.Pick(rng, Services)
			rate := 0.2 + 0.6*rng.Float64()
			if f, err := in.InjectService(site, svc, rate); err == nil {
				return f
			}
		case CablingSwap:
			// Swap two neighbouring nodes of the same cluster — the
			// realistic datacenter mistake.
			c := simclock.Pick(rng, in.tb.Clusters())
			if len(c.Nodes) < 2 {
				continue
			}
			i := rng.Intn(len(c.Nodes) - 1)
			if f, err := in.InjectCablingSwap(c.Nodes[i].Name, c.Nodes[i+1].Name); err == nil {
				return f
			}
		default:
			n := simclock.Pick(rng, nodes)
			if f, err := in.InjectNode(k, n.Name); err == nil {
				return f
			}
		}
	}
	return nil
}

// weightedKind maps a uniform draw to a fault kind. Weights reflect the
// paper's bug statistics: settings/firmware drift is the common case,
// dramatic failures (random reboots) are rare.
func weightedKind(u float64) Kind {
	table := []struct {
		w float64
		k Kind
	}{
		{0.14, DiskFirmwareDrift},
		{0.12, DiskCacheOff},
		{0.06, DiskDying},
		{0.13, CStatesOn},
		{0.07, HyperThreadFlip},
		{0.07, TurboFlip},
		{0.06, RAMLoss},
		{0.06, WrongKernel},
		{0.07, CablingSwap},
		{0.04, RandomReboots},
		{0.05, BootDelay},
		{0.05, OFEDFlaky},
		{0.04, ConsoleBroken},
		{0.04, ServiceFlaky},
	}
	acc := 0.0
	for _, e := range table {
		acc += e.w
		if u < acc {
			return e.k
		}
	}
	return ServiceFlaky
}

// ---- Behaviour queries -------------------------------------------------
//
// Other subsystems consult the injector instead of hard-coding healthy
// behaviour. All queries are cheap.

// BootDelayFor returns the extra boot latency a node suffers (zero when
// healthy; several minutes under the kernel-race fault the paper mentions).
func (in *Injector) BootDelayFor(node string) simclock.Time {
	if in.HasFault(node, BootDelay) {
		return 150 * simclock.Second
	}
	return 0
}

// RebootFailProb returns the probability that a reboot/deployment of the
// node fails outright (random-reboot hardware).
func (in *Injector) RebootFailProb(node string) float64 {
	if in.HasFault(node, RandomReboots) {
		return 0.5
	}
	return 0.01 // baseline flakiness of large fleets: ~1% of reboots fail
}

// DiskReadFactor returns the multiplier on disk read throughput (1.0 when
// healthy). Firmware drift changes performance moderately — the paper's
// "different disk performance due to different firmware versions" — while a
// dying disk collapses it.
func (in *Injector) DiskReadFactor(node string) float64 {
	f := 1.0
	if in.HasFault(node, DiskFirmwareDrift) {
		f *= 0.72
	}
	if in.HasFault(node, DiskDying) {
		f *= 0.25
	}
	return f
}

// DiskWriteFactor returns the multiplier on disk write throughput. Disabling
// the write cache is the big one (slide 22's "disk drives configuration
// (R/W caching)").
func (in *Injector) DiskWriteFactor(node string) float64 {
	f := 1.0
	if in.HasFault(node, DiskCacheOff) {
		f *= 0.35
	}
	if in.HasFault(node, DiskDying) {
		f *= 0.25
	}
	if in.HasFault(node, DiskFirmwareDrift) {
		f *= 0.85
	}
	return f
}

// CPUJitter returns the relative run-to-run variance of CPU benchmarks on
// the node. C-states re-enabled → latency jitter (slide 22: "CPU settings
// (C-states)").
func (in *Injector) CPUJitter(node string) float64 {
	if in.HasFault(node, CStatesOn) {
		return 0.08
	}
	return 0.01
}

// OFEDStartFails reports whether launching an InfiniBand application on the
// node fails this time (drawn from the clock's RNG when the OFED fault is
// active — the paper quotes the racy init script verbatim).
func (in *Injector) OFEDStartFails(node string) bool {
	if !in.HasFault(node, OFEDFlaky) {
		return false
	}
	return simclock.Bernoulli(in.clock.Rand(), 0.5)
}

// ConsoleWorks reports whether the serial console of the node responds.
func (in *Injector) ConsoleWorks(node string) bool {
	return !in.HasFault(node, ConsoleBroken)
}

// ServiceFails reports whether one request to the site's service fails.
func (in *Injector) ServiceFails(site, service string) bool {
	rate := in.serviceErr[site+"/"+service]
	if rate == 0 {
		return false
	}
	return simclock.Bernoulli(in.clock.Rand(), rate)
}

// ServiceErrorRate returns the configured error rate (0 when healthy).
func (in *Injector) ServiceErrorRate(site, service string) float64 {
	return in.serviceErr[site+"/"+service]
}
