package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/simclock"
)

// GridKind identifies a site-scale (grid-level) fault class. Node and link
// faults model what goes wrong *inside* a site; grid events model what goes
// wrong *between* sites once the campaign is federated: a whole site going
// dark, a WAN partition between shards, a rolling re-image across sites.
type GridKind string

// The grid-event catalogue.
const (
	// SiteOutage takes every listed site completely offline: its shard's
	// clock freezes at the federation barrier and its API routes disappear
	// until the event heals.
	SiteOutage GridKind = "site-outage"

	// WANPartition cuts the listed sites off from the federation's merge
	// plane: their shards keep stepping locally, but merged summaries and
	// scatter-gather responses exclude them until the partition heals and
	// the groups reconcile.
	WANPartition GridKind = "wan-partition"

	// RollingMaintenance re-images the listed sites one at a time: site i
	// is down during window i (measured from injection), so at most one of
	// the listed sites is dark at any instant. The event heals itself once
	// every window has elapsed.
	RollingMaintenance GridKind = "rolling-maintenance"
)

// AllGridKinds lists every grid-event kind, in a deterministic order.
var AllGridKinds = []GridKind{SiteOutage, WANPartition, RollingMaintenance}

// GridEvent is one injected site-scale event. Like node faults, events are
// identified by ID, carry inject/heal timestamps off the sim clock, and
// expose a stable Signature for bug deduplication.
type GridEvent struct {
	ID         int
	Kind       GridKind
	Sites      []string // affected sites, in injection order
	InjectedAt simclock.Time
	// Window is the per-site maintenance window for RollingMaintenance
	// (site i is down during [InjectedAt+i·Window, InjectedAt+(i+1)·Window)).
	// Zero for the other kinds.
	Window   simclock.Time
	Healed   bool
	HealedAt simclock.Time
}

// Signature is the stable identity used for bug deduplication, in the same
// shape node faults use: one signature per root cause, so a site outage is
// one ticket rather than N.
func (e *GridEvent) Signature() string {
	return fmt.Sprintf("%s:%s", e.Kind, strings.Join(e.Sites, "+"))
}

func (e *GridEvent) String() string {
	return fmt.Sprintf("grid event #%d %s (injected %s)", e.ID, e.Signature(), e.InjectedAt)
}

// Title is the human-readable bug-report title for the event.
func (e *GridEvent) Title() string {
	switch e.Kind {
	case SiteOutage:
		return fmt.Sprintf("site outage: %s unreachable", strings.Join(e.Sites, ", "))
	case WANPartition:
		return fmt.Sprintf("WAN partition isolating %s", strings.Join(e.Sites, ", "))
	default:
		return fmt.Sprintf("rolling maintenance across %s", strings.Join(e.Sites, ", "))
	}
}

// downAt reports whether the named site is down (frozen, routes dark) under
// this event at the given instant.
func (e *GridEvent) downAt(site string, now simclock.Time) bool {
	if e.Healed {
		return false
	}
	switch e.Kind {
	case SiteOutage:
		for _, s := range e.Sites {
			if s == site {
				return true
			}
		}
	case RollingMaintenance:
		for i, s := range e.Sites {
			if s != site {
				continue
			}
			start := e.InjectedAt + simclock.Time(i)*e.Window
			return now >= start && now < start+e.Window
		}
	}
	return false
}

// exhaustedAt reports whether a RollingMaintenance event has run out every
// per-site window by the given instant (and so should self-heal).
func (e *GridEvent) exhaustedAt(now simclock.Time) bool {
	if e.Kind != RollingMaintenance {
		return false
	}
	return now >= e.InjectedAt+simclock.Time(len(e.Sites))*e.Window
}

// GridInjector owns the active site-scale events. It is deliberately pure
// state + queries — no locking and no clock of its own — because the
// federation drives it under its own mutex off the federated clock, exactly
// like the per-shard Injector is driven by its shard's clock.
type GridInjector struct {
	nextID  int
	active  map[int]*GridEvent
	history []*GridEvent
}

// NewGridInjector returns an injector with no active events.
func NewGridInjector() *GridInjector {
	return &GridInjector{active: map[int]*GridEvent{}}
}

// Inject registers a new grid event starting at the given instant. A
// RollingMaintenance event needs a positive per-site window; the other kinds
// ignore it. Every event needs at least one site.
func (g *GridInjector) Inject(kind GridKind, sites []string, at, window simclock.Time) (*GridEvent, error) {
	switch kind {
	case SiteOutage, WANPartition, RollingMaintenance:
	default:
		return nil, fmt.Errorf("faults: unknown grid event kind %q", kind)
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("faults: grid event %s needs at least one site", kind)
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if s == "" {
			return nil, fmt.Errorf("faults: grid event %s has an empty site name", kind)
		}
		if seen[s] {
			return nil, fmt.Errorf("faults: grid event %s lists site %q twice", kind, s)
		}
		seen[s] = true
	}
	if kind == RollingMaintenance && window <= 0 {
		return nil, fmt.Errorf("faults: rolling maintenance needs a positive per-site window")
	}
	if kind != RollingMaintenance {
		window = 0
	}
	g.nextID++
	e := &GridEvent{
		ID:         g.nextID,
		Kind:       kind,
		Sites:      append([]string(nil), sites...),
		InjectedAt: at,
		Window:     window,
	}
	g.active[e.ID] = e
	g.history = append(g.history, e)
	return e, nil
}

// Heal undoes an active event at the given instant. Healing twice is an
// error, matching Injector.Fix semantics.
func (g *GridInjector) Heal(id int, at simclock.Time) error {
	e, ok := g.active[id]
	if !ok {
		return fmt.Errorf("faults: no active grid event #%d", id)
	}
	e.Healed = true
	e.HealedAt = at
	delete(g.active, id)
	return nil
}

// AutoHeal heals every RollingMaintenance event whose windows have all
// elapsed by the given instant, returning the healed events sorted by ID.
func (g *GridInjector) AutoHeal(now simclock.Time) []*GridEvent {
	var done []*GridEvent
	for _, e := range g.active {
		if e.exhaustedAt(now) {
			done = append(done, e)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	for _, e := range done {
		e.Healed = true
		e.HealedAt = now
		delete(g.active, e.ID)
	}
	return done
}

// Get returns the event with the given ID (active or healed), or nil.
func (g *GridInjector) Get(id int) *GridEvent {
	for _, e := range g.history {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Active returns the active (unhealed) events sorted by ID.
func (g *GridInjector) Active() []*GridEvent {
	out := make([]*GridEvent, 0, len(g.active))
	for _, e := range g.active {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History returns every event ever injected, healed or not, in injection
// order.
func (g *GridInjector) History() []*GridEvent { return append([]*GridEvent(nil), g.history...) }

// ActiveCount returns the number of unhealed events.
func (g *GridInjector) ActiveCount() int { return len(g.active) }

// SiteDownAt reports whether the named site is down — its shard frozen and
// its routes dark — under any active event at the given instant.
func (g *GridInjector) SiteDownAt(site string, now simclock.Time) bool {
	for _, e := range g.active {
		if e.downAt(site, now) {
			return true
		}
	}
	return false
}

// IsolatedAt returns the set of sites cut off from the federation's merge
// plane by active WAN partitions at the given instant. Isolated shards keep
// stepping; they just stop contributing to merged views until heal.
func (g *GridInjector) IsolatedAt(now simclock.Time) map[string]bool {
	out := map[string]bool{}
	for _, e := range g.active {
		if e.Kind != WANPartition || e.Healed {
			continue
		}
		for _, s := range e.Sites {
			out[s] = true
		}
	}
	return out
}

// ScheduleEntry is one step of a deterministic disaster schedule: inject
// Kind on Sites at time At. For SiteOutage and WANPartition, Duration > 0
// schedules the heal at At+Duration (0 = heal manually). For
// RollingMaintenance, Duration is the per-site window and the event heals
// itself once every window has elapsed.
type ScheduleEntry struct {
	Kind     GridKind
	Sites    []string
	At       simclock.Time
	Duration simclock.Time
}

// gridKindAliases maps schedule-string spellings to kinds.
var gridKindAliases = map[string]GridKind{
	"outage":                   SiteOutage,
	string(SiteOutage):         SiteOutage,
	"partition":                WANPartition,
	string(WANPartition):       WANPartition,
	"maintenance":              RollingMaintenance,
	string(RollingMaintenance): RollingMaintenance,
}

// ParseSchedule parses a comma-separated disaster schedule of the form
//
//	kind:site1+site2@start+duration[,kind:...]
//
// e.g. "outage:lyon@1w+1w,partition:nancy+grenoble@3w+2w". Kinds accept the
// short aliases outage, partition and maintenance as well as the canonical
// signatures. Times take simulated-duration suffixes w (weeks) and d (days)
// on a bare number, or any Go duration string (30m, 2h45m, ...).
func ParseSchedule(s string) ([]ScheduleEntry, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("faults: empty chaos schedule")
	}
	var out []ScheduleEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("faults: empty entry in chaos schedule %q", s)
		}
		kindStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faults: chaos entry %q: want kind:sites@start+duration", part)
		}
		kind, ok := gridKindAliases[kindStr]
		if !ok {
			return nil, fmt.Errorf("faults: chaos entry %q: unknown kind %q", part, kindStr)
		}
		sitesStr, timing, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: chaos entry %q: missing @start", part)
		}
		var sites []string
		for _, site := range strings.Split(sitesStr, "+") {
			site = strings.TrimSpace(site)
			if site == "" {
				return nil, fmt.Errorf("faults: chaos entry %q: empty site name", part)
			}
			sites = append(sites, site)
		}
		atStr, durStr, hasDur := strings.Cut(timing, "+")
		at, err := parseSimDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("faults: chaos entry %q: bad start: %v", part, err)
		}
		var dur simclock.Time
		if hasDur {
			dur, err = parseSimDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("faults: chaos entry %q: bad duration: %v", part, err)
			}
			if dur <= 0 {
				return nil, fmt.Errorf("faults: chaos entry %q: duration must be positive", part)
			}
		}
		if kind == RollingMaintenance && dur <= 0 {
			return nil, fmt.Errorf("faults: chaos entry %q: maintenance needs a +window", part)
		}
		out = append(out, ScheduleEntry{Kind: kind, Sites: sites, At: at, Duration: dur})
	}
	return out, nil
}

// parseSimDuration parses a simulated duration: a bare number with a w
// (weeks) or d (days) suffix, or any Go duration string.
func parseSimDuration(s string) (simclock.Time, error) {
	s = strings.TrimSpace(s)
	if n, ok := strings.CutSuffix(s, "w"); ok {
		if v, err := strconv.ParseFloat(n, 64); err == nil {
			return simclock.Time(v * float64(simclock.Week)), nil
		}
	}
	if n, ok := strings.CutSuffix(s, "d"); ok {
		if v, err := strconv.ParseFloat(n, 64); err == nil {
			return simclock.Time(v * float64(24*time.Hour)), nil
		}
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return simclock.Time(d), nil
}
