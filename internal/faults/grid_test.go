package faults

import (
	"testing"

	"repro/internal/simclock"
)

func TestGridEventLifecycle(t *testing.T) {
	g := NewGridInjector()
	e, err := g.Inject(SiteOutage, []string{"nancy"}, simclock.Week, 0)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	if e.ID != 1 || e.Kind != SiteOutage || e.InjectedAt != simclock.Week {
		t.Fatalf("bad event: %+v", e)
	}
	if got := e.Signature(); got != "site-outage:nancy" {
		t.Fatalf("signature = %q", got)
	}
	if !g.SiteDownAt("nancy", simclock.Week) {
		t.Fatal("nancy should be down while the outage is active")
	}
	if g.SiteDownAt("lyon", simclock.Week) {
		t.Fatal("lyon should be unaffected")
	}
	if n := g.ActiveCount(); n != 1 {
		t.Fatalf("active = %d", n)
	}
	if err := g.Heal(e.ID, 2*simclock.Week); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if g.SiteDownAt("nancy", 2*simclock.Week) {
		t.Fatal("nancy should be back after heal")
	}
	if !e.Healed || e.HealedAt != 2*simclock.Week {
		t.Fatalf("heal not recorded: %+v", e)
	}
	if err := g.Heal(e.ID, 3*simclock.Week); err == nil {
		t.Fatal("double heal should fail")
	}
	if len(g.History()) != 1 || g.Get(e.ID) != e {
		t.Fatal("history should keep healed events")
	}
}

func TestGridInjectValidation(t *testing.T) {
	g := NewGridInjector()
	if _, err := g.Inject(GridKind("volcano"), []string{"nancy"}, 0, 0); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if _, err := g.Inject(SiteOutage, nil, 0, 0); err == nil {
		t.Fatal("no sites should fail")
	}
	if _, err := g.Inject(SiteOutage, []string{"a", "a"}, 0, 0); err == nil {
		t.Fatal("duplicate site should fail")
	}
	if _, err := g.Inject(RollingMaintenance, []string{"a", "b"}, 0, 0); err == nil {
		t.Fatal("maintenance without window should fail")
	}
	// The Sites slice must be copied: mutating the caller's slice after
	// injection must not alter the event.
	sites := []string{"nancy"}
	e, err := g.Inject(SiteOutage, sites, 0, 0)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	sites[0] = "mutated"
	if e.Sites[0] != "nancy" {
		t.Fatal("event aliased the caller's sites slice")
	}
}

func TestRollingMaintenanceWindows(t *testing.T) {
	g := NewGridInjector()
	w := simclock.Week
	e, err := g.Inject(RollingMaintenance, []string{"a", "b", "c"}, w, w)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	// Window layout: a down in [1w,2w), b in [2w,3w), c in [3w,4w).
	cases := []struct {
		at   simclock.Time
		down string
	}{
		{w / 2, ""}, {w, "a"}, {w + w/2, "a"}, {2 * w, "b"}, {3 * w, "c"}, {4 * w, ""},
	}
	for _, tc := range cases {
		for _, site := range []string{"a", "b", "c"} {
			want := site == tc.down
			if got := g.SiteDownAt(site, tc.at); got != want {
				t.Errorf("SiteDownAt(%s, %s) = %v, want %v", site, tc.at, got, want)
			}
		}
	}
	if healed := g.AutoHeal(4*w - 1); len(healed) != 0 {
		t.Fatal("AutoHeal fired before the last window elapsed")
	}
	healed := g.AutoHeal(4 * w)
	if len(healed) != 1 || healed[0] != e || !e.Healed || e.HealedAt != 4*w {
		t.Fatalf("AutoHeal = %v (event %+v)", healed, e)
	}
}

func TestWANPartitionIsolation(t *testing.T) {
	g := NewGridInjector()
	e, err := g.Inject(WANPartition, []string{"nancy", "grenoble"}, 0, 0)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	if got := e.Signature(); got != "wan-partition:nancy+grenoble" {
		t.Fatalf("signature = %q", got)
	}
	// Partitioned sites keep running — they are isolated, not down.
	if g.SiteDownAt("nancy", 0) {
		t.Fatal("partitioned site must not count as down")
	}
	iso := g.IsolatedAt(0)
	if !iso["nancy"] || !iso["grenoble"] || iso["lyon"] {
		t.Fatalf("IsolatedAt = %v", iso)
	}
	if err := g.Heal(e.ID, simclock.Week); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if len(g.IsolatedAt(simclock.Week)) != 0 {
		t.Fatal("isolation should clear on heal")
	}
}

func TestParseSchedule(t *testing.T) {
	entries, err := ParseSchedule("outage:lyon@1w+1w, partition:nancy+grenoble@2w, maintenance:a+b@3w+2d")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	e0 := entries[0]
	if e0.Kind != SiteOutage || e0.Sites[0] != "lyon" || e0.At != simclock.Week || e0.Duration != simclock.Week {
		t.Fatalf("entry 0 = %+v", e0)
	}
	e1 := entries[1]
	if e1.Kind != WANPartition || len(e1.Sites) != 2 || e1.Duration != 0 {
		t.Fatalf("entry 1 = %+v", e1)
	}
	e2 := entries[2]
	if e2.Kind != RollingMaintenance || e2.Duration != 2*simclock.Day {
		t.Fatalf("entry 2 = %+v", e2)
	}
	// Go duration strings are accepted too.
	entries, err = ParseSchedule("site-outage:x@30m+2h45m")
	if err != nil || entries[0].At != simclock.Time(30*simclock.Minute) {
		t.Fatalf("go-duration parse: %v %+v", err, entries)
	}

	for _, bad := range []string{
		"", "outage", "volcano:x@1w", "outage:@1w", "outage:x", "outage:x@soon",
		"outage:x@1w+never", "maintenance:x@1w", "outage:x@1w+0s", ",",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", bad)
		}
	}
}
