// Package faults implements the fault model: everything that can silently go
// wrong on a testbed and that the paper's framework exists to catch.
//
// The catalogue is taken directly from the paper's list of real bugs
// (slides 13 and 22):
//
//   - different CPU settings: power management (C-states), hyper-threading,
//     turbo boost;
//   - different disk firmware versions, disk cache settings;
//   - cabling issues → wrong measurements by the monitoring service;
//   - broken hardware (RAM);
//   - random reboots (a cluster was decommissioned for this);
//   - a race condition in the Linux kernel causing boot delays;
//   - a bug in the OFED stack causing random failures to start IB apps;
//   - unreliable software services.
//
// A Fault mutates *live* state (node inventories or behaviour knobs) without
// updating the Reference API — exactly the drift that g5k-checks-style
// verification detects. Every fault is undoable so that the operator model
// in internal/core can "fix bugs".
package faults

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Kind identifies a fault class.
type Kind string

// The fault catalogue.
const (
	DiskFirmwareDrift Kind = "disk-firmware-drift" // disk flashed with a different firmware
	DiskCacheOff      Kind = "disk-cache-off"      // write cache disabled → slow writes
	DiskDying         Kind = "disk-dying"          // media failing → slow reads, no desc change
	CStatesOn         Kind = "cstates-on"          // power mgmt re-enabled → perf jitter
	HyperThreadFlip   Kind = "hyperthread-flip"    // HT toggled from reference setting
	TurboFlip         Kind = "turbo-flip"          // turbo boost toggled
	RAMLoss           Kind = "ram-loss"            // a DIMM died → less memory
	WrongKernel       Kind = "wrong-kernel"        // std env booted an unexpected kernel
	CablingSwap       Kind = "cabling-swap"        // two nodes' cables exchanged on the switch
	RandomReboots     Kind = "random-reboots"      // node spontaneously reboots
	BootDelay         Kind = "boot-delay"          // kernel race → very slow boots
	OFEDFlaky         Kind = "ofed-flaky"          // IB stack randomly fails to start apps
	ServiceFlaky      Kind = "service-flaky"       // a site service returns errors
	ConsoleBroken     Kind = "console-broken"      // serial console unusable on a node
)

// AllKinds lists every fault kind, in a deterministic order.
var AllKinds = []Kind{
	DiskFirmwareDrift, DiskCacheOff, DiskDying, CStatesOn, HyperThreadFlip,
	TurboFlip, RAMLoss, WrongKernel, CablingSwap, RandomReboots, BootDelay,
	OFEDFlaky, ServiceFlaky, ConsoleBroken,
}

// Services that ServiceFlaky can degrade, mirroring the paper's software
// test families (cmdline, sidapi, console, kavlan, kwapi, deployment).
var Services = []string{"api", "oar", "kadeploy", "kavlan", "kwapi", "console"}

// Fault is one injected problem.
type Fault struct {
	ID         int
	Kind       Kind
	Node       string // primary node, "" for site-scoped faults
	PeerNode   string // second node for CablingSwap
	Site       string // for service faults
	Service    string // for service faults
	InjectedAt simclock.Time
	Fixed      bool
	FixedAt    simclock.Time

	undo func()
}

// Signature is a stable identity used for bug deduplication: the same
// signature re-detected must not open a second bug report.
func (f *Fault) Signature() string {
	switch {
	case f.Service != "":
		return fmt.Sprintf("%s:%s/%s", f.Kind, f.Site, f.Service)
	case f.PeerNode != "":
		return fmt.Sprintf("%s:%s+%s", f.Kind, f.Node, f.PeerNode)
	default:
		return fmt.Sprintf("%s:%s", f.Kind, f.Node)
	}
}

func (f *Fault) String() string {
	return fmt.Sprintf("fault #%d %s (injected %s)", f.ID, f.Signature(), f.InjectedAt)
}

// DescriptionDrift reports whether this fault kind is visible as a
// divergence between the live inventory and the Reference API (detected by
// internal/checks), as opposed to purely behavioural faults that only
// functional tests can catch.
func (k Kind) DescriptionDrift() bool {
	switch k {
	case DiskFirmwareDrift, DiskCacheOff, CStatesOn, HyperThreadFlip,
		TurboFlip, RAMLoss, WrongKernel, CablingSwap:
		return true
	}
	return false
}

// nodeKind keys the per-node fault index.
type nodeKind struct {
	node string
	kind Kind
}

// Injector owns all active faults and answers behaviour queries from the
// other subsystems (deployment, monitoring, test scripts).
type Injector struct {
	clock *simclock.Clock
	tb    *testbed.Testbed

	// nodes/siteNames cache the (immutable) topology so the random
	// injection loop does not rebuild them on every arrival.
	nodes     []*testbed.Node
	siteNames []string

	nextID  int
	active  map[int]*Fault
	history []*Fault

	// byNode indexes active node-scoped faults by (node, kind), so the
	// behaviour queries every subsystem issues per node — reboot
	// probability at each deployment, boot delay, disk factors at every
	// monitoring sample — are O(1) lookups instead of scans over all
	// active faults. Values are counts (CablingSwap registers under both
	// of its nodes).
	byNode map[nodeKind]int

	// serviceErr caches site/service → error probability for fast lookup.
	serviceErr map[string]float64
}

// NewInjector returns an injector with no active faults.
func NewInjector(clock *simclock.Clock, tb *testbed.Testbed) *Injector {
	return &Injector{
		clock:      clock,
		tb:         tb,
		nodes:      tb.Nodes(),
		siteNames:  tb.SiteNames(),
		active:     map[int]*Fault{},
		byNode:     map[nodeKind]int{},
		serviceErr: map[string]float64{},
	}
}

// Active returns the active (unfixed) faults sorted by ID.
func (in *Injector) Active() []*Fault {
	out := make([]*Fault, 0, len(in.active))
	for _, f := range in.active {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History returns every fault ever injected, fixed or not, in injection
// order.
func (in *Injector) History() []*Fault { return append([]*Fault(nil), in.history...) }

// ActiveCount returns the number of unfixed faults.
func (in *Injector) ActiveCount() int { return len(in.active) }

// BySignature returns the active fault with the given signature, or nil.
func (in *Injector) BySignature(sig string) *Fault {
	for _, f := range in.active {
		if f.Signature() == sig {
			return f
		}
	}
	return nil
}

// NodeFaults returns active fault kinds on the named node.
func (in *Injector) NodeFaults(node string) []Kind {
	var out []Kind
	for _, f := range in.Active() {
		if f.Node == node || f.PeerNode == node {
			out = append(out, f.Kind)
		}
	}
	return out
}

// HasFault reports whether the node currently suffers from the given kind.
// This is the hot behaviour query: an indexed O(1) lookup.
func (in *Injector) HasFault(node string, k Kind) bool {
	return in.byNode[nodeKind{node, k}] > 0
}

// Fix undoes a fault by ID. Fixing twice is an error, matching bug-tracker
// semantics (a closed bug cannot be closed again).
func (in *Injector) Fix(id int) error {
	f, ok := in.active[id]
	if !ok {
		return fmt.Errorf("faults: no active fault #%d", id)
	}
	if f.undo != nil {
		f.undo()
	}
	f.Fixed = true
	f.FixedAt = in.clock.Now()
	delete(in.active, id)
	in.unindex(f)
	return nil
}

// FixBySignature fixes the active fault carrying the signature, if any, and
// reports whether one was found.
func (in *Injector) FixBySignature(sig string) bool {
	f := in.BySignature(sig)
	if f == nil {
		return false
	}
	return in.Fix(f.ID) == nil
}

func (in *Injector) register(f *Fault) *Fault {
	in.nextID++
	f.ID = in.nextID
	f.InjectedAt = in.clock.Now()
	in.active[f.ID] = f
	in.history = append(in.history, f)
	if f.Node != "" {
		in.byNode[nodeKind{f.Node, f.Kind}]++
	}
	if f.PeerNode != "" {
		in.byNode[nodeKind{f.PeerNode, f.Kind}]++
	}
	return f
}

// unindex removes a fixed fault from the per-node index.
func (in *Injector) unindex(f *Fault) {
	for _, node := range []string{f.Node, f.PeerNode} {
		if node == "" {
			continue
		}
		k := nodeKind{node, f.Kind}
		if in.byNode[k]--; in.byNode[k] <= 0 {
			delete(in.byNode, k)
		}
	}
}
