package faults

import (
	"testing"
	"testing/quick"

	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func setup() (*simclock.Clock, *testbed.Testbed, *Injector) {
	c := simclock.New(11)
	tb := testbed.Default()
	return c, tb, NewInjector(c, tb)
}

func TestInjectAndFixRestoresState(t *testing.T) {
	_, tb, in := setup()
	node := "griffon-10.nancy"
	before := tb.Node(node).Inv.Clone()

	kinds := []Kind{DiskFirmwareDrift, DiskCacheOff, CStatesOn, HyperThreadFlip,
		TurboFlip, RAMLoss, WrongKernel}
	var ids []int
	for _, k := range kinds {
		f, err := in.InjectNode(k, node)
		if err != nil {
			t.Fatalf("inject %s: %v", k, err)
		}
		ids = append(ids, f.ID)
	}
	if diffs := refapi.DiffInventories(node, before, tb.Node(node).Inv); len(diffs) == 0 {
		t.Fatal("description faults caused no drift")
	}
	for _, id := range ids {
		if err := in.Fix(id); err != nil {
			t.Fatal(err)
		}
	}
	if diffs := refapi.DiffInventories(node, before, tb.Node(node).Inv); len(diffs) != 0 {
		t.Fatalf("fixing did not restore state: %v", diffs)
	}
	if in.ActiveCount() != 0 {
		t.Fatalf("active = %d after fixing all", in.ActiveCount())
	}
}

func TestDoubleInjectRejected(t *testing.T) {
	_, _, in := setup()
	if _, err := in.InjectNode(RAMLoss, "sol-1.sophia"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.InjectNode(RAMLoss, "sol-1.sophia"); err == nil {
		t.Fatal("duplicate inject succeeded")
	}
}

func TestDoubleFixRejected(t *testing.T) {
	_, _, in := setup()
	f, _ := in.InjectNode(TurboFlip, "sol-1.sophia")
	if err := in.Fix(f.ID); err != nil {
		t.Fatal(err)
	}
	if err := in.Fix(f.ID); err == nil {
		t.Fatal("double fix succeeded")
	}
}

func TestInjectUnknownTargets(t *testing.T) {
	_, _, in := setup()
	if _, err := in.InjectNode(RAMLoss, "ghost-1.limbo"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := in.InjectNode(ServiceFlaky, "sol-1.sophia"); err == nil {
		t.Fatal("service fault accepted as node fault")
	}
	if _, err := in.InjectNode(CablingSwap, "sol-1.sophia"); err == nil {
		t.Fatal("cabling fault accepted as node fault")
	}
	if _, err := in.InjectService("limbo", "api", 0.5); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := in.InjectService("lyon", "teleport", 0.5); err == nil {
		t.Fatal("unknown service accepted")
	}
	if _, err := in.InjectService("lyon", "api", 1.5); err == nil {
		t.Fatal("error rate >1 accepted")
	}
}

func TestCablingSwapSwapsSwitchPorts(t *testing.T) {
	_, tb, in := setup()
	a, b := tb.Node("taurus-1.lyon"), tb.Node("taurus-2.lyon")
	pa, pb := a.Inv.NICs[0].SwitchPort, b.Inv.NICs[0].SwitchPort

	f, err := in.InjectCablingSwap(a.Name, b.Name)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inv.NICs[0].SwitchPort != pb || b.Inv.NICs[0].SwitchPort != pa {
		t.Fatal("ports not swapped")
	}
	if !in.HasFault(a.Name, CablingSwap) || !in.HasFault(b.Name, CablingSwap) {
		t.Fatal("fault not visible on both nodes")
	}
	if err := in.Fix(f.ID); err != nil {
		t.Fatal(err)
	}
	if a.Inv.NICs[0].SwitchPort != pa || b.Inv.NICs[0].SwitchPort != pb {
		t.Fatal("fix did not unswap ports")
	}
}

func TestCablingSwapSelfRejected(t *testing.T) {
	_, _, in := setup()
	if _, err := in.InjectCablingSwap("sol-1.sophia", "sol-1.sophia"); err == nil {
		t.Fatal("self swap accepted")
	}
}

func TestServiceFaultBehaviour(t *testing.T) {
	_, _, in := setup()
	if in.ServiceFails("nancy", "api") {
		t.Fatal("healthy service failed")
	}
	f, err := in.InjectService("nancy", "api", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !in.ServiceFails("nancy", "api") {
		t.Fatal("rate-1.0 service did not fail")
	}
	if in.ServiceErrorRate("nancy", "api") != 1.0 {
		t.Fatal("wrong error rate")
	}
	if in.ServiceFails("lyon", "api") {
		t.Fatal("fault leaked to another site")
	}
	in.Fix(f.ID)
	if in.ServiceFails("nancy", "api") {
		t.Fatal("fixed service still failing")
	}
}

func TestBehaviourQueriesHealthyDefaults(t *testing.T) {
	_, _, in := setup()
	n := "paravance-1.rennes"
	if d := in.BootDelayFor(n); d != 0 {
		t.Errorf("healthy boot delay = %v", d)
	}
	if p := in.RebootFailProb(n); p != 0.01 {
		t.Errorf("healthy reboot fail prob = %v", p)
	}
	if f := in.DiskReadFactor(n); f != 1.0 {
		t.Errorf("healthy read factor = %v", f)
	}
	if f := in.DiskWriteFactor(n); f != 1.0 {
		t.Errorf("healthy write factor = %v", f)
	}
	if j := in.CPUJitter(n); j != 0.01 {
		t.Errorf("healthy jitter = %v", j)
	}
	if in.OFEDStartFails(n) {
		t.Error("healthy OFED failed")
	}
	if !in.ConsoleWorks(n) {
		t.Error("healthy console broken")
	}
}

func TestBehaviourQueriesUnderFaults(t *testing.T) {
	_, _, in := setup()
	n := "helios-3.sophia"
	in.InjectNode(BootDelay, n)
	in.InjectNode(RandomReboots, n)
	in.InjectNode(DiskCacheOff, n)
	in.InjectNode(DiskDying, n)
	in.InjectNode(CStatesOn, n)
	in.InjectNode(ConsoleBroken, n)

	if d := in.BootDelayFor(n); d != 150*simclock.Second {
		t.Errorf("boot delay = %v", d)
	}
	if p := in.RebootFailProb(n); p != 0.5 {
		t.Errorf("reboot fail prob = %v", p)
	}
	if f := in.DiskWriteFactor(n); f >= 0.35*0.25+0.001 {
		t.Errorf("write factor = %v, want ≤ 0.0875", f)
	}
	if f := in.DiskReadFactor(n); f != 0.25 {
		t.Errorf("read factor = %v", f)
	}
	if j := in.CPUJitter(n); j != 0.08 {
		t.Errorf("jitter = %v", j)
	}
	if in.ConsoleWorks(n) {
		t.Error("broken console works")
	}
}

func TestOFEDFlakyIsIntermittent(t *testing.T) {
	_, _, in := setup()
	n := "graphene-1.nancy"
	in.InjectNode(OFEDFlaky, n)
	fails, runs := 0, 200
	for i := 0; i < runs; i++ {
		if in.OFEDStartFails(n) {
			fails++
		}
	}
	if fails == 0 || fails == runs {
		t.Fatalf("OFED fault not intermittent: %d/%d", fails, runs)
	}
}

func TestSignatures(t *testing.T) {
	_, _, in := setup()
	f1, _ := in.InjectNode(RAMLoss, "sol-2.sophia")
	if got := f1.Signature(); got != "ram-loss:sol-2.sophia" {
		t.Errorf("sig = %q", got)
	}
	f2, _ := in.InjectService("lyon", "kwapi", 0.4)
	if got := f2.Signature(); got != "service-flaky:lyon/kwapi" {
		t.Errorf("sig = %q", got)
	}
	f3, _ := in.InjectCablingSwap("sol-3.sophia", "sol-4.sophia")
	if got := f3.Signature(); got != "cabling-swap:sol-3.sophia+sol-4.sophia" {
		t.Errorf("sig = %q", got)
	}
	if in.BySignature("ram-loss:sol-2.sophia") != f1 {
		t.Error("BySignature lookup failed")
	}
	if !in.FixBySignature("ram-loss:sol-2.sophia") {
		t.Error("FixBySignature failed")
	}
	if in.FixBySignature("ram-loss:sol-2.sophia") {
		t.Error("FixBySignature fixed twice")
	}
}

func TestInjectRandomAlwaysPlacesFault(t *testing.T) {
	_, _, in := setup()
	for i := 0; i < 300; i++ {
		if f := in.InjectRandom(); f == nil {
			t.Fatalf("InjectRandom returned nil at iteration %d", i)
		}
	}
	if in.ActiveCount() != 300 {
		t.Fatalf("active = %d, want 300", in.ActiveCount())
	}
	if len(in.History()) != 300 {
		t.Fatalf("history = %d, want 300", len(in.History()))
	}
}

func TestInjectRandomCoversAllKinds(t *testing.T) {
	_, _, in := setup()
	seen := map[Kind]bool{}
	for i := 0; i < 600; i++ {
		if f := in.InjectRandom(); f != nil {
			seen[f.Kind] = true
		}
	}
	for _, k := range AllKinds {
		if !seen[k] {
			t.Errorf("kind %s never drawn in 600 injections", k)
		}
	}
}

func TestNodeFaults(t *testing.T) {
	_, _, in := setup()
	n := "uvb-7.sophia"
	in.InjectNode(RAMLoss, n)
	in.InjectNode(CStatesOn, n)
	ks := in.NodeFaults(n)
	if len(ks) != 2 {
		t.Fatalf("NodeFaults = %v", ks)
	}
}

// Property: weightedKind is total — every u in [0,1) maps to a valid kind.
func TestWeightedKindTotalProperty(t *testing.T) {
	valid := map[Kind]bool{}
	for _, k := range AllKinds {
		valid[k] = true
	}
	f := func(u float64) bool {
		if u < 0 {
			u = -u
		}
		for u >= 1 {
			u /= 2
		}
		return valid[weightedKind(u)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inject+fix is an identity on the node inventory for every
// description-drift fault kind.
func TestInjectFixIdentityProperty(t *testing.T) {
	_, tb, in := setup()
	nodes := tb.Nodes()
	driftKinds := []Kind{DiskFirmwareDrift, DiskCacheOff, CStatesOn,
		HyperThreadFlip, TurboFlip, RAMLoss, WrongKernel}
	f := func(nodeIdx uint16, kindIdx uint8) bool {
		n := nodes[int(nodeIdx)%len(nodes)]
		k := driftKinds[int(kindIdx)%len(driftKinds)]
		before := n.Inv.Clone()
		flt, err := in.InjectNode(k, n.Name)
		if err != nil {
			return true // duplicate or inapplicable: state must be unchanged
		}
		if err := in.Fix(flt.ID); err != nil {
			return false
		}
		return len(refapi.DiffInventories(n.Name, before, n.Inv)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptionDriftClassification(t *testing.T) {
	drift := map[Kind]bool{
		DiskFirmwareDrift: true, DiskCacheOff: true, CStatesOn: true,
		HyperThreadFlip: true, TurboFlip: true, RAMLoss: true,
		WrongKernel: true, CablingSwap: true,
		DiskDying: false, RandomReboots: false, BootDelay: false,
		OFEDFlaky: false, ServiceFlaky: false, ConsoleBroken: false,
	}
	for k, want := range drift {
		if got := k.DescriptionDrift(); got != want {
			t.Errorf("%s.DescriptionDrift() = %v, want %v", k, got, want)
		}
	}
}

// hasFaultScan recomputes HasFault the pre-index way: a linear scan over
// the active set. The O(1) index must always agree with it.
func hasFaultScan(in *Injector, node string, k Kind) bool {
	for _, f := range in.Active() {
		if f.Kind == k && (f.Node == node || f.PeerNode == node) {
			return true
		}
	}
	return false
}

// Property: the per-node fault index stays consistent with the active set
// through arbitrary inject/fix churn, including cabling swaps that index
// under two nodes.
func TestHasFaultIndexConsistentProperty(t *testing.T) {
	clock, tb, in := setup()
	nodes := tb.Cluster("griffon").Nodes
	rng := clock.Rand()
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0:
			k := AllKinds[rng.Intn(len(AllKinds))]
			n := nodes[rng.Intn(len(nodes))]
			switch k {
			case ServiceFlaky:
				in.InjectService("nancy", "api", 0.5) //nolint:errcheck // dup ok
			case CablingSwap:
				in.InjectCablingSwap(n.Name, nodes[(rng.Intn(len(nodes)-1)+1)].Name) //nolint:errcheck // dup/self ok
			default:
				in.InjectNode(k, n.Name) //nolint:errcheck // dup ok
			}
		case 1:
			if act := in.Active(); len(act) > 0 {
				in.Fix(act[rng.Intn(len(act))].ID) //nolint:errcheck
			}
		case 2:
			n := nodes[rng.Intn(len(nodes))]
			k := AllKinds[rng.Intn(len(AllKinds))]
			if got, want := in.HasFault(n.Name, k), hasFaultScan(in, n.Name, k); got != want {
				t.Fatalf("step %d: HasFault(%s, %s) = %v, scan says %v", step, n.Name, k, got, want)
			}
		}
	}
	// Drain everything and verify the index is empty-equivalent.
	for _, f := range in.Active() {
		if err := in.Fix(f.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		for _, k := range AllKinds {
			if in.HasFault(n.Name, k) {
				t.Fatalf("index leaks %s on %s after full fix", k, n.Name)
			}
		}
	}
}
