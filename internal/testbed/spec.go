package testbed

// ClusterSpec describes one cluster of the generated testbed. The default
// specification below reproduces the paper's scale exactly: 8 sites,
// 32 clusters, 894 nodes, 8490 cores — with the vendor/age heterogeneity
// the paper blames for subtle hardware bugs (slide 12).
type ClusterSpec struct {
	Name      string
	Site      string
	Vendor    string
	ModelYear int

	NodeCount      int
	Sockets        int
	CoresPerSocket int
	CPUModel       string
	FreqMHz        int
	RAMGB          int

	DiskCount  int
	DiskGB     int
	DiskRPM    int // 0 = SSD
	DiskVendor string
	DiskModel  string
	DiskFW     string

	NICRateGbps int
	NICDriver   string

	GPUModel   string // "" = none
	Infiniband string // "" = none, else e.g. "QDR 40G"

	BIOSVersion  string
	HyperThread  bool
	TurboBoost   bool
	PowerProfile string
}

// CoresPerNode returns the per-node core count for the spec.
func (cs ClusterSpec) CoresPerNode() int { return cs.Sockets * cs.CoresPerSocket }

// DefaultSpec is the 32-cluster specification of the default testbed.
//
// Invariants checked by tests (and relied upon by internal/suites for its
// 751 test configurations):
//   - 8 distinct sites, 32 clusters
//   - node counts sum to 894, cores to 8490
//   - exactly 9 Dell clusters          (dellbios test family)
//   - exactly 6 InfiniBand clusters    (mpigraph test family)
//   - exactly 24 clusters with HDDs    (disk test family)
var DefaultSpec = []ClusterSpec{
	// ---- grenoble (4 clusters) ----
	{Name: "edel", Site: "grenoble", Vendor: "Bull", ModelYear: 2008, NodeCount: 48,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5520", FreqMHz: 2270, RAMGB: 24,
		DiskCount: 1, DiskGB: 160, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3160815AS", DiskFW: "3.AAD",
		NICRateGbps: 1, NICDriver: "igb", BIOSVersion: "1.12", PowerProfile: "balanced"},
	{Name: "genepi", Site: "grenoble", Vendor: "Bull", ModelYear: 2008, NodeCount: 30,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5420", FreqMHz: 2500, RAMGB: 8,
		DiskCount: 1, DiskGB: 160, DiskRPM: 7200, DiskVendor: "Hitachi", DiskModel: "HDS72161", DiskFW: "V5DOA7EA",
		NICRateGbps: 1, NICDriver: "e1000e", BIOSVersion: "2.04", PowerProfile: "balanced"},
	{Name: "adonis", Site: "grenoble", Vendor: "Bull", ModelYear: 2009, NodeCount: 10,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5520", FreqMHz: 2270, RAMGB: 24,
		DiskCount: 1, DiskGB: 250, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3250318AS", DiskFW: "CC38",
		NICRateGbps: 1, NICDriver: "igb", GPUModel: "NVIDIA Tesla S1070",
		BIOSVersion: "1.15", PowerProfile: "performance"},
	{Name: "dahu", Site: "grenoble", Vendor: "HP", ModelYear: 2016, NodeCount: 13,
		Sockets: 2, CoresPerSocket: 7, CPUModel: "Intel Xeon E5-2660", FreqMHz: 2200, RAMGB: 64,
		DiskCount: 2, DiskGB: 480, DiskRPM: 0, DiskVendor: "Intel", DiskModel: "SSDSC2KB48", DiskFW: "XCV1DL61",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "P89v2.40", TurboBoost: true, PowerProfile: "performance"},

	// ---- lille (4 clusters) ----
	{Name: "chimint", Site: "lille", Vendor: "IBM", ModelYear: 2011, NodeCount: 20,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5620", FreqMHz: 2400, RAMGB: 16,
		DiskCount: 1, DiskGB: 300, DiskRPM: 10000, DiskVendor: "IBM", DiskModel: "MBF2300RC", DiskFW: "SB17",
		NICRateGbps: 1, NICDriver: "bnx2", BIOSVersion: "1.9", HyperThread: true, PowerProfile: "balanced"},
	{Name: "chirloute", Site: "lille", Vendor: "IBM", ModelYear: 2011, NodeCount: 8,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5620", FreqMHz: 2400, RAMGB: 16,
		DiskCount: 1, DiskGB: 300, DiskRPM: 10000, DiskVendor: "IBM", DiskModel: "MBF2300RC", DiskFW: "SB17",
		NICRateGbps: 1, NICDriver: "bnx2", BIOSVersion: "1.9", HyperThread: true, PowerProfile: "balanced"},
	{Name: "chinqchint", Site: "lille", Vendor: "HP", ModelYear: 2007, NodeCount: 42,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5440", FreqMHz: 2830, RAMGB: 8,
		DiskCount: 1, DiskGB: 250, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3250620NS", DiskFW: "3.AEG",
		NICRateGbps: 1, NICDriver: "tg3", BIOSVersion: "P56", PowerProfile: "balanced"},
	{Name: "chifflet", Site: "lille", Vendor: "Dell", ModelYear: 2016, NodeCount: 16,
		Sockets: 2, CoresPerSocket: 8, CPUModel: "Intel Xeon E5-2620 v4", FreqMHz: 2100, RAMGB: 128,
		DiskCount: 2, DiskGB: 400, DiskRPM: 0, DiskVendor: "Toshiba", DiskModel: "PX04SHB040", DiskFW: "A3AF",
		NICRateGbps: 10, NICDriver: "ixgbe", GPUModel: "", BIOSVersion: "2.3.4", TurboBoost: true,
		PowerProfile: "performance"},

	// ---- luxembourg (2 clusters) ----
	{Name: "granduc", Site: "luxembourg", Vendor: "HP", ModelYear: 2010, NodeCount: 22,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon L5335", FreqMHz: 2000, RAMGB: 16,
		DiskCount: 1, DiskGB: 160, DiskRPM: 7200, DiskVendor: "WDC", DiskModel: "WD1602ABKS", DiskFW: "3B04",
		NICRateGbps: 1, NICDriver: "e1000e", BIOSVersion: "P61", PowerProfile: "balanced"},
	{Name: "petitprince", Site: "luxembourg", Vendor: "Dell", ModelYear: 2013, NodeCount: 16,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630L", FreqMHz: 2000, RAMGB: 32,
		DiskCount: 1, DiskGB: 500, DiskRPM: 7200, DiskVendor: "WDC", DiskModel: "WD5003ABYX", DiskFW: "01.01S02",
		NICRateGbps: 1, NICDriver: "ixgbe", BIOSVersion: "2.2.2", TurboBoost: true, PowerProfile: "balanced"},

	// ---- lyon (4 clusters) ----
	{Name: "sagittaire", Site: "lyon", Vendor: "Sun", ModelYear: 2006, NodeCount: 50,
		Sockets: 2, CoresPerSocket: 2, CPUModel: "AMD Opteron 250", FreqMHz: 2400, RAMGB: 2,
		DiskCount: 1, DiskGB: 73, DiskRPM: 10000, DiskVendor: "Fujitsu", DiskModel: "MAT3073NC", DiskFW: "5207",
		NICRateGbps: 1, NICDriver: "tg3", BIOSVersion: "V1.33", PowerProfile: "balanced"},
	{Name: "hercule", Site: "lyon", Vendor: "Dell", ModelYear: 2012, NodeCount: 4,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2620", FreqMHz: 2000, RAMGB: 32,
		DiskCount: 2, DiskGB: 2000, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST2000NM0033", DiskFW: "GA04",
		NICRateGbps: 1, NICDriver: "igb", BIOSVersion: "1.6.0", TurboBoost: true, PowerProfile: "balanced"},
	{Name: "orion", Site: "lyon", Vendor: "Dell", ModelYear: 2012, NodeCount: 16,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630", FreqMHz: 2300, RAMGB: 32,
		DiskCount: 1, DiskGB: 2000, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST2000NM0033", DiskFW: "GA04",
		NICRateGbps: 1, NICDriver: "igb", GPUModel: "NVIDIA Tesla M2075",
		BIOSVersion: "1.6.0", TurboBoost: true, PowerProfile: "performance"},
	{Name: "taurus", Site: "lyon", Vendor: "Dell", ModelYear: 2012, NodeCount: 30,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630", FreqMHz: 2300, RAMGB: 32,
		DiskCount: 1, DiskGB: 600, DiskRPM: 10000, DiskVendor: "Seagate", DiskModel: "ST600MM0006", DiskFW: "LS0A",
		NICRateGbps: 1, NICDriver: "igb", Infiniband: "FDR 56G",
		BIOSVersion: "1.6.0", TurboBoost: true, PowerProfile: "balanced"},

	// ---- nancy (7 clusters) ----
	{Name: "graphene", Site: "nancy", Vendor: "Carri", ModelYear: 2010, NodeCount: 64,
		Sockets: 1, CoresPerSocket: 4, CPUModel: "Intel Xeon X3440", FreqMHz: 2530, RAMGB: 16,
		DiskCount: 1, DiskGB: 320, DiskRPM: 7200, DiskVendor: "Hitachi", DiskModel: "HDS72103", DiskFW: "JP4OA3EA",
		NICRateGbps: 1, NICDriver: "r8169", Infiniband: "QDR 40G",
		BIOSVersion: "080016", PowerProfile: "balanced"},
	{Name: "graoully", Site: "nancy", Vendor: "Carri", ModelYear: 2010, NodeCount: 25,
		Sockets: 1, CoresPerSocket: 4, CPUModel: "Intel Xeon X3440", FreqMHz: 2530, RAMGB: 16,
		DiskCount: 1, DiskGB: 320, DiskRPM: 7200, DiskVendor: "Hitachi", DiskModel: "HDS72103", DiskFW: "JP4OA3EA",
		NICRateGbps: 1, NICDriver: "r8169", BIOSVersion: "080016", PowerProfile: "balanced"},
	{Name: "griffon", Site: "nancy", Vendor: "Carri", ModelYear: 2008, NodeCount: 92,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon L5420", FreqMHz: 2500, RAMGB: 16,
		DiskCount: 1, DiskGB: 320, DiskRPM: 7200, DiskVendor: "Hitachi", DiskModel: "HDP72503", DiskFW: "GM3OA52A",
		NICRateGbps: 1, NICDriver: "e1000e", Infiniband: "DDR 20G",
		BIOSVersion: "080015", PowerProfile: "balanced"},
	{Name: "graphite", Site: "nancy", Vendor: "HP", ModelYear: 2013, NodeCount: 4,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2650", FreqMHz: 2000, RAMGB: 256,
		DiskCount: 1, DiskGB: 300, DiskRPM: 15000, DiskVendor: "HP", DiskModel: "EH0300FBQDD", DiskFW: "HPD5",
		NICRateGbps: 1, NICDriver: "tg3", BIOSVersion: "P70", TurboBoost: true, PowerProfile: "performance"},
	{Name: "grimoire", Site: "nancy", Vendor: "Dell", ModelYear: 2015, NodeCount: 8,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630 v3", FreqMHz: 2400, RAMGB: 128,
		DiskCount: 2, DiskGB: 200, DiskRPM: 0, DiskVendor: "Intel", DiskModel: "SSDSC2BX20", DiskFW: "G2010150",
		NICRateGbps: 10, NICDriver: "ixgbe", Infiniband: "FDR 56G",
		BIOSVersion: "1.5.4", TurboBoost: true, PowerProfile: "performance"},
	{Name: "grisou", Site: "nancy", Vendor: "Dell", ModelYear: 2015, NodeCount: 26,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630 v3", FreqMHz: 2400, RAMGB: 128,
		DiskCount: 2, DiskGB: 600, DiskRPM: 0, DiskVendor: "Intel", DiskModel: "SSDSC2BX60", DiskFW: "G2010150",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "1.5.4", TurboBoost: true, PowerProfile: "balanced"},
	{Name: "grillon", Site: "nancy", Vendor: "Dell", ModelYear: 2015, NodeCount: 24,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630 v3", FreqMHz: 2400, RAMGB: 64,
		DiskCount: 1, DiskGB: 600, DiskRPM: 0, DiskVendor: "Intel", DiskModel: "SSDSC2BX60", DiskFW: "G2010140",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "1.5.4", TurboBoost: true, PowerProfile: "balanced"},

	// ---- nantes (2 clusters) ----
	{Name: "econome", Site: "nantes", Vendor: "Dell", ModelYear: 2013, NodeCount: 22,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2660", FreqMHz: 2200, RAMGB: 64,
		DiskCount: 1, DiskGB: 2000, DiskRPM: 7200, DiskVendor: "Toshiba", DiskModel: "MG03ACA200", DiskFW: "FL1A",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "2.2.2", TurboBoost: true, PowerProfile: "balanced"},
	{Name: "ecotype", Site: "nantes", Vendor: "Dell", ModelYear: 2016, NodeCount: 48,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630L v4", FreqMHz: 1800, RAMGB: 128,
		DiskCount: 1, DiskGB: 400, DiskRPM: 0, DiskVendor: "Intel", DiskModel: "SSDSC2BB40", DiskFW: "D2012370",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "2.3.4", TurboBoost: true, PowerProfile: "balanced"},

	// ---- rennes (5 clusters) ----
	{Name: "parapide", Site: "rennes", Vendor: "Sun", ModelYear: 2009, NodeCount: 24,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon X5570", FreqMHz: 2930, RAMGB: 24,
		DiskCount: 1, DiskGB: 500, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3500320NS", DiskFW: "SN06",
		NICRateGbps: 1, NICDriver: "igb", Infiniband: "QDR 40G",
		BIOSVersion: "V2.10", TurboBoost: true, PowerProfile: "balanced"},
	{Name: "paradent", Site: "rennes", Vendor: "Carri", ModelYear: 2009, NodeCount: 24,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon L5420", FreqMHz: 2500, RAMGB: 32,
		DiskCount: 1, DiskGB: 320, DiskRPM: 7200, DiskVendor: "Hitachi", DiskModel: "HDP72503", DiskFW: "GM3OA52A",
		NICRateGbps: 1, NICDriver: "e1000e", BIOSVersion: "080015", PowerProfile: "balanced"},
	{Name: "parasilo", Site: "rennes", Vendor: "Dell", ModelYear: 2015, NodeCount: 20,
		Sockets: 2, CoresPerSocket: 6, CPUModel: "Intel Xeon E5-2630 v3", FreqMHz: 2400, RAMGB: 128,
		DiskCount: 5, DiskGB: 600, DiskRPM: 0, DiskVendor: "Intel", DiskModel: "SSDSC2BX60", DiskFW: "G2010150",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "1.5.4", TurboBoost: true, PowerProfile: "balanced"},
	{Name: "paravance", Site: "rennes", Vendor: "Dell", ModelYear: 2014, NodeCount: 64,
		Sockets: 2, CoresPerSocket: 8, CPUModel: "Intel Xeon E5-2630 v3", FreqMHz: 2400, RAMGB: 128,
		DiskCount: 2, DiskGB: 600, DiskRPM: 0, DiskVendor: "Samsung", DiskModel: "MZ7KM600", DiskFW: "GXM1003Q",
		NICRateGbps: 10, NICDriver: "ixgbe", BIOSVersion: "1.5.4", TurboBoost: true, PowerProfile: "balanced"},
	{Name: "parapluie", Site: "rennes", Vendor: "HP", ModelYear: 2010, NodeCount: 24,
		Sockets: 2, CoresPerSocket: 12, CPUModel: "AMD Opteron 6164 HE", FreqMHz: 1700, RAMGB: 48,
		DiskCount: 1, DiskGB: 250, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3250318AS", DiskFW: "CC38",
		NICRateGbps: 1, NICDriver: "tg3", Infiniband: "QDR 40G",
		BIOSVersion: "O39", PowerProfile: "balanced"},

	// ---- sophia (4 clusters) ----
	{Name: "sol", Site: "sophia", Vendor: "Sun", ModelYear: 2007, NodeCount: 20,
		Sockets: 2, CoresPerSocket: 2, CPUModel: "AMD Opteron 2218", FreqMHz: 2600, RAMGB: 4,
		DiskCount: 1, DiskGB: 250, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3250620NS", DiskFW: "3.AEG",
		NICRateGbps: 1, NICDriver: "e1000", BIOSVersion: "S88", PowerProfile: "balanced"},
	{Name: "suno", Site: "sophia", Vendor: "Dell", ModelYear: 2010, NodeCount: 30,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon E5520", FreqMHz: 2270, RAMGB: 32,
		DiskCount: 1, DiskGB: 600, DiskRPM: 10000, DiskVendor: "Seagate", DiskModel: "ST3600057SS", DiskFW: "ES64",
		NICRateGbps: 1, NICDriver: "bnx2", BIOSVersion: "2.1.15", PowerProfile: "balanced"},
	{Name: "uvb", Site: "sophia", Vendor: "Dell", ModelYear: 2011, NodeCount: 20,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "Intel Xeon X5670", FreqMHz: 2930, RAMGB: 96,
		DiskCount: 1, DiskGB: 250, DiskRPM: 7200, DiskVendor: "WDC", DiskModel: "WD2502ABYS", DiskFW: "02.03B03",
		NICRateGbps: 1, NICDriver: "bnx2", BIOSVersion: "6.1.0", HyperThread: true, PowerProfile: "balanced"},
	{Name: "helios", Site: "sophia", Vendor: "Sun", ModelYear: 2008, NodeCount: 30,
		Sockets: 2, CoresPerSocket: 4, CPUModel: "AMD Opteron 2356", FreqMHz: 2300, RAMGB: 8,
		DiskCount: 1, DiskGB: 250, DiskRPM: 7200, DiskVendor: "Seagate", DiskModel: "ST3250310NS", DiskFW: "SN04",
		NICRateGbps: 1, NICDriver: "e1000", BIOSVersion: "S92", PowerProfile: "balanced"},
}
