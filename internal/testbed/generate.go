package testbed

import "fmt"

// StdKernel is the kernel version of the standard environment that the
// reference description advertises for every node.
const StdKernel = "3.16.0-4-amd64"

// Generate builds a testbed from a cluster specification. Every node of a
// cluster receives an identical inventory (that homogeneity is itself a
// testable property — see the refapi and dellbios test families); MACs and
// switch ports are derived deterministically from the node identity so two
// calls with the same spec produce byte-identical testbeds.
func Generate(spec []ClusterSpec) *Testbed {
	tb := &Testbed{}
	siteIndex := map[string]*Site{}
	siteNo := 0
	for _, cs := range spec {
		site := siteIndex[cs.Site]
		if site == nil {
			site = &Site{Name: cs.Site}
			siteIndex[cs.Site] = site
			tb.Sites = append(tb.Sites, site)
			siteNo++
		}
		cl := &Cluster{
			Name:      cs.Name,
			Site:      cs.Site,
			Vendor:    cs.Vendor,
			ModelYear: cs.ModelYear,
		}
		for i := 1; i <= cs.NodeCount; i++ {
			cl.Nodes = append(cl.Nodes, newNode(cs, i))
		}
		site.Clusters = append(site.Clusters, cl)
	}
	tb.index()
	return tb
}

// Default generates the paper-scale testbed from DefaultSpec.
func Default() *Testbed { return Generate(DefaultSpec) }

// ScaledSpec returns the default specification replicated k times: every
// cluster of DefaultSpec appears k times per site, replicas after the
// first renamed with a deterministic "-rN" suffix ("edel-r2", "edel-r3",
// ...). Node names follow ("edel-r2-5.grenoble"), so two calls with the
// same k produce byte-identical testbeds. k below 1 is treated as 1.
func ScaledSpec(k int) []ClusterSpec {
	if k <= 1 {
		return DefaultSpec
	}
	out := make([]ClusterSpec, 0, len(DefaultSpec)*k)
	out = append(out, DefaultSpec...)
	for rep := 2; rep <= k; rep++ {
		for _, cs := range DefaultSpec {
			cs.Name = fmt.Sprintf("%s-r%d", cs.Name, rep)
			out = append(out, cs)
		}
	}
	return out
}

// Scaled generates a k× testbed (k× clusters, nodes and cores on the same
// 8 sites) for scalability experiments beyond the paper's 894 nodes —
// deterministic, like every generated testbed. Scaled(1) is Default.
func Scaled(k int) *Testbed { return Generate(ScaledSpec(k)) }

func newNode(cs ClusterSpec, idx int) *Node {
	name := fmt.Sprintf("%s-%d.%s", cs.Name, idx, cs.Site)
	inv := Inventory{
		CPU: CPU{
			Model:          cs.CPUModel,
			Sockets:        cs.Sockets,
			CoresPerSocket: cs.CoresPerSocket,
			FreqMHz:        cs.FreqMHz,
			Microcode:      fmt.Sprintf("0x%x", 0x700+cs.ModelYear%100),
		},
		RAMGB: cs.RAMGB,
		BIOS: BIOS{
			Version:        cs.BIOSVersion,
			HyperThreading: cs.HyperThread,
			TurboBoost:     cs.TurboBoost,
			CStates:        false, // reference config: C-states disabled for stable performance
			PowerProfile:   cs.PowerProfile,
		},
		GPUModel:   cs.GPUModel,
		Infiniband: cs.Infiniband,
		OSKernel:   StdKernel,
	}
	for d := 0; d < cs.DiskCount; d++ {
		inv.Disks = append(inv.Disks, Disk{
			Device:     fmt.Sprintf("sd%c", 'a'+d),
			Vendor:     cs.DiskVendor,
			Model:      cs.DiskModel,
			Firmware:   cs.DiskFW,
			CapacityGB: cs.DiskGB,
			RPM:        cs.DiskRPM,
			WriteCache: true, // reference config: write cache enabled
		})
	}
	inv.NICs = []NIC{
		{
			Name:       "eth0",
			RateGbps:   cs.NICRateGbps,
			Driver:     cs.NICDriver,
			MAC:        mac(cs.Name, idx, 0),
			SwitchPort: fmt.Sprintf("sw-%s-%s:%d", cs.Site, cs.Name, idx),
		},
		{
			Name:       "bmc0",
			RateGbps:   1,
			Driver:     "bmc",
			MAC:        mac(cs.Name, idx, 1),
			SwitchPort: fmt.Sprintf("sw-adm-%s-%s:%d", cs.Site, cs.Name, idx),
			Management: true,
		},
	}
	return &Node{
		Name:    name,
		Cluster: cs.Name,
		Site:    cs.Site,
		Index:   idx,
		State:   Alive,
		Inv:     inv,
	}
}

// mac derives a deterministic, unique MAC address from the node identity.
func mac(cluster string, idx, nic int) string {
	h := uint32(2166136261)
	for _, b := range []byte(cluster) {
		h = (h ^ uint32(b)) * 16777619
	}
	return fmt.Sprintf("02:%02x:%02x:%02x:%02x:%02x",
		byte(h>>16), byte(h>>8), byte(h), byte(idx), byte(nic))
}
