// Package testbed models the physical infrastructure of a Grid'5000-like
// testbed: sites, clusters, nodes and their hardware inventories.
//
// This is the substrate that the paper's testing framework exercises. The
// default generated testbed matches the scale reported on slide 6 of the
// paper: 8 sites, 32 clusters, 894 nodes and 8490 cores, with hardware of
// different ages and vendors (slide 12), which is what makes throughout
// testing necessary in the first place.
//
// A node carries a *live* Inventory: the hardware state as it actually is
// right now. The fault injector (internal/faults) mutates live inventories
// without touching the reference description (internal/refapi); detecting
// that drift is the job of internal/checks, our g5k-checks equivalent.
package testbed

import (
	"fmt"
	"sort"
	"sync"
)

// NodeState is the availability state of a node, mirroring OAR's node
// states.
type NodeState int

const (
	// Alive means the node is healthy and schedulable.
	Alive NodeState = iota
	// Absent means the node is administratively removed (maintenance).
	Absent
	// Suspected means a health check failed and the node is quarantined.
	Suspected
	// Dead means the node is out of service.
	Dead
)

// String returns the OAR-style lowercase state name.
func (s NodeState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Absent:
		return "absent"
	case Suspected:
		return "suspected"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// CPU describes a node's processor configuration.
type CPU struct {
	Model          string `json:"model"`
	Sockets        int    `json:"sockets"`
	CoresPerSocket int    `json:"cores_per_socket"`
	FreqMHz        int    `json:"freq_mhz"`
	Microcode      string `json:"microcode"`
}

// Cores returns the total number of cores.
func (c CPU) Cores() int { return c.Sockets * c.CoresPerSocket }

// BIOS captures firmware-level settings. The paper's example bugs (slide 13)
// are mostly here: power management, hyper-threading and turbo boost must be
// homogeneous across a cluster for experiments to be comparable.
type BIOS struct {
	Version        string `json:"version"`
	HyperThreading bool   `json:"hyperthreading"`
	TurboBoost     bool   `json:"turbo_boost"`
	CStates        bool   `json:"c_states"`
	PowerProfile   string `json:"power_profile"`
}

// Disk describes one storage device. Firmware version and write-cache
// setting are first-class because both caused real bugs found by the
// framework (slides 13 and 22).
type Disk struct {
	Device     string `json:"device"` // e.g. "sda"
	Vendor     string `json:"vendor"`
	Model      string `json:"model"`
	Firmware   string `json:"firmware"`
	CapacityGB int    `json:"capacity_gb"`
	RPM        int    `json:"rpm"` // 0 for SSDs
	WriteCache bool   `json:"write_cache"`
}

// SSD reports whether the disk is a solid-state device.
func (d Disk) SSD() bool { return d.RPM == 0 }

// NIC describes one network interface. SwitchPort records the cable's far
// end; cabling mistakes (slide 13: "cabling issue → wrong measurements by
// testbed monitoring service") are modelled by swapping SwitchPort values
// between nodes.
type NIC struct {
	Name       string `json:"name"` // e.g. "eth0"
	RateGbps   int    `json:"rate_gbps"`
	Driver     string `json:"driver"`
	MAC        string `json:"mac"`
	SwitchPort string `json:"switch_port"`
	Management bool   `json:"management"` // BMC-style interface, not for experiments
}

// Inventory is the complete hardware description of one node. The same
// struct serves as both the live state (on Node) and the reference
// description (in refapi), so comparing them is a field-by-field diff.
type Inventory struct {
	CPU        CPU    `json:"cpu"`
	RAMGB      int    `json:"ram_gb"`
	BIOS       BIOS   `json:"bios"`
	Disks      []Disk `json:"disks"`
	NICs       []NIC  `json:"nics"`
	GPUModel   string `json:"gpu_model,omitempty"`  // empty when no GPU
	Infiniband string `json:"infiniband,omitempty"` // e.g. "QDR", empty when none
	OSKernel   string `json:"os_kernel"`            // standard environment kernel
	PTPOffset  int    `json:"ptp_offset_us"`        // clock offset, µs
}

// Clone returns a deep copy of the inventory. Faults mutate clones-in-place
// on the node; refapi snapshots must never alias live state.
func (inv Inventory) Clone() Inventory {
	out := inv
	out.Disks = append([]Disk(nil), inv.Disks...)
	out.NICs = append([]NIC(nil), inv.NICs...)
	return out
}

// HasGPU reports whether the node carries an accelerator.
func (inv Inventory) HasGPU() bool { return inv.GPUModel != "" }

// HasIB reports whether the node has an InfiniBand HCA.
func (inv Inventory) HasIB() bool { return inv.Infiniband != "" }

// Has10G reports whether any experiment NIC runs at ≥10 Gbps.
func (inv Inventory) Has10G() bool {
	for _, n := range inv.NICs {
		if !n.Management && n.RateGbps >= 10 {
			return true
		}
	}
	return false
}

// HasHDD reports whether the node has at least one spinning disk.
func (inv Inventory) HasHDD() bool {
	for _, d := range inv.Disks {
		if !d.SSD() {
			return true
		}
	}
	return false
}

// Node is one machine of the testbed, carrying its live hardware state.
type Node struct {
	Name    string // fully qualified, e.g. "graphene-12.nancy"
	Cluster string
	Site    string
	Index   int // 1-based index within the cluster

	State NodeState
	Inv   Inventory // live inventory, mutated by faults

	// BootCount tracks reboots; multireboot tests use it to verify that a
	// requested reboot actually happened.
	BootCount int
}

// Cores returns the node's total core count.
func (n *Node) Cores() int { return n.Inv.CPU.Cores() }

// Cluster is a named group of (nominally) identical nodes at one site.
type Cluster struct {
	Name      string
	Site      string
	Vendor    string // chassis vendor: Dell, HP, Bull, ...
	ModelYear int    // purchase year; testbeds accumulate hardware of many ages
	Nodes     []*Node
}

// AliveNodes returns the cluster's nodes currently in the Alive state.
func (c *Cluster) AliveNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.State == Alive {
			out = append(out, n)
		}
	}
	return out
}

// Cores returns the total core count of the cluster.
func (c *Cluster) Cores() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Cores()
	}
	return t
}

// Site is one geographical location of the testbed.
type Site struct {
	Name     string
	Clusters []*Cluster
}

// Nodes returns all nodes of the site, in cluster order.
func (s *Site) Nodes() []*Node {
	var out []*Node
	for _, c := range s.Clusters {
		out = append(out, c.Nodes...)
	}
	return out
}

// Testbed is the whole infrastructure.
//
// Concurrency model: the topology (sites, clusters, node identities,
// lookup maps) is immutable after generation and safe to read from any
// goroutine. Mutable node state (State, Inv, BootCount) is owned by the
// simulation's run token — event callbacks and simulation goroutines
// mutate it one at a time (see simclock's concurrency notes). The mutex
// below additionally serializes the node-state flips that arrive from
// subsystem APIs (OAR's oarnodesetting equivalent), so administrative
// state changes are safe against each other even from outside goroutines.
type Testbed struct {
	Sites []*Site

	mu             sync.Mutex
	nodesByName    map[string]*Node
	clustersByName map[string]*Cluster
	sitesByName    map[string]*Site
}

// SetNodeState flips a node's availability state under the testbed mutex.
// It reports whether the node exists.
func (tb *Testbed) SetNodeState(name string, st NodeState) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	n := tb.nodesByName[name]
	if n == nil {
		return false
	}
	n.State = st
	return true
}

// NodeState reads a node's availability state under the testbed mutex.
func (tb *Testbed) NodeState(name string) (NodeState, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	n := tb.nodesByName[name]
	if n == nil {
		return Alive, false
	}
	return n.State, true
}

// index (re)builds the lookup maps. Called by the generator.
func (tb *Testbed) index() {
	tb.nodesByName = make(map[string]*Node)
	tb.clustersByName = make(map[string]*Cluster)
	tb.sitesByName = make(map[string]*Site)
	for _, s := range tb.Sites {
		tb.sitesByName[s.Name] = s
		for _, c := range s.Clusters {
			tb.clustersByName[c.Name] = c
			for _, n := range c.Nodes {
				tb.nodesByName[n.Name] = n
			}
		}
	}
}

// Node returns the node with the given fully qualified name, or nil.
func (tb *Testbed) Node(name string) *Node { return tb.nodesByName[name] }

// Cluster returns the named cluster, or nil.
func (tb *Testbed) Cluster(name string) *Cluster { return tb.clustersByName[name] }

// Site returns the named site, or nil.
func (tb *Testbed) Site(name string) *Site { return tb.sitesByName[name] }

// Nodes returns every node of the testbed in deterministic (site, cluster,
// index) order.
func (tb *Testbed) Nodes() []*Node {
	var out []*Node
	for _, s := range tb.Sites {
		out = append(out, s.Nodes()...)
	}
	return out
}

// Clusters returns every cluster in deterministic order.
func (tb *Testbed) Clusters() []*Cluster {
	var out []*Cluster
	for _, s := range tb.Sites {
		out = append(out, s.Clusters...)
	}
	return out
}

// ClusterNames returns the sorted list of cluster names.
func (tb *Testbed) ClusterNames() []string {
	names := make([]string, 0, len(tb.clustersByName))
	for n := range tb.clustersByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SiteNames returns the sorted list of site names.
func (tb *Testbed) SiteNames() []string {
	names := make([]string, 0, len(tb.sitesByName))
	for n := range tb.sitesByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalNodes returns the node count.
func (tb *Testbed) TotalNodes() int { return len(tb.nodesByName) }

// TotalCores returns the core count across the testbed.
func (tb *Testbed) TotalCores() int {
	t := 0
	for _, n := range tb.nodesByName {
		t += n.Cores()
	}
	return t
}

// Stats is a compact summary of the testbed scale, matching the numbers the
// paper advertises on slide 6.
type Stats struct {
	Sites    int
	Clusters int
	Nodes    int
	Cores    int
}

// Stats computes the scale summary.
func (tb *Testbed) Stats() Stats {
	return Stats{
		Sites:    len(tb.Sites),
		Clusters: len(tb.clustersByName),
		Nodes:    tb.TotalNodes(),
		Cores:    tb.TotalCores(),
	}
}

// String formats the stats like the paper's slide: "8 sites, 32 clusters,
// 894 nodes, 8490 cores".
func (s Stats) String() string {
	return fmt.Sprintf("%d sites, %d clusters, %d nodes, %d cores",
		s.Sites, s.Clusters, s.Nodes, s.Cores)
}
