package testbed

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperScale(t *testing.T) {
	tb := Default()
	st := tb.Stats()
	if st.Sites != 8 {
		t.Errorf("sites = %d, want 8", st.Sites)
	}
	if st.Clusters != 32 {
		t.Errorf("clusters = %d, want 32", st.Clusters)
	}
	if st.Nodes != 894 {
		t.Errorf("nodes = %d, want 894", st.Nodes)
	}
	if st.Cores != 8490 {
		t.Errorf("cores = %d, want 8490", st.Cores)
	}
	if got := st.String(); got != "8 sites, 32 clusters, 894 nodes, 8490 cores" {
		t.Errorf("Stats.String() = %q", got)
	}
}

// The suites package derives its 751 test configurations from these counts;
// pin them here so a spec edit cannot silently change the coverage table.
func TestSpecFamilyCounts(t *testing.T) {
	tb := Default()
	dellRecent, ib, hdd, gpu, tenG := 0, 0, 0, 0, 0
	for _, c := range tb.Clusters() {
		n := c.Nodes[0]
		if c.Vendor == "Dell" && c.ModelYear >= 2013 {
			dellRecent++
		}
		if n.Inv.HasIB() {
			ib++
		}
		if n.Inv.HasHDD() {
			hdd++
		}
		if n.Inv.HasGPU() {
			gpu++
		}
		if n.Inv.Has10G() {
			tenG++
		}
	}
	if dellRecent != 9 {
		t.Errorf("recent Dell clusters = %d, want 9", dellRecent)
	}
	if ib != 6 {
		t.Errorf("InfiniBand clusters = %d, want 6", ib)
	}
	if hdd != 24 {
		t.Errorf("HDD clusters = %d, want 24", hdd)
	}
	if gpu != 2 {
		t.Errorf("GPU clusters = %d, want 2", gpu)
	}
	if tenG != 9 {
		t.Errorf("10G clusters = %d, want 9", tenG)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, b := Default(), Default()
	ja, err := json.Marshal(snapshotForTest(a))
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(snapshotForTest(b))
	if string(ja) != string(jb) {
		t.Fatal("two generations differ")
	}
}

func snapshotForTest(tb *Testbed) map[string]Inventory {
	out := map[string]Inventory{}
	for _, n := range tb.Nodes() {
		out[n.Name] = n.Inv
	}
	return out
}

func TestNodeNaming(t *testing.T) {
	tb := Default()
	n := tb.Node("graphene-12.nancy")
	if n == nil {
		t.Fatal("graphene-12.nancy not found")
	}
	if n.Cluster != "graphene" || n.Site != "nancy" || n.Index != 12 {
		t.Fatalf("bad identity: %+v", n)
	}
	if tb.Node("nonexistent-1.nowhere") != nil {
		t.Fatal("lookup of bogus node succeeded")
	}
}

func TestLookupsConsistent(t *testing.T) {
	tb := Default()
	for _, s := range tb.SiteNames() {
		if tb.Site(s) == nil {
			t.Fatalf("site %q not found by name", s)
		}
	}
	for _, c := range tb.ClusterNames() {
		cl := tb.Cluster(c)
		if cl == nil {
			t.Fatalf("cluster %q not found by name", c)
		}
		for _, n := range cl.Nodes {
			if tb.Node(n.Name) != n {
				t.Fatalf("node %q index mismatch", n.Name)
			}
		}
	}
}

func TestClusterHomogeneity(t *testing.T) {
	tb := Default()
	for _, c := range tb.Clusters() {
		ref, _ := json.Marshal(c.Nodes[0].Inv.CPU)
		for _, n := range c.Nodes[1:] {
			got, _ := json.Marshal(n.Inv.CPU)
			if string(got) != string(ref) {
				t.Fatalf("cluster %s heterogeneous CPUs out of the generator", c.Name)
			}
		}
	}
}

func TestMACUniqueness(t *testing.T) {
	tb := Default()
	seen := map[string]string{}
	for _, n := range tb.Nodes() {
		for _, nic := range n.Inv.NICs {
			if prev, dup := seen[nic.MAC]; dup {
				t.Fatalf("duplicate MAC %s on %s and %s", nic.MAC, prev, n.Name)
			}
			seen[nic.MAC] = n.Name
		}
	}
}

func TestSwitchPortUniqueness(t *testing.T) {
	tb := Default()
	seen := map[string]bool{}
	for _, n := range tb.Nodes() {
		for _, nic := range n.Inv.NICs {
			if seen[nic.SwitchPort] {
				t.Fatalf("duplicate switch port %s", nic.SwitchPort)
			}
			seen[nic.SwitchPort] = true
		}
	}
}

func TestInventoryCloneIsDeep(t *testing.T) {
	tb := Default()
	n := tb.Node("griffon-1.nancy")
	cp := n.Inv.Clone()
	cp.Disks[0].Firmware = "HACKED"
	cp.NICs[0].SwitchPort = "HACKED"
	if n.Inv.Disks[0].Firmware == "HACKED" {
		t.Fatal("Clone shares disk slice")
	}
	if n.Inv.NICs[0].SwitchPort == "HACKED" {
		t.Fatal("Clone shares NIC slice")
	}
}

func TestAliveNodesTracksState(t *testing.T) {
	tb := Default()
	c := tb.Cluster("sol")
	if got := len(c.AliveNodes()); got != len(c.Nodes) {
		t.Fatalf("alive = %d, want %d", got, len(c.Nodes))
	}
	c.Nodes[0].State = Suspected
	c.Nodes[1].State = Dead
	if got := len(c.AliveNodes()); got != len(c.Nodes)-2 {
		t.Fatalf("alive = %d after marking two down", got)
	}
}

func TestNodeStateString(t *testing.T) {
	cases := map[NodeState]string{
		Alive: "alive", Absent: "absent", Suspected: "suspected", Dead: "dead",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if NodeState(42).String() != "NodeState(42)" {
		t.Error("unknown state formatting")
	}
}

func TestInventoryPredicates(t *testing.T) {
	tb := Default()
	if !tb.Node("adonis-1.grenoble").Inv.HasGPU() {
		t.Error("adonis should have GPUs")
	}
	if tb.Node("sol-1.sophia").Inv.HasGPU() {
		t.Error("sol should not have GPUs")
	}
	if !tb.Node("taurus-1.lyon").Inv.HasIB() {
		t.Error("taurus should have InfiniBand")
	}
	if !tb.Node("paravance-1.rennes").Inv.Has10G() {
		t.Error("paravance should have 10G")
	}
	if tb.Node("sagittaire-1.lyon").Inv.Has10G() {
		t.Error("sagittaire should not have 10G")
	}
	if !tb.Node("helios-1.sophia").Inv.HasHDD() {
		t.Error("helios should have HDDs")
	}
	if tb.Node("grisou-1.nancy").Inv.HasHDD() {
		t.Error("grisou is SSD-only")
	}
}

func TestCPUCores(t *testing.T) {
	if c := (CPU{Sockets: 2, CoresPerSocket: 7}).Cores(); c != 14 {
		t.Fatalf("cores = %d, want 14", c)
	}
}

func TestClusterCores(t *testing.T) {
	tb := Default()
	if got := tb.Cluster("paravance").Cores(); got != 64*16 {
		t.Fatalf("paravance cores = %d, want %d", got, 64*16)
	}
	if got := tb.Cluster("dahu").Cores(); got != 13*14 {
		t.Fatalf("dahu cores = %d, want %d", got, 13*14)
	}
}

// Property: every generated MAC address parses as 6 hex octets and is
// locally administered (02: prefix), for any cluster-name/index combination.
func TestMACFormatProperty(t *testing.T) {
	f := func(name string, idx uint8, nic uint8) bool {
		m := mac(name, int(idx), int(nic))
		if len(m) != 17 || m[:3] != "02:" {
			return false
		}
		for i, ch := range m {
			if (i+1)%3 == 0 {
				if ch != ':' {
					return false
				}
			} else if !((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSiteNodes(t *testing.T) {
	tb := Default()
	lux := tb.Site("luxembourg")
	if got := len(lux.Nodes()); got != 38 {
		t.Fatalf("luxembourg nodes = %d, want 38", got)
	}
}

func TestScaledOneIsDefault(t *testing.T) {
	if got, want := Scaled(1).Stats(), Default().Stats(); got != want {
		t.Fatalf("Scaled(1) = %v, want %v", got, want)
	}
	if got := Scaled(0).Stats(); got != Default().Stats() {
		t.Fatalf("Scaled(0) = %v, want default", got)
	}
}

func TestScaledMultipliesEverythingButSites(t *testing.T) {
	base := Default().Stats()
	for _, k := range []int{2, 4} {
		st := Scaled(k).Stats()
		if st.Sites != base.Sites {
			t.Fatalf("Scaled(%d) sites = %d, want %d", k, st.Sites, base.Sites)
		}
		if st.Clusters != k*base.Clusters || st.Nodes != k*base.Nodes || st.Cores != k*base.Cores {
			t.Fatalf("Scaled(%d) = %v, want %d x %v", k, st, k, base)
		}
	}
}

func TestScaledDeterministicAndDistinct(t *testing.T) {
	a, b := Scaled(3), Scaled(3)
	na, nb := a.Nodes(), b.Nodes()
	if len(na) != len(nb) {
		t.Fatalf("node counts differ: %d vs %d", len(na), len(nb))
	}
	seen := map[string]bool{}
	for i := range na {
		if na[i].Name != nb[i].Name {
			t.Fatalf("node %d: %q vs %q", i, na[i].Name, nb[i].Name)
		}
		if na[i].Inv.NICs[0].MAC != nb[i].Inv.NICs[0].MAC {
			t.Fatalf("node %s: MACs differ across generations", na[i].Name)
		}
		if seen[na[i].Name] {
			t.Fatalf("duplicate node name %q", na[i].Name)
		}
		seen[na[i].Name] = true
	}
	// Replicas are real, distinct clusters.
	if a.Cluster("edel") == nil || a.Cluster("edel-r2") == nil || a.Cluster("edel-r3") == nil {
		t.Fatal("scaled replicas missing")
	}
	if a.Cluster("edel-r4") != nil {
		t.Fatal("unexpected replica beyond scale factor")
	}
	if a.Node("edel-r2-1.grenoble") == nil {
		t.Fatal("replica node name not derived deterministically")
	}
}
