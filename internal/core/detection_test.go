package core

// Detection completeness: every fault kind in the catalogue must be caught
// by at least one of the paper's test families. This is the end-to-end
// guarantee that makes the framework worth operating — a fault class no
// test can see would silently corrupt user experiments forever.

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
)

func TestEveryFaultKindIsDetected(t *testing.T) {
	cfg := quietConfig(41)
	cfg.OperatorInterval = 0 // keep bugs open for inspection
	f := New(cfg)

	// One fault kind per cluster/site so detections cannot mask each other.
	// Sampling tests (stdenv, multireboot, console) only visit one node per
	// run, so behavioural kinds are injected on every node of their cluster.
	wholeCluster := func(kind faults.Kind, cluster string) {
		for _, n := range f.TB.Cluster(cluster).Nodes {
			if _, err := f.Faults.InjectNode(kind, n.Name); err != nil {
				t.Fatalf("inject %s on %s: %v", kind, n.Name, err)
			}
		}
	}
	oneNode := func(kind faults.Kind, node string) {
		if _, err := f.Faults.InjectNode(kind, node); err != nil {
			t.Fatalf("inject %s on %s: %v", kind, node, err)
		}
	}

	oneNode(faults.DiskFirmwareDrift, "helios-9.sophia")
	oneNode(faults.DiskCacheOff, "suno-9.sophia")
	wholeCluster(faults.DiskDying, "paradent")
	oneNode(faults.CStatesOn, "edel-3.grenoble")
	oneNode(faults.HyperThreadFlip, "uvb-3.sophia")
	oneNode(faults.TurboFlip, "orion-3.lyon")
	oneNode(faults.RAMLoss, "genepi-3.grenoble")
	wholeCluster(faults.WrongKernel, "sagittaire")
	if _, err := f.Faults.InjectCablingSwap("griffon-5.nancy", "griffon-6.nancy"); err != nil {
		t.Fatal(err)
	}
	wholeCluster(faults.RandomReboots, "graphite")
	wholeCluster(faults.BootDelay, "hercule")
	wholeCluster(faults.OFEDFlaky, "taurus")
	wholeCluster(faults.ConsoleBroken, "sol")
	if _, err := f.Faults.InjectService("nancy", "api", 0.9); err != nil {
		t.Fatal(err)
	}

	f.Start()
	f.RunFor(8 * simclock.Day)

	found := map[string]bool{}
	for _, b := range f.Bugs.All() {
		kind, _, _ := strings.Cut(b.Signature, ":")
		found[kind] = true
	}
	for _, k := range faults.AllKinds {
		if !found[string(k)] {
			t.Errorf("fault kind %s never detected by any test family", k)
		}
	}
	// And the cabling swap must carry the exact pair signature, so the
	// operator fix path can undo it.
	if f.Bugs.BySignature("cabling-swap:griffon-5.nancy+griffon-6.nancy") == nil {
		t.Error("cabling swap not filed with the pair signature")
	}
}
