package core

// End-to-end integration tests: the full framework plus the status page
// consuming the CI REST API over real HTTP — the complete loop of the
// paper, from silent fault to red cell on the web page to green again.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/status"
)

func TestEndToEndStatusPageShowsFaultAndRecovery(t *testing.T) {
	cfg := quietConfig(21)
	cfg.OperatorMinAge = simclock.Day
	f := New(cfg)
	f.Start()

	ts := httptest.NewServer(f.CI.Handler())
	defer ts.Close()
	client := status.NewClient(ts.URL)

	// Break suno's disks silently, run half a day of testing.
	f.Faults.InjectNode(faults.DiskCacheOff, "suno-5.sophia")
	f.RunFor(18 * simclock.Hour)

	grid, err := client.BuildGrid()
	if err != nil {
		t.Fatal(err)
	}
	if st := grid.Cell("refapi", "suno"); st.Result != "FAILURE" {
		t.Fatalf("refapi/suno = %q, want FAILURE", st.Result)
	}
	// Transposed view has the row too.
	rep := grid.ReportFor("suno")
	failures := 0
	for _, row := range rep.Rows {
		if row.Status.Result == "FAILURE" {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("per-target report shows no failure")
	}

	// HTML page renders the red cell.
	var buf bytes.Buffer
	if err := grid.RenderHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `class="FAILURE"`) {
		t.Fatal("HTML page has no failure cell")
	}

	// Operators fix it; the next daily wave turns the cell green.
	f.RunFor(3 * simclock.Day)
	grid, _ = client.BuildGrid()
	if st := grid.Cell("refapi", "suno"); st.Result != "SUCCESS" {
		t.Fatalf("refapi/suno after fix = %q, want SUCCESS", st.Result)
	}
	if f.Faults.ActiveCount() != 0 {
		t.Fatalf("faults still active: %v", f.Faults.Active())
	}
}

func TestEndToEndTrendFromAPI(t *testing.T) {
	cfg := quietConfig(22)
	f := New(cfg)
	f.Start()
	f.RunFor(3 * simclock.Day)

	ts := httptest.NewServer(f.CI.Handler())
	defer ts.Close()
	builds, err := status.NewClient(ts.URL).AllBuilds()
	if err != nil {
		t.Fatal(err)
	}
	pts := status.Trend(builds, float64(simclock.Day/simclock.Second))
	if len(pts) < 2 {
		t.Fatalf("trend points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Total > 0 && (p.Rate < 0.9 || p.Rate > 1.0) {
			t.Fatalf("healthy trend point out of range: %+v", p)
		}
	}
}

func TestEndToEndManualTriggerViaAPI(t *testing.T) {
	f := New(quietConfig(23))
	f.Start()
	f.CI.AddToken("s3cret", "lucas")
	f.RunFor(simclock.Hour)

	ts := httptest.NewServer(f.CI.Handler())
	defer ts.Close()

	// Users can manually trigger a job through the web interface
	// (slide 20: "access control for users to trigger jobs manually").
	resp, err := http.Post(ts.URL+"/job/refapi/sol/build?token=s3cret", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trigger status = %d", resp.StatusCode)
	}
	f.RunFor(simclock.Hour)
	last := f.CI.LastCompleted("refapi/sol")
	if last == nil || last.Cause != "user lucas" {
		t.Fatalf("manual build = %+v", last)
	}
}
