package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/suites"
)

func TestAddExperimentsBeforeStart(t *testing.T) {
	f := New(quietConfig(31))
	err := f.AddExperiments(&suites.Experiment{
		Name: "alice-io", Owner: "alice", Cluster: "suno", Nodes: 2,
		Env: "jessie-x64-std", Workload: suites.WorkloadDiskIO,
		Baseline: 140, Tolerance: 0.1, Period: simclock.Day,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	found := false
	for _, name := range f.Sched.SpecNames() {
		if name == "regression/alice-io" {
			found = true
		}
	}
	if !found {
		t.Fatal("regression spec not registered")
	}
	// It runs and passes on a healthy testbed.
	f.RunFor(simclock.Day)
	last := f.CI.LastCompleted("regression/alice-io")
	if last == nil {
		t.Fatal("regression test never ran")
	}
	if last.Result.String() != "SUCCESS" {
		t.Fatalf("healthy regression = %v", last.Result)
	}
}

func TestAddExperimentsAfterStartDetectsRegression(t *testing.T) {
	cfg := quietConfig(32)
	cfg.OperatorInterval = 0 // keep the bug open for inspection
	f := New(cfg)
	f.Start()
	f.RunFor(simclock.Hour)

	if err := f.AddExperiments(&suites.Experiment{
		Name: "bob-io", Owner: "bob", Cluster: "helios", Nodes: 1,
		Env: "jessie-x64-std", Workload: suites.WorkloadDiskIO,
		Baseline: 110, Tolerance: 0.1, Period: simclock.Day,
	}); err != nil {
		t.Fatal(err)
	}
	// Kill the disks of the whole cluster so whichever node the replay
	// lands on regresses.
	for _, n := range f.TB.Cluster("helios").Nodes {
		f.Faults.InjectNode(faults.DiskDying, n.Name)
	}
	f.RunFor(2 * simclock.Day)

	// The replay itself must have failed with a diagnosis. (The disk test
	// family catches the same fault independently, so the *bug* may be
	// credited to whichever family detected it first — that is the dedup
	// working as intended.)
	replayFailed := false
	for _, b := range f.CI.Builds("regression/bob-io") {
		if b.Result.String() == "FAILURE" && len(b.BugSignatures) > 0 {
			replayFailed = true
			if b.BugSignatures[0][:11] != "disk-dying:" {
				t.Fatalf("replay diagnosis = %v", b.BugSignatures)
			}
		}
	}
	if !replayFailed {
		t.Fatal("user experiment replay never regressed")
	}
	if f.Bugs.BySignature("disk-dying:helios-1.sophia") == nil &&
		f.Bugs.BySignature("disk-dying:helios-2.sophia") == nil {
		t.Fatal("no disk-dying bug filed at all")
	}
}

func TestAddExperimentsRejectsInvalid(t *testing.T) {
	f := New(quietConfig(33))
	if err := f.AddExperiments(&suites.Experiment{Name: "x"}); err == nil {
		t.Fatal("invalid experiment accepted")
	}
}
