package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/oar"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// quietConfig disables background entropy so tests control everything.
func quietConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.InitialFaults = 0
	cfg.FaultMeanInterval = 0
	cfg.UserJobInterval = 0
	cfg.EnvMatrixPeriod = 0
	return cfg
}

func TestFrameworkWiring(t *testing.T) {
	f := New(quietConfig(1))
	f.Start()
	// 303 simple jobs + environments matrix.
	if got := len(f.CI.JobNames()); got != 304 {
		t.Fatalf("CI jobs = %d, want 304", got)
	}
	if got := len(f.Sched.SpecNames()); got != 303 {
		t.Fatalf("specs = %d, want 303", got)
	}
	// Start is idempotent.
	f.Start()
	if got := len(f.CI.JobNames()); got != 304 {
		t.Fatalf("double Start duplicated jobs: %d", got)
	}
}

func TestHealthyWeekIsNearlyAllGreen(t *testing.T) {
	f := New(quietConfig(2))
	f.Start()
	f.RunFor(simclock.Week)
	weekly := f.WeeklyReport()
	if len(weekly) == 0 {
		t.Fatal("no builds after a week")
	}
	total, success := 0, 0
	for _, w := range weekly {
		total += w.Total()
		success += w.Success
	}
	if total < 500 {
		t.Fatalf("only %d verdicts in a week", total)
	}
	rate := float64(success) / float64(total)
	if rate < 0.97 {
		t.Fatalf("healthy success rate = %.3f", rate)
	}
	if st := f.Bugs.Stats(); st.Filed > 5 {
		t.Fatalf("healthy testbed filed %d bugs", st.Filed)
	}
}

func TestFaultIsDetectedFiledFixedAndRecovers(t *testing.T) {
	cfg := quietConfig(3)
	cfg.OperatorMinAge = simclock.Hour
	f := New(cfg)
	f.Start()
	// Let the first clean wave pass.
	f.RunFor(simclock.Day)
	flt, err := f.Faults.InjectNode(faults.CStatesOn, "taurus-3.lyon")
	if err != nil {
		t.Fatal(err)
	}
	f.RunFor(3 * simclock.Day)

	bug := f.Bugs.BySignature("cstates-on:taurus-3.lyon")
	if bug == nil {
		t.Fatal("fault never became a bug")
	}
	if bug.State.String() != "fixed" {
		t.Fatalf("bug not fixed after 3 days: %+v", bug)
	}
	if !flt.Fixed {
		t.Fatal("fixing the bug did not remove the fault")
	}
	// The description matches again.
	rep, _ := f.Checker.CheckNode("taurus-3.lyon")
	if !rep.OK {
		t.Fatalf("node still drifted after fix: %v", rep.Mismatches)
	}
}

func TestBugDedupAcrossRepeatedDetections(t *testing.T) {
	cfg := quietConfig(4)
	cfg.OperatorInterval = 0 // nobody fixes anything
	f := New(cfg)
	f.Start()
	f.Faults.InjectNode(faults.DiskCacheOff, "suno-4.sophia")
	f.RunFor(4 * simclock.Day) // several daily refapi runs
	bug := f.Bugs.BySignature("disk-cache-off:suno-4.sophia")
	if bug == nil {
		t.Fatal("bug not filed")
	}
	if bug.Occurrences < 3 {
		t.Fatalf("occurrences = %d, expected several daily detections", bug.Occurrences)
	}
	if st := f.Bugs.Stats(); st.Filed != 1 {
		t.Fatalf("filed = %d, dedup failed", st.Filed)
	}
}

func TestRandomRebootsQuarantinesNode(t *testing.T) {
	cfg := quietConfig(5)
	cfg.OperatorInterval = 0
	f := New(cfg)
	f.Start()
	f.Faults.InjectNode(faults.RandomReboots, "graphite-2.nancy")
	// multireboot (weekly) or stdenv (daily) will catch it eventually.
	f.RunFor(2 * simclock.Week)
	bug := f.Bugs.BySignature("random-reboots:graphite-2.nancy")
	if bug == nil {
		t.Skip("fault not exercised by node-sampling tests in this window (seed-dependent)")
	}
	if f.TB.Node("graphite-2.nancy").State != testbed.Suspected {
		t.Fatal("flaky node not quarantined")
	}
}

func TestOperatorHealsDegradedSite(t *testing.T) {
	cfg := quietConfig(6)
	cfg.OperatorMinAge = simclock.Hour
	f := New(cfg)
	f.Start()
	for _, n := range f.TB.Site("luxembourg").Nodes()[:6] { // 6/38 > 10%
		n.State = testbed.Suspected
	}
	f.RunFor(3 * simclock.Day)
	bug := f.Bugs.BySignature("oarstate-degraded:luxembourg")
	if bug == nil {
		t.Fatal("degraded site not reported")
	}
	alive := 0
	for _, n := range f.TB.Site("luxembourg").Nodes() {
		if n.State == testbed.Alive {
			alive++
		}
	}
	if alive != 38 {
		t.Fatalf("site not healed: %d/38 alive", alive)
	}
}

func TestEnvMatrixRunsAndRetries(t *testing.T) {
	cfg := quietConfig(7)
	cfg.EnvMatrixPeriod = simclock.Week
	cfg.EnvMatrixRetries = 2
	f := New(cfg)
	f.Start()
	// Keep one cluster fully busy so its 14 cells go unstable.
	f.Clock.After(30*simclock.Minute, func() {
		f.OAR.Submit("cluster='sol'/nodes=ALL,walltime=300", oar.SubmitOptions{User: "user"})
	})
	f.RunFor(3 * simclock.Day)
	builds := f.CI.Builds("environments")
	var parents, cells14 int
	for _, b := range builds {
		if b.Cell == nil {
			parents++
		} else if b.Parent > 1 && b.Cell["cluster"] == "sol" {
			cells14++
		}
	}
	// Initial run + 2 matrix-reloaded retries.
	if parents != 3 {
		t.Fatalf("environment matrix parents = %d, want 3", parents)
	}
	// The two retries re-ran only sol's 14 unstable cells each.
	if cells14 != 28 {
		t.Fatalf("retried sol cells = %d, want 28", cells14)
	}
}

func TestWeeklyReportOrdering(t *testing.T) {
	f := New(quietConfig(8))
	f.Start()
	f.RunFor(2*simclock.Week + simclock.Day)
	weekly := f.WeeklyReport()
	if len(weekly) < 2 {
		t.Fatalf("weeks = %d", len(weekly))
	}
	for i := 1; i < len(weekly); i++ {
		if weekly[i].Week <= weekly[i-1].Week {
			t.Fatal("weeks out of order")
		}
	}
}

func TestSummaryString(t *testing.T) {
	f := New(quietConfig(9))
	f.Start()
	f.RunFor(simclock.Week)
	s := f.Summary()
	if s.Builds == 0 {
		t.Fatal("no builds in summary")
	}
	if !strings.Contains(s.String(), "bugs filed") {
		t.Fatalf("summary = %q", s.String())
	}
}

func TestRolloutDelaysFamilies(t *testing.T) {
	cfg := quietConfig(10)
	cfg.Rollout = map[string]simclock.Time{"disk": 2 * simclock.Week}
	f := New(cfg)
	f.Start()
	f.RunFor(simclock.Day)
	for _, name := range f.Sched.SpecNames() {
		if strings.HasPrefix(name, "disk/") {
			t.Fatal("disk specs registered before rollout time")
		}
	}
	f.RunFor(2 * simclock.Week)
	found := false
	for _, name := range f.Sched.SpecNames() {
		if strings.HasPrefix(name, "disk/") {
			found = true
		}
	}
	if !found {
		t.Fatal("disk specs never registered")
	}
}

func TestUserLoadOccupiesTestbed(t *testing.T) {
	cfg := quietConfig(11)
	cfg.UserJobInterval = 10 * simclock.Minute
	cfg.UserMeanWalltime = 4 * simclock.Hour
	f := New(cfg)
	f.Start()
	f.RunFor(2 * simclock.Day)
	if f.OAR.BusyNodes() < 50 {
		t.Fatalf("user load too light: %d nodes busy", f.OAR.BusyNodes())
	}
}

func TestTitleForSignature(t *testing.T) {
	got := titleForSignature("disk-cache-off:sol-1.sophia")
	if got != "disk cache off: sol-1.sophia" {
		t.Fatalf("title = %q", got)
	}
}
