package core

// The operations model: everything that happens *around* the testing
// framework on a live testbed — users, entropy, and operators reacting to
// bug reports. This is what turns the framework into the paper's
// evaluation: bug counts (slide 22) and the reliability trend (slide 23).

import (
	"fmt"
	"strings"

	"repro/internal/bugs"
	"repro/internal/ci"
	"repro/internal/oar"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// ---- build observation ---------------------------------------------------

// onBuildComplete runs for every finished build (cells and parents).
func (f *Framework) onBuildComplete(b *ci.Build) {
	// Matrix parents: retry failed cells (Matrix Reloaded), but do not
	// count them — their cells are counted individually.
	if len(b.CellBuilds) > 0 || (b.Cell == nil && b.Job == "environments") {
		f.maybeRetryEnvMatrix(b)
		return
	}

	// Weekly statistics: counters update in place, so WeeklyReport and
	// Summary never rescan anything.
	week := int(b.EndedAt / simclock.Week)
	for week >= len(f.weekly) {
		f.weekly = append(f.weekly, WeekCounts{Week: len(f.weekly)})
	}
	wc := &f.weekly[week]
	switch b.Result {
	case ci.Success:
		wc.Success++
	case ci.Failure, ci.Aborted:
		wc.Failure++
	case ci.Unstable:
		wc.Unstable++
	}

	// Bug filing from the build's signatures (slide 11: the framework is
	// the bug reporter of record; dedup keeps nightly re-detections from
	// opening duplicate tickets).
	family := b.Job
	if i := strings.IndexByte(family, '/'); i > 0 {
		family = family[:i]
	}
	target := b.Job
	if b.Cell != nil {
		target = b.Cell["cluster"]
	}
	for _, sig := range b.BugSignatures {
		// Render the operator-facing title only when the signature is new —
		// nightly re-detections of a known bug skip the formatting.
		var title string
		if f.Bugs.BySignature(sig) == nil {
			title = titleForSignature(sig)
		}
		f.Bugs.File(sig, title, family, target)
		// The framework quarantines hardware that eats deployments, like
		// kadeploy suspecting nodes on a real testbed.
		if node, ok := strings.CutPrefix(sig, "random-reboots:"); ok {
			f.OAR.SetNodeState(node, testbed.Suspected) //nolint:errcheck
		}
	}
}

// titleForSignature renders an operator-friendly bug title.
func titleForSignature(sig string) string {
	kind, rest, _ := strings.Cut(sig, ":")
	return fmt.Sprintf("%s: %s", strings.ReplaceAll(kind, "-", " "), rest)
}

// ---- fault process --------------------------------------------------------

func (f *Framework) startFaultProcess() {
	for i := 0; i < f.Cfg.InitialFaults; i++ {
		f.Faults.InjectRandom()
	}
	if f.Cfg.FaultMeanInterval <= 0 {
		return
	}
	var arm func()
	arm = func() {
		delay := simclock.Exponential(f.Clock.Rand(), f.Cfg.FaultMeanInterval)
		f.Clock.After(delay, func() {
			f.Faults.InjectRandom()
			arm()
		})
	}
	arm()
}

// ---- operator model --------------------------------------------------------

func (f *Framework) startOperatorProcess() {
	if f.Cfg.OperatorInterval <= 0 {
		return
	}
	f.Clock.Every(f.Cfg.OperatorInterval, f.operatorPass)
}

// operatorPass fixes up to FixesPerPass of the oldest sufficiently aged
// open bugs: resolve the root cause (remove the fault / heal the node),
// then close the ticket. Candidates are collected first (into a reused
// buffer, walking the tracker's open index without copying it), because
// fixing mutates the index mid-walk.
func (f *Framework) operatorPass() {
	if f.Cfg.FixesPerPass <= 0 {
		return
	}
	now := f.Clock.Now()
	todo := f.fixScratch[:0]
	f.Bugs.EachOpen(func(b *bugs.Bug) bool {
		if now-b.FiledAt >= f.Cfg.OperatorMinAge {
			todo = append(todo, b)
		}
		return len(todo) < f.Cfg.FixesPerPass
	})
	f.fixScratch = todo[:0]
	for _, b := range todo {
		f.resolveRootCause(b.Signature)
		f.Bugs.Fix(b.ID) //nolint:errcheck // open by construction
	}
}

// resolveRootCause undoes whatever the bug signature points at. Signatures
// produced by the test suites share the fault injector's namespace, so the
// common case is a direct lookup.
func (f *Framework) resolveRootCause(sig string) {
	f.Faults.FixBySignature(sig)

	switch {
	case strings.HasPrefix(sig, "oarstate-degraded:"):
		site := strings.TrimPrefix(sig, "oarstate-degraded:")
		if s := f.TB.Site(site); s != nil {
			for _, n := range s.Nodes() {
				if n.State != testbed.Alive {
					f.OAR.SetNodeState(n.Name, testbed.Alive) //nolint:errcheck
				}
			}
		}
	default:
		// Node-scoped signatures: return the node to production after the
		// repair (operators re-run oarnodesetting).
		if _, rest, ok := strings.Cut(sig, ":"); ok {
			for _, node := range strings.Split(rest, "+") {
				if f.TB.Node(node) != nil {
					f.OAR.SetNodeState(node, testbed.Alive) //nolint:errcheck
				}
			}
		}
	}
}

// ---- user workload ---------------------------------------------------------

func (f *Framework) startUserLoad() {
	if f.Cfg.UserJobInterval <= 0 {
		return
	}
	var arm func()
	arm = func() {
		delay := simclock.Exponential(f.Clock.Rand(), f.Cfg.UserJobInterval)
		f.Clock.After(delay, func() {
			f.submitUserJob()
			arm()
		})
	}
	arm()
}

func (f *Framework) submitUserJob() {
	rng := f.Clock.Rand()
	cl := simclock.Pick(rng, f.clusters)
	wall := simclock.Exponential(rng, f.Cfg.UserMeanWalltime)
	if wall < 10*simclock.Minute {
		wall = 10 * simclock.Minute
	}
	var req string
	if simclock.Bernoulli(rng, f.Cfg.WholeClusterFrac) {
		req = fmt.Sprintf("cluster='%s'/nodes=ALL,walltime=%d:00:00", cl.Name,
			int(wall/simclock.Hour)+1)
	} else {
		maxN := f.Cfg.UserMaxNodes
		if maxN <= 0 {
			maxN = 10
		}
		if maxN > len(cl.Nodes) {
			maxN = len(cl.Nodes)
		}
		n := 1 + rng.Intn(maxN)
		req = fmt.Sprintf("cluster='%s'/nodes=%d,walltime=%d:00:00", cl.Name, n,
			int(wall/simclock.Hour)+1)
	}
	j, err := f.OAR.Submit(req, oar.SubmitOptions{User: "user"})
	if err != nil {
		return
	}
	// Users abandon jobs stuck in the queue for a day, so unsatisfiable
	// whole-cluster requests (e.g. a suspected node) don't clog the queue
	// forever.
	f.Clock.After(simclock.Day, func() {
		if j.State == oar.Waiting {
			f.OAR.Cancel(j.ID) //nolint:errcheck
		}
	})
}

// ---- environments matrix cron ----------------------------------------------

func (f *Framework) startEnvMatrixCron() {
	if f.Cfg.EnvMatrixPeriod <= 0 {
		return
	}
	fire := func() {
		if b, err := f.CI.Trigger("environments", "cron"); err == nil {
			f.envRetries[b.Number] = 0
		}
	}
	// First full run shortly after start, then periodically.
	f.Clock.After(simclock.Hour, fire)
	f.Clock.Every(f.Cfg.EnvMatrixPeriod, fire)
}

// maybeRetryEnvMatrix implements the Matrix Reloaded flow: when an
// environments parent completes with non-success cells, retry only those
// cells a couple of hours later, a bounded number of times.
func (f *Framework) maybeRetryEnvMatrix(parent *ci.Build) {
	if parent.Job != "environments" || !parent.Completed() {
		return
	}
	gen, tracked := f.envRetries[parent.Number]
	if !tracked {
		return
	}
	delete(f.envRetries, parent.Number)
	if parent.Result == ci.Success || gen >= f.Cfg.EnvMatrixRetries {
		return
	}
	parentNum := parent.Number
	f.Clock.After(2*simclock.Hour, func() {
		b, err := f.CI.RetryFailedCells("environments", parentNum, "matrix-reloaded")
		if err == nil {
			f.envRetries[b.Number] = gen + 1
		}
	})
}

// ---- reporting ---------------------------------------------------------------

// WeeklyReport returns per-week build statistics in week order. The
// counters are already aggregated (onBuildComplete updates them in place),
// so this is a straight copy — weeks in which nothing completed are
// skipped, matching the sparse report of the previous implementation.
func (f *Framework) WeeklyReport() []WeekCounts {
	out := make([]WeekCounts, 0, len(f.weekly))
	for _, w := range f.weekly {
		if w.Success == 0 && w.Failure == 0 && w.Unstable == 0 {
			continue
		}
		out = append(out, w)
	}
	return out
}

// CampaignSummary condenses a whole run.
type CampaignSummary struct {
	Duration     simclock.Time
	Builds       int
	BugsFiled    int
	BugsFixed    int
	BugsOpen     int
	ActiveFaults int
	FirstWeek    WeekCounts
	LastWeek     WeekCounts
}

func (s CampaignSummary) String() string {
	return fmt.Sprintf(
		"after %v: %d builds, %d bugs filed (inc. %d already fixed), success %0.f%% → %0.f%%",
		s.Duration, s.Builds, s.BugsFiled, s.BugsFixed,
		100*s.FirstWeek.Rate(), 100*s.LastWeek.Rate())
}

// TrendWeeks selects the first and last weeks with meaningful build volume
// (≥ 20 verdicts) from a weekly report — the endpoints of the paper's
// slide-23 trend. Exported because federated campaigns re-apply the same
// rule to a cross-site merged report (internal/federation).
func TrendWeeks(weekly []WeekCounts) (first, last WeekCounts) {
	for _, w := range weekly {
		if w.Total() >= 20 {
			first = w
			break
		}
	}
	for i := len(weekly) - 1; i >= 0; i-- {
		if weekly[i].Total() >= 20 {
			last = weekly[i]
			break
		}
	}
	return first, last
}

// Summary reports the campaign state so far.
func (f *Framework) Summary() CampaignSummary {
	st := f.Bugs.Stats()
	out := CampaignSummary{
		Duration:     f.Clock.Now(),
		Builds:       f.CI.TotalBuilds(),
		BugsFiled:    st.Filed,
		BugsFixed:    st.Fixed,
		BugsOpen:     st.Open,
		ActiveFaults: f.Faults.ActiveCount(),
	}
	out.FirstWeek, out.LastWeek = TrendWeeks(f.WeeklyReport())
	return out
}
