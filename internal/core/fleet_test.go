package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/ci"
	"repro/internal/simclock"
)

// fleetTestConfig is a scaled-down campaign profile so fleet tests stay
// fast under -race: no 448-cell matrix, lighter user load, quick operators.
func fleetTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Executors = 4
	cfg.InitialFaults = 6
	cfg.FaultMeanInterval = 4 * simclock.Hour
	cfg.OperatorInterval = 3 * simclock.Hour
	cfg.OperatorMinAge = 2 * simclock.Hour
	cfg.UserJobInterval = simclock.Hour
	cfg.EnvMatrixPeriod = 0
	return cfg
}

// TestFleetDeterministicAcrossParallelism runs the same seed sweep serially
// and at 4-way parallelism: per-seed campaign outcomes must be identical —
// the whole point of one-simclock-per-campaign isolation.
func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	fc := FleetConfig{
		Seeds:     SeedRange(7, 4),
		Duration:  2 * simclock.Day,
		Configure: fleetTestConfig,
	}
	fc.Parallel = 1
	serial := RunFleet(fc)
	fc.Parallel = 4
	parallel := RunFleet(fc)

	if len(serial.Campaigns) != 4 || len(parallel.Campaigns) != 4 {
		t.Fatalf("campaign counts: %d vs %d", len(serial.Campaigns), len(parallel.Campaigns))
	}
	for i := range serial.Campaigns {
		s, p := serial.Campaigns[i], parallel.Campaigns[i]
		if s.Seed != p.Seed {
			t.Fatalf("seed order diverged: %d vs %d", s.Seed, p.Seed)
		}
		if s.Summary != p.Summary {
			t.Errorf("seed %d: summary diverged:\n serial:   %+v\n parallel: %+v", s.Seed, s.Summary, p.Summary)
		}
		if !reflect.DeepEqual(s.Weekly, p.Weekly) {
			t.Errorf("seed %d: weekly trend diverged", s.Seed)
		}
	}
	if serial.BugsFiled.N != 4 || serial.BugsFiled.Mean <= 0 {
		t.Fatalf("bug aggregate looks empty: %+v", serial.BugsFiled)
	}
	if serial.BugsFiled.Min > serial.BugsFiled.Mean || serial.BugsFiled.Max < serial.BugsFiled.Mean {
		t.Fatalf("aggregate invariant violated: %+v", serial.BugsFiled)
	}
}

// TestFleetOverlappingSweeps drives two fleets concurrently with
// overlapping seed ranges — the shape a parameter study produces — and
// checks both complete and agree on the shared seeds. Run under -race this
// doubles as the fleet's data-race proof.
func TestFleetOverlappingSweeps(t *testing.T) {
	mk := func(base int64) FleetConfig {
		return FleetConfig{
			Seeds:     SeedRange(base, 3),
			Parallel:  3,
			Duration:  2 * simclock.Day,
			Configure: fleetTestConfig,
		}
	}
	var wg sync.WaitGroup
	var a, b *FleetResult
	wg.Add(2)
	go func() { defer wg.Done(); a = RunFleet(mk(20)) }() // seeds 20,21,22
	go func() { defer wg.Done(); b = RunFleet(mk(22)) }() // seeds 22,23,24
	wg.Wait()

	if len(a.Campaigns) != 3 || len(b.Campaigns) != 3 {
		t.Fatalf("campaigns: %d and %d", len(a.Campaigns), len(b.Campaigns))
	}
	// Seed 22 ran in both fleets, concurrently: outcomes must match.
	if a.Campaigns[2].Summary != b.Campaigns[0].Summary {
		t.Errorf("seed 22 diverged across overlapping fleets:\n %+v\n %+v",
			a.Campaigns[2].Summary, b.Campaigns[0].Summary)
	}
	for _, r := range []*FleetResult{a, b} {
		for i := range r.Campaigns {
			if r.Campaigns[i].Summary.Builds == 0 {
				t.Errorf("seed %d: no builds completed", r.Campaigns[i].Seed)
			}
		}
	}
}

// TestWeeklyCountersMatchRecount is the equivalence proof for the
// incremental weekly statistics: an independent recount (a second
// OnComplete listener applying the same classification) must agree with
// WeeklyReport after a long mixed campaign — faults, user load, matrix
// retries, operator fixes and all.
func TestWeeklyCountersMatchRecount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.InitialFaults = 12
	f := New(cfg)

	recount := map[int]*WeekCounts{}
	f.CI.OnComplete(func(b *ci.Build) {
		if len(b.CellBuilds) > 0 || (b.Cell == nil && b.Job == "environments") {
			return // matrix parents are not counted; their cells are
		}
		week := int(b.EndedAt / simclock.Week)
		wc := recount[week]
		if wc == nil {
			wc = &WeekCounts{Week: week}
			recount[week] = wc
		}
		switch b.Result {
		case ci.Success:
			wc.Success++
		case ci.Failure, ci.Aborted:
			wc.Failure++
		case ci.Unstable:
			wc.Unstable++
		}
	})

	f.Start()
	f.RunFor(16 * simclock.Day)

	weekly := f.WeeklyReport()
	if len(weekly) < 3 {
		t.Fatalf("campaign too short: %d weeks", len(weekly))
	}
	total := 0
	for _, w := range weekly {
		rw := recount[w.Week]
		if rw == nil {
			t.Fatalf("week %d reported but not recounted", w.Week)
		}
		if w.Success != rw.Success || w.Failure != rw.Failure || w.Unstable != rw.Unstable {
			t.Errorf("week %d diverged: incremental %+v, recount %+v", w.Week, w, *rw)
		}
		total += w.Total()
	}
	if total == 0 {
		t.Fatal("no verdicts counted")
	}
	if len(recount) != len(weekly) {
		t.Errorf("week sets differ: recount has %d, report has %d", len(recount), len(weekly))
	}
}
