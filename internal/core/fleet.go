package core

// Fleet: parallel multi-seed campaign sweeps.
//
// A single campaign is a pure function of (seed, configuration) on one
// simulated clock — inherently serial. But sensitivity questions (how
// robust is the 85%→93% trend to the fault draw? what is the spread of
// bugs filed?) need many campaigns, Monte-Carlo style, like the
// percentile-bootstrap sensitivity analyses of the statistical literature
// re-run an estimator over hundreds of resamples. Campaigns with
// different seeds share nothing — each Framework owns its own simclock,
// testbed and RNG — so a fleet runs them on real OS threads across
// GOMAXPROCS cores, race-free by construction, and aggregates the
// trend/bug statistics with mean ± spread.

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/simclock"
)

// FleetConfig describes a multi-seed campaign sweep.
type FleetConfig struct {
	// Seeds are the campaign seeds, one campaign per seed (see SeedRange).
	Seeds []int64
	// Parallel is the number of campaigns simulated concurrently on real
	// goroutines. 0 means GOMAXPROCS.
	Parallel int
	// Duration is the simulated length of each campaign (0 = 10 weeks,
	// the paper's trend window).
	Duration simclock.Time
	// Configure builds the campaign profile for a seed (nil =
	// PaperCampaignConfig). The returned Config's Seed is overridden by
	// the sweep seed.
	Configure func(seed int64) Config
}

// SeedRange returns n consecutive seeds starting at base — the common
// sweep shape (g5ktest -seeds N).
func SeedRange(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// FleetCampaign is one campaign's outcome within a sweep.
type FleetCampaign struct {
	Seed    int64
	Weekly  []WeekCounts
	Summary CampaignSummary
}

// firstWeekRate mirrors the E9 reading: the success rate of the campaign's
// first reported week.
func (c *FleetCampaign) firstWeekRate() (float64, bool) {
	if len(c.Weekly) == 0 {
		return 0, false
	}
	return c.Weekly[0].Rate(), true
}

// finalWeeksRate mirrors the E9 reading: the mean success rate of the last
// three reported weeks (fewer when the campaign is shorter).
func (c *FleetCampaign) finalWeeksRate() (float64, bool) {
	if len(c.Weekly) == 0 {
		return 0, false
	}
	tail := c.Weekly
	if len(tail) > 3 {
		tail = tail[len(tail)-3:]
	}
	sum := 0.0
	for _, w := range tail {
		sum += w.Rate()
	}
	return sum / float64(len(tail)), true
}

// Aggregate is a mean ± spread summary of one statistic across seeds.
type Aggregate struct {
	Mean, Std float64 // Std is the sample standard deviation (0 when N < 2)
	Min, Max  float64
	N         int
}

func (a Aggregate) String() string {
	return fmt.Sprintf("%.2f ± %.2f (min %.2f, max %.2f, n=%d)", a.Mean, a.Std, a.Min, a.Max, a.N)
}

func aggregate(xs []float64) Aggregate {
	a := Aggregate{N: len(xs)}
	if a.N == 0 {
		return a
	}
	a.Min, a.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < a.Min {
			a.Min = x
		}
		if x > a.Max {
			a.Max = x
		}
	}
	a.Mean = sum / float64(a.N)
	if a.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - a.Mean
			ss += d * d
		}
		a.Std = math.Sqrt(ss / float64(a.N-1))
	}
	return a
}

// WeeklyAggregate is the cross-seed view of one campaign week.
type WeeklyAggregate struct {
	Week int
	Rate Aggregate // success rate across the seeds that reported the week
}

// FleetResult is the outcome of a sweep: every campaign plus the
// aggregated trend and bug statistics.
type FleetResult struct {
	Campaigns []FleetCampaign

	// Weekly aggregates the success-rate trend across seeds, week by week.
	Weekly []WeeklyAggregate

	// FirstWeek/FinalWeeks aggregate the E9 trend endpoints (success
	// rates in [0,1]); Bugs* aggregate the tracker counters.
	FirstWeek, FinalWeeks          Aggregate
	BugsFiled, BugsFixed, BugsOpen Aggregate
}

// RunFleet simulates one campaign per seed, up to cfg.Parallel of them
// concurrently, and aggregates the results. Campaign outcomes are
// deterministic per seed regardless of Parallel or scheduling: workers
// share no simulation state, only the (index-disjoint) result slots.
func RunFleet(cfg FleetConfig) *FleetResult {
	if len(cfg.Seeds) == 0 {
		return &FleetResult{}
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cfg.Seeds) {
		parallel = len(cfg.Seeds)
	}
	configure := cfg.Configure
	if configure == nil {
		configure = PaperCampaignConfig
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = 10 * simclock.Week
	}

	campaigns := make([]FleetCampaign, len(cfg.Seeds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		//g5k:allow baregoroutine fleet workers run whole campaigns that share nothing; each outcome is a pure function of its seed (E14 gate)
		go func() {
			defer wg.Done()
			for i := range jobs {
				seed := cfg.Seeds[i]
				c := configure(seed)
				c.Seed = seed
				f := New(c)
				f.Start()
				f.RunFor(duration)
				campaigns[i] = FleetCampaign{
					Seed:    seed,
					Weekly:  f.WeeklyReport(),
					Summary: f.Summary(),
				}
			}
		}()
	}
	for i := range cfg.Seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return aggregateFleet(campaigns)
}

func aggregateFleet(campaigns []FleetCampaign) *FleetResult {
	res := &FleetResult{Campaigns: campaigns}

	var first, final, filed, fixed, open []float64
	byWeek := map[int][]float64{}
	maxWeek := -1
	for i := range campaigns {
		c := &campaigns[i]
		if r, ok := c.firstWeekRate(); ok {
			first = append(first, r)
		}
		if r, ok := c.finalWeeksRate(); ok {
			final = append(final, r)
		}
		filed = append(filed, float64(c.Summary.BugsFiled))
		fixed = append(fixed, float64(c.Summary.BugsFixed))
		open = append(open, float64(c.Summary.BugsOpen))
		for _, w := range c.Weekly {
			byWeek[w.Week] = append(byWeek[w.Week], w.Rate())
			if w.Week > maxWeek {
				maxWeek = w.Week
			}
		}
	}
	res.FirstWeek = aggregate(first)
	res.FinalWeeks = aggregate(final)
	res.BugsFiled = aggregate(filed)
	res.BugsFixed = aggregate(fixed)
	res.BugsOpen = aggregate(open)
	for w := 0; w <= maxWeek; w++ {
		if rates := byWeek[w]; len(rates) > 0 {
			res.Weekly = append(res.Weekly, WeeklyAggregate{Week: w, Rate: aggregate(rates)})
		}
	}
	return res
}
