// Package core assembles the complete testbed testing framework of the
// paper: the simulated Grid'5000 substrate (testbed, Reference API, OAR,
// Kadeploy, KaVLAN, monitoring), the Jenkins-like CI server with its test
// jobs, the external scheduler, the status page data source, and the bug
// tracker — plus an *operations model* (ops.go) that reproduces the
// paper's evaluation: users load the testbed, faults arrive silently,
// tests catch them, bugs get filed and deduplicated, operators fix them,
// and the testbed's measured reliability climbs (slides 22–23).
package core

import (
	"fmt"

	"repro/internal/bugs"
	"repro/internal/checks"
	"repro/internal/ci"
	"repro/internal/faults"
	"repro/internal/kadeploy"
	"repro/internal/kavlan"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/suites"
	"repro/internal/testbed"
)

// Config parameterises a framework instance and its operations model.
type Config struct {
	Seed      int64
	Executors int
	Sched     sched.Config

	// Fault process: a backlog present at campaign start (the undiscovered
	// problems of a testbed that never tested itself) plus ongoing arrivals
	// with exponentially distributed inter-arrival times.
	InitialFaults     int
	FaultMeanInterval simclock.Time // 0 disables ongoing injection

	// Operator model: every OperatorInterval, operators fix up to
	// FixesPerPass open bugs that have been open at least OperatorMinAge.
	OperatorInterval simclock.Time
	OperatorMinAge   simclock.Time
	FixesPerPass     int

	// User workload: a job submitted every UserJobInterval on average,
	// occupying random nodes; WholeClusterFrac of them grab entire
	// clusters (the contention that motivates the external scheduler).
	UserJobInterval  simclock.Time // 0 disables user load
	UserMeanWalltime simclock.Time
	UserMaxNodes     int
	WholeClusterFrac float64

	// EnvMatrixPeriod triggers the 448-cell environments matrix job; failed
	// or unstable cells are retried via Matrix Reloaded up to
	// EnvMatrixRetries times.
	EnvMatrixPeriod  simclock.Time // 0 disables
	EnvMatrixRetries int

	// Rollout optionally delays activation of test families, reproducing
	// "tests still being added": family name → activation offset. Families
	// absent from the map activate immediately.
	Rollout map[string]simclock.Time

	// RetainBuildLogs keeps per-build logs on the CI server (and makes the
	// test suites render their log lines). Campaigns drop logs by default:
	// the operations model and every report read verdicts and bug
	// signatures, never log text, and a 10-week campaign otherwise formats
	// millions of lines just to throw them away.
	RetainBuildLogs bool

	// Spec optionally replaces the generated testbed's cluster
	// specification (nil = testbed.DefaultSpec, the paper-scale grid).
	// internal/federation carves per-cluster campaign micro-shards out of
	// one spec this way: each micro-shard is a complete Framework over a
	// single cluster, labeled with the site that owns it.
	Spec []testbed.ClusterSpec
}

// DefaultConfig returns the calibrated operations model used by the
// experiment harness.
func DefaultConfig() Config {
	return Config{
		Seed:              42,
		Executors:         16,
		Sched:             sched.DefaultConfig(),
		InitialFaults:     25,
		FaultMeanInterval: 10 * simclock.Hour,
		OperatorInterval:  6 * simclock.Hour,
		OperatorMinAge:    12 * simclock.Hour,
		FixesPerPass:      3,
		UserJobInterval:   10 * simclock.Minute,
		UserMeanWalltime:  4 * simclock.Hour,
		UserMaxNodes:      20,
		WholeClusterFrac:  0.08,
		EnvMatrixPeriod:   simclock.Week,
		EnvMatrixRetries:  2,
	}
}

// PaperCampaignConfig returns the operations profile calibrated to
// reproduce the paper's slide-23 trend: a testbed that never tested itself
// (large fault backlog) adopts the framework, operators keep up with a
// finite fix capacity, and new test families keep being added — success
// climbs from the mid-80s towards the low-90s.
func PaperCampaignConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.InitialFaults = 80
	cfg.FaultMeanInterval = 7 * simclock.Hour
	cfg.OperatorInterval = 12 * simclock.Hour
	cfg.OperatorMinAge = 2 * simclock.Day
	cfg.FixesPerPass = 4
	cfg.Rollout = map[string]simclock.Time{
		"disk":     2 * simclock.Week,
		"mpigraph": 3 * simclock.Week,
		"kwapi":    4 * simclock.Week,
		"console":  5 * simclock.Week,
		"kavlan":   6 * simclock.Week,
	}
	return cfg
}

// BugHuntConfig is the PaperCampaignConfig variant used for the slide-22
// bug-count experiment: operators with half the fix capacity, so the
// filed/fixed ratio lands near the paper's 118/84 after a few weeks.
func BugHuntConfig(seed int64) Config {
	cfg := PaperCampaignConfig(seed)
	cfg.FixesPerPass = 2
	return cfg
}

// Framework owns every subsystem.
type Framework struct {
	Cfg Config

	Clock    *simclock.Clock
	TB       *testbed.Testbed
	Ref      *refapi.Store
	Faults   *faults.Injector
	OAR      *oar.Server
	Deployer *kadeploy.Deployer
	VLAN     *kavlan.Manager
	Monitor  *monitor.Collector
	Checker  *checks.Checker
	CI       *ci.Server
	Sched    *sched.Scheduler
	Bugs     *bugs.Tracker

	Ctx   *suites.Context
	Tests []*suites.Test

	// weekly accumulates build verdicts per simulated week, indexed by
	// week number. Counters update incrementally in onBuildComplete;
	// WeeklyReport and Summary never rescan build history.
	weekly     []WeekCounts
	envRetries map[int]int // parent build number → retry generation
	started    bool

	clusters   []*testbed.Cluster // cached topology for the user-load loop
	fixScratch []*bugs.Bug        // reused operator-pass candidate buffer
}

// WeekCounts accumulates build verdicts per simulated week.
type WeekCounts struct {
	Week     int
	Success  int
	Failure  int
	Unstable int
}

// Total returns the number of verdicts (success+failure).
func (w *WeekCounts) Total() int { return w.Success + w.Failure }

// Rate returns the success rate among verdicts, the paper's "% of tests
// successful" metric.
func (w *WeekCounts) Rate() float64 {
	if w.Total() == 0 {
		return 0
	}
	return float64(w.Success) / float64(w.Total())
}

// New builds and wires a framework. Nothing runs until Start.
func New(cfg Config) *Framework {
	if cfg.Executors <= 0 {
		cfg.Executors = 16
	}
	if cfg.EnvMatrixRetries < 0 {
		cfg.EnvMatrixRetries = 0
	}
	f := &Framework{
		Cfg:        cfg,
		Clock:      simclock.New(cfg.Seed),
		envRetries: map[int]int{},
	}
	if cfg.Spec != nil {
		f.TB = testbed.Generate(cfg.Spec)
	} else {
		f.TB = testbed.Default()
	}
	f.Ref = refapi.NewStore(f.TB, f.Clock.Now())
	f.Faults = faults.NewInjector(f.Clock, f.TB)
	f.OAR = oar.NewServer(f.Clock, f.TB)
	f.Deployer = kadeploy.NewDeployer(f.Clock, f.Faults)
	f.VLAN = kavlan.NewManager(f.Clock, f.TB, f.Faults)
	f.Monitor = monitor.NewCollector(f.Clock, f.TB, f.Faults)
	f.Checker = checks.NewChecker(f.Clock, f.TB, f.Ref)
	f.CI = ci.NewServerWith(f.Clock, ci.Options{
		NumExecutors:     cfg.Executors,
		DiscardBuildLogs: !cfg.RetainBuildLogs,
	})
	f.Bugs = bugs.NewTracker(f.Clock)
	f.Sched = sched.New(f.Clock, f.OAR, f.CI, cfg.Sched)
	f.clusters = f.TB.Clusters()

	f.Ctx = &suites.Context{
		Clock:    f.Clock,
		TB:       f.TB,
		Ref:      f.Ref,
		OAR:      f.OAR,
		Deployer: f.Deployer,
		VLAN:     f.VLAN,
		Monitor:  f.Monitor,
		Checker:  f.Checker,
		Faults:   f.Faults,
		Quiet:    !cfg.RetainBuildLogs,
	}
	f.Tests = suites.All(f.TB)

	// Observe every completed build: weekly stats, bug filing, node
	// quarantine, matrix retries.
	f.CI.OnComplete(f.onBuildComplete)
	return f
}

// setupJobs creates CI jobs and scheduler specs, honouring the rollout
// plan. Called from Start.
func (f *Framework) setupJobs() {
	for _, t := range f.Tests {
		t := t
		delay, delayed := f.Cfg.Rollout[t.Family]
		if !delayed {
			f.registerTest(t)
			continue
		}
		f.Clock.At(delay, func() { f.registerTest(t) })
	}
	// The environments matrix job.
	envJob := suites.EnvironmentsJob(f.Ctx)
	if err := f.CI.CreateJob(envJob); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
}

func (f *Framework) registerTest(t *suites.Test) {
	if err := f.CI.CreateJob(&ci.Job{
		Name:        t.Name,
		Description: fmt.Sprintf("%s family, %s", t.Family, t.Kind),
		Script:      t.Script(f.Ctx),
	}); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	if err := f.Sched.Register(&sched.Spec{
		Name:    t.Name,
		JobName: t.Name,
		Cluster: t.Cluster,
		Site:    t.Site,
		Kind:    t.Kind,
		Request: t.Request,
		Period:  t.Period,
	}); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
}

// AddExperiments registers user-donated experiments as regression tests
// (the paper's future-work extension, slide 23). Callable before or after
// Start; experiments are validated against the testbed.
func (f *Framework) AddExperiments(exps ...*suites.Experiment) error {
	tests, err := suites.RegressionTests(f.TB, exps)
	if err != nil {
		return err
	}
	for _, t := range tests {
		if f.started {
			f.registerTest(t)
		} else {
			f.Tests = append(f.Tests, t)
		}
	}
	return nil
}

// Start arms every process: CI jobs, the scheduler loop, fault arrivals,
// the operator loop, user workload and the environments matrix cron.
func (f *Framework) Start() {
	if f.started {
		return
	}
	f.started = true
	f.setupJobs()
	f.Sched.Start()
	f.startFaultProcess()
	f.startOperatorProcess()
	f.startUserLoad()
	f.startEnvMatrixCron()
}

// RunFor advances the simulation by d.
func (f *Framework) RunFor(d simclock.Time) { f.Clock.RunFor(d) }

// StatusClient returns a status-page client bound to the CI server's REST
// API at the given base URL (the caller owns the HTTP listener).
func (f *Framework) StatusClient(baseURL string) *status.Client {
	return status.NewClient(baseURL)
}
