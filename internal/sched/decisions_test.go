package sched

import (
	"reflect"
	"sort"
	"testing"
)

// DecisionCountsSorted is the stable form of the decision aggregate:
// report emitters must see the same order on every run, where ranging
// over the DecisionCounts map leaks Go's per-run randomized iteration
// order into the output (the bug g5kvet's maporder analyzer flags).
func TestDecisionCountsSortedStable(t *testing.T) {
	counts := map[Action]int{
		ActionTriggered: 4, ActionDeferPeak: 9, ActionDeferSiteBusy: 2,
		ActionDeferResources: 7, ActionSkipRunning: 1,
		"zz-custom": 5, "aa-custom": 6, "mm-custom": 8,
	}
	s := &Scheduler{counts: counts}

	first := s.DecisionCountsSorted()
	if len(first) != len(counts) {
		t.Fatalf("got %d actions, want %d", len(first), len(counts))
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i].Action < first[j].Action }) {
		t.Fatalf("not sorted by action: %v", first)
	}
	for _, ac := range first {
		if counts[ac.Action] != ac.Count {
			t.Fatalf("action %s: count %d, want %d", ac.Action, ac.Count, counts[ac.Action])
		}
	}
	// Map iteration order varies per ranging; the sorted form must not.
	for i := 0; i < 32; i++ {
		if again := s.DecisionCountsSorted(); !reflect.DeepEqual(first, again) {
			t.Fatalf("order unstable across calls:\n first %v\n again %v", first, again)
		}
	}
}
