package sched

import (
	"time"

	"repro/internal/oar"
	"repro/internal/simclock"
)

// GridPolicy is the grid-wide slice of the scheduler's peak-hours policy:
// one immutable value shared by every site scheduler and by the admission
// layer (internal/admit), so "stay out of the users' way during working
// hours" means the same window everywhere on the grid instead of being
// re-tuned per site.
//
// The policy is a pure function of simulated time and the request shape —
// it holds no mutable state — so sharing one value across concurrently
// stepping shards cannot couple their RNG streams or break the federation's
// serial ≡ parallel determinism.
type GridPolicy struct {
	// PeakStartHour/PeakEndHour bound the working-hours window
	// (Mon–Fri, PeakStartHour ≤ h < PeakEndHour, local simulated time).
	PeakStartHour, PeakEndHour int
}

// DefaultGridPolicy mirrors the paper's deployment: 9:00–18:00, Mon–Fri.
func DefaultGridPolicy() GridPolicy {
	return GridPolicy{PeakStartHour: 9, PeakEndHour: 18}
}

// InPeak reports whether t falls inside the grid-wide working-hours window.
func (p GridPolicy) InPeak(t simclock.Time) bool {
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	h := t.HourOfDay()
	return h >= p.PeakStartHour && h < p.PeakEndHour
}

// AllowNow decides whether a request may be *placed* at time t, as opposed
// to waiting in the admission queue. Only whole-cluster demands (a segment
// asking for AllNodes — the hardware-centric shape that monopolises a
// cluster) are held back during peak hours; everything else places freely.
func (p GridPolicy) AllowNow(req oar.Request, t simclock.Time) bool {
	if !p.InPeak(t) {
		return true
	}
	for _, seg := range req.Segments {
		if seg.Nodes == oar.AllNodes {
			return false
		}
	}
	return true
}
