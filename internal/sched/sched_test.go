package sched

import (
	"testing"

	"repro/internal/ci"
	"repro/internal/oar"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// fixture wires a minimal CI job whose script submits an immediate OAR job
// (the paper's pattern) and releases it after a fixed test duration.
type fixture struct {
	clock *simclock.Clock
	tb    *testbed.Testbed
	oar   *oar.Server
	ci    *ci.Server
	sched *Scheduler
}

func newFixture(cfg Config) *fixture {
	f := &fixture{clock: simclock.New(77), tb: testbed.Default()}
	f.oar = oar.NewServer(f.clock, f.tb)
	f.ci = ci.NewServer(f.clock, 4)
	f.sched = New(f.clock, f.oar, f.ci, cfg)
	return f
}

// addTestJob creates a CI job running an OAR-backed dummy test.
func (f *fixture) addTestJob(name, request string, testDur simclock.Time) {
	f.ci.CreateJob(&ci.Job{
		Name: name,
		Script: func(bc *ci.BuildContext) ci.Outcome {
			j, err := f.oar.Submit(request, oar.SubmitOptions{User: "jenkins", Immediate: true})
			if err != nil {
				return ci.Outcome{Result: ci.Failure, Duration: simclock.Minute}
			}
			if j.State != oar.Running {
				// Slide 17: cancelled OAR job → unstable build.
				return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
			}
			f.clock.After(testDur, func() { f.oar.Release(j.ID) })
			return ci.Outcome{Result: ci.Success, Duration: testDur}
		},
	})
}

func weekendStart(c *simclock.Clock) {
	// Epoch is Monday 00:00; jump to Saturday to dodge the peak-hour policy
	// in tests that don't exercise it.
	c.RunUntil(5 * simclock.Day)
}

func TestRegisterValidation(t *testing.T) {
	f := newFixture(DefaultConfig())
	ok := &Spec{Name: "a", JobName: "j", Cluster: "sol", Site: "sophia",
		Request: "cluster='sol'/nodes=1,walltime=1", Period: simclock.Day}
	if err := f.sched.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := f.sched.Register(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
	bad := []*Spec{
		{Name: "", JobName: "j", Request: "nodes=1", Period: simclock.Day},
		{Name: "b", JobName: "", Request: "nodes=1", Period: simclock.Day},
		{Name: "c", JobName: "j", Request: "nodes=1", Period: 0},
		{Name: "d", JobName: "j", Request: "((", Period: simclock.Day},
	}
	for _, sp := range bad {
		if err := f.sched.Register(sp); err == nil {
			t.Fatalf("bad spec %+v accepted", sp)
		}
	}
	if got := f.sched.SpecNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("names = %v", got)
	}
}

func TestTriggersWhenResourcesFree(t *testing.T) {
	f := newFixture(DefaultConfig())
	weekendStart(f.clock)
	f.addTestJob("disk-sol", "cluster='sol'/nodes=ALL,walltime=2", 30*simclock.Minute)
	f.sched.Register(&Spec{Name: "disk/sol", JobName: "disk-sol", Cluster: "sol",
		Site: "sophia", Kind: HardwareCentric,
		Request: "cluster='sol'/nodes=ALL,walltime=2", Period: simclock.Day})
	f.sched.Poll()
	f.clock.RunFor(simclock.Hour)
	st := f.sched.Stats()[0]
	if st.Triggers != 1 || st.Runs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	counts := f.sched.DecisionCounts()
	if counts[ActionTriggered] != 1 {
		t.Fatalf("decisions = %v", counts)
	}
}

func TestBackoffOnBusyResources(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(cfg)
	weekendStart(f.clock)
	// Occupy the whole sol cluster with a long user job.
	f.oar.Submit("cluster='sol'/nodes=ALL,walltime=200", oar.SubmitOptions{User: "user"})
	f.addTestJob("disk-sol", "cluster='sol'/nodes=ALL,walltime=2", 30*simclock.Minute)
	f.sched.Register(&Spec{Name: "disk/sol", JobName: "disk-sol", Cluster: "sol",
		Site: "sophia", Kind: HardwareCentric,
		Request: "cluster='sol'/nodes=ALL,walltime=2", Period: simclock.Day})

	f.sched.Start()
	f.clock.RunFor(2 * simclock.Day)
	f.sched.Stop()

	var backoffs []simclock.Time
	for _, d := range f.sched.Decisions() {
		if d.Action == ActionDeferResources {
			backoffs = append(backoffs, d.Backoff)
		}
	}
	if len(backoffs) < 4 {
		t.Fatalf("only %d resource deferrals in 2 days", len(backoffs))
	}
	// Exponential: 30m, 1h, 2h, ... capped at 12h.
	if backoffs[0] != 30*simclock.Minute || backoffs[1] != simclock.Hour || backoffs[2] != 2*simclock.Hour {
		t.Fatalf("backoff sequence starts %v", backoffs[:3])
	}
	for i := 1; i < len(backoffs); i++ {
		if backoffs[i] < backoffs[i-1] {
			t.Fatalf("backoff shrank: %v", backoffs)
		}
		if backoffs[i] > cfg.BackoffMax {
			t.Fatalf("backoff above cap: %v", backoffs[i])
		}
	}
	if st := f.sched.Stats()[0]; st.Triggers != 0 {
		t.Fatalf("triggered despite busy cluster: %+v", st)
	}
}

func TestBackoffResetsAfterSuccessfulRun(t *testing.T) {
	f := newFixture(DefaultConfig())
	weekendStart(f.clock)
	user, _ := f.oar.Submit("cluster='sol'/nodes=ALL,walltime=3", oar.SubmitOptions{User: "user"})
	f.addTestJob("disk-sol", "cluster='sol'/nodes=ALL,walltime=2", 30*simclock.Minute)
	f.sched.Register(&Spec{Name: "disk/sol", JobName: "disk-sol", Cluster: "sol",
		Site: "sophia", Kind: HardwareCentric,
		Request: "cluster='sol'/nodes=ALL,walltime=2", Period: 100 * simclock.Day})
	f.sched.Start()
	f.clock.RunFor(simclock.Day)
	if user.State != oar.Terminated {
		t.Fatal("user job still holding cluster")
	}
	st := f.sched.Stats()[0]
	if st.Runs != 1 {
		t.Fatalf("test never ran: %+v", st)
	}
	if st.Backoff != 0 {
		t.Fatalf("backoff not reset: %v", st.Backoff)
	}
}

func TestPeakHoursPolicy(t *testing.T) {
	f := newFixture(DefaultConfig())
	// Monday 10:00 — peak.
	f.clock.RunUntil(10 * simclock.Hour)
	f.addTestJob("disk-sol", "cluster='sol'/nodes=ALL,walltime=2", 30*simclock.Minute)
	f.addTestJob("cmd-sol", "cluster='sol'/nodes=1,walltime=1", 10*simclock.Minute)
	f.sched.Register(&Spec{Name: "disk/sol", JobName: "disk-sol", Cluster: "sol",
		Site: "sophia", Kind: HardwareCentric,
		Request: "cluster='sol'/nodes=ALL,walltime=2", Period: simclock.Day})
	f.sched.Register(&Spec{Name: "cmdline/sol", JobName: "cmd-sol", Cluster: "sol",
		Site: "sophia", Kind: SoftwareCentric,
		Request: "cluster='sol'/nodes=1,walltime=1", Period: simclock.Day})
	f.sched.Poll()
	counts := f.sched.DecisionCounts()
	if counts[ActionDeferPeak] != 1 {
		t.Fatalf("hardware test not deferred at peak: %v", counts)
	}
	if counts[ActionTriggered] != 1 {
		t.Fatalf("software test blocked by peak policy: %v", counts)
	}
	// After hours (Monday 20:00) the hardware test goes through.
	f.clock.RunUntil(20 * simclock.Hour)
	f.sched.Poll()
	if f.sched.DecisionCounts()[ActionTriggered] != 2 {
		t.Fatalf("hardware test not triggered off-peak: %v", f.sched.DecisionCounts())
	}
}

func TestPeakPolicyDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AvoidPeak = false
	f := newFixture(cfg)
	f.clock.RunUntil(10 * simclock.Hour) // Monday 10:00
	f.addTestJob("disk-sol", "cluster='sol'/nodes=ALL,walltime=2", 30*simclock.Minute)
	f.sched.Register(&Spec{Name: "disk/sol", JobName: "disk-sol", Cluster: "sol",
		Site: "sophia", Kind: HardwareCentric,
		Request: "cluster='sol'/nodes=ALL,walltime=2", Period: simclock.Day})
	f.sched.Poll()
	if f.sched.DecisionCounts()[ActionTriggered] != 1 {
		t.Fatal("peak policy applied despite AvoidPeak=false")
	}
}

func TestSameSitePolicy(t *testing.T) {
	f := newFixture(DefaultConfig())
	weekendStart(f.clock)
	f.addTestJob("t1", "cluster='sol'/nodes=ALL,walltime=2", 2*simclock.Hour)
	f.addTestJob("t2", "cluster='helios'/nodes=ALL,walltime=2", 2*simclock.Hour)
	f.addTestJob("t3", "cluster='taurus'/nodes=ALL,walltime=2", 2*simclock.Hour)
	f.sched.Register(&Spec{Name: "a", JobName: "t1", Cluster: "sol", Site: "sophia",
		Kind: HardwareCentric, Request: "cluster='sol'/nodes=ALL,walltime=2", Period: simclock.Day})
	f.sched.Register(&Spec{Name: "b", JobName: "t2", Cluster: "helios", Site: "sophia",
		Kind: HardwareCentric, Request: "cluster='helios'/nodes=ALL,walltime=2", Period: simclock.Day})
	f.sched.Register(&Spec{Name: "c", JobName: "t3", Cluster: "taurus", Site: "lyon",
		Kind: HardwareCentric, Request: "cluster='taurus'/nodes=ALL,walltime=2", Period: simclock.Day})

	f.sched.Poll()
	f.clock.RunFor(simclock.Minute)
	counts := f.sched.DecisionCounts()
	// a (sophia) and c (lyon) trigger; b defers because sophia is busy.
	if counts[ActionTriggered] != 2 || counts[ActionDeferSiteBusy] != 1 {
		t.Fatalf("decisions = %v", counts)
	}
	// Once a finishes, b gets its turn.
	f.clock.RunFor(3 * simclock.Hour)
	f.sched.Poll()
	f.clock.RunFor(simclock.Minute)
	if f.sched.DecisionCounts()[ActionTriggered] != 3 {
		t.Fatalf("b never triggered: %v", f.sched.DecisionCounts())
	}
}

func TestUnstableBuildTriggersBackoff(t *testing.T) {
	f := newFixture(DefaultConfig())
	weekendStart(f.clock)
	// The CI job always reports Unstable (its OAR job lost the race).
	f.ci.CreateJob(&ci.Job{Name: "always-unstable", Script: func(bc *ci.BuildContext) ci.Outcome {
		return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
	}})
	f.sched.Register(&Spec{Name: "u", JobName: "always-unstable", Cluster: "sol",
		Site: "sophia", Kind: SoftwareCentric,
		Request: "cluster='sol'/nodes=1,walltime=1", Period: simclock.Day})
	f.sched.Start()
	f.clock.RunFor(simclock.Day)
	f.sched.Stop()
	st := f.sched.Stats()[0]
	if st.Unstables < 2 {
		t.Fatalf("unstables = %d, want several", st.Unstables)
	}
	if st.Backoff < simclock.Hour {
		t.Fatalf("backoff = %v after repeated unstables", st.Backoff)
	}
	// Far fewer triggers than the 144 polls of a day.
	if st.Triggers > 12 {
		t.Fatalf("triggers = %d, backoff not applied", st.Triggers)
	}
}

func TestNoDoubleTriggerWhileRunning(t *testing.T) {
	f := newFixture(DefaultConfig())
	weekendStart(f.clock)
	f.addTestJob("slow", "cluster='sol'/nodes=1,walltime=10", 8*simclock.Hour)
	f.sched.Register(&Spec{Name: "s", JobName: "slow", Cluster: "sol", Site: "sophia",
		Kind: SoftwareCentric, Request: "cluster='sol'/nodes=1,walltime=10", Period: simclock.Hour})
	f.sched.Start()
	f.clock.RunFor(6 * simclock.Hour)
	f.sched.Stop()
	if st := f.sched.Stats()[0]; st.Triggers != 1 {
		t.Fatalf("triggers = %d while first run still active", st.Triggers)
	}
}

func TestPeriodRespectedAfterRun(t *testing.T) {
	f := newFixture(DefaultConfig())
	weekendStart(f.clock)
	f.addTestJob("fast", "cluster='sol'/nodes=1,walltime=1", 10*simclock.Minute)
	f.sched.Register(&Spec{Name: "f", JobName: "fast", Cluster: "sol", Site: "sophia",
		Kind: SoftwareCentric, Request: "cluster='sol'/nodes=1,walltime=1", Period: 12 * simclock.Hour})
	f.sched.Start()
	f.clock.RunFor(36 * simclock.Hour) // spans weekend + Monday; software tests ignore peak
	f.sched.Stop()
	st := f.sched.Stats()[0]
	if st.Triggers < 2 || st.Triggers > 4 {
		t.Fatalf("triggers = %d over 36h with 12h period", st.Triggers)
	}
}

func TestKindString(t *testing.T) {
	if SoftwareCentric.String() != "software-centric" || HardwareCentric.String() != "hardware-centric" {
		t.Fatal("kind strings")
	}
}
