// Package sched implements the paper's central custom development
// (slides 16–17): an external scheduler that decides when to trigger CI
// builds of testbed tests.
//
// Plain time-based Jenkins scheduling is not sufficient because:
//
//   - software-centric tests need one node per cluster, while
//     hardware-centric tests need ALL nodes of a cluster, and on a heavily
//     used testbed "waiting for all nodes of a given cluster to be
//     available can take weeks";
//   - blocking inside a Jenkins build would hold an executor hostage and
//     compete with user requests in the OAR queue.
//
// So the external tool polls both the CI server's job status and the
// testbed's resource availability, and triggers a build only when the
// test's resources are free right now, subject to:
//
//   - a retry policy with exponential backoff after a failed attempt;
//   - additional policies: avoid peak (working) hours for whole-cluster
//     tests, and avoid running several test jobs on the same site.
//
// If a triggered build still cannot get its OAR job started immediately
// (lost the race against a user), the build cancels the OAR job and reports
// itself Unstable; the scheduler observes that and backs off.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ci"
	"repro/internal/oar"
	"repro/internal/simclock"
)

// TestKind separates the paper's two scheduling classes.
type TestKind int

const (
	// SoftwareCentric tests need one node per cluster.
	SoftwareCentric TestKind = iota
	// HardwareCentric tests need all nodes of a given cluster.
	HardwareCentric
)

func (k TestKind) String() string {
	if k == HardwareCentric {
		return "hardware-centric"
	}
	return "software-centric"
}

// Spec is one schedulable test configuration.
type Spec struct {
	Name    string // unique, e.g. "disk/graphene"
	JobName string // CI job to trigger
	Cluster string
	Site    string
	Kind    TestKind
	Request string        // OAR resource request the test will submit
	Period  simclock.Time // how often the test should run
}

// Action is what the scheduler decided for a due spec at one poll.
type Action string

const (
	ActionTriggered      Action = "triggered"
	ActionDeferPeak      Action = "defer:peak-hours"
	ActionDeferSiteBusy  Action = "defer:site-busy"
	ActionDeferResources Action = "defer:resources"
	ActionSkipRunning    Action = "skip:already-running"
)

// Decision is one entry of the decision log (benchmarks replay it).
type Decision struct {
	At      simclock.Time
	Spec    string
	Action  Action
	Backoff simclock.Time // next retry delay when deferred for resources
}

// Config tunes the scheduler's policies.
type Config struct {
	PollInterval simclock.Time
	BackoffBase  simclock.Time // first retry delay after a resource miss
	BackoffMax   simclock.Time // cap of the exponential backoff
	// Peak hours (local time, Mon–Fri) during which hardware-centric tests
	// are not scheduled, to stay out of the users' way.
	PeakStartHour, PeakEndHour int
	AvoidPeak                  bool
	// Grid, when set, replaces the per-site peak window with the shared
	// grid-wide policy, so every site scheduler (and the admission layer)
	// defers hardware-centric work over the same hours. The policy is an
	// immutable pure value; sharing it across shards is determinism-safe.
	Grid *GridPolicy
	// MaxActivePerSite bounds concurrently running test jobs per site
	// ("avoid several jobs on same site").
	MaxActivePerSite int
	// DecisionLog bounds the retained decision entries: Decisions returns
	// a ring of the most recent DecisionLog entries, while DecisionCounts
	// stays complete (aggregated incrementally). 0 means
	// DefaultDecisionLog; negative disables retention entirely.
	DecisionLog int
}

// DefaultDecisionLog is the default size of the retained decision ring. A
// multi-week campaign makes millions of decisions; the log exists for
// debugging and benchmarks, not as an unbounded history.
const DefaultDecisionLog = 4096

// DefaultConfig mirrors the deployment described in the paper.
func DefaultConfig() Config {
	return Config{
		PollInterval:     10 * simclock.Minute,
		BackoffBase:      30 * simclock.Minute,
		BackoffMax:       12 * simclock.Hour,
		PeakStartHour:    9,
		PeakEndHour:      18,
		AvoidPeak:        true,
		MaxActivePerSite: 1,
	}
}

type specState struct {
	spec    *Spec
	req     oar.Request // parsed once at registration; probed every poll
	cause   string      // interned trigger cause ("scheduler <name>")
	nextDue simclock.Time
	backoff simclock.Time // 0 = not backing off
	running bool

	triggers  int
	unstables int
	runs      int
}

// Scheduler is the external scheduling tool.
//
// The scheduler's poll loop runs on the event loop, while build-completion
// callbacks (observeBuild) arrive from CI executor goroutines; the mutex
// serializes both against each other and against stats queries from
// outside goroutines.
type Scheduler struct {
	clock *simclock.Clock
	oar   *oar.Server
	ci    *ci.Server
	cfg   Config

	mu     sync.Mutex
	specs  map[string]*specState
	order  []string
	bySite map[string]int // active test builds per site

	ticker *simclock.Ticker

	// Decision bookkeeping: counts aggregates every decision ever made;
	// the ring retains only the most recent cfg.DecisionLog entries.
	counts    map[Action]int
	decisions []Decision // ring storage
	decHead   int        // oldest entry once the ring is full

	dueScratch []*specState // reused batch buffer for Poll
}

// New wires the scheduler to the OAR and CI servers. It registers a CI
// completion listener to observe build outcomes.
func New(clock *simclock.Clock, oarSrv *oar.Server, ciSrv *ci.Server, cfg Config) *Scheduler {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * simclock.Minute
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 30 * simclock.Minute
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = cfg.BackoffBase
	}
	if cfg.MaxActivePerSite <= 0 {
		cfg.MaxActivePerSite = 1
	}
	if cfg.DecisionLog == 0 {
		cfg.DecisionLog = DefaultDecisionLog
	} else if cfg.DecisionLog < 0 {
		cfg.DecisionLog = 0
	}
	s := &Scheduler{
		clock:  clock,
		oar:    oarSrv,
		ci:     ciSrv,
		cfg:    cfg,
		specs:  map[string]*specState{},
		bySite: map[string]int{},
		counts: map[Action]int{},
	}
	ciSrv.OnComplete(s.observeBuild)
	return s
}

// Register adds a test configuration. Specs are due immediately (staggered
// by registration order is unnecessary: resource gating spreads them out).
func (s *Scheduler) Register(spec *Spec) error {
	if spec.Name == "" || spec.JobName == "" {
		return fmt.Errorf("sched: spec needs Name and JobName")
	}
	if spec.Period <= 0 {
		return fmt.Errorf("sched: spec %q needs a positive period", spec.Name)
	}
	req, err := oar.ParseRequest(spec.Request)
	if err != nil {
		return fmt.Errorf("sched: spec %q: %w", spec.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.specs[spec.Name]; dup {
		return fmt.Errorf("sched: spec %q already registered", spec.Name)
	}
	s.specs[spec.Name] = &specState{
		spec:    spec,
		req:     req,
		cause:   "scheduler " + spec.Name,
		nextDue: s.clock.Now(),
	}
	s.order = append(s.order, spec.Name)
	return nil
}

// SpecNames returns registered spec names in registration order.
func (s *Scheduler) SpecNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Start begins the poll loop.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ticker != nil {
		return
	}
	s.ticker = s.clock.Every(s.cfg.PollInterval, s.Poll)
}

// Stop halts the poll loop.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Poll runs one decision pass: it first collects the batch of specs due at
// this tick, then decides each one. Every build it triggers lands on the
// CI server's executor pool, so all the builds of one tick run
// concurrently (before the pool, triggered builds executed one after the
// other on the single simulated thread). Exported so tests and benchmarks
// can drive the scheduler without the ticker.
func (s *Scheduler) Poll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.dueBatchLocked() {
		s.decideLocked(st)
	}
}

// dueBatchLocked snapshots the specs due at this tick, in registration
// order. The batch buffer is reused across polls.
func (s *Scheduler) dueBatchLocked() []*specState {
	now := s.clock.Now()
	due := s.dueScratch[:0]
	for _, name := range s.order {
		st := s.specs[name]
		if st.running {
			continue // not even logged: nothing is due
		}
		if now < st.nextDue {
			continue
		}
		due = append(due, st)
	}
	s.dueScratch = due
	return due
}

func (s *Scheduler) decideLocked(st *specState) {
	now := s.clock.Now()
	spec := st.spec

	// Policy 1: peak hours (hardware-centric tests monopolise a cluster,
	// keep them out of working hours).
	if s.cfg.AvoidPeak && spec.Kind == HardwareCentric && s.isPeak(now) {
		s.logLocked(Decision{At: now, Spec: spec.Name, Action: ActionDeferPeak})
		st.nextDue = now + s.cfg.PollInterval
		return
	}

	// Policy 2: at most N active test jobs per site.
	if s.bySite[spec.Site] >= s.cfg.MaxActivePerSite {
		s.logLocked(Decision{At: now, Spec: spec.Name, Action: ActionDeferSiteBusy})
		st.nextDue = now + s.cfg.PollInterval
		return
	}

	// Resource availability: would the test's OAR job start right now?
	// The request was parsed once at registration; the probe is
	// allocation-free.
	if !s.oar.CanStartNowReq(st.req) {
		st.backoff = s.nextBackoff(st.backoff)
		st.nextDue = now + st.backoff
		s.logLocked(Decision{At: now, Spec: spec.Name, Action: ActionDeferResources, Backoff: st.backoff})
		return
	}

	// Trigger the CI build; it starts on the executor pool at this instant,
	// concurrently with the other builds of this tick's batch.
	if _, err := s.ci.Trigger(spec.JobName, st.cause); err != nil {
		// Job vanished from CI: treat like a resource miss so the operator
		// notices the growing backoff.
		st.backoff = s.nextBackoff(st.backoff)
		st.nextDue = now + st.backoff
		s.logLocked(Decision{At: now, Spec: spec.Name, Action: ActionDeferResources, Backoff: st.backoff})
		return
	}
	st.running = true
	st.triggers++
	s.bySite[spec.Site]++
	s.logLocked(Decision{At: now, Spec: spec.Name, Action: ActionTriggered})
}

// nextBackoff doubles the delay, starting at BackoffBase, capped at
// BackoffMax.
func (s *Scheduler) nextBackoff(cur simclock.Time) simclock.Time {
	if cur <= 0 {
		return s.cfg.BackoffBase
	}
	next := cur * 2
	if next > s.cfg.BackoffMax {
		next = s.cfg.BackoffMax
	}
	return next
}

func (s *Scheduler) isPeak(t simclock.Time) bool {
	if s.cfg.Grid != nil {
		return s.cfg.Grid.InPeak(t)
	}
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	h := t.HourOfDay()
	return h >= s.cfg.PeakStartHour && h < s.cfg.PeakEndHour
}

// observeBuild reacts to completed CI builds of jobs we scheduled. It runs
// on the executor goroutine that finished the build.
func (s *Scheduler) observeBuild(b *ci.Build) {
	if b.Cell != nil {
		return // matrix cells roll up into their parent
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var st *specState
	for _, name := range s.order {
		if s.specs[name].spec.JobName == b.Job && s.specs[name].running {
			st = s.specs[name]
			break
		}
	}
	if st == nil {
		return // not one of ours (manual/cron build)
	}
	st.running = false
	if s.bySite[st.spec.Site] > 0 {
		s.bySite[st.spec.Site]--
	}
	now := s.clock.Now()
	if b.Result == ci.Unstable {
		// The build could not run its testbed job: retry with backoff.
		st.unstables++
		st.backoff = s.nextBackoff(st.backoff)
		st.nextDue = now + st.backoff
		return
	}
	// The test ran (passed or failed — either way it produced a verdict):
	// reset the backoff and wait out the period.
	st.runs++
	st.backoff = 0
	st.nextDue = now + st.spec.Period
}

// logLocked records a decision: the aggregate count always, the entry
// itself in the bounded ring.
func (s *Scheduler) logLocked(d Decision) {
	s.counts[d.Action]++
	if s.cfg.DecisionLog == 0 {
		return
	}
	if len(s.decisions) < s.cfg.DecisionLog {
		s.decisions = append(s.decisions, d)
		return
	}
	s.decisions[s.decHead] = d
	s.decHead++
	if s.decHead == len(s.decisions) {
		s.decHead = 0
	}
}

// Decisions returns a copy of the retained decision log (the most recent
// Config.DecisionLog entries), in chronological order.
func (s *Scheduler) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Decision, 0, len(s.decisions))
	out = append(out, s.decisions[s.decHead:]...)
	out = append(out, s.decisions[:s.decHead]...)
	return out
}

// DecisionCounts aggregates every decision ever made by action — complete
// even when the retained log ring has wrapped.
func (s *Scheduler) DecisionCounts() map[Action]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Action]int, len(s.counts))
	for a, n := range s.counts {
		out[a] = n
	}
	return out
}

// ActionCount pairs an action with its total decision count.
type ActionCount struct {
	Action Action
	Count  int
}

// DecisionCountsSorted returns the aggregate ordered by action name: the
// stable form for reports and emitted summaries, where ranging over the
// DecisionCounts map would leak nondeterministic iteration order into the
// output.
func (s *Scheduler) DecisionCountsSorted() []ActionCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ActionCount, 0, len(s.counts))
	for a, n := range s.counts {
		out = append(out, ActionCount{Action: a, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Action < out[j].Action })
	return out
}

// SpecStats reports per-spec counters for analysis.
type SpecStats struct {
	Name      string
	Triggers  int
	Runs      int
	Unstables int
	Backoff   simclock.Time
	NextDue   simclock.Time
	Running   bool
}

// Stats returns per-spec statistics sorted by name.
func (s *Scheduler) Stats() []SpecStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpecStats, 0, len(s.specs))
	for _, st := range s.specs {
		out = append(out, SpecStats{
			Name:      st.spec.Name,
			Triggers:  st.triggers,
			Runs:      st.runs,
			Unstables: st.unstables,
			Backoff:   st.backoff,
			NextDue:   st.nextDue,
			Running:   st.running,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
