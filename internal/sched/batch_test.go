package sched

import (
	"testing"

	"repro/internal/simclock"
)

// TestPollBatchRunsBuildsInParallel: one poll tick collects every due spec
// and the triggered builds run concurrently on the CI executor pool —
// observed as overlapping build windows on the sim clock.
func TestPollBatchRunsBuildsInParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AvoidPeak = false
	f := newFixture(cfg)

	// Three specs on three different sites (the per-site cap must not
	// interfere), all due at registration.
	tests := []struct{ name, cluster, site string }{
		{"disk/sol", "sol", "sophia"},
		{"disk/taurus", "taurus", "lyon"},
		{"disk/edel", "edel", "grenoble"},
	}
	for _, tc := range tests {
		req := "cluster='" + tc.cluster + "'/nodes=2,walltime=1"
		f.addTestJob(tc.name, req, 30*simclock.Minute)
		if err := f.sched.Register(&Spec{Name: tc.name, JobName: tc.name,
			Cluster: tc.cluster, Site: tc.site, Kind: SoftwareCentric,
			Request: req, Period: simclock.Day}); err != nil {
			t.Fatal(err)
		}
	}

	f.sched.Poll()
	f.clock.RunFor(simclock.Hour)

	counts := f.sched.DecisionCounts()
	if counts[ActionTriggered] != 3 {
		t.Fatalf("triggered = %d, want 3 (decisions: %v)", counts[ActionTriggered], counts)
	}
	type window struct{ start, end simclock.Time }
	var ws []window
	for _, tc := range tests {
		bs := f.ci.Builds(tc.name)
		if len(bs) != 1 || !bs[0].Completed() {
			t.Fatalf("%s: builds = %+v", tc.name, bs)
		}
		ws = append(ws, window{bs[0].StartedAt, bs[0].EndedAt})
	}
	for i := 1; i < len(ws); i++ {
		if !(ws[i].start < ws[0].end && ws[0].start < ws[i].end) {
			t.Fatalf("batch builds did not overlap: %v", ws)
		}
	}
}
