package simclock

import (
	"sync"
	"testing"
)

func TestGoRunsDuringAdvance(t *testing.T) {
	c := New(1)
	ran := false
	c.Go(func() { ran = true })
	if ran {
		t.Fatal("goroutine ran before the driver advanced")
	}
	c.Advance(0)
	if !ran {
		t.Fatal("goroutine did not run")
	}
	if c.Goroutines() != 0 {
		t.Fatalf("goroutines = %d after exit", c.Goroutines())
	}
}

func TestWaitUntilBlocksForSimTime(t *testing.T) {
	c := New(2)
	var trace []Time
	c.Go(func() {
		trace = append(trace, c.Now())
		c.WaitUntil(10 * Minute)
		trace = append(trace, c.Now())
		c.Sleep(5 * Minute)
		trace = append(trace, c.Now())
	})
	c.Run()
	want := []Time{0, 10 * Minute, 15 * Minute}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
}

func TestWaitUntilPastReturnsImmediately(t *testing.T) {
	c := New(3)
	c.RunUntil(Hour)
	hops := 0
	c.Go(func() {
		c.WaitUntil(Minute) // already past
		hops++
		c.Sleep(0)
		c.Sleep(-Minute)
		hops++
	})
	c.Run()
	if hops != 2 || c.Now() != Hour {
		t.Fatalf("hops=%d now=%v", hops, c.Now())
	}
}

// TestConcurrentWaitersResumeInScheduleOrder is the determinism contract:
// N goroutines parked at the same instant resume one at a time, in the
// order their wake-ups were scheduled.
func TestConcurrentWaitersResumeInScheduleOrder(t *testing.T) {
	for round := 0; round < 3; round++ {
		c := New(4)
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			c.Go(func() {
				c.WaitUntil(Hour) // all eight wake at the same instant
				order = append(order, i)
				c.Sleep(Minute)
				order = append(order, 100+i)
			})
		}
		c.Run()
		if len(order) != 16 {
			t.Fatalf("order = %v", order)
		}
		for i := 0; i < 8; i++ {
			if order[i] != i || order[8+i] != 100+i {
				t.Fatalf("round %d: nondeterministic resume order %v", round, order)
			}
		}
		if c.Now() != Hour+Minute {
			t.Fatalf("now = %v", c.Now())
		}
	}
}

// TestAdvanceLeavesLateSleepersParked checks that RunUntil does not wake
// goroutines whose wake-up lies beyond the horizon, and that a later run
// resumes them.
func TestAdvanceLeavesLateSleepersParked(t *testing.T) {
	c := New(5)
	woke := false
	c.Go(func() {
		c.Sleep(2 * Hour)
		woke = true
	})
	c.Advance(Hour)
	if woke {
		t.Fatal("woke before its time")
	}
	if c.Goroutines() != 1 {
		t.Fatalf("goroutines = %d, want 1 parked", c.Goroutines())
	}
	c.Advance(Hour)
	if !woke {
		t.Fatal("never woke")
	}
}

// TestGoFromSimulationGoroutine spawns nested goroutines from inside a
// simulation goroutine and from event callbacks.
func TestGoFromSimulationGoroutine(t *testing.T) {
	c := New(6)
	var got []string
	c.Go(func() {
		got = append(got, "parent")
		c.Go(func() {
			got = append(got, "child")
			c.Sleep(Minute)
			got = append(got, "child-awake")
		})
		c.Sleep(2 * Minute)
		got = append(got, "parent-awake")
	})
	c.After(Second, func() {
		c.Go(func() { got = append(got, "from-event") })
	})
	c.Run()
	want := []string{"parent", "child", "from-event", "child-awake", "parent-awake"}
	if len(got) != len(want) {
		t.Fatalf("got = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
}

// TestSchedulingFromOutsideGoroutines checks that At/After/Now/Go are safe
// to call from plain OS goroutines while nothing is running — the pattern
// external API handlers (status page, stress tests) use.
func TestSchedulingFromOutsideGoroutines(t *testing.T) {
	c := New(7)
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.After(Time(i)*Minute, func() {
				mu.Lock()
				fired++
				mu.Unlock()
			})
			_ = c.Now()
			_ = c.Pending()
		}(i)
	}
	wg.Wait()
	c.Run()
	if fired != 16 {
		t.Fatalf("fired = %d", fired)
	}
}

// TestInterleavedEventsAndGoroutines mixes plain events with goroutine
// wake-ups at identical instants; events and wake-ups must interleave in
// schedule order, and the goroutine must observe event effects that were
// scheduled before its wake-up.
func TestInterleavedEventsAndGoroutines(t *testing.T) {
	c := New(8)
	counter := 0
	seen := -1
	c.After(Hour, func() { counter = 10 }) // scheduled first → runs first at t=1h
	c.Go(func() {
		c.WaitUntil(Hour) // wake-up scheduled second
		seen = counter
	})
	c.Run()
	if seen != 10 {
		t.Fatalf("goroutine saw counter=%d, want 10", seen)
	}
}

// TestLatchJoinsFanOut: a coordinator spawns workers, parks in Wait, and
// resumes only after every worker called Done — with the workers' effects
// visible.
func TestLatchJoinsFanOut(t *testing.T) {
	c := New(9)
	const workers = 5
	sum := 0
	done := false
	c.Go(func() {
		l := c.NewLatch(workers)
		for w := 1; w <= workers; w++ {
			w := w
			c.Go(func() {
				c.Sleep(Time(w) * Minute) // workers park and overlap
				sum += w
				l.Done()
			})
		}
		l.Wait()
		if sum != 15 {
			t.Errorf("coordinator resumed before workers finished: sum=%d", sum)
		}
		done = true
	})
	c.Run()
	if !done {
		t.Fatal("coordinator never resumed")
	}
	if got := c.Now(); got != 5*Minute {
		t.Fatalf("clock at %v, want 5m (slowest worker)", got)
	}
}

// An open latch (count zero) never parks.
func TestLatchZeroIsOpen(t *testing.T) {
	c := New(10)
	reached := false
	c.Go(func() {
		c.NewLatch(0).Wait()
		reached = true
	})
	c.Run()
	if !reached {
		t.Fatal("Wait on open latch parked forever")
	}
}

// Done from event-callback context (not a simulation goroutine) must wake
// waiters too — the driver side of the contract.
func TestLatchDoneFromEvent(t *testing.T) {
	c := New(11)
	l := c.NewLatch(2)
	var resumedAt Time
	c.Go(func() {
		l.Wait()
		resumedAt = c.Now()
	})
	c.After(Hour, l.Done)
	c.After(2*Hour, l.Done)
	c.Run()
	if resumedAt != 2*Hour {
		t.Fatalf("waiter resumed at %v, want 2h", resumedAt)
	}
}

// Multiple waiters resume in the order they went to sleep.
func TestLatchWaitersFIFO(t *testing.T) {
	c := New(12)
	l := c.NewLatch(1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Go(func() {
			c.Sleep(Time(i+1) * Second) // deterministic sleep order = wait order
			l.Wait()
			order = append(order, i)
		})
	}
	c.After(Minute, l.Done)
	c.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("resume order = %v, want [0 1 2]", order)
	}
}
