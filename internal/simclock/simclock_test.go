package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := New(1)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	c := New(1)
	var got []int
	c.After(3*Second, func() { got = append(got, 3) })
	c.After(1*Second, func() { got = append(got, 1) })
	c.After(2*Second, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 3*Second {
		t.Fatalf("clock at %v, want 3s", c.Now())
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	c := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(Second, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time order = %v", got)
		}
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	c := New(1)
	c.RunUntil(10 * Second)
	fired := Time(-1)
	c.At(2*Second, func() { fired = c.Now() })
	c.Run()
	if fired != 10*Second {
		t.Fatalf("past event fired at %v, want now (10s)", fired)
	}
}

func TestCancel(t *testing.T) {
	c := New(1)
	fired := false
	e := c.After(Second, func() { fired = true })
	e.Cancel()
	c.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Cancel is idempotent and nil-safe.
	e.Cancel()
	var nilEvent *Event
	nilEvent.Cancel()
}

func TestRunUntilAdvancesClockExactly(t *testing.T) {
	c := New(1)
	c.After(Minute, func() {})
	c.RunUntil(30 * Second)
	if c.Now() != 30*Second {
		t.Fatalf("clock at %v, want 30s", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
	c.RunFor(Minute)
	if c.Now() != 90*Second {
		t.Fatalf("clock at %v, want 90s", c.Now())
	}
	if c.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", c.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New(1)
	var times []Time
	c.After(Second, func() {
		times = append(times, c.Now())
		c.After(Second, func() {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 2 || times[0] != Second || times[1] != 2*Second {
		t.Fatalf("nested times = %v", times)
	}
}

func TestTicker(t *testing.T) {
	c := New(1)
	var ticks []Time
	tk := c.Every(10*Second, func() { ticks = append(ticks, c.Now()) })
	c.RunUntil(35 * Second)
	tk.Stop()
	c.RunUntil(100 * Second)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, tm := range ticks {
		if want := Time(i+1) * 10 * Second; tm != want {
			t.Fatalf("tick %d at %v, want %v", i, tm, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	c := New(1)
	n := 0
	var tk *Ticker
	tk = c.Every(Second, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.Run()
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero period")
		}
	}()
	New(1).Every(0, func() {})
}

func TestWeekdayEpochIsMonday(t *testing.T) {
	if wd := Time(0).Weekday(); wd != time.Monday {
		t.Fatalf("epoch weekday = %v, want Monday", wd)
	}
	if wd := (Day).Weekday(); wd != time.Tuesday {
		t.Fatalf("epoch+1d weekday = %v, want Tuesday", wd)
	}
	if wd := (6 * Day).Weekday(); wd != time.Sunday {
		t.Fatalf("epoch+6d weekday = %v, want Sunday", wd)
	}
	if wd := (7 * Day).Weekday(); wd != time.Monday {
		t.Fatalf("epoch+7d weekday = %v, want Monday", wd)
	}
}

func TestHourOfDay(t *testing.T) {
	if h := (3*Day + 13*Hour + 30*Minute).HourOfDay(); h != 13 {
		t.Fatalf("hour = %d, want 13", h)
	}
	if h := Time(0).HourOfDay(); h != 0 {
		t.Fatalf("hour = %d, want 0", h)
	}
}

func TestTimeString(t *testing.T) {
	got := (2*Day + 3*Hour + 4*Minute + 5*Second).String()
	if got != "D2 03:04:05" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		c := New(42)
		var out []Time
		for i := 0; i < 100; i++ {
			c.After(Time(c.Rand().Int63n(int64(Hour))), func() {
				out = append(out, c.Now())
			})
		}
		c.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in non-decreasing time order, whatever the
// scheduling order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(offsets []uint32) bool {
		c := New(7)
		var fired []Time
		for _, o := range offsets {
			c.After(Time(o%1000)*Second, func() { fired = append(fired, c.Now()) })
		}
		c.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d := Jitter(rng, 10*Second, 3*Second)
		if d < 7*Second || d > 13*Second {
			t.Fatalf("jitter %v out of [7s,13s]", d)
		}
	}
	if d := Jitter(rng, 5*Second, 0); d != 5*Second {
		t.Fatalf("no-spread jitter = %v", d)
	}
	if d := Jitter(rng, -5*Second, 0); d != 0 {
		t.Fatalf("negative base jitter = %v, want 0", d)
	}
	// Never negative even when spread exceeds base.
	for i := 0; i < 1000; i++ {
		if d := Jitter(rng, Second, Minute); d < 0 {
			t.Fatalf("negative jitter %v", d)
		}
	}
}

func TestExponentialBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		d := Exponential(rng, Minute)
		if d < 0 || d > 20*Minute {
			t.Fatalf("exponential %v out of bounds", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 50*Second || mean > 70*Second {
		t.Fatalf("empirical mean %v too far from 1m", mean)
	}
	if Exponential(rng, 0) != 0 {
		t.Fatal("zero-mean exponential should be 0")
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Bernoulli(rng, 0) {
		t.Fatal("p=0 returned true")
	}
	if !Bernoulli(rng, 1) {
		t.Fatal("p=1 returned false")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(rng, 0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Fatalf("p=0.3 hit %d/10000", n)
	}
}

func TestShuffledLeavesInputIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := []int{1, 2, 3, 4, 5, 6, 7, 8}
	out := Shuffled(rng, in)
	for i, v := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		if in[i] != v {
			t.Fatal("input mutated")
		}
	}
	if len(out) != len(in) {
		t.Fatal("length changed")
	}
	seen := map[int]bool{}
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != len(in) {
		t.Fatal("shuffle lost elements")
	}
}

func TestSleeper(t *testing.T) {
	s := NewSleeper(10 * Second)
	if s.Cursor() != 10*Second {
		t.Fatal("bad initial cursor")
	}
	s.Advance(5 * Second)
	if s.Cursor() != 15*Second {
		t.Fatal("advance failed")
	}
	s.Advance(-3 * Second) // negative ignored
	if s.Cursor() != 15*Second {
		t.Fatal("negative advance moved cursor")
	}
	s.SyncTo(12 * Second) // earlier ignored
	if s.Cursor() != 15*Second {
		t.Fatal("SyncTo moved cursor backwards")
	}
	s.SyncTo(20 * Second)
	if s.Cursor() != 20*Second {
		t.Fatal("SyncTo failed")
	}
}

func TestMaxQueueLen(t *testing.T) {
	c := New(1)
	for i := 0; i < 50; i++ {
		c.After(Time(i)*Second, func() {})
	}
	c.Run()
	if c.MaxQueueLen() != 50 {
		t.Fatalf("max queue len = %d, want 50", c.MaxQueueLen())
	}
}
