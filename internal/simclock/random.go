package simclock

import "math/rand"

// Jitter returns a duration uniformly drawn from [base-spread, base+spread],
// clamped to be non-negative. It is the standard way subsystems model
// per-node variability (boot times, disk speeds, ...).
func Jitter(rng *rand.Rand, base, spread Time) Time {
	if spread <= 0 {
		if base < 0 {
			return 0
		}
		return base
	}
	d := base - spread + Time(rng.Int63n(int64(2*spread)+1))
	if d < 0 {
		return 0
	}
	return d
}

// Exponential returns an exponentially distributed duration with the given
// mean, clamped to [0, 20*mean] to keep simulations bounded.
func Exponential(rng *rand.Rand, mean Time) Time {
	if mean <= 0 {
		return 0
	}
	d := Time(rng.ExpFloat64() * float64(mean))
	if max := 20 * mean; d > max {
		d = max
	}
	return d
}

// Bernoulli reports true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// Pick returns a uniformly random element of xs. It panics on an empty
// slice, mirroring the behaviour of indexing.
func Pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// Shuffled returns a shuffled copy of xs, leaving the input untouched.
func Shuffled[T any](rng *rand.Rand, xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
