package simclock

// Concurrent-waiter support: real goroutines inside the deterministic
// simulation.
//
// The CI server's executor pool (internal/ci) runs builds on goroutines
// that must block for simulated time without blocking the event loop, and
// without introducing scheduling races that would make campaigns
// irreproducible. The clock solves this with a single *run token*:
//
//   - Go registers a goroutine with the clock; it starts suspended.
//   - Exactly one party executes at any instant: either the driver (the
//     goroutine inside Step/Run/RunUntil/Advance) or one simulation
//     goroutine holding the token.
//   - WaitUntil/Sleep give the token back and schedule a wake-up event;
//     wake-ups therefore happen in deterministic event order, and ready
//     goroutines resume in FIFO order, one at a time.
//   - The driver only pops the next event once every ready goroutine has
//     run until it parked (quiesce). Simulated time never advances under a
//     running simulation goroutine's feet.
//
// Every token handoff goes through the clock's mutex, which doubles as the
// happens-before edge chaining all simulation work into one serial order —
// this is what keeps `go test -race` quiet without sprinkling locks over
// every simulated subsystem (they additionally guard their externally
// visible state; see internal/oar, internal/ci).
//
// WaitUntil and Sleep must only be called from goroutines started with Go;
// calling them from the driver would deadlock the token accounting.

// Go starts fn as a simulation goroutine tracked by the clock. The
// goroutine does not run immediately: it is queued for the run token and
// first executes during the next Step/Run/RunUntil/Advance, after the
// event that spawned it returns. It may call WaitUntil/Sleep to block for
// simulated time and At/After/Go to schedule further work.
func (c *Clock) Go(fn func()) {
	start := make(chan struct{}, 1)
	c.mu.Lock()
	c.goroutines++
	c.runnable = append(c.runnable, start)
	c.idle.Broadcast()
	c.mu.Unlock()
	//g5k:allow baregoroutine this IS the run-token implementation: the goroutine starts parked and only ever runs while holding the token
	go func() {
		<-start
		fn()
		c.mu.Lock()
		c.active--
		c.goroutines--
		c.idle.Broadcast()
		c.mu.Unlock()
	}()
}

// Goroutines returns the number of live simulation goroutines (running,
// ready, or parked in WaitUntil).
func (c *Clock) Goroutines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.goroutines
}

// WaitUntil parks the calling simulation goroutine until the clock reaches
// t. It returns immediately when t is not in the future. Goroutines parked
// at the same instant resume one at a time, in the order they went to
// sleep.
func (c *Clock) WaitUntil(t Time) {
	wake := make(chan struct{}, 1)
	c.mu.Lock()
	if t <= c.now {
		c.mu.Unlock()
		return
	}
	c.atLocked(t, func() { c.makeRunnable(wake) })
	c.active--
	c.idle.Broadcast()
	c.mu.Unlock()
	<-wake
}

// Sleep parks the calling simulation goroutine for d of simulated time.
// The clock cannot advance while the caller holds the run token, so this
// is exactly WaitUntil(Now()+d).
func (c *Clock) Sleep(d Time) {
	if d <= 0 {
		return
	}
	c.WaitUntil(c.Now() + d)
}

// Advance runs the event loop for d of simulated time, coordinating any
// simulation goroutines that become runnable along the way. It is RunFor
// under the name the concurrency API documentation uses: Advance is the
// driver side of the WaitUntil contract.
func (c *Clock) Advance(d Time) { c.RunFor(d) }

// makeRunnable queues a parked goroutine's wake channel for the run token.
// Called from wake-up events (driver context, mutex not held).
func (c *Clock) makeRunnable(wake chan struct{}) {
	c.mu.Lock()
	c.runnable = append(c.runnable, wake)
	c.idle.Broadcast()
	c.mu.Unlock()
}

// Latch is a countdown join for simulation goroutines: the deterministic
// equivalent of sync.WaitGroup inside the simulation. A fan-out caller
// creates a Latch with the worker count, each worker calls Done when it
// finishes, and the caller parks in Wait until the count reaches zero —
// releasing the run token while parked, so the workers (and the rest of
// the simulation) can make progress. Wake-ups go through the clock's
// runnable queue, so resumption order stays deterministic (FIFO).
//
// checks.Checker shards cluster sweeps across goroutines this way, the
// same shape as internal/ci's executor pool but with a static fan-out.
type Latch struct {
	c       *Clock
	n       int
	waiters []chan struct{}
}

// NewLatch creates a latch that opens after n Done calls. n must be ≥ 0;
// a zero latch is already open.
func (c *Clock) NewLatch(n int) *Latch {
	if n < 0 {
		panic("simclock: NewLatch with negative count")
	}
	return &Latch{c: c, n: n}
}

// Done decrements the latch. When the count reaches zero every goroutine
// parked in Wait becomes runnable, in the order it went to sleep. Done may
// be called from simulation goroutines or from event callbacks.
func (l *Latch) Done() {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	if l.n <= 0 {
		panic("simclock: Latch.Done past zero")
	}
	l.n--
	if l.n == 0 {
		l.c.runnable = append(l.c.runnable, l.waiters...)
		l.waiters = nil
		l.c.idle.Broadcast()
	}
}

// Wait parks the calling simulation goroutine until the latch count drops
// to zero. It returns immediately when the latch is already open. Like
// WaitUntil, it must only be called from goroutines started with Go —
// calling it from the driver would corrupt the run-token accounting.
func (l *Latch) Wait() {
	wake := make(chan struct{}, 1)
	l.c.mu.Lock()
	if l.n == 0 {
		l.c.mu.Unlock()
		return
	}
	l.waiters = append(l.waiters, wake)
	l.c.active--
	l.c.idle.Broadcast()
	l.c.mu.Unlock()
	<-wake
}

// quiesceLocked blocks the driver until no simulation goroutine is running
// or ready, dispatching ready goroutines one at a time (FIFO). Called with
// the mutex held.
func (c *Clock) quiesceLocked() {
	for c.active > 0 || len(c.runnable) > 0 {
		if c.active == 0 {
			next := c.runnable[0]
			c.runnable = c.runnable[1:]
			c.active = 1
			next <- struct{}{} // buffered: never blocks
		}
		c.idle.Wait()
	}
}
