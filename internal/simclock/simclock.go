// Package simclock provides a deterministic virtual clock and a
// discrete-event scheduler used by every simulated subsystem in this
// repository.
//
// The real Grid'5000 testing framework runs over weeks of wall-clock time
// (OAR reservations, nightly Jenkins builds, exponential-backoff retries).
// To reproduce the paper's campaigns deterministically and in milliseconds,
// all subsystems take their notion of "now" from a Clock and schedule future
// work as events on its queue. A whole campaign is a pure function of
// (seed, configuration).
//
// Two execution styles coexist:
//
//   - plain events (At/After/Every) run on the driver goroutine, the one
//     calling Step/Run/RunUntil/Advance;
//   - simulation goroutines (Go) are real goroutines — the CI server's
//     executor pool runs builds on them — that block in WaitUntil/Sleep.
//     The clock hands out a single run token, so exactly one of
//     {driver, simulation goroutines} executes at any instant and wake-ups
//     happen in event order: campaigns stay deterministic (see
//     concurrent.go).
package simclock

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a point in simulated time, expressed as an offset from the
// simulation epoch. The epoch is arbitrary; experiments only ever use
// differences and day-of-week arithmetic (see Weekday).
type Time time.Duration

// Common durations re-exported for readability at call sites.
const (
	Second = Time(time.Second)
	Minute = Time(time.Minute)
	Hour   = Time(time.Hour)
	Day    = 24 * Hour
	Week   = 7 * Day
)

// Duration returns t as a time.Duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted by d.
func (t Time) Add(d Time) Time { return t + d }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Time { return t - u }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Weekday returns the simulated day of week, with the epoch defined to be a
// Monday at 00:00 (convenient for peak-hour policies).
func (t Time) Weekday() time.Weekday {
	d := int(time.Duration(t) / (24 * time.Hour) % 7)
	if d < 0 {
		d += 7
	}
	// Epoch is Monday.
	return time.Weekday((d + 1) % 7)
}

// HourOfDay returns the hour within the simulated day, in [0,24).
func (t Time) HourOfDay() int {
	h := int(time.Duration(t) / time.Hour % 24)
	if h < 0 {
		h += 24
	}
	return h
}

// String formats the time as "Dd HH:MM:SS" for logs.
func (t Time) String() string {
	d := time.Duration(t)
	days := d / (24 * time.Hour)
	d -= days * 24 * time.Hour
	h := d / time.Hour
	d -= h * time.Hour
	m := d / time.Minute
	d -= m * time.Minute
	s := d / time.Second
	return fmt.Sprintf("D%d %02d:%02d:%02d", days, h, m, s)
}

// Event is a scheduled callback. The callback runs with the clock set to the
// event's time.
type Event struct {
	at       Time
	seq      uint64 // tie-break so equal-time events run in schedule order
	fn       func()
	canceled atomic.Bool // atomic: Cancel may come from any goroutine
	index    int         // heap index, -1 when popped
}

// Cancel prevents a pending event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Safe to call from any goroutine.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled.Store(true)
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled.Load() }

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a virtual clock with an attached event queue and a seeded RNG.
//
// The clock's own bookkeeping is mutex-protected, so scheduling calls
// (At/After, Now) may come from any goroutine. Execution, however, is
// strictly serialized: event callbacks run on the driver goroutine, and
// simulation goroutines (Go/WaitUntil, see concurrent.go) run one at a time
// under the clock's run token. Rand is the one exception — it must only be
// used while holding the run token (from event callbacks or simulation
// goroutines), which every simulated subsystem does naturally.
type Clock struct {
	mu     sync.Mutex
	idle   *sync.Cond // signaled when a simulation goroutine parks or exits
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	maxLen int

	// Run-token scheduler state (concurrent.go): the number of simulation
	// goroutines currently holding the token (0 or 1), the FIFO of
	// goroutines ready to take it, and the count of live Go goroutines.
	active     int
	runnable   []chan struct{}
	goroutines int
}

// New returns a clock at the epoch with an RNG seeded by seed.
func New(seed int64) *Clock {
	c := &Clock{rng: rand.New(rand.NewSource(seed))}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// Now returns the current simulated time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Rand returns the clock's deterministic RNG. All simulated randomness in
// the repository flows through this so that a campaign is reproducible from
// its seed. It must only be used under the clock's run token (from event
// callbacks or simulation goroutines), never from outside goroutines.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// Pending returns the number of events waiting in the queue (including
// canceled events that have not yet been discarded).
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Fired returns the total number of events executed so far.
func (c *Clock) Fired() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// MaxQueueLen returns the high-water mark of the event queue, useful for
// benchmarking the simulator itself.
func (c *Clock) MaxQueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxLen
}

// At schedules fn to run at absolute time t. Scheduling in the past (or at
// the current instant) runs the event at the current time, after all events
// already scheduled for that time.
func (c *Clock) At(t Time, fn func()) *Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.atLocked(t, fn)
}

func (c *Clock) atLocked(t Time, fn func()) *Event {
	if t < c.now {
		t = c.now
	}
	e := &Event{at: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.queue, e)
	if len(c.queue) > c.maxLen {
		c.maxLen = len(c.queue)
	}
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d Time, fn func()) *Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	return c.atLocked(c.now+d, fn)
}

// Ticker repeatedly schedules a callback at a fixed period until stopped.
// Stop is safe to call from any goroutine (subsystem drain paths stop
// their tickers from outside the event loop).
type Ticker struct {
	clock   *Clock
	period  Time
	fn      func()
	mu      sync.Mutex // guards event
	event   *Event
	stopped atomic.Bool
}

// Every schedules fn to run every period, with the first firing one full
// period from now. Stop the returned ticker to cease firing.
func (c *Clock) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("simclock: non-positive ticker period")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	e := t.clock.After(t.period, func() {
		if t.stopped.Load() {
			return
		}
		t.fn()
		if !t.stopped.Load() {
			t.schedule()
		}
	})
	t.mu.Lock()
	t.event = e
	t.mu.Unlock()
}

// Stop halts the ticker. It is safe to call multiple times, from any
// goroutine.
func (t *Ticker) Stop() {
	t.stopped.Store(true)
	t.mu.Lock()
	e := t.event
	t.mu.Unlock()
	e.Cancel()
}

// Step lets every runnable simulation goroutine proceed until it parks,
// then runs the next pending event, advancing the clock to its time.
// It reports whether an event was run.
func (c *Clock) Step() bool { return c.step(0, false) }

// step is Step with an optional time bound: when bounded, events past the
// limit stay queued and the bound check happens under the mutex, in the
// same critical section as the pop — a concurrent Cancel of the head
// event can therefore never let a later-than-limit event slip through.
func (c *Clock) step(limit Time, bounded bool) bool {
	c.mu.Lock()
	for {
		c.quiesceLocked()
		e := c.peekLocked()
		if e == nil || (bounded && e.at > limit) {
			c.mu.Unlock()
			return false
		}
		heap.Pop(&c.queue)
		if e.canceled.Load() {
			continue // canceled concurrently between peek and pop
		}
		c.now = e.at
		c.fired++
		c.mu.Unlock()
		e.fn()
		c.mu.Lock()
		c.quiesceLocked()
		c.mu.Unlock()
		return true
	}
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to exactly
// t. Events scheduled later remain pending; simulation goroutines blocked in
// WaitUntil past t stay parked and resume on a later run.
func (c *Clock) RunUntil(t Time) {
	for c.step(t, true) {
	}
	c.mu.Lock()
	c.quiesceLocked()
	if c.now < t {
		c.now = t
	}
	c.mu.Unlock()
}

// RunFor executes events for the next d of simulated time.
func (c *Clock) RunFor(d Time) { c.RunUntil(c.Now() + d) }

func (c *Clock) peekLocked() *Event {
	for len(c.queue) > 0 {
		e := c.queue[0]
		if !e.canceled.Load() {
			return e
		}
		heap.Pop(&c.queue)
	}
	return nil
}

// Sleeper helps sequential workflows (like a deployment) accumulate time
// without scheduling: it tracks a moving cursor starting at the clock's
// current time.
type Sleeper struct {
	cursor Time
}

// NewSleeper returns a Sleeper starting at t.
func NewSleeper(t Time) *Sleeper { return &Sleeper{cursor: t} }

// Advance moves the cursor forward by d and returns the new cursor.
func (s *Sleeper) Advance(d Time) Time {
	if d > 0 {
		s.cursor += d
	}
	return s.cursor
}

// Cursor returns the current cursor position.
func (s *Sleeper) Cursor() Time { return s.cursor }

// SyncTo moves the cursor to t if t is later than the cursor.
func (s *Sleeper) SyncTo(t Time) {
	if t > s.cursor {
		s.cursor = t
	}
}
