// Package admit is the grid-level admission layer between the gateway and
// the federation's per-site shards — the pooled meta-scheduler the real
// Grid'5000 front door needs once submissions stop naming a site.
//
// A submission without an anchor could be satisfied anywhere, so the
// controller scatters read-only CanStartNow probes across every live shard
// and routes the job to the least-loaded site that can start it right now.
// Requests no site can start enter a bounded, fairness-aware reservation
// queue with a per-request deadline instead of failing; every campaign
// advance (and every chaos transition) pumps the queue, placing whatever
// newly-freed capacity allows. When the queue is full the gateway sheds
// load with 429 + Retry-After — the layer never buffers unboundedly — and
// a per-site breaker trips placement away from sites that are down,
// partitioned, or persistently refusing work, so a site outage fails
// queued reservations fast and re-routes new arrivals.
//
// Determinism is preserved by construction. Probes are read-only and
// RNG-free, each lands in its own result slot, and the placement decision
// is a pure function of the gathered results (least busy/total load ratio,
// ties broken by lexicographically smallest site name) — so probing the
// shards serially or in parallel picks the same site. Time is an injected
// simulated-clock function and the controller spawns no goroutines of its
// own (the embedder supplies the fan-out), keeping the package clean under
// the repository's walltime and baregoroutine analyzers.
package admit

import (
	"sort"
	"sync"

	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// Backend is one site's placement surface. The gateway adapts each of its
// shards to this interface; probes and placements run under the shard's
// own read gate so they never block another site's progress.
type Backend interface {
	// Site returns the backend's site name (unique across backends).
	Site() string
	// Available reports whether the site is serving (false while an
	// outage, maintenance window or partition has it out of the grid).
	Available() bool
	// Capacity returns the site's allocated and total node counts.
	Capacity() (busy, total int)
	// CanPlace probes whether the request could start right now — a
	// read-only, RNG-free CanStartNow against the site's OAR.
	CanPlace(req oar.Request) bool
	// Place pins the request to the site and submits it. It errors only
	// when the site cannot take submissions at all (down mid-flight);
	// contention after a successful probe leaves the job in the site's
	// own OAR queue, which is placement, not failure.
	Place(req oar.Request, user string) (oar.JobInfo, error)
}

// Config parameterises a Controller. The zero value of every field gets a
// sensible default.
type Config struct {
	// QueueCap bounds the reservation queue; arrivals beyond it are shed
	// with 429 + Retry-After. Default 64.
	QueueCap int
	// Deadline is how long a reservation may wait (simulated time) before
	// it expires. Default 2 hours.
	Deadline simclock.Time
	// RetryAfterSec is the Retry-After hint attached to shed responses.
	// Default 30.
	RetryAfterSec int
	// BreakerThreshold is how many consecutive placement refusals trip a
	// site's breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long (simulated time) a tripped breaker holds
	// the site out of placement before a half-open probe. Default 30 min.
	BreakerCooldown simclock.Time
	// Now supplies the simulated clock (required): deadlines and breaker
	// cooldowns are measured in campaign time, not wall time.
	Now func() simclock.Time
	// Scatter, when set, runs the probe thunks concurrently and returns
	// when all are done (the gateway points it at a goroutine fan-out).
	// Nil runs them serially. Each thunk writes only its own result slot,
	// and placement is a pure function of the gathered slots, so the two
	// modes are bit-identical — E19's determinism gate proves it.
	Scatter func(tasks []func())
	// Policy, when set, is the grid-wide peak-hours policy: requests it
	// defers (whole-cluster demands during working hours) queue instead of
	// placing even when capacity is free.
	Policy *sched.GridPolicy
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * simclock.Hour
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 30
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * simclock.Minute
	}
	return c
}

// Status classifies an admission outcome.
type Status string

const (
	// Placed: a site could start the request now; it was submitted there.
	Placed Status = "placed"
	// Queued: no site could start it; a reservation waits in the queue.
	Queued Status = "queued"
	// Shed: the queue is full; the caller must retry after RetryAfterSec.
	Shed Status = "shed"
)

// Outcome is the result of one Admit call.
type Outcome struct {
	Status Status
	// Site and Job are set for Placed.
	Site string
	Job  oar.JobInfo
	// Reservation is set for Queued.
	Reservation ReservationJSON
	// RetryAfterSec is set for Shed.
	RetryAfterSec int
}

// ReservationJSON is the wire form of one queued reservation.
type ReservationJSON struct {
	ID            int     `json:"id"`
	Request       string  `json:"request"`
	User          string  `json:"user,omitempty"`
	Position      int     `json:"position"`
	EnqueuedAtSec float64 `json:"enqueued_at_sec"`
	DeadlineSec   float64 `json:"deadline_sec"`
}

// ResolvedJSON is one finished reservation in the recently-resolved ring.
type ResolvedJSON struct {
	ID      int     `json:"id"`
	Outcome string  `json:"outcome"` // placed | expired | failed
	Site    string  `json:"site,omitempty"`
	JobID   int     `json:"job_id,omitempty"`
	AtSec   float64 `json:"at_sec"`
}

// BreakerJSON is one site's breaker state on the wire.
type BreakerJSON struct {
	Site     string `json:"site"`
	State    string `json:"state"` // closed | open | half-open | site-down
	Failures int    `json:"failures,omitempty"`
}

// StatsJSON is the controller's counter block (also embedded in the
// gateway's /metrics report).
type StatsJSON struct {
	Depth        int   `json:"depth"`
	Capacity     int   `json:"capacity"`
	MaxDepth     int   `json:"max_depth"`
	Probes       int64 `json:"probes"`
	Placed       int64 `json:"placed"`
	Queued       int64 `json:"queued"`
	QueuedPlaced int64 `json:"queued_placed"`
	Shed         int64 `json:"shed"`
	Expired      int64 `json:"expired"`
	Failed       int64 `json:"failed"`
	DeferredPeak int64 `json:"deferred_peak,omitempty"`
}

// QueueJSON is the wire form of GET /admit/queue.
type QueueJSON struct {
	Stats    StatsJSON         `json:"stats"`
	Waiting  []ReservationJSON `json:"waiting"`
	Resolved []ResolvedJSON    `json:"resolved,omitempty"`
	Breakers []BreakerJSON     `json:"breakers"`
}

// resolvedRing bounds the recently-resolved history kept for /admit/queue.
const resolvedRing = 32

// reservation is one queued request.
type reservation struct {
	id       int
	req      oar.Request
	user     string
	enqueued simclock.Time
	deadline simclock.Time
}

// breaker is one site's failure tracker.
type breaker struct {
	failures int
	openedAt simclock.Time // set when failures reached the threshold
}

// Controller is the admission layer. One instance fronts all sites.
type Controller struct {
	cfg      Config
	backends []Backend // sorted by site name
	bySite   map[string]Backend

	mu       sync.Mutex
	queue    []*reservation
	nextID   int
	breakers map[string]*breaker
	resolved []ResolvedJSON // ring, oldest first once full
	resHead  int

	maxDepth     int
	probes       int64
	placed       int64
	queued       int64
	queuedPlaced int64
	shed         int64
	expired      int64
	failed       int64
	deferredPeak int64
}

// New builds a controller over the given backends. Backends are sorted by
// site name, so placement tiebreaks do not depend on registration order.
func New(cfg Config, backends []Backend) *Controller {
	if cfg.Now == nil {
		panic("admit: Config.Now is required")
	}
	sorted := append([]Backend(nil), backends...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Site() < sorted[j].Site() })
	c := &Controller{
		cfg:      cfg.withDefaults(),
		backends: sorted,
		bySite:   make(map[string]Backend, len(sorted)),
		breakers: map[string]*breaker{},
	}
	for _, b := range sorted {
		c.bySite[b.Site()] = b
	}
	return c
}

// probe is one backend's gathered probe result.
type probe struct {
	backend  Backend
	canStart bool
	busy     int
	total    int
}

// candidates returns the backends placement may consider right now: live
// sites whose breaker is closed (or due a half-open trial). Caller holds
// c.mu; the availability checks go to the chaos layer, not the shards, so
// they are cheap and lock-ordering-safe.
func (c *Controller) candidatesLocked(now simclock.Time) []Backend {
	out := make([]Backend, 0, len(c.backends))
	for _, b := range c.backends {
		if !b.Available() {
			continue
		}
		if br := c.breakers[b.Site()]; br != nil && br.failures >= c.cfg.BreakerThreshold {
			if now < br.openedAt+c.cfg.BreakerCooldown {
				continue // open: placement routed away
			}
			// Cooldown over: half-open, let one placement attempt through.
		}
		out = append(out, b)
	}
	return out
}

// scatterProbes probes the request against every candidate, serially or
// through the configured fan-out. Each thunk owns one result slot.
func (c *Controller) scatterProbes(cands []Backend, req oar.Request) []probe {
	results := make([]probe, len(cands))
	tasks := make([]func(), len(cands))
	for i, b := range cands {
		i, b := i, b
		tasks[i] = func() {
			busy, total := b.Capacity()
			results[i] = probe{backend: b, canStart: b.CanPlace(req), busy: busy, total: total}
		}
	}
	if c.cfg.Scatter != nil {
		c.cfg.Scatter(tasks)
	} else {
		for _, t := range tasks {
			t()
		}
	}
	return results
}

// pickSite chooses the least-loaded startable site: smallest busy/total
// ratio, compared by cross-multiplication so the decision stays in exact
// integer arithmetic; ties go to the lexicographically smallest site name
// (the probe slice is sorted by site already). Returns nil when no site
// can start the request.
func pickSite(probes []probe) Backend {
	var best *probe
	for i := range probes {
		p := &probes[i]
		if !p.canStart || p.total <= 0 {
			continue
		}
		if best == nil || p.busy*best.total < best.busy*p.total {
			best = p
		}
	}
	if best == nil {
		return nil
	}
	return best.backend
}

// Probe runs the placement probe without admitting anything: the dry-run
// form of Admit. It returns the site that would take the request now, or
// ok=false when no live site can start it.
func (c *Controller) Probe(req oar.Request) (site string, ok bool) {
	now := c.cfg.Now()
	c.mu.Lock()
	cands := c.candidatesLocked(now)
	c.mu.Unlock()
	results := c.scatterProbes(cands, req)
	c.mu.Lock()
	c.probes += int64(len(results))
	c.mu.Unlock()
	if b := pickSite(results); b != nil {
		return b.Site(), true
	}
	return "", false
}

// Admit routes one unanchored submission: place it on the least-loaded
// startable site, queue a reservation when nothing can start it, or shed
// when the queue is full.
func (c *Controller) Admit(req oar.Request, user string) Outcome {
	now := c.cfg.Now()
	c.mu.Lock()
	cands := c.candidatesLocked(now)
	c.mu.Unlock()

	allowNow := c.cfg.Policy == nil || c.cfg.Policy.AllowNow(req, now)
	var results []probe
	if allowNow {
		results = c.scatterProbes(cands, req)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.probes += int64(len(results))
	if !allowNow {
		c.deferredPeak++
	}
	if b := pickSite(results); b != nil {
		if info, err := c.placeLocked(b, req, user, now); err == nil {
			c.placed++
			return Outcome{Status: Placed, Site: b.Site(), Job: info}
		}
		// The probed site refused between probe and placement (downed
		// mid-flight); fall through to the queue like any other miss.
	}
	if len(c.queue) >= c.cfg.QueueCap {
		c.shed++
		return Outcome{Status: Shed, RetryAfterSec: c.cfg.RetryAfterSec}
	}
	c.nextID++
	r := &reservation{
		id:       c.nextID,
		req:      req,
		user:     user,
		enqueued: now,
		deadline: now + c.cfg.Deadline,
	}
	c.queue = append(c.queue, r)
	c.queued++
	if len(c.queue) > c.maxDepth {
		c.maxDepth = len(c.queue)
	}
	return Outcome{Status: Queued, Reservation: c.reservationJSONLocked(r, len(c.queue)-1)}
}

// placeLocked submits the request to the chosen site and keeps the site's
// breaker honest: success closes it, refusal counts toward tripping it.
// Caller holds c.mu; Place itself only touches the target shard.
func (c *Controller) placeLocked(b Backend, req oar.Request, user string, now simclock.Time) (oar.JobInfo, error) {
	info, err := b.Place(req, user)
	br := c.breakers[b.Site()]
	if err != nil {
		if br == nil {
			br = &breaker{}
			c.breakers[b.Site()] = br
		}
		br.failures++
		if br.failures == c.cfg.BreakerThreshold {
			br.openedAt = now
		}
		return oar.JobInfo{}, err
	}
	if br != nil {
		delete(c.breakers, b.Site())
	}
	return info, nil
}

// Pump drains what the queue can place right now: expired reservations
// fail, reservations are re-probed oldest first, and — the fairness
// property — a large request stuck at the head does not block smaller
// requests behind it (every entry gets its own probe, backfill style).
// Call it after every campaign advance and every chaos transition; it is a
// cheap no-op while the queue is empty.
func (c *Controller) Pump() {
	now := c.cfg.Now()
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return
	}
	pending := append([]*reservation(nil), c.queue...)
	cands := c.candidatesLocked(now)
	c.mu.Unlock()

	anyLive := len(cands) > 0
	type verdict struct {
		r       *reservation
		outcome string // keep | expired | failed | place
		site    Backend
	}
	verdicts := make([]verdict, 0, len(pending))
	for _, r := range pending {
		switch {
		case now >= r.deadline:
			verdicts = append(verdicts, verdict{r: r, outcome: "expired"})
		case !anyLive:
			// No live site anywhere: fail fast rather than let every
			// reservation sit out its deadline against a dead grid.
			verdicts = append(verdicts, verdict{r: r, outcome: "failed"})
		case c.cfg.Policy != nil && !c.cfg.Policy.AllowNow(r.req, now):
			verdicts = append(verdicts, verdict{r: r, outcome: "keep"})
		default:
			results := c.scatterProbes(cands, r.req)
			c.mu.Lock()
			c.probes += int64(len(results))
			c.mu.Unlock()
			if b := pickSite(results); b != nil {
				verdicts = append(verdicts, verdict{r: r, outcome: "place", site: b})
			} else {
				verdicts = append(verdicts, verdict{r: r, outcome: "keep"})
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	done := map[int]bool{}
	for _, v := range verdicts {
		switch v.outcome {
		case "expired":
			c.expired++
			c.resolveLocked(ResolvedJSON{ID: v.r.id, Outcome: "expired", AtSec: now.Seconds()})
			done[v.r.id] = true
		case "failed":
			c.failed++
			c.resolveLocked(ResolvedJSON{ID: v.r.id, Outcome: "failed", AtSec: now.Seconds()})
			done[v.r.id] = true
		case "place":
			info, err := c.placeLocked(v.site, v.r.req, v.r.user, now)
			if err != nil {
				continue // site lost mid-pump; the reservation stays queued
			}
			c.queuedPlaced++
			c.resolveLocked(ResolvedJSON{
				ID: v.r.id, Outcome: "placed", Site: v.site.Site(),
				JobID: info.ID, AtSec: now.Seconds(),
			})
			done[v.r.id] = true
		}
	}
	if len(done) > 0 {
		kept := c.queue[:0]
		for _, r := range c.queue {
			if !done[r.id] {
				kept = append(kept, r)
			}
		}
		c.queue = kept
	}
}

// resolveLocked appends to the bounded recently-resolved ring.
func (c *Controller) resolveLocked(r ResolvedJSON) {
	if len(c.resolved) < resolvedRing {
		c.resolved = append(c.resolved, r)
		return
	}
	c.resolved[c.resHead] = r
	c.resHead++
	if c.resHead == len(c.resolved) {
		c.resHead = 0
	}
}

func (c *Controller) reservationJSONLocked(r *reservation, pos int) ReservationJSON {
	return ReservationJSON{
		ID:            r.id,
		Request:       r.req.String(),
		User:          r.user,
		Position:      pos,
		EnqueuedAtSec: r.enqueued.Seconds(),
		DeadlineSec:   r.deadline.Seconds(),
	}
}

// Stats snapshots the counter block.
func (c *Controller) Stats() StatsJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

func (c *Controller) statsLocked() StatsJSON {
	return StatsJSON{
		Depth:        len(c.queue),
		Capacity:     c.cfg.QueueCap,
		MaxDepth:     c.maxDepth,
		Probes:       c.probes,
		Placed:       c.placed,
		Queued:       c.queued,
		QueuedPlaced: c.queuedPlaced,
		Shed:         c.shed,
		Expired:      c.expired,
		Failed:       c.failed,
		DeferredPeak: c.deferredPeak,
	}
}

// Queue snapshots the full observability view (what GET /admit/queue
// serves): counters, waiting reservations in FIFO order, the
// recently-resolved ring, and every site's breaker state.
func (c *Controller) Queue() QueueJSON {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := QueueJSON{
		Stats:    c.statsLocked(),
		Waiting:  make([]ReservationJSON, 0, len(c.queue)),
		Breakers: make([]BreakerJSON, 0, len(c.backends)),
	}
	for i, r := range c.queue {
		out.Waiting = append(out.Waiting, c.reservationJSONLocked(r, i))
	}
	out.Resolved = append(out.Resolved, c.resolved[c.resHead:]...)
	out.Resolved = append(out.Resolved, c.resolved[:c.resHead]...)
	for _, b := range c.backends {
		bj := BreakerJSON{Site: b.Site(), State: "closed"}
		if !b.Available() {
			bj.State = "site-down"
		}
		if br := c.breakers[b.Site()]; br != nil {
			bj.Failures = br.failures
			if br.failures >= c.cfg.BreakerThreshold {
				if now < br.openedAt+c.cfg.BreakerCooldown {
					bj.State = "open"
				} else if bj.State == "closed" {
					bj.State = "half-open"
				}
			}
		}
		out.Breakers = append(out.Breakers, bj)
	}
	return out
}
