package admit

import (
	"fmt"
	"testing"

	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// fakeBackend is a minimal site: a slot pool where every segment node costs
// one slot and placement succeeds iff the request fits the free slots.
type fakeBackend struct {
	site      string
	available bool
	total     int
	busy      int
	placeErr  error
	placed    []string // request strings, in placement order
	nextJob   int
}

func (f *fakeBackend) Site() string         { return f.site }
func (f *fakeBackend) Available() bool      { return f.available }
func (f *fakeBackend) Capacity() (int, int) { return f.busy, f.total }
func (f *fakeBackend) CanPlace(r oar.Request) bool {
	return f.available && nodesOf(r, f.total) <= f.total-f.busy
}
func (f *fakeBackend) Place(r oar.Request, user string) (oar.JobInfo, error) {
	if f.placeErr != nil {
		return oar.JobInfo{}, f.placeErr
	}
	f.busy += nodesOf(r, f.total)
	f.nextJob++
	f.placed = append(f.placed, r.String())
	return oar.JobInfo{ID: f.nextJob, User: user, Request: r.String(), State: "Running"}, nil
}

func nodesOf(r oar.Request, poolTotal int) int {
	n := 0
	for _, seg := range r.Segments {
		if seg.Nodes == oar.AllNodes {
			n += poolTotal // "whole cluster": the entire fake pool
			continue
		}
		n += seg.Nodes
	}
	return n
}

func mustReq(t testing.TB, s string) oar.Request {
	t.Helper()
	r, err := oar.ParseRequest(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return r
}

// newTestController builds a controller over the given backends with a
// manually stepped simulated clock.
func newTestController(cfg Config, backends ...*fakeBackend) (*Controller, *simclock.Time) {
	now := new(simclock.Time)
	cfg.Now = func() simclock.Time { return *now }
	bs := make([]Backend, len(backends))
	for i, b := range backends {
		bs[i] = b
	}
	return New(cfg, bs), now
}

func TestAdmitRoutesToLeastLoadedSite(t *testing.T) {
	// nancy is busier (4/8) than rennes (1/8); grenoble is smaller but
	// idle (0/4). Ratios: nancy 0.5, rennes 0.125, grenoble 0 → grenoble.
	nancy := &fakeBackend{site: "nancy", available: true, total: 8, busy: 4}
	rennes := &fakeBackend{site: "rennes", available: true, total: 8, busy: 1}
	grenoble := &fakeBackend{site: "grenoble", available: true, total: 4}
	c, _ := newTestController(Config{}, nancy, rennes, grenoble)

	out := c.Admit(mustReq(t, "nodes=2,walltime=1"), "alice")
	if out.Status != Placed || out.Site != "grenoble" {
		t.Fatalf("admit = %+v, want placed at grenoble", out)
	}
	if out.Job.ID == 0 || out.Job.User != "alice" {
		t.Fatalf("job = %+v", out.Job)
	}
	// grenoble is now 2/4 (0.5); rennes (0.125) wins the next one.
	if out := c.Admit(mustReq(t, "nodes=1,walltime=1"), "bob"); out.Site != "rennes" {
		t.Fatalf("second admit went to %q, want rennes", out.Site)
	}
}

func TestAdmitTiebreakIsLexicographic(t *testing.T) {
	// Equal load either way round: the smaller site name must win,
	// regardless of backend registration order.
	for _, order := range [][]string{{"nantes", "lyon"}, {"lyon", "nantes"}} {
		var backends []*fakeBackend
		for _, site := range order {
			backends = append(backends, &fakeBackend{site: site, available: true, total: 8, busy: 2})
		}
		c, _ := newTestController(Config{}, backends...)
		out := c.Admit(mustReq(t, "nodes=1,walltime=1"), "u")
		if out.Status != Placed || out.Site != "lyon" {
			t.Fatalf("order %v: admit = %+v, want lyon", order, out)
		}
	}
}

func TestAdmitSkipsDownSites(t *testing.T) {
	down := &fakeBackend{site: "lyon", available: false, total: 8}
	up := &fakeBackend{site: "nancy", available: true, total: 8, busy: 7}
	c, _ := newTestController(Config{}, down, up)
	out := c.Admit(mustReq(t, "nodes=1,walltime=1"), "u")
	if out.Status != Placed || out.Site != "nancy" {
		t.Fatalf("admit = %+v, want placed at nancy", out)
	}
}

func TestQueueBoundsAndShedding(t *testing.T) {
	full := &fakeBackend{site: "lyon", available: true, total: 2, busy: 2}
	c, _ := newTestController(Config{QueueCap: 3, RetryAfterSec: 7}, full)

	req := mustReq(t, "nodes=1,walltime=1")
	for i := 0; i < 3; i++ {
		out := c.Admit(req, "u")
		if out.Status != Queued {
			t.Fatalf("admit %d = %+v, want queued", i, out)
		}
		if out.Reservation.Position != i {
			t.Fatalf("admit %d queued at position %d", i, out.Reservation.Position)
		}
	}
	out := c.Admit(req, "u")
	if out.Status != Shed || out.RetryAfterSec != 7 {
		t.Fatalf("overflow admit = %+v, want shed with Retry-After 7", out)
	}
	st := c.Stats()
	if st.Depth != 3 || st.MaxDepth != 3 || st.Shed != 1 || st.Queued != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPumpPlacesFreedCapacity(t *testing.T) {
	lyon := &fakeBackend{site: "lyon", available: true, total: 2, busy: 2}
	c, _ := newTestController(Config{}, lyon)
	req := mustReq(t, "nodes=2,walltime=1")
	if out := c.Admit(req, "u"); out.Status != Queued {
		t.Fatalf("admit = %+v, want queued", out)
	}
	c.Pump() // still full: nothing moves
	if st := c.Stats(); st.Depth != 1 || st.QueuedPlaced != 0 {
		t.Fatalf("stats after no-op pump = %+v", st)
	}
	lyon.busy = 0 // capacity frees
	c.Pump()
	st := c.Stats()
	if st.Depth != 0 || st.QueuedPlaced != 1 {
		t.Fatalf("stats after pump = %+v", st)
	}
	if len(lyon.placed) != 1 {
		t.Fatalf("lyon placed %d jobs, want 1", len(lyon.placed))
	}
	q := c.Queue()
	if len(q.Resolved) != 1 || q.Resolved[0].Outcome != "placed" || q.Resolved[0].Site != "lyon" {
		t.Fatalf("resolved ring = %+v", q.Resolved)
	}
}

// TestPumpFairness proves no starvation of small requests behind a large
// head-of-line request: the stuck whole-pool reservation stays queued while
// the one-node reservation behind it backfills into freed capacity.
func TestPumpFairness(t *testing.T) {
	lyon := &fakeBackend{site: "lyon", available: true, total: 4, busy: 4}
	c, _ := newTestController(Config{}, lyon)
	big := c.Admit(mustReq(t, "nodes=4,walltime=1"), "big")
	small := c.Admit(mustReq(t, "nodes=1,walltime=1"), "small")
	if big.Status != Queued || small.Status != Queued {
		t.Fatalf("admits = %v, %v, want both queued", big.Status, small.Status)
	}

	lyon.busy = 3 // one node frees: enough for small, not for big
	c.Pump()
	st := c.Stats()
	if st.QueuedPlaced != 1 {
		t.Fatalf("pump placed %d, want the small request placed", st.QueuedPlaced)
	}
	if st.Depth != 1 {
		t.Fatalf("queue depth %d after pump, want the big request still waiting", st.Depth)
	}
	q := c.Queue()
	if len(q.Waiting) != 1 || q.Waiting[0].ID != big.Reservation.ID {
		t.Fatalf("waiting = %+v, want only the big reservation", q.Waiting)
	}
	if len(q.Resolved) != 1 || q.Resolved[0].ID != small.Reservation.ID {
		t.Fatalf("resolved = %+v, want the small reservation placed", q.Resolved)
	}

	lyon.busy = 0 // everything frees: the big request finally places
	c.Pump()
	if st := c.Stats(); st.Depth != 0 || st.QueuedPlaced != 2 {
		t.Fatalf("stats after final pump = %+v", st)
	}
}

func TestPumpExpiresPastDeadline(t *testing.T) {
	full := &fakeBackend{site: "lyon", available: true, total: 1, busy: 1}
	c, now := newTestController(Config{Deadline: simclock.Hour}, full)
	out := c.Admit(mustReq(t, "nodes=1,walltime=1"), "u")
	if out.Status != Queued {
		t.Fatalf("admit = %+v", out)
	}
	if out.Reservation.DeadlineSec != simclock.Hour.Seconds() {
		t.Fatalf("deadline = %v, want 1h", out.Reservation.DeadlineSec)
	}
	*now = simclock.Hour // deadline reached
	c.Pump()
	st := c.Stats()
	if st.Depth != 0 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want the reservation expired", st)
	}
}

// TestPumpFailsFastWithNoLiveSites: a reservation against a grid with no
// live site must fail immediately, well before its deadline.
func TestPumpFailsFastWithNoLiveSites(t *testing.T) {
	lyon := &fakeBackend{site: "lyon", available: true, total: 1, busy: 1}
	c, _ := newTestController(Config{Deadline: simclock.Day}, lyon)
	if out := c.Admit(mustReq(t, "nodes=1,walltime=1"), "u"); out.Status != Queued {
		t.Fatalf("admit = %+v", out)
	}
	lyon.available = false // the only site goes down
	c.Pump()
	st := c.Stats()
	if st.Depth != 0 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want the reservation failed fast", st)
	}
	q := c.Queue()
	if len(q.Resolved) != 1 || q.Resolved[0].Outcome != "failed" {
		t.Fatalf("resolved = %+v", q.Resolved)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	// lyon probes as startable but refuses every placement (down
	// mid-flight); nancy has no capacity. After BreakerThreshold refusals,
	// lyon drops out of the candidate set until the cooldown passes.
	lyon := &fakeBackend{site: "lyon", available: true, total: 8, placeErr: fmt.Errorf("shard down")}
	nancy := &fakeBackend{site: "nancy", available: true, total: 1, busy: 1}
	c, now := newTestController(Config{BreakerThreshold: 2, BreakerCooldown: simclock.Hour}, lyon, nancy)
	req := mustReq(t, "nodes=1,walltime=1")

	for i := 0; i < 2; i++ {
		if out := c.Admit(req, "u"); out.Status != Queued {
			t.Fatalf("admit %d = %+v, want queued after refusal", i, out)
		}
	}
	q := c.Queue()
	if q.Breakers[0].Site != "lyon" || q.Breakers[0].State != "open" {
		t.Fatalf("breakers = %+v, want lyon open", q.Breakers)
	}
	// Tripped: lyon is not even probed; arrivals queue without touching it.
	before := len(lyon.placed)
	if out := c.Admit(req, "u"); out.Status != Queued {
		t.Fatalf("admit while open = %+v", out)
	}
	if len(lyon.placed) != before {
		t.Fatal("placement reached a tripped site")
	}

	// Cooldown over and the site actually healed: the half-open trial
	// places, which closes the breaker.
	*now = simclock.Hour
	lyon.placeErr = nil
	if out := c.Admit(req, "u"); out.Status != Placed || out.Site != "lyon" {
		t.Fatalf("half-open admit = %+v, want placed at lyon", out)
	}
	q = c.Queue()
	if q.Breakers[0].State != "closed" {
		t.Fatalf("breakers after recovery = %+v, want lyon closed", q.Breakers)
	}
}

// TestAdmitDeterministicSerialVsParallelScatter: the same admission
// sequence through a serial and a concurrent Scatter must pick identical
// sites — the pure-decision property E19 gates end to end.
func TestAdmitDeterministicSerialVsParallelScatter(t *testing.T) {
	build := func(scatter func([]func())) *Controller {
		a := &fakeBackend{site: "lyon", available: true, total: 6}
		b := &fakeBackend{site: "nancy", available: true, total: 4}
		d := &fakeBackend{site: "rennes", available: true, total: 8, busy: 3}
		c, _ := newTestController(Config{Scatter: scatter}, a, b, d)
		return c
	}
	parallel := func(tasks []func()) {
		donech := make(chan struct{})
		for _, task := range tasks {
			task := task
			go func() { task(); donech <- struct{}{} }()
		}
		for range tasks {
			<-donech
		}
	}
	serial, conc := build(nil), build(parallel)
	reqs := []string{
		"nodes=2,walltime=1", "nodes=1,walltime=1", "nodes=3,walltime=2",
		"nodes=1,walltime=1", "nodes=2,walltime=1", "nodes=4,walltime=1",
	}
	for i, rs := range reqs {
		req := mustReq(t, rs)
		a, b := serial.Admit(req, "u"), conc.Admit(req, "u")
		if a.Status != b.Status || a.Site != b.Site {
			t.Fatalf("request %d diverged: serial (%s,%s) vs parallel (%s,%s)",
				i, a.Status, a.Site, b.Status, b.Site)
		}
	}
	if serial.Stats() != conc.Stats() {
		t.Fatalf("stats diverged:\nserial:   %+v\nparallel: %+v", serial.Stats(), conc.Stats())
	}
}

func TestPeakPolicyDefersWholeClusterRequests(t *testing.T) {
	pol := sched.DefaultGridPolicy()
	idle := &fakeBackend{site: "lyon", available: true, total: 8}
	c, now := newTestController(Config{Policy: &pol, Deadline: simclock.Day}, idle)

	// Monday 10:00 (the simulated epoch is a Monday at 00:00).
	*now = 10 * simclock.Hour
	if !pol.InPeak(*now) {
		t.Fatal("Monday 10:00 should be peak")
	}
	out := c.Admit(mustReq(t, "nodes=ALL,walltime=1"), "u")
	if out.Status != Queued {
		t.Fatalf("whole-cluster admit during peak = %+v, want queued", out)
	}
	if st := c.Stats(); st.DeferredPeak != 1 {
		t.Fatalf("stats = %+v, want deferred_peak 1", st)
	}
	// Small requests place freely during peak.
	if out := c.Admit(mustReq(t, "nodes=1,walltime=1"), "u"); out.Status != Placed {
		t.Fatalf("small admit during peak = %+v, want placed", out)
	}
	// Off-peak and with the pool drained, the queued whole-cluster request
	// pumps through.
	*now = 20 * simclock.Hour
	idle.busy = 0
	c.Pump()
	if st := c.Stats(); st.Depth != 0 || st.QueuedPlaced != 1 {
		t.Fatalf("stats after off-peak pump = %+v", st)
	}
}
