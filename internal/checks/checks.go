// Package checks implements the g5k-checks equivalent (slide 7): a per-node
// verification tool that acquires the node's actual hardware inventory (the
// real tool shells out to OHAI, ethtool, dmidecode...) and compares it with
// the Reference API description. Mismatches mean either broken hardware or
// a stale description — both harm experiment reproducibility.
//
// Like the real tool, it runs at node boot (wired into deployment flows by
// internal/core) or manually (the refapi test family runs it across whole
// clusters).
package checks

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Report is the outcome of checking one node.
type Report struct {
	Node       string
	At         simclock.Time
	OK         bool
	Mismatches []refapi.Difference
}

// Summary renders a one-line, operator-friendly verdict.
func (r *Report) Summary() string {
	if r.OK {
		return fmt.Sprintf("%s: OK", r.Node)
	}
	fields := make([]string, len(r.Mismatches))
	for i, m := range r.Mismatches {
		fields[i] = m.Field
	}
	return fmt.Sprintf("%s: %d mismatch(es): %s", r.Node, len(r.Mismatches), strings.Join(fields, ", "))
}

// Checker verifies nodes against a reference store.
type Checker struct {
	clock *simclock.Clock
	tb    *testbed.Testbed
	ref   *refapi.Store

	runs int
}

// NewChecker returns a checker bound to the testbed and reference store.
func NewChecker(clock *simclock.Clock, tb *testbed.Testbed, ref *refapi.Store) *Checker {
	return &Checker{clock: clock, tb: tb, ref: ref}
}

// Runs returns how many node checks have been performed.
func (c *Checker) Runs() int { return c.runs }

// Acquire reads the node's live inventory, as OHAI/ethtool would. It is a
// deep copy: callers can compare or store it without aliasing live state.
func (c *Checker) Acquire(node string) (testbed.Inventory, error) {
	n := c.tb.Node(node)
	if n == nil {
		return testbed.Inventory{}, fmt.Errorf("checks: unknown node %q", node)
	}
	return n.Inv.Clone(), nil
}

// CheckNode verifies one node against the current reference description.
func (c *Checker) CheckNode(node string) (*Report, error) {
	c.runs++
	inv, err := c.Acquire(node)
	if err != nil {
		return nil, err
	}
	ref, err := c.ref.Describe(node)
	if err != nil {
		return nil, err
	}
	diffs := refapi.DiffInventories(node, ref.Inv, inv)
	return &Report{
		Node:       node,
		At:         c.clock.Now(),
		OK:         len(diffs) == 0,
		Mismatches: diffs,
	}, nil
}

// CheckCluster verifies every node of a cluster, returning reports sorted
// by node name and the list of failing nodes.
func (c *Checker) CheckCluster(cluster string) ([]*Report, []string, error) {
	cl := c.tb.Cluster(cluster)
	if cl == nil {
		return nil, nil, fmt.Errorf("checks: unknown cluster %q", cluster)
	}
	var reports []*Report
	var failing []string
	for _, n := range cl.Nodes {
		r, err := c.CheckNode(n.Name)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, r)
		if !r.OK {
			failing = append(failing, n.Name)
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Node < reports[j].Node })
	sort.Strings(failing)
	return reports, failing, nil
}

// HomogeneityReport lists, for a field extractor, the distinct values seen
// across a cluster's live inventories. Clusters are supposed to be uniform;
// more than one value means some nodes drifted (e.g. the paper's "different
// disk firmware versions" bug) even if the reference description itself is
// stale.
func (c *Checker) HomogeneityReport(cluster string, field func(testbed.Inventory) string) (map[string][]string, error) {
	cl := c.tb.Cluster(cluster)
	if cl == nil {
		return nil, fmt.Errorf("checks: unknown cluster %q", cluster)
	}
	byValue := map[string][]string{}
	for _, n := range cl.Nodes {
		v := field(n.Inv)
		byValue[v] = append(byValue[v], n.Name)
	}
	for _, nodes := range byValue {
		sort.Strings(nodes)
	}
	return byValue, nil
}
