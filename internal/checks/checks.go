// Package checks implements the g5k-checks equivalent (slide 7): a per-node
// verification tool that acquires the node's actual hardware inventory (the
// real tool shells out to OHAI, ethtool, dmidecode...) and compares it with
// the Reference API description. Mismatches mean either broken hardware or
// a stale description — both harm experiment reproducibility.
//
// Like the real tool, it runs at node boot (wired into deployment flows by
// internal/core) or manually (the refapi test family runs it across whole
// clusters).
//
// The verification hot path is allocation-free: CheckNodeInto borrows the
// node's live inventory (no clone — the simulation's run token serializes
// it against fault mutations) and diffs it field-by-field into a reused
// report buffer; strings are only built for fields that diverge. Cluster
// and whole-testbed sweeps shard the nodes across simulation goroutines
// (CheckClusterParallel / CheckTestbedParallel), the same run-token
// concurrency the CI executor pool uses.
package checks

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Report is the outcome of checking one node.
type Report struct {
	Node       string
	At         simclock.Time
	OK         bool
	Mismatches []refapi.Difference
}

// Summary renders a one-line, operator-friendly verdict.
func (r *Report) Summary() string {
	if r.OK {
		return r.Node + ": OK"
	}
	var b strings.Builder
	b.Grow(len(r.Node) + 24 + 16*len(r.Mismatches))
	b.WriteString(r.Node)
	b.WriteString(": ")
	b.WriteString(strconv.Itoa(len(r.Mismatches)))
	b.WriteString(" mismatch(es): ")
	for i, m := range r.Mismatches {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(m.Field)
	}
	return b.String()
}

// Checker verifies nodes against a reference store.
type Checker struct {
	clock *simclock.Clock
	tb    *testbed.Testbed
	ref   *refapi.Store

	// CheckCost is the simulated time one node check occupies during
	// parallel sweeps (the real g5k-checks takes tens of seconds per boot).
	// Zero — the default — keeps sweeps instantaneous in simulated time,
	// preserving the timing of campaigns that predate parallel sweeps. Set
	// it before starting sweeps, not concurrently with one.
	CheckCost simclock.Time

	runs atomic.Int64
}

// NewChecker returns a checker bound to the testbed and reference store.
func NewChecker(clock *simclock.Clock, tb *testbed.Testbed, ref *refapi.Store) *Checker {
	return &Checker{clock: clock, tb: tb, ref: ref}
}

// Runs returns how many node checks have been performed. Safe to call
// concurrently with checks running on executor goroutines.
func (c *Checker) Runs() int { return int(c.runs.Load()) }

// Acquire reads the node's live inventory, as OHAI/ethtool would. It is a
// deep copy: callers can compare or store it without aliasing live state.
func (c *Checker) Acquire(node string) (testbed.Inventory, error) {
	n := c.tb.Node(node)
	if n == nil {
		return testbed.Inventory{}, fmt.Errorf("checks: unknown node %q", node)
	}
	return n.Inv.Clone(), nil
}

// CheckNode verifies one node against the current reference description.
func (c *Checker) CheckNode(node string) (*Report, error) {
	rep := &Report{}
	if err := c.CheckNodeInto(node, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// CheckNodeInto verifies one node, writing the outcome into rep. The
// report's Mismatches slice is reused (truncated and appended to), so a
// caller sweeping many nodes with one report performs zero allocations per
// clean node. The live inventory is borrowed for the comparison, not
// cloned: the diff only reads it, and the simulation's run token (plus the
// testbed's ownership rules) serializes reads against fault mutations.
func (c *Checker) CheckNodeInto(node string, rep *Report) error {
	c.runs.Add(1)
	n := c.tb.Node(node)
	if n == nil {
		return fmt.Errorf("checks: unknown node %q", node)
	}
	ref, err := c.ref.Describe(node)
	if err != nil {
		return err
	}
	rep.Node = node
	rep.At = c.clock.Now()
	rep.Mismatches = refapi.AppendDiff(rep.Mismatches[:0], node, ref.Inv, n.Inv)
	rep.OK = len(rep.Mismatches) == 0
	return nil
}

// CheckCluster verifies every node of a cluster, returning reports sorted
// by node name and the list of failing nodes.
func (c *Checker) CheckCluster(cluster string) ([]*Report, []string, error) {
	cl := c.tb.Cluster(cluster)
	if cl == nil {
		return nil, nil, fmt.Errorf("checks: unknown cluster %q", cluster)
	}
	var reports []*Report
	var failing []string
	for _, n := range cl.Nodes {
		r, err := c.CheckNode(n.Name)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, r)
		if !r.OK {
			failing = append(failing, n.Name)
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Node < reports[j].Node })
	sort.Strings(failing)
	return reports, failing, nil
}

// CheckClusterParallel verifies every node of a cluster by sharding the
// checks across `workers` simulation goroutines, each check occupying
// CheckCost of simulated time on its worker — the deterministic analogue
// of fanning g5k-checks out over the management network. Results match
// CheckCluster: reports sorted by node name plus the failing list.
//
// Like the CI executor pool it mirrors, the sweep runs on run-token
// goroutines: call it from a simulation goroutine (a CI build script, or a
// function handed to Clock.Go), never from the driver.
func (c *Checker) CheckClusterParallel(cluster string, workers int) ([]*Report, []string, error) {
	cl := c.tb.Cluster(cluster)
	if cl == nil {
		return nil, nil, fmt.Errorf("checks: unknown cluster %q", cluster)
	}
	return c.sweep(cl.Nodes, workers)
}

// CheckTestbedParallel verifies every node of the testbed with a sharded
// sweep — the whole-campaign version of CheckClusterParallel, with the
// same calling convention.
func (c *Checker) CheckTestbedParallel(workers int) ([]*Report, []string, error) {
	return c.sweep(c.tb.Nodes(), workers)
}

// sweep fans the node list out over `workers` simulation goroutines in a
// strided shard (worker w checks nodes w, w+workers, ...), joins on a
// latch, and aggregates. Workers write disjoint slots of the result slice,
// so the shards never contend.
func (c *Checker) sweep(nodes []*testbed.Node, workers int) ([]*Report, []string, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	reports := make([]*Report, len(nodes))
	errs := make([]error, workers)
	latch := c.clock.NewLatch(workers)
	for w := 0; w < workers; w++ {
		w := w
		c.clock.Go(func() {
			defer latch.Done()
			for i := w; i < len(nodes); i += workers {
				rep := &Report{}
				if err := c.CheckNodeInto(nodes[i].Name, rep); err != nil {
					errs[w] = err
					return
				}
				reports[i] = rep
				if c.CheckCost > 0 {
					c.clock.Sleep(c.CheckCost)
				}
			}
		})
	}
	latch.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Node < reports[j].Node })
	var failing []string
	for _, r := range reports {
		if !r.OK {
			failing = append(failing, r.Node)
		}
	}
	return reports, failing, nil
}

// HomogeneityReport lists, for a field extractor, the distinct values seen
// across a cluster's live inventories. Clusters are supposed to be uniform;
// more than one value means some nodes drifted (e.g. the paper's "different
// disk firmware versions" bug) even if the reference description itself is
// stale.
func (c *Checker) HomogeneityReport(cluster string, field func(testbed.Inventory) string) (map[string][]string, error) {
	cl := c.tb.Cluster(cluster)
	if cl == nil {
		return nil, fmt.Errorf("checks: unknown cluster %q", cluster)
	}
	byValue := map[string][]string{}
	for _, n := range cl.Nodes {
		v := field(n.Inv)
		byValue[v] = append(byValue[v], n.Name)
	}
	for _, nodes := range byValue {
		sort.Strings(nodes)
	}
	return byValue, nil
}
