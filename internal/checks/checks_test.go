package checks

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func setup() (*simclock.Clock, *testbed.Testbed, *faults.Injector, *Checker) {
	c := simclock.New(31)
	tb := testbed.Default()
	ref := refapi.NewStore(tb, c.Now())
	inj := faults.NewInjector(c, tb)
	return c, tb, inj, NewChecker(c, tb, ref)
}

func TestHealthyNodePasses(t *testing.T) {
	_, _, _, ch := setup()
	r, err := ch.CheckNode("griffon-42.nancy")
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("healthy node failed check: %v", r.Mismatches)
	}
	if r.Summary() != "griffon-42.nancy: OK" {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestFaultedNodeFails(t *testing.T) {
	_, _, inj, ch := setup()
	node := "suno-7.sophia"
	inj.InjectNode(faults.DiskFirmwareDrift, node)
	inj.InjectNode(faults.CStatesOn, node)
	r, err := ch.CheckNode(node)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("drifted node passed check")
	}
	if len(r.Mismatches) != 2 {
		t.Fatalf("mismatches = %v", r.Mismatches)
	}
	if !strings.Contains(r.Summary(), "2 mismatch(es)") {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestBehaviouralFaultInvisibleToChecks(t *testing.T) {
	_, _, inj, ch := setup()
	node := "suno-8.sophia"
	inj.InjectNode(faults.DiskDying, node)
	inj.InjectNode(faults.RandomReboots, node)
	r, _ := ch.CheckNode(node)
	if !r.OK {
		t.Fatalf("behavioural faults visible in description diff: %v", r.Mismatches)
	}
}

func TestCheckAfterFixPasses(t *testing.T) {
	_, _, inj, ch := setup()
	node := "edel-9.grenoble"
	f, _ := inj.InjectNode(faults.RAMLoss, node)
	if r, _ := ch.CheckNode(node); r.OK {
		t.Fatal("RAM loss not detected")
	}
	inj.Fix(f.ID)
	if r, _ := ch.CheckNode(node); !r.OK {
		t.Fatal("node still failing after fix")
	}
}

func TestCheckUnknownNode(t *testing.T) {
	_, _, _, ch := setup()
	if _, err := ch.CheckNode("ghost-1.limbo"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestAcquireDoesNotAlias(t *testing.T) {
	_, tb, _, ch := setup()
	inv, err := ch.Acquire("sol-1.sophia")
	if err != nil {
		t.Fatal(err)
	}
	inv.Disks[0].Firmware = "HACKED"
	if tb.Node("sol-1.sophia").Inv.Disks[0].Firmware == "HACKED" {
		t.Fatal("Acquire aliases live state")
	}
}

func TestCheckCluster(t *testing.T) {
	_, tb, inj, ch := setup()
	inj.InjectNode(faults.TurboFlip, "helios-3.sophia")
	inj.InjectNode(faults.WrongKernel, "helios-17.sophia")
	reports, failing, err := ch.CheckCluster("helios")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(tb.Cluster("helios").Nodes) {
		t.Fatalf("reports = %d", len(reports))
	}
	if len(failing) != 2 || failing[0] != "helios-17.sophia" || failing[1] != "helios-3.sophia" {
		t.Fatalf("failing = %v", failing)
	}
	if _, _, err := ch.CheckCluster("nimbus"); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if ch.Runs() != len(reports)+0 {
		t.Fatalf("runs = %d", ch.Runs())
	}
}

// CheckNodeInto must reuse the caller's report: sweeping clean nodes with
// one report performs zero allocations.
func TestCheckNodeIntoZeroAlloc(t *testing.T) {
	_, _, _, ch := setup()
	rep := &Report{}
	if err := ch.CheckNodeInto("taurus-1.lyon", rep); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ch.CheckNodeInto("taurus-1.lyon", rep); err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("healthy node failed: %v", rep.Mismatches)
		}
	})
	if allocs != 0 {
		t.Fatalf("clean-node check allocates %v times per run, want 0", allocs)
	}
}

// CheckNodeInto truncates stale mismatches from a reused report.
func TestCheckNodeIntoReusedReportResets(t *testing.T) {
	_, _, inj, ch := setup()
	inj.InjectNode(faults.RAMLoss, "sol-2.sophia")
	rep := &Report{}
	if err := ch.CheckNodeInto("sol-2.sophia", rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || len(rep.Mismatches) != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	if err := ch.CheckNodeInto("sol-3.sophia", rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Mismatches) != 0 || rep.Node != "sol-3.sophia" {
		t.Fatalf("reused report kept stale state: %+v", rep)
	}
}

// The runs counter must be safe under real concurrency: checkers are
// reachable from CI executor goroutines. Run with -race.
func TestRunsCounterConcurrent(t *testing.T) {
	_, tb, _, ch := setup()
	nodes := tb.Cluster("griffon").Nodes
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := ch.CheckNode(nodes[(g*perG+i)%len(nodes)].Name); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ch.Runs(); got != goroutines*perG {
		t.Fatalf("runs = %d, want %d", got, goroutines*perG)
	}
}

// CheckClusterParallel must produce exactly CheckCluster's answer, for any
// worker count, from a simulation goroutine.
func TestCheckClusterParallelMatchesSequential(t *testing.T) {
	clock, _, inj, ch := setup()
	inj.InjectNode(faults.TurboFlip, "helios-3.sophia")
	inj.InjectNode(faults.WrongKernel, "helios-17.sophia")
	seqReports, seqFailing, err := ch.CheckCluster("helios")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 4, 100} {
		var reports []*Report
		var failing []string
		var perr error
		clock.Go(func() { reports, failing, perr = ch.CheckClusterParallel("helios", workers) })
		clock.Run()
		if perr != nil {
			t.Fatal(perr)
		}
		if len(reports) != len(seqReports) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(reports), len(seqReports))
		}
		for i := range reports {
			if reports[i].Node != seqReports[i].Node || reports[i].OK != seqReports[i].OK {
				t.Fatalf("workers=%d: report %d = %+v, want %+v", workers, i, reports[i], seqReports[i])
			}
		}
		if len(failing) != len(seqFailing) || failing[0] != seqFailing[0] || failing[1] != seqFailing[1] {
			t.Fatalf("workers=%d: failing = %v, want %v", workers, failing, seqFailing)
		}
	}
	if _, _, err := ch.CheckCluster("nimbus"); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	var perr error
	clock.Go(func() { _, _, perr = ch.CheckClusterParallel("nimbus", 2) })
	clock.Run()
	if perr == nil {
		t.Fatal("parallel sweep accepted unknown cluster")
	}
}

// With a per-check simulated cost, a k-worker sweep's makespan shrinks by
// ~k: the workers genuinely overlap in simulated time.
func TestParallelSweepOverlapsSimulatedTime(t *testing.T) {
	makespan := func(workers int) simclock.Time {
		clock, _, _, ch := setup()
		ch.CheckCost = 30 * simclock.Second
		var reports []*Report
		var err error
		clock.Go(func() { reports, _, err = ch.CheckTestbedParallel(workers) })
		clock.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 894 {
			t.Fatalf("swept %d nodes, want 894", len(reports))
		}
		return clock.Now()
	}
	m1, m4 := makespan(1), makespan(4)
	if m1 != 894*30*simclock.Second {
		t.Fatalf("1-worker makespan = %v", m1)
	}
	// 894 nodes over 4 strided workers: largest shard is 224 checks.
	if m4 != 224*30*simclock.Second {
		t.Fatalf("4-worker makespan = %v, want %v", m4, 224*30*simclock.Second)
	}
}

func TestHomogeneityReport(t *testing.T) {
	_, _, inj, ch := setup()
	inj.InjectNode(faults.DiskFirmwareDrift, "paradent-5.rennes")
	byValue, err := ch.HomogeneityReport("paradent", func(inv testbed.Inventory) string {
		return inv.Disks[0].Firmware
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(byValue) != 2 {
		t.Fatalf("distinct firmware values = %d, want 2", len(byValue))
	}
	if nodes := byValue["GM3OA52A-alt"]; len(nodes) != 1 || nodes[0] != "paradent-5.rennes" {
		t.Fatalf("drifted set = %v", nodes)
	}
	if _, err := ch.HomogeneityReport("nimbus", nil); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestHomogeneityCleanCluster(t *testing.T) {
	_, _, _, ch := setup()
	byValue, _ := ch.HomogeneityReport("taurus", func(inv testbed.Inventory) string {
		return inv.BIOS.Version
	})
	if len(byValue) != 1 {
		t.Fatalf("clean cluster has %d BIOS versions", len(byValue))
	}
}
