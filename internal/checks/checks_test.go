package checks

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func setup() (*simclock.Clock, *testbed.Testbed, *faults.Injector, *Checker) {
	c := simclock.New(31)
	tb := testbed.Default()
	ref := refapi.NewStore(tb, c.Now())
	inj := faults.NewInjector(c, tb)
	return c, tb, inj, NewChecker(c, tb, ref)
}

func TestHealthyNodePasses(t *testing.T) {
	_, _, _, ch := setup()
	r, err := ch.CheckNode("griffon-42.nancy")
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("healthy node failed check: %v", r.Mismatches)
	}
	if r.Summary() != "griffon-42.nancy: OK" {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestFaultedNodeFails(t *testing.T) {
	_, _, inj, ch := setup()
	node := "suno-7.sophia"
	inj.InjectNode(faults.DiskFirmwareDrift, node)
	inj.InjectNode(faults.CStatesOn, node)
	r, err := ch.CheckNode(node)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("drifted node passed check")
	}
	if len(r.Mismatches) != 2 {
		t.Fatalf("mismatches = %v", r.Mismatches)
	}
	if !strings.Contains(r.Summary(), "2 mismatch(es)") {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestBehaviouralFaultInvisibleToChecks(t *testing.T) {
	_, _, inj, ch := setup()
	node := "suno-8.sophia"
	inj.InjectNode(faults.DiskDying, node)
	inj.InjectNode(faults.RandomReboots, node)
	r, _ := ch.CheckNode(node)
	if !r.OK {
		t.Fatalf("behavioural faults visible in description diff: %v", r.Mismatches)
	}
}

func TestCheckAfterFixPasses(t *testing.T) {
	_, _, inj, ch := setup()
	node := "edel-9.grenoble"
	f, _ := inj.InjectNode(faults.RAMLoss, node)
	if r, _ := ch.CheckNode(node); r.OK {
		t.Fatal("RAM loss not detected")
	}
	inj.Fix(f.ID)
	if r, _ := ch.CheckNode(node); !r.OK {
		t.Fatal("node still failing after fix")
	}
}

func TestCheckUnknownNode(t *testing.T) {
	_, _, _, ch := setup()
	if _, err := ch.CheckNode("ghost-1.limbo"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestAcquireDoesNotAlias(t *testing.T) {
	_, tb, _, ch := setup()
	inv, err := ch.Acquire("sol-1.sophia")
	if err != nil {
		t.Fatal(err)
	}
	inv.Disks[0].Firmware = "HACKED"
	if tb.Node("sol-1.sophia").Inv.Disks[0].Firmware == "HACKED" {
		t.Fatal("Acquire aliases live state")
	}
}

func TestCheckCluster(t *testing.T) {
	_, tb, inj, ch := setup()
	inj.InjectNode(faults.TurboFlip, "helios-3.sophia")
	inj.InjectNode(faults.WrongKernel, "helios-17.sophia")
	reports, failing, err := ch.CheckCluster("helios")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(tb.Cluster("helios").Nodes) {
		t.Fatalf("reports = %d", len(reports))
	}
	if len(failing) != 2 || failing[0] != "helios-17.sophia" || failing[1] != "helios-3.sophia" {
		t.Fatalf("failing = %v", failing)
	}
	if _, _, err := ch.CheckCluster("nimbus"); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if ch.Runs() != len(reports)+0 {
		t.Fatalf("runs = %d", ch.Runs())
	}
}

func TestHomogeneityReport(t *testing.T) {
	_, _, inj, ch := setup()
	inj.InjectNode(faults.DiskFirmwareDrift, "paradent-5.rennes")
	byValue, err := ch.HomogeneityReport("paradent", func(inv testbed.Inventory) string {
		return inv.Disks[0].Firmware
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(byValue) != 2 {
		t.Fatalf("distinct firmware values = %d, want 2", len(byValue))
	}
	if nodes := byValue["GM3OA52A-alt"]; len(nodes) != 1 || nodes[0] != "paradent-5.rennes" {
		t.Fatalf("drifted set = %v", nodes)
	}
	if _, err := ch.HomogeneityReport("nimbus", nil); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestHomogeneityCleanCluster(t *testing.T) {
	_, _, _, ch := setup()
	byValue, _ := ch.HomogeneityReport("taurus", func(inv testbed.Inventory) string {
		return inv.BIOS.Version
	})
	if len(byValue) != 1 {
		t.Fatalf("clean cluster has %d BIOS versions", len(byValue))
	}
}
