package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment, in the standard Go
// directive form (no space after //):
//
//	//g5k:allow <analyzer> <reason...>
//
// The directive suppresses findings of the named analyzer on its own line
// and on the line directly below it (so it can trail the offending
// statement or sit on the line above). The reason is mandatory.
const directivePrefix = "//g5k:allow"

// A Directive is one parsed //g5k:allow comment.
type Directive struct {
	Pos      token.Position
	Analyzer string // "" when the directive names no analyzer
	Reason   string // "" when no reason was given

	// Trailing records that the directive shares its line with code; a
	// trailing directive covers only that line, while a standalone one
	// covers the line below it.
	Trailing bool
}

// Valid reports whether the directive can suppress anything at all: it
// must name an analyzer and carry a reason.
func (d Directive) Valid() bool { return d.Analyzer != "" && d.Reason != "" }

// Directives extracts every //g5k:allow comment from the files.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // e.g. //g5k:allowance — not our directive
				}
				d := Directive{Pos: fset.Position(c.Pos())}
				d.Trailing = code[d.Pos.Line]
				fields := strings.Fields(text)
				if len(fields) > 0 {
					d.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// codeLines reports which lines of the file carry non-comment tokens, by
// marking the start and end line of every syntax node. Comments (including
// doc comments) are skipped, so a directive on its own line stays
// standalone even when the parser attaches it to the declaration below.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Suppress drops the diagnostics covered by a valid matching directive: an
// allow for the same analyzer, in the same file, on the diagnostic's line
// or the line above. Invalid directives (missing reason, wrong analyzer)
// suppress nothing, so the finding survives.
func Suppress(diags []Diagnostic, directives []Directive) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.Valid() && dir.Analyzer == d.Analyzer &&
				dir.Pos.Filename == d.Pos.Filename &&
				(dir.Pos.Line == d.Pos.Line ||
					(!dir.Trailing && dir.Pos.Line == d.Pos.Line-1)) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// CheckDirectives reports malformed //g5k:allow directives: a missing
// reason (suppression must be accountable) or an analyzer name that no
// registered analyzer carries (most likely a typo silently suppressing
// nothing). Names are checked against the union of the passed analyzers
// and the full registry, so running a subset (g5kvet -analyzers) does not
// misreport directives aimed at valid but unselected analyzers.
func CheckDirectives(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, dir := range Directives(pkg.Fset, pkg.Files) {
		switch {
		case dir.Analyzer == "":
			out = append(out, Diagnostic{Pos: dir.Pos, Analyzer: "directive",
				Message: "//g5k:allow names no analyzer (want //g5k:allow <analyzer> <reason>)"})
		case !known[dir.Analyzer]:
			out = append(out, Diagnostic{Pos: dir.Pos, Analyzer: "directive",
				Message: "//g5k:allow names unknown analyzer " + dir.Analyzer})
		case dir.Reason == "":
			out = append(out, Diagnostic{Pos: dir.Pos, Analyzer: "directive",
				Message: "//g5k:allow " + dir.Analyzer + " has no reason; suppressions must say why"})
		}
	}
	return out
}
