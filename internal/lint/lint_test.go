package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// simPkgPath stands in for a simulation package: no analyzer exempts it.
const simPkgPath = "repro/internal/simfixture"

// wantRe matches the analysistest-style expectation comments in fixtures:
// a `// want`-backquoted regexp on the line the diagnostic must land on.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	re        *regexp.Regexp
	satisfied bool
}

// runFixture loads testdata/<name> as a package with the given import
// path, runs one analyzer (with //g5k:allow suppression applied, as the
// driver would), and checks the diagnostics against the fixture's
// // want comments: every diagnostic must match a want on its line, and
// every want must be hit.
func runFixture(t *testing.T, a *lint.Analyzer, name, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := lint.LoadFixtureDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	wants := map[string]*expectation{} // "file:line" → expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
			}
			wants[fmt.Sprintf("%s:%d", path, line)] = &expectation{re: re}
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments; it would pass vacuously", dir)
	}

	for _, d := range lint.Run(a, pkg) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want /%s/", key, d.Message, w.re)
			continue
		}
		w.satisfied = true
	}
	for key, w := range wants {
		if !w.satisfied {
			t.Errorf("%s: expected a diagnostic matching /%s/, got none", key, w.re)
		}
	}
}

func TestWallTimeFixture(t *testing.T) {
	runFixture(t, lint.WallTime, "walltime", simPkgPath)
}

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, lint.GlobalRand, "globalrand", simPkgPath)
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, lint.MapOrder, "maporder", simPkgPath)
}

func TestAtomicFieldFixture(t *testing.T) {
	runFixture(t, lint.AtomicField, "atomicfield", simPkgPath)
}

func TestBareGoroutineFixture(t *testing.T) {
	runFixture(t, lint.BareGoroutine, "baregoroutine", simPkgPath)
}

// The allowlists: the same source is a violation in a simulation package
// and silent in the packages whose job is wall time or host concurrency.
func TestPackageAllowlists(t *testing.T) {
	const wallSrc = `package fixture

import "time"

var at = time.Now()
`
	const goSrc = `package fixture

func f(work func()) { go work() }
`
	cases := []struct {
		analyzer *lint.Analyzer
		src      string
		pkgPath  string
		findings int
	}{
		{lint.WallTime, wallSrc, simPkgPath, 1},
		{lint.WallTime, wallSrc, "repro/internal/loadgen", 0},
		{lint.WallTime, wallSrc, "repro/internal/gateway", 0},
		{lint.WallTime, wallSrc, "repro/cmd/g5kapi", 0},
		{lint.BareGoroutine, goSrc, simPkgPath, 1},
		{lint.BareGoroutine, goSrc, "repro/internal/simclock", 1}, // simclock itself is NOT exempt; its one use carries a directive
		{lint.BareGoroutine, goSrc, "repro/internal/gateway", 0},
		{lint.BareGoroutine, goSrc, "repro/internal/status", 0},
		{lint.BareGoroutine, goSrc, "repro/cmd/g5ktest", 0},
	}
	for _, tc := range cases {
		pkg, err := lint.LoadFixtureSource(tc.src, tc.pkgPath)
		if err != nil {
			t.Fatalf("%s in %s: %v", tc.analyzer.Name, tc.pkgPath, err)
		}
		if got := len(lint.Run(tc.analyzer, pkg)); got != tc.findings {
			t.Errorf("%s in %s: %d findings, want %d", tc.analyzer.Name, tc.pkgPath, got, tc.findings)
		}
	}
}

func TestExempted(t *testing.T) {
	a := &lint.Analyzer{Exempt: []string{"repro/internal/loadgen", "repro/cmd/..."}}
	for path, want := range map[string]bool{
		"repro/internal/loadgen":  true,
		"repro/internal/loadgenX": false,
		"repro/internal/oar":      false,
		"repro/cmd":               true,
		"repro/cmd/g5kapi":        true,
		"repro/cmdX":              false,
	} {
		if got := a.Exempted(path); got != want {
			t.Errorf("Exempted(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestAllAndByName(t *testing.T) {
	all := lint.All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}

// The suite must hold on the repository itself: every analyzer clean over
// every non-test source, modulo reasoned //g5k:allow suppressions. This is
// the same property `make lint` gates, enforced from the tier-1 test run
// so a violation cannot merge even where only `go test ./...` runs.
func TestSuiteCleanOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern ./... should cover the whole module", len(pkgs))
	}
	var report strings.Builder
	diags := lint.RunAll(lint.All(), pkgs)
	for _, d := range diags {
		fmt.Fprintf(&report, "  %s\n", d)
	}
	if len(diags) > 0 {
		t.Errorf("g5kvet findings on the repository:\n%s", report.String())
	}
}
