// Package lint is the repository's custom static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic, a multichecker driver in cmd/g5kvet,
// and fixture-based tests in the analysistest style) built on the standard
// library's go/ast, go/types and go/importer.
//
// The simulator's load-bearing property is determinism: a campaign's
// outcome is a pure function of its seed, and the federation's serial and
// parallel schedules must produce bit-identical summaries (the E14/E17
// gates). Those invariants are enforced dynamically by -race runs and
// benchmark assertions, which can only catch a violation after it corrupts
// an output. The analyzers in this package make the common sources of
// nondeterminism fail `make lint` instead:
//
//   - walltime: no time.Now/Since/Sleep (or timers) in simulation
//     packages — wall-clock is allowed only where real time is the
//     subject (loadgen, the gateway's latency metrics, binaries).
//   - globalrand: no package-level math/rand functions anywhere; all
//     randomness flows through seeded *rand.Rand values.
//   - maporder: no appending to slices or emitting output from inside a
//     range-over-map loop unless the result is subsequently sorted.
//   - atomicfield: a struct field accessed through sync/atomic anywhere
//     must be accessed atomically everywhere.
//   - baregoroutine: no bare go statements in simulation packages; in-sim
//     concurrency goes through the simclock run-token API.
//
// A finding is suppressed by a `//g5k:allow <analyzer> <reason>` comment
// on the offending line or the line directly above it. The reason is
// mandatory: a directive without one (or naming the wrong analyzer) does
// not suppress, and is itself reported as malformed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //g5k:allow
	// directives.
	Name string

	// Doc is a one-line description of the enforced rule.
	Doc string

	// Exempt lists import paths the rule does not apply to. An entry
	// either matches a package exactly or, with a trailing "/...",
	// matches a whole subtree.
	Exempt []string

	// Run reports the analyzer's findings for one package.
	Run func(*Pass)
}

// Exempted reports whether the analyzer does not apply to the package.
func (a *Analyzer) Exempted(pkgPath string) bool {
	for _, pat := range a.Exempt {
		if pkgPath == pat {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
				return true
			}
		}
	}
	return false
}

// A Pass connects an analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies one analyzer to one loaded package and returns its findings
// with matching //g5k:allow suppressions already applied. Packages the
// analyzer exempts produce no findings.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	if a.Exempted(pkg.Path) {
		return nil
	}
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	return Suppress(pass.diags, Directives(pkg.Fset, pkg.Files))
}

// RunAll applies every analyzer to every package, appends the malformed-
// directive findings, and returns everything sorted by position.
func RunAll(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			out = append(out, Run(a, pkg)...)
		}
		out = append(out, CheckDirectives(analyzers, pkg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
