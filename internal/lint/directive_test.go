package lint_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wallSrcWith builds a one-violation fixture with an arbitrary comment
// line directly above the offending statement.
func wallSrcWith(directive string) string {
	return fmt.Sprintf(`package fixture

import "time"

func f() {
	%s
	_ = time.Now()
}
`, directive)
}

func loadSrc(t *testing.T, src string) *lint.Package {
	t.Helper()
	pkg, err := lint.LoadFixtureSource(src, simPkgPath)
	if err != nil {
		t.Fatalf("loading source: %v", err)
	}
	return pkg
}

// The suppression contract: a directive suppresses only with the right
// analyzer name AND a reason; anything less leaves the finding reported.
func TestAllowDirectiveSuppression(t *testing.T) {
	cases := []struct {
		name      string
		directive string
		findings  int
	}{
		{"accepted with reason", "//g5k:allow walltime startup banner, not sim time", 0},
		{"reason missing", "//g5k:allow walltime", 1},
		{"analyzer mismatch", "//g5k:allow maporder reason aimed at the wrong analyzer", 1},
		{"analyzer missing", "//g5k:allow", 1},
		{"unknown analyzer", "//g5k:allow walltimer close but no", 1},
		{"not a directive", "// g5k:allow walltime a space disarms the directive form", 1},
		{"unrelated comment", "// plain comment", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadSrc(t, wallSrcWith(tc.directive))
			diags := lint.Run(lint.WallTime, pkg)
			if len(diags) != tc.findings {
				t.Errorf("%d findings, want %d: %v", len(diags), tc.findings, diags)
			}
		})
	}
}

// A trailing directive on the offending line suppresses too, and the
// suppression does not bleed past the next line.
func TestAllowDirectivePlacement(t *testing.T) {
	src := `package fixture

import "time"

func f() {
	_ = time.Now() //g5k:allow walltime trailing form
	_ = time.Now()
}
`
	pkg := loadSrc(t, src)
	diags := lint.Run(lint.WallTime, pkg)
	if len(diags) != 1 {
		t.Fatalf("%d findings, want exactly the unsuppressed second line: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want line 7", diags[0].Pos.Line)
	}
}

// Malformed directives are findings in their own right: a missing reason
// or an unknown analyzer name is a suppression that silently does
// nothing, which is exactly what must not merge.
func TestCheckDirectives(t *testing.T) {
	src := `package fixture

//g5k:allow walltime a good reason
//g5k:allow walltime
//g5k:allow walltimer typo in the analyzer name
//g5k:allow
func f() {}
`
	pkg := loadSrc(t, src)
	diags := lint.CheckDirectives(lint.All(), pkg)
	if len(diags) != 3 {
		t.Fatalf("%d directive findings, want 3: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("finding %v should come from the directive checker", d)
		}
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"has no reason", "unknown analyzer walltimer", "names no analyzer"} {
		if !strings.Contains(joined, want) {
			t.Errorf("directive findings missing %q:\n%s", want, joined)
		}
	}
}

// Running a subset of analyzers (g5kvet -analyzers) must not misreport a
// directive aimed at a registered but unselected analyzer: the known-name
// set is the full registry, not the run set.
func TestCheckDirectivesAgainstFullRegistry(t *testing.T) {
	src := `package fixture

//g5k:allow baregoroutine sanctioned elsewhere; maporder-only run must not flag this
func f() {}
`
	pkg := loadSrc(t, src)
	if diags := lint.CheckDirectives([]*lint.Analyzer{lint.MapOrder}, pkg); len(diags) != 0 {
		t.Errorf("subset run misreported a registry-known analyzer: %v", diags)
	}
}

// RunAll folds analyzer findings and directive findings together, sorted
// by position.
func TestRunAllMergesDirectiveFindings(t *testing.T) {
	src := `package fixture

import "time"

//g5k:allow walltime
func f() { _ = time.Now() }
`
	pkg := loadSrc(t, src)
	diags := lint.RunAll(lint.All(), []*lint.Package{pkg})
	if len(diags) != 2 {
		t.Fatalf("%d findings, want walltime + malformed directive: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "directive" || diags[1].Analyzer != "walltime" {
		t.Errorf("unexpected finding order/identity: %v", diags)
	}
}
