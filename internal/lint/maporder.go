package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sortFuncs are the sort/slices calls that launder map-iteration order
// out of a slice.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// fmtEmitters are the fmt functions that emit output directly.
var fmtEmitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// emitMethods are method names that stream bytes somewhere order matters.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// MapOrder flags range-over-map loops whose iteration order leaks into an
// ordered output: appending to a slice that the function never sorts
// afterwards, or emitting (fmt, Write*, Encode) from inside the loop
// body. Go randomizes map iteration per run, so both patterns produce
// output that differs between bit-identical campaigns — the exact bug
// class that would silently break the E17 merged-summary determinism
// gate. Collect, sort, then emit; loops that only aggregate into scalars
// or other maps are order-independent and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no slice appends or output emission in map-iteration order without a subsequent sort",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				pass.checkMapRanges(fn.Body)
			}
		}
	},
}

// checkMapRanges inspects one function body: every range-over-map inside
// it (including nested function literals) is checked for order-dependent
// appends and emissions, with sorts searched in the same body.
func (p *Pass) checkMapRanges(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[rng.X]; !ok || !isMap(tv.Type) {
			return true
		}
		p.checkMapRangeBody(body, rng)
		return true
	})
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (p *Pass) checkMapRangeBody(scope *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isAppendCall(rhs) {
					continue
				}
				target := n.Lhs[i]
				if !p.declaredOutside(target, rng) {
					continue // per-iteration slice; order handled at its use site
				}
				if p.sortedLater(scope, target, n.Pos()) {
					continue
				}
				p.Reportf(n.Pos(),
					"%s accumulates in map-iteration order and is never sorted in this function; map order is nondeterministic — sort it before it escapes",
					types.ExprString(target))
			}
		case *ast.CallExpr:
			if name, ok := p.emitterName(n); ok {
				p.Reportf(n.Pos(),
					"%s emits output while ranging over a map; iteration order is nondeterministic — collect, sort, then emit",
					name)
			}
		}
		return true
	})
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// declaredOutside reports whether the root object of expr is declared
// outside the range statement — i.e. the accumulated slice outlives the
// loop.
func (p *Pass) declaredOutside(expr ast.Expr, rng *ast.RangeStmt) bool {
	root := rootIdent(expr)
	if root == nil {
		return true // conservative: unknown roots are assumed to escape
	}
	obj := p.Info.Uses[root]
	if obj == nil {
		obj = p.Info.Defs[root]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// rootIdent walks x.f[i].g style expressions down to their leftmost
// identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether the function body contains, after pos, a
// sort call whose argument is the same expression as target. A
// sort.Sort(byX(target)) wrapper counts.
func (p *Pass) sortedLater(scope *ast.BlockStmt, target ast.Expr, pos token.Pos) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := p.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		names := sortFuncs[pkg.Imported().Path()]
		if names == nil || !names[sel.Sel.Name] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if types.ExprString(arg) == want {
			found = true
			return false
		}
		// sort.Sort(byName(target)): unwrap a single-argument conversion
		// or constructor around the slice.
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 &&
			types.ExprString(ast.Unparen(inner.Args[0])) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// emitterName resolves call to an output-emitting function or method and
// returns its display name.
func (p *Pass) emitterName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtEmitters[fn.Name()] {
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	if emitMethods[fn.Name()] {
		recv := sig.Recv().Type()
		return strings.TrimPrefix(recv.String(), "*") + "." + fn.Name(), true
	}
	return "", false
}
