package lint

import (
	"go/ast"
	"go/types"
)

// wallFuncs are the package time functions that read or wait on the wall
// clock. Conversions and constructors over explicit values (time.Duration,
// time.Unix, time.Date) are fine: they carry no hidden clock.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// WallTime flags wall-clock reads inside simulation packages. Simulated
// time is the clock there (simclock.Clock.Now advances only through the
// event loop), so a time.Now or time.Sleep smuggles host scheduling into
// results that must be a pure function of the seed. Wall time stays legal
// where real time is the subject: the load generator and the gateway's
// latency metrics measure the host, and binaries report to humans.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now/Since/Sleep (or timers) in simulation packages; use the simclock",
	Exempt: []string{
		"repro/internal/loadgen", // measures real request latency
		"repro/internal/gateway", // per-endpoint latency metrics and uptime
		"repro/cmd/...",          // binaries talk to humans in wall time
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock inside a simulation package; use the simclock (sim time must be a pure function of the seed)",
					fn.Name())
				return true
			})
		}
	},
}
