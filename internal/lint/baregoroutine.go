package lint

import "go/ast"

// BareGoroutine flags go statements in simulation packages. Inside the
// simulation, concurrency must go through the simclock run-token API
// ((*simclock.Clock).Go / WaitUntil / Sleep): the clock hands the token to
// one goroutine at a time in deterministic event order, which is what
// keeps campaign outcomes independent of the host scheduler. A bare go
// statement opts out of that discipline. The serving stack (gateway,
// loadgen, inproc, status) and the binaries live outside the simulation
// and are exempt; the few sanctioned uses inside sim packages — the
// run-token implementation itself and the share-nothing fleet/federation
// worker pools — carry //g5k:allow directives saying why they are safe.
var BareGoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc:  "no bare go statements in simulation packages; use the simclock run-token API",
	Exempt: []string{
		"repro/internal/gateway",
		"repro/internal/loadgen",
		"repro/internal/inproc",
		"repro/internal/status",
		"repro/cmd/...",
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(),
						"bare go statement in a simulation package; start simulation goroutines with (*simclock.Clock).Go so the run token serializes them deterministically")
				}
				return true
			})
		}
	},
}
