package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a field
// passed to a sync/atomic function anywhere in the package must be
// accessed through sync/atomic everywhere in the package. A single plain
// read of the gateway's per-endpoint counters would race with the atomic
// writers — a data race the race detector only catches on schedules that
// exercise it, while this check catches it on every make lint. Fields of
// the typed atomic.Int64/Bool/... kinds are safe by construction and need
// no analysis; this protects the plain-integer-plus-atomic-calls style.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run: func(pass *Pass) {
		// Pass 1: collect fields that appear as &x.f arguments to
		// sync/atomic calls, and remember those exact selector nodes as
		// sanctioned.
		atomicFields := map[*types.Var]token.Position{}
		sanctioned := map[*ast.SelectorExpr]bool{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[callee.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					if sel, field := pass.fieldAddr(arg); field != nil {
						if _, seen := atomicFields[field]; !seen {
							atomicFields[field] = pass.Fset.Position(sel.Pos())
						}
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
		if len(atomicFields) == 0 {
			return
		}
		// Pass 2: any other access to those fields is a racy mixed access.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				field := pass.fieldOf(sel)
				if field == nil {
					return true
				}
				first, ok := atomicFields[field]
				if !ok {
					return true
				}
				pass.Reportf(sel.Pos(),
					"non-atomic access to field %s, which is accessed via sync/atomic at %s; mixed access races",
					field.Name(), first)
				return true
			})
		}
	},
}

// fieldAddr unwraps &x.f (with any parenthesization) and returns the
// selector and the struct field it addresses, or nil when arg is not an
// address of a field selection.
func (p *Pass) fieldAddr(arg ast.Expr) (*ast.SelectorExpr, *types.Var) {
	arg = ast.Unparen(arg)
	unary, ok := arg.(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return sel, p.fieldOf(sel)
}

// fieldOf returns the struct field a selector expression selects, or nil.
func (p *Pass) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
