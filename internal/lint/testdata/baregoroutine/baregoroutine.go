// Seeded violations for the baregoroutine analyzer: raw go statements in
// a simulation package, with the //g5k:allow escape hatch for the
// sanctioned share-nothing pools.
package fixture

import "sync"

func spawn(work func()) {
	go work() // want `bare go statement in a simulation package`
}

func pool(jobs []func()) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() { // want `bare go statement in a simulation package`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func sanctionedPool(work func()) {
	//g5k:allow baregoroutine fixture: share-nothing worker, outcome independent of schedule
	go work()
}
