// Seeded violations for the atomicfield analyzer: a field touched through
// sync/atomic anywhere must be touched atomically everywhere; typed
// atomics and plain-only fields stay silent.
package fixture

import "sync/atomic"

type counter struct {
	hits int64
	cold int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	c.cold++ // plain-only field: not flagged
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) racyRead() int64 {
	return c.hits // want `non-atomic access to field hits`
}

func (c *counter) racyWrite() {
	c.hits = 0 // want `non-atomic access to field hits`
}

func leak(c *counter) *int64 {
	return &c.hits // want `non-atomic access to field hits`
}

func swap(c *counter) int64 {
	return atomic.SwapInt64(&c.hits, 0)
}

// Typed atomics are safe by construction and need no analysis.
type typed struct{ n atomic.Int64 }

func (t *typed) ok() int64 {
	t.n.Add(1)
	return t.n.Load()
}
