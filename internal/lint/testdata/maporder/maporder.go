// Seeded violations for the maporder analyzer: map-iteration order
// leaking into slices and emitted output, next to the collect-sort-emit
// shapes that must stay legal.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys accumulates in map-iteration order`
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf emits output while ranging over a map`
	}
}

func buildReport(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `strings\.Builder\.WriteString emits output while ranging over a map`
	}
	return sb.String()
}

type merged struct{ families []string }

func intoStruct(famSet map[string]bool, out *merged) {
	for fam := range famSet {
		out.families = append(out.families, fam) // want `out\.families accumulates in map-iteration order`
	}
}

func intoStructSorted(famSet map[string]bool, out *merged) {
	for fam := range famSet {
		out.families = append(out.families, fam)
	}
	sort.Strings(out.families)
}

type byLen []string

func (b byLen) Len() int           { return len(b) }
func (b byLen) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }
func (b byLen) Less(i, j int) bool { return len(b[i]) < len(b[j]) }

func sortedViaWrapper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(byLen(keys))
	return keys
}

// Order-independent aggregation is not flagged.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// A slice born and sorted inside the iteration is per-iteration state;
// only the outer accumulation in map order is flagged.
func perIteration(m map[string][]string) [][]string {
	var rows [][]string
	for _, vs := range m {
		row := append([]string(nil), vs...)
		sort.Strings(row)
		rows = append(rows, row) // want `rows accumulates in map-iteration order`
	}
	return rows
}

// Map-to-map rebuilds are order-independent and not flagged.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
