// Seeded violations for the globalrand analyzer: package-level math/rand
// draws (v1 and v2) are flagged everywhere; seeded *rand.Rand streams and
// the constructors that build them are the sanctioned path.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func roll() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the process-global random source`
}

func noise() float64 {
	x := rand.Float64()                // want `math/rand\.Float64 draws from the process-global random source`
	rand.Shuffle(1, func(i, j int) {}) // want `math/rand\.Shuffle draws from the process-global random source`
	return x
}

func v2roll() int {
	return randv2.IntN(6) // want `math/rand/v2\.IntN draws from the process-global random source`
}

// pick references a global draw as a function value; still a violation.
var pick = rand.Int63 // want `math/rand\.Int63 draws from the process-global random source`

// seeded streams and their constructors are the sanctioned path.
func sanctioned(stream *rand.Rand) int {
	fresh := rand.New(rand.NewSource(42))
	return stream.Intn(6) + fresh.Intn(6)
}
