// Seeded violations for the walltime analyzer: every wall-clock read a
// simulation package could smuggle in, plus the clock-free time APIs that
// must stay legal and the //g5k:allow forms that must (and must not)
// suppress.
package fixture

import "time"

var bootAt = time.Now() // want `time\.Now reads the wall clock`

func tick() time.Duration {
	time.Sleep(time.Millisecond)      // want `time\.Sleep reads the wall clock`
	elapsed := time.Since(bootAt)     // want `time\.Since reads the wall clock`
	<-time.After(time.Microsecond)    // want `time\.After reads the wall clock`
	t := time.NewTimer(time.Second)   // want `time\.NewTimer reads the wall clock`
	k := time.NewTicker(time.Second)  // want `time\.NewTicker reads the wall clock`
	_ = time.Until(time.Time{})       // want `time\.Until reads the wall clock`
	a := time.AfterFunc(0, func() {}) // want `time\.AfterFunc reads the wall clock`
	a.Stop()
	t.Stop()
	k.Stop()
	return elapsed
}

// Conversions and explicit constructions carry no hidden clock.
func clockFree() time.Time {
	d := 3 * time.Second
	_ = d.Seconds()
	return time.Date(2017, 5, 29, 0, 0, 0, 0, time.UTC)
}

func suppressed() {
	//g5k:allow walltime fixture: sanctioned wall-clock read with a reason
	_ = time.Now()
	_ = time.Now() //g5k:allow walltime fixture: trailing directive form
}

func notSuppressed() {
	//g5k:allow walltime
	_ = time.Now() // want `time\.Now reads the wall clock`
	//g5k:allow globalrand reason names the wrong analyzer
	_ = time.Now() // want `time\.Now reads the wall clock`
}
