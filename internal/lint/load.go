package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/oar"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList invokes `go list -export -deps -json` in dir. -export compiles
// the listed packages (and their dependencies) into the build cache and
// reports each one's export-data file, which is what lets the analyzers
// type-check offline with the pure standard library: imports resolve from
// compiler export data exactly as x/tools' go/packages would, but without
// the dependency.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from a path → export-data file index.
// One instance caches the *types.Package per import path, so loading many
// packages reads each dependency's export data once.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load parses and type-checks the module packages matching patterns
// (relative to dir), in the order `go list` reports them. Only non-test
// sources are analyzed: the determinism invariants protect shipped
// simulation code, while tests routinely measure wall time and spawn raw
// goroutines as part of exercising it.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  p.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// Fixture loading: analyzer tests type-check testdata packages (and
// inline source strings) against the standard library only. The export
// index for std dependencies is built once per process and grown on
// demand.
var fixtures struct {
	mu      sync.Mutex
	fset    *token.FileSet
	exports map[string]string
	imp     types.Importer
}

// checkFixtureFiles type-checks already-parsed fixture files under the
// given import path, resolving their (standard-library) imports via
// `go list -export`.
func checkFixtureFiles(fset *token.FileSet, files []*ast.File, pkgPath string) (*Package, error) {
	fixtures.mu.Lock()
	defer fixtures.mu.Unlock()
	if fixtures.exports == nil {
		fixtures.exports = map[string]string{}
	}
	var missing []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path := importPathOf(spec)
			if path == "" || path == "unsafe" {
				continue
			}
			if _, ok := fixtures.exports[path]; !ok {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		listed, err := goList(".", missing...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				fixtures.exports[p.ImportPath] = p.Export
			}
		}
		// The importer caches by path against one FileSet; invalidate it so
		// the next check sees the grown index.
		fixtures.imp = nil
	}
	if fixtures.imp == nil || fixtures.fset != fset {
		fixtures.fset = fset
		fixtures.imp = exportImporter(fset, fixtures.exports)
	}
	info := newInfo()
	conf := types.Config{Importer: fixtures.imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadFixtureDir parses and type-checks every .go file in dir as one
// package with the given import path. Fixtures live under testdata/, which
// the go tool ignores, so violations seeded there never break the build.
func LoadFixtureDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	return checkFixtureFiles(fset, files, pkgPath)
}

// LoadFixtureSource parses and type-checks one in-memory source file as a
// package with the given import path.
func LoadFixtureSource(src, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return checkFixtureFiles(fset, []*ast.File{f}, pkgPath)
}

func importPathOf(spec *ast.ImportSpec) string {
	path := spec.Path.Value
	if len(path) >= 2 {
		return path[1 : len(path)-1]
	}
	return ""
}
