package lint

// All returns the full analyzer suite, in the order g5kvet runs it.
func All() []*Analyzer {
	return []*Analyzer{
		WallTime,
		GlobalRand,
		MapOrder,
		AtomicField,
		BareGoroutine,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
