package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that do NOT
// draw from the process-global source: they build seeded generators, which
// is exactly the sanctioned path.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors
	"NewPCG": true, "NewChaCha8": true,
}

// GlobalRand flags package-level math/rand (and math/rand/v2) functions.
// The global source is seeded once per process — randomly since Go 1.20 —
// so rand.Intn in any code path makes campaign outcomes unreproducible.
// All randomness must flow through seeded *rand.Rand values: the
// simclock's campaign stream, federation.ShardSeed's per-site streams, or
// loadgen's per-worker streams. No package is exempt.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no package-level math/rand functions; randomness flows through seeded *rand.Rand values",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				// Methods on *rand.Rand are the sanctioned seeded path.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global random source; use a seeded *rand.Rand (simclock campaign stream, federation.ShardSeed)",
					path, fn.Name())
				return true
			})
		}
	},
}
