package loadgen

import (
	"fmt"
	"sort"
	"strings"
)

// The disaster workload: site-pinned scenarios that keep driving traffic
// straight through a chaos window. Where the plain site scenarios treat a
// 503 as failure, the degraded variants accept 503 + Retry-After as the
// correct answer from a downed site — the gateway refusing politely is the
// design working — while any other failure still counts as a real error.
// Report.Availability then separates the two: the availability number is
// the fraction of iterations with no real error, and the tolerated 502/503
// tallies quantify how much of the traffic rode the degraded paths.

// DegradedSiteScraper is the disaster-mode site scraper: the same read
// pattern as SiteScraper, with 503 accepted everywhere (and 502 on the
// monitor path, which stays legitimately flaky).
func DegradedSiteScraper(tgt SiteTarget) Scenario {
	base := "/sites/" + tgt.Site
	return Scenario{
		Name:   "disaster-scraper:" + tgt.Site,
		Weight: 5,
		Run: func(c *Ctx) error {
			if err := c.Get("/sites"); err != nil {
				return err
			}
			path := base + "/oar/resources"
			if len(tgt.Clusters) > 0 && c.Rand.Intn(2) == 0 {
				path += "?cluster=" + tgt.Clusters[c.Rand.Intn(len(tgt.Clusters))]
			}
			if err := c.GetAccept(path, 503); err != nil {
				return err
			}
			if err := c.GetAccept(base+"/ref/inventory", 503); err != nil {
				return err
			}
			if len(tgt.Nodes) > 0 {
				node := tgt.Nodes[c.Rand.Intn(len(tgt.Nodes))]
				mon := base + "/monitor/metrics?metric=power_w&node=" + node + "&from_sec=0&to_sec=30"
				if err := c.GetAccept(mon, 502, 503); err != nil {
					return err
				}
			}
			return c.GetAccept(base+"/oar/jobs?limit=25", 503)
		},
	}
}

// DegradedSiteSubmitter is the disaster-mode submission tooling: probes and
// submits against one site, accepting 503 from a downed shard.
func DegradedSiteSubmitter(tgt SiteTarget) Scenario {
	if len(tgt.Clusters) == 0 {
		panic("loadgen: DegradedSiteSubmitter needs at least one cluster")
	}
	base := "/sites/" + tgt.Site
	return Scenario{
		Name:   "disaster-submit:" + tgt.Site,
		Weight: 2,
		Run: func(c *Ctx) error {
			cl := tgt.Clusters[c.Rand.Intn(len(tgt.Clusters))]
			probe := fmt.Sprintf(`{"request":"cluster='%s'/nodes=%d,walltime=0:30:00","dry_run":true}`,
				cl, 1+c.Rand.Intn(4))
			for i := 0; i < 2; i++ {
				if err := c.PostJSONAccept(base+"/oar/submit", probe, 503); err != nil {
					return err
				}
			}
			submit := fmt.Sprintf(`{"request":"cluster='%s'/nodes=1,walltime=0:10:00","user":"loadgen"}`, cl)
			if err := c.PostJSONAccept(base+"/oar/submit", submit, 503); err != nil {
				return err
			}
			return c.GetAccept(base+"/oar/jobs?limit=10", 503)
		},
	}
}

// DisasterMix is the chaos-window workload: the global dashboard keeps
// polling the merged (degraded-marked) views while per-site scrapers and
// submitters drive every site, downed ones included.
func DisasterMix(targets []SiteTarget) []Scenario {
	out := []Scenario{OperatorDashboard()}
	for _, tgt := range targets {
		out = append(out, DegradedSiteScraper(tgt), DegradedSiteSubmitter(tgt))
	}
	return out
}

// SiteAvailability is one site's slice of an availability report.
type SiteAvailability struct {
	Site         string
	Iterations   int
	Errors       int
	Tolerated502 int64
	Tolerated503 int64
	Availability float64 // fraction of iterations with no real error
}

// AvailabilityReport is the disaster-run verdict: success fractions overall
// and per site, with the by-design refusals (503 + Retry-After) and flaky
// upstreams (502) counted apart from real errors.
type AvailabilityReport struct {
	Overall      float64
	Sites        []SiteAvailability
	Tolerated502 int64
	Tolerated503 int64
}

func (a AvailabilityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "availability %.2f%% overall (tolerated %d × 502, %d × 503)\n",
		100*a.Overall, a.Tolerated502, a.Tolerated503)
	for _, s := range a.Sites {
		fmt.Fprintf(&sb, "  %-12s %.2f%%  (%d it, %d err, %d × 502, %d × 503)\n",
			s.Site, 100*s.Availability, s.Iterations, s.Errors, s.Tolerated502, s.Tolerated503)
	}
	return sb.String()
}

// Availability computes the availability view of a run: overall success
// fraction plus one row per site, attributing each site-pinned scenario
// (name suffix ":{site}") to its site. Scenarios without a site suffix
// (the global dashboard) count only toward the overall number.
func (r *Report) Availability() AvailabilityReport {
	out := AvailabilityReport{
		Tolerated502: r.Tolerated502,
		Tolerated503: r.Tolerated503,
	}
	if r.Iterations > 0 {
		out.Overall = 1 - float64(r.Errors)/float64(r.Iterations)
	}
	bySite := map[string]*SiteAvailability{}
	var order []string
	for _, s := range r.Scenarios {
		i := strings.LastIndexByte(s.Name, ':')
		if i < 0 {
			continue
		}
		site := s.Name[i+1:]
		row := bySite[site]
		if row == nil {
			row = &SiteAvailability{Site: site}
			bySite[site] = row
			order = append(order, site)
		}
		row.Iterations += s.Iterations
		row.Errors += s.Errors
		row.Tolerated502 += s.Tolerated502
		row.Tolerated503 += s.Tolerated503
	}
	sort.Strings(order)
	for _, site := range order {
		row := bySite[site]
		if row.Iterations > 0 {
			row.Availability = 1 - float64(row.Errors)/float64(row.Iterations)
		}
		out.Sites = append(out.Sites, *row)
	}
	return out
}
