package loadgen

import (
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestOpenLoopCountsAndRates(t *testing.T) {
	h, hits := stubService()
	rep, err := RunOpenLoop(OpenLoopConfig{
		Rate:       2000,
		Requests:   60,
		Workers:    3,
		Seed:       7,
		JitterFrac: 0.2,
		Mix: []Scenario{
			{Name: "read", Weight: 1, Run: func(c *Ctx) error { return c.Get("/plain") }},
		},
		NewClient: newClientFor(h),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 60 || rep.Errors != 0 {
		t.Fatalf("report = %d iterations, %d errors", rep.Iterations, rep.Errors)
	}
	if hits.Load() != 60 {
		t.Fatalf("service saw %d hits, want 60", hits.Load())
	}
	if rep.OfferedRate != 2000 || rep.AchievedRate <= 0 {
		t.Fatalf("rates = offered %g, achieved %g", rep.OfferedRate, rep.AchievedRate)
	}
	if rep.Latency.Max <= 0 {
		t.Fatalf("latency not recorded: %+v", rep.Latency)
	}
}

// The arrival schedule is a pure function of the seed: same seed, same
// jittered offsets and the same scenario picks — the determinism the E19
// overload gate leans on.
func TestOpenLoopScheduleDeterminism(t *testing.T) {
	schedule := func(seed int64) []arrival {
		rng := rand.New(rand.NewSource(seed))
		pick, err := newMixPicker([]Scenario{
			{Name: "a", Weight: 2, Run: func(*Ctx) error { return nil }},
			{Name: "b", Weight: 1, Run: func(*Ctx) error { return nil }},
		})
		if err != nil {
			t.Fatal(err)
		}
		gap := float64(time.Second) / 100
		out := make([]arrival, 50)
		var at float64
		for i := range out {
			g := gap * (1 + 0.3*(2*rng.Float64()-1))
			at += g
			out[i] = arrival{at: time.Duration(at), scenario: pick(rng)}
		}
		return out
	}
	a, b := schedule(11), schedule(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := schedule(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestOpenLoopQueueingCountsIntoLatency(t *testing.T) {
	// One worker, a service that takes ~2ms per call, arrivals at 5x that
	// pace: later arrivals must wait for the worker, and that wait must
	// show up as latency (measured from scheduled arrival, not send).
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	rep, err := RunOpenLoop(OpenLoopConfig{
		Rate:     2500, // 0.4ms nominal gap vs 2ms service time
		Requests: 20,
		Workers:  1,
		Seed:     3,
		Mix: []Scenario{
			{Name: "slow", Weight: 1, Run: func(c *Ctx) error { return c.Get("/slow") }},
		},
		NewClient: newClientFor(mux),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last arrival was scheduled at ~8ms but could not start before
	// ~38ms of serialized service time; its latency must reflect the wait.
	if rep.Latency.Max < 10*time.Millisecond {
		t.Fatalf("max latency %v hides queueing (coordinated omission)", rep.Latency.Max)
	}
	if rep.AchievedRate >= rep.OfferedRate {
		t.Fatalf("achieved %g >= offered %g past the knee", rep.AchievedRate, rep.OfferedRate)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	mix := []Scenario{{Name: "x", Weight: 1, Run: func(*Ctx) error { return nil }}}
	nc := func(int) (*http.Client, string) { return nil, "" }
	bad := []OpenLoopConfig{
		{Rate: 0, Requests: 1, Mix: mix, NewClient: nc},
		{Rate: 1, Requests: 0, Mix: mix, NewClient: nc},
		{Rate: 1, Requests: 1, Mix: mix, NewClient: nc, JitterFrac: 1.5},
		{Rate: 1, Requests: 1, Mix: mix},
		{Rate: 1, Requests: 1, Mix: nil, NewClient: nc},
	}
	for i, cfg := range bad {
		if _, err := RunOpenLoop(cfg); err == nil {
			t.Fatalf("config %d validated", i)
		}
	}
}
