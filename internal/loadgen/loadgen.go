// Package loadgen is the workload engine for the testbed's HTTP services:
// N concurrent client workers replay weighted scenario mixes (an operator
// refreshing a dashboard, a script scraping the APIs, a submission-heavy
// user) against a base URL and report throughput plus latency percentiles.
//
// Reporting discipline: a single load-generation run is one sample of a
// noisy process, so Run records every operation's latency and reports the
// spread (p50/p90/p99/max), never just a mean — the same
// resample-and-report-spread discipline the campaign fleet applies to
// simulated metrics. Workers draw scenarios from per-worker seeded RNGs,
// so the generated *sequence* of operations is deterministic for a given
// (seed, workers, requests) triple even though wall-clock interleaving is
// not.
//
// The driver is transport-agnostic: point it at a real listener, or at an
// in-process handler via internal/inproc to benchmark the service code
// without the kernel's socket stack (what BenchmarkE15/E16 do).
package loadgen

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Workers is the number of concurrent client goroutines (≥1).
	Workers int
	// Requests is the total number of scenario iterations to perform
	// across all workers.
	Requests int
	// Mix is the weighted scenario set; at least one scenario with a
	// positive weight is required.
	Mix []Scenario
	// Seed derives the per-worker RNGs (worker i uses Seed+i).
	Seed int64
	// NewClient builds the HTTP client and base URL a worker uses.
	// Workers get one client each, so client-side state (ETag memory)
	// is per-worker, like real independent API consumers.
	NewClient func(worker int) (*http.Client, string)
}

// Scenario is one weighted workload: Run performs a single iteration
// (typically a few related HTTP requests) using the worker's context.
type Scenario struct {
	Name   string
	Weight int
	Run    func(c *Ctx) error
}

// Ctx is the per-worker client context handed to scenario iterations.
type Ctx struct {
	HTTP *http.Client
	Base string
	Rand *rand.Rand

	etags     map[string]string // path → last ETag seen (conditional requests)
	http304   int64
	httpCount int64
	http502   int64 // tolerated 502s (flaky upstream, by design)
	http503   int64 // tolerated 503s (site down + Retry-After, by design)
	http429   int64 // tolerated 429s (admission shed, by design)
	http429RA int64 // tolerated 429s that carried a Retry-After hint
}

// Get performs a GET and drains the body. Statuses ≥ 400 are errors.
func (c *Ctx) Get(path string) error {
	c.httpCount++
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	return drain(resp, path)
}

// GetConditional performs a GET with If-None-Match set to the last ETag
// this worker saw for path; 304 responses count as cache hits and any new
// ETag is remembered.
func (c *Ctx) GetConditional(path string) error {
	c.httpCount++
	req, err := http.NewRequest(http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	if tag := c.etags[path]; tag != "" {
		req.Header.Set("If-None-Match", tag)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotModified {
		c.http304++
		resp.Body.Close()
		return nil
	}
	if tag := resp.Header.Get("ETag"); tag != "" {
		if c.etags == nil {
			c.etags = map[string]string{}
		}
		c.etags[path] = tag
	}
	return drain(resp, path)
}

// GetAccept performs a GET and drains the body, treating the listed
// statuses as acceptable alongside the usual < 400 rule. Site-pinned
// monitor scrapes use it: a flaky kwapi site legitimately answers 502, and
// a site downed by chaos answers 503 with Retry-After — both are signal to
// the consumer, not workload failures, and the two are tallied separately
// (Report.Tolerated502/Tolerated503) so a disaster run can tell gateway
// flakiness from by-design unavailability.
func (c *Ctx) GetAccept(path string, accept ...int) error {
	c.httpCount++
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	return c.acceptOrDrain(resp, path, accept)
}

// PostJSONAccept performs a POST with a JSON body, treating the listed
// statuses as acceptable — the submit path of a disaster scenario tolerates
// 503 from a downed site the same way GetAccept does.
func (c *Ctx) PostJSONAccept(path, body string, accept ...int) error {
	c.httpCount++
	resp, err := c.HTTP.Post(c.Base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	return c.acceptOrDrain(resp, path, accept)
}

// acceptOrDrain finishes an accepting request: listed statuses count into
// the tolerated tallies, everything else follows the usual drain rule.
func (c *Ctx) acceptOrDrain(resp *http.Response, path string, accept []int) error {
	for _, code := range accept {
		if resp.StatusCode == code {
			switch code {
			case http.StatusBadGateway:
				c.http502++
			case http.StatusServiceUnavailable:
				c.http503++
			case http.StatusTooManyRequests:
				// Shed by the admission layer: counted apart from errors
				// (and from 502/503), with the Retry-After presence tallied
				// so overload gates can assert the shed contract.
				c.http429++
				if resp.Header.Get("Retry-After") != "" {
					c.http429RA++
				}
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			return nil
		}
	}
	return drain(resp, path)
}

// PostJSON performs a POST with a JSON body. 2xx statuses pass.
func (c *Ctx) PostJSON(path, body string) error {
	c.httpCount++
	resp, err := c.HTTP.Post(c.Base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	return drain(resp, path)
}

func drain(resp *http.Response, path string) error {
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode >= 400 {
		return fmt.Errorf("loadgen: %s: %s", path, resp.Status)
	}
	return nil
}

// Percentiles summarizes a latency distribution.
type Percentiles struct {
	Mean time.Duration
	P50  time.Duration
	P90  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// ScenarioReport is the per-scenario slice of a run report.
type ScenarioReport struct {
	Name         string
	Iterations   int
	Errors       int
	Tolerated502 int64 // accepted 502s (flaky upstream)
	Tolerated503 int64 // accepted 503s (site down by design)
	Tolerated429 int64 // accepted 429s (admission shed)
	Latency      Percentiles
}

// Report is the outcome of one Run.
type Report struct {
	Workers      int
	Elapsed      time.Duration
	Iterations   int   // scenario iterations completed
	HTTPRequests int64 // individual HTTP requests issued
	NotModified  int64 // conditional requests answered 304
	Errors       int
	Tolerated502 int64   // accepted 502s across all scenarios
	Tolerated503 int64   // accepted 503s across all scenarios
	Tolerated429 int64   // accepted 429s across all scenarios
	Hinted429    int64   // accepted 429s that carried Retry-After
	Throughput   float64 // iterations per second
	Latency      Percentiles
	Scenarios    []ScenarioReport
}

// String renders the report as a compact operator-facing table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d iterations on %d workers in %v: %.0f it/s, %d HTTP requests (%d × 304), %d errors",
		r.Iterations, r.Workers, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.HTTPRequests, r.NotModified, r.Errors)
	if r.Tolerated502+r.Tolerated503 > 0 {
		fmt.Fprintf(&sb, ", tolerated %d × 502 / %d × 503", r.Tolerated502, r.Tolerated503)
	}
	if r.Tolerated429 > 0 {
		fmt.Fprintf(&sb, ", shed %d × 429 (%d with Retry-After)", r.Tolerated429, r.Hinted429)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "latency: p50 %v  p90 %v  p99 %v  max %v\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max)
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "  %-20s %6d it  %3d err  p50 %-10v p99 %v", s.Name, s.Iterations, s.Errors, s.Latency.P50, s.Latency.P99)
		if s.Tolerated502+s.Tolerated503 > 0 {
			fmt.Fprintf(&sb, "  (%d × 502, %d × 503)", s.Tolerated502, s.Tolerated503)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// opRec is one completed scenario iteration.
type opRec struct {
	scenario         int
	ns               int64
	failed           bool
	t502, t503, t429 int64 // tolerated 502/503/429s within this iteration
}

// Run executes the configured workload and reports on it.
func Run(cfg Config) (*Report, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	if cfg.NewClient == nil {
		return nil, fmt.Errorf("loadgen: NewClient is required")
	}
	pick, err := newMixPicker(cfg.Mix)
	if err != nil {
		return nil, err
	}

	var (
		next   atomic.Int64 // shared iteration counter (work stealing)
		wg     sync.WaitGroup
		perOps = make([][]opRec, cfg.Workers)
		perCtx = make([]*Ctx, cfg.Workers)
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		hc, base := cfg.NewClient(w)
		ctx := &Ctx{HTTP: hc, Base: base, Rand: rand.New(rand.NewSource(cfg.Seed + int64(w)))}
		perCtx[w] = ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := make([]opRec, 0, cfg.Requests/cfg.Workers+1)
			for next.Add(1) <= int64(cfg.Requests) {
				i := pick(ctx.Rand)
				b502, b503, b429 := ctx.http502, ctx.http503, ctx.http429
				t0 := time.Now()
				err := cfg.Mix[i].Run(ctx)
				ops = append(ops, opRec{
					scenario: i,
					ns:       time.Since(t0).Nanoseconds(),
					failed:   err != nil,
					t502:     ctx.http502 - b502,
					t503:     ctx.http503 - b503,
					t429:     ctx.http429 - b429,
				})
			}
			perOps[w] = ops
		}()
	}
	wg.Wait()
	return buildReport(cfg.Mix, perOps, perCtx, cfg.Workers, time.Since(start)), nil
}

// buildReport folds per-worker operation records and client counters into
// one run report (shared by the closed-loop Run and open-loop RunOpenLoop).
func buildReport(mix []Scenario, perOps [][]opRec, perCtx []*Ctx, workers int, elapsed time.Duration) *Report {
	rep := &Report{Workers: workers, Elapsed: elapsed}
	var all []int64
	perScen := make([][]int64, len(mix))
	scenErr := make([]int, len(mix))
	scen502 := make([]int64, len(mix))
	scen503 := make([]int64, len(mix))
	scen429 := make([]int64, len(mix))
	for w, ops := range perOps {
		rep.HTTPRequests += perCtx[w].httpCount
		rep.NotModified += perCtx[w].http304
		rep.Tolerated502 += perCtx[w].http502
		rep.Tolerated503 += perCtx[w].http503
		rep.Tolerated429 += perCtx[w].http429
		rep.Hinted429 += perCtx[w].http429RA
		for _, op := range ops {
			rep.Iterations++
			if op.failed {
				rep.Errors++
				scenErr[op.scenario]++
			}
			scen502[op.scenario] += op.t502
			scen503[op.scenario] += op.t503
			scen429[op.scenario] += op.t429
			all = append(all, op.ns)
			perScen[op.scenario] = append(perScen[op.scenario], op.ns)
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Iterations) / elapsed.Seconds()
	}
	rep.Latency = percentiles(all)
	for i, s := range mix {
		rep.Scenarios = append(rep.Scenarios, ScenarioReport{
			Name:         s.Name,
			Iterations:   len(perScen[i]),
			Errors:       scenErr[i],
			Tolerated502: scen502[i],
			Tolerated503: scen503[i],
			Tolerated429: scen429[i],
			Latency:      percentiles(perScen[i]),
		})
	}
	return rep
}

// newMixPicker validates a scenario mix and returns the weighted
// per-iteration draw.
func newMixPicker(mix []Scenario) (func(rng *rand.Rand) int, error) {
	total := 0
	for _, s := range mix {
		if s.Weight < 0 || s.Run == nil {
			return nil, fmt.Errorf("loadgen: scenario %q invalid", s.Name)
		}
		total += s.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	// Cumulative weights for the per-iteration draw.
	cum := make([]int, len(mix))
	acc := 0
	for i, s := range mix {
		acc += s.Weight
		cum[i] = acc
	}
	return func(rng *rand.Rand) int {
		n := rng.Intn(total)
		for i, c := range cum {
			if n < c {
				return i
			}
		}
		return len(cum) - 1 // unreachable
	}, nil
}

// percentiles computes the latency spread of a sample set.
func percentiles(ns []int64) Percentiles {
	if len(ns) == 0 {
		return Percentiles{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var sum int64
	for _, v := range ns {
		sum += v
	}
	at := func(q float64) time.Duration {
		i := int(q * float64(len(ns)-1))
		return time.Duration(ns[i])
	}
	return Percentiles{
		Mean: time.Duration(sum / int64(len(ns))),
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  time.Duration(ns[len(ns)-1]),
	}
}
