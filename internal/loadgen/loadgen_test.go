package loadgen

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/inproc"
)

// stubService is a tiny in-process API with an ETag'd endpoint, a plain
// endpoint and a failing one.
func stubService() (http.Handler, *atomic.Int64) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/plain", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		json.NewEncoder(w).Encode(map[string]int{"ok": 1}) //nolint:errcheck
	})
	mux.HandleFunc("/tagged", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		const etag = `"v1"`
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"v": 1}) //nolint:errcheck
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	return mux, &hits
}

func newClientFor(h http.Handler) func(int) (*http.Client, string) {
	return func(int) (*http.Client, string) {
		return inproc.Client(h), "http://stub.local"
	}
}

func TestRunCountsAndPercentiles(t *testing.T) {
	h, hits := stubService()
	rep, err := Run(Config{
		Workers:  3,
		Requests: 90,
		Seed:     1,
		Mix: []Scenario{
			{Name: "read", Weight: 3, Run: func(c *Ctx) error { return c.Get("/plain") }},
			{Name: "cond", Weight: 2, Run: func(c *Ctx) error { return c.GetConditional("/tagged") }},
			{Name: "write", Weight: 1, Run: func(c *Ctx) error { return c.PostJSON("/echo", `{}`) }},
		},
		NewClient: newClientFor(h),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 90 {
		t.Fatalf("iterations = %d, want 90", rep.Iterations)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.HTTPRequests != hits.Load() {
		t.Fatalf("client counted %d requests, server saw %d", rep.HTTPRequests, hits.Load())
	}
	// Each worker's first /tagged read is a 200; everything after is 304.
	if rep.NotModified == 0 {
		t.Fatal("no 304s recorded")
	}
	sum := 0
	for _, s := range rep.Scenarios {
		if s.Iterations == 0 {
			t.Fatalf("scenario %s never ran", s.Name)
		}
		sum += s.Iterations
	}
	if sum != rep.Iterations {
		t.Fatalf("scenario iterations sum %d != total %d", sum, rep.Iterations)
	}
	l := rep.Latency
	if l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max || l.Max == 0 {
		t.Fatalf("percentiles not ordered: %+v", l)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %f", rep.Throughput)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestRunCountsErrors(t *testing.T) {
	h, _ := stubService()
	rep, err := Run(Config{
		Workers:  2,
		Requests: 20,
		Mix: []Scenario{
			{Name: "bad", Weight: 1, Run: func(c *Ctx) error { return c.Get("/boom") }},
		},
		NewClient: newClientFor(h),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 20 || rep.Scenarios[0].Errors != 20 {
		t.Fatalf("errors = %d / %d, want 20", rep.Errors, rep.Scenarios[0].Errors)
	}
}

func TestRunValidation(t *testing.T) {
	h, _ := stubService()
	ok := Scenario{Name: "ok", Weight: 1, Run: func(c *Ctx) error { return nil }}
	cases := []Config{
		{Workers: 1, Requests: 0, Mix: []Scenario{ok}, NewClient: newClientFor(h)},
		{Workers: 1, Requests: 1, Mix: nil, NewClient: newClientFor(h)},
		{Workers: 1, Requests: 1, Mix: []Scenario{{Name: "w0", Weight: 0, Run: ok.Run}}, NewClient: newClientFor(h)},
		{Workers: 1, Requests: 1, Mix: []Scenario{ok}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// TestWeightedDrawDistribution checks the weighted scenario draw against
// its expectation: over many iterations the split must approach the
// configured 3:1 ratio.
func TestWeightedDrawDistribution(t *testing.T) {
	h, _ := stubService()
	rep, err := Run(Config{
		Workers:  1,
		Requests: 4000,
		Seed:     99,
		Mix: []Scenario{
			{Name: "heavy", Weight: 3, Run: func(c *Ctx) error { return nil }},
			{Name: "light", Weight: 1, Run: func(c *Ctx) error { return nil }},
		},
		NewClient: newClientFor(h),
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy := rep.Scenarios[0].Iterations
	frac := float64(heavy) / float64(rep.Iterations)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("heavy fraction = %.3f, want ≈0.75", frac)
	}
}

// TestScenarioSequenceDeterminism: for a fixed (seed, workers), a single
// worker draws the same scenario sequence run over run.
func TestScenarioSequenceDeterminism(t *testing.T) {
	h, _ := stubService()
	sequence := func() string {
		var seq []byte
		mix := []Scenario{
			{Name: "a", Weight: 2, Run: func(c *Ctx) error { seq = append(seq, 'a'); return nil }},
			{Name: "b", Weight: 1, Run: func(c *Ctx) error { seq = append(seq, 'b'); return nil }},
		}
		if _, err := Run(Config{Workers: 1, Requests: 40, Seed: 5, Mix: mix, NewClient: newClientFor(h)}); err != nil {
			t.Fatal(err)
		}
		return string(seq)
	}
	if s1, s2 := sequence(), sequence(); s1 != s2 {
		t.Fatalf("sequences diverged:\n%s\n%s", s1, s2)
	}
}

func TestPercentilesEdgeCases(t *testing.T) {
	if p := percentiles(nil); p.Max != 0 || p.P50 != 0 {
		t.Fatalf("empty percentiles = %+v", p)
	}
	p := percentiles([]int64{int64(time.Millisecond)})
	if p.P50 != time.Millisecond || p.P99 != time.Millisecond || p.Max != time.Millisecond {
		t.Fatalf("single-sample percentiles = %+v", p)
	}
}

func TestDefaultMixShapes(t *testing.T) {
	mix := DefaultMix([]string{"c1"})
	if len(mix) != 3 {
		t.Fatalf("default mix has %d scenarios", len(mix))
	}
	for _, s := range mix {
		if s.Weight <= 0 || s.Run == nil || s.Name == "" {
			t.Fatalf("scenario %+v malformed", s.Name)
		}
	}
	if mix := ScrapeOnlyMix(nil); len(mix) != 1 || mix[0].Name != "api-scraper" {
		t.Fatalf("scrape mix = %+v", mix)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SubmitHeavy with no clusters should panic")
		}
	}()
	SubmitHeavy(nil)
}

// TestSitePinnedScenarios drives the federated scenario variants against a
// stub of the gateway's /sites routes, including a monitor endpoint that
// always answers 502 — acceptable to the scraper by contract.
func TestSitePinnedScenarios(t *testing.T) {
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"ok": 1}) //nolint:errcheck
	}
	mux.HandleFunc("/sites", ok)
	mux.HandleFunc("/sites/lyon/oar/resources", ok)
	mux.HandleFunc("/sites/lyon/oar/jobs", ok)
	mux.HandleFunc("/sites/lyon/ref/inventory", func(w http.ResponseWriter, r *http.Request) {
		const etag = `"v1"`
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		ok(w, r)
	})
	mux.HandleFunc("/sites/lyon/monitor/metrics", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "kwapi service error", http.StatusBadGateway)
	})
	var submits atomic.Int64
	mux.HandleFunc("/sites/lyon/oar/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		submits.Add(1)
		w.WriteHeader(http.StatusCreated)
	})

	tgt := SiteTarget{Site: "lyon", Clusters: []string{"taurus"}, Nodes: []string{"taurus-1.lyon"}}
	rep, err := Run(Config{
		Workers:  2,
		Requests: 40,
		Seed:     7,
		Mix:      []Scenario{SiteScraper(tgt), SiteSubmitter(tgt)},
		NewClient: func(int) (*http.Client, string) {
			return inproc.Client(mux), "http://fed.local"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("site-pinned mix errors = %d:\n%s", rep.Errors, rep)
	}
	for _, s := range rep.Scenarios {
		if s.Iterations == 0 {
			t.Fatalf("scenario %s never ran", s.Name)
		}
	}
	if submits.Load() == 0 {
		t.Fatal("site submitter never posted")
	}
	if rep.NotModified == 0 {
		t.Fatal("conditional site inventory reads never hit 304")
	}
}

func TestFederatedMixShape(t *testing.T) {
	mix := FederatedMix([]SiteTarget{
		{Site: "lyon", Clusters: []string{"taurus"}},
		{Site: "nancy", Clusters: []string{"graphene"}},
	})
	if len(mix) != 5 {
		t.Fatalf("federated mix has %d scenarios, want 5 (dashboard + 2 per site)", len(mix))
	}
	names := map[string]bool{}
	for _, s := range mix {
		if s.Weight <= 0 || s.Run == nil {
			t.Fatalf("scenario %q malformed", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"operator-dashboard", "site-scraper:lyon", "site-submit:nancy"} {
		if !names[want] {
			t.Fatalf("federated mix misses %q (have %v)", want, names)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SiteSubmitter with no clusters should panic")
		}
	}()
	SiteSubmitter(SiteTarget{Site: "lyon"})
}
