package loadgen

// Open-loop load generation: arrivals follow a fixed offered rate with
// seeded jitter, independent of how fast the service answers. The
// closed-loop Run hides queueing collapse by construction — a slow server
// slows the workers down, so offered load sags exactly when the system is
// in trouble. Here the arrival schedule is precomputed from the seed, a
// dispatcher releases work at the scheduled instants whether or not earlier
// requests finished, and every latency is measured from the *scheduled*
// arrival, not the send — the coordinated-omission-safe discipline overload
// gates need (BenchmarkE19_OverloadShedding drives exactly this).

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// OpenLoopConfig parameterizes one open-loop run.
type OpenLoopConfig struct {
	// Rate is the offered arrival rate in iterations per second (> 0).
	Rate float64
	// Requests is the total number of arrivals to schedule.
	Requests int
	// Workers bounds the in-flight concurrency (≥1). With every worker
	// busy, arrivals wait in the dispatch buffer — and their queueing time
	// counts into their latency, never silently omitted.
	Workers int
	// Mix is the weighted scenario set (as in Config).
	Mix []Scenario
	// Seed derives the arrival jitter and the per-arrival scenario picks
	// (one master stream, so the schedule is a pure function of the seed).
	Seed int64
	// JitterFrac perturbs each inter-arrival gap by ±JitterFrac of its
	// nominal length (0 = a perfectly regular arrival train; 1 = gaps
	// anywhere in (0, 2/Rate)).
	JitterFrac float64
	// NewClient builds the HTTP client and base URL a worker uses.
	NewClient func(worker int) (*http.Client, string)
}

// OpenLoopReport is the outcome of one RunOpenLoop: the usual report, with
// latencies measured from scheduled arrivals, plus the offered/achieved
// rate pair whose divergence locates the capacity knee.
type OpenLoopReport struct {
	Report
	OfferedRate  float64 // what the schedule asked for (it/s)
	AchievedRate float64 // what actually completed (it/s)
}

// arrival is one scheduled request: when it is due and which scenario runs.
type arrival struct {
	at       time.Duration // offset from run start
	scenario int
}

// RunOpenLoop executes the configured open-loop workload.
func RunOpenLoop(cfg OpenLoopConfig) (*OpenLoopReport, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs Rate > 0")
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac > 1 {
		return nil, fmt.Errorf("loadgen: JitterFrac must be in [0, 1]")
	}
	if cfg.NewClient == nil {
		return nil, fmt.Errorf("loadgen: NewClient is required")
	}
	pick, err := newMixPicker(cfg.Mix)
	if err != nil {
		return nil, err
	}

	// The whole schedule comes from one seeded stream: arrival i lands at
	// the sum of i jittered gaps and runs a deterministic scenario pick.
	rng := rand.New(rand.NewSource(cfg.Seed))
	gap := float64(time.Second) / cfg.Rate
	arrivals := make([]arrival, cfg.Requests)
	var at float64
	for i := range arrivals {
		g := gap
		if cfg.JitterFrac > 0 {
			g *= 1 + cfg.JitterFrac*(2*rng.Float64()-1)
		}
		at += g
		arrivals[i] = arrival{at: time.Duration(at), scenario: pick(rng)}
	}

	// The dispatch buffer holds every arrival, so the dispatcher NEVER
	// blocks on slow workers — that non-blocking send is what makes the
	// loop open: offered load does not bend to service time.
	queue := make(chan arrival, cfg.Requests)
	perOps := make([][]opRec, cfg.Workers)
	perCtx := make([]*Ctx, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		hc, base := cfg.NewClient(w)
		// Workers never draw from Rand (picks are pre-scheduled), but the
		// context keeps one so scenario bodies written for Run still work.
		ctx := &Ctx{HTTP: hc, Base: base, Rand: rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))}
		perCtx[w] = ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := make([]opRec, 0, cfg.Requests/cfg.Workers+1)
			for a := range queue {
				b502, b503, b429 := ctx.http502, ctx.http503, ctx.http429
				err := cfg.Mix[a.scenario].Run(ctx)
				// Latency from the scheduled arrival: time the request
				// spent waiting for a free worker counts against the
				// service, exactly what coordinated omission would hide.
				ops = append(ops, opRec{
					scenario: a.scenario,
					ns:       (time.Since(start) - a.at).Nanoseconds(),
					failed:   err != nil,
					t502:     ctx.http502 - b502,
					t503:     ctx.http503 - b503,
					t429:     ctx.http429 - b429,
				})
			}
			perOps[w] = ops
		}()
	}
	for _, a := range arrivals {
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		queue <- a
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	out := &OpenLoopReport{
		Report:      *buildReport(cfg.Mix, perOps, perCtx, cfg.Workers, elapsed),
		OfferedRate: cfg.Rate,
	}
	if elapsed > 0 {
		out.AchievedRate = float64(out.Iterations) / elapsed.Seconds()
	}
	return out, nil
}
