package loadgen

import (
	"net/http"
	"testing"
)

// degradedStub answers like a gateway mid-outage: one path serves, one is
// 503-by-design with Retry-After, one is a flaky 502 upstream, one fails
// for real.
func degradedStub() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/up", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	})
	mux.HandleFunc("/down", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "60")
		http.Error(w, "site down", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/flaky", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "kwapi unreachable", http.StatusBadGateway)
	})
	mux.HandleFunc("/broken", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bug", http.StatusInternalServerError)
	})
	return mux
}

func TestGetAcceptCounts502And503Separately(t *testing.T) {
	rep, err := Run(Config{
		Workers:   2,
		Requests:  40,
		Seed:      7,
		NewClient: newClientFor(degradedStub()),
		Mix: []Scenario{
			{Name: "ride:alpha", Weight: 1, Run: func(c *Ctx) error {
				if err := c.GetAccept("/down", 503); err != nil {
					return err
				}
				return c.GetAccept("/flaky", 502, 503)
			}},
			{Name: "ok:beta", Weight: 1, Run: func(c *Ctx) error {
				if err := c.Get("/up"); err != nil {
					return err
				}
				return c.PostJSONAccept("/down", `{}`, 503)
			}},
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (all failures tolerated)", rep.Errors)
	}
	if rep.Tolerated502 == 0 || rep.Tolerated503 == 0 {
		t.Fatalf("tolerated counters = %d × 502, %d × 503; want both > 0",
			rep.Tolerated502, rep.Tolerated503)
	}
	var ride, ok ScenarioReport
	for _, s := range rep.Scenarios {
		switch s.Name {
		case "ride:alpha":
			ride = s
		case "ok:beta":
			ok = s
		}
	}
	// ride does one accepted 503 and one accepted 502 per iteration; ok
	// does one accepted 503 (the POST) per iteration and never a 502.
	if ride.Tolerated502 != int64(ride.Iterations) || ride.Tolerated503 != int64(ride.Iterations) {
		t.Fatalf("ride tallies = %d × 502, %d × 503 over %d it", ride.Tolerated502, ride.Tolerated503, ride.Iterations)
	}
	if ok.Tolerated502 != 0 || ok.Tolerated503 != int64(ok.Iterations) {
		t.Fatalf("ok tallies = %d × 502, %d × 503 over %d it", ok.Tolerated502, ok.Tolerated503, ok.Iterations)
	}
	if rep.Tolerated502 != ride.Tolerated502 || rep.Tolerated503 != ride.Tolerated503+ok.Tolerated503 {
		t.Fatalf("report totals do not match scenario tallies: %+v", rep)
	}
}

// 429s (admission shed) are counted apart from errors AND apart from the
// 502/503 tallies, with the Retry-After presence tracked for the overload
// gate's shed contract.
func TestAcceptCounts429SeparatelyWithHint(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/shed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	})
	mux.HandleFunc("/shed-bare", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "queue full", http.StatusTooManyRequests)
	})
	rep, err := Run(Config{
		Workers:   1,
		Requests:  6,
		Seed:      2,
		NewClient: newClientFor(mux),
		Mix: []Scenario{
			{Name: "submit", Weight: 1, Run: func(c *Ctx) error {
				if err := c.PostJSONAccept("/shed", `{}`, 429, 503); err != nil {
					return err
				}
				return c.GetAccept("/shed-bare", 429)
			}},
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (sheds tolerated)", rep.Errors)
	}
	if rep.Tolerated429 != 12 || rep.Tolerated502 != 0 || rep.Tolerated503 != 0 {
		t.Fatalf("tallies = %d × 429, %d × 502, %d × 503; want 12, 0, 0",
			rep.Tolerated429, rep.Tolerated502, rep.Tolerated503)
	}
	if rep.Hinted429 != 6 {
		t.Fatalf("hinted 429s = %d, want 6 (only /shed carries Retry-After)", rep.Hinted429)
	}
	if rep.Scenarios[0].Tolerated429 != 12 {
		t.Fatalf("scenario tally = %d, want 12", rep.Scenarios[0].Tolerated429)
	}
}

func TestGetAcceptStillFailsOnUnlistedStatus(t *testing.T) {
	rep, err := Run(Config{
		Workers:   1,
		Requests:  5,
		Seed:      1,
		NewClient: newClientFor(degradedStub()),
		Mix: []Scenario{
			{Name: "broken", Weight: 1, Run: func(c *Ctx) error {
				return c.GetAccept("/broken", 502, 503)
			}},
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Errors != 5 || rep.Tolerated502 != 0 || rep.Tolerated503 != 0 {
		t.Fatalf("real 500s must stay errors: %+v", rep)
	}
}

func TestAvailabilityReport(t *testing.T) {
	rep := &Report{
		Iterations:   100,
		Errors:       3,
		Tolerated503: 40,
		Scenarios: []ScenarioReport{
			{Name: "operator-dashboard", Iterations: 10, Errors: 1},
			{Name: "disaster-scraper:lyon", Iterations: 30, Errors: 0, Tolerated503: 30},
			{Name: "disaster-submit:lyon", Iterations: 10, Errors: 0, Tolerated503: 10},
			{Name: "disaster-scraper:nancy", Iterations: 50, Errors: 2},
		},
	}
	av := rep.Availability()
	if av.Overall != 0.97 {
		t.Fatalf("overall = %v", av.Overall)
	}
	if len(av.Sites) != 2 {
		t.Fatalf("sites = %+v", av.Sites)
	}
	lyon, nancy := av.Sites[0], av.Sites[1]
	if lyon.Site != "lyon" || nancy.Site != "nancy" {
		t.Fatalf("site order = %s, %s (want sorted)", lyon.Site, nancy.Site)
	}
	if lyon.Availability != 1 || lyon.Tolerated503 != 40 || lyon.Iterations != 40 {
		t.Fatalf("lyon row = %+v", lyon)
	}
	if nancy.Availability != 1-2.0/50 || nancy.Tolerated503 != 0 {
		t.Fatalf("nancy row = %+v", nancy)
	}
	if av.Tolerated503 != 40 {
		t.Fatalf("report-level 503 tally lost: %+v", av)
	}
}

func TestDisasterMixShape(t *testing.T) {
	targets := []SiteTarget{
		{Site: "lyon", Clusters: []string{"sagittaire"}, Nodes: []string{"sagittaire-1"}},
		{Site: "nancy", Clusters: []string{"griffon"}},
	}
	mix := DisasterMix(targets)
	if len(mix) != 5 {
		t.Fatalf("mix size = %d, want dashboard + 2 per site", len(mix))
	}
	want := []string{"operator-dashboard", "disaster-scraper:lyon", "disaster-submit:lyon",
		"disaster-scraper:nancy", "disaster-submit:nancy"}
	for i, s := range mix {
		if s.Name != want[i] {
			t.Fatalf("mix[%d] = %s, want %s", i, s.Name, want[i])
		}
		if s.Weight <= 0 || s.Run == nil {
			t.Fatalf("mix[%d] malformed: %+v", i, s)
		}
	}
}
