package loadgen

// The canonical scenario mixes for the testbed API gateway. Each models
// one real consumer population of the paper's services:
//
//   - operator-dashboard: a human dashboard polling the status grid, the
//     trend and the open-bug list;
//   - api-scraper: scripted consumers re-reading the Reference API and the
//     resource states; they use conditional requests, so a quiet testbed
//     answers them almost entirely from the 304 path;
//   - submit-heavy: tooling probing and submitting OAR jobs;
//   - site-scraper / site-submit: the site-pinned variants of the above
//     for federated gateways — they talk only to /sites/{site}/... routes,
//     so one site's traffic never queues behind another site's Advance.

import "fmt"

// OperatorDashboard returns the dashboard-refresh scenario.
func OperatorDashboard() Scenario {
	return Scenario{
		Name:   "operator-dashboard",
		Weight: 2,
		Run: func(c *Ctx) error {
			if err := c.Get("/status/grid"); err != nil {
				return err
			}
			if err := c.Get("/status/trend"); err != nil {
				return err
			}
			if err := c.Get("/bugs?state=open"); err != nil {
				return err
			}
			return c.Get("/metrics")
		},
	}
}

// APIScraper returns the scripted-consumer scenario. clusters narrows the
// resource reads the way real scripts scope their queries; an empty slice
// reads everything.
func APIScraper(clusters []string) Scenario {
	return Scenario{
		Name:   "api-scraper",
		Weight: 5,
		Run: func(c *Ctx) error {
			if err := c.GetConditional("/ref/inventory"); err != nil {
				return err
			}
			if err := c.GetConditional("/ref/diff"); err != nil {
				return err
			}
			path := "/oar/resources"
			if len(clusters) > 0 {
				path += "?cluster=" + clusters[c.Rand.Intn(len(clusters))]
			}
			if err := c.Get(path); err != nil {
				return err
			}
			return c.Get("/ci/api/json")
		},
	}
}

// SubmitHeavy returns the submission-tooling scenario: a few availability
// probes (dry runs through the scheduler's CanStartNow path) and one real
// short job per iteration.
func SubmitHeavy(clusters []string) Scenario {
	if len(clusters) == 0 {
		panic("loadgen: SubmitHeavy needs at least one cluster")
	}
	return Scenario{
		Name:   "submit-heavy",
		Weight: 3,
		Run: func(c *Ctx) error {
			cl := clusters[c.Rand.Intn(len(clusters))]
			probe := fmt.Sprintf(`{"request":"cluster='%s'/nodes=%d,walltime=0:30:00","dry_run":true}`,
				cl, 1+c.Rand.Intn(4))
			for i := 0; i < 3; i++ {
				if err := c.PostJSON("/oar/submit", probe); err != nil {
					return err
				}
			}
			submit := fmt.Sprintf(`{"request":"cluster='%s'/nodes=1,walltime=0:10:00","user":"loadgen"}`, cl)
			if err := c.PostJSON("/oar/submit", submit); err != nil {
				return err
			}
			return c.Get("/oar/jobs?limit=25")
		},
	}
}

// DefaultMix is the mixed production-style workload: mostly scripted
// scraping, a steady dashboard-refresh stream, and submission tooling.
func DefaultMix(clusters []string) []Scenario {
	return []Scenario{OperatorDashboard(), APIScraper(clusters), SubmitHeavy(clusters)}
}

// ScrapeOnlyMix is the read-hot workload used for throughput scaling
// measurements: conditional Reference API reads plus resource listings.
func ScrapeOnlyMix(clusters []string) []Scenario {
	s := APIScraper(clusters)
	s.Weight = 1
	return []Scenario{s}
}

// ---- site-pinned scenarios (federated gateways) -----------------------------

// SiteTarget names one site of a federated gateway for the site-pinned
// scenario variants: the consumers that live at a site and talk only to
// its shard, so their latency never rides on another site's campaign
// progress.
type SiteTarget struct {
	Site     string
	Clusters []string // clusters at the site (resource filters, submits)
	Nodes    []string // optional: node names enabling monitor scrapes
}

// SiteScraper returns the site-pinned scripted consumer: it reads only
// /sites/{site}/... routes (plus the cheap /sites index), the way a
// site-local dashboard scopes its queries.
func SiteScraper(tgt SiteTarget) Scenario {
	base := "/sites/" + tgt.Site
	return Scenario{
		Name:   "site-scraper:" + tgt.Site,
		Weight: 5,
		Run: func(c *Ctx) error {
			if err := c.Get("/sites"); err != nil {
				return err
			}
			path := base + "/oar/resources"
			if len(tgt.Clusters) > 0 && c.Rand.Intn(2) == 0 {
				path += "?cluster=" + tgt.Clusters[c.Rand.Intn(len(tgt.Clusters))]
			}
			if err := c.Get(path); err != nil {
				return err
			}
			if err := c.GetConditional(base + "/ref/inventory"); err != nil {
				return err
			}
			if len(tgt.Nodes) > 0 {
				node := tgt.Nodes[c.Rand.Intn(len(tgt.Nodes))]
				// Monitoring may answer 502 when the site's kwapi is flaky
				// (the paper's running example) — that is data, not failure.
				mon := base + "/monitor/metrics?metric=power_w&node=" + node + "&from_sec=0&to_sec=30"
				if err := c.GetAccept(mon, 502); err != nil {
					return err
				}
			}
			return c.Get(base + "/oar/jobs?limit=25")
		},
	}
}

// SiteSubmitter returns the site-pinned submission tooling: dry-run probes
// and a short job against one site's shard, skipping the federated anchor
// routing entirely.
func SiteSubmitter(tgt SiteTarget) Scenario {
	if len(tgt.Clusters) == 0 {
		panic("loadgen: SiteSubmitter needs at least one cluster")
	}
	base := "/sites/" + tgt.Site
	return Scenario{
		Name:   "site-submit:" + tgt.Site,
		Weight: 2,
		Run: func(c *Ctx) error {
			cl := tgt.Clusters[c.Rand.Intn(len(tgt.Clusters))]
			probe := fmt.Sprintf(`{"request":"cluster='%s'/nodes=%d,walltime=0:30:00","dry_run":true}`,
				cl, 1+c.Rand.Intn(4))
			for i := 0; i < 2; i++ {
				if err := c.PostJSON(base+"/oar/submit", probe); err != nil {
					return err
				}
			}
			submit := fmt.Sprintf(`{"request":"cluster='%s'/nodes=1,walltime=0:10:00","user":"loadgen"}`, cl)
			if err := c.PostJSON(base+"/oar/submit", submit); err != nil {
				return err
			}
			return c.Get(base + "/oar/jobs?limit=10")
		},
	}
}

// FederatedMix is the production-style workload for a federated gateway:
// one site-pinned scraper and submitter per site, plus the global
// operator dashboard riding the scatter-gather endpoints.
func FederatedMix(targets []SiteTarget) []Scenario {
	out := []Scenario{OperatorDashboard()}
	for _, tgt := range targets {
		out = append(out, SiteScraper(tgt), SiteSubmitter(tgt))
	}
	return out
}
