package ci

import (
	"fmt"
	"testing"

	"repro/internal/simclock"
)

func constScript(res Result, dur simclock.Time) Script {
	return func(bc *BuildContext) Outcome {
		bc.Logf("running %s", bc.Job)
		return Outcome{Result: res, Duration: dur}
	}
}

func TestSimpleBuildLifecycle(t *testing.T) {
	c := simclock.New(1)
	s := NewServer(c, 2)
	if err := s.CreateJob(&Job{Name: "smoke", Script: constScript(Success, 10*simclock.Minute)}); err != nil {
		t.Fatal(err)
	}
	b, err := s.Trigger("smoke", "test")
	if err != nil {
		t.Fatal(err)
	}
	if b.Completed() {
		t.Fatal("completed before event loop ran")
	}
	c.Run()
	if !b.Completed() || b.Result != Success {
		t.Fatalf("result = %v", b.Result)
	}
	if b.EndedAt-b.StartedAt != 10*simclock.Minute {
		t.Fatalf("duration = %v", b.EndedAt-b.StartedAt)
	}
	if len(b.Log) == 0 || b.Log[0] != "running smoke" {
		t.Fatalf("log = %v", b.Log)
	}
	if s.TotalBuilds() != 1 {
		t.Fatalf("total = %d", s.TotalBuilds())
	}
}

func TestExecutorPoolLimitsParallelism(t *testing.T) {
	c := simclock.New(2)
	s := NewServer(c, 2)
	// Five one-hour builds of five distinct jobs: only the pool size limits
	// parallelism (same-job builds would additionally serialize).
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("slow-%d", i)
		if err := s.CreateJob(&Job{Name: name, Script: constScript(Success, simclock.Hour)}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Trigger(name, "test"); err != nil {
			t.Fatal(err)
		}
	}
	c.RunUntil(simclock.Minute)
	if s.BusyExecutors() != 2 {
		t.Fatalf("busy = %d, want 2", s.BusyExecutors())
	}
	if s.QueueLength() != 3 {
		t.Fatalf("queue = %d, want 3", s.QueueLength())
	}
	// 5 one-hour builds on 2 executors take 3 hours.
	c.Run()
	if got := c.Now(); got != 3*simclock.Hour {
		t.Fatalf("makespan = %v, want 3h", got)
	}
	if s.BusyExecutors() != 0 || s.QueueLength() != 0 {
		t.Fatal("server not drained")
	}
}

func TestCreateJobValidation(t *testing.T) {
	s := NewServer(simclock.New(3), 1)
	if err := s.CreateJob(&Job{Name: "", Script: constScript(Success, 0)}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.CreateJob(&Job{Name: "x"}); err == nil {
		t.Fatal("nil script accepted")
	}
	s.CreateJob(&Job{Name: "x", Script: constScript(Success, 0)})
	if err := s.CreateJob(&Job{Name: "x", Script: constScript(Success, 0)}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := s.Trigger("ghost", "test"); err == nil {
		t.Fatal("unknown job triggered")
	}
}

func TestMatrixExpansion(t *testing.T) {
	c := simclock.New(4)
	s := NewServer(c, 8)
	job := &Job{
		Name:   "envs",
		Script: constScript(Success, 20*simclock.Minute),
		Axes: []Axis{
			{Name: "image", Values: []string{"a", "b", "c"}},
			{Name: "cluster", Values: []string{"x", "y"}},
		},
	}
	s.CreateJob(job)
	if job.CellCount() != 6 {
		t.Fatalf("cell count = %d", job.CellCount())
	}
	parent, _ := s.Trigger("envs", "test")
	c.Run()
	if len(parent.CellBuilds) != 6 {
		t.Fatalf("cells = %d", len(parent.CellBuilds))
	}
	if !parent.Completed() || parent.Result != Success {
		t.Fatalf("parent result = %v", parent.Result)
	}
	// Parent spans its cells.
	if parent.EndedAt-parent.StartedAt != 20*simclock.Minute {
		t.Fatalf("parent span = %v", parent.EndedAt-parent.StartedAt)
	}
	seen := map[string]bool{}
	for _, num := range parent.CellBuilds {
		cb := s.Build("envs", num)
		if cb.Parent != parent.Number {
			t.Fatal("cell not linked to parent")
		}
		seen[cb.CellKey()] = true
	}
	if len(seen) != 6 || !seen["cluster=x,image=a"] {
		t.Fatalf("cell keys = %v", seen)
	}
}

func TestMatrixParentAggregatesWorstResult(t *testing.T) {
	c := simclock.New(5)
	s := NewServer(c, 8)
	s.CreateJob(&Job{
		Name: "mixed",
		Script: func(bc *BuildContext) Outcome {
			switch bc.Axis("v") {
			case "ok":
				return Outcome{Result: Success, Duration: simclock.Minute}
			case "meh":
				return Outcome{Result: Unstable, Duration: simclock.Minute}
			default:
				return Outcome{Result: Failure, Duration: simclock.Minute}
			}
		},
		Axes: []Axis{{Name: "v", Values: []string{"ok", "meh", "bad"}}},
	})
	parent, _ := s.Trigger("mixed", "test")
	c.Run()
	if parent.Result != Failure {
		t.Fatalf("parent = %v, want FAILURE", parent.Result)
	}
	if got := s.CellResult("mixed", parent.Number, "v=meh"); got != Unstable {
		t.Fatalf("cell meh = %v", got)
	}
	if got := s.CellResult("mixed", parent.Number, "v=nope"); got != NotBuilt {
		t.Fatalf("missing cell = %v", got)
	}
}

func TestMatrixReloadedRetriesOnlyFailedCells(t *testing.T) {
	c := simclock.New(6)
	s := NewServer(c, 8)
	// Fail cluster y on the first run, pass afterwards.
	attempt := map[string]int{}
	s.CreateJob(&Job{
		Name: "flaky",
		Script: func(bc *BuildContext) Outcome {
			k := bc.Axis("cluster")
			attempt[k]++
			if k == "y" && attempt[k] == 1 {
				return Outcome{Result: Failure, Duration: simclock.Minute}
			}
			return Outcome{Result: Success, Duration: simclock.Minute}
		},
		Axes: []Axis{{Name: "cluster", Values: []string{"x", "y", "z"}}},
	})
	p1, _ := s.Trigger("flaky", "test")
	c.Run()
	if p1.Result != Failure {
		t.Fatalf("first run = %v", p1.Result)
	}
	failed, err := s.FailedCells("flaky", p1.Number)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0]["cluster"] != "y" {
		t.Fatalf("failed cells = %v", failed)
	}

	p2, err := s.RetryFailedCells("flaky", p1.Number, "matrix-reloaded")
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if len(p2.CellBuilds) != 1 {
		t.Fatalf("retry ran %d cells, want 1", len(p2.CellBuilds))
	}
	if p2.Result != Success {
		t.Fatalf("retry = %v", p2.Result)
	}
	if attempt["x"] != 1 || attempt["z"] != 1 || attempt["y"] != 2 {
		t.Fatalf("attempts = %v", attempt)
	}
}

func TestRetryWithNothingFailedIsInstantSuccess(t *testing.T) {
	c := simclock.New(7)
	s := NewServer(c, 4)
	s.CreateJob(&Job{
		Name:   "green",
		Script: constScript(Success, simclock.Minute),
		Axes:   []Axis{{Name: "a", Values: []string{"1", "2"}}},
	})
	p1, _ := s.Trigger("green", "t")
	c.Run()
	p2, err := s.RetryFailedCells("green", p1.Number, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Completed() || p2.Result != Success || len(p2.CellBuilds) != 0 {
		t.Fatalf("no-op retry: %+v", p2)
	}
}

func TestFailedCellsErrors(t *testing.T) {
	c := simclock.New(8)
	s := NewServer(c, 1)
	s.CreateJob(&Job{Name: "j", Script: constScript(Success, simclock.Hour),
		Axes: []Axis{{Name: "a", Values: []string{"1"}}}})
	if _, err := s.FailedCells("ghost", 1); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := s.FailedCells("j", 99); err == nil {
		t.Fatal("unknown build accepted")
	}
	p, _ := s.Trigger("j", "t")
	c.RunUntil(simclock.Minute)
	if _, err := s.FailedCells("j", p.Number); err == nil {
		t.Fatal("running build accepted")
	}
}

func TestRetentionDropsOldCompletedBuilds(t *testing.T) {
	c := simclock.New(9)
	s := NewServer(c, 1)
	s.CreateJob(&Job{Name: "r", Script: constScript(Success, simclock.Minute), Retention: 5})
	for i := 0; i < 12; i++ {
		s.Trigger("r", "t")
		c.Run()
	}
	builds := s.Builds("r")
	if len(builds) > 5 {
		t.Fatalf("retained %d builds, want ≤5", len(builds))
	}
	// The newest build must always be retained.
	last := builds[len(builds)-1]
	if last.Number != 12 {
		t.Fatalf("latest retained = #%d", last.Number)
	}
}

func TestOnCompleteListener(t *testing.T) {
	c := simclock.New(10)
	s := NewServer(c, 4)
	s.CreateJob(&Job{Name: "l", Script: constScript(Unstable, simclock.Minute)})
	var got []*Build
	s.OnComplete(func(b *Build) { got = append(got, b) })
	s.Trigger("l", "t")
	c.Run()
	if len(got) != 1 || got[0].Result != Unstable {
		t.Fatalf("listener got %v", got)
	}
}

func TestOnCompleteFiresForParentToo(t *testing.T) {
	c := simclock.New(11)
	s := NewServer(c, 4)
	s.CreateJob(&Job{Name: "m", Script: constScript(Success, simclock.Minute),
		Axes: []Axis{{Name: "a", Values: []string{"1", "2"}}}})
	var parents, cells int
	s.OnComplete(func(b *Build) {
		if b.Cell == nil {
			parents++
		} else {
			cells++
		}
	})
	s.Trigger("m", "t")
	c.Run()
	if cells != 2 || parents != 1 {
		t.Fatalf("cells=%d parents=%d", cells, parents)
	}
}

func TestTokenAccessControl(t *testing.T) {
	c := simclock.New(12)
	s := NewServer(c, 1)
	s.CreateJob(&Job{Name: "manual", Script: constScript(Success, simclock.Minute)})
	if _, err := s.TriggerToken("manual", "bad-token"); err == nil {
		t.Fatal("invalid token accepted")
	}
	s.AddToken("s3cret", "lucas")
	b, err := s.TriggerToken("manual", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if b.Cause != "user lucas" {
		t.Fatalf("cause = %q", b.Cause)
	}
}

func TestResultStringAndWorse(t *testing.T) {
	if Success.String() != "SUCCESS" || Failure.String() != "FAILURE" ||
		Unstable.String() != "UNSTABLE" || Aborted.String() != "ABORTED" ||
		NotBuilt.String() != "NOT_BUILT" {
		t.Fatal("result strings")
	}
	if Result(42).String() != "Result(42)" {
		t.Fatal("unknown result string")
	}
	if worse(Success, Unstable) != Unstable {
		t.Fatal("worse(S,U)")
	}
	if worse(Failure, Unstable) != Failure {
		t.Fatal("worse(F,U)")
	}
	if worse(Success, Success) != Success {
		t.Fatal("worse(S,S)")
	}
}

func TestCellKeyDeterministic(t *testing.T) {
	a := cellKey(map[string]string{"b": "2", "a": "1"})
	if a != "a=1,b=2" {
		t.Fatalf("cellKey = %q", a)
	}
	if cellKey(nil) != "" {
		t.Fatal("nil cell key")
	}
}

func TestLastCompletedSkipsCells(t *testing.T) {
	c := simclock.New(13)
	s := NewServer(c, 4)
	s.CreateJob(&Job{Name: "m2", Script: constScript(Success, simclock.Minute),
		Axes: []Axis{{Name: "a", Values: []string{"1", "2"}}}})
	p, _ := s.Trigger("m2", "t")
	c.Run()
	last := s.LastCompleted("m2")
	if last == nil || last.Number != p.Number {
		t.Fatalf("LastCompleted = %+v, want parent #%d", last, p.Number)
	}
	if s.LastCompleted("ghost") != nil {
		t.Fatal("ghost job has builds")
	}
}
