package ci

// REST API in the style of Jenkins' JSON remote API. The external status
// page (internal/status) consumes these endpoints over real HTTP, exactly
// as the paper's status page does ("external status page that uses
// Jenkins' REST API", slide 18).

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// JobJSON is the wire form of a job summary.
type JobJSON struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Matrix      bool   `json:"matrix"`
	CellCount   int    `json:"cell_count"`
	LastBuild   int    `json:"last_build,omitempty"`
	LastResult  string `json:"last_result,omitempty"`
}

// BuildJSON is the wire form of one build.
type BuildJSON struct {
	Job           string            `json:"job"`
	Number        int               `json:"number"`
	Cause         string            `json:"cause,omitempty"`
	Cell          map[string]string `json:"cell,omitempty"`
	Parent        int               `json:"parent,omitempty"`
	CellBuilds    []int             `json:"cell_builds,omitempty"`
	Result        string            `json:"result"`
	Building      bool              `json:"building"`
	QueuedAtSec   float64           `json:"queued_at_sec"`
	StartedAtSec  float64           `json:"started_at_sec"`
	EndedAtSec    float64           `json:"ended_at_sec"`
	Log           []string          `json:"log,omitempty"`
	BugSignatures []string          `json:"bug_signatures,omitempty"`
}

// buildSnapshot renders a build's wire form under the server lock, so the
// REST API can serve builds the executor pool is still mutating.
func (s *Server) buildSnapshot(b *Build, withLog bool) BuildJSON {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return buildJSON(b, withLog)
}

func buildJSON(b *Build, withLog bool) BuildJSON {
	out := BuildJSON{
		Job:           b.Job,
		Number:        b.Number,
		Cause:         b.Cause,
		Cell:          b.Cell,
		Parent:        b.Parent,
		CellBuilds:    b.CellBuilds,
		Result:        b.Result.String(),
		Building:      !b.Completed(),
		QueuedAtSec:   b.QueuedAt.Seconds(),
		StartedAtSec:  b.StartedAt.Seconds(),
		EndedAtSec:    b.EndedAt.Seconds(),
		BugSignatures: b.BugSignatures,
	}
	if withLog {
		out.Log = b.Log
	}
	return out
}

// Handler returns the REST API as an http.Handler:
//
//	GET  /api/json                    → server summary (jobs, queue, executors)
//	GET  /job/{name}/api/json         → job detail + retained builds
//	GET  /job/{name}/{n}/api/json     → one build, with log
//	POST /job/{name}/build?token=T    → trigger (token access control)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/json", s.handleRoot)
	mux.HandleFunc("/job/", s.handleJob)
	return mux
}

// RootJSON is the wire form of the server summary endpoint.
type RootJSON struct {
	Jobs        []JobJSON `json:"jobs"`
	QueueLength int       `json:"queue_length"`
	Executors   int       `json:"executors"`
	Busy        int       `json:"busy_executors"`
	TotalBuilds int       `json:"total_builds"`
}

// methodNotAllowed rejects a request with 405 and the Allow header RFC 9110
// requires, so clients can discover the supported methods. Read endpoints
// accept only GET; the trigger endpoint only POST.
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
}

func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	out := RootJSON{
		QueueLength: s.QueueLength(),
		Executors:   s.Executors(),
		Busy:        s.BusyExecutors(),
		TotalBuilds: s.TotalBuilds(),
	}
	for _, name := range s.JobNames() {
		j := s.JobByName(name)
		jj := JobJSON{
			Name:        j.Name,
			Description: j.Description,
			Matrix:      j.IsMatrix(),
			CellCount:   j.CellCount(),
		}
		if last := s.LastCompleted(name); last != nil {
			jj.LastBuild = last.Number
			jj.LastResult = last.Result.String()
		}
		out.Jobs = append(out.Jobs, jj)
	}
	writeJSON(w, out)
}

// JobDetailJSON is the wire form of one job plus its retained builds.
type JobDetailJSON struct {
	JobJSON
	Builds []BuildJSON `json:"builds"`
}

// handleJob routes /job/... paths. Job names may themselves contain slashes
// ("disk/sol"), so the path is parsed from the END: the suffix decides the
// endpoint and everything before it is the job name.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/job/")
	switch {
	case strings.HasSuffix(rest, "/build"):
		name := strings.TrimSuffix(rest, "/build")
		if s.JobByName(name) == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		b, err := s.TriggerToken(name, r.URL.Query().Get("token"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		// Content-Type must precede the status line: header mutations
		// after WriteHeader are dropped by net/http.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, s.buildSnapshot(b, false))

	case strings.HasSuffix(rest, "/api/json"):
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		name := strings.TrimSuffix(rest, "/api/json")
		// Build detail when the last path segment is a number and the
		// prefix names a registered job.
		if slash := strings.LastIndexByte(name, '/'); slash > 0 {
			if n, err := strconv.Atoi(name[slash+1:]); err == nil {
				jobName := name[:slash]
				if s.JobByName(jobName) != nil {
					b := s.Build(jobName, n)
					if b == nil {
						http.NotFound(w, r)
						return
					}
					writeJSON(w, s.buildSnapshot(b, true))
					return
				}
			}
		}
		j := s.JobByName(name)
		if j == nil {
			http.NotFound(w, r)
			return
		}
		out := JobDetailJSON{JobJSON: JobJSON{
			Name:        j.Name,
			Description: j.Description,
			Matrix:      j.IsMatrix(),
			CellCount:   j.CellCount(),
		}}
		if last := s.LastCompleted(name); last != nil {
			out.LastBuild = last.Number
			out.LastResult = last.Result.String()
		}
		for _, b := range s.Builds(name) {
			out.Builds = append(out.Builds, s.buildSnapshot(b, false))
		}
		writeJSON(w, out)

	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort on a closed client
}
