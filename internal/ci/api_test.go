package ci

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/simclock"
)

func apiServer(t *testing.T) (*simclock.Clock, *Server, *httptest.Server) {
	t.Helper()
	c := simclock.New(20)
	s := NewServer(c, 4)
	s.CreateJob(&Job{Name: "smoke", Description: "basic check",
		Script: constScript(Success, 5*simclock.Minute)})
	s.CreateJob(&Job{Name: "envs", Script: constScript(Failure, simclock.Minute),
		Axes: []Axis{{Name: "image", Values: []string{"a", "b"}}}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return c, s, ts
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestAPIRoot(t *testing.T) {
	c, s, ts := apiServer(t)
	s.Trigger("smoke", "t")
	c.Run()

	var root RootJSON
	if code := getJSON(t, ts.URL+"/api/json", &root); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(root.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(root.Jobs))
	}
	if root.Jobs[0].Name != "smoke" || root.Jobs[0].LastResult != "SUCCESS" {
		t.Fatalf("job[0] = %+v", root.Jobs[0])
	}
	if !root.Jobs[1].Matrix || root.Jobs[1].CellCount != 2 {
		t.Fatalf("job[1] = %+v", root.Jobs[1])
	}
	if root.TotalBuilds != 1 {
		t.Fatalf("total = %d", root.TotalBuilds)
	}
}

func TestAPIJobDetail(t *testing.T) {
	c, s, ts := apiServer(t)
	s.Trigger("envs", "t")
	c.Run()

	var jd JobDetailJSON
	if code := getJSON(t, ts.URL+"/job/envs/api/json", &jd); code != 200 {
		t.Fatalf("status = %d", code)
	}
	// 1 parent + 2 cells.
	if len(jd.Builds) != 3 {
		t.Fatalf("builds = %d", len(jd.Builds))
	}
	if jd.LastResult != "FAILURE" {
		t.Fatalf("last result = %q", jd.LastResult)
	}
	cells := 0
	for _, b := range jd.Builds {
		if b.Cell != nil {
			cells++
			if b.Result != "FAILURE" {
				t.Fatalf("cell result = %q", b.Result)
			}
		}
	}
	if cells != 2 {
		t.Fatalf("cells = %d", cells)
	}
}

func TestAPIBuildDetailWithLog(t *testing.T) {
	c, s, ts := apiServer(t)
	b, _ := s.Trigger("smoke", "t")
	c.Run()

	var bj BuildJSON
	if code := getJSON(t, ts.URL+"/job/smoke/1/api/json", &bj); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if bj.Number != b.Number || bj.Result != "SUCCESS" || bj.Building {
		t.Fatalf("build = %+v", bj)
	}
	if len(bj.Log) == 0 {
		t.Fatal("log missing")
	}
	if bj.EndedAtSec-bj.StartedAtSec != 300 {
		t.Fatalf("duration = %v", bj.EndedAtSec-bj.StartedAtSec)
	}
}

func TestAPINotFound(t *testing.T) {
	_, _, ts := apiServer(t)
	var v struct{}
	if code := getJSON(t, ts.URL+"/job/ghost/api/json", &v); code != 404 {
		t.Fatalf("ghost job status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/job/smoke/99/api/json", &v); code != 404 {
		t.Fatalf("ghost build status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/job/smoke/abc/api/json", &v); code != 404 {
		t.Fatalf("bad number status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/job/smoke", &v); code != 404 {
		t.Fatalf("short path status = %d", code)
	}
}

func TestAPITriggerWithToken(t *testing.T) {
	c, s, ts := apiServer(t)
	s.AddToken("tok", "alice")

	resp, err := http.Post(ts.URL+"/job/smoke/build?token=tok", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	c.Run()
	if s.TotalBuilds() != 1 {
		t.Fatal("trigger did not build")
	}

	resp, _ = http.Post(ts.URL+"/job/smoke/build?token=wrong", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bad token status = %d", resp.StatusCode)
	}

	// GET on the build endpoint is rejected.
	resp, _ = http.Get(ts.URL + "/job/smoke/build?token=tok")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET trigger status = %d", resp.StatusCode)
	}
}

func TestAPIMethodNotAllowedOnRoot(t *testing.T) {
	_, _, ts := apiServer(t)
	resp, _ := http.Post(ts.URL+"/api/json", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow = %q, want GET", allow)
	}
}

// TestAPIMethodNotAllowedOnReads: every read endpoint must reject mutating
// methods with 405 and name the allowed method, never silently treat a
// PUT/DELETE/POST as a read.
func TestAPIMethodNotAllowedOnReads(t *testing.T) {
	_, _, ts := apiServer(t)
	paths := []string{
		"/api/json",
		"/job/smoke/api/json",
		"/job/smoke/1/api/json",
	}
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		for _, path := range paths {
			req, err := http.NewRequest(method, ts.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status = %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
				t.Fatalf("%s %s: Allow = %q, want GET", method, path, allow)
			}
		}
	}

	// The trigger endpoint allows POST only, and says so.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/job/smoke/build", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT build: status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("PUT build: Allow = %q, want POST", allow)
	}
}
