package ci

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/simclock"
)

// TestServerConcurrentStress hammers one Server from many OS goroutines —
// triggering builds, reading counters, listing jobs — then drains the
// whole backlog through the executor pool while pollers keep reading.
// Run with -race: this is the thread-safety contract of the server.
func TestServerConcurrentStress(t *testing.T) {
	c := simclock.New(99)
	s := NewServerWith(c, Options{NumExecutors: 8})
	const jobs = 16
	for i := 0; i < jobs; i++ {
		err := s.CreateJob(&Job{
			Name:   fmt.Sprintf("job-%d", i),
			Script: constScript(Success, 10*simclock.Minute),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.AddToken("tok", "stress")

	var triggered int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 64; k++ {
				name := fmt.Sprintf("job-%d", (g+k)%jobs)
				switch k % 4 {
				case 0:
					if _, err := s.Trigger(name, "stress"); err == nil {
						atomic.AddInt64(&triggered, 1)
					}
				case 1:
					_ = s.QueueLength() + s.BusyExecutors() + s.TotalBuilds()
					_ = s.Draining()
				case 2:
					_ = s.JobNames()
					if j := s.JobByName(name); j == nil {
						t.Error("job vanished")
						return
					}
				case 3:
					if _, err := s.TriggerToken(name, "tok"); err == nil {
						atomic.AddInt64(&triggered, 1)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Drain the backlog on the executor pool while outside goroutines keep
	// poking the server: one reads the mutex-guarded counters, one fetches
	// build JSON through the REST handler (snapshots of builds that may be
	// mid-flight), and one keeps triggering fresh builds mid-run.
	stop := make(chan struct{})
	var pokers sync.WaitGroup
	pokers.Add(2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	go func() {
		defer pokers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.QueueLength() + s.BusyExecutors() + s.TotalBuilds()
				resp, err := http.Get(ts.URL + "/job/job-0/api/json")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				runtime.Gosched()
			}
		}
	}()
	lateDone := make(chan struct{})
	go func() {
		defer pokers.Done()
		defer close(lateDone)
		for k := 0; k < 32; k++ {
			if _, err := s.Trigger(fmt.Sprintf("job-%d", k%jobs), "late"); err == nil {
				atomic.AddInt64(&triggered, 1)
			}
			runtime.Gosched()
		}
	}()
	// Keep running until the late triggers landed and everything drained.
	for {
		c.Run()
		select {
		case <-lateDone:
		default:
			runtime.Gosched()
			continue
		}
		if s.QueueLength() == 0 && s.BusyExecutors() == 0 && c.Pending() == 0 {
			break
		}
	}
	close(stop)
	pokers.Wait()

	if got := int64(s.TotalBuilds()); got != triggered {
		t.Fatalf("completed %d of %d triggered builds", got, triggered)
	}
	if s.QueueLength() != 0 || s.BusyExecutors() != 0 {
		t.Fatal("server not drained")
	}
	if g := c.Goroutines(); g != 0 {
		t.Fatalf("leaked %d executor goroutines", g)
	}
}
