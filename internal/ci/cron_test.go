package ci

import (
	"testing"

	"repro/internal/simclock"
)

func TestCronTriggersPeriodically(t *testing.T) {
	c := simclock.New(1)
	s := NewServer(c, 2)
	s.CreateJob(&Job{
		Name:   "nightly-ci",
		Script: constScript(Success, 10*simclock.Minute),
		Every:  simclock.Day,
	})
	c.RunUntil(3*simclock.Day + simclock.Hour)
	builds := s.Builds("nightly-ci")
	if len(builds) != 3 {
		t.Fatalf("cron builds = %d, want 3", len(builds))
	}
	for _, b := range builds {
		if b.Cause != "cron" {
			t.Fatalf("cause = %q", b.Cause)
		}
		if !b.Completed() || b.Result != Success {
			t.Fatalf("build #%d = %v", b.Number, b.Result)
		}
	}
}

func TestCronStopsWithDeleteJob(t *testing.T) {
	c := simclock.New(2)
	s := NewServer(c, 2)
	s.CreateJob(&Job{
		Name:   "short-lived",
		Script: constScript(Success, simclock.Minute),
		Every:  simclock.Hour,
	})
	c.RunUntil(2*simclock.Hour + simclock.Minute)
	if got := s.TotalBuilds(); got != 2 {
		t.Fatalf("builds before delete = %d", got)
	}
	if err := s.DeleteJob("short-lived"); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(10 * simclock.Hour)
	if got := s.TotalBuilds(); got != 2 {
		t.Fatalf("cron kept firing after delete: %d builds", got)
	}
	if s.JobByName("short-lived") != nil {
		t.Fatal("job still registered")
	}
	if err := s.DeleteJob("short-lived"); err == nil {
		t.Fatal("double delete accepted")
	}
	if got := len(s.JobNames()); got != 0 {
		t.Fatalf("job order = %d entries", got)
	}
}

func TestNonCronJobNeverSelfTriggers(t *testing.T) {
	c := simclock.New(3)
	s := NewServer(c, 2)
	s.CreateJob(&Job{Name: "manual", Script: constScript(Success, simclock.Minute)})
	c.RunUntil(simclock.Week)
	if s.TotalBuilds() != 0 {
		t.Fatalf("manual job built itself %d times", s.TotalBuilds())
	}
}

func TestCronMatrixJob(t *testing.T) {
	c := simclock.New(4)
	s := NewServer(c, 8)
	s.CreateJob(&Job{
		Name:   "matrix-cron",
		Script: constScript(Success, simclock.Minute),
		Axes:   []Axis{{Name: "a", Values: []string{"1", "2"}}},
		Every:  simclock.Day,
	})
	c.RunUntil(simclock.Day + simclock.Hour)
	// One parent + two cells.
	if got := len(s.Builds("matrix-cron")); got != 3 {
		t.Fatalf("builds = %d, want 3", got)
	}
	if last := s.LastCompleted("matrix-cron"); last == nil || last.Result != Success {
		t.Fatalf("matrix cron parent = %+v", last)
	}
}
