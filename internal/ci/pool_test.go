package ci

import (
	"fmt"
	"testing"

	"repro/internal/simclock"
)

// window is a build's occupancy interval on the simulated clock.
type window struct {
	start, end simclock.Time
}

// maxOverlap returns the maximum number of windows covering one instant.
func maxOverlap(ws []window) int {
	best := 0
	for _, w := range ws {
		n := 0
		for _, o := range ws {
			if o.start < w.end && w.start < o.end {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	return best
}

func completedWindows(s *Server, jobs ...string) []window {
	var ws []window
	for _, j := range jobs {
		for _, b := range s.Builds(j) {
			if b.Completed() && len(b.CellBuilds) == 0 {
				ws = append(ws, window{b.StartedAt, b.EndedAt})
			}
		}
	}
	return ws
}

// TestConcurrentBuildWindowsOverlap is the headline property of the
// executor pool: with NumExecutors: 4, at least two builds run
// concurrently, observed as overlapping build windows on the sim clock.
func TestConcurrentBuildWindowsOverlap(t *testing.T) {
	c := simclock.New(21)
	s := NewServerWith(c, Options{NumExecutors: 4})
	var jobs []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("job-%d", i)
		jobs = append(jobs, name)
		if err := s.CreateJob(&Job{Name: name, Script: constScript(Success, simclock.Hour)}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Trigger(name, "test"); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	ws := completedWindows(s, jobs...)
	if len(ws) != 4 {
		t.Fatalf("completed builds = %d, want 4", len(ws))
	}
	if got := maxOverlap(ws); got < 2 {
		t.Fatalf("max overlapping build windows = %d, want ≥ 2 (windows: %v)", got, ws)
	}
	// Four independent one-hour builds on four executors all fit in one hour.
	if c.Now() != simclock.Hour {
		t.Fatalf("makespan = %v, want 1h", c.Now())
	}
}

// TestSameJobBuildsSerialize checks per-job serialization: three queued
// builds of one job never overlap, even with executors to spare.
func TestSameJobBuildsSerialize(t *testing.T) {
	c := simclock.New(22)
	s := NewServerWith(c, Options{NumExecutors: 4})
	if err := s.CreateJob(&Job{Name: "serial", Script: constScript(Success, simclock.Hour)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Trigger("serial", "test"); err != nil {
			t.Fatal(err)
		}
	}
	c.RunUntil(simclock.Minute)
	if s.BusyExecutors() != 1 {
		t.Fatalf("busy = %d, want 1 (same-job builds must not overlap)", s.BusyExecutors())
	}
	c.Run()
	if got := maxOverlap(completedWindows(s, "serial")); got != 1 {
		t.Fatalf("same-job overlap = %d, want 1", got)
	}
	if c.Now() != 3*simclock.Hour {
		t.Fatalf("makespan = %v, want 3h", c.Now())
	}
}

// TestMatrixCellsRunConcurrently: different cells of one matrix build are
// different configurations and spread across the pool, while re-runs of
// one cell serialize.
func TestMatrixCellsRunConcurrently(t *testing.T) {
	c := simclock.New(23)
	s := NewServerWith(c, Options{NumExecutors: 4})
	err := s.CreateJob(&Job{
		Name:   "matrix",
		Script: constScript(Success, simclock.Hour),
		Axes:   []Axis{{Name: "cluster", Values: []string{"a", "b", "c", "d"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	parent, _ := s.Trigger("matrix", "test")
	c.Run()
	if !parent.Completed() {
		t.Fatal("matrix parent incomplete")
	}
	ws := completedWindows(s, "matrix")
	if len(ws) != 4 {
		t.Fatalf("cells = %d", len(ws))
	}
	if got := maxOverlap(ws); got != 4 {
		t.Fatalf("cell overlap = %d, want 4", got)
	}
	if c.Now() != simclock.Hour {
		t.Fatalf("makespan = %v, want 1h", c.Now())
	}
}

// TestGracefulDrain: Drain stops cron and rejects new triggers but lets
// queued and running builds finish; the pool then winds down to zero
// goroutines.
func TestGracefulDrain(t *testing.T) {
	c := simclock.New(24)
	s := NewServerWith(c, Options{NumExecutors: 2})
	s.CreateJob(&Job{Name: "cronjob", Script: constScript(Success, simclock.Minute), Every: simclock.Hour})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("work-%d", i)
		s.CreateJob(&Job{Name: name, Script: constScript(Success, simclock.Hour)})
		if _, err := s.Trigger(name, "test"); err != nil {
			t.Fatal(err)
		}
	}
	// Let the first two builds start, then drain mid-flight.
	c.RunUntil(simclock.Minute)
	if s.BusyExecutors() != 2 || s.QueueLength() != 1 {
		t.Fatalf("busy=%d queue=%d before drain", s.BusyExecutors(), s.QueueLength())
	}
	s.Drain()
	if !s.Draining() {
		t.Fatal("not draining")
	}
	if s.Drained() {
		t.Fatal("drained with builds in flight")
	}
	if _, err := s.Trigger("work-0", "late"); err == nil {
		t.Fatal("trigger accepted while draining")
	}
	c.Run()
	if !s.Drained() {
		t.Fatalf("not drained: busy=%d queue=%d", s.BusyExecutors(), s.QueueLength())
	}
	// All three queued builds finished; the cron job never fired (drained
	// before its first period elapsed) and stays off forever.
	if got := s.TotalBuilds(); got != 3 {
		t.Fatalf("completed builds = %d, want 3", got)
	}
	c.RunFor(simclock.Day)
	if got := s.TotalBuilds(); got != 3 {
		t.Fatalf("cron fired after drain: %d builds", got)
	}
	if g := c.Goroutines(); g != 0 {
		t.Fatalf("executor goroutines leaked: %d", g)
	}
	// Drain is idempotent.
	s.Drain()
	if !s.Drained() {
		t.Fatal("second drain broke state")
	}
}

// TestPoolShrinksToZeroWhenIdle: between bursts of work no executor
// goroutine stays parked.
func TestPoolShrinksToZeroWhenIdle(t *testing.T) {
	c := simclock.New(25)
	s := NewServerWith(c, Options{NumExecutors: 8})
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("burst-%d", i)
		s.CreateJob(&Job{Name: name, Script: constScript(Success, simclock.Minute)})
		s.Trigger(name, "test")
	}
	c.Run()
	if g := c.Goroutines(); g != 0 {
		t.Fatalf("idle pool kept %d goroutines", g)
	}
	// A second burst works fine after the pool shrank.
	for i := 0; i < 4; i++ {
		s.Trigger(fmt.Sprintf("burst-%d", i), "again")
	}
	c.Run()
	if s.TotalBuilds() != 8 {
		t.Fatalf("builds = %d", s.TotalBuilds())
	}
	if g := c.Goroutines(); g != 0 {
		t.Fatalf("idle pool kept %d goroutines after second burst", g)
	}
}

// TestBuildsStartAtTriggerInstant: queueing latency is zero when an
// executor is free — the build window starts at the trigger time.
func TestBuildsStartAtTriggerInstant(t *testing.T) {
	c := simclock.New(26)
	s := NewServerWith(c, Options{NumExecutors: 1})
	s.CreateJob(&Job{Name: "j", Script: constScript(Success, simclock.Minute)})
	c.RunUntil(simclock.Hour)
	b, _ := s.Trigger("j", "test")
	c.Run()
	if b.QueuedAt != simclock.Hour || b.StartedAt != simclock.Hour {
		t.Fatalf("queued=%v started=%v, want both 1h", b.QueuedAt, b.StartedAt)
	}
	if b.EndedAt != simclock.Hour+simclock.Minute {
		t.Fatalf("ended=%v", b.EndedAt)
	}
}
