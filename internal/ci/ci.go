// Package ci implements the automation server at the heart of the paper's
// framework — a Jenkins equivalent ("cron on steroids", slide 15) with the
// two plugins the paper relies on:
//
//   - Matrix Project: a job is a matrix of options (test_environments:
//     14 images × 32 clusters = 448 configurations);
//   - Matrix Reloaded: re-run only a subset (the failed cells) of a matrix
//     build.
//
// It also provides what slide 20 lists as the reasons Jenkins was worth
// keeping: a clean execution environment per build (fresh BuildContext), a
// queue with a bounded executor pool to control overloading, token-based
// access control for manually triggered builds, and long-term storage of
// results history and logs (per-job retention), all exposed over a REST API
// (api.go) that the external status page consumes.
package ci

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
)

// Result is a build verdict, matching Jenkins semantics. Unstable is the
// interesting one: the paper marks a build unstable when its testbed job
// could not be scheduled immediately (slide 17) — the test neither passed
// nor failed.
type Result int

const (
	// NotBuilt means the build has not completed (queued or running).
	NotBuilt Result = iota
	// Success means the test passed.
	Success
	// Unstable means the test could not run (e.g. resources unavailable).
	Unstable
	// Failure means the test ran and found a problem.
	Failure
	// Aborted means the build was killed.
	Aborted
)

func (r Result) String() string {
	switch r {
	case NotBuilt:
		return "NOT_BUILT"
	case Success:
		return "SUCCESS"
	case Unstable:
		return "UNSTABLE"
	case Failure:
		return "FAILURE"
	case Aborted:
		return "ABORTED"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// worse returns the more severe of two results (for matrix parent rollup).
func worse(a, b Result) Result {
	rank := func(r Result) int {
		switch r {
		case Success:
			return 0
		case NotBuilt:
			return 1
		case Unstable:
			return 2
		case Aborted:
			return 3
		case Failure:
			return 4
		}
		return 5
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// Outcome is what a build script reports back.
type Outcome struct {
	Result   Result
	Duration simclock.Time // how long the build occupies its executor
	Log      []string
	// BugSignatures identify the problems found; internal/core files
	// deduplicated bug reports from them.
	BugSignatures []string
}

// BuildContext is the clean execution environment handed to a script.
type BuildContext struct {
	Clock *simclock.Clock
	Job   string
	Cell  map[string]string // axis values for matrix cells, nil otherwise

	log []string
}

// Logf appends to the build log.
func (bc *BuildContext) Logf(format string, args ...any) {
	bc.log = append(bc.log, fmt.Sprintf(format, args...))
}

// Axis returns the cell's value for an axis ("" when absent).
func (bc *BuildContext) Axis(name string) string { return bc.Cell[name] }

// Script is a build's payload. It runs at the build's start instant and
// returns the outcome, including how much simulated time the build takes.
type Script func(bc *BuildContext) Outcome

// Axis is one dimension of a matrix job.
type Axis struct {
	Name   string
	Values []string
}

// Job is a configured job.
type Job struct {
	Name        string
	Description string
	Script      Script
	Axes        []Axis // empty for simple jobs
	Retention   int    // completed builds kept per job (0 = DefaultRetention)

	// Every enables Jenkins' native time-based scheduling ("cron on
	// steroids", slide 15): the server triggers the job at this period.
	// The paper's test jobs do NOT use it — their external scheduler
	// replaces it — but plain CI/CD jobs (slide 20) do.
	Every simclock.Time

	nextNumber int
	builds     []*Build
	cron       *simclock.Ticker
}

// DefaultRetention is the per-job build history size.
const DefaultRetention = 200

// IsMatrix reports whether the job expands into cells.
func (j *Job) IsMatrix() bool { return len(j.Axes) > 0 }

// CellCount returns the number of matrix cells (1 for simple jobs).
func (j *Job) CellCount() int {
	n := 1
	for _, a := range j.Axes {
		n *= len(a.Values)
	}
	return n
}

// Build is one execution (or one matrix cell, or a matrix parent).
type Build struct {
	Job    string
	Number int
	Cause  string            // what triggered it (scheduler, cron, user)
	Cell   map[string]string // axis values; nil for simple/parent builds

	// Matrix linkage.
	Parent     int   // parent build number (0 = not a cell)
	CellBuilds []int // children numbers (parent builds only)

	Result        Result
	QueuedAt      simclock.Time
	StartedAt     simclock.Time
	EndedAt       simclock.Time
	Log           []string
	BugSignatures []string

	completed bool
}

// Completed reports whether the build has finished.
func (b *Build) Completed() bool { return b.completed }

// CellKey renders the cell coordinates as a stable string
// ("cluster=sol,image=jessie-x64-min"), or "" for non-cell builds.
func (b *Build) CellKey() string { return cellKey(b.Cell) }

func cellKey(cell map[string]string) string {
	if len(cell) == 0 {
		return ""
	}
	keys := make([]string, 0, len(cell))
	for k := range cell {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + cell[k]
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "," + p
	}
	return s
}

// Server is the automation server.
//
// Builds execute on an *executor pool*: up to NumExecutors worker
// goroutines (simulation goroutines, see simclock.Go) pull queued builds
// off the work queue and occupy an executor for the build's simulated
// duration. Builds of the same job — same matrix cell for matrix jobs —
// never run concurrently (Jenkins' default "one build at a time per
// configuration"); builds of different jobs, or different cells of one
// matrix build, genuinely overlap in simulated time.
//
// All server state is mutex-protected, so the REST API and outside
// goroutines can query (and trigger) concurrently with a running
// simulation.
type Server struct {
	mu sync.RWMutex

	clock     *simclock.Clock
	executors int
	running   int // builds currently occupying an executor
	workers   int // live worker goroutines (pool shrinks to zero when idle)

	jobs     map[string]*Job
	jobOrder []string
	queue    []*pending
	// activeKeys marks serialization keys (job name, or job+cell for
	// matrix cells) with a build currently running.
	activeKeys map[string]bool
	// pumpScheduled coalesces the start-workers event: many enqueues at one
	// instant produce a single pump.
	pumpScheduled bool
	// draining: the server no longer accepts triggers; queued and running
	// builds finish, then the pool winds down (graceful drain).
	draining bool

	// tokens implements the "access control for users to trigger jobs
	// manually" benefit (slide 20): token → user name.
	tokens map[string]string

	// completion listeners (status page, bug filing in internal/core).
	onComplete []func(*Build)

	builtCount int
}

type pending struct {
	build  *Build
	script Script
}

// Options configures a Server.
type Options struct {
	// NumExecutors is the size of the executor pool: the maximum number of
	// builds running concurrently. Values below 1 mean 1.
	NumExecutors int
}

// NewServer creates a server with the given executor count.
func NewServer(clock *simclock.Clock, executors int) *Server {
	return NewServerWith(clock, Options{NumExecutors: executors})
}

// NewServerWith creates a server from Options.
func NewServerWith(clock *simclock.Clock, o Options) *Server {
	if o.NumExecutors < 1 {
		o.NumExecutors = 1
	}
	return &Server{
		clock:      clock,
		executors:  o.NumExecutors,
		jobs:       map[string]*Job{},
		activeKeys: map[string]bool{},
		tokens:     map[string]string{},
	}
}

// AddToken registers an API token for a user.
func (s *Server) AddToken(token, user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[token] = user
}

// authenticate resolves a token to a user name.
func (s *Server) authenticate(token string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.tokens[token]
	return u, ok
}

// OnComplete registers a listener called whenever any build completes.
// Listeners run on the executor goroutine that finished the build, with no
// server lock held; the simulation's run token serializes them.
func (s *Server) OnComplete(fn func(*Build)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onComplete = append(s.onComplete, fn)
}

// CreateJob registers a job. Re-registering a name is an error.
func (s *Server) CreateJob(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.Name == "" {
		return fmt.Errorf("ci: job needs a name")
	}
	if _, dup := s.jobs[j.Name]; dup {
		return fmt.Errorf("ci: job %q already exists", j.Name)
	}
	if j.Script == nil {
		return fmt.Errorf("ci: job %q has no script", j.Name)
	}
	if j.Retention <= 0 {
		j.Retention = DefaultRetention
	}
	s.jobs[j.Name] = j
	s.jobOrder = append(s.jobOrder, j.Name)
	if j.Every > 0 {
		name := j.Name
		j.cron = s.clock.Every(j.Every, func() {
			s.Trigger(name, "cron") //nolint:errcheck // job exists by construction
		})
	}
	return nil
}

// DeleteJob unregisters a job, stopping its cron trigger. History is
// discarded (Jenkins keeps it on disk; we drop it with the job).
func (s *Server) DeleteJob(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[name]
	if j == nil {
		return fmt.Errorf("ci: unknown job %q", name)
	}
	if j.cron != nil {
		j.cron.Stop()
	}
	delete(s.jobs, name)
	for i, n := range s.jobOrder {
		if n == name {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
	return nil
}

// JobNames returns registered job names in creation order.
func (s *Server) JobNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.jobOrder...)
}

// JobByName returns a job, or nil.
func (s *Server) JobByName(name string) *Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[name]
}

// Executors returns the executor pool size.
func (s *Server) Executors() int { return s.executors }

// BusyExecutors returns how many executors are currently running builds.
func (s *Server) BusyExecutors() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.running
}

// QueueLength returns the number of builds waiting for an executor.
func (s *Server) QueueLength() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.queue)
}

// TotalBuilds returns the number of completed builds since startup.
func (s *Server) TotalBuilds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.builtCount
}

// Trigger enqueues a build of a job. For matrix jobs the returned build is
// the parent; every cell is enqueued behind it.
func (s *Server) Trigger(jobName, cause string) (*Build, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, fmt.Errorf("ci: server is draining")
	}
	j := s.jobs[jobName]
	if j == nil {
		return nil, fmt.Errorf("ci: unknown job %q", jobName)
	}
	if j.IsMatrix() {
		return s.triggerMatrixLocked(j, cause, nil), nil
	}
	b := s.newBuildLocked(j, cause, nil, 0)
	s.enqueueLocked(b, j.Script)
	return b, nil
}

// TriggerToken is Trigger gated by the access-control token (the manual
// web-interface path).
func (s *Server) TriggerToken(jobName, token string) (*Build, error) {
	user, ok := s.authenticate(token)
	if !ok {
		return nil, fmt.Errorf("ci: invalid token")
	}
	return s.Trigger(jobName, "user "+user)
}

// newBuildLocked allocates the next build number for j.
func (s *Server) newBuildLocked(j *Job, cause string, cell map[string]string, parent int) *Build {
	j.nextNumber++
	b := &Build{
		Job:      j.Name,
		Number:   j.nextNumber,
		Cause:    cause,
		Cell:     cell,
		Parent:   parent,
		QueuedAt: s.clock.Now(),
	}
	j.builds = append(j.builds, b)
	// Retention: drop the oldest *completed* builds beyond the limit.
	if excess := len(j.builds) - j.Retention; excess > 0 {
		kept := j.builds[:0]
		for _, old := range j.builds {
			if excess > 0 && old.completed {
				excess--
				continue
			}
			kept = append(kept, old)
		}
		j.builds = kept
	}
	return b
}

// serialKey is the per-job serialization key of a build: plain builds
// serialize on the job name, matrix cells on job+cell so different cells
// of one matrix run in parallel while re-runs of the same configuration
// never overlap.
func serialKey(b *Build) string {
	if b.Cell == nil {
		return b.Job
	}
	return b.Job + "\x00" + b.CellKey()
}

func (s *Server) enqueueLocked(b *Build, script Script) {
	s.queue = append(s.queue, &pending{build: b, script: script})
	s.schedulePumpLocked()
}

// schedulePumpLocked arranges for the worker pool to grow at the current
// instant, from the event loop. Coalesced: any number of enqueues at one
// instant schedule a single pump event.
func (s *Server) schedulePumpLocked() {
	if s.pumpScheduled {
		return
	}
	s.pumpScheduled = true
	s.clock.After(0, s.pump)
}

// pump spawns executor workers for dispatchable queued builds, up to the
// pool size. Runs on the event loop.
func (s *Server) pump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pumpScheduled = false
	s.spawnWorkersLocked()
}

// spawnWorkersLocked grows the pool to cover dispatchable work: one worker
// per queued build whose serialization key is free, capped at NumExecutors.
// Idle workers exit on their own, so the pool always shrinks back to zero.
func (s *Server) spawnWorkersLocked() {
	dispatchable := 0
	claimed := map[string]bool{}
	for _, p := range s.queue {
		key := serialKey(p.build)
		if s.activeKeys[key] || claimed[key] {
			continue
		}
		claimed[key] = true
		dispatchable++
	}
	for s.workers < s.executors && dispatchable > 0 {
		s.workers++
		dispatchable--
		s.clock.Go(s.worker)
	}
}

// dequeueLocked pops the first queued build whose serialization key is not
// currently running, or nil.
func (s *Server) dequeueLocked() *pending {
	for i, p := range s.queue {
		if s.activeKeys[serialKey(p.build)] {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		return p
	}
	return nil
}

// worker is one executor: it pulls builds off the queue and runs each for
// its simulated duration. When no dispatchable work remains the worker
// exits — completions and enqueues re-grow the pool as needed.
func (s *Server) worker() {
	s.mu.Lock()
	for {
		p := s.dequeueLocked()
		if p == nil {
			s.workers--
			s.mu.Unlock()
			return
		}
		b := p.build
		key := serialKey(b)
		s.activeKeys[key] = true
		s.running++
		b.StartedAt = s.clock.Now()
		s.mu.Unlock()

		// The build script runs at the start instant; the executor then
		// stays occupied for the duration the script reports.
		bc := &BuildContext{Clock: s.clock, Job: b.Job, Cell: b.Cell}
		out := p.script(bc)
		log := append(bc.log, out.Log...)
		dur := out.Duration
		if dur < 0 {
			dur = 0
		}
		s.clock.Sleep(dur)

		s.completeBuild(b, out, log, key)
		s.mu.Lock()
	}
}

func (s *Server) completeBuild(b *Build, out Outcome, log []string, key string) {
	s.mu.Lock()
	b.Log = log
	b.Result = out.Result
	b.BugSignatures = out.BugSignatures
	b.EndedAt = s.clock.Now()
	b.completed = true
	delete(s.activeKeys, key)
	s.running--
	s.builtCount++
	var parentDone *Build
	if b.Parent != 0 {
		parentDone = s.maybeCompleteParentLocked(b)
	}
	listeners := s.onComplete
	s.mu.Unlock()

	for _, fn := range listeners {
		fn(b)
		if parentDone != nil {
			fn(parentDone)
		}
	}
}

// Drain puts the server into graceful shutdown: cron triggers stop, new
// triggers are rejected, and queued plus running builds are allowed to
// finish. Drive the clock until Drained reports true to complete the
// drain.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	for _, name := range s.jobOrder {
		if j := s.jobs[name]; j.cron != nil {
			j.cron.Stop()
			j.cron = nil
		}
	}
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drained reports whether a drain has completed: no queued builds, no
// running builds, and every executor wound down.
func (s *Server) Drained() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining && len(s.queue) == 0 && s.running == 0 && s.workers == 0
}

// Build returns one build of a job by number, or nil.
func (s *Server) Build(jobName string, number int) *Build {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil
	}
	for _, b := range j.builds {
		if b.Number == number {
			return b
		}
	}
	return nil
}

// Builds returns the retained builds of a job, oldest first.
func (s *Server) Builds(jobName string) []*Build {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil
	}
	return append([]*Build(nil), j.builds...)
}

// LastCompleted returns a job's most recent completed top-level build
// (matrix parents count, cells do not), or nil.
func (s *Server) LastCompleted(jobName string) *Build {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil
	}
	for i := len(j.builds) - 1; i >= 0; i-- {
		b := j.builds[i]
		if b.completed && b.Parent == 0 {
			return b
		}
	}
	return nil
}
