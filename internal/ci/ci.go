// Package ci implements the automation server at the heart of the paper's
// framework — a Jenkins equivalent ("cron on steroids", slide 15) with the
// two plugins the paper relies on:
//
//   - Matrix Project: a job is a matrix of options (test_environments:
//     14 images × 32 clusters = 448 configurations);
//   - Matrix Reloaded: re-run only a subset (the failed cells) of a matrix
//     build.
//
// It also provides what slide 20 lists as the reasons Jenkins was worth
// keeping: a clean execution environment per build (fresh BuildContext), a
// queue with a bounded executor pool to control overloading, token-based
// access control for manually triggered builds, and long-term storage of
// results history and logs (per-job retention), all exposed over a REST API
// (api.go) that the external status page consumes.
package ci

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/simclock"
)

// Result is a build verdict, matching Jenkins semantics. Unstable is the
// interesting one: the paper marks a build unstable when its testbed job
// could not be scheduled immediately (slide 17) — the test neither passed
// nor failed.
type Result int

const (
	// NotBuilt means the build has not completed (queued or running).
	NotBuilt Result = iota
	// Success means the test passed.
	Success
	// Unstable means the test could not run (e.g. resources unavailable).
	Unstable
	// Failure means the test ran and found a problem.
	Failure
	// Aborted means the build was killed.
	Aborted
)

func (r Result) String() string {
	switch r {
	case NotBuilt:
		return "NOT_BUILT"
	case Success:
		return "SUCCESS"
	case Unstable:
		return "UNSTABLE"
	case Failure:
		return "FAILURE"
	case Aborted:
		return "ABORTED"
	}
	return "Result(" + strconv.Itoa(int(r)) + ")"
}

// worse returns the more severe of two results (for matrix parent rollup).
func worse(a, b Result) Result {
	rank := func(r Result) int {
		switch r {
		case Success:
			return 0
		case NotBuilt:
			return 1
		case Unstable:
			return 2
		case Aborted:
			return 3
		case Failure:
			return 4
		}
		return 5
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// Outcome is what a build script reports back.
type Outcome struct {
	Result   Result
	Duration simclock.Time // how long the build occupies its executor
	Log      []string
	// BugSignatures identify the problems found; internal/core files
	// deduplicated bug reports from them.
	BugSignatures []string
}

// BuildContext is the clean execution environment handed to a script.
// Contexts are pooled: a script must not retain its BuildContext (or the
// slices reachable from it) after returning.
type BuildContext struct {
	Clock *simclock.Clock
	Job   string
	Cell  map[string]string // axis values for matrix cells, nil otherwise

	// Level-gated bounded log ring. When the server discards build logs,
	// logOn is false and Logf returns before formatting — the call is then
	// effectively free (the variadic slice stays on the caller's stack).
	// When logs are kept, at most maxLines lines are retained (a ring of
	// the most recent); the line storage is reused across builds via the
	// context pool.
	logOn    bool
	maxLines int
	log      []string
	logHead  int // next overwrite position once the ring wrapped
	wrapped  bool
}

var bcPool = sync.Pool{New: func() any { return new(BuildContext) }}

// Logf appends to the build log. Near-free when the server does not retain
// build logs.
func (bc *BuildContext) Logf(format string, args ...any) {
	if !bc.logOn {
		return
	}
	bc.addLine(fmt.Sprintf(format, args...))
}

// LogsRetained reports whether the server keeps this build's log — scripts
// use it to skip building expensive log lines of their own.
func (bc *BuildContext) LogsRetained() bool { return bc.logOn }

func (bc *BuildContext) addLine(line string) {
	if bc.maxLines > 0 && len(bc.log) >= bc.maxLines {
		bc.log[bc.logHead] = line
		bc.logHead++
		if bc.logHead == len(bc.log) {
			bc.logHead = 0
		}
		bc.wrapped = true
		return
	}
	bc.log = append(bc.log, line)
}

// takeLog returns the retained lines in chronological order, appending
// extra (a script outcome's log) and re-applying the bound; it returns a
// fresh slice because the context's own storage goes back to the pool.
func (bc *BuildContext) takeLog(extra []string) []string {
	total := len(bc.log) + len(extra)
	if total == 0 {
		return nil
	}
	out := make([]string, 0, total)
	if bc.wrapped {
		out = append(out, bc.log[bc.logHead:]...)
		out = append(out, bc.log[:bc.logHead]...)
	} else {
		out = append(out, bc.log...)
	}
	out = append(out, extra...)
	if bc.maxLines > 0 && len(out) > bc.maxLines {
		out = out[len(out)-bc.maxLines:] // keep the most recent lines
	}
	return out
}

// reset clears the context for pooling, keeping the log line storage.
func (bc *BuildContext) reset() {
	clear(bc.log)
	bc.log = bc.log[:0]
	bc.Clock, bc.Job, bc.Cell = nil, "", nil
	bc.logOn, bc.logHead, bc.wrapped = false, 0, false
}

// Axis returns the cell's value for an axis ("" when absent).
func (bc *BuildContext) Axis(name string) string { return bc.Cell[name] }

// Script is a build's payload. It runs at the build's start instant and
// returns the outcome, including how much simulated time the build takes.
type Script func(bc *BuildContext) Outcome

// Axis is one dimension of a matrix job.
type Axis struct {
	Name   string
	Values []string
}

// Job is a configured job.
type Job struct {
	Name        string
	Description string
	Script      Script
	Axes        []Axis // empty for simple jobs
	Retention   int    // completed builds kept per job (0 = DefaultRetention)

	// Every enables Jenkins' native time-based scheduling ("cron on
	// steroids", slide 15): the server triggers the job at this period.
	// The paper's test jobs do NOT use it — their external scheduler
	// replaces it — but plain CI/CD jobs (slide 20) do.
	Every simclock.Time

	nextNumber int

	// Retained builds live in a ring: ring[head] is the oldest, nbuilds
	// counts live entries. Retention is O(1) amortized — the oldest
	// completed build pops off the front — instead of the filter-copy of
	// the whole history the previous implementation paid on every trigger.
	ring    []*Build
	head    int
	nbuilds int
	// byNumber indexes retained builds for O(1) lookup (REST API, matrix
	// rollup).
	byNumber map[int]*Build

	// cells interns the matrix cell expansion: the axis maps, their sorted
	// cell-key strings and serialization keys are computed once per job and
	// shared by every build, instead of re-sorting a map per cell trigger.
	cells []matrixCell

	cron *simclock.Ticker
}

// matrixCell is one interned (axis values, key) combination of a matrix job.
type matrixCell struct {
	values map[string]string
	key    string // sorted "axis=value,..." form
	serial string // job + cell serialization key
}

// cellsLocked lazily expands and interns the matrix cells. Caller holds
// the server mutex.
func (j *Job) cellsLocked() []matrixCell {
	if j.cells == nil {
		maps := expandAxes(j.Axes)
		j.cells = make([]matrixCell, len(maps))
		for i, m := range maps {
			k := cellKey(m)
			j.cells[i] = matrixCell{values: m, key: k, serial: j.Name + "\x00" + k}
		}
	}
	return j.cells
}

// pushBuildLocked appends a build to the ring and evicts the oldest
// completed builds beyond the retention limit. Uncompleted builds are
// never evicted (they block eviction from the front until they finish —
// in steady state builds complete roughly in order, so the ring stays
// within a constant of Retention).
func (j *Job) pushBuildLocked(b *Build) {
	if j.byNumber == nil {
		j.byNumber = map[int]*Build{}
	}
	if j.nbuilds == len(j.ring) { // full (or nil): grow and realign
		grown := make([]*Build, max(8, 2*len(j.ring)))
		for i := 0; i < j.nbuilds; i++ {
			grown[i] = j.ring[(j.head+i)%len(j.ring)]
		}
		j.ring, j.head = grown, 0
	}
	j.ring[(j.head+j.nbuilds)%len(j.ring)] = b
	j.nbuilds++
	j.byNumber[b.Number] = b
	for j.nbuilds > j.Retention {
		oldest := j.ring[j.head]
		if !oldest.completed {
			break
		}
		delete(j.byNumber, oldest.Number)
		j.ring[j.head] = nil
		j.head = (j.head + 1) % len(j.ring)
		j.nbuilds--
	}
}

// buildAt returns the i-th oldest retained build.
func (j *Job) buildAt(i int) *Build { return j.ring[(j.head+i)%len(j.ring)] }

// DefaultRetention is the per-job build history size.
const DefaultRetention = 200

// DefaultMaxLogLines bounds the per-build log ring when logs are retained.
const DefaultMaxLogLines = 1000

// IsMatrix reports whether the job expands into cells.
func (j *Job) IsMatrix() bool { return len(j.Axes) > 0 }

// CellCount returns the number of matrix cells (1 for simple jobs).
func (j *Job) CellCount() int {
	n := 1
	for _, a := range j.Axes {
		n *= len(a.Values)
	}
	return n
}

// Build is one execution (or one matrix cell, or a matrix parent).
type Build struct {
	Job    string
	Number int
	Cause  string            // what triggered it (scheduler, cron, user)
	Cell   map[string]string // axis values; nil for simple/parent builds

	// Matrix linkage.
	Parent     int   // parent build number (0 = not a cell)
	CellBuilds []int // children numbers (parent builds only)

	Result        Result
	QueuedAt      simclock.Time
	StartedAt     simclock.Time
	EndedAt       simclock.Time
	Log           []string
	BugSignatures []string

	completed bool

	// key/serial cache the cell-key and serialization-key strings (interned
	// per job for matrix cells, so triggering a cell allocates neither).
	key    string
	serial string

	// Incremental matrix-parent rollup: instead of rescanning every cell
	// on each completion, the parent tracks how many cells are pending and
	// folds results/timestamps in as they arrive.
	cellsPending int
	aggResult    Result
	aggStarted   bool
}

// Completed reports whether the build has finished.
func (b *Build) Completed() bool { return b.completed }

// CellKey renders the cell coordinates as a stable string
// ("cluster=sol,image=jessie-x64-min"), or "" for non-cell builds.
func (b *Build) CellKey() string {
	if b.key != "" || b.Cell == nil {
		return b.key
	}
	return cellKey(b.Cell)
}

func cellKey(cell map[string]string) string {
	if len(cell) == 0 {
		return ""
	}
	keys := make([]string, 0, len(cell))
	for k := range cell {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + cell[k]
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "," + p
	}
	return s
}

// Server is the automation server.
//
// Builds execute on an *executor pool*: up to NumExecutors worker
// goroutines (simulation goroutines, see simclock.Go) pull queued builds
// off the work queue and occupy an executor for the build's simulated
// duration. Builds of the same job — same matrix cell for matrix jobs —
// never run concurrently (Jenkins' default "one build at a time per
// configuration"); builds of different jobs, or different cells of one
// matrix build, genuinely overlap in simulated time.
//
// All server state is mutex-protected, so the REST API and outside
// goroutines can query (and trigger) concurrently with a running
// simulation.
type Server struct {
	mu sync.RWMutex

	clock     *simclock.Clock
	executors int
	running   int // builds currently occupying an executor
	workers   int // live worker goroutines (pool shrinks to zero when idle)

	jobs     map[string]*Job
	jobOrder []string
	queue    []*pending
	// activeKeys marks serialization keys (job name, or job+cell for
	// matrix cells) with a build currently running.
	activeKeys map[string]bool
	// pumpScheduled coalesces the start-workers event: many enqueues at one
	// instant produce a single pump.
	pumpScheduled bool
	// draining: the server no longer accepts triggers; queued and running
	// builds finish, then the pool winds down (graceful drain).
	draining bool

	// tokens implements the "access control for users to trigger jobs
	// manually" benefit (slide 20): token → user name.
	tokens map[string]string

	// completion listeners (status page, bug filing in internal/core).
	onComplete []func(*Build)

	// Log policy (see Options).
	discardLogs bool
	maxLogLines int

	builtCount int
}

type pending struct {
	build  *Build
	script Script
}

// Options configures a Server.
type Options struct {
	// NumExecutors is the size of the executor pool: the maximum number of
	// builds running concurrently. Values below 1 mean 1.
	NumExecutors int

	// DiscardBuildLogs drops build logs entirely: BuildContext.Logf becomes
	// a no-op that never formats, and script outcome logs are not stored.
	// Long campaigns that never read logs run allocation-lean with this
	// set; the default keeps logs, like Jenkins.
	DiscardBuildLogs bool

	// MaxLogLines bounds the per-build log to a ring of the most recent
	// lines (0 = DefaultMaxLogLines, negative = unbounded).
	MaxLogLines int
}

// NewServer creates a server with the given executor count.
func NewServer(clock *simclock.Clock, executors int) *Server {
	return NewServerWith(clock, Options{NumExecutors: executors})
}

// NewServerWith creates a server from Options.
func NewServerWith(clock *simclock.Clock, o Options) *Server {
	if o.NumExecutors < 1 {
		o.NumExecutors = 1
	}
	if o.MaxLogLines == 0 {
		o.MaxLogLines = DefaultMaxLogLines
	} else if o.MaxLogLines < 0 {
		o.MaxLogLines = 0 // unbounded
	}
	return &Server{
		clock:       clock,
		executors:   o.NumExecutors,
		jobs:        map[string]*Job{},
		activeKeys:  map[string]bool{},
		tokens:      map[string]string{},
		discardLogs: o.DiscardBuildLogs,
		maxLogLines: o.MaxLogLines,
	}
}

// AddToken registers an API token for a user.
func (s *Server) AddToken(token, user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[token] = user
}

// authenticate resolves a token to a user name.
func (s *Server) authenticate(token string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.tokens[token]
	return u, ok
}

// OnComplete registers a listener called whenever any build completes.
// Listeners run on the executor goroutine that finished the build, with no
// server lock held; the simulation's run token serializes them.
func (s *Server) OnComplete(fn func(*Build)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onComplete = append(s.onComplete, fn)
}

// CreateJob registers a job. Re-registering a name is an error.
func (s *Server) CreateJob(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.Name == "" {
		return fmt.Errorf("ci: job needs a name")
	}
	if _, dup := s.jobs[j.Name]; dup {
		return fmt.Errorf("ci: job %q already exists", j.Name)
	}
	if j.Script == nil {
		return fmt.Errorf("ci: job %q has no script", j.Name)
	}
	if j.Retention <= 0 {
		j.Retention = DefaultRetention
	}
	s.jobs[j.Name] = j
	s.jobOrder = append(s.jobOrder, j.Name)
	if j.Every > 0 {
		name := j.Name
		j.cron = s.clock.Every(j.Every, func() {
			s.Trigger(name, "cron") //nolint:errcheck // job exists by construction
		})
	}
	return nil
}

// DeleteJob unregisters a job, stopping its cron trigger. History is
// discarded (Jenkins keeps it on disk; we drop it with the job).
func (s *Server) DeleteJob(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[name]
	if j == nil {
		return fmt.Errorf("ci: unknown job %q", name)
	}
	if j.cron != nil {
		j.cron.Stop()
	}
	delete(s.jobs, name)
	for i, n := range s.jobOrder {
		if n == name {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
	return nil
}

// JobNames returns registered job names in creation order.
func (s *Server) JobNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.jobOrder...)
}

// JobByName returns a job, or nil.
func (s *Server) JobByName(name string) *Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[name]
}

// Executors returns the executor pool size.
func (s *Server) Executors() int { return s.executors }

// BusyExecutors returns how many executors are currently running builds.
func (s *Server) BusyExecutors() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.running
}

// QueueLength returns the number of builds waiting for an executor.
func (s *Server) QueueLength() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.queue)
}

// TotalBuilds returns the number of completed builds since startup.
func (s *Server) TotalBuilds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.builtCount
}

// Trigger enqueues a build of a job. For matrix jobs the returned build is
// the parent; every cell is enqueued behind it.
func (s *Server) Trigger(jobName, cause string) (*Build, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, fmt.Errorf("ci: server is draining")
	}
	j := s.jobs[jobName]
	if j == nil {
		return nil, fmt.Errorf("ci: unknown job %q", jobName)
	}
	if j.IsMatrix() {
		return s.triggerMatrixLocked(j, cause, nil), nil
	}
	b := s.newBuildLocked(j, cause, nil, 0)
	s.enqueueLocked(b, j.Script)
	return b, nil
}

// TriggerToken is Trigger gated by the access-control token (the manual
// web-interface path).
func (s *Server) TriggerToken(jobName, token string) (*Build, error) {
	user, ok := s.authenticate(token)
	if !ok {
		return nil, fmt.Errorf("ci: invalid token")
	}
	return s.Trigger(jobName, "user "+user)
}

// newBuildLocked allocates the next build number for j. Retention is
// enforced by the ring push (O(1) amortized).
func (s *Server) newBuildLocked(j *Job, cause string, cell map[string]string, parent int) *Build {
	j.nextNumber++
	b := &Build{
		Job:      j.Name,
		Number:   j.nextNumber,
		Cause:    cause,
		Cell:     cell,
		Parent:   parent,
		QueuedAt: s.clock.Now(),
	}
	if cell == nil {
		b.serial = j.Name
	}
	j.pushBuildLocked(b)
	return b
}

// serialKey is the per-job serialization key of a build: plain builds
// serialize on the job name, matrix cells on job+cell so different cells
// of one matrix run in parallel while re-runs of the same configuration
// never overlap. Builds created by the server carry the key pre-computed
// (interned per matrix cell); the slow path covers hand-built Builds in
// tests.
func serialKey(b *Build) string {
	if b.serial != "" {
		return b.serial
	}
	if b.Cell == nil {
		return b.Job
	}
	return b.Job + "\x00" + b.CellKey()
}

func (s *Server) enqueueLocked(b *Build, script Script) {
	s.queue = append(s.queue, &pending{build: b, script: script})
	s.schedulePumpLocked()
}

// schedulePumpLocked arranges for the worker pool to grow at the current
// instant, from the event loop. Coalesced: any number of enqueues at one
// instant schedule a single pump event.
func (s *Server) schedulePumpLocked() {
	if s.pumpScheduled {
		return
	}
	s.pumpScheduled = true
	s.clock.After(0, s.pump)
}

// pump spawns executor workers for dispatchable queued builds, up to the
// pool size. Runs on the event loop.
func (s *Server) pump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pumpScheduled = false
	s.spawnWorkersLocked()
}

// spawnWorkersLocked grows the pool to cover dispatchable work: one worker
// per queued build whose serialization key is free, capped at NumExecutors.
// Idle workers exit on their own, so the pool always shrinks back to zero.
func (s *Server) spawnWorkersLocked() {
	dispatchable := 0
	claimed := map[string]bool{}
	for _, p := range s.queue {
		key := serialKey(p.build)
		if s.activeKeys[key] || claimed[key] {
			continue
		}
		claimed[key] = true
		dispatchable++
	}
	for s.workers < s.executors && dispatchable > 0 {
		s.workers++
		dispatchable--
		s.clock.Go(s.worker)
	}
}

// dequeueLocked pops the first queued build whose serialization key is not
// currently running, or nil.
func (s *Server) dequeueLocked() *pending {
	for i, p := range s.queue {
		if s.activeKeys[serialKey(p.build)] {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		return p
	}
	return nil
}

// worker is one executor: it pulls builds off the queue and runs each for
// its simulated duration. When no dispatchable work remains the worker
// exits — completions and enqueues re-grow the pool as needed.
func (s *Server) worker() {
	s.mu.Lock()
	for {
		p := s.dequeueLocked()
		if p == nil {
			s.workers--
			s.mu.Unlock()
			return
		}
		b := p.build
		key := serialKey(b)
		s.activeKeys[key] = true
		s.running++
		b.StartedAt = s.clock.Now()
		s.mu.Unlock()

		// The build script runs at the start instant; the executor then
		// stays occupied for the duration the script reports. The context
		// comes from a pool — its log storage is recycled build to build.
		bc := bcPool.Get().(*BuildContext)
		bc.Clock, bc.Job, bc.Cell = s.clock, b.Job, b.Cell
		bc.logOn, bc.maxLines = !s.discardLogs, s.maxLogLines
		out := p.script(bc)
		var log []string
		if !s.discardLogs {
			log = bc.takeLog(out.Log)
		}
		bc.reset()
		bcPool.Put(bc)
		dur := out.Duration
		if dur < 0 {
			dur = 0
		}
		s.clock.Sleep(dur)

		s.completeBuild(b, out, log, key)
		s.mu.Lock()
	}
}

func (s *Server) completeBuild(b *Build, out Outcome, log []string, key string) {
	s.mu.Lock()
	b.Log = log
	b.Result = out.Result
	b.BugSignatures = out.BugSignatures
	b.EndedAt = s.clock.Now()
	b.completed = true
	delete(s.activeKeys, key)
	s.running--
	s.builtCount++
	var parentDone *Build
	if b.Parent != 0 {
		parentDone = s.maybeCompleteParentLocked(b)
	}
	listeners := s.onComplete
	s.mu.Unlock()

	for _, fn := range listeners {
		fn(b)
		if parentDone != nil {
			fn(parentDone)
		}
	}
}

// Drain puts the server into graceful shutdown: cron triggers stop, new
// triggers are rejected, and queued plus running builds are allowed to
// finish. Drive the clock until Drained reports true to complete the
// drain.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	for _, name := range s.jobOrder {
		if j := s.jobs[name]; j.cron != nil {
			j.cron.Stop()
			j.cron = nil
		}
	}
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drained reports whether a drain has completed: no queued builds, no
// running builds, and every executor wound down.
func (s *Server) Drained() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining && len(s.queue) == 0 && s.running == 0 && s.workers == 0
}

// Build returns one build of a job by number, or nil.
func (s *Server) Build(jobName string, number int) *Build {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil
	}
	return j.byNumber[number]
}

// Builds returns the retained builds of a job, oldest first.
func (s *Server) Builds(jobName string) []*Build {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil
	}
	out := make([]*Build, j.nbuilds)
	for i := 0; i < j.nbuilds; i++ {
		out[i] = j.buildAt(i)
	}
	return out
}

// LastCompleted returns a job's most recent completed top-level build
// (matrix parents count, cells do not), or nil.
func (s *Server) LastCompleted(jobName string) *Build {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil
	}
	for i := j.nbuilds - 1; i >= 0; i-- {
		b := j.buildAt(i)
		if b.completed && b.Parent == 0 {
			return b
		}
	}
	return nil
}
