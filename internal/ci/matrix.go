package ci

// Matrix job support: expansion of axes into cell builds (Matrix Project
// plugin) and selective retry of failed cells (Matrix Reloaded plugin).

import "fmt"

// triggerMatrixLocked creates a parent build plus one cell build per axis
// combination. When onlyCells is non-nil, only cells whose key appears in
// it are built (Matrix Reloaded); the others are not re-run.
//
// Cell maps and their key strings are interned on the job (cellsLocked):
// every trigger shares the same read-only maps and strings, so expanding
// a 448-cell matrix allocates only the builds themselves.
func (s *Server) triggerMatrixLocked(j *Job, cause string, onlyCells map[string]bool) *Build {
	parent := s.newBuildLocked(j, cause, nil, 0)
	cells := j.cellsLocked()
	if onlyCells == nil {
		parent.CellBuilds = make([]int, 0, len(cells))
	}
	parent.aggResult = Success
	for i := range cells {
		mc := &cells[i]
		if onlyCells != nil && !onlyCells[mc.key] {
			continue
		}
		cb := s.newBuildLocked(j, cause, mc.values, parent.Number)
		cb.key, cb.serial = mc.key, mc.serial
		parent.CellBuilds = append(parent.CellBuilds, cb.Number)
		s.enqueueLocked(cb, j.Script)
	}
	parent.cellsPending = len(parent.CellBuilds)
	if parent.cellsPending == 0 {
		// Nothing to run (e.g. retry with no failed cells): complete the
		// parent immediately as a no-op success.
		parent.Result = Success
		parent.StartedAt = s.clock.Now()
		parent.EndedAt = s.clock.Now()
		parent.completed = true
		s.builtCount++
	}
	return parent
}

// maybeCompleteParentLocked rolls a finished cell up into its parent,
// completing the parent when it was the last one. The rollup is
// incremental — O(1) per cell instead of rescanning every sibling — with
// the parent accumulating the worst result and the start/end envelope as
// cells arrive. Returns the parent if it just completed, else nil. Caller
// holds s.mu.
func (s *Server) maybeCompleteParentLocked(cell *Build) *Build {
	j := s.jobs[cell.Job]
	if j == nil {
		return nil // job deleted mid-flight
	}
	parent := j.byNumber[cell.Parent]
	if parent == nil || parent.completed || parent.cellsPending == 0 {
		return nil // parent rotated out of retention; nothing to roll up
	}
	parent.aggResult = worse(parent.aggResult, cell.Result)
	if !parent.aggStarted || cell.StartedAt < parent.StartedAt {
		parent.StartedAt = cell.StartedAt
		parent.aggStarted = true
	}
	if cell.EndedAt > parent.EndedAt {
		parent.EndedAt = cell.EndedAt
	}
	parent.cellsPending--
	if parent.cellsPending > 0 {
		return nil
	}
	parent.Result = parent.aggResult
	parent.completed = true
	s.builtCount++
	return parent
}

// FailedCells returns the cell coordinates of a completed matrix build that
// did not succeed (both unstable and failed cells — the paper retries
// unstable configurations too, since they simply could not get resources).
func (s *Server) FailedCells(jobName string, parentNumber int) ([]map[string]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return nil, fmt.Errorf("ci: unknown job %q", jobName)
	}
	parent := j.byNumber[parentNumber]
	if parent == nil {
		return nil, fmt.Errorf("ci: no build %s#%d", jobName, parentNumber)
	}
	if !parent.completed {
		return nil, fmt.Errorf("ci: build %s#%d still running", jobName, parentNumber)
	}
	var out []map[string]string
	for _, num := range parent.CellBuilds {
		if b := j.byNumber[num]; b != nil && b.completed && b.Result != Success {
			out = append(out, b.Cell)
		}
	}
	return out, nil
}

// RetryFailedCells triggers a new matrix build re-running only the failed
// (non-success) cells of a previous build — Matrix Reloaded. The returned
// parent completes immediately with Success when nothing failed.
func (s *Server) RetryFailedCells(jobName string, parentNumber int, cause string) (*Build, error) {
	failed, err := s.FailedCells(jobName, parentNumber)
	if err != nil {
		return nil, err
	}
	only := make(map[string]bool, len(failed))
	for _, cell := range failed {
		only[cellKey(cell)] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[jobName]
	return s.triggerMatrixLocked(j, cause, only), nil
}

// expandAxes computes the cartesian product of axis values.
func expandAxes(axes []Axis) []map[string]string {
	out := []map[string]string{{}}
	for _, a := range axes {
		var next []map[string]string
		for _, base := range out {
			for _, v := range a.Values {
				cell := make(map[string]string, len(base)+1)
				for k, bv := range base {
					cell[k] = bv
				}
				cell[a.Name] = v
				next = append(next, cell)
			}
		}
		out = next
	}
	if len(axes) == 0 {
		return nil
	}
	return out
}

// CellResult returns the completed result of the cell with the given key in
// a parent build, or NotBuilt when absent.
func (s *Server) CellResult(jobName string, parentNumber int, key string) Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j := s.jobs[jobName]
	if j == nil {
		return NotBuilt
	}
	parent := j.byNumber[parentNumber]
	if parent == nil {
		return NotBuilt
	}
	for _, num := range parent.CellBuilds {
		if b := j.byNumber[num]; b != nil && b.CellKey() == key && b.completed {
			return b.Result
		}
	}
	return NotBuilt
}
