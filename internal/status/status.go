// Package status implements the external status page (slides 18–19).
//
// Jenkins can show per-test status across all clusters, but operators also
// need the transposed view — per site or per cluster, across all tests —
// and an historical perspective. The paper solves this with an external
// page that consumes Jenkins' REST API; this package does the same against
// internal/ci's API, over real HTTP.
//
// Three views are produced:
//
//   - Grid: test family × target (cluster or site), latest result;
//   - TargetReport: one column of the grid, for a single cluster/site;
//   - Trend: success rate over time buckets, the "85 % in February → 93 %
//     today" series of slide 23.
package status

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ci"
	"repro/internal/inproc"
)

// Client talks to the CI server's REST API.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
}

// DefaultTimeout bounds every request a NewClient makes. The status page
// sits in front of operators' browsers; without a client timeout a single
// stalled CI server would hang every page render forever.
const DefaultTimeout = 10 * time.Second

// NewClient returns a client for the API at baseURL (no trailing slash),
// with DefaultTimeout on every request. Use NewClientWith to supply a
// custom *http.Client.
func NewClient(baseURL string) *Client {
	return NewClientWith(baseURL, &http.Client{Timeout: DefaultTimeout})
}

// NewClientWith returns a client for the API at baseURL using hc for its
// requests (custom timeouts, transports, instrumentation).
func NewClientWith(baseURL string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), http: hc}
}

// NewLocalClient returns a client that dispatches requests in process,
// straight into the given CI API handler — no TCP listener, no loopback
// hop. The HTTP client-side code path (URLs, status handling, JSON
// decoding) is identical to the networked one.
func NewLocalClient(h http.Handler) *Client {
	return NewClientWith("http://ci.local", inproc.Client(h))
}

// get fetches and decodes one API response. Transport errors, transient
// 5xx responses and 429 (admission shed — the server's explicit "come back
// later", treated exactly like a 503) are retried within the client's
// RetryPolicy budget (no retries unless WithRetry was used), honoring any
// Retry-After hint; other statuses fail immediately.
func (c *Client) get(path string, v any) error {
	attempts := c.retry.attempts()
	var lastErr error
	var hint time.Duration
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.retry.backoff(try-1, hint)
		}
		resp, err := c.http.Get(c.base + path)
		if err != nil {
			lastErr = err
			hint = 0
			continue
		}
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(v)
			resp.Body.Close()
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		hint = retryAfterHint(resp)
		resp.Body.Close()
		lastErr = fmt.Errorf("status: GET %s: %s", path, resp.Status)
		if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			// Client errors are not transient; retrying cannot help.
			return lastErr
		}
	}
	return lastErr
}

// retryAfterHint parses a Retry-After header given in seconds (the only
// form the testbed's services emit). Absent or malformed headers hint 0.
func retryAfterHint(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Root fetches the server summary.
func (c *Client) Root() (ci.RootJSON, error) {
	var out ci.RootJSON
	err := c.get("/api/json", &out)
	return out, err
}

// JobDetail fetches one job with its retained builds.
func (c *Client) JobDetail(name string) (ci.JobDetailJSON, error) {
	var out ci.JobDetailJSON
	err := c.get("/job/"+name+"/api/json", &out)
	return out, err
}

// AllBuilds fetches every retained build of every job.
func (c *Client) AllBuilds() ([]ci.BuildJSON, error) {
	root, err := c.Root()
	if err != nil {
		return nil, err
	}
	var out []ci.BuildJSON
	for _, j := range root.Jobs {
		jd, err := c.JobDetail(j.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, jd.Builds...)
	}
	return out, nil
}

// CellStatus is one grid entry.
type CellStatus struct {
	Result string  // SUCCESS/UNSTABLE/FAILURE/ABORTED, "" when never run
	Build  int     // build number behind the verdict
	AtSec  float64 // sim-time (seconds) of the verdict
}

// Grid is the family × target status matrix.
type Grid struct {
	Families []string
	Targets  []string
	Cells    map[string]map[string]CellStatus // family → target → status
}

// Cell returns the status for (family, target).
func (g *Grid) Cell(family, target string) CellStatus {
	return g.Cells[family][target]
}

// splitJobName parses "family/target" simple-job names.
func splitJobName(name string) (family, target string, ok bool) {
	i := strings.IndexByte(name, '/')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// BuildGrid assembles the per-test × per-target matrix from the CI API.
// Simple jobs named "family/target" contribute their last completed result;
// the environments matrix job contributes one entry per cluster, the worst
// result across that cluster's images in the latest completed parent build.
func (c *Client) BuildGrid() (*Grid, error) {
	root, err := c.Root()
	if err != nil {
		return nil, err
	}
	g := &Grid{Cells: make(map[string]map[string]CellStatus, len(root.Jobs))}
	famSet := make(map[string]bool, len(root.Jobs))
	tgtSet := make(map[string]bool, 64)
	put := func(family, target string, st CellStatus) {
		if g.Cells[family] == nil {
			g.Cells[family] = map[string]CellStatus{}
		}
		g.Cells[family][target] = st
		famSet[family] = true
		tgtSet[target] = true
	}

	for _, j := range root.Jobs {
		if j.Matrix {
			if err := c.mergeMatrix(g, j.Name, put); err != nil {
				return nil, err
			}
			continue
		}
		family, target, ok := splitJobName(j.Name)
		if !ok || j.LastBuild == 0 {
			continue
		}
		jd, err := c.JobDetail(j.Name)
		if err != nil {
			return nil, err
		}
		for _, b := range jd.Builds {
			if b.Number == j.LastBuild {
				put(family, target, CellStatus{Result: b.Result, Build: b.Number, AtSec: b.EndedAtSec})
			}
		}
	}

	g.Families = make([]string, 0, len(famSet))
	for f := range famSet {
		g.Families = append(g.Families, f)
	}
	g.Targets = make([]string, 0, len(tgtSet))
	for t := range tgtSet {
		g.Targets = append(g.Targets, t)
	}
	sort.Strings(g.Families)
	sort.Strings(g.Targets)
	return g, nil
}

// mergeMatrix folds the latest completed parent build of a matrix job into
// the grid, one entry per distinct "cluster" axis value.
func (c *Client) mergeMatrix(g *Grid, jobName string, put func(string, string, CellStatus)) error {
	jd, err := c.JobDetail(jobName)
	if err != nil {
		return err
	}
	// Latest completed parent.
	var parent *ci.BuildJSON
	for i := range jd.Builds {
		b := &jd.Builds[i]
		if b.Cell == nil && !b.Building && len(b.CellBuilds) > 0 {
			if parent == nil || b.Number > parent.Number {
				parent = b
			}
		}
	}
	if parent == nil {
		return nil
	}
	inParent := make(map[int]bool, len(parent.CellBuilds))
	for _, n := range parent.CellBuilds {
		inParent[n] = true
	}
	worst := make(map[string]CellStatus, 32)
	for _, b := range jd.Builds {
		if b.Cell == nil || !inParent[b.Number] {
			continue
		}
		cluster := b.Cell["cluster"]
		if cluster == "" {
			continue
		}
		cur, seen := worst[cluster]
		if !seen || worseResult(b.Result, cur.Result) {
			worst[cluster] = CellStatus{Result: b.Result, Build: b.Number, AtSec: b.EndedAtSec}
		}
	}
	for cluster, st := range worst {
		put(jobName, cluster, st)
	}
	return nil
}

// worseResult reports whether a is more severe than b, using Jenkins
// severity ordering.
func worseResult(a, b string) bool {
	rank := map[string]int{"SUCCESS": 0, "NOT_BUILT": 1, "UNSTABLE": 2, "ABORTED": 3, "FAILURE": 4}
	return rank[a] > rank[b]
}

// TargetReport is the transposed view: all families for one target.
type TargetReport struct {
	Target string
	Rows   []TargetRow
}

// TargetRow is one family's status on the target.
type TargetRow struct {
	Family string
	Status CellStatus
}

// ReportFor extracts a target's column from the grid.
func (g *Grid) ReportFor(target string) TargetReport {
	rep := TargetReport{Target: target}
	for _, f := range g.Families {
		if st, ok := g.Cells[f][target]; ok {
			rep.Rows = append(rep.Rows, TargetRow{Family: f, Status: st})
		}
	}
	return rep
}

// OKRate returns the fraction of grid cells currently SUCCESS, over cells
// that have run at least once.
func (g *Grid) OKRate() float64 {
	total, ok := 0, 0
	for _, row := range g.Cells {
		for _, st := range row {
			if st.Result == "" {
				continue
			}
			total++
			if st.Result == "SUCCESS" {
				ok++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// TrendPoint is one bucket of the historical success-rate series. The JSON
// tags are its wire form on the gateway's /status/trend endpoint.
type TrendPoint struct {
	BucketStartSec float64 `json:"bucket_start_sec"`
	Total          int     `json:"total"` // completed verdicts (success+failure)
	Success        int     `json:"success"`
	Unstable       int     `json:"unstable"` // tracked separately: could-not-run is not a verdict
	Rate           float64 `json:"rate"`
}

// Trend buckets completed builds by EndedAt and computes the success rate
// per bucket, counting only builds that produced a verdict (SUCCESS or
// FAILURE); UNSTABLE builds could not run and are reported separately.
// Matrix parents are skipped (their cells are already counted).
func Trend(builds []ci.BuildJSON, bucketSec float64) []TrendPoint {
	if bucketSec <= 0 {
		return nil
	}
	// Value map: one accumulator struct per bucket lives inline in the map
	// instead of behind a per-bucket pointer allocation.
	type acc struct{ total, success, unstable int }
	buckets := make(map[int64]acc, 64)
	for _, b := range builds {
		if b.Building || len(b.CellBuilds) > 0 {
			continue
		}
		k := int64(b.EndedAtSec / bucketSec)
		a := buckets[k]
		switch b.Result {
		case "SUCCESS":
			a.total++
			a.success++
		case "FAILURE", "ABORTED":
			a.total++
		case "UNSTABLE":
			a.unstable++
		}
		buckets[k] = a
	}
	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]TrendPoint, 0, len(keys))
	for _, k := range keys {
		a := buckets[k]
		p := TrendPoint{
			BucketStartSec: float64(k) * bucketSec,
			Total:          a.total,
			Success:        a.success,
			Unstable:       a.unstable,
		}
		if a.total > 0 {
			p.Rate = float64(a.success) / float64(a.total)
		}
		out = append(out, p)
	}
	return out
}
