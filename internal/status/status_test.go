package status

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ci"
	"repro/internal/simclock"
)

// fixture: a CI server with two simple jobs and one matrix job, exposed
// over real HTTP.
func fixture(t *testing.T) (*simclock.Clock, *ci.Server, *Client) {
	t.Helper()
	c := simclock.New(50)
	s := ci.NewServer(c, 16)
	mk := func(res ci.Result) ci.Script {
		return func(bc *ci.BuildContext) ci.Outcome {
			return ci.Outcome{Result: res, Duration: simclock.Minute}
		}
	}
	s.CreateJob(&ci.Job{Name: "disk/sol", Script: mk(ci.Success)})
	s.CreateJob(&ci.Job{Name: "disk/helios", Script: mk(ci.Failure)})
	s.CreateJob(&ci.Job{Name: "kwapi/sophia", Script: mk(ci.Success)})
	s.CreateJob(&ci.Job{
		Name: "environments",
		Script: func(bc *ci.BuildContext) ci.Outcome {
			if bc.Axis("cluster") == "helios" && bc.Axis("image") == "img-b" {
				return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
			}
			return ci.Outcome{Result: ci.Success, Duration: simclock.Minute}
		},
		Axes: []ci.Axis{
			{Name: "image", Values: []string{"img-a", "img-b"}},
			{Name: "cluster", Values: []string{"sol", "helios"}},
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return c, s, NewClient(ts.URL)
}

func runAll(c *simclock.Clock, s *ci.Server) {
	for _, name := range s.JobNames() {
		s.Trigger(name, "test")
	}
	c.Run()
}

func TestBuildGrid(t *testing.T) {
	c, s, cl := fixture(t)
	runAll(c, s)
	g, err := cl.BuildGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Families) != 3 { // disk, kwapi, environments
		t.Fatalf("families = %v", g.Families)
	}
	if got := g.Cell("disk", "sol").Result; got != "SUCCESS" {
		t.Fatalf("disk/sol = %q", got)
	}
	if got := g.Cell("disk", "helios").Result; got != "FAILURE" {
		t.Fatalf("disk/helios = %q", got)
	}
	if got := g.Cell("kwapi", "sophia").Result; got != "SUCCESS" {
		t.Fatalf("kwapi/sophia = %q", got)
	}
	// Matrix contributions: worst across images per cluster.
	if got := g.Cell("environments", "sol").Result; got != "SUCCESS" {
		t.Fatalf("environments/sol = %q", got)
	}
	if got := g.Cell("environments", "helios").Result; got != "UNSTABLE" {
		t.Fatalf("environments/helios = %q", got)
	}
}

func TestGridOKRateAndReport(t *testing.T) {
	c, s, cl := fixture(t)
	runAll(c, s)
	g, _ := cl.BuildGrid()
	// 5 populated cells: 3 SUCCESS, 1 FAILURE, 1 UNSTABLE.
	if got := g.OKRate(); got < 0.59 || got > 0.61 {
		t.Fatalf("OK rate = %v, want 0.6", got)
	}
	rep := g.ReportFor("helios")
	if len(rep.Rows) != 2 {
		t.Fatalf("helios rows = %+v", rep.Rows)
	}
	for _, r := range rep.Rows {
		if r.Family == "disk" && r.Status.Result != "FAILURE" {
			t.Fatalf("helios disk = %q", r.Status.Result)
		}
	}
}

func TestGridBeforeAnyBuild(t *testing.T) {
	_, _, cl := fixture(t)
	g, err := cl.BuildGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Families) != 0 || g.OKRate() != 0 {
		t.Fatalf("pre-build grid: %+v", g)
	}
}

func TestTrend(t *testing.T) {
	builds := []ci.BuildJSON{
		{Result: "SUCCESS", EndedAtSec: 10},
		{Result: "FAILURE", EndedAtSec: 20},
		{Result: "UNSTABLE", EndedAtSec: 30},
		{Result: "SUCCESS", EndedAtSec: 100},
		{Result: "SUCCESS", EndedAtSec: 110},
		// matrix parent: skipped
		{Result: "FAILURE", EndedAtSec: 115, CellBuilds: []int{1, 2}},
		// still building: skipped
		{Result: "NOT_BUILT", EndedAtSec: 0, Building: true},
	}
	pts := Trend(builds, 60)
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Total != 2 || pts[0].Success != 1 || pts[0].Unstable != 1 || pts[0].Rate != 0.5 {
		t.Fatalf("bucket 0 = %+v", pts[0])
	}
	if pts[1].Total != 2 || pts[1].Rate != 1.0 {
		t.Fatalf("bucket 1 = %+v", pts[1])
	}
	if Trend(builds, 0) != nil {
		t.Fatal("zero bucket accepted")
	}
}

// TestTrendBucketBoundaries pins the bucketing rules at the edges: empty
// input, negative bucket size, a build landing exactly on a bucket
// boundary, single-sample buckets, and gaps (buckets in which nothing
// completed never appear).
func TestTrendBucketBoundaries(t *testing.T) {
	if pts := Trend(nil, 60); len(pts) != 0 {
		t.Fatalf("empty input produced %+v", pts)
	}
	if Trend([]ci.BuildJSON{{Result: "SUCCESS"}}, -5) != nil {
		t.Fatal("negative bucket accepted")
	}

	const day = 86400.0
	const week = 7 * day
	builds := []ci.BuildJSON{
		// Exactly on the epoch: first bucket.
		{Result: "SUCCESS", EndedAtSec: 0},
		// Last instant of week 0 vs exactly the week-1 boundary: the
		// boundary sample must fall in the NEXT bucket (half-open buckets).
		{Result: "FAILURE", EndedAtSec: week - 1},
		{Result: "SUCCESS", EndedAtSec: week},
		// A single-sample bucket far away; weeks 2..4 stay empty.
		{Result: "SUCCESS", EndedAtSec: 5*week + 12},
	}
	pts := Trend(builds, week)
	if len(pts) != 3 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].BucketStartSec != 0 || pts[0].Total != 2 || pts[0].Rate != 0.5 {
		t.Fatalf("week 0 = %+v", pts[0])
	}
	if pts[1].BucketStartSec != week || pts[1].Total != 1 || pts[1].Rate != 1.0 {
		t.Fatalf("week 1 = %+v", pts[1])
	}
	// The gap: the next point jumps straight to week 5.
	if pts[2].BucketStartSec != 5*week || pts[2].Total != 1 {
		t.Fatalf("week 5 = %+v", pts[2])
	}

	// A bucket holding only an UNSTABLE build has no verdicts: rate 0,
	// unstable counted separately.
	pts = Trend([]ci.BuildJSON{{Result: "UNSTABLE", EndedAtSec: 30}}, 60)
	if len(pts) != 1 || pts[0].Total != 0 || pts[0].Unstable != 1 || pts[0].Rate != 0 {
		t.Fatalf("unstable-only bucket = %+v", pts)
	}
}

// TestClientDefaultTimeout: NewClient must never hang forever on a stalled
// server — the page in front of operators inherits any hang.
func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://example.invalid")
	if c.http.Timeout != DefaultTimeout {
		t.Fatalf("NewClient timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
	custom := &http.Client{Timeout: time.Second}
	if cc := NewClientWith("http://example.invalid", custom); cc.http != custom {
		t.Fatal("NewClientWith ignored the supplied client")
	}
}

// TestLocalClient runs the whole grid assembly through the in-process
// transport — no listener involved.
func TestLocalClient(t *testing.T) {
	c, s, _ := fixture(t)
	runAll(c, s)
	cl := NewLocalClient(s.Handler())
	g, err := cl.BuildGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Families) == 0 {
		t.Fatal("in-process grid is empty")
	}
	builds, err := cl.AllBuilds()
	if err != nil || len(builds) == 0 {
		t.Fatalf("AllBuilds = %d builds, err %v", len(builds), err)
	}
}

func TestRenderHTML(t *testing.T) {
	c, s, cl := fixture(t)
	runAll(c, s)
	g, _ := cl.BuildGrid()
	var buf bytes.Buffer
	if err := g.RenderHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{"<table>", "disk", "helios", "class=\"FAILURE\"", "class=\"SUCCESS\"", "Overall OK rate"} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
}

func TestRenderText(t *testing.T) {
	c, s, cl := fixture(t)
	runAll(c, s)
	g, _ := cl.BuildGrid()
	var buf bytes.Buffer
	g.RenderText(&buf)
	txt := buf.String()
	if !strings.Contains(txt, "KO") || !strings.Contains(txt, "OK") {
		t.Fatalf("text grid:\n%s", txt)
	}
	if !strings.Contains(txt, "overall OK rate") {
		t.Fatal("missing rate line")
	}
}

func TestRenderTrend(t *testing.T) {
	var buf bytes.Buffer
	RenderTrend(&buf, []TrendPoint{
		{BucketStartSec: 0, Total: 10, Success: 9, Rate: 0.9},
		{BucketStartSec: 86400, Total: 10, Success: 10, Rate: 1.0},
	})
	out := buf.String()
	if !strings.Contains(out, "90.0% ok") || !strings.Contains(out, "day     1") {
		t.Fatalf("trend:\n%s", out)
	}
}

func TestClientErrors(t *testing.T) {
	cl := NewClient("http://127.0.0.1:1") // nothing listens
	if _, err := cl.Root(); err == nil {
		t.Fatal("no error from dead server")
	}
	_, _, live := fixture(t)
	if _, err := live.JobDetail("ghost"); err == nil {
		t.Fatal("ghost job accepted")
	}
}

func TestSplitJobName(t *testing.T) {
	if f, tg, ok := splitJobName("disk/sol"); !ok || f != "disk" || tg != "sol" {
		t.Fatal("split failed")
	}
	for _, bad := range []string{"plain", "/x", "x/"} {
		if _, _, ok := splitJobName(bad); ok {
			t.Fatalf("split accepted %q", bad)
		}
	}
}

func TestAllBuilds(t *testing.T) {
	c, s, cl := fixture(t)
	runAll(c, s)
	builds, err := cl.AllBuilds()
	if err != nil {
		t.Fatal(err)
	}
	// 3 simple + matrix parent + 4 cells = 8.
	if len(builds) != 8 {
		t.Fatalf("builds = %d", len(builds))
	}
}
