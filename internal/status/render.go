package status

// Rendering of the status page: an HTML page like the screenshot on
// slide 19, plus a plain-text table for terminals.

import (
	"fmt"
	"html/template"
	"io"
	"strings"
)

var pageTemplate = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><title>Testbed testing status</title>
<style>
body { font-family: sans-serif; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 2px 6px; font-size: 12px; }
.SUCCESS { background: #8f8; }
.FAILURE { background: #f88; }
.UNSTABLE { background: #ff8; }
.ABORTED { background: #ccc; }
.never { background: #eee; }
</style></head><body>
<h1>Testbed testing status</h1>
<p>Overall OK rate: {{printf "%.1f%%" .OKPercent}}</p>
<table>
<tr><th>test \ target</th>{{range .Targets}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr><th>{{.Family}}</th>{{range .Cells}}<td class="{{.Class}}">{{.Text}}</td>{{end}}</tr>
{{end}}</table>
</body></html>
`))

type pageCell struct {
	Class string
	Text  string
}

type pageRow struct {
	Family string
	Cells  []pageCell
}

type pageData struct {
	OKPercent float64
	Targets   []string
	Rows      []pageRow
}

// RenderHTML writes the grid as the status web page.
func (g *Grid) RenderHTML(w io.Writer) error {
	data := pageData{OKPercent: 100 * g.OKRate(), Targets: g.Targets}
	for _, f := range g.Families {
		row := pageRow{Family: f}
		for _, t := range g.Targets {
			st, ok := g.Cells[f][t]
			switch {
			case !ok || st.Result == "":
				row.Cells = append(row.Cells, pageCell{Class: "never", Text: "–"})
			default:
				row.Cells = append(row.Cells, pageCell{Class: st.Result, Text: shortResult(st.Result)})
			}
		}
		data.Rows = append(data.Rows, row)
	}
	return pageTemplate.Execute(w, data)
}

func shortResult(r string) string {
	switch r {
	case "SUCCESS":
		return "OK"
	case "FAILURE":
		return "KO"
	case "UNSTABLE":
		return "??"
	default:
		return r
	}
}

// RenderText writes the grid as a fixed-width terminal table.
func (g *Grid) RenderText(w io.Writer) {
	width := 4
	fam := 16
	fmt.Fprintf(w, "%-*s", fam, "")
	for _, t := range g.Targets {
		fmt.Fprintf(w, "%*s", width, truncate(t, width-1))
	}
	fmt.Fprintln(w)
	for _, f := range g.Families {
		fmt.Fprintf(w, "%-*s", fam, truncate(f, fam-1))
		for _, t := range g.Targets {
			st, ok := g.Cells[f][t]
			mark := "  ·"
			if ok && st.Result != "" {
				mark = " " + shortResult(st.Result)
			}
			fmt.Fprintf(w, "%*s", width, mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "overall OK rate: %.1f%%\n", 100*g.OKRate())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// RenderTrend writes the historical series as a text sparkline table.
func RenderTrend(w io.Writer, points []TrendPoint) {
	for _, p := range points {
		day := p.BucketStartSec / 86400
		bar := strings.Repeat("#", int(p.Rate*40))
		fmt.Fprintf(w, "day %5.0f  %4d runs  %5.1f%% ok  |%-40s|\n",
			day, p.Total, 100*p.Rate, bar)
	}
}
