package status

import (
	"math/rand"
	"time"
)

// RetryPolicy bounds how a Client rides through transient failures: a CI
// API answering 5xx during a rolling maintenance window is expected to
// recover, so the dashboard retries a few times with exponential backoff
// and seeded jitter instead of blanking the page.
//
// The policy deliberately owns its own sleeping: Sleep is an injected
// function so binaries can pass a real clock while in-process consumers
// (and tests) keep everything virtual and deterministic. A nil Sleep
// retries immediately — correct for inproc transports, where the upstream
// state only changes when the simulation is stepped anyway.
type RetryPolicy struct {
	// Attempts is the total request budget (first try included). Values
	// below 2 mean a single attempt, i.e. no retries.
	Attempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it.
	Backoff time.Duration
	// Jitter scales a random additive spread on top of each delay: the
	// delay is multiplied by (1 + Jitter·u) with u uniform in [0,1). Zero
	// disables jitter.
	Jitter float64
	// MaxDelay caps every backoff delay (after growth, jitter and any
	// Retry-After hint), keeping the schedule bounded however many attempts
	// the budget allows. Zero means uncapped.
	MaxDelay time.Duration
	// Rand drives the jitter draw. Seeded by the caller, so a retry
	// schedule is as reproducible as everything else in the simulator.
	// Required if Jitter > 0.
	Rand *rand.Rand
	// Sleep, when non-nil, is called with each backoff delay.
	Sleep func(time.Duration)
}

// WithRetry returns a copy of the client that applies the policy to every
// request. The zero policy leaves the client as-is. Clients with a jittered
// policy share the policy's Rand and must not be used concurrently.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	out := *c
	out.retry = p
	return &out
}

// attempts resolves the total request budget, never below 1.
func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// backoff sleeps before retry number retryIdx (0-based), applying
// exponential growth and jitter. A positive hint — the server's Retry-After,
// sent with 429 and 503 — raises the delay to at least the hinted wait:
// retrying sooner than the server asked just burns the attempt budget.
// MaxDelay caps the result either way.
func (p RetryPolicy) backoff(retryIdx int, hint time.Duration) {
	if p.Sleep == nil || (p.Backoff <= 0 && hint <= 0) {
		return
	}
	delay := time.Duration(0)
	if p.Backoff > 0 {
		delay = p.Backoff << retryIdx
		if p.Jitter > 0 && p.Rand != nil {
			delay = time.Duration(float64(delay) * (1 + p.Jitter*p.Rand.Float64()))
		}
	}
	if hint > delay {
		delay = hint
	}
	if p.MaxDelay > 0 && delay > p.MaxDelay {
		delay = p.MaxDelay
	}
	p.Sleep(delay)
}
