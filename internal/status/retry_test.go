package status

import (
	"math/rand"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// flakyAPI answers code (with an optional Retry-After hint) for the first
// fail requests, then a minimal valid JSON document.
type flakyAPI struct {
	fail       int
	code       int
	retryAfter string
	requests   int
}

func (f *flakyAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.requests++
	if f.requests <= f.fail {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		http.Error(w, "maintenance", f.code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{}`)) //nolint:errcheck
}

func TestRetryRidesThroughTransient5xx(t *testing.T) {
	api := &flakyAPI{fail: 2, code: http.StatusServiceUnavailable}
	c := NewLocalClient(api).WithRetry(RetryPolicy{Attempts: 3})
	if _, err := c.Root(); err != nil {
		t.Fatalf("retrying client should succeed: %v", err)
	}
	if api.requests != 3 {
		t.Fatalf("requests = %d, want 3 (2 failures + 1 success)", api.requests)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	api := &flakyAPI{fail: 1 << 30, code: http.StatusBadGateway}
	c := NewLocalClient(api).WithRetry(RetryPolicy{Attempts: 4})
	if _, err := c.Root(); err == nil {
		t.Fatal("exhausted budget should surface the error")
	}
	if api.requests != 4 {
		t.Fatalf("requests = %d, want exactly the budget of 4", api.requests)
	}
}

func TestRetryDoesNotTouch4xx(t *testing.T) {
	api := &flakyAPI{fail: 1 << 30, code: http.StatusNotFound}
	c := NewLocalClient(api).WithRetry(RetryPolicy{Attempts: 5})
	if _, err := c.Root(); err == nil {
		t.Fatal("404 should fail")
	}
	if api.requests != 1 {
		t.Fatalf("requests = %d; client errors must not be retried", api.requests)
	}
}

func TestNoRetryWithoutPolicy(t *testing.T) {
	api := &flakyAPI{fail: 1, code: http.StatusServiceUnavailable}
	c := NewLocalClient(api)
	if _, err := c.Root(); err == nil {
		t.Fatal("plain client should fail on the first 503")
	}
	if api.requests != 1 {
		t.Fatalf("requests = %d, want 1", api.requests)
	}
}

// 429 is the admission layer's "come back later" and rides the retry path
// exactly like a 503: retried within budget, Retry-After honored.
func TestRetryTreats429Like503(t *testing.T) {
	api := &flakyAPI{fail: 2, code: http.StatusTooManyRequests}
	c := NewLocalClient(api).WithRetry(RetryPolicy{Attempts: 3})
	if _, err := c.Root(); err != nil {
		t.Fatalf("retrying client should ride through 429s: %v", err)
	}
	if api.requests != 3 {
		t.Fatalf("requests = %d, want 3 (2 sheds + 1 success)", api.requests)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	api := &flakyAPI{fail: 1, code: http.StatusTooManyRequests, retryAfter: "7"}
	var slept []time.Duration
	c := NewLocalClient(api).WithRetry(RetryPolicy{
		Attempts: 2,
		Backoff:  10 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := c.Root(); err != nil {
		t.Fatal(err)
	}
	// The hint (7s) beats the 10ms backoff rung: never retry sooner than
	// the server asked.
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept = %v, want [7s]", slept)
	}
}

func TestRetryMaxDelayCapsBackoffAndHint(t *testing.T) {
	api := &flakyAPI{fail: 1 << 30, code: http.StatusServiceUnavailable, retryAfter: "3600"}
	var slept []time.Duration
	c := NewLocalClient(api).WithRetry(RetryPolicy{
		Attempts: 4,
		Backoff:  time.Second,
		MaxDelay: 2 * time.Second,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	})
	c.Root() //nolint:errcheck
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	for i, d := range slept {
		if d > 2*time.Second {
			t.Fatalf("delay %d = %v exceeds the 2s cap", i, d)
		}
	}
}

func TestRetryBackoffLadderIsSeededAndJittered(t *testing.T) {
	ladder := func(seed int64) []time.Duration {
		api := &flakyAPI{fail: 1 << 30, code: http.StatusServiceUnavailable}
		var slept []time.Duration
		c := NewLocalClient(api).WithRetry(RetryPolicy{
			Attempts: 4,
			Backoff:  100 * time.Millisecond,
			Jitter:   0.5,
			Rand:     rand.New(rand.NewSource(seed)),
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
		})
		c.Root() //nolint:errcheck
		return slept
	}
	a := ladder(42)
	if len(a) != 3 {
		t.Fatalf("slept %d times, want one per retry (3)", len(a))
	}
	// Exponential growth with bounded jitter: each delay lands within
	// [base, base·(1+Jitter)) of its doubling rung.
	base := 100 * time.Millisecond
	for i, d := range a {
		lo := base << i
		hi := time.Duration(float64(lo) * 1.5)
		if d < lo || d >= hi {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, lo, hi)
		}
	}
	// The ladder is a pure function of the seed.
	if !reflect.DeepEqual(a, ladder(42)) {
		t.Fatal("same seed should give the same ladder")
	}
	if reflect.DeepEqual(a, ladder(43)) {
		t.Fatal("different seeds should jitter differently")
	}
}
