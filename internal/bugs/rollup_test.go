package bugs

import (
	"reflect"
	"testing"

	"repro/internal/simclock"
)

func TestRollupFoldsBurstToOneRoot(t *testing.T) {
	// Three per-site trackers, as a site outage produces them: the same
	// grid signature filed on every surviving site, plus one local bug.
	mkTracker := func(at simclock.Time, sigs ...string) *Tracker {
		c := simclock.New(1)
		c.RunFor(at)
		tr := NewTracker(c)
		for _, sig := range sigs {
			tr.File(sig, "title for "+sig, "grid", "lyon")
		}
		return tr
	}
	a := mkTracker(simclock.Week, "site-outage:lyon")
	b := mkTracker(2*simclock.Week, "site-outage:lyon", "site-outage:lyon") // dup = occurrence bump
	c := mkTracker(3*simclock.Week, "disk-dying:node-7")
	if bug := a.BySignature("site-outage:lyon"); bug != nil {
		a.Fix(bug.ID)
	}

	m := map[string]*RollupEntry{}
	RollupInto(m, "nancy", a.All())
	RollupInto(m, "nantes", b.All())
	RollupInto(m, "lyon", c.All())

	out := RollupSorted(m)
	if len(out) != 2 {
		t.Fatalf("rollup rows = %d, want 2", len(out))
	}
	// Widest burst first.
	top := out[0]
	if top.Signature != "site-outage:lyon" || top.Tickets != 2 {
		t.Fatalf("top row = %+v", top)
	}
	if !reflect.DeepEqual(top.Sites, []string{"nancy", "nantes"}) {
		t.Fatalf("top sites = %v", top.Sites)
	}
	if top.Open != 1 {
		t.Fatalf("top open = %d, want 1 (nancy's ticket fixed)", top.Open)
	}
	if top.Occurrences != 3 {
		t.Fatalf("top occurrences = %d, want 3 (nantes re-filed once)", top.Occurrences)
	}
	if top.FirstFiledAt != simclock.Week {
		t.Fatalf("FirstFiledAt = %v, want 1w", top.FirstFiledAt)
	}
	if out[1].Signature != "disk-dying:node-7" || out[1].Tickets != 1 {
		t.Fatalf("second row = %+v", out[1])
	}
}
