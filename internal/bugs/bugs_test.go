package bugs

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestFileAndDedup(t *testing.T) {
	tr := NewTracker(simclock.New(1))
	b1, isNew := tr.File("disk-cache-off:sol-1.sophia", "write cache disabled", "disk", "sol")
	if !isNew || b1.ID != 1 {
		t.Fatalf("first filing: new=%v id=%d", isNew, b1.ID)
	}
	b2, isNew := tr.File("disk-cache-off:sol-1.sophia", "write cache disabled", "disk", "sol")
	if isNew || b2.ID != b1.ID {
		t.Fatal("dedup failed")
	}
	if b1.Occurrences != 2 {
		t.Fatalf("occurrences = %d", b1.Occurrences)
	}
	if st := tr.Stats(); st.Filed != 1 || st.Open != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFixAndReopen(t *testing.T) {
	c := simclock.New(2)
	tr := NewTracker(c)
	b, _ := tr.File("sig", "title", "fam", "tgt")
	c.RunUntil(simclock.Hour)
	if err := tr.Fix(b.ID); err != nil {
		t.Fatal(err)
	}
	if b.State != Fixed || b.FixedAt != simclock.Hour {
		t.Fatalf("bug = %+v", b)
	}
	if err := tr.Fix(b.ID); err == nil {
		t.Fatal("double fix accepted")
	}
	if err := tr.Fix(99); err == nil {
		t.Fatal("ghost fix accepted")
	}
	// Re-detection reopens.
	b2, isNew := tr.File("sig", "title", "fam", "tgt")
	if !isNew || b2 != b || b.State != Open || b.Reopens != 1 {
		t.Fatalf("reopen: %+v", b)
	}
	if st := tr.Stats(); st.Filed != 1 || st.Fixed != 0 || st.Open != 1 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

func TestLookups(t *testing.T) {
	tr := NewTracker(simclock.New(3))
	tr.File("a", "ta", "f1", "x")
	tr.File("b", "tb", "f2", "y")
	if tr.Get(1).Signature != "a" || tr.Get(2).Signature != "b" {
		t.Fatal("Get by ID")
	}
	if tr.Get(0) != nil || tr.Get(3) != nil {
		t.Fatal("out-of-range Get")
	}
	if tr.BySignature("b").ID != 2 {
		t.Fatal("BySignature")
	}
	if tr.BySignature("zzz") != nil {
		t.Fatal("ghost signature")
	}
	if len(tr.All()) != 2 {
		t.Fatal("All")
	}
}

func TestOpenBugsOrdering(t *testing.T) {
	tr := NewTracker(simclock.New(4))
	tr.File("a", "t", "f", "x")
	b2, _ := tr.File("b", "t", "f", "x")
	tr.File("c", "t", "f", "x")
	tr.Fix(b2.ID)
	open := tr.OpenBugs()
	if len(open) != 2 || open[0].Signature != "a" || open[1].Signature != "c" {
		t.Fatalf("open = %v", open)
	}
}

func TestByFamilySortedByCount(t *testing.T) {
	tr := NewTracker(simclock.New(5))
	tr.File("1", "t", "disk", "x")
	tr.File("2", "t", "disk", "y")
	tr.File("3", "t", "kavlan", "z")
	fc := tr.ByFamily()
	if len(fc) != 2 || fc[0].Family != "disk" || fc[0].Count != 2 {
		t.Fatalf("by family = %v", fc)
	}
}

func TestStatsString(t *testing.T) {
	tr := NewTracker(simclock.New(6))
	for i := 0; i < 5; i++ {
		b, _ := tr.File(string(rune('a'+i)), "t", "f", "x")
		if i < 3 {
			tr.Fix(b.ID)
		}
	}
	if got := tr.Stats().String(); got != "5 bugs filed (inc. 3 already fixed)" {
		t.Fatalf("stats = %q", got)
	}
	if !strings.Contains(tr.Report(), "f") {
		t.Fatal("report missing family")
	}
}

func TestBugString(t *testing.T) {
	tr := NewTracker(simclock.New(7))
	b, _ := tr.File("sig-x", "broken thing", "disk", "sol")
	s := b.String()
	if !strings.Contains(s, "#1") || !strings.Contains(s, "open") || !strings.Contains(s, "sig-x") {
		t.Fatalf("String() = %q", s)
	}
	if Open.String() != "open" || Fixed.String() != "fixed" {
		t.Fatal("state strings")
	}
}

// Property: filing N distinct signatures yields N bugs with IDs 1..N, and
// filing any of them again never grows the database.
func TestFilingProperty(t *testing.T) {
	f := func(sigs []string) bool {
		tr := NewTracker(simclock.New(8))
		uniq := map[string]bool{}
		for _, s := range sigs {
			tr.File(s, "t", "f", "x")
			uniq[s] = true
		}
		if len(tr.All()) != len(uniq) {
			return false
		}
		for _, s := range sigs {
			tr.File(s, "t", "f", "x")
		}
		if len(tr.All()) != len(uniq) {
			return false
		}
		for i, b := range tr.All() {
			if b.ID != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVersionCounter pins the ETag contract: every mutation — new filing,
// deduplicated occurrence bump, reopen, fix — advances the version; pure
// reads do not.
func TestVersionCounter(t *testing.T) {
	tr := NewTracker(simclock.New(9))
	if tr.Version() != 0 {
		t.Fatalf("fresh tracker version = %d, want 0", tr.Version())
	}
	b, _ := tr.File("sig-a", "t", "f", "x")
	v1 := tr.Version()
	if v1 == 0 {
		t.Fatal("new filing did not bump the version")
	}
	tr.File("sig-a", "t", "f", "x") // dedup: occurrence bump still mutates
	v2 := tr.Version()
	if v2 == v1 {
		t.Fatal("deduplicated filing did not bump the version")
	}
	if err := tr.Fix(b.ID); err != nil {
		t.Fatal(err)
	}
	v3 := tr.Version()
	if v3 == v2 {
		t.Fatal("fix did not bump the version")
	}
	tr.File("sig-a", "t", "f", "x") // reopen
	if tr.Version() == v3 {
		t.Fatal("reopen did not bump the version")
	}
	before := tr.Version()
	tr.All()
	tr.OpenBugs()
	tr.Stats()
	if tr.Version() != before {
		t.Fatal("reads bumped the version")
	}
}
