// Package bugs implements the bug tracker that closes the paper's loop:
// tests exhibit issues, issues become bug reports, operators fix them
// ("118 bugs filed (inc. 84 already fixed)", slide 22).
//
// The paper stresses (slide 11) that typical testbed users rarely report
// bugs; the testing framework is effectively the reporter of record, so
// reports must be deduplicated — the same failing test firing nightly must
// not open a new ticket every night. Deduplication is keyed on the bug
// signature carried by the failing test's outcome.
package bugs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simclock"
)

// State is a bug's lifecycle state.
type State int

const (
	// Open means the problem is unresolved.
	Open State = iota
	// Fixed means an operator resolved it.
	Fixed
)

func (s State) String() string {
	if s == Fixed {
		return "fixed"
	}
	return "open"
}

// Bug is one tracked issue.
type Bug struct {
	ID        int
	Signature string // stable identity for deduplication
	Title     string
	Family    string // test family that exhibited it
	Target    string // cluster/site/node concerned
	State     State

	FiledAt     simclock.Time
	FixedAt     simclock.Time
	Occurrences int // how many test failures matched this bug
	Reopens     int // how many times it came back after a fix
}

func (b *Bug) String() string {
	return fmt.Sprintf("#%d [%s] %s (%s)", b.ID, b.State, b.Title, b.Signature)
}

// Tracker is the bug database.
type Tracker struct {
	clock *simclock.Clock
	bugs  []*Bug
	bySig map[string]*Bug

	// open indexes unresolved bugs in filing (ID) order, maintained
	// incrementally so OpenBugs/Stats never rescan the full history; fixed
	// counts resolved bugs for O(1) Stats.
	open  []*Bug
	fixed int

	// version counts mutations: every File (including deduplicated
	// occurrence bumps — they change rollup output) and every successful
	// Fix. The gateway's rollup and incident ETags key on it, so any change
	// that could alter those views invalidates them.
	version int64
}

// NewTracker returns an empty tracker.
func NewTracker(clock *simclock.Clock) *Tracker {
	return &Tracker{clock: clock, bySig: map[string]*Bug{}}
}

// openInsert puts a bug back into the open index, keeping ID order
// (reopens are rare; everything else appends at the tail).
func (t *Tracker) openInsert(b *Bug) {
	i := sort.Search(len(t.open), func(i int) bool { return t.open[i].ID >= b.ID })
	t.open = append(t.open, nil)
	copy(t.open[i+1:], t.open[i:])
	t.open[i] = b
}

// openRemove drops a bug from the open index.
func (t *Tracker) openRemove(b *Bug) {
	i := sort.Search(len(t.open), func(i int) bool { return t.open[i].ID >= b.ID })
	if i < len(t.open) && t.open[i] == b {
		t.open = append(t.open[:i], t.open[i+1:]...)
	}
}

// File records a problem. If an open bug already carries the signature, it
// is deduplicated (occurrence count bumped). If a *fixed* bug carries it,
// the bug is reopened — the problem came back. Returns the bug and whether
// this filing created or reopened it (i.e. operators have new work).
func (t *Tracker) File(signature, title, family, target string) (*Bug, bool) {
	t.version++
	if b := t.bySig[signature]; b != nil {
		b.Occurrences++
		if b.State == Fixed {
			b.State = Open
			b.Reopens++
			t.fixed--
			t.openInsert(b)
			return b, true
		}
		return b, false
	}
	b := &Bug{
		ID:          len(t.bugs) + 1,
		Signature:   signature,
		Title:       title,
		Family:      family,
		Target:      target,
		State:       Open,
		FiledAt:     t.clock.Now(),
		Occurrences: 1,
	}
	t.bugs = append(t.bugs, b)
	t.bySig[signature] = b
	t.open = append(t.open, b) // new IDs are monotonic: tail append keeps order
	return b, true
}

// Fix marks a bug resolved.
func (t *Tracker) Fix(id int) error {
	if id < 1 || id > len(t.bugs) {
		return fmt.Errorf("bugs: no bug #%d", id)
	}
	b := t.bugs[id-1]
	if b.State == Fixed {
		return fmt.Errorf("bugs: #%d already fixed", id)
	}
	b.State = Fixed
	b.FixedAt = t.clock.Now()
	t.fixed++
	t.version++
	t.openRemove(b)
	return nil
}

// Version returns the tracker's mutation counter: it advances on every
// filing (new, reopened or deduplicated) and every fix, never otherwise.
// Two reads observing the same version observed identical tracker state.
func (t *Tracker) Version() int64 { return t.version }

// Get returns a bug by ID, or nil.
func (t *Tracker) Get(id int) *Bug {
	if id < 1 || id > len(t.bugs) {
		return nil
	}
	return t.bugs[id-1]
}

// BySignature returns the bug carrying the signature, or nil.
func (t *Tracker) BySignature(sig string) *Bug { return t.bySig[sig] }

// All returns every bug in filing order.
func (t *Tracker) All() []*Bug { return append([]*Bug(nil), t.bugs...) }

// OpenBugs returns unresolved bugs, oldest first. The copy comes straight
// off the maintained open index — no history scan.
func (t *Tracker) OpenBugs() []*Bug {
	return append([]*Bug(nil), t.open...)
}

// EachOpen visits unresolved bugs oldest-first without copying, stopping
// when fn returns false. fn must not File, Fix or reopen bugs during the
// walk — collect first, then mutate.
func (t *Tracker) EachOpen(fn func(*Bug) bool) {
	for _, b := range t.open {
		if !fn(b) {
			return
		}
	}
}

// OpenCount returns the number of unresolved bugs, O(1).
func (t *Tracker) OpenCount() int { return len(t.open) }

// Stats summarises the tracker like the paper's slide 22 headline.
type Stats struct {
	Filed int
	Fixed int
	Open  int
}

func (s Stats) String() string {
	return fmt.Sprintf("%d bugs filed (inc. %d already fixed)", s.Filed, s.Fixed)
}

// Stats returns filed/fixed/open counts. O(1): the counters are maintained
// incrementally by File/Fix instead of rescanning the bug list.
func (t *Tracker) Stats() Stats {
	return Stats{Filed: len(t.bugs), Fixed: t.fixed, Open: len(t.open)}
}

// ByFamily groups filed-bug counts per test family, sorted by family name —
// the operators' view of which tests earn their keep.
func (t *Tracker) ByFamily() []FamilyCount {
	m := map[string]int{}
	for _, b := range t.bugs {
		m[b.Family]++
	}
	out := make([]FamilyCount, 0, len(m))
	for f, n := range m {
		out = append(out, FamilyCount{Family: f, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Family < out[j].Family
	})
	return out
}

// FamilyCount pairs a test family with its bug tally.
type FamilyCount struct {
	Family string
	Count  int
}

// Report renders a text summary for operators.
func (t *Tracker) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Stats())
	for _, fc := range t.ByFamily() {
		fmt.Fprintf(&sb, "  %-16s %d\n", fc.Family, fc.Count)
	}
	return sb.String()
}
