package bugs

import (
	"sort"

	"repro/internal/simclock"
)

// RollupEntry aggregates the bug reports sharing one signature across many
// per-site trackers: the federated view of a root cause. One site outage
// files a ticket on every surviving shard; the rollup folds that burst back
// into a single row.
type RollupEntry struct {
	Signature    string
	Title        string
	Family       string
	Sites        []string // sites carrying a ticket, in rollup-insertion order
	Tickets      int      // total tickets across sites
	Open         int      // tickets still open
	Occurrences  int      // summed occurrence counters
	FirstFiledAt simclock.Time
}

// RollupInto folds one site's bug list into the accumulator keyed by
// signature. The caller aggregates across trackers by calling it once per
// site — each call under that site's own lock — then sorts with
// RollupSorted.
func RollupInto(m map[string]*RollupEntry, site string, list []*Bug) {
	for _, b := range list {
		e := m[b.Signature]
		if e == nil {
			e = &RollupEntry{
				Signature:    b.Signature,
				Title:        b.Title,
				Family:       b.Family,
				FirstFiledAt: b.FiledAt,
			}
			m[b.Signature] = e
		}
		if b.FiledAt < e.FirstFiledAt {
			e.FirstFiledAt = b.FiledAt
		}
		if len(e.Sites) == 0 || e.Sites[len(e.Sites)-1] != site {
			e.Sites = append(e.Sites, site)
		}
		e.Tickets++
		e.Occurrences += b.Occurrences
		if b.State == Open {
			e.Open++
		}
	}
}

// RollupSorted flattens the accumulator into a deterministic slice: widest
// bursts first (ticket count descending), signature as the tie-break.
func RollupSorted(m map[string]*RollupEntry) []RollupEntry {
	out := make([]RollupEntry, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tickets != out[j].Tickets {
			return out[i].Tickets > out[j].Tickets
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}
