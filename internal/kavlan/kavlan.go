// Package kavlan simulates KaVLAN, Grid'5000's network isolation service
// (slide 8): users move their nodes into dedicated VLANs to protect the
// testbed from experiments, avoid network pollution, and build custom
// topologies. Reconfiguration works by changing switch VLAN membership, so
// it has almost no overhead.
//
// Four VLAN kinds exist, mirroring the paper's figure:
//
//   - the default VLAN: all nodes, routing between sites;
//   - local VLANs: isolated level-2 networks only accessible through an SSH
//     gateway attached to both networks;
//   - routed VLANs: separate level-2 networks reachable through routing;
//   - global VLANs: one level-2 network spanning all sites, no routing.
//
// The kavlan test family verifies both the reconfiguration operation and
// the reachability semantics.
package kavlan

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Kind classifies a VLAN.
type Kind int

const (
	// Default is the shared production VLAN with inter-site routing.
	Default Kind = iota
	// Local is an isolated site-level L2 network behind an SSH gateway.
	Local
	// Routed is a site-level L2 network reachable through routing.
	Routed
	// Global is a testbed-wide L2 network (no routing in or out).
	Global
)

func (k Kind) String() string {
	switch k {
	case Default:
		return "default"
	case Local:
		return "local"
	case Routed:
		return "routed"
	case Global:
		return "global"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// VLAN is one virtual network.
type VLAN struct {
	ID   int
	Kind Kind
	Site string // owning site for Local/Routed; "" for Default/Global
}

func (v *VLAN) String() string {
	if v.Site != "" {
		return fmt.Sprintf("vlan-%d (%s@%s)", v.ID, v.Kind, v.Site)
	}
	return fmt.Sprintf("vlan-%d (%s)", v.ID, v.Kind)
}

// DefaultID is the ID of the default VLAN.
const DefaultID = 1

// Manager tracks VLAN membership of every node. Reconfigurations take
// ReconfigTime of simulated time (small: the operation is a switch update).
type Manager struct {
	clock  *simclock.Clock
	tb     *testbed.Testbed
	faults *faults.Injector

	vlans      map[int]*VLAN
	membership map[string]int // node → VLAN ID

	reconfigs int
}

// ReconfigTime is how long one VLAN change takes ("almost no overhead").
const ReconfigTime = 5 * simclock.Second

// NewManager creates the VLAN pool: the default VLAN, three local and three
// routed VLANs per site, and one global VLAN per site (Grid'5000's real
// allocation policy). All nodes start in the default VLAN.
func NewManager(clock *simclock.Clock, tb *testbed.Testbed, inj *faults.Injector) *Manager {
	m := &Manager{
		clock:      clock,
		tb:         tb,
		faults:     inj,
		vlans:      map[int]*VLAN{},
		membership: map[string]int{},
	}
	m.vlans[DefaultID] = &VLAN{ID: DefaultID, Kind: Default}
	id := DefaultID + 1
	for _, site := range tb.SiteNames() {
		for i := 0; i < 3; i++ {
			m.vlans[id] = &VLAN{ID: id, Kind: Local, Site: site}
			id++
		}
		for i := 0; i < 3; i++ {
			m.vlans[id] = &VLAN{ID: id, Kind: Routed, Site: site}
			id++
		}
		m.vlans[id] = &VLAN{ID: id, Kind: Global, Site: ""}
		id++
	}
	for _, n := range tb.Nodes() {
		m.membership[n.Name] = DefaultID
	}
	return m
}

// VLANs returns all VLANs sorted by ID.
func (m *Manager) VLANs() []*VLAN {
	out := make([]*VLAN, 0, len(m.vlans))
	for _, v := range m.vlans {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindVLAN returns a VLAN of the given kind usable by the given site (any
// site for Global), or nil when the pool has none.
func (m *Manager) FindVLAN(kind Kind, site string) *VLAN {
	for _, v := range m.VLANs() {
		if v.Kind != kind {
			continue
		}
		if kind == Local || kind == Routed {
			if v.Site == site {
				return v
			}
			continue
		}
		return v
	}
	return nil
}

// VLANOf returns the VLAN a node currently belongs to.
func (m *Manager) VLANOf(node string) (*VLAN, error) {
	id, ok := m.membership[node]
	if !ok {
		return nil, fmt.Errorf("kavlan: unknown node %q", node)
	}
	return m.vlans[id], nil
}

// Members returns the nodes of a VLAN, sorted.
func (m *Manager) Members(vlanID int) []string {
	var out []string
	for n, id := range m.membership {
		if id == vlanID {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// SetNodes moves nodes into the VLAN. Local and Routed VLANs only accept
// nodes of their own site. The call fails when the site's kavlan service is
// flaky. It returns the simulated duration of the reconfiguration.
func (m *Manager) SetNodes(vlanID int, nodes []string) (simclock.Time, error) {
	v, ok := m.vlans[vlanID]
	if !ok {
		return 0, fmt.Errorf("kavlan: unknown VLAN %d", vlanID)
	}
	for _, name := range nodes {
		n := m.tb.Node(name)
		if n == nil {
			return 0, fmt.Errorf("kavlan: unknown node %q", name)
		}
		if (v.Kind == Local || v.Kind == Routed) && n.Site != v.Site {
			return 0, fmt.Errorf("kavlan: node %s is at %s, VLAN %d belongs to %s",
				name, n.Site, vlanID, v.Site)
		}
		if m.faults != nil && m.faults.ServiceFails(n.Site, "kavlan") {
			return 0, fmt.Errorf("kavlan: reconfiguration failed at %s (service error)", n.Site)
		}
	}
	for _, name := range nodes {
		m.membership[name] = vlanID
	}
	m.reconfigs++
	return ReconfigTime, nil
}

// ResetAll returns every node to the default VLAN (done at job epilogue).
func (m *Manager) ResetAll() {
	for n := range m.membership {
		m.membership[n] = DefaultID
	}
}

// Reconfigs returns how many successful reconfigurations happened.
func (m *Manager) Reconfigs() int { return m.reconfigs }

// Reachable reports whether node a can open a connection to node b given
// current VLAN membership. The matrix follows the paper's figure:
//
//   - same VLAN: always reachable (level 2);
//   - default ↔ default: reachable across sites (backbone routing);
//   - routed ↔ default (either direction): reachable through routing;
//   - local VLANs: unreachable from anywhere else (SSH gateway is out of
//     band);
//   - global VLANs: level-2 among members only.
func (m *Manager) Reachable(a, b string) (bool, error) {
	va, err := m.VLANOf(a)
	if err != nil {
		return false, err
	}
	vb, err := m.VLANOf(b)
	if err != nil {
		return false, err
	}
	if va.ID == vb.ID {
		return true, nil
	}
	pair := func(x, y Kind) bool {
		return va.Kind == x && vb.Kind == y || va.Kind == y && vb.Kind == x
	}
	switch {
	case pair(Default, Default):
		return true, nil
	case pair(Default, Routed), pair(Routed, Routed):
		return true, nil
	default:
		// Any path touching a Local or Global VLAN (other than staying
		// inside it) is blocked.
		return false, nil
	}
}
