package kavlan

import (
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func setup() (*testbed.Testbed, *faults.Injector, *Manager) {
	c := simclock.New(21)
	tb := testbed.Default()
	inj := faults.NewInjector(c, tb)
	return tb, inj, NewManager(c, tb, inj)
}

func TestPoolLayout(t *testing.T) {
	_, _, m := setup()
	counts := map[Kind]int{}
	for _, v := range m.VLANs() {
		counts[v.Kind]++
	}
	if counts[Default] != 1 {
		t.Errorf("default VLANs = %d", counts[Default])
	}
	if counts[Local] != 24 || counts[Routed] != 24 {
		t.Errorf("local/routed = %d/%d, want 24/24 (3 per site)", counts[Local], counts[Routed])
	}
	if counts[Global] != 8 {
		t.Errorf("global = %d, want 8 (1 per site)", counts[Global])
	}
}

func TestAllNodesStartInDefault(t *testing.T) {
	tb, _, m := setup()
	for _, n := range tb.Nodes() {
		v, err := m.VLANOf(n.Name)
		if err != nil {
			t.Fatal(err)
		}
		if v.ID != DefaultID {
			t.Fatalf("%s starts in %v", n.Name, v)
		}
	}
	if _, err := m.VLANOf("ghost-1.limbo"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestDefaultCrossSiteRouting(t *testing.T) {
	_, _, m := setup()
	ok, err := m.Reachable("sol-1.sophia", "griffon-1.nancy")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("default VLAN nodes should reach each other across sites")
	}
}

func TestLocalVLANIsolation(t *testing.T) {
	_, _, m := setup()
	local := m.FindVLAN(Local, "lyon")
	if local == nil {
		t.Fatal("no local VLAN at lyon")
	}
	if _, err := m.SetNodes(local.ID, []string{"taurus-1.lyon", "taurus-2.lyon"}); err != nil {
		t.Fatal(err)
	}
	// Inside the VLAN: reachable.
	if ok, _ := m.Reachable("taurus-1.lyon", "taurus-2.lyon"); !ok {
		t.Fatal("members of a local VLAN should reach each other")
	}
	// From the default VLAN: not reachable, either direction.
	if ok, _ := m.Reachable("taurus-3.lyon", "taurus-1.lyon"); ok {
		t.Fatal("local VLAN reachable from default")
	}
	if ok, _ := m.Reachable("taurus-1.lyon", "taurus-3.lyon"); ok {
		t.Fatal("local VLAN can escape to default")
	}
}

func TestRoutedVLANReachableViaRouting(t *testing.T) {
	_, _, m := setup()
	routed := m.FindVLAN(Routed, "nancy")
	if _, err := m.SetNodes(routed.ID, []string{"griffon-1.nancy"}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Reachable("griffon-1.nancy", "griffon-2.nancy"); !ok {
		t.Fatal("routed VLAN should reach default via routing")
	}
	if ok, _ := m.Reachable("sol-1.sophia", "griffon-1.nancy"); !ok {
		t.Fatal("default should reach routed VLAN via routing")
	}
}

func TestGlobalVLANSpansSites(t *testing.T) {
	_, _, m := setup()
	g := m.FindVLAN(Global, "")
	if g == nil {
		t.Fatal("no global VLAN")
	}
	if _, err := m.SetNodes(g.ID, []string{"sol-1.sophia", "griffon-1.nancy"}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Reachable("sol-1.sophia", "griffon-1.nancy"); !ok {
		t.Fatal("global VLAN members should be L2-adjacent across sites")
	}
	if ok, _ := m.Reachable("sol-1.sophia", "sol-2.sophia"); ok {
		t.Fatal("global VLAN should not route to default")
	}
}

func TestLocalVLANRejectsForeignNodes(t *testing.T) {
	_, _, m := setup()
	local := m.FindVLAN(Local, "lyon")
	if _, err := m.SetNodes(local.ID, []string{"sol-1.sophia"}); err == nil {
		t.Fatal("foreign node accepted into site-local VLAN")
	}
	if _, err := m.SetNodes(99999, []string{"sol-1.sophia"}); err == nil {
		t.Fatal("unknown VLAN accepted")
	}
	if _, err := m.SetNodes(local.ID, []string{"ghost-1.limbo"}); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestServiceFaultBlocksReconfiguration(t *testing.T) {
	_, inj, m := setup()
	inj.InjectService("lyon", "kavlan", 1.0)
	local := m.FindVLAN(Local, "lyon")
	if _, err := m.SetNodes(local.ID, []string{"taurus-1.lyon"}); err == nil {
		t.Fatal("reconfiguration succeeded with dead kavlan service")
	}
	// Membership unchanged on failure.
	v, _ := m.VLANOf("taurus-1.lyon")
	if v.ID != DefaultID {
		t.Fatal("failed reconfiguration mutated membership")
	}
}

func TestResetAll(t *testing.T) {
	tb, _, m := setup()
	local := m.FindVLAN(Local, "sophia")
	m.SetNodes(local.ID, []string{"sol-1.sophia", "sol-2.sophia"})
	m.ResetAll()
	for _, n := range tb.Nodes() {
		v, _ := m.VLANOf(n.Name)
		if v.ID != DefaultID {
			t.Fatalf("%s not reset", n.Name)
		}
	}
}

func TestMembersAndReconfigCount(t *testing.T) {
	_, _, m := setup()
	local := m.FindVLAN(Local, "sophia")
	d, err := m.SetNodes(local.ID, []string{"sol-2.sophia", "sol-1.sophia"})
	if err != nil {
		t.Fatal(err)
	}
	if d != ReconfigTime {
		t.Fatalf("duration = %v", d)
	}
	got := m.Members(local.ID)
	if len(got) != 2 || got[0] != "sol-1.sophia" || got[1] != "sol-2.sophia" {
		t.Fatalf("members = %v", got)
	}
	if m.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d", m.Reconfigs())
	}
}

// Property: Reachable is symmetric for every pair of nodes under arbitrary
// membership of our VLAN kinds.
func TestReachabilitySymmetryProperty(t *testing.T) {
	tb, _, m := setup()
	nodes := tb.Site("lyon").Nodes()
	vlanChoices := []*VLAN{
		m.vlans[DefaultID],
		m.FindVLAN(Local, "lyon"),
		m.FindVLAN(Routed, "lyon"),
		m.FindVLAN(Global, ""),
	}
	f := func(ai, bi uint8, va, vb uint8) bool {
		a := nodes[int(ai)%len(nodes)].Name
		b := nodes[int(bi)%len(nodes)].Name
		m.membership[a] = vlanChoices[int(va)%len(vlanChoices)].ID
		m.membership[b] = vlanChoices[int(vb)%len(vlanChoices)].ID
		ab, err1 := m.Reachable(a, b)
		ba, err2 := m.Reachable(b, a)
		return err1 == nil && err2 == nil && ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Default: "default", Local: "local", Routed: "routed", Global: "global"} {
		if k.String() != want {
			t.Errorf("%d = %q", int(k), k.String())
		}
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown kind formatting")
	}
	v := &VLAN{ID: 3, Kind: Local, Site: "lyon"}
	if v.String() != "vlan-3 (local@lyon)" {
		t.Errorf("VLAN.String() = %q", v.String())
	}
}
