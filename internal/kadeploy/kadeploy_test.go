package kadeploy

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func setup(seed int64) (*simclock.Clock, *testbed.Testbed, *faults.Injector, *Deployer) {
	c := simclock.New(seed)
	tb := testbed.Default()
	inj := faults.NewInjector(c, tb)
	return c, tb, inj, NewDeployer(c, inj)
}

func TestRegistryHas14Environments(t *testing.T) {
	if len(Registry) != 14 {
		t.Fatalf("registry has %d environments, want 14 (paper's matrix axis)", len(Registry))
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.Name] {
			t.Fatalf("duplicate environment %s", e.Name)
		}
		seen[e.Name] = true
		if e.SizeMB <= 0 || e.Kernel == "" {
			t.Fatalf("degenerate environment %+v", e)
		}
	}
}

func TestEnvByName(t *testing.T) {
	e, err := EnvByName("jessie-x64-std")
	if err != nil {
		t.Fatal(err)
	}
	if e.SizeMB != 1500 {
		t.Fatalf("size = %d", e.SizeMB)
	}
	if _, err := EnvByName("windows-311"); err == nil {
		t.Fatal("unknown env accepted")
	}
}

func TestDeploy200NodesInAbout5Minutes(t *testing.T) {
	_, tb, _, d := setup(1)
	// 200 nodes across several nancy clusters (same site).
	var nodes []*testbed.Node
	for _, cl := range []string{"griffon", "graphene", "graoully", "grisou"} {
		nodes = append(nodes, tb.Cluster(cl).Nodes...)
	}
	nodes = nodes[:200]
	res, err := d.Deploy(nodes, StdEnv)
	if err != nil {
		t.Fatal(err)
	}
	mins := res.Duration.Duration().Minutes()
	if mins < 3.5 || mins > 6.5 {
		t.Fatalf("200-node deployment took %.1f min, want ≈5", mins)
	}
	if res.OK < 190 {
		t.Fatalf("only %d/200 deployed on a healthy testbed", res.OK)
	}
	if res.OK+res.Failed != 200 {
		t.Fatalf("OK+Failed = %d", res.OK+res.Failed)
	}
}

func TestDeployEmptyAndCrossSiteRejected(t *testing.T) {
	_, tb, _, d := setup(2)
	if _, err := d.Deploy(nil, StdEnv); err == nil {
		t.Fatal("empty deploy accepted")
	}
	mixed := []*testbed.Node{tb.Node("sol-1.sophia"), tb.Node("taurus-1.lyon")}
	if _, err := d.Deploy(mixed, StdEnv); err == nil {
		t.Fatal("cross-site deploy accepted")
	}
}

func TestDeployIncrementsBootCount(t *testing.T) {
	_, tb, _, d := setup(3)
	n := tb.Node("graphite-1.nancy")
	before := n.BootCount
	res, err := d.Deploy([]*testbed.Node{n}, StdEnv)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 1 && n.BootCount != before+2 {
		t.Fatalf("boot count = %d, want +2", n.BootCount)
	}
}

func TestBootDelayFaultSlowsDeployment(t *testing.T) {
	_, tb, inj, d := setup(4)
	n := tb.Node("uvb-1.sophia")
	base, err := d.Deploy([]*testbed.Node{n}, StdEnv)
	if err != nil || base.OK != 1 {
		t.Fatalf("healthy deploy failed: %v %+v", err, base)
	}
	inj.InjectNode(faults.BootDelay, n.Name)
	slow, err := d.Deploy([]*testbed.Node{n}, StdEnv)
	if err != nil || slow.OK != 1 {
		t.Fatalf("delayed deploy failed: %v", err)
	}
	// Two boots, 2.5 minutes extra each.
	if slow.Duration < base.Duration+4*simclock.Minute {
		t.Fatalf("boot-delay fault added only %v", slow.Duration-base.Duration)
	}
}

func TestDiskCacheFaultSlowsImageWrite(t *testing.T) {
	_, tb, inj, d := setup(5)
	n := tb.Node("econome-1.nantes")
	base, _ := d.Deploy([]*testbed.Node{n}, StdEnv)
	inj.InjectNode(faults.DiskCacheOff, n.Name)
	slow, _ := d.Deploy([]*testbed.Node{n}, StdEnv)
	if base.OK != 1 || slow.OK != 1 {
		t.Skip("random baseline failure hit; seed-dependent")
	}
	// Write time goes from 1500/55≈27s to 1500/(55*0.35)≈78s.
	if slow.Duration < base.Duration+30*simclock.Second {
		t.Fatalf("cache-off added only %v", slow.Duration-base.Duration)
	}
}

func TestRandomRebootsFaultFailsNodes(t *testing.T) {
	_, tb, inj, d := setup(6)
	cl := tb.Cluster("suno")
	for _, n := range cl.Nodes {
		inj.InjectNode(faults.RandomReboots, n.Name)
	}
	res, err := d.Deploy(cl.Nodes, StdEnv)
	if err != nil {
		t.Fatal(err)
	}
	// P(node survives two reboots) = 0.65² ≈ 0.42, so over 30 nodes some
	// failures are essentially certain.
	if res.Failed == 0 {
		t.Fatal("no failures despite random-reboot fault on every node")
	}
	for _, nr := range res.PerNode {
		if !nr.OK && !strings.Contains(nr.Reason, "reboot") {
			t.Fatalf("unexpected failure reason %q", nr.Reason)
		}
	}
	if got := len(res.FailedNodes()); got != res.Failed {
		t.Fatalf("FailedNodes() = %d, Failed = %d", got, res.Failed)
	}
}

func TestKadeployServiceFaultFailsWholeDeployment(t *testing.T) {
	_, tb, inj, d := setup(7)
	inj.InjectService("lyon", "kadeploy", 1.0)
	_, err := d.Deploy(tb.Cluster("taurus").Nodes, StdEnv)
	if err == nil {
		t.Fatal("deployment succeeded with dead kadeploy service")
	}
	// Other sites unaffected.
	if _, err := d.Deploy(tb.Cluster("sol").Nodes, StdEnv); err != nil {
		t.Fatalf("healthy site affected: %v", err)
	}
}

func TestStragglerDropped(t *testing.T) {
	c := simclock.New(8)
	tb := testbed.Default()
	inj := faults.NewInjector(c, tb)
	cfg := DefaultConfig()
	cfg.NodeTimeout = 3 * simclock.Minute // tight timeout
	d := NewDeployerWithConfig(c, inj, cfg)

	n := tb.Node("helios-1.sophia")
	inj.InjectNode(faults.BootDelay, n.Name) // +5 min across two boots
	res, err := d.Deploy([]*testbed.Node{n, tb.Node("helios-2.sophia")}, StdEnv)
	if err != nil {
		t.Fatal(err)
	}
	var straggler *NodeResult
	for i := range res.PerNode {
		if res.PerNode[i].Node == n.Name {
			straggler = &res.PerNode[i]
		}
	}
	if straggler == nil || straggler.OK {
		t.Fatalf("straggler not dropped: %+v", res.PerNode)
	}
	if !strings.Contains(straggler.Reason, "timeout") {
		t.Fatalf("reason = %q", straggler.Reason)
	}
	// The deployment as a whole still completes within the healthy node's time.
	if res.Duration > cfg.NodeTimeout {
		t.Fatalf("deployment duration %v exceeds timeout", res.Duration)
	}
}

func TestTotalFailureCostsTimeout(t *testing.T) {
	_, tb, inj, d := setup(9)
	n := tb.Node("sol-3.sophia")
	inj.InjectNode(faults.BootDelay, n.Name)
	cfg := DefaultConfig()
	cfg.NodeTimeout = time3m()
	d2 := NewDeployerWithConfig(d.clock, inj, cfg)
	res, err := d2.Deploy([]*testbed.Node{n}, StdEnv)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 0 {
		t.Skip("node unexpectedly fast")
	}
	if res.Duration != cfg.NodeTimeout {
		t.Fatalf("total-failure duration = %v, want timeout", res.Duration)
	}
	_ = tb
}

func time3m() simclock.Time { return 3 * simclock.Minute }

func TestBiggerImageTakesLonger(t *testing.T) {
	_, tb, _, d := setup(10)
	n := []*testbed.Node{tb.Node("paravance-1.rennes")}
	small, _ := d.Deploy(n, Environment{Name: "min", SizeMB: 400, Kernel: "k"})
	big, _ := d.Deploy(n, Environment{Name: "big", SizeMB: 2400, Kernel: "k"})
	if small.OK != 1 || big.OK != 1 {
		t.Skip("baseline failure hit")
	}
	// 2000 MB difference at 55 MB/s ≈ 36s, minus boot jitter ±40s; run a
	// few trials to smooth jitter out.
	var smallSum, bigSum simclock.Time
	for i := 0; i < 10; i++ {
		s, _ := d.Deploy(n, Environment{Name: "min", SizeMB: 400, Kernel: "k"})
		b, _ := d.Deploy(n, Environment{Name: "big", SizeMB: 2400, Kernel: "k"})
		if s.OK == 1 {
			smallSum += s.Duration
		}
		if b.OK == 1 {
			bigSum += b.Duration
		}
	}
	if bigSum <= smallSum {
		t.Fatalf("bigger image not slower: %v vs %v", bigSum, smallSum)
	}
}

func TestReboot(t *testing.T) {
	_, tb, inj, d := setup(11)
	n := tb.Node("grisou-1.nancy")
	before := n.BootCount
	dur, err := d.Reboot(n)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("zero-duration reboot")
	}
	if n.BootCount != before+1 {
		t.Fatalf("boot count = %d", n.BootCount)
	}
	// A node with random reboots eventually fails a reboot.
	bad := tb.Node("grisou-2.nancy")
	inj.InjectNode(faults.RandomReboots, bad.Name)
	failed := false
	for i := 0; i < 50; i++ {
		if _, err := d.Reboot(bad); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("random-reboot node never failed in 50 reboots")
	}
}

func TestDeployCountAccumulates(t *testing.T) {
	_, tb, _, d := setup(12)
	n := []*testbed.Node{tb.Node("sol-5.sophia")}
	d.Deploy(n, StdEnv)
	d.Deploy(n, StdEnv)
	if d.Count() != 2 {
		t.Fatalf("count = %d", d.Count())
	}
}
