// Package kadeploy simulates Kadeploy, Grid'5000's scalable OS deployment
// system (slide 8: "Provides a Hardware-as-a-Service cloud infrastructure
// ... 200 nodes deployed in ~5 minutes").
//
// A deployment runs the real tool's three phases:
//
//  1. reboot every node into a minimal deployment environment,
//  2. broadcast the image and write it to disk (chain-pipelined, so the
//     per-node cost is roughly constant and a small log-depth term covers
//     the pipeline fill),
//  3. reboot into the deployed environment.
//
// Like Kadeploy3, the engine gives up on stragglers instead of delaying the
// whole deployment: nodes that fail or exceed the per-node timeout are
// reported failed and the deployment completes with the survivors. That
// design decision is what keeps 200-node deployments near the 5-minute mark
// even with a ~1 % per-node failure rate.
//
// Faults shape deployments: the kernel-race boot delay slows phases 1 and 3,
// a disabled disk write cache slows phase 2 (image writing), random-reboot
// hardware makes nodes fail outright, and a flaky kadeploy service at the
// site fails the whole deployment at submission.
package kadeploy

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Environment is a deployable system image. Kameleon-generated images are
// identified by name; size drives the copy phase.
type Environment struct {
	Name   string
	SizeMB int
	Kernel string
}

// StdEnv is the standard environment installed on every node at boot.
var StdEnv = Environment{Name: "jessie-x64-std", SizeMB: 1500, Kernel: testbed.StdKernel}

// Registry is the set of supported environments: the "14 images" axis of
// the paper's matrix job (slide 15: 14 images × 32 clusters = 448
// configurations).
var Registry = []Environment{
	{Name: "jessie-x64-min", SizeMB: 450, Kernel: testbed.StdKernel},
	{Name: "jessie-x64-base", SizeMB: 700, Kernel: testbed.StdKernel},
	{Name: "jessie-x64-nfs", SizeMB: 800, Kernel: testbed.StdKernel},
	{Name: "jessie-x64-std", SizeMB: 1500, Kernel: testbed.StdKernel},
	{Name: "jessie-x64-big", SizeMB: 2400, Kernel: testbed.StdKernel},
	{Name: "wheezy-x64-min", SizeMB: 400, Kernel: "3.2.0-4-amd64"},
	{Name: "wheezy-x64-base", SizeMB: 650, Kernel: "3.2.0-4-amd64"},
	{Name: "wheezy-x64-nfs", SizeMB: 750, Kernel: "3.2.0-4-amd64"},
	{Name: "wheezy-x64-std", SizeMB: 1400, Kernel: "3.2.0-4-amd64"},
	{Name: "wheezy-x64-big", SizeMB: 2200, Kernel: "3.2.0-4-amd64"},
	{Name: "centos-7-min", SizeMB: 600, Kernel: "3.10.0-327.el7"},
	{Name: "ubuntu-1404-min", SizeMB: 550, Kernel: "3.13.0-83-generic"},
	{Name: "ubuntu-1604-min", SizeMB: 650, Kernel: "4.4.0-21-generic"},
	{Name: "fedora-23-min", SizeMB: 700, Kernel: "4.2.3-300.fc23"},
}

// EnvByName returns the registered environment, or an error for unknown
// names (a deregistered image is a bug the environments tests catch).
func EnvByName(name string) (Environment, error) {
	for _, e := range Registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Environment{}, fmt.Errorf("kadeploy: unknown environment %q", name)
}

// NodeResult is the outcome of a deployment on one node.
type NodeResult struct {
	Node     string
	OK       bool
	Reason   string // failure reason when !OK
	Duration simclock.Time
}

// Result is the outcome of one deployment.
type Result struct {
	Env      Environment
	PerNode  []NodeResult
	Duration simclock.Time // wall time of the whole deployment
	OK       int
	Failed   int
}

// FailedNodes returns the names of nodes that did not deploy.
func (r *Result) FailedNodes() []string {
	var out []string
	for _, nr := range r.PerNode {
		if !nr.OK {
			out = append(out, nr.Node)
		}
	}
	return out
}

// Config tunes the deployment timing model. Defaults reproduce the paper's
// 200-nodes-in-≈5-minutes figure.
type Config struct {
	// MinEnvBoot is the base duration of phase 1 (reboot to deployment env).
	MinEnvBoot simclock.Time
	// BootJitter is the ± spread applied to both reboots, per node.
	BootJitter simclock.Time
	// FinalBoot is the base duration of phase 3.
	FinalBoot simclock.Time
	// WriteMBps is the per-node image write throughput in phase 2.
	WriteMBps float64
	// PipelineStep is the pipeline-fill cost per chain-tree level.
	PipelineStep simclock.Time
	// NodeTimeout drops a straggler from the deployment.
	NodeTimeout simclock.Time
}

// DefaultConfig returns the calibrated timing model.
func DefaultConfig() Config {
	return Config{
		MinEnvBoot:   85 * simclock.Second,
		BootJitter:   20 * simclock.Second,
		FinalBoot:    100 * simclock.Second,
		WriteMBps:    55,
		PipelineStep: 4 * simclock.Second,
		NodeTimeout:  10 * simclock.Minute,
	}
}

// Deployer runs deployments against the testbed. Deployments are invoked
// from CI build scripts on executor goroutines; the simulation run token
// serializes the actual deployment work (RNG draws, node boot counters),
// and the mutex below guards the deployer's own counters so Count stays
// accurate when queried from outside goroutines.
type Deployer struct {
	clock  *simclock.Clock
	faults *faults.Injector
	cfg    Config

	mu          sync.Mutex
	deployments int
}

// NewDeployer returns a deployer with the default timing model.
func NewDeployer(clock *simclock.Clock, inj *faults.Injector) *Deployer {
	return &Deployer{clock: clock, faults: inj, cfg: DefaultConfig()}
}

// NewDeployerWithConfig allows benchmarks to explore the timing model.
func NewDeployerWithConfig(clock *simclock.Clock, inj *faults.Injector, cfg Config) *Deployer {
	return &Deployer{clock: clock, faults: inj, cfg: cfg}
}

// Count returns how many deployments have been run.
func (d *Deployer) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deployments
}

// Deploy installs env on the given nodes and returns the per-node outcome.
// The returned Result.Duration is simulated wall time; the caller (a test
// script running inside an OAR job) accounts for it in its own timeline.
// Deploy fails as a whole when the site's kadeploy service is down.
func (d *Deployer) Deploy(nodes []*testbed.Node, env Environment) (*Result, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kadeploy: empty node set")
	}
	site := nodes[0].Site
	for _, n := range nodes {
		if n.Site != site {
			return nil, fmt.Errorf("kadeploy: nodes span sites %s and %s", site, n.Site)
		}
	}
	d.mu.Lock()
	d.deployments++
	d.mu.Unlock()
	if d.faults != nil && d.faults.ServiceFails(site, "kadeploy") {
		return nil, fmt.Errorf("kadeploy: service error at %s (server unreachable)", site)
	}

	res := &Result{Env: env}
	// Pipeline fill: the image flows down a chain tree; depth grows with
	// log2(N) and each level costs PipelineStep.
	depth := simclock.Time(math.Ceil(math.Log2(float64(len(nodes)+1)))) * d.cfg.PipelineStep

	var slowest simclock.Time
	for _, n := range nodes {
		nr := d.deployOne(n, env, depth)
		res.PerNode = append(res.PerNode, nr)
		if nr.OK {
			res.OK++
			if nr.Duration > slowest {
				slowest = nr.Duration
			}
		} else {
			res.Failed++
		}
	}
	sort.Slice(res.PerNode, func(i, j int) bool { return res.PerNode[i].Node < res.PerNode[j].Node })
	if res.OK == 0 {
		// Total failure still costs the timeout before kadeploy gives up.
		res.Duration = d.cfg.NodeTimeout
	} else {
		res.Duration = slowest
	}
	return res, nil
}

// retryDetect is the time kadeploy spends before declaring a node dead and
// retrying it (unreachable-after-reboot watchdog). It is short enough that
// a single retry keeps the node inside the deployment's ≈5-minute window.
const retryDetect = 90 * simclock.Second

func (d *Deployer) deployOne(n *testbed.Node, env Environment, pipelineFill simclock.Time) NodeResult {
	failProb := d.faults.RebootFailProb(n.Name)
	var wasted simclock.Time
	// Kadeploy3 retries a node that died during a reboot once before giving
	// up on it; that keeps the baseline fleet flakiness (~1 % per reboot)
	// from failing whole deployments.
	for attempt := 0; attempt < 2; attempt++ {
		if simclock.Bernoulli(d.clock.Rand(), failProb) || simclock.Bernoulli(d.clock.Rand(), failProb) {
			n.BootCount++ // it did start rebooting before dying
			wasted += retryDetect
			continue
		}
		bootDelay := d.faults.BootDelayFor(n.Name)
		p1 := simclock.Jitter(d.clock.Rand(), d.cfg.MinEnvBoot, d.cfg.BootJitter) + bootDelay
		writeFactor := d.faults.DiskWriteFactor(n.Name)
		writeSecs := float64(env.SizeMB) / (d.cfg.WriteMBps * writeFactor)
		p2 := pipelineFill + simclock.Time(writeSecs*float64(simclock.Second))
		p3 := simclock.Jitter(d.clock.Rand(), d.cfg.FinalBoot, d.cfg.BootJitter) + bootDelay

		total := wasted + p1 + p2 + p3
		n.BootCount += 2
		if total > d.cfg.NodeTimeout {
			return NodeResult{Node: n.Name, Reason: "deployment timeout (straggler dropped)", Duration: d.cfg.NodeTimeout}
		}
		return NodeResult{Node: n.Name, OK: true, Duration: total}
	}
	return NodeResult{Node: n.Name, Reason: "node did not come back after reboot (retried once)"}
}

// Reboot reboots one node (the multireboot test family). It returns the
// duration on success, or an error when the node fails to come back.
func (d *Deployer) Reboot(n *testbed.Node) (simclock.Time, error) {
	if simclock.Bernoulli(d.clock.Rand(), d.faults.RebootFailProb(n.Name)) {
		return 0, fmt.Errorf("kadeploy: %s did not come back after reboot", n.Name)
	}
	n.BootCount++
	dur := simclock.Jitter(d.clock.Rand(), d.cfg.FinalBoot, d.cfg.BootJitter) + d.faults.BootDelayFor(n.Name)
	return dur, nil
}
