package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/inproc"
	"repro/internal/simclock"
)

// newCampaign builds a framework, runs it for d of simulated time and
// returns it with a gateway in front. The environments matrix is disabled:
// these tests exercise the serving layer, not the 448-cell job.
func newCampaign(t testing.TB, seed int64, faults int, d simclock.Time) (*core.Framework, *Gateway) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.InitialFaults = faults
	cfg.EnvMatrixPeriod = 0
	f := core.New(cfg)
	f.Start()
	f.RunFor(d)
	return f, ForFramework(f)
}

func get(t *testing.T, c *http.Client, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.Get("http://gw.local" + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp, body
}

func decode[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	return v
}

func TestEndpoints(t *testing.T) {
	f, gw := newCampaign(t, 7, 8, 2*simclock.Day)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	idx := decode[struct {
		Endpoints []string `json:"endpoints"`
	}](t, body)
	if len(idx.Endpoints) < 10 {
		t.Fatalf("index lists %d endpoints", len(idx.Endpoints))
	}

	resp, body = get(t, c, "/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resources status = %d", resp.StatusCode)
	}
	res := decode[OARResourcesJSON](t, body)
	if len(res.Nodes) != f.TB.TotalNodes() {
		t.Fatalf("resources lists %d of %d nodes", len(res.Nodes), f.TB.TotalNodes())
	}
	total := 0
	for _, n := range res.Summary {
		total += n
	}
	if total != len(res.Nodes) {
		t.Fatalf("summary counts %d, nodes %d", total, len(res.Nodes))
	}

	cluster := f.TB.Clusters()[0].Name
	resp, body = get(t, c, "/oar/resources?cluster="+cluster)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster resources status = %d", resp.StatusCode)
	}
	clRes := decode[OARResourcesJSON](t, body)
	if len(clRes.Nodes) == 0 || len(clRes.Nodes) >= len(res.Nodes) {
		t.Fatalf("cluster filter returned %d nodes", len(clRes.Nodes))
	}
	if resp, _ := get(t, c, "/oar/resources?cluster=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cluster status = %d", resp.StatusCode)
	}

	resp, body = get(t, c, "/oar/jobs?limit=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs status = %d", resp.StatusCode)
	}
	jobs := decode[OARJobsJSON](t, body)
	if jobs.Submitted == 0 || len(jobs.Jobs) == 0 || len(jobs.Jobs) > 10 {
		t.Fatalf("jobs = %d listed of %d submitted", len(jobs.Jobs), jobs.Submitted)
	}
	// Newest first.
	for i := 1; i < len(jobs.Jobs); i++ {
		if jobs.Jobs[i].ID >= jobs.Jobs[i-1].ID {
			t.Fatalf("jobs not newest-first: %d then %d", jobs.Jobs[i-1].ID, jobs.Jobs[i].ID)
		}
	}

	resp, body = get(t, c, "/bugs?state=all")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bugs status = %d", resp.StatusCode)
	}
	bl := decode[BugsJSON](t, body)
	if bl.Filed == 0 || len(bl.Bugs) != bl.Filed {
		t.Fatalf("bugs = %d listed, %d filed", len(bl.Bugs), bl.Filed)
	}
	if resp, _ := get(t, c, "/bugs?state=weird"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bug state status = %d", resp.StatusCode)
	}

	resp, body = get(t, c, "/status/grid")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status = %d", resp.StatusCode)
	}
	grid := decode[GridJSON](t, body)
	if len(grid.Families) == 0 || len(grid.Targets) == 0 {
		t.Fatalf("empty grid: %d families, %d targets", len(grid.Families), len(grid.Targets))
	}

	resp, body = get(t, c, "/status/trend")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trend status = %d", resp.StatusCode)
	}
	trend := decode[TrendJSON](t, body)
	if len(trend.Points) == 0 {
		t.Fatal("empty trend")
	}

	// The CI API proxied under /ci/.
	resp, body = get(t, c, "/ci/api/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ci proxy status = %d", resp.StatusCode)
	}
	ciRoot := decode[struct {
		Jobs []struct {
			Name string `json:"name"`
		} `json:"jobs"`
	}](t, body)
	if len(ciRoot.Jobs) == 0 {
		t.Fatal("ci proxy lists no jobs")
	}

	// Metrics reflect everything above.
	resp, body = get(t, c, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	m := decode[MetricsReport](t, body)
	if m.Endpoints["/oar/resources"].Requests != 3 {
		t.Fatalf("resources counter = %d, want 3", m.Endpoints["/oar/resources"].Requests)
	}
	if m.Endpoints["/bugs"].Errors != 1 {
		t.Fatalf("bugs error counter = %d, want 1", m.Endpoints["/bugs"].Errors)
	}
	if m.Requests == 0 || m.SimNowSec == 0 {
		t.Fatalf("metrics totals off: %+v", m)
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	_, gw := newCampaign(t, 7, 0, simclock.Hour)
	c := inproc.Client(gw)

	resp, err := c.Post("http://gw.local/ref/inventory", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST read endpoint status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow = %q, want GET", allow)
	}

	resp, _ = get(t, c, "/oar/submit")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}

	resp, _ = get(t, c, "/no/such/endpoint")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}

	// A missing resource is 404 regardless of method — never 405.
	resp, err = c.Post("http://gw.local/no/such/endpoint", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST unknown path status = %d, want 404", resp.StatusCode)
	}
}

func TestInventoryETag(t *testing.T) {
	f, gw := newCampaign(t, 11, 0, simclock.Hour)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/ref/inventory")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on inventory")
	}
	snap := decode[struct {
		Version int `json:"version"`
	}](t, body)
	if want := fmt.Sprintf(`"v%d"`, snap.Version); etag != want {
		t.Fatalf("ETag = %s, want %s", etag, want)
	}

	// Conditional re-reads take the 304 path and never re-materialize.
	mats := f.Ref.Materializations()
	for i := 0; i < 50; i++ {
		req, _ := http.NewRequest(http.MethodGet, "http://gw.local/ref/inventory", nil)
		req.Header.Set("If-None-Match", etag)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional read %d: status = %d, want 304", i, resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag = %s, want %s", got, etag)
		}
	}
	if f.Ref.Materializations() != mats {
		t.Fatalf("304 path re-materialized: %d → %d", mats, f.Ref.Materializations())
	}

	// Unconditional hot reads serve the cached body: still no new
	// materializations.
	for i := 0; i < 10; i++ {
		if resp, _ := get(t, c, "/ref/inventory"); resp.StatusCode != http.StatusOK {
			t.Fatalf("hot read status = %d", resp.StatusCode)
		}
	}
	if f.Ref.Materializations() != mats {
		t.Fatalf("hot reads re-materialized: %d → %d", mats, f.Ref.Materializations())
	}

	// A description update moves the current version: the stale ETag now
	// misses and the response carries the new one.
	node := f.TB.Nodes()[0]
	inv := node.Inv.Clone()
	inv.RAMGB += 8
	if err := f.Ref.Update(f.Clock.Now(), node.Name, inv); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, "http://gw.local/ref/inventory", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-update conditional status = %d, want 200", resp2.StatusCode)
	}
	if got := resp2.Header.Get("ETag"); got == etag || got == "" {
		t.Fatalf("post-update ETag = %q (old %q)", got, etag)
	}

	// Archived versions stay addressable and cacheable.
	resp, body = get(t, c, "/ref/inventory?version=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("archived status = %d", resp.StatusCode)
	}
	if v := decode[struct {
		Version int `json:"version"`
	}](t, body); v.Version != 1 {
		t.Fatalf("archived version = %d, want 1", v.Version)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Fatalf("archived Cache-Control = %q", cc)
	}
	if resp, _ := get(t, c, "/ref/inventory?version=99999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("future version status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/ref/inventory?version=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus version status = %d, want 400", resp.StatusCode)
	}
}

// TestInventoryCacheBound: the rendered-body cache must stay bounded no
// matter the access pattern — including a client scraping archived
// history newest-to-oldest, where no cached entry is older than the
// requested one.
func TestInventoryCacheBound(t *testing.T) {
	f, gw := newCampaign(t, 31, 0, simclock.Hour)
	c := inproc.Client(gw)
	nodes := f.TB.Nodes()
	const versions = 40
	for u := 0; u < versions; u++ {
		n := nodes[u%len(nodes)]
		inv := n.Inv.Clone()
		inv.RAMGB = 16 + u
		if err := f.Ref.Update(f.Clock.Now(), n.Name, inv); err != nil {
			t.Fatal(err)
		}
	}
	// Descending scrape of the whole archive.
	for v := f.Ref.VersionCount(); v >= 1; v-- {
		resp, _ := get(t, c, fmt.Sprintf("/ref/inventory?version=%d", v))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("version %d status = %d", v, resp.StatusCode)
		}
	}
	s := gw.shards[0]
	s.invMu.Lock()
	size := len(s.invCache)
	s.invMu.Unlock()
	if size > 8 {
		t.Fatalf("inventory cache grew to %d entries (bound is 8)", size)
	}
}

// TestNonFiniteParams: NaN/Inf query values must be rejected up front —
// NaN slides past ordering checks and would otherwise surface as a 200
// with an empty body when json.Encode chokes on it.
func TestNonFiniteParams(t *testing.T) {
	f, gw := newCampaign(t, 37, 0, simclock.Hour)
	c := inproc.Client(gw)
	node := f.TB.Nodes()[0].Name
	for _, path := range []string{
		"/status/trend?bucket_sec=NaN",
		"/status/trend?bucket_sec=+Inf",
		"/monitor/metrics?node=" + node + "&from_sec=NaN",
		"/monitor/metrics?node=" + node + "&to_sec=Inf",
	} {
		resp, _ := get(t, c, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestRefDiff(t *testing.T) {
	f, gw := newCampaign(t, 13, 0, simclock.Hour)
	c := inproc.Client(gw)

	node := f.TB.Nodes()[3]
	inv := node.Inv.Clone()
	inv.RAMGB /= 2
	if err := f.Ref.Update(f.Clock.Now(), node.Name, inv); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, c, "/ref/diff")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d", resp.StatusCode)
	}
	diff := decode[RefDiffJSON](t, body)
	if diff.From != 1 || diff.To != 2 || diff.Count != 1 {
		t.Fatalf("diff = %d..%d with %d differences", diff.From, diff.To, diff.Count)
	}
	if diff.Differences[0].Node != node.Name || diff.Differences[0].Field != "ram_gb" {
		t.Fatalf("difference = %+v", diff.Differences[0])
	}

	etag := resp.Header.Get("ETag")
	req, _ := http.NewRequest(http.MethodGet, "http://gw.local/ref/diff", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional diff status = %d, want 304", resp2.StatusCode)
	}

	// Identical endpoints diff to zero differences.
	resp, body = get(t, c, "/ref/diff?from=1&to=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self diff status = %d", resp.StatusCode)
	}
	if d := decode[RefDiffJSON](t, body); d.Count != 0 {
		t.Fatalf("self diff count = %d", d.Count)
	}
	if resp, _ := get(t, c, "/ref/diff?from=2&to=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted diff status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/ref/diff?to=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range diff status = %d, want 404", resp.StatusCode)
	}
}

func TestSubmit(t *testing.T) {
	f, gw := newCampaign(t, 17, 0, simclock.Hour)
	c := inproc.Client(gw)
	cluster := f.TB.Clusters()[0].Name

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := c.Post("http://gw.local/oar/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, body := post(fmt.Sprintf(`{"request":"cluster='%s'/nodes=2,walltime=1","dry_run":true}`, cluster))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry run status = %d: %s", resp.StatusCode, body)
	}
	dry := decode[SubmitResponse](t, body)
	if dry.CanStartNow == nil || !*dry.CanStartNow {
		t.Fatalf("dry run on an idle testbed = %+v", dry)
	}

	resp, body = post(fmt.Sprintf(`{"request":"cluster='%s'/nodes=2,walltime=1","user":"alice"}`, cluster))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("201 Content-Type = %q", ct)
	}
	sub := decode[SubmitResponse](t, body)
	if sub.Job == nil || sub.Job.State != "Running" || len(sub.Job.Nodes) != 2 || sub.Job.User != "alice" {
		t.Fatalf("submitted job = %+v", sub.Job)
	}

	if resp, body := post(`{"request":"gibberish"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request status = %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(`{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request status = %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d: %s", resp.StatusCode, body)
	}
}

func TestMonitorEndpoint(t *testing.T) {
	f, gw := newCampaign(t, 19, 0, simclock.Hour)
	c := inproc.Client(gw)
	node := f.TB.Nodes()[0].Name

	resp, body := get(t, c, "/monitor/metrics?metric=cpu_load&node="+node+"&from_sec=0&to_sec=60")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monitor status = %d: %s", resp.StatusCode, body)
	}
	mon := decode[MonitorJSON](t, body)
	if len(mon.Samples) != 61 {
		t.Fatalf("samples = %d, want 61 (1 Hz inclusive)", len(mon.Samples))
	}

	// power_w flows through the wiring database (attribution path).
	resp, _ = get(t, c, "/monitor/metrics?node="+node+"&from_sec=0&to_sec=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("power status = %d", resp.StatusCode)
	}

	if resp, _ := get(t, c, "/monitor/metrics?node=ghost-1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/monitor/metrics?metric=quux&node="+node); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown metric status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/monitor/metrics?node="+node+"&from_sec=60&to_sec=10"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/monitor/metrics"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing node status = %d, want 400", resp.StatusCode)
	}

	// On a campaign younger than the default 60 s window, the default
	// from clamps to the epoch instead of rejecting the request.
	fy, gwy := newCampaign(t, 19, 0, 10*simclock.Second)
	cy := inproc.Client(gwy)
	resp, body = get(t, cy, "/monitor/metrics?metric=cpu_load&node="+fy.TB.Nodes()[0].Name)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("young-campaign default window status = %d: %s", resp.StatusCode, body)
	}
	if m := decode[MonitorJSON](t, body); m.FromSec != 0 || len(m.Samples) != 11 {
		t.Fatalf("young-campaign window = %g..%g with %d samples", m.FromSec, m.ToSec, len(m.Samples))
	}
}

// TestInventoryETagUnderChurn drives conditional reads from several client
// goroutines while the Reference API archives new versions underneath
// them. Every response must be coherent: a 304 confirms the exact ETag the
// client sent, and a 200's body version must match the ETag it carries.
func TestInventoryETagUnderChurn(t *testing.T) {
	f, gw := newCampaign(t, 23, 0, simclock.Hour)
	c := inproc.Client(gw)
	nodes := f.TB.Nodes()

	const (
		readers = 4
		updates = 300
		reads   = 150
	)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for u := 0; u < updates; u++ {
			n := nodes[(u*131)%len(nodes)]
			inv := n.Inv.Clone()
			inv.RAMGB = 8 + u%64
			if err := f.Ref.Update(f.Clock.Now(), n.Name, inv); err != nil {
				t.Error(err)
				return
			}
			// Yield so readers interleave with the churn even on one core.
			runtime.Gosched()
		}
	}()

	var clients sync.WaitGroup
	for w := 0; w < readers; w++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			etag := ""
			hits200 := 0
			for i := 0; i < reads; i++ {
				req, _ := http.NewRequest(http.MethodGet, "http://gw.local/ref/inventory", nil)
				if etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := c.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusNotModified:
					if got := resp.Header.Get("ETag"); got != etag {
						t.Errorf("304 with ETag %q after sending %q", got, etag)
					}
					resp.Body.Close()
				case http.StatusOK:
					hits200++
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					var snap struct {
						Version int `json:"version"`
					}
					if err := json.Unmarshal(body, &snap); err != nil {
						t.Errorf("bad body: %v", err)
						return
					}
					etag = resp.Header.Get("ETag")
					if want := fmt.Sprintf(`"v%d"`, snap.Version); etag != want {
						t.Errorf("body version %d vs ETag %s", snap.Version, etag)
						return
					}
				default:
					t.Errorf("status = %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
			}
			// The first read is unconditional, so every reader sees at
			// least one full body.
			if hits200 == 0 {
				t.Error("reader saw no 200 at all")
			}
		}()
	}
	writer.Wait()
	clients.Wait()
	if got := f.Ref.VersionCount(); got != updates+1 {
		t.Fatalf("versions = %d, want %d", got, updates+1)
	}
}

// TestStress hammers every endpoint family from concurrent clients while a
// driver goroutine keeps advancing the simulated campaign through
// Gateway.Advance — the live-serving mode of cmd/g5kapi. Run with -race;
// CI does (GATEWAY_STRESS=1 scales it up).
func TestStress(t *testing.T) {
	f, gw := newCampaign(t, 29, 5, simclock.Day)
	clients, iters := 4, 30
	if os.Getenv("GATEWAY_STRESS") != "" {
		clients, iters = 16, 60
	}
	cluster := f.TB.Clusters()[1].Name
	node := f.TB.Nodes()[0].Name
	paths := []string{
		"/oar/resources?cluster=" + cluster,
		"/oar/jobs?limit=20",
		"/ref/inventory",
		"/ref/diff",
		"/bugs",
		"/status/trend",
		"/monitor/metrics?metric=cpu_load&node=" + node + "&from_sec=0&to_sec=30",
		"/ci/api/json",
		"/metrics",
		// The gate-free federation layout and a site-narrowed view, racing
		// the node-state flips of the advancing campaign.
		"/sites",
		"/sites/nancy/oar/resources",
	}

	done := make(chan struct{})
	var advancer sync.WaitGroup
	advancer.Add(1)
	go func() {
		defer advancer.Done()
		// Bounded: ~a simulated day of campaign progress under the
		// clients' feet is plenty, and keeps the test fast under -race.
		for i := 0; i < 150; i++ {
			select {
			case <-done:
				return
			default:
				gw.Advance(10 * simclock.Minute)
			}
		}
		<-done
	}()

	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := inproc.Client(gw)
			for i := 0; i < iters; i++ {
				path := paths[(w+i)%len(paths)]
				resp, err := c.Get("http://gw.local" + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				// Monitoring may legitimately answer 502 when the advancing
				// campaign injects a kwapi fault; everything else must be 2xx.
				if resp.StatusCode >= 400 && resp.StatusCode != http.StatusBadGateway {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
				if w%2 == 0 {
					body := fmt.Sprintf(`{"request":"cluster='%s'/nodes=1,walltime=0:30:00","dry_run":true}`, cluster)
					resp, err := c.Post("http://gw.local/oar/submit", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("dry-run submit status = %d", resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	advancer.Wait()

	m := gw.Metrics()
	for pattern, em := range m.Endpoints {
		// Monitoring may answer 502 when the advancing campaign injects a
		// kwapi fault; every other endpoint must stay clean.
		if pattern != "/monitor/metrics" && em.Errors != 0 {
			t.Fatalf("endpoint %s recorded %d errors under stress", pattern, em.Errors)
		}
	}
}
