package gateway

// The grid intelligence endpoints (internal/intel wired to HTTP):
//
//	GET /grid/at?t=S          grid inventory as of sim-time S
//	GET /grid/diff?from=&to=  what changed anywhere between two instants
//	GET /incidents[?at=S]     cross-site incident rollup (live or as-of)
//	GET /reliability/trend    fleet reliability confidence bands
//
// All four follow the /ref conditional-request discipline: the ETag is a
// strong composite key (archive version vector, tracker version vector, or
// trend version) computed without materializing anything, a matching
// If-None-Match short-cuts to 304, and rendered bodies are cached under
// that same key. The key and the body are pinned to each other — vector
// reads happen under the shard gates, bodies are materialized from the
// exact versions the key names (GridArchive.Materialize / DiffVector,
// intel.TrackerSnapshot) — so a body can never be newer than its ETag even
// while a campaign advances mid-request. Degraded mode composes the same
// way as /ref: lost sites drop out of the vector and the key carries the
// down-set suffix, so a degraded body never answers a whole-grid
// conditional request.

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/bugs"
	"repro/internal/intel"
	"repro/internal/refapi"
)

// excludedSites folds a degraded marker into the site-label exclusion set
// the intel passes consume (nil while the grid is healthy).
func excludedSites(d *DegradedJSON) map[string]bool {
	if d == nil {
		return nil
	}
	cut := make(map[string]bool, len(d.DownSites)+len(d.UnreachableSites))
	for _, s := range d.DownSites {
		cut[s] = true
	}
	for _, s := range d.UnreachableSites {
		cut[s] = true
	}
	return cut
}

// liveTrackers filters the assembled tracker sources down to the surviving
// sites.
func (g *Gateway) liveTrackers(exclude map[string]bool) []intel.SiteTracker {
	if len(exclude) == 0 {
		return g.trackers
	}
	out := make([]intel.SiteTracker, 0, len(g.trackers))
	for _, t := range g.trackers {
		if !exclude[t.Site] {
			out = append(out, t)
		}
	}
	return out
}

// allZero reports whether no site in the vector had a capture yet.
func allZero(vec []intel.SiteVersion) bool {
	for _, sv := range vec {
		if sv.Version != 0 {
			return false
		}
	}
	return true
}

// ---- GET /grid/at -----------------------------------------------------------

// GridSiteJSON is one store's slice of a GET /grid/at answer: a whole
// site (Cluster empty) or one cluster micro-shard of it.
type GridSiteJSON struct {
	Site       string           `json:"site"`
	Cluster    string           `json:"cluster,omitempty"`
	Version    int              `json:"version"`
	TakenAtSec float64          `json:"taken_at_sec"`
	Inventory  *refapi.Snapshot `json:"inventory"`
}

// GridAtJSON is the wire form of GET /grid/at. It deliberately does not
// echo the query's t: the body derives only from the version vector (plus
// the degraded marker), so every t that resolves to the same vector shares
// one ETag and one cached body. AsOfSec — the latest capture among the
// included sites — is the instant the view actually reflects.
type GridAtJSON struct {
	Degraded *DegradedJSON  `json:"degraded,omitempty"`
	AsOfSec  float64        `json:"as_of_sec"`
	Sites    []GridSiteJSON `json:"sites"`
}

func (g *Gateway) handleGridAt(w http.ResponseWriter, r *http.Request) {
	if g.archive == nil || g.archive.Len() == 0 {
		notConfigured(w, "reference API")
		return
	}
	q := r.URL.Query().Get("t")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing t: GET /grid/at?t=<simtime seconds>")
		return
	}
	sec, err := floatParam(q, 0)
	if err != nil || sec < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad t %q (simtime seconds)", q))
		return
	}
	degraded := g.degradedMarker()
	vec := g.archive.VersionVector(secondsToSim(sec), excludedSites(degraded))
	if len(vec) == 0 {
		w.Header().Set("Retry-After", "60")
		httpError(w, http.StatusServiceUnavailable, "every archived site is down")
		return
	}
	if allZero(vec) {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("no site had a capture at or before t=%ss", q))
		return
	}
	key := "ga" + intel.VersionKey(vec) + downSetKey(degraded)
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.intelMu.Lock()
	body := g.gridAtBody
	hit := g.gridAtKey == key && body != nil
	g.intelMu.Unlock()
	if !hit {
		snap := g.archive.Materialize(vec)
		out := GridAtJSON{
			Degraded: degraded,
			AsOfSec:  snap.AsOf.Seconds(),
			Sites:    make([]GridSiteJSON, 0, len(snap.Sites)),
		}
		for _, sc := range snap.Sites {
			out.Sites = append(out.Sites, GridSiteJSON{
				Site:       sc.Site,
				Cluster:    sc.Cluster,
				Version:    sc.Version,
				TakenAtSec: sc.TakenAt.Seconds(),
				Inventory:  sc.Snapshot,
			})
		}
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.intelMu.Lock()
		g.gridAtKey, g.gridAtBody = key, body
		g.intelMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// ---- GET /grid/diff ---------------------------------------------------------

// GridDiffSiteJSON is one store's section of a GET /grid/diff answer.
// FromVersion 0 means the store had no capture at the earlier instant: its
// differences read as "missing → present".
type GridDiffSiteJSON struct {
	Site        string              `json:"site"`
	Cluster     string              `json:"cluster,omitempty"`
	FromVersion int                 `json:"from_version"`
	ToVersion   int                 `json:"to_version"`
	Differences []refapi.Difference `json:"differences"`
}

// GridDiffJSON is the wire form of GET /grid/diff.
type GridDiffJSON struct {
	Degraded *DegradedJSON      `json:"degraded,omitempty"`
	Count    int                `json:"count"`
	Sites    []GridDiffSiteJSON `json:"sites"`
}

func (g *Gateway) handleGridDiff(w http.ResponseWriter, r *http.Request) {
	if g.archive == nil || g.archive.Len() == 0 {
		notConfigured(w, "reference API")
		return
	}
	fromQ, toQ := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if fromQ == "" || toQ == "" {
		httpError(w, http.StatusBadRequest,
			"missing range: GET /grid/diff?from=<simtime seconds>&to=<simtime seconds>")
		return
	}
	fromSec, err := floatParam(fromQ, 0)
	if err != nil || fromSec < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad from %q (simtime seconds)", fromQ))
		return
	}
	toSec, err := floatParam(toQ, 0)
	if err != nil || toSec < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad to %q (simtime seconds)", toQ))
		return
	}
	if fromSec > toSec {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("from %ss > to %ss", fromQ, toQ))
		return
	}
	degraded := g.degradedMarker()
	exclude := excludedSites(degraded)
	vecFrom := g.archive.VersionVector(secondsToSim(fromSec), exclude)
	vecTo := g.archive.VersionVector(secondsToSim(toSec), exclude)
	if len(vecTo) == 0 {
		w.Header().Set("Retry-After", "60")
		httpError(w, http.StatusServiceUnavailable, "every archived site is down")
		return
	}
	if allZero(vecTo) {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("no site had a capture at or before to=%ss", toQ))
		return
	}
	key := "gd" + intel.VersionKey(vecFrom) + "-" + intel.VersionKey(vecTo) + downSetKey(degraded)
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.intelMu.Lock()
	body := g.gridDiffBody
	hit := g.gridDiffKey == key && body != nil
	g.intelMu.Unlock()
	if !hit {
		diff := g.archive.DiffVector(vecFrom, vecTo)
		out := GridDiffJSON{
			Degraded: degraded,
			Count:    diff.Count,
			Sites:    make([]GridDiffSiteJSON, 0, len(diff.Sites)),
		}
		for _, sd := range diff.Sites {
			out.Sites = append(out.Sites, GridDiffSiteJSON{
				Site:        sd.Site,
				Cluster:     sd.Cluster,
				FromVersion: sd.FromVersion,
				ToVersion:   sd.ToVersion,
				Differences: sd.Differences,
			})
		}
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.intelMu.Lock()
		g.gridDiffKey, g.gridDiffBody = key, body
		g.intelMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// ---- GET /incidents ---------------------------------------------------------

// IncidentJSON is one row of GET /incidents.
type IncidentJSON struct {
	Signature    string   `json:"signature"`
	Title        string   `json:"title,omitempty"`
	Family       string   `json:"family,omitempty"`
	Sites        []string `json:"sites"`
	Tickets      int      `json:"tickets"`
	OpenTickets  int      `json:"open_tickets"`
	Occurrences  int      `json:"occurrences"`
	Reopens      int      `json:"reopens"`
	State        string   `json:"state"` // open | closed
	FirstSeenSec float64  `json:"first_seen_sec"`
	LastSeenSec  float64  `json:"last_seen_sec"`
}

// IncidentsJSON is the wire form of GET /incidents. AtSec is present only
// on time-scoped (?at=) queries.
type IncidentsJSON struct {
	Degraded  *DegradedJSON  `json:"degraded,omitempty"`
	AtSec     *float64       `json:"at_sec,omitempty"`
	Count     int            `json:"count"`
	Incidents []IncidentJSON `json:"incidents"`
}

func (g *Gateway) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if len(g.trackers) == 0 {
		notConfigured(w, "bug tracker")
		return
	}
	state, err := parseBugState(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts := intel.CorrelateOptions{At: intel.AtNow, IncludeClosed: state == "all"}
	atLabel := "now"
	var atSec *float64
	if q := r.URL.Query().Get("at"); q != "" {
		sec, err := floatParam(q, 0)
		if err != nil || sec < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad at %q (simtime seconds)", q))
			return
		}
		opts.At = secondsToSim(sec)
		atLabel = strconv.FormatFloat(sec, 'g', -1, 64)
		atSec = &sec
	}
	degraded := g.degradedMarker()
	snaps := intel.SnapshotTrackers(g.liveTrackers(excludedSites(degraded)))
	key := "inc" + intel.VersionKey64(snaps) + "|" + state + "|at:" + atLabel + downSetKey(degraded)
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.intelMu.Lock()
	body := g.incBody
	hit := g.incKey == key && body != nil
	g.intelMu.Unlock()
	if !hit {
		incidents := intel.CorrelateSnapshots(snaps, opts)
		out := IncidentsJSON{
			Degraded:  degraded,
			AtSec:     atSec,
			Count:     len(incidents),
			Incidents: make([]IncidentJSON, 0, len(incidents)),
		}
		for _, in := range incidents {
			st := "closed"
			if in.Open {
				st = "open"
			}
			out.Incidents = append(out.Incidents, IncidentJSON{
				Signature:    in.Signature,
				Title:        in.Title,
				Family:       in.Family,
				Sites:        in.Sites,
				Tickets:      in.Tickets,
				OpenTickets:  in.OpenTickets,
				Occurrences:  in.Occurrences,
				Reopens:      in.Reopens,
				State:        st,
				FirstSeenSec: in.FirstSeen.Seconds(),
				LastSeenSec:  in.LastSeen.Seconds(),
			})
		}
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.intelMu.Lock()
		g.incKey, g.incBody = key, body
		g.intelMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// ---- GET /reliability/trend -------------------------------------------------

// SetReliabilityTrend installs a computed fleet reliability trend and
// returns its version (sweeps are expensive — N whole campaigns — so they
// run out-of-band and the gateway only ever serves the stored result).
func (g *Gateway) SetReliabilityTrend(t *intel.Trend) int {
	return g.reliability.Put(t)
}

func (g *Gateway) handleReliabilityTrend(w http.ResponseWriter, r *http.Request) {
	trend, ver := g.reliability.Latest()
	if trend == nil {
		httpError(w, http.StatusNotFound,
			"no reliability trend computed yet; run a fleet sweep (g5ktest -reliability) and install it with SetReliabilityTrend")
		return
	}
	etag := `"r` + strconv.Itoa(ver) + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Served verbatim: a client decoding this body holds the exact Trend
	// the CLI renders, which is what the shared-renderer equality rests on.
	writeJSON(w, trend)
}

// rollupFromSnapshots folds pre-read tracker snapshots into the /bugs/rollup
// accumulator (the snapshot already fixed each site's ticket list, so no
// further gating is needed).
func rollupFromSnapshots(snaps []intel.TrackerSnapshot, state string) map[string]*bugs.RollupEntry {
	acc := map[string]*bugs.RollupEntry{}
	for i := range snaps {
		list := snaps[i].List
		if state != "all" {
			open := make([]*bugs.Bug, 0, len(list))
			for _, b := range list {
				if b.State == bugs.Open {
					open = append(open, b)
				}
			}
			list = open
		}
		bugs.RollupInto(acc, snaps[i].Site, list)
	}
	return acc
}
