package gateway

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/inproc"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// fedSpec narrows the default spec to the named sites.
func fedSpec(sites ...string) []testbed.ClusterSpec {
	want := map[string]bool{}
	for _, s := range sites {
		want[s] = true
	}
	var out []testbed.ClusterSpec
	for _, cs := range testbed.DefaultSpec {
		if want[cs.Site] {
			out = append(out, cs)
		}
	}
	return out
}

// newFederatedCampaign builds a two-site federation, runs it for d and
// fronts it with a gateway.
func newFederatedCampaign(t testing.TB, d simclock.Time) (*federation.Federation, *Gateway) {
	t.Helper()
	fed := federation.New(federation.Config{
		Seed: 5,
		Spec: fedSpec("luxembourg", "nantes"),
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 4
			cfg.EnvMatrixPeriod = 0
			return cfg
		},
	})
	fed.Start()
	fed.Advance(d)
	return fed, ForFederation(fed)
}

func TestFederatedSitesAndResources(t *testing.T) {
	fed, gw := newFederatedCampaign(t, 2*simclock.Day)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/sites")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sites status = %d", resp.StatusCode)
	}
	sites := decode[SitesJSON](t, body)
	if sites.Shards != len(fed.Shards()) || len(sites.Sites) != 2 {
		t.Fatalf("/sites = %d shards, %d sites; want %d, 2", sites.Shards, len(sites.Sites), len(fed.Shards()))
	}
	if sites.Sites[0].Name != "luxembourg" || sites.Sites[1].Name != "nantes" {
		t.Fatalf("site order = %s, %s", sites.Sites[0].Name, sites.Sites[1].Name)
	}
	wantNodes := map[string]int{}
	total := 0
	for _, sh := range fed.Shards() {
		wantNodes[sh.Site] += sh.F.TB.TotalNodes()
		total += sh.F.TB.TotalNodes()
	}
	for _, s := range sites.Sites {
		if s.Nodes != wantNodes[s.Name] {
			t.Fatalf("site %s lists %d nodes, want %d", s.Name, s.Nodes, wantNodes[s.Name])
		}
	}

	// The federated listing merges every shard.
	resp, body = get(t, c, "/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged resources status = %d", resp.StatusCode)
	}
	merged := decode[OARResourcesJSON](t, body)
	if len(merged.Nodes) != total {
		t.Fatalf("merged resources = %d nodes, want %d", len(merged.Nodes), total)
	}

	// ?site= narrows to one shard; unknown sites are 400 (the satellite
	// contract), as are unknown sites on the path form.
	resp, body = get(t, c, "/oar/resources?site=nantes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?site=nantes status = %d", resp.StatusCode)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != wantNodes["nantes"] {
		t.Fatalf("?site=nantes = %d nodes, want %d", len(got.Nodes), wantNodes["nantes"])
	}
	if resp, _ := get(t, c, "/oar/resources?site=atlantis"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown ?site= status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/sites/atlantis/oar/resources"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path site status = %d, want 404", resp.StatusCode)
	}

	// The site-scoped route answers the same subset.
	resp, body = get(t, c, "/sites/nantes/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site route status = %d", resp.StatusCode)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != wantNodes["nantes"] {
		t.Fatalf("site route = %d nodes, want %d", len(got.Nodes), wantNodes["nantes"])
	}

	// Cluster filters route to the owning shard, and compose with ?site=.
	resp, body = get(t, c, "/oar/resources?cluster=granduc")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster filter status = %d", resp.StatusCode)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != 22 {
		t.Fatalf("granduc = %d nodes, want 22", len(got.Nodes))
	}
	if resp, _ := get(t, c, "/oar/resources?site=nantes&cluster=granduc"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-site cluster status = %d, want 404", resp.StatusCode)
	}

	// Merged jobs are globally newest-first and capped by limit.
	resp, body = get(t, c, "/oar/jobs?limit=30")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged jobs status = %d", resp.StatusCode)
	}
	jobs := decode[OARJobsJSON](t, body)
	if jobs.Submitted == 0 || len(jobs.Jobs) == 0 || len(jobs.Jobs) > 30 {
		t.Fatalf("merged jobs = %d listed of %d submitted", len(jobs.Jobs), jobs.Submitted)
	}
	for i := 1; i < len(jobs.Jobs); i++ {
		if jobs.Jobs[i].SubmittedAtSec > jobs.Jobs[i-1].SubmittedAtSec {
			t.Fatalf("merged jobs not newest-first at %d", i)
		}
	}
	wantSubmitted := 0
	for _, sh := range fed.Shards() {
		sub, _, _ := sh.F.OAR.Stats()
		wantSubmitted += sub
	}
	if jobs.Submitted != wantSubmitted {
		t.Fatalf("merged submitted = %d, want %d", jobs.Submitted, wantSubmitted)
	}
}

func TestFederatedSubmitRouting(t *testing.T) {
	_, gw := newFederatedCampaign(t, simclock.Hour)
	c := inproc.Client(gw)

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := c.Post("http://gw.local"+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// A cluster anchor routes to the owning shard.
	resp, body := post("/oar/submit", `{"request":"cluster='ecotype'/nodes=2,walltime=1","user":"alice"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	sub := decode[SubmitResponse](t, body)
	if sub.Site != "nantes" || sub.Job == nil || sub.Job.State != "Running" {
		t.Fatalf("submitted job = %+v (site %q)", sub.Job, sub.Site)
	}

	// A site anchor works too (dry run).
	resp, body = post("/oar/submit", `{"request":"site='luxembourg'/nodes=1,walltime=1","dry_run":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry run status = %d: %s", resp.StatusCode, body)
	}
	dry := decode[SubmitResponse](t, body)
	if dry.Site != "luxembourg" || dry.CanStartNow == nil || !*dry.CanStartNow {
		t.Fatalf("dry run = %+v (site %q)", dry, dry.Site)
	}

	// Unanchored requests route through the grid admission layer: with free
	// capacity everywhere they place on the least-loaded live site.
	resp, body = post("/oar/submit", `{"request":"nodes=2,walltime=1"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("unanchored submit status = %d, want 201: %s", resp.StatusCode, body)
	}
	adm := decode[SubmitResponse](t, body)
	if adm.Admission != "placed" || adm.Site == "" || adm.Job == nil {
		t.Fatalf("unanchored submit = %+v", adm)
	}

	// Cross-site requests are client errors.
	if resp, _ := post("/oar/submit", `{"request":"site='luxembourg'/nodes=1+site='nantes'/nodes=1,walltime=1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-site submit status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post("/oar/submit", `{"request":"cluster='graphene'/nodes=1,walltime=1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-cluster submit status = %d, want 400", resp.StatusCode)
	}

	// The site-scoped route pins unanchored requests to the site instead
	// of requiring anchors...
	resp, body = post("/sites/nantes/oar/submit", `{"request":"nodes=1,walltime=1","user":"bob"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("site-scoped submit status = %d: %s", resp.StatusCode, body)
	}
	sub = decode[SubmitResponse](t, body)
	if sub.Site != "nantes" || sub.Job == nil {
		t.Fatalf("site-scoped submit = %+v", sub)
	}
	if !strings.Contains(sub.Job.Request, "site='nantes'") {
		t.Fatalf("site-scoped submit not pinned: %q", sub.Job.Request)
	}
	// ...but rejects requests anchored outside the site.
	if resp, _ := post("/sites/nantes/oar/submit", `{"request":"cluster='granduc'/nodes=1,walltime=1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-site site-scoped submit status = %d, want 400", resp.StatusCode)
	}
}

func TestFederatedMonitorAndBugs(t *testing.T) {
	fed, gw := newFederatedCampaign(t, 2*simclock.Day)
	c := inproc.Client(gw)

	nodeLux := fed.Shard("luxembourg").F.TB.Nodes()[0].Name
	nodeNan := fed.Shard("nantes").F.TB.Nodes()[0].Name

	// Nodes resolve across shards without naming the site.
	for _, node := range []string{nodeLux, nodeNan} {
		resp, body := get(t, c, "/monitor/metrics?metric=cpu_load&node="+node+"&from_sec=0&to_sec=30")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("monitor %s status = %d: %s", node, resp.StatusCode, body)
		}
		if m := decode[MonitorJSON](t, body); len(m.Samples) != 31 {
			t.Fatalf("monitor %s = %d samples, want 31", node, len(m.Samples))
		}
	}
	// ?site= must agree with the node's home, and must name a known site.
	resp, _ := get(t, c, "/monitor/metrics?node="+nodeLux+"&site=nantes&from_sec=0&to_sec=10")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("site-mismatch monitor status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/monitor/metrics?node="+nodeLux+"&site=atlantis"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown ?site= monitor status = %d, want 400", resp.StatusCode)
	}
	resp, body := get(t, c, "/sites/luxembourg/monitor/metrics?metric=cpu_load&node="+nodeLux+"&from_sec=0&to_sec=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site-scoped monitor status = %d: %s", resp.StatusCode, body)
	}
	if m := decode[MonitorJSON](t, body); m.Site != "luxembourg" {
		t.Fatalf("site-scoped monitor site = %q", m.Site)
	}

	// Bugs merge across shard trackers, tagged with their site.
	wantFiled := 0
	for _, sh := range fed.Shards() {
		wantFiled += sh.F.Bugs.Stats().Filed
	}
	resp, body = get(t, c, "/bugs?state=all")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bugs status = %d", resp.StatusCode)
	}
	bl := decode[BugsJSON](t, body)
	if bl.Filed != wantFiled || len(bl.Bugs) != wantFiled {
		t.Fatalf("merged bugs = %d listed, %d filed, want %d", len(bl.Bugs), bl.Filed, wantFiled)
	}
	for _, b := range bl.Bugs {
		if b.Site != "luxembourg" && b.Site != "nantes" {
			t.Fatalf("bug %d carries site %q", b.ID, b.Site)
		}
	}
}

func TestFederatedStatusAndRef(t *testing.T) {
	fed, gw := newFederatedCampaign(t, 2*simclock.Day)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/status/grid")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status = %d", resp.StatusCode)
	}
	grid := decode[GridJSON](t, body)
	hasTarget := func(name string) bool {
		for _, tgt := range grid.Targets {
			if tgt == name {
				return true
			}
		}
		return false
	}
	if !hasTarget("granduc") || !hasTarget("ecotype") {
		t.Fatalf("merged grid misses cross-site targets: %v", grid.Targets)
	}

	resp, body = get(t, c, "/status/trend")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trend status = %d", resp.StatusCode)
	}
	if tr := decode[TrendJSON](t, body); len(tr.Points) == 0 {
		t.Fatal("merged trend is empty")
	}

	// Federated inventory: per-site sections, joined ETag, working 304.
	resp, body = get(t, c, "/ref/inventory")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federated inventory status = %d", resp.StatusCode)
	}
	inv := decode[FederatedInventoryJSON](t, body)
	if len(inv.Sites) != 2 || inv.Sites[0].Site != "luxembourg" || inv.Sites[1].Site != "nantes" {
		t.Fatalf("federated inventory sites = %+v", inv.Sites)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("federated inventory has no ETag")
	}
	req, _ := http.NewRequest(http.MethodGet, "http://gw.local/ref/inventory", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional federated inventory status = %d, want 304", resp2.StatusCode)
	}
	// An update on one shard moves the joined ETag.
	sh := fed.Shard("nantes")
	n := sh.F.TB.Nodes()[0]
	invClone := n.Inv.Clone()
	invClone.RAMGB += 8
	if err := sh.F.Ref.Update(sh.F.Clock.Now(), n.Name, invClone); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodGet, "http://gw.local/ref/inventory", nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body) //nolint:errcheck
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-update conditional status = %d, want 200", resp3.StatusCode)
	}

	// Archived versions are per cluster store: the federated path rejects
	// ?version= and points at the site route, which needs ?cluster= on a
	// micro-sharded site and then serves it.
	if resp, _ := get(t, c, "/ref/inventory?version=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("federated ?version= status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/sites/nantes/ref/inventory?version=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("site ?version= without ?cluster= status = %d, want 400", resp.StatusCode)
	}
	resp, body = get(t, c, "/sites/nantes/ref/inventory?version=1&cluster=econome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site-scoped archived inventory status = %d", resp.StatusCode)
	}
	if v := decode[struct {
		Version int `json:"version"`
	}](t, body); v.Version != 1 {
		t.Fatalf("archived version = %d, want 1", v.Version)
	}

	// Federated diff: per-site sections and a working conditional path.
	resp, body = get(t, c, "/ref/diff")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federated diff status = %d", resp.StatusCode)
	}
	diff := decode[FederatedDiffJSON](t, body)
	if len(diff.Sites) != 2 {
		t.Fatalf("federated diff sites = %d", len(diff.Sites))
	}
	if diff.Sites[1].Count == 0 {
		t.Fatal("nantes diff misses the update just archived")
	}
	if resp, _ := get(t, c, "/ref/diff?from=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("federated diff ?from= status = %d, want 400", resp.StatusCode)
	}
	resp, _ = get(t, c, "/sites/nantes/ref/diff?from=1&to=2&cluster=econome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site-scoped diff status = %d", resp.StatusCode)
	}

	// The unscoped CI proxy is ambiguous on a federation; the site trees
	// serve it.
	if resp, _ := get(t, c, "/ci/api/json"); resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("federated /ci/ status = %d, want 421", resp.StatusCode)
	}
	resp, body = get(t, c, "/sites/luxembourg/ci/api/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site-scoped ci status = %d", resp.StatusCode)
	}
	ciRoot := decode[struct {
		Jobs []struct {
			Name string `json:"name"`
		} `json:"jobs"`
	}](t, body)
	if len(ciRoot.Jobs) == 0 {
		t.Fatal("site-scoped ci lists no jobs")
	}
}

// TestMonolithicSiteRoutes: the single-shard gateway serves the site
// routes too — the shard owns every site and narrows its views.
func TestMonolithicSiteRoutes(t *testing.T) {
	f, gw := newCampaign(t, 41, 0, simclock.Hour)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/sites")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sites status = %d", resp.StatusCode)
	}
	sites := decode[SitesJSON](t, body)
	if sites.Shards != 1 || len(sites.Sites) != 8 {
		t.Fatalf("/sites = %d shards, %d sites; want 1, 8", sites.Shards, len(sites.Sites))
	}

	nancy := f.TB.Site("nancy")
	resp, body = get(t, c, "/sites/nancy/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site route status = %d", resp.StatusCode)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != len(nancy.Nodes()) {
		t.Fatalf("nancy route = %d nodes, want %d", len(got.Nodes), len(nancy.Nodes()))
	}
	resp, body = get(t, c, "/oar/resources?site=nancy")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?site= status = %d", resp.StatusCode)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != len(nancy.Nodes()) {
		t.Fatalf("?site=nancy = %d nodes, want %d", len(got.Nodes), len(nancy.Nodes()))
	}
	if resp, _ := get(t, c, "/oar/resources?site=atlantis"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown ?site= status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/sites/nancy/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown site sub-route status = %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, c, "/sites/nancy/oar/submit")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET site submit status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}

	// Even on the whole-grid shard, the site route narrows submissions:
	// requests anchored at another site are rejected, unanchored ones are
	// pinned so their nodes land at the requested site.
	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := c.Post("http://gw.local"+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}
	if resp, _ := post("/sites/nancy/oar/submit", `{"request":"cluster='taurus'/nodes=1,walltime=1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("monolithic cross-site submit status = %d, want 400", resp.StatusCode)
	}
	resp, body = post("/sites/lyon/oar/submit", `{"request":"nodes=2,walltime=1","user":"carol"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("monolithic pinned submit status = %d: %s", resp.StatusCode, body)
	}
	pinnedSub := decode[SubmitResponse](t, body)
	if pinnedSub.Job == nil || pinnedSub.Site != "lyon" || len(pinnedSub.Job.Nodes) != 2 {
		t.Fatalf("pinned submit = %+v", pinnedSub)
	}
	for _, n := range pinnedSub.Job.Nodes {
		if node := f.TB.Node(n); node == nil || node.Site != "lyon" {
			t.Fatalf("pinned submit allocated %s outside lyon", n)
		}
	}

	// And the site-scoped job listing shows only jobs tied to the site:
	// the lyon-pinned job above must appear under lyon, not under nancy.
	resp, body = get(t, c, "/sites/lyon/oar/jobs?limit=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lyon jobs status = %d", resp.StatusCode)
	}
	lyonJobs := decode[OARJobsJSON](t, body)
	foundLyon := false
	for _, j := range lyonJobs.Jobs {
		for _, n := range j.Nodes {
			node := f.TB.Node(n)
			if node == nil || node.Site != "lyon" {
				t.Fatalf("lyon job %d holds node %s outside lyon", j.ID, n)
			}
		}
		if j.User == "carol" {
			foundLyon = true
		}
	}
	if !foundLyon {
		t.Fatal("lyon job listing misses the job just submitted there")
	}
	resp, body = get(t, c, "/sites/nancy/oar/jobs?limit=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nancy jobs status = %d", resp.StatusCode)
	}
	for _, j := range decode[OARJobsJSON](t, body).Jobs {
		if j.User == "carol" {
			t.Fatal("nancy job listing shows a lyon-pinned job")
		}
	}
}

// TestSiteReadsUnblockedByOtherShardAdvance pins the lock-scoping claim
// deterministically: while shard B's Advance holds B's write lock, a
// site-A read completes, and a site-B read can not — it is released
// exactly when the advance finishes.
func TestSiteReadsUnblockedByOtherShardAdvance(t *testing.T) {
	fed := federation.New(federation.Config{
		Seed: 9,
		Spec: fedSpec("luxembourg", "nantes"),
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 0
			cfg.EnvMatrixPeriod = 0
			return cfg
		},
	})
	fed.Start()
	fed.Advance(simclock.Hour)

	a, b := fed.Shard("luxembourg"), fed.Shard("nantes")
	started := make(chan struct{})
	release := make(chan struct{})
	mk := func(sh *federation.Shard) Config {
		return Config{
			Clock: sh.F.Clock, TB: sh.F.TB, OAR: sh.F.OAR, Ref: sh.F.Ref,
			Monitor: sh.F.Monitor, Bugs: sh.F.Bugs, CI: sh.F.CI, Advance: sh.F.RunFor,
		}
	}
	cfgB := mk(b)
	cfgB.Advance = func(d simclock.Time) {
		close(started)
		<-release // hold B's write lock until the test releases it
	}
	gw := NewFederated([]ShardConfig{
		{Site: a.Site, Config: mk(a)},
		{Site: b.Site, Config: cfgB},
	})
	c := inproc.Client(gw)

	advDone := make(chan struct{})
	go func() {
		defer close(advDone)
		if err := gw.AdvanceSite(b.Site, simclock.Hour); err != nil {
			t.Errorf("AdvanceSite: %v", err)
		}
	}()
	<-started // B's shard gate is now write-held

	// A site-A read completes while B is mid-advance.
	readDone := make(chan int, 1)
	go func() {
		resp, err := c.Get(fmt.Sprintf("http://gw.local/sites/%s/oar/resources", a.Site))
		if err != nil {
			t.Errorf("site-A read: %v", err)
			readDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		readDone <- resp.StatusCode
	}()
	select {
	case code := <-readDone:
		if code != http.StatusOK {
			t.Fatalf("site-A read during site-B advance = %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("site-A read blocked behind site-B's advance")
	}

	// A site-B read must wait for the advance; it completes only after
	// release.
	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		resp, err := c.Get(fmt.Sprintf("http://gw.local/sites/%s/oar/jobs", b.Site))
		if err != nil {
			t.Errorf("site-B read: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()
	select {
	case <-bDone:
		t.Fatal("site-B read completed while its shard's write lock was held")
	case <-time.After(50 * time.Millisecond):
		// Still blocked, as it must be.
	}
	close(release)
	<-advDone
	<-bDone

	// Unknown sites and hook-less shards error cleanly.
	if err := gw.AdvanceSite("atlantis", simclock.Hour); err == nil {
		t.Fatal("AdvanceSite(atlantis) did not error")
	}
}
