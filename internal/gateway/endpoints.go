package gateway

// The OAR, monitoring, bug-tracker and status-view endpoints.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/simclock"
	"repro/internal/status"
)

// secondsToSim converts a wire-level seconds value to simulated time.
func secondsToSim(s float64) simclock.Time {
	return simclock.Time(s * float64(simclock.Second))
}

// ---- OAR -------------------------------------------------------------------

// OARResourcesJSON is the wire form of GET /oar/resources.
type OARResourcesJSON struct {
	Summary map[string]int     `json:"summary"`
	Nodes   []oar.ResourceInfo `json:"nodes"`
}

func (g *Gateway) handleOARResources(w http.ResponseWriter, r *http.Request) {
	srv := g.cfg.OAR
	if srv == nil {
		notConfigured(w, "oar")
		return
	}
	cluster := r.URL.Query().Get("cluster")
	nodes := srv.Resources(cluster)
	if cluster != "" && len(nodes) == 0 {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no cluster %q", cluster))
		return
	}
	summary := map[string]int{}
	for _, n := range nodes {
		summary[n.State]++
	}
	writeJSON(w, OARResourcesJSON{Summary: summary, Nodes: nodes})
}

// OARJobsJSON is the wire form of GET /oar/jobs.
type OARJobsJSON struct {
	Submitted int           `json:"submitted"`
	Started   int           `json:"started"`
	Canceled  int           `json:"canceled"`
	Jobs      []oar.JobInfo `json:"jobs"`
}

func (g *Gateway) handleOARJobs(w http.ResponseWriter, r *http.Request) {
	srv := g.cfg.OAR
	if srv == nil {
		notConfigured(w, "oar")
		return
	}
	limit := 500
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", q))
			return
		}
		limit = v
	}
	out := OARJobsJSON{Jobs: srv.JobsInfo(limit)}
	out.Submitted, out.Started, out.Canceled = srv.Stats()
	writeJSON(w, out)
}

// SubmitRequest is the body of POST /oar/submit.
type SubmitRequest struct {
	Request string `json:"request"`
	User    string `json:"user,omitempty"`
	// DryRun probes whether the request could start right now
	// (oar.Server.CanStartNow — what the external scheduler asks before
	// every trigger) without enqueuing anything.
	DryRun bool `json:"dry_run,omitempty"`
}

// SubmitResponse is the reply of POST /oar/submit.
type SubmitResponse struct {
	CanStartNow *bool        `json:"can_start_now,omitempty"`
	Job         *oar.JobInfo `json:"job,omitempty"`
}

func (g *Gateway) handleOARSubmit(w http.ResponseWriter, r *http.Request) {
	srv := g.cfg.OAR
	if srv == nil {
		notConfigured(w, "oar")
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if req.Request == "" {
		httpError(w, http.StatusBadRequest, "missing request")
		return
	}
	if req.DryRun {
		ok, err := srv.CanStartNow(req.Request)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, SubmitResponse{CanStartNow: &ok})
		return
	}
	user := req.User
	if user == "" {
		user = "api"
	}
	j, err := srv.Submit(req.Request, oar.SubmitOptions{User: user})
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	info, _ := srv.JobInfoByID(j.ID)
	writeJSONStatus(w, http.StatusCreated, SubmitResponse{Job: &info})
}

// ---- monitoring ------------------------------------------------------------

// MonitorJSON is the wire form of GET /monitor/metrics.
type MonitorJSON struct {
	Metric  string       `json:"metric"`
	Node    string       `json:"node"`
	FromSec float64      `json:"from_sec"`
	ToSec   float64      `json:"to_sec"`
	Mean    float64      `json:"mean"`
	Samples []SampleJSON `json:"samples"`
}

// SampleJSON is one measurement with the timestamp in seconds.
type SampleJSON struct {
	TSec float64 `json:"t_sec"`
	V    float64 `json:"v"`
}

func (g *Gateway) handleMonitorMetrics(w http.ResponseWriter, r *http.Request) {
	col := g.cfg.Monitor
	if col == nil || g.cfg.Clock == nil {
		notConfigured(w, "monitoring")
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		metric = monitor.MetricPowerW
	}
	switch metric {
	case monitor.MetricPowerW, monitor.MetricCPULoad, monitor.MetricNetMbps:
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown metric %q", metric))
		return
	}
	node := q.Get("node")
	if node == "" {
		httpError(w, http.StatusBadRequest, "missing node")
		return
	}
	if g.cfg.TB != nil && g.cfg.TB.Node(node) == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown node %q", node))
		return
	}
	now := g.cfg.Clock.Now().Seconds()
	defFrom := now - 60
	if defFrom < 0 {
		defFrom = 0 // a campaign younger than the default window
	}
	from, err := floatParam(q.Get("from_sec"), defFrom)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := floatParam(q.Get("to_sec"), now)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if from < 0 || to < from {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad range %g..%g", from, to))
		return
	}
	fromT := secondsToSim(from)
	toT := secondsToSim(to)

	// The collector shares the campaign RNG on flaky-kwapi rolls; serialize
	// queries so concurrent scrapes never race on it.
	g.monMu.Lock()
	samples, err := col.Query(metric, node, fromT, toT)
	g.monMu.Unlock()
	if err != nil {
		// Inputs were validated above; what remains is the monitoring
		// service itself failing (the paper's flaky kwapi).
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	out := MonitorJSON{
		Metric:  metric,
		Node:    node,
		FromSec: from,
		ToSec:   to,
		Mean:    monitor.Mean(samples),
		Samples: make([]SampleJSON, len(samples)),
	}
	for i, s := range samples {
		out.Samples[i] = SampleJSON{TSec: s.T.Seconds(), V: s.V}
	}
	writeJSON(w, out)
}

// ---- bugs ------------------------------------------------------------------

// BugJSON is the wire form of one bug report.
type BugJSON struct {
	ID          int     `json:"id"`
	Signature   string  `json:"signature"`
	Title       string  `json:"title,omitempty"`
	Family      string  `json:"family,omitempty"`
	Target      string  `json:"target,omitempty"`
	State       string  `json:"state"`
	FiledAtSec  float64 `json:"filed_at_sec"`
	FixedAtSec  float64 `json:"fixed_at_sec,omitempty"`
	Occurrences int     `json:"occurrences"`
	Reopens     int     `json:"reopens,omitempty"`
}

// BugsJSON is the wire form of GET /bugs.
type BugsJSON struct {
	Filed int       `json:"filed"`
	Fixed int       `json:"fixed"`
	Open  int       `json:"open"`
	Bugs  []BugJSON `json:"bugs"`
}

func (g *Gateway) handleBugs(w http.ResponseWriter, r *http.Request) {
	tr := g.cfg.Bugs
	if tr == nil {
		notConfigured(w, "bug tracker")
		return
	}
	q := r.URL.Query()
	state := q.Get("state")
	if state == "" {
		state = "open"
	}
	if state != "open" && state != "all" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad state %q (open|all)", state))
		return
	}
	family := q.Get("family")
	st := tr.Stats()
	out := BugsJSON{Filed: st.Filed, Fixed: st.Fixed, Open: st.Open}
	list := tr.OpenBugs()
	if state == "all" {
		list = tr.All()
	}
	for _, b := range list {
		if family != "" && b.Family != family {
			continue
		}
		out.Bugs = append(out.Bugs, BugJSON{
			ID:          b.ID,
			Signature:   b.Signature,
			Title:       b.Title,
			Family:      b.Family,
			Target:      b.Target,
			State:       b.State.String(),
			FiledAtSec:  b.FiledAt.Seconds(),
			FixedAtSec:  b.FixedAt.Seconds(),
			Occurrences: b.Occurrences,
			Reopens:     b.Reopens,
		})
	}
	if out.Bugs == nil {
		out.Bugs = []BugJSON{}
	}
	writeJSON(w, out)
}

// ---- status views ----------------------------------------------------------

// GridJSON is the wire form of GET /status/grid.
type GridJSON struct {
	Families  []string                           `json:"families"`
	Targets   []string                           `json:"targets"`
	OKRatePct float64                            `json:"ok_rate_pct"`
	Cells     map[string]map[string]GridCellJSON `json:"cells"`
}

// GridCellJSON is one grid entry.
type GridCellJSON struct {
	Result string  `json:"result"`
	Build  int     `json:"build"`
	AtSec  float64 `json:"at_sec"`
}

func (g *Gateway) handleStatusGrid(w http.ResponseWriter, r *http.Request) {
	if g.statusClient == nil {
		notConfigured(w, "status views")
		return
	}
	grid, err := g.statusClient.BuildGrid()
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	out := GridJSON{
		Families:  grid.Families,
		Targets:   grid.Targets,
		OKRatePct: 100 * grid.OKRate(),
		Cells:     make(map[string]map[string]GridCellJSON, len(grid.Cells)),
	}
	for fam, row := range grid.Cells {
		m := make(map[string]GridCellJSON, len(row))
		for tgt, st := range row {
			m[tgt] = GridCellJSON{Result: st.Result, Build: st.Build, AtSec: st.AtSec}
		}
		out.Cells[fam] = m
	}
	writeJSON(w, out)
}

// TrendJSON is the wire form of GET /status/trend.
type TrendJSON struct {
	BucketSec float64             `json:"bucket_sec"`
	Points    []status.TrendPoint `json:"points"`
}

func (g *Gateway) handleStatusTrend(w http.ResponseWriter, r *http.Request) {
	if g.statusClient == nil {
		notConfigured(w, "status views")
		return
	}
	bucket, err := floatParam(r.URL.Query().Get("bucket_sec"), 86400)
	if err != nil || bucket <= 0 {
		httpError(w, http.StatusBadRequest, "bad bucket_sec")
		return
	}
	builds, err := g.statusClient.AllBuilds()
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	points := status.Trend(builds, bucket)
	if points == nil {
		points = []status.TrendPoint{}
	}
	writeJSON(w, TrendJSON{BucketSec: bucket, Points: points})
}

// ---- small parsers ---------------------------------------------------------

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	// NaN slides past ordering checks (NaN <= x is always false) and Inf
	// breaks range arithmetic; both would corrupt downstream validation
	// and make json.Encode fail after the 200 status line went out.
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}
