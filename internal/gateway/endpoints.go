package gateway

// The OAR, monitoring, bug-tracker and status-view endpoints. Each handler
// follows the scatter-gather shape: parse parameters lock-free, snapshot
// the shard(s) involved under their own read gates, merge and write the
// answer outside any lock. On a single-shard gateway the "merge" is the
// identity and the wire shapes match the pre-federation gateway exactly.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/admit"
	"repro/internal/bugs"
	"repro/internal/ci"
	"repro/internal/intel"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/testbed"
)

// secondsToSim converts a wire-level seconds value to simulated time.
func secondsToSim(s float64) simclock.Time {
	return simclock.Time(s * float64(simclock.Second))
}

// ---- OAR -------------------------------------------------------------------

// OARResourcesJSON is the wire form of GET /oar/resources.
type OARResourcesJSON struct {
	Degraded *DegradedJSON      `json:"degraded,omitempty"`
	Summary  map[string]int     `json:"summary"`
	Nodes    []oar.ResourceInfo `json:"nodes"`
}

// shardDown reports whether a shard's site is lost to an active grid
// event — its routes answer 503 until heal. Label-less (monolithic) shards
// are never down.
func (g *Gateway) shardDown(s *shard) bool {
	return s.site != "" && !g.siteAvailable(s.site)
}

// oarShards returns the shards carrying an OAR server.
func (g *Gateway) oarShards() []*shard {
	return oarShardsOf(g.shards)
}

// oarShardsOf filters a shard set down to those carrying an OAR server.
func oarShardsOf(shards []*shard) []*shard {
	var out []*shard
	for _, s := range shards {
		if s.cfg.OAR != nil {
			out = append(out, s)
		}
	}
	return out
}

// resourcesScoped snapshots one shard's resource states under its gate.
func (s *shard) resourcesScoped(cluster, site string) []oar.ResourceInfo {
	var out []oar.ResourceInfo
	s.rlocked(func() { out = s.cfg.OAR.ResourcesIn(cluster, site) })
	return out
}

func (g *Gateway) handleOARResources(w http.ResponseWriter, r *http.Request) {
	g.serveOARResources(w, r, "")
}

// serveOARResources implements /oar/resources and its site-scoped variant
// (fixedSite != "" pins the site from the URL path).
func (g *Gateway) serveOARResources(w http.ResponseWriter, r *http.Request, fixedSite string) {
	shards := g.oarShards()
	if len(shards) == 0 {
		notConfigured(w, "oar")
		return
	}
	q := r.URL.Query()
	cluster := q.Get("cluster")
	site := fixedSite
	if site == "" {
		site = q.Get("site")
	}

	var nodes []oar.ResourceInfo
	var degraded *DegradedJSON
	switch {
	case site != "":
		ss := oarShardsOf(g.siteShards[site])
		if len(ss) == 0 {
			// The ?site= filter contract: unknown sites are a client error.
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown site %q", site))
			return
		}
		if g.shardDown(ss[0]) {
			siteUnavailable(w, site)
			return
		}
		// Micro-sharded sites concatenate their cluster shards in cluster
		// order — the same node order one whole-site shard would render.
		for _, s := range ss {
			nodes = append(nodes, s.resourcesScoped(cluster, site)...)
		}
		if cluster != "" && len(nodes) == 0 {
			httpError(w, http.StatusNotFound,
				fmt.Sprintf("no cluster %q at site %q", cluster, site))
			return
		}
	case cluster != "":
		s := g.shardForCluster(cluster)
		if s == nil || s.cfg.OAR == nil {
			httpError(w, http.StatusNotFound, fmt.Sprintf("no cluster %q", cluster))
			return
		}
		if g.shardDown(s) {
			siteUnavailable(w, s.site)
			return
		}
		nodes = s.resourcesScoped(cluster, "")
		if len(nodes) == 0 {
			httpError(w, http.StatusNotFound, fmt.Sprintf("no cluster %q", cluster))
			return
		}
	default:
		// Scatter-gather over the surviving shards, shard order (= site
		// order); lost shards are excluded and the marker says which.
		degraded = g.degradedMarker()
		for _, s := range g.availableShards(shards) {
			nodes = append(nodes, s.resourcesScoped("", "")...)
		}
	}
	summary := map[string]int{}
	for _, n := range nodes {
		summary[n.State]++
	}
	writeJSON(w, OARResourcesJSON{Degraded: degraded, Summary: summary, Nodes: nodes})
}

// OARJobsJSON is the wire form of GET /oar/jobs.
type OARJobsJSON struct {
	Degraded  *DegradedJSON `json:"degraded,omitempty"`
	Submitted int           `json:"submitted"`
	Started   int           `json:"started"`
	Canceled  int           `json:"canceled"`
	Jobs      []oar.JobInfo `json:"jobs"`
}

func parseLimit(r *http.Request) (int, error) {
	limit := 500
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad limit %q", q)
		}
		limit = v
	}
	return limit, nil
}

// jobsScoped snapshots one shard's job list and counters under its gate.
func (s *shard) jobsScoped(limit int) (jobs []oar.JobInfo, submitted, started, canceled int) {
	s.rlocked(func() {
		jobs = s.cfg.OAR.JobsInfo(limit)
		submitted, started, canceled = s.cfg.OAR.Stats()
	})
	return jobs, submitted, started, canceled
}

func (g *Gateway) handleOARJobs(w http.ResponseWriter, r *http.Request) {
	g.serveOARJobs(w, r, nil, "")
}

// serveOARJobs implements /oar/jobs; a non-nil only pins a site's shard
// set (the site-scoped route, with site naming the requested site) — one
// shard per cluster under micro-sharding, whose newest-first lists merge
// like the federated view's. When the pinned shard spans several sites
// (monolithic assembly), the job list is narrowed to jobs tied to the
// site — allocated there, or anchored there while waiting; the
// submitted/started/canceled counters stay shard-wide (OAR does not
// attribute submissions to sites).
func (g *Gateway) serveOARJobs(w http.ResponseWriter, r *http.Request, only []*shard, site string) {
	shards := g.oarShards()
	if only != nil {
		shards = oarShardsOf(only)
	}
	if len(shards) == 0 {
		notConfigured(w, "oar")
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	narrow := len(only) == 1 && shardSpansSites(only[0], site)
	var out OARJobsJSON
	if only == nil {
		out.Degraded = g.degradedMarker()
		shards = g.availableShards(shards)
	}
	for _, s := range shards {
		fetch := limit
		if narrow {
			fetch = 0 // filter first, truncate after
		}
		jobs, sub, st, can := s.jobsScoped(fetch)
		out.Jobs = append(out.Jobs, jobs...)
		out.Submitted += sub
		out.Started += st
		out.Canceled += can
	}
	if narrow {
		kept := out.Jobs[:0]
		for _, j := range out.Jobs {
			if jobTouchesSite(j, site, only[0].cfg.TB) {
				kept = append(kept, j)
			}
		}
		out.Jobs = kept
		if limit > 0 && len(out.Jobs) > limit {
			out.Jobs = out.Jobs[:limit]
		}
	}
	if len(shards) > 1 {
		// Merge the per-shard newest-first lists into one newest-first
		// view; ties on submission time keep shard order (stable sort).
		sort.SliceStable(out.Jobs, func(i, j int) bool {
			return out.Jobs[i].SubmittedAtSec > out.Jobs[j].SubmittedAtSec
		})
		if limit > 0 && len(out.Jobs) > limit {
			out.Jobs = out.Jobs[:limit]
		}
	}
	writeJSON(w, out)
}

// shardSpansSites reports whether a shard's testbed covers more than the
// named site — true only for monolithic assemblies, where site-scoped
// views must narrow explicitly.
func shardSpansSites(s *shard, site string) bool {
	return site != "" && s.cfg.TB != nil && len(s.cfg.TB.Sites) > 1
}

// jobTouchesSite reports whether a job is tied to the site: any allocated
// node lives there, or (still unallocated) a segment anchors there.
func jobTouchesSite(j oar.JobInfo, site string, tb *testbed.Testbed) bool {
	for _, name := range j.Nodes {
		if n := tb.Node(name); n != nil && n.Site == site {
			return true
		}
	}
	if len(j.Nodes) > 0 {
		return false
	}
	parsed, err := oar.ParseRequest(j.Request)
	if err != nil {
		return false
	}
	for _, seg := range parsed.Segments {
		key, val := seg.Anchor()
		switch key {
		case "site":
			if val == site {
				return true
			}
		case "cluster":
			if cl := tb.Cluster(val); cl != nil && cl.Site == site {
				return true
			}
		case "host":
			if n := tb.Node(val); n != nil && n.Site == site {
				return true
			}
		}
	}
	return false
}

// SubmitRequest is the body of POST /oar/submit.
type SubmitRequest struct {
	Request string `json:"request"`
	User    string `json:"user,omitempty"`
	// DryRun probes whether the request could start right now
	// (oar.Server.CanStartNow — what the external scheduler asks before
	// every trigger) without enqueuing anything.
	DryRun bool `json:"dry_run,omitempty"`
}

// SubmitResponse is the reply of POST /oar/submit.
type SubmitResponse struct {
	Site        string       `json:"site,omitempty"` // shard that took the job (federated)
	CanStartNow *bool        `json:"can_start_now,omitempty"`
	Job         *oar.JobInfo `json:"job,omitempty"`
	// Admission marks a submission routed through the grid admission layer
	// (placed | queued | shed); Reservation and RetryAfterSec carry the
	// queued and shed details respectively.
	Admission     string                 `json:"admission,omitempty"`
	Reservation   *admit.ReservationJSON `json:"reservation,omitempty"`
	RetryAfterSec int                    `json:"retry_after_sec,omitempty"`
}

// hasUnanchoredSegment reports whether any segment of the request carries
// no site/cluster/host anchor; hasAnchoredSegment, whether any does.
func hasUnanchoredSegment(req oar.Request) bool {
	for _, seg := range req.Segments {
		if key, _ := seg.Anchor(); key == "" {
			return true
		}
	}
	return false
}

func hasAnchoredSegment(req oar.Request) bool {
	for _, seg := range req.Segments {
		if key, _ := seg.Anchor(); key != "" {
			return true
		}
	}
	return false
}

// resolveOARRequest routes a parsed resource request to the single site
// owning every anchored site/cluster/host — and, when cluster or host
// anchors name one, the specific shard. A nil shard with a non-empty site
// means only site-level anchors resolved (micro-sharding: the caller
// probes the site's cluster shards). Unanchored segments are skipped here
// — the caller pins them to the resolved site (mixed requests) or routes
// the whole request through the admission layer (fully unanchored).
func (g *Gateway) resolveOARRequest(req oar.Request) (string, *shard, error) {
	var site string
	var target *shard
	for i, seg := range req.Segments {
		key, val := seg.Anchor()
		var s *shard
		var owner string
		switch key {
		case "cluster":
			if s = g.shardForCluster(val); s != nil {
				owner = s.site
			}
		case "site":
			if len(g.siteShards[val]) > 0 {
				owner = val
			}
		case "host":
			if s = g.shardForNode(val); s != nil {
				owner = s.site
			}
		default:
			continue
		}
		if owner == "" {
			return "", nil, fmt.Errorf("federated submit: segment %d anchors to unknown %s %q", i+1, key, val)
		}
		if site != "" && owner != site {
			return "", nil, fmt.Errorf("federated submit: request spans more than one site")
		}
		site = owner
		if s != nil {
			if target != nil && s != target {
				return "", nil, fmt.Errorf("federated submit: request spans more than one cluster shard of site %q", site)
			}
			target = s
		}
	}
	if site == "" {
		return "", nil, fmt.Errorf("federated submit: no segment is anchored to a site, cluster or host (admission not enabled)")
	}
	if target != nil && target.cfg.OAR == nil {
		return "", nil, fmt.Errorf("federated submit: no shard serves this request")
	}
	return site, target, nil
}

// clusterShardIn returns the shard in the set whose testbed owns the named
// cluster at the site, or nil.
func clusterShardIn(shards []*shard, name, site string) *shard {
	for _, s := range shards {
		if s.cfg.TB == nil {
			continue
		}
		if cl := s.cfg.TB.Cluster(name); cl != nil && cl.Site == site {
			return s
		}
	}
	return nil
}

// nodeShardIn returns the shard in the set whose testbed owns the named
// node at the site, or nil.
func nodeShardIn(shards []*shard, name, site string) *shard {
	for _, s := range shards {
		if s.cfg.TB == nil {
			continue
		}
		if n := s.cfg.TB.Node(name); n != nil && n.Site == site {
			return s
		}
	}
	return nil
}

// shardsHaveTB reports whether any shard in the set carries a testbed
// (partial assemblies without one skip anchor validation, like the
// pre-federation gateway did).
func shardsHaveTB(shards []*shard) bool {
	for _, s := range shards {
		if s.cfg.TB != nil {
			return true
		}
	}
	return false
}

// pickSiteShard resolves which of a site's shards takes a site-scoped (or
// site-resolved) submission when no cluster/host anchor named one:
// the shards are probed in cluster order for one that could start the
// pinned request now, falling back to the coordinator, which queues it.
func pickSiteShard(shards []*shard, pinned oar.Request) *shard {
	if len(shards) == 1 {
		return shards[0]
	}
	for _, s := range shards {
		ok := false
		s.rlocked(func() { ok = s.cfg.OAR.CanStartNowReq(pinned) })
		if ok {
			return s
		}
	}
	return shards[0]
}

func (g *Gateway) handleOARSubmit(w http.ResponseWriter, r *http.Request) {
	g.serveOARSubmit(w, r, nil, "")
}

// anchorsWithinSite verifies that every anchored segment of a request
// falls inside the named site, against the site's shard set (a cluster or
// host is at the site when any of its shards owns it, which under
// micro-sharding is exactly one). Unanchored segments pass — the caller
// pins them with Request.PinnedToSite.
func anchorsWithinSite(req oar.Request, site string, shards []*shard) error {
	hasTB := shardsHaveTB(shards)
	for i, seg := range req.Segments {
		key, val := seg.Anchor()
		switch key {
		case "site":
			if val != site {
				return fmt.Errorf("segment %d anchors to site %q, not %q", i+1, val, site)
			}
		case "cluster":
			if hasTB && clusterShardIn(shards, val, site) == nil {
				return fmt.Errorf("segment %d anchors to cluster %q, which is not at site %q", i+1, val, site)
			}
		case "host":
			if hasTB && nodeShardIn(shards, val, site) == nil {
				return fmt.Errorf("segment %d anchors to host %q, which is not at site %q", i+1, val, site)
			}
		}
	}
	return nil
}

// serveOARSubmit implements POST /oar/submit; a non-nil only pins a
// site's shard set (the site-scoped route, with site naming the requested
// site). Site-scoped submissions are validated against the site — anchors
// elsewhere are 400 — and unanchored segments are pinned to it, so
// /sites/X/oar/submit can never allocate outside X, monolithic or not.
// Under micro-sharding, cluster and host anchors name the owning cluster
// shard (a request cannot span two — each shard is its own OAR); without
// one, the site's shards are probed in cluster order and the coordinator
// queues what nothing can start.
func (g *Gateway) serveOARSubmit(w http.ResponseWriter, r *http.Request, only []*shard, site string) {
	shards := g.oarShards()
	siteSet := only
	if only != nil {
		siteSet = oarShardsOf(only)
	}
	if len(shards) == 0 || (only != nil && len(siteSet) == 0) {
		notConfigured(w, "oar")
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if req.Request == "" {
		httpError(w, http.StatusBadRequest, "missing request")
		return
	}
	var target *shard
	var pinned *oar.Request
	if only != nil {
		parsed, err := oar.ParseRequest(req.Request)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := anchorsWithinSite(parsed, site, siteSet); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		p := parsed.PinnedToSite(site)
		pinned = &p
		if len(siteSet) > 1 && shardsHaveTB(siteSet) {
			for _, seg := range parsed.Segments {
				key, val := seg.Anchor()
				var s *shard
				switch key {
				case "cluster":
					s = clusterShardIn(siteSet, val, site)
				case "host":
					s = nodeShardIn(siteSet, val, site)
				default:
					continue
				}
				if s == nil {
					continue // vetted above; nil only for TB-less shards
				}
				if target != nil && s != target {
					httpError(w, http.StatusBadRequest,
						fmt.Sprintf("request spans more than one cluster shard of site %q", site))
					return
				}
				target = s
			}
		}
		if target == nil {
			target = pickSiteShard(siteSet, p)
		}
	} else if len(shards) == 1 {
		target = shards[0]
	} else {
		parsed, err := oar.ParseRequest(req.Request)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if g.admission != nil && !hasAnchoredSegment(parsed) {
			// Nothing names a site: the grid admission layer picks one
			// (or queues / sheds). See admission.go.
			g.serveAdmission(w, req, parsed)
			return
		}
		targetSite, anchored, err := g.resolveOARRequest(parsed)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		target = anchored
		if target == nil || hasUnanchoredSegment(parsed) {
			// The anchored segments resolved only the site (or left some
			// segments floating): pin the request to it so the whole thing
			// lands there.
			p := parsed.PinnedToSite(targetSite)
			pinned = &p
		}
		if target == nil {
			// Site-level anchors under micro-sharding: pick a cluster shard.
			ss := oarShardsOf(g.siteShards[targetSite])
			if len(ss) == 0 {
				httpError(w, http.StatusBadRequest, "federated submit: no shard serves this request")
				return
			}
			if !g.siteAvailable(targetSite) {
				siteUnavailable(w, targetSite)
				return
			}
			target = pickSiteShard(ss, *pinned)
		}
	}
	if g.shardDown(target) {
		// Submissions routed to a lost site cannot enqueue anywhere; the
		// client retries after heal.
		siteUnavailable(w, target.site)
		return
	}
	srv := target.cfg.OAR
	respSite := site
	if respSite == "" && g.federated() {
		respSite = target.site
	}
	if req.DryRun {
		var ok bool
		var err error
		target.rlocked(func() {
			if pinned != nil {
				ok = srv.CanStartNowReq(*pinned)
			} else {
				ok, err = srv.CanStartNow(req.Request)
			}
		})
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, SubmitResponse{Site: respSite, CanStartNow: &ok})
		return
	}
	user := req.User
	if user == "" {
		user = "api"
	}
	var info oar.JobInfo
	var submitErr error
	target.rlocked(func() {
		var j *oar.Job
		if pinned != nil {
			j = srv.SubmitReq(*pinned, oar.SubmitOptions{User: user})
		} else {
			var err error
			j, err = srv.Submit(req.Request, oar.SubmitOptions{User: user})
			if err != nil {
				submitErr = err
				return
			}
		}
		info, _ = srv.JobInfoByID(j.ID)
	})
	if submitErr != nil {
		httpError(w, http.StatusBadRequest, submitErr.Error())
		return
	}
	writeJSONStatus(w, http.StatusCreated, SubmitResponse{Site: respSite, Job: &info})
}

// ---- monitoring ------------------------------------------------------------

// MonitorJSON is the wire form of GET /monitor/metrics.
type MonitorJSON struct {
	Metric  string       `json:"metric"`
	Node    string       `json:"node"`
	Site    string       `json:"site,omitempty"`
	FromSec float64      `json:"from_sec"`
	ToSec   float64      `json:"to_sec"`
	Mean    float64      `json:"mean"`
	Samples []SampleJSON `json:"samples"`
}

// SampleJSON is one measurement with the timestamp in seconds.
type SampleJSON struct {
	TSec float64 `json:"t_sec"`
	V    float64 `json:"v"`
}

func (g *Gateway) handleMonitorMetrics(w http.ResponseWriter, r *http.Request) {
	g.serveMonitorMetrics(w, r, "")
}

// serveMonitorMetrics implements /monitor/metrics and its site-scoped
// variant. The ?site= filter (or the path site) must name a known site —
// unknown sites are 400 — and the queried node must live there.
func (g *Gateway) serveMonitorMetrics(w http.ResponseWriter, r *http.Request, fixedSite string) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		metric = monitor.MetricPowerW
	}
	switch metric {
	case monitor.MetricPowerW, monitor.MetricCPULoad, monitor.MetricNetMbps:
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown metric %q", metric))
		return
	}
	node := q.Get("node")
	if node == "" {
		httpError(w, http.StatusBadRequest, "missing node")
		return
	}
	site := fixedSite
	if site == "" {
		site = q.Get("site")
	}
	var s *shard
	if site != "" {
		ss := g.siteShards[site]
		if len(ss) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown site %q", site))
			return
		}
		if !shardsHaveTB(ss) {
			s = ss[0]
		} else if s = nodeShardIn(ss, node, site); s == nil {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("node %q is not at site %q", node, site))
			return
		}
	} else if s = g.shardForNode(node); s == nil {
		if g.federated() || g.shards[0].cfg.TB != nil {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown node %q", node))
			return
		}
		// Partial assembly without a testbed: skip node validation, like
		// the pre-federation gateway did.
		s = g.shards[0]
	}
	if g.shardDown(s) {
		siteUnavailable(w, s.site)
		return
	}
	col := s.cfg.Monitor
	if col == nil || s.cfg.Clock == nil {
		notConfigured(w, "monitoring")
		return
	}
	now := s.cfg.Clock.Now().Seconds()
	defFrom := now - 60
	if defFrom < 0 {
		defFrom = 0 // a campaign younger than the default window
	}
	from, err := floatParam(q.Get("from_sec"), defFrom)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := floatParam(q.Get("to_sec"), now)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if from < 0 || to < from {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad range %g..%g", from, to))
		return
	}
	fromT := secondsToSim(from)
	toT := secondsToSim(to)

	// The collector shares the shard campaign's RNG on flaky-kwapi rolls;
	// serialize queries per shard so concurrent scrapes never race on it.
	var samples []monitor.Sample
	var qerr error
	s.rlocked(func() {
		s.monMu.Lock()
		samples, qerr = col.Query(metric, node, fromT, toT)
		s.monMu.Unlock()
	})
	if qerr != nil {
		// Inputs were validated above; what remains is the monitoring
		// service itself failing (the paper's flaky kwapi).
		httpError(w, http.StatusBadGateway, qerr.Error())
		return
	}
	out := MonitorJSON{
		Metric:  metric,
		Node:    node,
		Site:    site,
		FromSec: from,
		ToSec:   to,
		Mean:    monitor.Mean(samples),
		Samples: make([]SampleJSON, len(samples)),
	}
	for i, smp := range samples {
		out.Samples[i] = SampleJSON{TSec: smp.T.Seconds(), V: smp.V}
	}
	writeJSON(w, out)
}

// ---- bugs ------------------------------------------------------------------

// BugJSON is the wire form of one bug report.
type BugJSON struct {
	ID          int     `json:"id"`
	Site        string  `json:"site,omitempty"` // owning shard (federated)
	Signature   string  `json:"signature"`
	Title       string  `json:"title,omitempty"`
	Family      string  `json:"family,omitempty"`
	Target      string  `json:"target,omitempty"`
	State       string  `json:"state"`
	FiledAtSec  float64 `json:"filed_at_sec"`
	FixedAtSec  float64 `json:"fixed_at_sec,omitempty"`
	Occurrences int     `json:"occurrences"`
	Reopens     int     `json:"reopens,omitempty"`
}

// BugsJSON is the wire form of GET /bugs.
type BugsJSON struct {
	Degraded *DegradedJSON `json:"degraded,omitempty"`
	Filed    int           `json:"filed"`
	Fixed    int           `json:"fixed"`
	Open     int           `json:"open"`
	Bugs     []BugJSON     `json:"bugs"`
}

// bugShards returns the shards carrying a bug tracker.
func (g *Gateway) bugShards() []*shard {
	var out []*shard
	for _, s := range g.shards {
		if s.cfg.Bugs != nil {
			out = append(out, s)
		}
	}
	return out
}

// parseBugState validates the ?state= filter (open unless given).
func parseBugState(r *http.Request) (string, error) {
	state := r.URL.Query().Get("state")
	if state == "" {
		state = "open"
	}
	if state != "open" && state != "all" {
		return "", fmt.Errorf("bad state %q (open|all)", state)
	}
	return state, nil
}

func (g *Gateway) handleBugs(w http.ResponseWriter, r *http.Request) {
	shards := g.bugShards()
	if len(shards) == 0 {
		notConfigured(w, "bug tracker")
		return
	}
	state, err := parseBugState(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	family := r.URL.Query().Get("family")
	var out BugsJSON
	out.Degraded = g.degradedMarker()
	for _, s := range g.availableShards(shards) {
		site := ""
		if g.federated() {
			site = s.site
		}
		s.rlocked(func() {
			tr := s.cfg.Bugs
			st := tr.Stats()
			out.Filed += st.Filed
			out.Fixed += st.Fixed
			out.Open += st.Open
			list := tr.OpenBugs()
			if state == "all" {
				list = tr.All()
			}
			for _, b := range list {
				if family != "" && b.Family != family {
					continue
				}
				out.Bugs = append(out.Bugs, BugJSON{
					ID:          b.ID,
					Site:        site,
					Signature:   b.Signature,
					Title:       b.Title,
					Family:      b.Family,
					Target:      b.Target,
					State:       b.State.String(),
					FiledAtSec:  b.FiledAt.Seconds(),
					FixedAtSec:  b.FixedAt.Seconds(),
					Occurrences: b.Occurrences,
					Reopens:     b.Reopens,
				})
			}
		})
	}
	if out.Bugs == nil {
		out.Bugs = []BugJSON{}
	}
	writeJSON(w, out)
}

// BugRollupJSON is one row of GET /bugs/rollup: every ticket sharing a
// signature across the surviving shards, folded into one root cause.
type BugRollupJSON struct {
	Signature       string   `json:"signature"`
	Title           string   `json:"title,omitempty"`
	Family          string   `json:"family,omitempty"`
	Sites           []string `json:"sites"`
	Tickets         int      `json:"tickets"`
	Open            int      `json:"open"`
	Occurrences     int      `json:"occurrences"`
	FirstFiledAtSec float64  `json:"first_filed_at_sec"`
}

// BugsRollupJSON is the wire form of GET /bugs/rollup.
type BugsRollupJSON struct {
	Degraded *DegradedJSON   `json:"degraded,omitempty"`
	Count    int             `json:"count"`
	Rollup   []BugRollupJSON `json:"rollup"`
}

// handleBugsRollup serves the cross-site rollup: a site outage files one
// ticket per surviving shard; this view folds such bursts back into one row
// per signature, widest burst first. The ETag is the joined per-site
// tracker version vector (every File and Fix bumps it), read in the same
// gated pass as the ticket lists — so a matching conditional request means
// the cached body is exactly current, and a 304 costs no rollup at all.
func (g *Gateway) handleBugsRollup(w http.ResponseWriter, r *http.Request) {
	if len(g.trackers) == 0 {
		notConfigured(w, "bug tracker")
		return
	}
	state, err := parseBugState(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	degraded := g.degradedMarker()
	snaps := intel.SnapshotTrackers(g.liveTrackers(excludedSites(degraded)))
	key := "br" + intel.VersionKey64(snaps) + "|" + state + downSetKey(degraded)
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.intelMu.Lock()
	body := g.rollupBody
	hit := g.rollupKey == key && body != nil
	g.intelMu.Unlock()
	if !hit {
		out := BugsRollupJSON{Degraded: degraded, Rollup: []BugRollupJSON{}}
		for _, e := range bugs.RollupSorted(rollupFromSnapshots(snaps, state)) {
			out.Rollup = append(out.Rollup, BugRollupJSON{
				Signature:       e.Signature,
				Title:           e.Title,
				Family:          e.Family,
				Sites:           e.Sites,
				Tickets:         e.Tickets,
				Open:            e.Open,
				Occurrences:     e.Occurrences,
				FirstFiledAtSec: e.FirstFiledAt.Seconds(),
			})
		}
		out.Count = len(out.Rollup)
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.intelMu.Lock()
		g.rollupKey, g.rollupBody = key, body
		g.intelMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// ---- status views ----------------------------------------------------------

// GridJSON is the wire form of GET /status/grid.
type GridJSON struct {
	Degraded  *DegradedJSON                      `json:"degraded,omitempty"`
	Families  []string                           `json:"families"`
	Targets   []string                           `json:"targets"`
	OKRatePct float64                            `json:"ok_rate_pct"`
	Cells     map[string]map[string]GridCellJSON `json:"cells"`
}

// GridCellJSON is one grid entry.
type GridCellJSON struct {
	Result string  `json:"result"`
	Build  int     `json:"build"`
	AtSec  float64 `json:"at_sec"`
}

// statusShards returns the shards with a status client.
func (g *Gateway) statusShards() []*shard {
	var out []*shard
	for _, s := range g.shards {
		if s.statusClient != nil {
			out = append(out, s)
		}
	}
	return out
}

func (g *Gateway) handleStatusGrid(w http.ResponseWriter, r *http.Request) {
	shards := g.statusShards()
	if len(shards) == 0 {
		notConfigured(w, "status views")
		return
	}
	// Scatter: one grid per surviving shard, each under its own gate;
	// gather into a merged grid. Family/target spaces are disjoint across
	// shards (each site owns its clusters), so the merge is a union.
	degraded := g.degradedMarker()
	merged := &status.Grid{Cells: map[string]map[string]status.CellStatus{}}
	famSet := map[string]bool{}
	tgtSet := map[string]bool{}
	for _, s := range g.availableShards(shards) {
		var grid *status.Grid
		var err error
		s.rlocked(func() { grid, err = s.statusClient.BuildGrid() })
		if err != nil {
			httpError(w, http.StatusBadGateway, err.Error())
			return
		}
		for fam, row := range grid.Cells {
			famSet[fam] = true
			m := merged.Cells[fam]
			if m == nil {
				m = map[string]status.CellStatus{}
				merged.Cells[fam] = m
			}
			for tgt, st := range row {
				tgtSet[tgt] = true
				if prev, ok := m[tgt]; !ok || st.AtSec > prev.AtSec {
					m[tgt] = st
				}
			}
		}
	}
	for fam := range famSet {
		merged.Families = append(merged.Families, fam)
	}
	for tgt := range tgtSet {
		merged.Targets = append(merged.Targets, tgt)
	}
	sort.Strings(merged.Families)
	sort.Strings(merged.Targets)

	out := GridJSON{
		Degraded:  degraded,
		Families:  merged.Families,
		Targets:   merged.Targets,
		OKRatePct: 100 * merged.OKRate(),
		Cells:     make(map[string]map[string]GridCellJSON, len(merged.Cells)),
	}
	for fam, row := range merged.Cells {
		m := make(map[string]GridCellJSON, len(row))
		for tgt, st := range row {
			m[tgt] = GridCellJSON{Result: st.Result, Build: st.Build, AtSec: st.AtSec}
		}
		out.Cells[fam] = m
	}
	writeJSON(w, out)
}

// TrendJSON is the wire form of GET /status/trend.
type TrendJSON struct {
	Degraded  *DegradedJSON       `json:"degraded,omitempty"`
	BucketSec float64             `json:"bucket_sec"`
	Points    []status.TrendPoint `json:"points"`
}

func (g *Gateway) handleStatusTrend(w http.ResponseWriter, r *http.Request) {
	shards := g.statusShards()
	if len(shards) == 0 {
		notConfigured(w, "status views")
		return
	}
	bucket, err := floatParam(r.URL.Query().Get("bucket_sec"), 86400)
	if err != nil || bucket <= 0 {
		httpError(w, http.StatusBadRequest, "bad bucket_sec")
		return
	}
	degraded := g.degradedMarker()
	var builds []ci.BuildJSON
	for _, s := range g.availableShards(shards) {
		var part []ci.BuildJSON
		var gerr error
		s.rlocked(func() { part, gerr = s.statusClient.AllBuilds() })
		if gerr != nil {
			httpError(w, http.StatusBadGateway, gerr.Error())
			return
		}
		builds = append(builds, part...)
	}
	points := status.Trend(builds, bucket)
	if points == nil {
		points = []status.TrendPoint{}
	}
	writeJSON(w, TrendJSON{Degraded: degraded, BucketSec: bucket, Points: points})
}

// ---- small parsers ---------------------------------------------------------

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	// NaN slides past ordering checks (NaN <= x is always false) and Inf
	// breaks range arithmetic; both would corrupt downstream validation
	// and make json.Encode fail after the 200 status line went out.
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}
