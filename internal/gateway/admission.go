package gateway

// The gateway side of the grid admission layer (internal/admit): each OAR
// shard is adapted to an admit.Backend whose probes and placements run
// under the shard's own read gate, unanchored federated submissions route
// through the controller instead of failing, and GET /admit/queue exposes
// the queue. The admission pump runs after every campaign advance and —
// via the federation's grid listener — after every chaos transition, so a
// site outage fails queued reservations fast instead of letting them sit
// out their deadlines.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/admit"
	"repro/internal/oar"
)

// siteBackend adapts one site's shard set to the admission controller's
// placement surface — the site is the admission unit even when carved into
// per-cluster micro-shards. All OAR access happens under the owning
// shard's read gate, so probes never block another shard's barrier ticks.
type siteBackend struct {
	g      *Gateway
	site   string
	shards []*shard
}

func (b *siteBackend) Site() string { return b.site }

// Available reports whether placement may consider the site: down sites
// are out, and so are partition-isolated ones — a job placed on a shard
// the merge plane cannot reach would vanish from every federated view.
func (b *siteBackend) Available() bool {
	if !b.g.siteAvailable(b.site) {
		return false
	}
	if b.g.chaos != nil {
		for _, site := range b.g.chaos.UnreachableSites() {
			if site == b.site {
				return false
			}
		}
	}
	return true
}

// Capacity sums over the site's shards — the admission layer balances
// against site-level load, never a single cluster's.
func (b *siteBackend) Capacity() (busy, total int) {
	for _, s := range b.shards {
		s.rlocked(func() {
			busy += s.cfg.OAR.BusyNodes()
			if s.cfg.TB != nil {
				total += s.cfg.TB.TotalNodes()
			}
		})
	}
	return busy, total
}

// CanPlace probes the site's shards in cluster order: any one that could
// start the pinned request now admits the site.
func (b *siteBackend) CanPlace(req oar.Request) bool {
	pinned := req.PinnedToSite(b.site)
	for _, s := range b.shards {
		var ok bool
		s.rlocked(func() { ok = s.cfg.OAR.CanStartNowReq(pinned) })
		if ok {
			return true
		}
	}
	return false
}

// Place submits on the first shard that can start the request now, falling
// back to the coordinator, which queues it.
func (b *siteBackend) Place(req oar.Request, user string) (oar.JobInfo, error) {
	if !b.Available() {
		return oar.JobInfo{}, fmt.Errorf("site %s is not accepting submissions", b.site)
	}
	pinned := req.PinnedToSite(b.site)
	target := pickSiteShard(b.shards, pinned)
	var info oar.JobInfo
	target.rlocked(func() {
		j := target.cfg.OAR.SubmitReq(pinned, oar.SubmitOptions{User: user})
		info, _ = target.cfg.OAR.JobInfoByID(j.ID)
	})
	return info, nil
}

// parallelScatter fans the probe thunks out on one goroutine each and waits
// for all of them — the live-serving default. Each thunk writes only its
// own result slot and placement is a pure function of the gathered slots,
// so this is bit-identical to running them serially (E19's gate).
func parallelScatter(tasks []func()) {
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		go func() {
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}

// EnableAdmission builds the admission controller over every site with at
// least one site-labeled OAR shard (micro-shards group under their site).
// cfg.Now is required; a nil cfg.Scatter gets the parallel fan-out (pass a
// serial func to force serial probing, as the determinism gate does).
// No-op when no site qualifies — monolithic gateways keep their
// pre-admission behavior.
func (g *Gateway) EnableAdmission(cfg admit.Config) {
	var backends []admit.Backend
	for _, site := range g.sites {
		if site == "" {
			continue
		}
		var shards []*shard
		for _, s := range g.siteShards[site] {
			if s.site == site && s.cfg.OAR != nil {
				shards = append(shards, s)
			}
		}
		if len(shards) == 0 {
			continue
		}
		backends = append(backends, &siteBackend{g: g, site: site, shards: shards})
	}
	if len(backends) == 0 {
		return
	}
	if cfg.Scatter == nil {
		cfg.Scatter = parallelScatter
	}
	g.admission = admit.New(cfg, backends)
}

// Admission returns the admission controller, or nil when not enabled.
func (g *Gateway) Admission() *admit.Controller { return g.admission }

// pumpAdmission drains what the reservation queue can place right now.
// Wired to every campaign advance and, through the federation's grid
// listener, to every chaos inject/heal.
func (g *Gateway) pumpAdmission() {
	if g.admission != nil {
		g.admission.Pump()
	}
}

func (g *Gateway) handleAdmitQueue(w http.ResponseWriter, r *http.Request) {
	if g.admission == nil {
		notConfigured(w, "admission")
		return
	}
	writeJSON(w, g.admission.Queue())
}

// serveAdmission routes a fully-unanchored federated submission through the
// admission controller: 201 placed on the least-loaded startable site, 202
// with a reservation when nothing can start it now, 429 + Retry-After when
// the queue is full. Dry runs probe without admitting.
func (g *Gateway) serveAdmission(w http.ResponseWriter, req SubmitRequest, parsed oar.Request) {
	if req.DryRun {
		site, ok := g.admission.Probe(parsed)
		writeJSON(w, SubmitResponse{Site: site, CanStartNow: &ok})
		return
	}
	user := req.User
	if user == "" {
		user = "api"
	}
	out := g.admission.Admit(parsed, user)
	switch out.Status {
	case admit.Placed:
		job := out.Job
		writeJSONStatus(w, http.StatusCreated, SubmitResponse{
			Site: out.Site, Job: &job, Admission: string(admit.Placed),
		})
	case admit.Queued:
		res := out.Reservation
		writeJSONStatus(w, http.StatusAccepted, SubmitResponse{
			Admission: string(admit.Queued), Reservation: &res,
		})
	default: // admit.Shed
		w.Header().Set("Retry-After", strconv.Itoa(out.RetryAfterSec))
		writeJSONStatus(w, http.StatusTooManyRequests, SubmitResponse{
			Admission: string(admit.Shed), RetryAfterSec: out.RetryAfterSec,
		})
	}
}
