package gateway

// The gateway side of the grid admission layer (internal/admit): each OAR
// shard is adapted to an admit.Backend whose probes and placements run
// under the shard's own read gate, unanchored federated submissions route
// through the controller instead of failing, and GET /admit/queue exposes
// the queue. The admission pump runs after every campaign advance and —
// via the federation's grid listener — after every chaos transition, so a
// site outage fails queued reservations fast instead of letting them sit
// out their deadlines.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/admit"
	"repro/internal/oar"
)

// shardBackend adapts one gateway shard to the admission controller's
// placement surface. All OAR access happens under the shard's read gate,
// so probes never block another site's barrier ticks.
type shardBackend struct {
	g *Gateway
	s *shard
}

func (b *shardBackend) Site() string { return b.s.site }

// Available reports whether placement may consider the site: down sites
// are out, and so are partition-isolated ones — a job placed on a shard
// the merge plane cannot reach would vanish from every federated view.
func (b *shardBackend) Available() bool {
	if !b.g.siteAvailable(b.s.site) {
		return false
	}
	if b.g.chaos != nil {
		for _, site := range b.g.chaos.UnreachableSites() {
			if site == b.s.site {
				return false
			}
		}
	}
	return true
}

func (b *shardBackend) Capacity() (busy, total int) {
	b.s.rlocked(func() {
		busy = b.s.cfg.OAR.BusyNodes()
		if b.s.cfg.TB != nil {
			total = b.s.cfg.TB.TotalNodes()
		}
	})
	return busy, total
}

func (b *shardBackend) CanPlace(req oar.Request) bool {
	pinned := req.PinnedToSite(b.s.site)
	var ok bool
	b.s.rlocked(func() { ok = b.s.cfg.OAR.CanStartNowReq(pinned) })
	return ok
}

func (b *shardBackend) Place(req oar.Request, user string) (oar.JobInfo, error) {
	if !b.Available() {
		return oar.JobInfo{}, fmt.Errorf("site %s is not accepting submissions", b.s.site)
	}
	pinned := req.PinnedToSite(b.s.site)
	var info oar.JobInfo
	b.s.rlocked(func() {
		j := b.s.cfg.OAR.SubmitReq(pinned, oar.SubmitOptions{User: user})
		info, _ = b.s.cfg.OAR.JobInfoByID(j.ID)
	})
	return info, nil
}

// parallelScatter fans the probe thunks out on one goroutine each and waits
// for all of them — the live-serving default. Each thunk writes only its
// own result slot and placement is a pure function of the gathered slots,
// so this is bit-identical to running them serially (E19's gate).
func parallelScatter(tasks []func()) {
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		go func() {
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}

// EnableAdmission builds the admission controller over every site-labeled
// OAR shard. cfg.Now is required; a nil cfg.Scatter gets the parallel
// fan-out (pass a serial func to force serial probing, as the determinism
// gate does). No-op when no shard qualifies — monolithic gateways keep
// their pre-admission behavior.
func (g *Gateway) EnableAdmission(cfg admit.Config) {
	var backends []admit.Backend
	for _, s := range g.oarShards() {
		if s.site == "" {
			continue
		}
		backends = append(backends, &shardBackend{g: g, s: s})
	}
	if len(backends) == 0 {
		return
	}
	if cfg.Scatter == nil {
		cfg.Scatter = parallelScatter
	}
	g.admission = admit.New(cfg, backends)
}

// Admission returns the admission controller, or nil when not enabled.
func (g *Gateway) Admission() *admit.Controller { return g.admission }

// pumpAdmission drains what the reservation queue can place right now.
// Wired to every campaign advance and, through the federation's grid
// listener, to every chaos inject/heal.
func (g *Gateway) pumpAdmission() {
	if g.admission != nil {
		g.admission.Pump()
	}
}

func (g *Gateway) handleAdmitQueue(w http.ResponseWriter, r *http.Request) {
	if g.admission == nil {
		notConfigured(w, "admission")
		return
	}
	writeJSON(w, g.admission.Queue())
}

// serveAdmission routes a fully-unanchored federated submission through the
// admission controller: 201 placed on the least-loaded startable site, 202
// with a reservation when nothing can start it now, 429 + Retry-After when
// the queue is full. Dry runs probe without admitting.
func (g *Gateway) serveAdmission(w http.ResponseWriter, req SubmitRequest, parsed oar.Request) {
	if req.DryRun {
		site, ok := g.admission.Probe(parsed)
		writeJSON(w, SubmitResponse{Site: site, CanStartNow: &ok})
		return
	}
	user := req.User
	if user == "" {
		user = "api"
	}
	out := g.admission.Admit(parsed, user)
	switch out.Status {
	case admit.Placed:
		job := out.Job
		writeJSONStatus(w, http.StatusCreated, SubmitResponse{
			Site: out.Site, Job: &job, Admission: string(admit.Placed),
		})
	case admit.Queued:
		res := out.Reservation
		writeJSONStatus(w, http.StatusAccepted, SubmitResponse{
			Admission: string(admit.Queued), Reservation: &res,
		})
	default: // admit.Shed
		w.Header().Set("Retry-After", strconv.Itoa(out.RetryAfterSec))
		writeJSONStatus(w, http.StatusTooManyRequests, SubmitResponse{
			Admission: string(admit.Shed), RetryAfterSec: out.RetryAfterSec,
		})
	}
}
