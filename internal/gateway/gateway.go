// Package gateway is the testbed's unified HTTP front door: one
// http.Handler mounting read-optimized JSON endpoints over every subsystem
// of a campaign — OAR's resource manager, the Reference API, monitoring,
// the bug tracker, the status page views and the CI server's own REST API.
//
// On the real Grid'5000 these are separate REST services (the OAR API, the
// Reference API, Jenkins' JSON API) that operators, dashboards and scripts
// hammer constantly; here they share one mux so a single campaign can be
// served, scraped and load-tested as a production system
// (internal/loadgen drives exactly that).
//
// Endpoints (all JSON):
//
//	GET  /                 endpoint index
//	GET  /oar/resources    node allocation states (?cluster=X narrows)
//	GET  /oar/jobs         recent jobs, newest first (?limit=N, 0 = all)
//	POST /oar/submit       submit a resource request (or dry-run probe)
//	GET  /ref/inventory    testbed description (?version=N; ETag/304)
//	GET  /ref/diff         drift between two versions (?from=&to=; ETag/304)
//	GET  /monitor/metrics  1 Hz samples (?metric=&node=&from_sec=&to_sec=)
//	GET  /bugs             bug reports (?state=open|all, ?family=F)
//	GET  /status/grid      family × target status matrix
//	GET  /status/trend     historical success rate (?bucket_sec=S)
//	GET  /metrics          per-endpoint request/error/latency counters
//	     /ci/...           the CI REST API, proxied to ci.Handler
//
// Concurrency: request handlers hold the read side of one RWMutex and any
// number of them run in parallel; Advance — which steps the simulated
// campaign — holds the write side, so no request ever observes the
// simulation mid-event. Subsystems guard their own state with their own
// mutexes; the gate only serializes requests against campaign progress.
// Monitoring queries additionally share one mutex because a flaky-kwapi
// site draws from the campaign's RNG, which is single-threaded.
//
// The /ref endpoints are read-optimized: responses carry a strong ETag
// derived from the store's version counter, conditional requests short-cut
// to 304 before any snapshot is materialized or marshaled, and rendered
// bodies are cached per version — hot reads cost two atomic counters and a
// map hit.
package gateway

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bugs"
	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/testbed"
)

// Config wires the subsystems a Gateway serves. Nil fields disable their
// endpoints (they answer 503), so partial assemblies are valid.
type Config struct {
	Clock   *simclock.Clock
	TB      *testbed.Testbed
	OAR     *oar.Server
	Ref     *refapi.Store
	Monitor *monitor.Collector
	Bugs    *bugs.Tracker
	CI      *ci.Server

	// Advance, when set, lets Gateway.Advance drive the campaign forward
	// (typically core.Framework.RunFor). It always runs under the write
	// side of the request gate.
	Advance func(simclock.Time)
}

// Gateway is the front door. It implements http.Handler.
type Gateway struct {
	cfg     Config
	mux     *http.ServeMux
	started time.Time

	// sim is the campaign gate (see the package comment).
	sim sync.RWMutex

	// monMu serializes monitoring queries (campaign RNG, see above).
	monMu sync.Mutex

	// statusClient reads the CI REST API in process to assemble the
	// /status views, the same code path the external status page uses.
	statusClient *status.Client

	// metrics is keyed by mux pattern; read-only after New.
	metrics map[string]*endpointMetrics

	// Rendered-body caches for the hot /ref endpoints.
	invMu    sync.Mutex
	invCache map[int][]byte
	diffMu   sync.Mutex
	diffFrom int
	diffTo   int
	diffBody []byte
}

// New assembles a gateway over the configured subsystems.
func New(cfg Config) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		started:  time.Now(),
		metrics:  map[string]*endpointMetrics{},
		invCache: map[int][]byte{},
	}
	if cfg.CI != nil {
		g.statusClient = status.NewLocalClient(cfg.CI.Handler())
	}

	g.handle("/", http.MethodGet, g.handleIndex)
	g.handle("/oar/resources", http.MethodGet, g.handleOARResources)
	g.handle("/oar/jobs", http.MethodGet, g.handleOARJobs)
	g.handle("/oar/submit", http.MethodPost, g.handleOARSubmit)
	g.handle("/ref/inventory", http.MethodGet, g.handleRefInventory)
	g.handle("/ref/diff", http.MethodGet, g.handleRefDiff)
	g.handle("/monitor/metrics", http.MethodGet, g.handleMonitorMetrics)
	g.handle("/bugs", http.MethodGet, g.handleBugs)
	g.handle("/status/grid", http.MethodGet, g.handleStatusGrid)
	g.handle("/status/trend", http.MethodGet, g.handleStatusTrend)
	g.handle("/metrics", http.MethodGet, g.handleMetrics)
	if cfg.CI != nil {
		// The CI API enforces its own methods (GET reads, POST trigger);
		// the gateway only instruments it.
		proxy := http.StripPrefix("/ci", cfg.CI.Handler())
		g.handle("/ci/", "", func(w http.ResponseWriter, r *http.Request) {
			proxy.ServeHTTP(w, r)
		})
	}
	return g
}

// ForFramework is the one-call assembly over a complete campaign.
func ForFramework(f *core.Framework) *Gateway {
	return New(Config{
		Clock:   f.Clock,
		TB:      f.TB,
		OAR:     f.OAR,
		Ref:     f.Ref,
		Monitor: f.Monitor,
		Bugs:    f.Bugs,
		CI:      f.CI,
		Advance: f.RunFor,
	})
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Advance steps the campaign by d of simulated time while holding every
// request handler out. A no-op when the gateway was assembled without an
// Advance hook.
func (g *Gateway) Advance(d simclock.Time) {
	if g.cfg.Advance == nil {
		return
	}
	g.sim.Lock()
	defer g.sim.Unlock()
	g.cfg.Advance(d)
}

// handle registers an instrumented endpoint. allow is the accepted method
// ("" lets the wrapped handler enforce methods itself, used by the CI
// proxy).
func (g *Gateway) handle(pattern, allow string, fn http.HandlerFunc) {
	m := &endpointMetrics{}
	g.metrics[pattern] = m
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		switch {
		case pattern == "/" && r.URL.Path != "/":
			// The root pattern catches every unregistered path; a missing
			// resource is 404 regardless of method.
			http.NotFound(sw, r)
		case allow != "" && r.Method != allow:
			sw.Header().Set("Allow", allow)
			http.Error(sw, "method not allowed", http.StatusMethodNotAllowed)
		default:
			g.sim.RLock()
			fn(sw, r)
			g.sim.RUnlock()
		}
		m.record(sw.Code(), time.Since(start))
	})
}

// ---- instrumentation --------------------------------------------------------

// endpointMetrics is the per-endpoint counter set. All fields are atomics:
// the hot path never takes a lock.
type endpointMetrics struct {
	requests    atomic.Int64
	errors      atomic.Int64
	notModified atomic.Int64
	totalNs     atomic.Int64
	maxNs       atomic.Int64
}

func (m *endpointMetrics) record(code int, d time.Duration) {
	m.requests.Add(1)
	if code >= 400 {
		m.errors.Add(1)
	}
	if code == http.StatusNotModified {
		m.notModified.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// statusWriter captures the response code for the instrumentation layer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Code returns the response status (200 when the handler never wrote one).
func (w *statusWriter) Code() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// EndpointMetrics is the wire form of one endpoint's counters.
type EndpointMetrics struct {
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	NotModified int64   `json:"not_modified,omitempty"`
	AvgMicros   float64 `json:"avg_us"`
	MaxMicros   float64 `json:"max_us"`
}

// MetricsReport is the wire form of GET /metrics.
type MetricsReport struct {
	UptimeSec float64                    `json:"uptime_sec"`
	SimNowSec float64                    `json:"sim_now_sec,omitempty"`
	Requests  int64                      `json:"requests"`
	Errors    int64                      `json:"errors"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Metrics snapshots the gateway's counters (what GET /metrics serves).
func (g *Gateway) Metrics() MetricsReport {
	rep := MetricsReport{
		UptimeSec: time.Since(g.started).Seconds(),
		Endpoints: make(map[string]EndpointMetrics, len(g.metrics)),
	}
	if g.cfg.Clock != nil {
		rep.SimNowSec = g.cfg.Clock.Now().Seconds()
	}
	for pattern, m := range g.metrics {
		em := EndpointMetrics{
			Requests:    m.requests.Load(),
			Errors:      m.errors.Load(),
			NotModified: m.notModified.Load(),
			MaxMicros:   float64(m.maxNs.Load()) / 1e3,
		}
		if em.Requests > 0 {
			em.AvgMicros = float64(m.totalNs.Load()) / float64(em.Requests) / 1e3
		}
		rep.Requests += em.Requests
		rep.Errors += em.Errors
		rep.Endpoints[pattern] = em
	}
	return rep
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, g.Metrics())
}

func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	patterns := make([]string, 0, len(g.metrics))
	for p := range g.metrics {
		if p != "/" {
			patterns = append(patterns, p)
		}
	}
	sort.Strings(patterns)
	writeJSON(w, struct {
		Service   string   `json:"service"`
		Endpoints []string `json:"endpoints"`
	}{"testbed API gateway", patterns})
}

// ---- shared helpers ---------------------------------------------------------

func marshalIndent(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus sets the content type BEFORE the status line goes out —
// header mutations after WriteHeader are silently dropped by net/http.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort on a closed client
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

// notConfigured answers for endpoints whose subsystem was not wired in.
func notConfigured(w http.ResponseWriter, what string) {
	httpError(w, http.StatusServiceUnavailable, what+" not configured")
}

// etagMatches implements the If-None-Match comparison for strong ETags:
// "*" matches anything, otherwise any listed tag must equal etag (weak
// validators — W/ prefixed — are compared by their opaque part, per the
// weak comparison RFC 9110 prescribes for If-None-Match).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}
