// Package gateway is the testbed's unified HTTP front door: one
// http.Handler mounting read-optimized JSON endpoints over every subsystem
// of a campaign — OAR's resource manager, the Reference API, monitoring,
// the bug tracker, the status page views and the CI server's own REST API.
//
// On the real Grid'5000 these are separate REST services (the OAR API, the
// Reference API, Jenkins' JSON API) that operators, dashboards and scripts
// hammer constantly; here they share one mux so a single campaign can be
// served, scraped and load-tested as a production system
// (internal/loadgen drives exactly that).
//
// Endpoints (all JSON):
//
//	GET  /                 endpoint index
//	GET  /sites            the federation layout: one entry per site
//	GET  /oar/resources    node allocation states (?cluster=X, ?site=Y narrow)
//	GET  /oar/jobs         recent jobs, newest first (?limit=N, 0 = all)
//	POST /oar/submit       submit a resource request (or dry-run probe);
//	                       unanchored federated submissions route through
//	                       the admission layer (201 placed / 202 queued /
//	                       429 shed + Retry-After)
//	GET  /admit/queue      admission state: counters, waiting reservations,
//	                       recently resolved, per-site breakers
//	GET  /ref/inventory    testbed description (?version=N; ETag/304)
//	GET  /ref/diff         drift between two versions (?from=&to=; ETag/304)
//	GET  /monitor/metrics  1 Hz samples (?metric=&node=&site=&from_sec=&to_sec=)
//	GET  /bugs             bug reports (?state=open|all, ?family=F)
//	GET  /bugs/rollup      cross-site rollup: one row per signature
//	                       (version-vector ETag/304)
//	GET  /grid/at          grid inventory as of sim-time T (?t=S;
//	                       composite ETag/304, see intel.go)
//	GET  /grid/diff        what changed anywhere between two instants
//	                       (?from=S&to=S; per-site sections)
//	GET  /incidents        cross-site incident rollup (?state=, ?at=S
//	                       for the as-of view)
//	GET  /reliability/trend fleet reliability confidence bands (stored
//	                       sweep; ETag/304)
//	GET  /chaos            grid-event state: degraded set, active, history
//	POST /chaos/inject     inject a site-scale event (outage/partition/...)
//	POST /chaos/heal       heal one event ({"id":N}) or all ({"all":true})
//	GET  /status/grid      family × target status matrix
//	GET  /status/trend     historical success rate (?bucket_sec=S)
//	GET  /metrics          per-endpoint request/error/latency counters
//	     /ci/...           the CI REST API, proxied to ci.Handler
//	     /sites/{site}/... site-scoped views over the shard(s) owning the
//	                       site: oar/resources, oar/jobs, oar/submit,
//	                       monitor/metrics, ref/inventory, ref/diff, ci/...
//	                       (ci proxies to the coordinator cluster's server)
//
// # Sharding and concurrency
//
// The gateway serves one or more *shards*. A monolithic campaign
// (ForFramework / New) is the single-shard case: one subsystem set covering
// every site. A federated campaign (ForFederation / NewFederated) mounts
// one shard per cluster *micro-shard*, each with its own OAR, monitor,
// Reference API store, CI server and bug tracker — internal/federation
// carves exactly that layout. Shards are labeled with the site that owns
// them plus their cluster, but the *site* stays the unit of identity for
// routing: /sites/{site}/... addresses all of a site's micro-shards at
// once (merging where the route reads, probing in cluster order where it
// writes), chaos freezes and heals whole sites, admission places against
// site-level capacity, and the intel archives report per-store versions
// under the site label.
//
// Each shard carries its own RWMutex: request handlers hold the read side
// of only the shard(s) they touch, and Advance — which steps the simulated
// campaign — holds a shard's write side only while that micro-shard steps.
// A site-scoped read (/sites/A/oar/resources) therefore never waits on an
// Advance that is busy stepping site B — and under micro-sharding a read
// against cluster A1 does not even wait on a step of A2; that
// read-availability property is asserted by BenchmarkE17_FederatedAdvance.
// Federated endpoints (/oar/resources and friends) scatter over the
// shards, snapshotting each under its own read lock, and gather the merged
// answer outside any lock. Subsystems guard their own state with their own
// mutexes; the shard gates only serialize requests against campaign
// progress. Monitoring queries additionally serialize per shard because a
// flaky-kwapi roll draws from that shard's campaign RNG.
//
// The /ref endpoints are read-optimized: responses carry a strong ETag
// derived from the store's version counter (federated: the joined counters
// of every shard), conditional requests short-cut to 304 before any
// snapshot is materialized or marshaled, and rendered bodies are cached
// per version — hot reads cost two atomic counters and a map hit.
//
// # Degraded mode
//
// With a chaos controller installed (ForFederation wires the federation
// itself), site-scale events reroute traffic instead of breaking it: the
// site-scoped routes of a lost site answer 503 with a Retry-After hint,
// federated merges exclude lost shards and carry a "degraded" marker naming
// the survivors, and POST /chaos/inject|heal drive grid events live against
// the running campaign. See chaos.go.
package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/bugs"
	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/intel"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/testbed"
)

// Config wires the subsystems one shard serves. Nil fields disable their
// endpoints (they answer 503), so partial assemblies are valid.
type Config struct {
	Clock   *simclock.Clock
	TB      *testbed.Testbed
	OAR     *oar.Server
	Ref     *refapi.Store
	Monitor *monitor.Collector
	Bugs    *bugs.Tracker
	CI      *ci.Server

	// Advance, when set, lets Gateway.Advance drive the shard's campaign
	// forward (typically core.Framework.RunFor). It always runs under the
	// write side of the shard's request gate.
	Advance func(simclock.Time)
}

// ShardConfig names one shard of a federated assembly. Site labels the
// shard; Cluster narrows the label when the site is split into per-cluster
// micro-shards (internal/federation's layout — every micro-shard of a
// site shares its Site and carries its own Cluster). A shard's TB decides
// which site names route to it (a monolithic shard whose testbed spans
// many sites serves them all).
type ShardConfig struct {
	Site    string
	Cluster string
	Config
}

// shard is one site's serving state: its subsystem set, its campaign gate,
// and its rendered-body caches for the hot /ref reads.
type shard struct {
	site    string
	cluster string // micro-shard label; "" for whole-site and monolithic shards
	idx     int    // position in Gateway.shards (the /sites "shard" column)
	cfg     Config

	// sites is the shard's precomputed site topology (names, clusters,
	// node lists, core counts) — immutable after assembly, so the /sites
	// listing never takes the shard gate (see handleSites).
	sites []siteTopo

	// sim is the shard's campaign gate (see the package comment).
	sim sync.RWMutex

	// monMu serializes this shard's monitoring queries (campaign RNG).
	monMu sync.Mutex

	// statusClient reads the shard CI's REST API in process to assemble
	// the /status views, the same code path the external status page uses.
	statusClient *status.Client

	// Rendered-body caches for the hot /ref endpoints.
	invMu    sync.Mutex
	invCache map[int][]byte
	diffMu   sync.Mutex
	diffFrom int
	diffTo   int
	diffBody []byte
}

// rlocked runs fn under the shard's read gate.
func (s *shard) rlocked(fn func()) {
	s.sim.RLock()
	defer s.sim.RUnlock()
	fn()
}

// Gateway is the front door. It implements http.Handler.
type Gateway struct {
	mux     *http.ServeMux
	started time.Time

	shards []*shard
	// sites keeps the routed site names in first-claimed (shard) order;
	// siteShards maps a site name to the shards serving it — one for
	// monolithic and whole-site layouts, one per cluster under
	// micro-sharding. A site's first shard is its *coordinator* (the
	// federation files grid tickets there, and the site CI proxy targets
	// it). A monolithic shard claims every site of its testbed.
	sites      []string
	siteShards map[string][]*shard

	// metrics is keyed by mux pattern; read-only after assembly.
	metrics map[string]*endpointMetrics

	// advanceWorkers bounds how many shards Advance steps concurrently
	// (0 = all at once). ForFederation sets it from the federation's own
	// worker cap so live serving honours the same bound as the engine.
	advanceWorkers int

	// chaos, when set, drives degraded-mode routing: lost sites answer 503,
	// merged views exclude them and carry a degraded marker, and the /chaos
	// endpoints inject and heal grid events (see chaos.go).
	chaos ChaosController

	// advanceOverride, when set, replaces the per-shard fan-out of Advance —
	// ForFederation points it at the federation's barrier engine so chaos
	// semantics (frozen shards, catch-up ticks) apply to HTTP-driven time.
	advanceOverride func(simclock.Time)

	// siteAdvance, when set (ForFederation), replaces the per-shard loop of
	// AdvanceSite with the federation's own site stepper, which keeps the
	// site's micro-shards in lockstep and reaches back into their write
	// locks through the step gate.
	siteAdvance func(site string, d simclock.Time) error

	// lockHold samples how long campaign steps hold shard write locks —
	// the advance-side half of the E16 p99 investigation (AdvanceLockStats).
	lockHold lockHoldStats

	// admission, when set (EnableAdmission), routes unanchored federated
	// submissions through the grid admission layer: least-loaded placement,
	// a bounded reservation queue and 429 load shedding (see admission.go).
	admission *admit.Controller

	// Federated /ref rendered-body caches, keyed by the joined version
	// string of all shards (see ref.go).
	fedMu       sync.Mutex
	fedInvKey   string
	fedInvBody  []byte
	fedDiffKey  string
	fedDiffBody []byte

	// Joined site-scoped /ref caches for micro-sharded sites, keyed by
	// site; each entry carries its own joined-version key (see ref.go).
	siteRefMu     sync.Mutex
	siteInvCache  map[string]siteRefCache
	siteDiffCache map[string]siteRefCache

	// Grid intelligence (internal/intel): the federated archive and
	// tracker sources assembled over the shards at construction, and the
	// stored fleet reliability trend (see intel.go).
	archive     *intel.GridArchive
	trackers    []intel.SiteTracker
	reliability *intel.TrendStore

	// Rendered-body caches for the intel endpoints, each keyed by its
	// composite version key (+ the down-set suffix).
	intelMu      sync.Mutex
	gridAtKey    string
	gridAtBody   []byte
	gridDiffKey  string
	gridDiffBody []byte
	incKey       string
	incBody      []byte
	rollupKey    string
	rollupBody   []byte
}

// New assembles a single-shard gateway over the configured subsystems —
// the monolithic campaign layout.
func New(cfg Config) *Gateway {
	return NewFederated([]ShardConfig{{Config: cfg}})
}

// NewFederated assembles a gateway over one shard per entry. Site names
// are claimed from each shard's testbed (plus its explicit Site label);
// several shards claiming one site is the micro-shard layout, and they
// serve it together in entry order (the first is the coordinator).
func NewFederated(shardCfgs []ShardConfig) *Gateway {
	if len(shardCfgs) == 0 {
		panic("gateway: no shards")
	}
	g := &Gateway{
		mux:        http.NewServeMux(),
		started:    time.Now(),
		metrics:    map[string]*endpointMetrics{},
		siteShards: map[string][]*shard{},
	}
	for i, sc := range shardCfgs {
		s := &shard{site: sc.Site, cluster: sc.Cluster, idx: i, cfg: sc.Config, invCache: map[int][]byte{}}
		if sc.CI != nil {
			s.statusClient = status.NewLocalClient(sc.CI.Handler())
		}
		s.sites = siteTopology(sc.Site, sc.TB)
		g.shards = append(g.shards, s)
		claim := func(site string) {
			ss := g.siteShards[site]
			for _, prev := range ss {
				if prev == s {
					return
				}
			}
			if len(ss) == 0 {
				g.sites = append(g.sites, site)
			}
			g.siteShards[site] = append(ss, s)
		}
		if sc.TB != nil {
			for _, name := range sc.TB.SiteNames() {
				claim(name)
			}
		}
		if sc.Site != "" {
			claim(sc.Site)
		}
	}

	// The grid intelligence sources: every archived store and every
	// tracker, each behind its own shard's read gate, labeled like the
	// rollup views label shards (a monolithic shard reads as "local").
	var arcs []intel.SiteArchive
	for _, s := range g.shards {
		label := s.site
		if label == "" {
			label = "local"
		}
		if s.cfg.Ref != nil {
			arcs = append(arcs, intel.SiteArchive{Site: label, Cluster: s.cluster, Ref: s.cfg.Ref, Gate: s.rlocked})
		}
		if s.cfg.Bugs != nil {
			g.trackers = append(g.trackers, intel.SiteTracker{Site: label, Bugs: s.cfg.Bugs, Gate: s.rlocked})
		}
	}
	g.archive = intel.NewGridArchive(arcs)
	g.reliability = &intel.TrendStore{}

	g.handle("/", http.MethodGet, g.handleIndex)
	g.handle("/sites", http.MethodGet, g.handleSites)
	g.handle("/sites/", "", g.handleSiteScoped)
	g.handle("/oar/resources", http.MethodGet, g.handleOARResources)
	g.handle("/oar/jobs", http.MethodGet, g.handleOARJobs)
	g.handle("/oar/submit", http.MethodPost, g.handleOARSubmit)
	g.handle("/admit/queue", http.MethodGet, g.handleAdmitQueue)
	g.handle("/ref/inventory", http.MethodGet, g.handleRefInventory)
	g.handle("/ref/diff", http.MethodGet, g.handleRefDiff)
	g.handle("/monitor/metrics", http.MethodGet, g.handleMonitorMetrics)
	g.handle("/bugs", http.MethodGet, g.handleBugs)
	g.handle("/bugs/rollup", http.MethodGet, g.handleBugsRollup)
	g.handle("/grid/at", http.MethodGet, g.handleGridAt)
	g.handle("/grid/diff", http.MethodGet, g.handleGridDiff)
	g.handle("/incidents", http.MethodGet, g.handleIncidents)
	g.handle("/reliability/trend", http.MethodGet, g.handleReliabilityTrend)
	g.handle("/chaos", http.MethodGet, g.handleChaos)
	g.handle("/chaos/inject", http.MethodPost, g.handleChaosInject)
	g.handle("/chaos/heal", http.MethodPost, g.handleChaosHeal)
	g.handle("/status/grid", http.MethodGet, g.handleStatusGrid)
	g.handle("/status/trend", http.MethodGet, g.handleStatusTrend)
	g.handle("/metrics", http.MethodGet, g.handleMetrics)
	g.handle("/ci/", "", g.handleCIProxy)
	return g
}

// ForFramework is the one-call assembly over a complete monolithic
// campaign.
func ForFramework(f *core.Framework) *Gateway {
	return New(Config{
		Clock:   f.Clock,
		TB:      f.TB,
		OAR:     f.OAR,
		Ref:     f.Ref,
		Monitor: f.Monitor,
		Bugs:    f.Bugs,
		CI:      f.CI,
		Advance: f.RunFor,
	})
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// SetAdvanceWorkers bounds how many shards Advance steps concurrently
// (n <= 0 restores the default: all shards at once). Call before serving.
func (g *Gateway) SetAdvanceWorkers(n int) { g.advanceWorkers = n }

// Advance steps every shard's campaign by d of simulated time. Each shard
// steps under its own write lock, so requests against one shard proceed
// while another is still advancing; a multi-shard advance fans the shards
// out across up to SetAdvanceWorkers goroutines (they share no simulation
// state). A no-op for shards assembled without an Advance hook. With an
// advance override installed (ForFederation), the external driver runs
// instead — it reaches back into the shards through their step gates.
func (g *Gateway) Advance(d simclock.Time) {
	if g.advanceOverride != nil {
		// The override (Federation.Advance) fires the grid listener on
		// return, which pumps the admission queue — no extra pump here.
		g.advanceOverride(d)
		return
	}
	defer g.pumpAdmission()
	if len(g.shards) == 1 {
		g.advanceShard(g.shards[0], d)
		return
	}
	workers := g.advanceWorkers
	if workers <= 0 || workers > len(g.shards) {
		workers = len(g.shards)
	}
	jobs := make(chan *shard)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				g.advanceShard(s, d)
			}
		}()
	}
	for _, s := range g.shards {
		if s.cfg.Advance != nil {
			jobs <- s
		}
	}
	close(jobs)
	wg.Wait()
}

// AdvanceSite steps only the shards owning the named site — all of its
// micro-shards together, in cluster order, so they stay in lockstep with
// each other — holding only those shards' write locks one at a time. Reads
// against every other site (and, under micro-sharding, against this
// site's not-currently-stepping clusters) proceed untouched. On a
// monolithic (single-shard) gateway the one shard owns every site, so
// this advances the whole campaign.
func (g *Gateway) AdvanceSite(site string, d simclock.Time) error {
	ss := g.siteShards[site]
	if len(ss) == 0 {
		return fmt.Errorf("gateway: unknown site %q", site)
	}
	if g.siteAdvance == nil {
		hooked := false
		for _, s := range ss {
			if s.cfg.Advance != nil {
				hooked = true
				break
			}
		}
		if !hooked {
			return fmt.Errorf("gateway: site %q has no advance hook", site)
		}
	}
	if !g.siteAvailable(site) {
		return fmt.Errorf("gateway: site %q is down", site)
	}
	if g.siteAdvance != nil {
		// The federation steps the site's micro-shards itself, taking each
		// shard's write lock through the step gate.
		if err := g.siteAdvance(site, d); err != nil {
			return err
		}
	} else {
		for _, s := range ss {
			g.advanceShard(s, d)
		}
	}
	// The stepped site may have freed capacity a queued reservation fits.
	g.pumpAdmission()
	return nil
}

func (g *Gateway) advanceShard(s *shard, d simclock.Time) {
	if s.cfg.Advance == nil {
		return
	}
	s.sim.Lock()
	defer s.sim.Unlock()
	start := time.Now()
	s.cfg.Advance(d)
	g.lockHold.record(time.Since(start))
}

// Sites returns the site names the gateway routes, sorted.
func (g *Gateway) Sites() []string {
	out := append([]string(nil), g.sites...)
	sort.Strings(out)
	return out
}

// coordinator returns the first shard claimed for the site — under
// micro-sharding, the site's first cluster in spec order — or nil for an
// unknown site.
func (g *Gateway) coordinator(site string) *shard {
	if ss := g.siteShards[site]; len(ss) > 0 {
		return ss[0]
	}
	return nil
}

// shardFor returns the site's shard carrying the given cluster label, or
// nil. Shards without a cluster label (monolithic, whole-site) match any
// cluster: they gate the whole site behind one lock.
func (g *Gateway) shardFor(site, cluster string) *shard {
	for _, s := range g.siteShards[site] {
		if s.cluster == cluster || s.cluster == "" {
			return s
		}
	}
	return nil
}

// federated reports whether this gateway fronts more than one shard.
func (g *Gateway) federated() bool { return len(g.shards) > 1 }

// shardForCluster finds the shard whose testbed owns the named cluster.
// Cluster names are not globally unique on the real grid (two sites can
// both run a "grisou"), so when several shards own the name the choice is
// deterministic: the lexicographically smallest live site wins, falling
// back to the smallest site overall when every owner is down — the caller
// then answers 503 for that site instead of silently picking another.
func (g *Gateway) shardForCluster(name string) *shard {
	var best *shard
	for _, s := range g.shards {
		if s.cfg.TB == nil || s.cfg.TB.Cluster(name) == nil {
			continue
		}
		if best == nil {
			best = s
			continue
		}
		bestDown, sDown := g.shardDown(best), g.shardDown(s)
		if (bestDown && !sDown) || (bestDown == sDown && s.site < best.site) {
			best = s
		}
	}
	return best
}

// shardForNode finds the shard whose testbed owns the named node.
func (g *Gateway) shardForNode(name string) *shard {
	for _, s := range g.shards {
		if s.cfg.TB != nil && s.cfg.TB.Node(name) != nil {
			return s
		}
	}
	return nil
}

// handle registers an instrumented endpoint. allow is the accepted method
// ("" lets the wrapped handler enforce methods itself, used by the CI
// proxy and the /sites/ subtree).
func (g *Gateway) handle(pattern, allow string, fn http.HandlerFunc) {
	m := &endpointMetrics{}
	g.metrics[pattern] = m
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		switch {
		case pattern == "/" && r.URL.Path != "/":
			// The root pattern catches every unregistered path; a missing
			// resource is 404 regardless of method.
			http.NotFound(sw, r)
		case allow != "" && r.Method != allow:
			sw.Header().Set("Allow", allow)
			http.Error(sw, "method not allowed", http.StatusMethodNotAllowed)
		default:
			fn(sw, r)
		}
		m.record(sw.Code(), time.Since(start))
	})
}

// handleCIProxy forwards /ci/... to a shard CI REST API under that shard's
// read gate. On a federated gateway the per-site trees live under
// /sites/{site}/ci/; the unscoped path answers only when a single shard
// carries a CI server, to stay unambiguous.
func (g *Gateway) handleCIProxy(w http.ResponseWriter, r *http.Request) {
	var target *shard
	for _, s := range g.shards {
		if s.cfg.CI == nil {
			continue
		}
		if target != nil {
			httpError(w, http.StatusMisdirectedRequest,
				"federated gateway: use /sites/{site}/ci/...")
			return
		}
		target = s
	}
	if target == nil {
		notConfigured(w, "ci")
		return
	}
	proxy := http.StripPrefix("/ci", target.cfg.CI.Handler())
	target.rlocked(func() { proxy.ServeHTTP(w, r) })
}

// ---- instrumentation --------------------------------------------------------

// endpointMetrics is the per-endpoint counter set. All fields are atomics:
// the hot path never takes a lock.
type endpointMetrics struct {
	requests    atomic.Int64
	errors      atomic.Int64
	notModified atomic.Int64
	totalNs     atomic.Int64
	maxNs       atomic.Int64
}

func (m *endpointMetrics) record(code int, d time.Duration) {
	m.requests.Add(1)
	if code >= 400 {
		m.errors.Add(1)
	}
	if code == http.StatusNotModified {
		m.notModified.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// lockHoldStats samples how long campaign steps hold a shard's write
// lock. All fields are atomics: recording never contends with the readers
// those holds block.
type lockHoldStats struct {
	steps   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (l *lockHoldStats) record(d time.Duration) {
	ns := d.Nanoseconds()
	l.steps.Add(1)
	l.totalNs.Add(ns)
	for {
		cur := l.maxNs.Load()
		if ns <= cur || l.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// LockHoldStats reports the advance-side write-lock hold distribution:
// how many per-shard campaign steps ran and the mean and worst hold. Read
// next to an endpoint's p99 latency, it says whether slow reads were
// *blocked* (holds comparable to the p99) or merely slow themselves.
type LockHoldStats struct {
	Steps     int64   `json:"steps"`
	AvgMicros float64 `json:"avg_us"`
	MaxMicros float64 `json:"max_us"`
}

// AdvanceLockStats snapshots the write-lock hold sampling accumulated by
// every campaign step since assembly (Advance, AdvanceSite, and federated
// barrier ticks through the step gate).
func (g *Gateway) AdvanceLockStats() LockHoldStats {
	out := LockHoldStats{
		Steps:     g.lockHold.steps.Load(),
		MaxMicros: float64(g.lockHold.maxNs.Load()) / 1e3,
	}
	if out.Steps > 0 {
		out.AvgMicros = float64(g.lockHold.totalNs.Load()) / float64(out.Steps) / 1e3
	}
	return out
}

// statusWriter captures the response code for the instrumentation layer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Code returns the response status (200 when the handler never wrote one).
func (w *statusWriter) Code() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// EndpointMetrics is the wire form of one endpoint's counters.
type EndpointMetrics struct {
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	NotModified int64   `json:"not_modified,omitempty"`
	AvgMicros   float64 `json:"avg_us"`
	MaxMicros   float64 `json:"max_us"`
}

// MetricsReport is the wire form of GET /metrics.
type MetricsReport struct {
	UptimeSec float64                    `json:"uptime_sec"`
	SimNowSec float64                    `json:"sim_now_sec,omitempty"`
	Shards    int                        `json:"shards,omitempty"`
	Requests  int64                      `json:"requests"`
	Errors    int64                      `json:"errors"`
	Admission *admit.StatsJSON           `json:"admission,omitempty"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Metrics snapshots the gateway's counters (what GET /metrics serves).
func (g *Gateway) Metrics() MetricsReport {
	rep := MetricsReport{
		UptimeSec: time.Since(g.started).Seconds(),
		Endpoints: make(map[string]EndpointMetrics, len(g.metrics)),
	}
	if g.federated() {
		rep.Shards = len(g.shards)
	}
	if clock := g.shards[0].cfg.Clock; clock != nil {
		rep.SimNowSec = clock.Now().Seconds()
	}
	if g.admission != nil {
		st := g.admission.Stats()
		rep.Admission = &st
	}
	for pattern, m := range g.metrics {
		em := EndpointMetrics{
			Requests:    m.requests.Load(),
			Errors:      m.errors.Load(),
			NotModified: m.notModified.Load(),
			MaxMicros:   float64(m.maxNs.Load()) / 1e3,
		}
		if em.Requests > 0 {
			em.AvgMicros = float64(m.totalNs.Load()) / float64(em.Requests) / 1e3
		}
		rep.Requests += em.Requests
		rep.Errors += em.Errors
		rep.Endpoints[pattern] = em
	}
	return rep
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, g.Metrics())
}

func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	patterns := make([]string, 0, len(g.metrics))
	for p := range g.metrics {
		if p != "/" {
			patterns = append(patterns, p)
		}
	}
	sort.Strings(patterns)
	writeJSON(w, struct {
		Service   string   `json:"service"`
		Shards    int      `json:"shards"`
		Endpoints []string `json:"endpoints"`
	}{"testbed API gateway", len(g.shards), patterns})
}

// ---- shared helpers ---------------------------------------------------------

func marshalIndent(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus sets the content type BEFORE the status line goes out —
// header mutations after WriteHeader are silently dropped by net/http.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort on a closed client
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

// notConfigured answers for endpoints whose subsystem was not wired in.
func notConfigured(w http.ResponseWriter, what string) {
	httpError(w, http.StatusServiceUnavailable, what+" not configured")
}

// etagMatches implements the If-None-Match comparison for strong ETags:
// "*" matches anything, otherwise any listed tag must equal etag (weak
// validators — W/ prefixed — are compared by their opaque part, per the
// weak comparison RFC 9110 prescribes for If-None-Match).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}
