package gateway

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/inproc"
	"repro/internal/simclock"
)

// newChaosCampaign builds a three-site federation fronted by a gateway and
// runs it one week through the barrier engine (gw.Advance delegates to the
// federation once ForFederation wires it).
func newChaosCampaign(t testing.TB) (*federation.Federation, *Gateway) {
	t.Helper()
	fed := federation.New(federation.Config{
		Seed: 11,
		Spec: fedSpec("luxembourg", "nantes", "lyon"),
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 4
			cfg.EnvMatrixPeriod = 0
			return cfg
		},
	})
	fed.Start()
	gw := ForFederation(fed)
	gw.Advance(simclock.Week)
	return fed, gw
}

func postJSON(t *testing.T, c *http.Client, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.Post("http://gw.local"+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp, b
}

// TestChaosOutageDegradedRouting is the HTTP-level disaster drill: inject a
// site outage through the admin endpoint, prove the lost site's routes
// answer 503 with Retry-After while surviving and merged routes keep
// serving (with a degraded marker), then heal and prove full recovery.
func TestChaosOutageDegradedRouting(t *testing.T) {
	fed, gw := newChaosCampaign(t)
	c := inproc.Client(gw)

	nodesAt := map[string]int{}
	total := 0
	for _, sh := range fed.Shards() {
		nodesAt[sh.Site] += sh.F.TB.TotalNodes()
		total += sh.F.TB.TotalNodes()
	}

	// Healthy baseline: no degraded marker anywhere, /chaos reports clean.
	resp, body := get(t, c, "/chaos")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/chaos status = %d", resp.StatusCode)
	}
	if st := decode[ChaosJSON](t, body); st.Degraded || len(st.Active) != 0 {
		t.Fatalf("healthy /chaos = %+v", st)
	}
	resp, body = get(t, c, "/ref/inventory")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy inventory status = %d", resp.StatusCode)
	}
	healthyETag := resp.Header.Get("ETag")
	if strings.Contains(healthyETag, "down") {
		t.Fatalf("healthy ETag carries a down set: %s", healthyETag)
	}

	// Inject a lyon outage live.
	resp, body = postJSON(t, c, "/chaos/inject", `{"kind":"outage","sites":["lyon"]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("inject status = %d: %s", resp.StatusCode, body)
	}
	ev := decode[GridEventJSON](t, body)
	if ev.ID != 1 || ev.Kind != "site-outage" || ev.Signature != "site-outage:lyon" {
		t.Fatalf("injected event = %+v", ev)
	}
	if resp, _ := postJSON(t, c, "/chaos/inject", `{"kind":"outage","sites":["atlantis"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-site inject status = %d, want 400", resp.StatusCode)
	}

	// Every site-scoped view of the lost site is 503-by-design with a
	// Retry-After hint — GETs and the submit POST alike.
	for _, path := range []string{
		"/sites/lyon/oar/resources", "/sites/lyon/oar/jobs",
		"/sites/lyon/monitor/metrics", "/sites/lyon/ref/inventory",
		"/sites/lyon/ci/api/json",
	} {
		resp, _ := get(t, c, path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s status = %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: missing Retry-After", path)
		}
	}
	if resp, _ := postJSON(t, c, "/sites/lyon/oar/submit", `{"request":"nodes=1,walltime=1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to lost site status = %d, want 503", resp.StatusCode)
	}
	// So are the query-parameter spellings and anything routed to lyon.
	if resp, _ := get(t, c, "/oar/resources?site=lyon"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("?site=lyon status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/oar/resources?cluster=sagittaire"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("?cluster=sagittaire status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, c, "/oar/submit", `{"request":"cluster='sagittaire'/nodes=1,walltime=1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit anchored to lost site status = %d, want 503", resp.StatusCode)
	}
	lyonNode := fed.Shard("lyon").F.TB.Nodes()[0].Name
	if resp, _ := get(t, c, "/monitor/metrics?node="+lyonNode); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("monitor on lost node status = %d, want 503", resp.StatusCode)
	}
	if err := gw.AdvanceSite("lyon", simclock.Hour); err == nil {
		t.Fatal("AdvanceSite on a lost site should refuse")
	}

	// Surviving sites keep serving.
	resp, body = get(t, c, "/sites/nantes/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surviving site status = %d", resp.StatusCode)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != nodesAt["nantes"] {
		t.Fatalf("surviving site = %d nodes, want %d", len(got.Nodes), nodesAt["nantes"])
	}

	// Merged views exclude the lost shard and say so.
	resp, body = get(t, c, "/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded merge status = %d", resp.StatusCode)
	}
	merged := decode[OARResourcesJSON](t, body)
	if len(merged.Nodes) != total-nodesAt["lyon"] {
		t.Fatalf("degraded merge = %d nodes, want %d", len(merged.Nodes), total-nodesAt["lyon"])
	}
	if merged.Degraded == nil || len(merged.Degraded.DownSites) != 1 || merged.Degraded.DownSites[0] != "lyon" {
		t.Fatalf("degraded marker = %+v", merged.Degraded)
	}
	if len(merged.Degraded.SurvivingSites) != 2 {
		t.Fatalf("surviving sites = %v", merged.Degraded.SurvivingSites)
	}
	resp, body = get(t, c, "/oar/jobs")
	if resp.StatusCode != http.StatusOK || decode[OARJobsJSON](t, body).Degraded == nil {
		t.Fatalf("merged jobs should carry the marker (status %d)", resp.StatusCode)
	}
	resp, body = get(t, c, "/bugs")
	if resp.StatusCode != http.StatusOK || decode[BugsJSON](t, body).Degraded == nil {
		t.Fatalf("merged bugs should carry the marker (status %d)", resp.StatusCode)
	}
	resp, body = get(t, c, "/status/grid")
	if resp.StatusCode != http.StatusOK || decode[GridJSON](t, body).Degraded == nil {
		t.Fatalf("status grid should carry the marker (status %d)", resp.StatusCode)
	}
	resp, body = get(t, c, "/status/trend")
	if resp.StatusCode != http.StatusOK || decode[TrendJSON](t, body).Degraded == nil {
		t.Fatalf("status trend should carry the marker (status %d)", resp.StatusCode)
	}

	// The federated inventory drops the lost section, and its ETag encodes
	// the down set so conditional requests cannot resurrect a whole-grid
	// body.
	resp, body = get(t, c, "/ref/inventory")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded inventory status = %d", resp.StatusCode)
	}
	inv := decode[FederatedInventoryJSON](t, body)
	if len(inv.Sites) != 2 || inv.Degraded == nil {
		t.Fatalf("degraded inventory = %d sites, marker %+v", len(inv.Sites), inv.Degraded)
	}
	degradedETag := resp.Header.Get("ETag")
	if degradedETag == healthyETag || !strings.Contains(degradedETag, "down:lyon") {
		t.Fatalf("degraded ETag = %s (healthy %s)", degradedETag, healthyETag)
	}
	if resp, _ := get(t, c, "/ref/diff"); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded diff status = %d", resp.StatusCode)
	}

	// The /sites listing flags the lost site.
	resp, body = get(t, c, "/sites")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sites status = %d", resp.StatusCode)
	}
	sites := decode[SitesJSON](t, body)
	if sites.Degraded == nil {
		t.Fatal("/sites missing degraded marker")
	}
	for _, s := range sites.Sites {
		if s.Down != (s.Name == "lyon") {
			t.Fatalf("site %s down flag = %v", s.Name, s.Down)
		}
	}

	// A barrier week mid-outage freezes lyon and files the outage ticket on
	// every surviving shard; the rollup folds that burst into one row.
	gw.Advance(simclock.Week)
	if got := fed.Shard("lyon").F.Clock.Now(); got != simclock.Week {
		t.Fatalf("lost site clock = %v, want frozen at %v", got, simclock.Week)
	}
	resp, body = get(t, c, "/bugs/rollup?state=all")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollup status = %d", resp.StatusCode)
	}
	rollup := decode[BugsRollupJSON](t, body)
	var outage *BugRollupJSON
	for i := range rollup.Rollup {
		if rollup.Rollup[i].Signature == "site-outage:lyon" {
			outage = &rollup.Rollup[i]
		}
	}
	if outage == nil || outage.Tickets != 2 || len(outage.Sites) != 2 {
		t.Fatalf("outage rollup row = %+v", outage)
	}

	// Heal through the admin endpoint: routes recover, the marker clears,
	// the ETag returns to the healthy form, and the next barrier week
	// catches the lost shard back up to lockstep.
	resp, body = postJSON(t, c, "/chaos/heal", `{"id":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heal status = %d: %s", resp.StatusCode, body)
	}
	if healed := decode[ChaosHealResponse](t, body); len(healed.Healed) != 1 || !healed.Healed[0].Healed {
		t.Fatalf("heal reply = %+v", healed)
	}
	if resp, _ := get(t, c, "/sites/lyon/oar/resources"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healed site status = %d", resp.StatusCode)
	}
	resp, body = get(t, c, "/oar/resources")
	if merged := decode[OARResourcesJSON](t, body); merged.Degraded != nil || len(merged.Nodes) != total {
		t.Fatalf("healed merge = %d nodes, marker %+v", len(merged.Nodes), merged.Degraded)
	}
	gw.Advance(simclock.Week)
	for _, sh := range fed.Shards() {
		if got := sh.F.Clock.Now(); got != 3*simclock.Week {
			t.Fatalf("site %s clock = %v after heal, want %v", sh.Site, got, 3*simclock.Week)
		}
	}
	resp, body = get(t, c, "/chaos")
	st := decode[ChaosJSON](t, body)
	if st.Degraded || len(st.Active) != 0 || len(st.History) != 1 || !st.History[0].Healed {
		t.Fatalf("post-heal /chaos = %+v", st)
	}
}

// TestChaosPartitionKeepsSitesServing: a WAN partition only cuts the merge
// plane — the isolated site's own routes keep answering while merged views
// exclude it as unreachable.
func TestChaosPartitionKeepsSitesServing(t *testing.T) {
	fed, gw := newChaosCampaign(t)
	c := inproc.Client(gw)

	if _, err := fed.InjectGrid("wan-partition", []string{"nantes"}, 0, 0); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if resp, _ := get(t, c, "/sites/nantes/oar/resources"); resp.StatusCode != http.StatusOK {
		t.Fatalf("isolated site-scoped route status = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/oar/resources?site=nantes"); resp.StatusCode != http.StatusOK {
		t.Fatalf("isolated ?site= route status = %d, want 200", resp.StatusCode)
	}
	resp, body := get(t, c, "/oar/resources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status = %d", resp.StatusCode)
	}
	merged := decode[OARResourcesJSON](t, body)
	if merged.Degraded == nil || len(merged.Degraded.UnreachableSites) != 1 ||
		merged.Degraded.UnreachableSites[0] != "nantes" || len(merged.Degraded.DownSites) != 0 {
		t.Fatalf("partition marker = %+v", merged.Degraded)
	}
	want := 0
	for _, sh := range fed.Shards() {
		if sh.Site != "nantes" {
			want += sh.F.TB.TotalNodes()
		}
	}
	if len(merged.Nodes) != want {
		t.Fatalf("partitioned merge = %d nodes, want %d", len(merged.Nodes), want)
	}
	resp, body = get(t, c, "/sites")
	sites := decode[SitesJSON](t, body)
	for _, s := range sites.Sites {
		if s.Down {
			t.Fatalf("site %s flagged down during a partition", s.Name)
		}
		if s.Unreachable != (s.Name == "nantes") {
			t.Fatalf("site %s unreachable flag = %v", s.Name, s.Unreachable)
		}
	}
	// The isolated shard still advances with the grid (partitions do not
	// freeze clocks), and heal restores the merge.
	gw.Advance(simclock.Week)
	if got := fed.Shard("nantes").F.Clock.Now(); got != 2*simclock.Week {
		t.Fatalf("isolated site clock = %v, want %v", got, 2*simclock.Week)
	}
	if resp, _ := postJSON(t, c, "/chaos/heal", `{"all":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("heal-all status = %d", resp.StatusCode)
	}
	resp, body = get(t, c, "/oar/resources")
	if merged := decode[OARResourcesJSON](t, body); merged.Degraded != nil {
		t.Fatalf("marker survived heal: %+v", merged.Degraded)
	}
}
