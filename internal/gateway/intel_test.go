package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bugs"
	"repro/internal/inproc"
	"repro/internal/intel"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// newIntelGateway assembles a two-shard gateway over hand-built stores and
// trackers — no campaign, so every archived version, sim-time and tracker
// mutation is exact. Site "luxembourg" captures at 10h and updates one
// node's RAM at 20h; site "nantes" captures at 15h.
func newIntelGateway(t *testing.T) (*Gateway, *refapi.Store, *refapi.Store, *bugs.Tracker, *bugs.Tracker) {
	t.Helper()
	tbA := testbed.Generate(fedSpec("luxembourg"))
	stA := refapi.NewStore(tbA, 10*simclock.Hour)
	node := tbA.Nodes()[0]
	inv := node.Inv.Clone()
	inv.RAMGB += 8
	if err := stA.Update(20*simclock.Hour, node.Name, inv); err != nil {
		t.Fatal(err)
	}
	tbB := testbed.Generate(fedSpec("nantes"))
	stB := refapi.NewStore(tbB, 15*simclock.Hour)

	clkA := simclock.New(1)
	clkA.RunUntil(simclock.Hour)
	trA := bugs.NewTracker(clkA)
	clkB := simclock.New(2)
	clkB.RunUntil(2 * simclock.Hour)
	trB := bugs.NewTracker(clkB)

	gw := NewFederated([]ShardConfig{
		{Site: "luxembourg", Config: Config{TB: tbA, Ref: stA, Bugs: trA}},
		{Site: "nantes", Config: Config{TB: tbB, Ref: stB, Bugs: trB}},
	})
	return gw, stA, stB, trA, trB
}

func getConditional(t *testing.T, c *http.Client, path, etag string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://gw.local"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestGridAtEndpoint(t *testing.T) {
	gw, stA, stB, _, _ := newIntelGateway(t)
	c := inproc.Client(gw)

	// Parameter contract: t is required and must be a sane number.
	if resp, body := get(t, c, "/grid/at"); resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(string(body), "t=<simtime seconds>") {
		t.Fatalf("missing t = %d %s", resp.StatusCode, body)
	}
	for _, bad := range []string{"?t=nope", "?t=-5", "?t=NaN"} {
		if resp, _ := get(t, c, "/grid/at"+bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/grid/at%s status = %d, want 400", bad, resp.StatusCode)
		}
	}

	// Before any site's first capture: 404, not an empty 200.
	if resp, _ := get(t, c, "/grid/at?t=18000"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-capture status = %d, want 404", resp.StatusCode)
	}

	// At 12h only luxembourg exists (as version 1, captured at 10h).
	resp, body := get(t, c, "/grid/at?t=43200")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("t=12h status = %d", resp.StatusCode)
	}
	if etag := resp.Header.Get("ETag"); etag != `"ga1.0"` {
		t.Fatalf("t=12h ETag = %s, want \"ga1.0\"", etag)
	}
	at := decode[GridAtJSON](t, body)
	if len(at.Sites) != 1 || at.Sites[0].Site != "luxembourg" || at.Sites[0].Version != 1 {
		t.Fatalf("t=12h sites = %+v, want luxembourg@1", at.Sites)
	}
	if at.AsOfSec != (10 * simclock.Hour).Seconds() {
		t.Fatalf("as_of_sec = %v, want 36000", at.AsOfSec)
	}

	// At 25h the grid view spans both sites at their then-current versions.
	resp, body = get(t, c, "/grid/at?t=90000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("t=25h status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"ga2.1"` {
		t.Fatalf("t=25h ETag = %s, want \"ga2.1\"", etag)
	}
	at = decode[GridAtJSON](t, body)
	if len(at.Sites) != 2 || at.Sites[0].Version != 2 || at.Sites[1].Version != 1 {
		t.Fatalf("t=25h sites = %+v, want luxembourg@2, nantes@1", at.Sites)
	}
	if at.AsOfSec != (20 * simclock.Hour).Seconds() {
		t.Fatalf("as_of_sec = %v, want 72000 (the RAM update)", at.AsOfSec)
	}

	// Conditional re-reads 304 without materializing; unconditional hot
	// reads serve the cached body without materializing either.
	mats := stA.Materializations() + stB.Materializations()
	for i := 0; i < 25; i++ {
		if resp := getConditional(t, c, "/grid/at?t=90000", etag); resp.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional read %d: status = %d, want 304", i, resp.StatusCode)
		}
	}
	for i := 0; i < 10; i++ {
		if resp, _ := get(t, c, "/grid/at?t=90000"); resp.StatusCode != http.StatusOK {
			t.Fatalf("hot read status = %d", resp.StatusCode)
		}
	}
	if got := stA.Materializations() + stB.Materializations(); got != mats {
		t.Fatalf("hot /grid/at re-materialized: %d → %d", mats, got)
	}

	// A different t resolving to the same version vector is the same
	// resource: same ETag, and a conditional against it still 304s.
	resp, _ = get(t, c, "/grid/at?t=100000")
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("t=100000 ETag = %s, want %s (same vector)", got, etag)
	}
}

func TestGridDiffEndpoint(t *testing.T) {
	gw, _, _, _, _ := newIntelGateway(t)
	c := inproc.Client(gw)

	if resp, body := get(t, c, "/grid/diff"); resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(string(body), "from=<simtime seconds>") {
		t.Fatalf("missing range = %d %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, c, "/grid/diff?from=90000&to=43200"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/grid/diff?from=0&to=100"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-capture range status = %d, want 404", resp.StatusCode)
	}

	// 12h → 25h: luxembourg moved v1→v2 (one RAM field), nantes appeared.
	resp, body := get(t, c, "/grid/diff?from=43200&to=90000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"gd1.0-2.1"` {
		t.Fatalf("diff ETag = %s, want \"gd1.0-2.1\"", etag)
	}
	diff := decode[GridDiffJSON](t, body)
	if len(diff.Sites) != 2 {
		t.Fatalf("diff sites = %d, want 2", len(diff.Sites))
	}
	lux, nts := diff.Sites[0], diff.Sites[1]
	if lux.Site != "luxembourg" || lux.FromVersion != 1 || lux.ToVersion != 2 || len(lux.Differences) != 1 {
		t.Fatalf("luxembourg section = %+v", lux)
	}
	if nts.Site != "nantes" || nts.FromVersion != 0 || nts.ToVersion != 1 {
		t.Fatalf("nantes section = %+v", nts)
	}
	presence := len(nts.Differences)
	if presence == 0 {
		t.Fatal("nantes presence rows = 0, want one per node")
	}
	if diff.Count != 1+presence {
		t.Fatalf("count = %d, want %d", diff.Count, 1+presence)
	}

	// Conditional 304, and the degenerate self-diff is empty.
	if resp := getConditional(t, c, "/grid/diff?from=43200&to=90000", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional diff status = %d, want 304", resp.StatusCode)
	}
	resp, body = get(t, c, "/grid/diff?from=90000&to=90000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-diff status = %d", resp.StatusCode)
	}
	if got := decode[GridDiffJSON](t, body); got.Count != 0 {
		t.Fatalf("self-diff count = %d, want 0", got.Count)
	}
}

func TestIncidentsEndpoint(t *testing.T) {
	gw, _, _, trA, trB := newIntelGateway(t)
	c := inproc.Client(gw)

	// Empty trackers: a clean 200 with zero incidents, already ETagged.
	resp, body := get(t, c, "/incidents")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty status = %d", resp.StatusCode)
	}
	if got := decode[IncidentsJSON](t, body); got.Count != 0 {
		t.Fatalf("empty count = %d", got.Count)
	}
	emptyETag := resp.Header.Get("ETag")

	// The same root cause filed at two sites is exactly one incident.
	trA.File("net/switch-flap", "switch flapping", "net", "sw-1")
	trB.File("net/switch-flap", "switch flapping", "net", "sw-1")
	trB.File("disk/smart", "disk failure", "hw", "node-9")

	resp, body = get(t, c, "/incidents")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == emptyETag {
		t.Fatal("filing bugs did not move the /incidents ETag")
	}
	inc := decode[IncidentsJSON](t, body)
	if inc.Count != 2 || len(inc.Incidents) != 2 {
		t.Fatalf("count = %d, want 2 (3 tickets, 2 signatures)", inc.Count)
	}
	flap := inc.Incidents[0]
	if flap.Signature != "net/switch-flap" || flap.Tickets != 2 || flap.OpenTickets != 2 {
		t.Fatalf("first incident = %+v, want the folded switch-flap", flap)
	}
	if len(flap.Sites) != 2 || flap.Sites[0] != "luxembourg" || flap.Sites[1] != "nantes" {
		t.Fatalf("flap sites = %v, want [luxembourg nantes]", flap.Sites)
	}
	if flap.FirstSeenSec != simclock.Hour.Seconds() || flap.LastSeenSec != (2*simclock.Hour).Seconds() {
		t.Fatalf("flap first/last = %v/%v, want 3600/7200", flap.FirstSeenSec, flap.LastSeenSec)
	}
	if flap.State != "open" {
		t.Fatalf("flap state = %q", flap.State)
	}

	// Conditional requests 304 until a tracker mutates.
	if resp := getConditional(t, c, "/incidents", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d, want 304", resp.StatusCode)
	}
	trB.File("disk/smart", "disk failure", "hw", "node-9") // dedup bump still moves the version
	if resp := getConditional(t, c, "/incidents", etag); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation conditional status = %d, want 200", resp.StatusCode)
	}

	// The time-scoped view: at 90 minutes only luxembourg's filing exists.
	resp, body = get(t, c, "/incidents?at=5400")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?at status = %d", resp.StatusCode)
	}
	past := decode[IncidentsJSON](t, body)
	if past.AtSec == nil || *past.AtSec != 5400 {
		t.Fatalf("?at body at_sec = %v, want 5400", past.AtSec)
	}
	if past.Count != 1 || past.Incidents[0].Tickets != 1 ||
		len(past.Incidents[0].Sites) != 1 || past.Incidents[0].Sites[0] != "luxembourg" {
		t.Fatalf("?at=5400 = %+v, want the single luxembourg ticket", past.Incidents)
	}
	if resp, _ := get(t, c, "/incidents?at=10"); resp.StatusCode != http.StatusOK {
		t.Fatal("?at before history should still be a clean empty 200")
	}
	if resp, _ := get(t, c, "/incidents?at=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad ?at should be 400")
	}

	// Lifecycle: fixing both flap tickets closes the incident out of the
	// default view; state=all still shows it as closed.
	if err := trA.Fix(1); err != nil {
		t.Fatal(err)
	}
	if err := trB.Fix(1); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, c, "/incidents")
	if got := decode[IncidentsJSON](t, body); resp.StatusCode != http.StatusOK || got.Count != 1 {
		t.Fatalf("post-fix open view = %d incidents, want 1 (disk only)", got.Count)
	}
	resp, body = get(t, c, "/incidents?state=all")
	all := decode[IncidentsJSON](t, body)
	if resp.StatusCode != http.StatusOK || all.Count != 2 {
		t.Fatalf("state=all = %d incidents, want 2", all.Count)
	}
	if all.Incidents[0].State != "closed" || all.Incidents[0].OpenTickets != 0 {
		t.Fatalf("flap after fixes = %+v, want closed", all.Incidents[0])
	}
	if resp, _ := get(t, c, "/incidents?state=sideways"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad state should be 400")
	}
}

func TestReliabilityTrendEndpoint(t *testing.T) {
	gw, _, _, _, _ := newIntelGateway(t)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/reliability/trend")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "reliability") {
		t.Fatalf("pre-sweep = %d %s, want a 404 hint", resp.StatusCode, body)
	}

	trend := &intel.Trend{
		Seeds: 3, BaseSeed: 42, Weeks: 2,
		Points: []intel.TrendPoint{
			{Week: 1, Rate: intel.Band{Mean: 85, Std: 2, Min: 83, Max: 87, N: 3}},
			{Week: 2, Rate: intel.Band{Mean: 90, Std: 1, Min: 89, Max: 91, N: 3}},
		},
		FirstWeek:  intel.Band{Mean: 85, Std: 2, Min: 83, Max: 87, N: 3},
		FinalWeeks: intel.Band{Mean: 90, Std: 1, Min: 89, Max: 91, N: 3},
		BugsFiled:  intel.Band{Mean: 12, Std: 3, Min: 9, Max: 15, N: 3},
		BugsFixed:  intel.Band{Mean: 10, Std: 2, Min: 8, Max: 12, N: 3},
		BugsOpen:   intel.Band{Mean: 2, Std: 1, Min: 1, Max: 3, N: 3},
	}
	if v := gw.SetReliabilityTrend(trend); v != 1 {
		t.Fatalf("first Put version = %d, want 1", v)
	}

	resp, body = get(t, c, "/reliability/trend")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"r1"` {
		t.Fatalf("ETag = %s, want \"r1\"", etag)
	}
	if resp := getConditional(t, c, "/reliability/trend", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d, want 304", resp.StatusCode)
	}

	// The shared-renderer contract: a client decoding the body and calling
	// RenderText prints byte-for-byte what the CLI prints from the
	// locally-computed Trend. This is the CLI ≡ API equality.
	var fromWire intel.Trend
	if err := json.Unmarshal(body, &fromWire); err != nil {
		t.Fatalf("trend body does not decode: %v", err)
	}
	var cli, api bytes.Buffer
	trend.RenderText(&cli)
	fromWire.RenderText(&api)
	if !bytes.Equal(cli.Bytes(), api.Bytes()) {
		t.Fatalf("CLI and API renders differ:\n--- cli\n%s--- api\n%s", cli.String(), api.String())
	}

	// A new sweep replaces the stored trend under a fresh version.
	if v := gw.SetReliabilityTrend(trend); v != 2 {
		t.Fatalf("second Put version = %d, want 2", v)
	}
	if resp := getConditional(t, c, "/reliability/trend", etag); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional after new sweep = %d, want 200", resp.StatusCode)
	}
}

// TestShardInventoryAt is the ?at= satellite: site-scoped (and
// single-shard) inventory reads resolve a sim-time to the version that was
// current then, sharing the version's ETag and cache identity.
func TestShardInventoryAt(t *testing.T) {
	gw, stA, _, _, _ := newIntelGateway(t)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/sites/luxembourg/ref/inventory?at=43200")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?at=12h status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != `"v1"` {
		t.Fatalf("?at=12h ETag = %s, want \"v1\" (the archived version's identity)", got)
	}
	if resp.Header.Get("Cache-Control") == "" {
		t.Fatal("archived ?at answer should be hard-cacheable")
	}
	if v := decode[struct {
		Version int `json:"version"`
	}](t, body); v.Version != 1 {
		t.Fatalf("?at=12h version = %d, want 1", v.Version)
	}

	resp, _ = get(t, c, "/sites/luxembourg/ref/inventory?at=90000")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"v2"` {
		t.Fatalf("?at=25h = %d %s, want 200 \"v2\"", resp.StatusCode, resp.Header.Get("ETag"))
	}

	// T before the first capture is a 404, not an empty inventory.
	if resp, _ := get(t, c, "/sites/luxembourg/ref/inventory?at=100"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-capture ?at status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, c, "/sites/luxembourg/ref/inventory?at=junk"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad ?at should be 400")
	}
	if resp, _ := get(t, c, "/sites/luxembourg/ref/inventory?version=1&at=43200"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("?version together with ?at should be 400")
	}

	// The resolved version shares the per-version body cache (no fresh
	// materialization for a repeat read through either parameter).
	mats := stA.Materializations()
	get(t, c, "/sites/luxembourg/ref/inventory?at=43200")
	get(t, c, "/sites/luxembourg/ref/inventory?version=1")
	if got := stA.Materializations(); got != mats {
		t.Fatalf("repeat reads re-materialized: %d → %d", mats, got)
	}
}

// TestFederatedVersionHint is the error-body satellite: the federated
// inventory's ?version= rejection must point at the time-travel routes.
func TestFederatedVersionHint(t *testing.T) {
	gw, _, _, _, _ := newIntelGateway(t)
	c := inproc.Client(gw)

	resp, body := get(t, c, "/ref/inventory?version=2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	for _, want := range []string{"/sites/{site}/ref/inventory?version=N", "?at=", "/grid/at"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("400 body %q misses the %q hint", body, want)
		}
	}
}

// TestBugsRollupETag is the rollup satellite: /bugs/rollup carries a strong
// ETag keyed by the per-site tracker versions, 304s while nothing mutates,
// and moves on any filing — dedup bumps included.
func TestBugsRollupETag(t *testing.T) {
	gw, _, _, trA, trB := newIntelGateway(t)
	c := inproc.Client(gw)

	trA.File("net/switch-flap", "switch flapping", "net", "sw-1")
	trB.File("net/switch-flap", "switch flapping", "net", "sw-1")

	resp, body := get(t, c, "/bugs/rollup")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.Contains(etag, "br") {
		t.Fatalf("rollup ETag = %q, want a \"br…\" version key", etag)
	}
	roll := decode[BugsRollupJSON](t, body)
	if roll.Count != 1 || roll.Rollup[0].Tickets != 2 {
		t.Fatalf("rollup = %+v, want one two-ticket row", roll)
	}

	for i := 0; i < 10; i++ {
		if resp := getConditional(t, c, "/bugs/rollup", etag); resp.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional rollup %d = %d, want 304", i, resp.StatusCode)
		}
	}

	// state=all is a different resource: different key, never a cross-304.
	respAll, _ := get(t, c, "/bugs/rollup?state=all")
	if allTag := respAll.Header.Get("ETag"); allTag == etag {
		t.Fatal("state=all shares the open view's ETag")
	}

	// Any tracker mutation — here a dedup occurrence bump — moves the tag.
	trA.File("net/switch-flap", "switch flapping", "net", "sw-1")
	resp2 := getConditional(t, c, "/bugs/rollup", etag)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-filing conditional = %d, want 200", resp2.StatusCode)
	}
	if got := resp2.Header.Get("ETag"); got == etag {
		t.Fatal("filing did not move the rollup ETag")
	}
}

// TestIntelUnderChaos is the degraded-mode drill: with a site down, the
// intel views exclude it, their keys carry the down-set, and healing
// restores the healthy identities — so a degraded body can never satisfy a
// whole-grid conditional request.
func TestIntelUnderChaos(t *testing.T) {
	fed, gw := newChaosCampaign(t)
	c := inproc.Client(gw)
	nowSec := int(fed.Now().Seconds())
	path := "/grid/at?t=" + strconv.Itoa(nowSec)

	resp, body := get(t, c, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d", resp.StatusCode)
	}
	healthyETag := resp.Header.Get("ETag")
	healthy := decode[GridAtJSON](t, body)
	if len(healthy.Sites) != 8 || healthy.Degraded != nil {
		t.Fatalf("healthy view = %d cluster stores (degraded %v), want 8 clean", len(healthy.Sites), healthy.Degraded)
	}
	respInc, _ := get(t, c, "/incidents?state=all")
	healthyIncETag := respInc.Header.Get("ETag")

	if resp, body := postJSON(t, c, "/chaos/inject", `{"kind":"outage","sites":["lyon"]}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("inject = %d %s", resp.StatusCode, body)
	}

	resp, body = get(t, c, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d", resp.StatusCode)
	}
	downETag := resp.Header.Get("ETag")
	if downETag == healthyETag || !strings.Contains(downETag, "down:lyon") {
		t.Fatalf("degraded ETag = %s (healthy %s), want a down-set key", downETag, healthyETag)
	}
	down := decode[GridAtJSON](t, body)
	if len(down.Sites) != 4 || down.Degraded == nil {
		t.Fatalf("degraded view = %d cluster stores (degraded %v), want 4 + marker", len(down.Sites), down.Degraded)
	}
	for _, s := range down.Sites {
		if s.Site == "lyon" {
			t.Fatal("degraded /grid/at still lists the lost site")
		}
	}
	// A whole-grid conditional against the degraded resource misses.
	if resp := getConditional(t, c, path, healthyETag); resp.StatusCode == http.StatusNotModified {
		t.Fatal("healthy ETag matched a degraded body")
	}

	respInc, bodyInc := get(t, c, "/incidents?state=all")
	if got := respInc.Header.Get("ETag"); got == healthyIncETag || !strings.Contains(got, "down:lyon") {
		t.Fatalf("degraded /incidents ETag = %s, want a down-set key", got)
	}
	incs := decode[IncidentsJSON](t, bodyInc)
	for _, in := range incs.Incidents {
		for _, s := range in.Sites {
			if s == "lyon" {
				t.Fatal("degraded /incidents still folds the lost site's tickets")
			}
		}
	}

	// Heal: the healthy identities come back exactly.
	if resp, body := postJSON(t, c, "/chaos/heal", `{"all":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("heal = %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, c, path)
	if got := resp.Header.Get("ETag"); got != healthyETag {
		t.Fatalf("post-heal ETag = %s, want the healthy %s", got, healthyETag)
	}
	if resp := getConditional(t, c, path, healthyETag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("post-heal conditional = %d, want 304", resp.StatusCode)
	}
}
