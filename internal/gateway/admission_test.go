package gateway

// Admission-layer tests at the HTTP surface: unanchored submissions place,
// queue and shed through POST /oar/submit; a site outage fails queued
// reservations long before their deadline (wired through the federation's
// grid listener); and the duplicate-cluster-name regression routes
// deterministically to the lexicographically smallest live site.

import (
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/inproc"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func TestAdmissionQueueUnderChaos(t *testing.T) {
	_, gw := newFederatedCampaign(t, simclock.Hour)
	c := inproc.Client(gw)

	// A demand no site can ever start (larger than the whole grid) queues a
	// reservation instead of failing.
	resp, body := postJSON(t, c, "/oar/submit", `{"request":"nodes=999,walltime=1","user":"carol"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("oversized submit status = %d, want 202: %s", resp.StatusCode, body)
	}
	sub := decode[SubmitResponse](t, body)
	if sub.Admission != "queued" || sub.Reservation == nil {
		t.Fatalf("oversized submit = %+v", sub)
	}
	deadline := sub.Reservation.DeadlineSec

	resp, body = get(t, c, "/admit/queue")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admit/queue status = %d", resp.StatusCode)
	}
	q := decode[admitQueueJSON](t, body)
	if q.Stats.Depth != 1 || len(q.Waiting) != 1 || q.Waiting[0].User != "carol" {
		t.Fatalf("queue = %+v", q)
	}

	// The admission counters ride along on /metrics.
	_, body = get(t, c, "/metrics")
	mets := decode[MetricsReport](t, body)
	if mets.Admission == nil || mets.Admission.Queued != 1 {
		t.Fatalf("/metrics admission = %+v", mets.Admission)
	}

	// Losing every site fails the reservation fast — the grid listener
	// pumps the queue on inject, long before the reservation's deadline.
	if resp, body := postJSON(t, c, "/chaos/inject", `{"kind":"outage","sites":["luxembourg","nantes"]}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("inject status = %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, c, "/admit/queue")
	q = decode[admitQueueJSON](t, body)
	if q.Stats.Depth != 0 || q.Stats.Failed != 1 || len(q.Resolved) != 1 {
		t.Fatalf("queue after grid loss = %+v", q.Stats)
	}
	if r := q.Resolved[0]; r.Outcome != "failed" || r.AtSec >= deadline {
		t.Fatalf("resolved = %+v (deadline %g)", r, deadline)
	}
	for _, br := range q.Breakers {
		if br.State != "site-down" {
			t.Fatalf("breaker %s = %q, want site-down", br.Site, br.State)
		}
	}

	// Heal everything, then lose only one site: new arrivals re-route to
	// the survivor instead of queueing against the dead site.
	if resp, body := postJSON(t, c, "/chaos/heal", `{"all":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("heal status = %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, c, "/chaos/inject", `{"kind":"outage","sites":["luxembourg"]}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("inject status = %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, c, "/oar/submit", `{"request":"nodes=1,walltime=1","user":"carol"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-routed submit status = %d: %s", resp.StatusCode, body)
	}
	if sub := decode[SubmitResponse](t, body); sub.Site != "nantes" {
		t.Fatalf("re-routed submit landed on %q, want nantes", sub.Site)
	}
}

// admitQueueJSON mirrors admit.QueueJSON for decoding in tests (the wire
// shape is the contract, not the Go type).
type admitQueueJSON struct {
	Stats struct {
		Depth    int   `json:"depth"`
		Capacity int   `json:"capacity"`
		MaxDepth int   `json:"max_depth"`
		Queued   int64 `json:"queued"`
		Shed     int64 `json:"shed"`
		Failed   int64 `json:"failed"`
	} `json:"stats"`
	Waiting []struct {
		ID          int     `json:"id"`
		User        string  `json:"user"`
		DeadlineSec float64 `json:"deadline_sec"`
	} `json:"waiting"`
	Resolved []struct {
		ID      int     `json:"id"`
		Outcome string  `json:"outcome"`
		Site    string  `json:"site"`
		AtSec   float64 `json:"at_sec"`
	} `json:"resolved"`
	Breakers []struct {
		Site  string `json:"site"`
		State string `json:"state"`
	} `json:"breakers"`
}

// dupClusterSpec builds two single-cluster sites sharing one cluster name —
// legal on the real grid, where cluster names are only site-unique.
func dupClusterSpec() []testbed.ClusterSpec {
	base := testbed.ClusterSpec{
		Name: "grisou", Vendor: "Dell", ModelYear: 2016, NodeCount: 4,
		Sockets: 2, CoresPerSocket: 8, CPUModel: "Intel Xeon E5-2630v3", FreqMHz: 2400, RAMGB: 128,
		DiskCount: 1, DiskGB: 600, NICRateGbps: 10, NICDriver: "ixgbe",
		BIOSVersion: "2.2", PowerProfile: "balanced",
	}
	a, b := base, base
	a.Site = "nancy"
	b.Site = "lille"
	return []testbed.ClusterSpec{a, b}
}

func TestDuplicateClusterRoutesToSmallestLiveSite(t *testing.T) {
	fed := federation.New(federation.Config{
		Seed: 8,
		Spec: dupClusterSpec(),
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 0
			cfg.EnvMatrixPeriod = 0
			return cfg
		},
	})
	fed.Start()
	fed.Advance(simclock.Hour)
	gw := ForFederation(fed)
	c := inproc.Client(gw)

	// Both sites own a "grisou"; the anchor must route to the
	// lexicographically smallest live site, deterministically.
	resp, body := postJSON(t, c, "/oar/submit", `{"request":"cluster='grisou'/nodes=1,walltime=1","user":"dave"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("dup-cluster submit status = %d: %s", resp.StatusCode, body)
	}
	if sub := decode[SubmitResponse](t, body); sub.Site != "lille" {
		t.Fatalf("dup-cluster submit landed on %q, want lille", sub.Site)
	}

	// With the smallest owner down, the anchor routes to the surviving
	// owner instead of 503ing on the dead one.
	if resp, body := postJSON(t, c, "/chaos/inject", `{"kind":"outage","sites":["lille"]}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("inject status = %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, c, "/oar/submit", `{"request":"cluster='grisou'/nodes=1,walltime=1","user":"dave"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("failover submit status = %d: %s", resp.StatusCode, body)
	}
	if sub := decode[SubmitResponse](t, body); sub.Site != "nancy" {
		t.Fatalf("failover submit landed on %q, want nancy", sub.Site)
	}

	// The read-side cluster filter follows the same rule.
	resp, body = get(t, c, "/oar/resources?cluster=grisou")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster filter status = %d: %s", resp.StatusCode, body)
	}
	if got := decode[OARResourcesJSON](t, body); len(got.Nodes) != 4 {
		t.Fatalf("cluster filter = %d nodes, want 4", len(got.Nodes))
	}
}
