package gateway

// The site-scale chaos surface: /chaos admin endpoints drive grid events
// (site outages, WAN partitions, rolling maintenance) live against a
// federated campaign, and the availability queries below are what every
// scatter-gather handler consults to keep serving during a disaster —
// merged views exclude lost shards and carry a degraded marker, site-scoped
// routes for a lost site answer 503 with Retry-After instead of hanging on
// a frozen shard.

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/faults"
	"repro/internal/simclock"
)

// ChaosController is the federation-side surface the gateway's degraded-mode
// routing and /chaos endpoints consume. *federation.Federation implements it;
// a nil controller (monolithic assemblies) means every site is always up.
type ChaosController interface {
	// SiteAvailable reports whether the site's routes should serve (false
	// while an outage or maintenance window has the site down).
	SiteAvailable(site string) bool
	// DownSites lists the sites currently frozen by an outage or
	// maintenance window, in shard order.
	DownSites() []string
	// UnreachableSites lists the sites isolated from the merge plane by a
	// WAN partition (and not also down), in shard order.
	UnreachableSites() []string
	// InjectGrid injects a grid event at the current federated clock.
	InjectGrid(kind faults.GridKind, sites []string, window, duration simclock.Time) (faults.GridEvent, error)
	// HealGrid heals an active event now.
	HealGrid(id int) (faults.GridEvent, error)
	// ActiveGridEvents returns the active events sorted by ID.
	ActiveGridEvents() []faults.GridEvent
	// GridHistory returns every event ever injected, in injection order.
	GridHistory() []faults.GridEvent
}

// SetChaos installs the chaos controller (ForFederation wires the
// federation itself). Call before serving.
func (g *Gateway) SetChaos(c ChaosController) { g.chaos = c }

// SetAdvance overrides Gateway.Advance with an external driver.
// ForFederation points it at Federation.Advance so HTTP-driven time always
// goes through the barrier engine — which is what freezes downed shards and
// replays their catch-up ticks deterministically.
func (g *Gateway) SetAdvance(fn func(simclock.Time)) { g.advanceOverride = fn }

// siteAvailable reports whether the named site's routes should serve.
func (g *Gateway) siteAvailable(site string) bool {
	return g.chaos == nil || g.chaos.SiteAvailable(site)
}

// availableShards filters out shards whose site is currently down. The
// unreachable (partitioned) set is excluded too: those shards keep serving
// their site-scoped routes, but merged views must not show state the merge
// plane cannot reach.
func (g *Gateway) availableShards(in []*shard) []*shard {
	if g.chaos == nil {
		return in
	}
	cut := map[string]bool{}
	for _, s := range g.chaos.DownSites() {
		cut[s] = true
	}
	for _, s := range g.chaos.UnreachableSites() {
		cut[s] = true
	}
	if len(cut) == 0 {
		return in
	}
	out := make([]*shard, 0, len(in))
	for _, s := range in {
		if !cut[s.site] {
			out = append(out, s)
		}
	}
	return out
}

// DegradedJSON marks a merged response assembled while part of the grid was
// lost: which sites still contributed, and which were excluded and why.
type DegradedJSON struct {
	SurvivingSites   []string `json:"surviving_sites"`
	DownSites        []string `json:"down_sites,omitempty"`
	UnreachableSites []string `json:"unreachable_sites,omitempty"`
}

// degradedMarker returns the marker for merged responses, or nil while the
// grid is healthy (so healthy wire shapes are byte-identical to the
// pre-chaos gateway).
func (g *Gateway) degradedMarker() *DegradedJSON {
	if g.chaos == nil {
		return nil
	}
	down := g.chaos.DownSites()
	unreachable := g.chaos.UnreachableSites()
	if len(down) == 0 && len(unreachable) == 0 {
		return nil
	}
	cut := map[string]bool{}
	for _, s := range down {
		cut[s] = true
	}
	for _, s := range unreachable {
		cut[s] = true
	}
	marker := &DegradedJSON{DownSites: down, UnreachableSites: unreachable}
	for _, site := range g.sites {
		if !cut[site] {
			marker.SurvivingSites = append(marker.SurvivingSites, site)
		}
	}
	return marker
}

// siteUnavailable answers for a route whose site is lost: 503 with a
// Retry-After hint, the contract loadgen's disaster scenarios tolerate.
func siteUnavailable(w http.ResponseWriter, site string) {
	w.Header().Set("Retry-After", "60")
	httpError(w, http.StatusServiceUnavailable, "site "+site+" is down")
}

// ---- /chaos endpoints -------------------------------------------------------

// GridEventJSON is the wire form of one grid event.
type GridEventJSON struct {
	ID            int      `json:"id"`
	Kind          string   `json:"kind"`
	Sites         []string `json:"sites"`
	Signature     string   `json:"signature"`
	InjectedAtSec float64  `json:"injected_at_sec"`
	WindowSec     float64  `json:"window_sec,omitempty"`
	Healed        bool     `json:"healed,omitempty"`
	HealedAtSec   float64  `json:"healed_at_sec,omitempty"`
}

func gridEventJSON(e faults.GridEvent) GridEventJSON {
	return GridEventJSON{
		ID:            e.ID,
		Kind:          string(e.Kind),
		Sites:         e.Sites,
		Signature:     e.Signature(),
		InjectedAtSec: e.InjectedAt.Seconds(),
		WindowSec:     e.Window.Seconds(),
		Healed:        e.Healed,
		HealedAtSec:   e.HealedAt.Seconds(),
	}
}

func gridEventsJSON(events []faults.GridEvent) []GridEventJSON {
	out := make([]GridEventJSON, len(events))
	for i, e := range events {
		out[i] = gridEventJSON(e)
	}
	return out
}

// ChaosJSON is the wire form of GET /chaos.
type ChaosJSON struct {
	Degraded         bool            `json:"degraded"`
	DownSites        []string        `json:"down_sites"`
	UnreachableSites []string        `json:"unreachable_sites"`
	Active           []GridEventJSON `json:"active"`
	History          []GridEventJSON `json:"history"`
}

func (g *Gateway) handleChaos(w http.ResponseWriter, r *http.Request) {
	if g.chaos == nil {
		notConfigured(w, "chaos")
		return
	}
	out := ChaosJSON{
		DownSites:        g.chaos.DownSites(),
		UnreachableSites: g.chaos.UnreachableSites(),
		Active:           gridEventsJSON(g.chaos.ActiveGridEvents()),
		History:          gridEventsJSON(g.chaos.GridHistory()),
	}
	out.Degraded = len(out.DownSites)+len(out.UnreachableSites) > 0
	if out.DownSites == nil {
		out.DownSites = []string{}
	}
	if out.UnreachableSites == nil {
		out.UnreachableSites = []string{}
	}
	writeJSON(w, out)
}

// ChaosInjectRequest is the body of POST /chaos/inject.
type ChaosInjectRequest struct {
	// Kind accepts the canonical signatures (site-outage, wan-partition,
	// rolling-maintenance) and the schedule-string aliases (outage,
	// partition, maintenance).
	Kind  string   `json:"kind"`
	Sites []string `json:"sites"`
	// WindowSec is the per-site maintenance window (rolling maintenance
	// only; 0 = one federation barrier).
	WindowSec float64 `json:"window_sec,omitempty"`
	// DurationSec, for outages and partitions, schedules the heal that many
	// simulated seconds later (0 = heal manually via /chaos/heal).
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// parseGridKind resolves the wire spellings of a grid-event kind.
func parseGridKind(s string) (faults.GridKind, bool) {
	switch s {
	case "outage", string(faults.SiteOutage):
		return faults.SiteOutage, true
	case "partition", string(faults.WANPartition):
		return faults.WANPartition, true
	case "maintenance", string(faults.RollingMaintenance):
		return faults.RollingMaintenance, true
	}
	return "", false
}

func (g *Gateway) handleChaosInject(w http.ResponseWriter, r *http.Request) {
	if g.chaos == nil {
		notConfigured(w, "chaos")
		return
	}
	var req ChaosInjectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	kind, ok := parseGridKind(req.Kind)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown kind "+strconv.Quote(req.Kind))
		return
	}
	if req.WindowSec < 0 || req.DurationSec < 0 {
		httpError(w, http.StatusBadRequest, "window_sec and duration_sec must be >= 0")
		return
	}
	ev, err := g.chaos.InjectGrid(kind, req.Sites, secondsToSim(req.WindowSec), secondsToSim(req.DurationSec))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSONStatus(w, http.StatusCreated, gridEventJSON(ev))
}

// ChaosHealRequest is the body of POST /chaos/heal: one event by ID, or
// every active event at once.
type ChaosHealRequest struct {
	ID  int  `json:"id,omitempty"`
	All bool `json:"all,omitempty"`
}

// ChaosHealResponse is the reply of POST /chaos/heal.
type ChaosHealResponse struct {
	Healed []GridEventJSON `json:"healed"`
}

func (g *Gateway) handleChaosHeal(w http.ResponseWriter, r *http.Request) {
	if g.chaos == nil {
		notConfigured(w, "chaos")
		return
	}
	var req ChaosHealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	var healed []faults.GridEvent
	switch {
	case req.All:
		for _, e := range g.chaos.ActiveGridEvents() {
			h, err := g.chaos.HealGrid(e.ID)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			healed = append(healed, h)
		}
	case req.ID > 0:
		h, err := g.chaos.HealGrid(req.ID)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		healed = append(healed, h)
	default:
		httpError(w, http.StatusBadRequest, `want {"id": N} or {"all": true}`)
		return
	}
	writeJSON(w, ChaosHealResponse{Healed: gridEventsJSON(healed)})
}
