package gateway

// The Reference API endpoints. These are the gateway's hottest reads —
// scripts poll the testbed description constantly — so both are built
// around the store's monotone version counter:
//
//   - the ETag of /ref/inventory?version=N is "vN"; the current inventory's
//     ETag advances exactly when Store.Update archives a new version;
//   - a conditional request whose ETag still matches returns 304 before any
//     snapshot is materialized or marshaled;
//   - rendered bodies are cached per version, so even non-conditional hot
//     reads marshal each version once.

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/refapi"
)

func versionETag(v int) string { return `"v` + strconv.Itoa(v) + `"` }

// parseVersion reads a 1-based version query parameter; 0 means "not
// given".
func parseVersion(r *http.Request, key string) (int, error) {
	q := r.URL.Query().Get(key)
	if q == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad %s %q", key, q)
	}
	return v, nil
}

func (g *Gateway) handleRefInventory(w http.ResponseWriter, r *http.Request) {
	st := g.cfg.Ref
	if st == nil {
		notConfigured(w, "reference API")
		return
	}
	cur := st.VersionCount()
	ver, err := parseVersion(r, "version")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ver == 0 {
		ver = cur
	}
	if ver > cur {
		httpError(w, http.StatusNotFound, fmt.Sprintf("version %d not archived (latest is %d)", ver, cur))
		return
	}
	etag := versionETag(ver)
	w.Header().Set("ETag", etag)
	if ver < cur {
		// Archived versions are immutable: let clients cache them hard.
		w.Header().Set("Cache-Control", "public, max-age=86400")
	}
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := g.inventoryBody(st, ver)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// inventoryBody returns the rendered JSON of one archived version, from the
// per-version cache when possible. The cache is bounded: campaigns archive
// thousands of versions but traffic concentrates on the newest few. The
// render happens outside invMu — cache hits (the hot path) must never
// queue behind a cache miss marshaling a multi-thousand-node snapshot; a
// duplicate render per version under contention is the cheaper price.
func (g *Gateway) inventoryBody(st *refapi.Store, ver int) ([]byte, error) {
	g.invMu.Lock()
	body, ok := g.invCache[ver]
	g.invMu.Unlock()
	if ok {
		return body, nil
	}
	snap := st.Version(ver)
	if snap == nil {
		return nil, fmt.Errorf("version %d vanished", ver)
	}
	body, err := snap.MarshalJSONIndent()
	if err != nil {
		return nil, err
	}
	g.invMu.Lock()
	defer g.invMu.Unlock()
	if cached, ok := g.invCache[ver]; ok {
		return cached, nil // raced with another renderer; keep its copy
	}
	// Bounded: evict oldest versions first, never the one just rendered —
	// under churn the hot current version must stay cached. When every
	// cached entry is newer (a client scraping history oldest-ward), skip
	// caching entirely rather than grow past the bound.
	for len(g.invCache) >= 8 {
		oldest := ver
		for v := range g.invCache {
			if v < oldest {
				oldest = v
			}
		}
		if oldest == ver {
			return body, nil
		}
		delete(g.invCache, oldest)
	}
	g.invCache[ver] = body
	return body, nil
}

// RefDiffJSON is the wire form of GET /ref/diff.
type RefDiffJSON struct {
	From        int                 `json:"from"`
	To          int                 `json:"to"`
	Count       int                 `json:"count"`
	Differences []refapi.Difference `json:"differences"`
}

func (g *Gateway) handleRefDiff(w http.ResponseWriter, r *http.Request) {
	st := g.cfg.Ref
	if st == nil {
		notConfigured(w, "reference API")
		return
	}
	cur := st.VersionCount()
	from, err := parseVersion(r, "from")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := parseVersion(r, "to")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if to == 0 {
		to = cur
	}
	if from == 0 {
		// Default: what changed in the latest version.
		from = to - 1
		if from < 1 {
			from = 1
		}
	}
	if from > cur || to > cur {
		httpError(w, http.StatusNotFound, fmt.Sprintf("version range %d..%d exceeds latest %d", from, to, cur))
		return
	}
	if from > to {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("from %d > to %d", from, to))
		return
	}
	etag := fmt.Sprintf(`"v%d-v%d"`, from, to)
	w.Header().Set("ETag", etag)
	if to < cur {
		w.Header().Set("Cache-Control", "public, max-age=86400")
	}
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := g.refDiffBody(st, from, to)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// refDiffBody renders (and memoizes) the diff between two archived
// versions. A single-entry cache suffices: traffic overwhelmingly asks for
// the same (latest-1, latest) pair until the store moves on.
func (g *Gateway) refDiffBody(st *refapi.Store, from, to int) ([]byte, error) {
	g.diffMu.Lock()
	defer g.diffMu.Unlock()
	if g.diffBody != nil && g.diffFrom == from && g.diffTo == to {
		return g.diffBody, nil
	}
	a, b := st.Version(from), st.Version(to)
	if a == nil || b == nil {
		return nil, fmt.Errorf("version range %d..%d vanished", from, to)
	}
	diffs := refapi.DiffSnapshots(a, b)
	if diffs == nil {
		diffs = []refapi.Difference{}
	}
	out := RefDiffJSON{From: from, To: to, Count: len(diffs), Differences: diffs}
	body, err := marshalIndent(out)
	if err != nil {
		return nil, err
	}
	g.diffFrom, g.diffTo, g.diffBody = from, to, body
	return body, nil
}
