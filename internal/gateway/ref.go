package gateway

// The Reference API endpoints. These are the gateway's hottest reads —
// scripts poll the testbed description constantly — so both are built
// around the store's monotone version counter:
//
//   - the ETag of /ref/inventory?version=N is "vN"; the current inventory's
//     ETag advances exactly when Store.Update archives a new version;
//   - a conditional request whose ETag still matches returns 304 before any
//     snapshot is materialized or marshaled;
//   - rendered bodies are cached per version, so even non-conditional hot
//     reads marshal each version once.
//
// On a federated gateway the unscoped paths scatter-gather: the ETag joins
// every shard's version counter ("v3.1.7"), a conditional hit answers 304
// without touching any store, and the merged body nests one per-site
// section, each listing its cluster stores (one per micro-shard).
// Archived-version queries (?version=, ?from=, ?to=) are per store by
// nature and live on /sites/{site}/ref/...; the federated paths reject
// them with a pointer there. A micro-sharded site's scoped routes serve a
// joined per-cluster view by default ("sv"/"sd" ETags) and require
// ?cluster=X for archived access, which then has full single-store
// semantics.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/refapi"
)

func versionETag(v int) string { return `"v` + strconv.Itoa(v) + `"` }

// parseVersion reads a 1-based version query parameter; 0 means "not
// given".
func parseVersion(r *http.Request, key string) (int, error) {
	q := r.URL.Query().Get(key)
	if q == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad %s %q", key, q)
	}
	return v, nil
}

// refShards returns the shards carrying a Reference API store.
func (g *Gateway) refShards() []*shard {
	return refShardsOf(g.shards)
}

// refShardsOf filters a shard set down to those carrying a Reference API
// store.
func refShardsOf(shards []*shard) []*shard {
	var out []*shard
	for _, s := range shards {
		if s.cfg.Ref != nil {
			out = append(out, s)
		}
	}
	return out
}

// siteClusterShard finds the shard in a site's set labeled with the named
// cluster.
func siteClusterShard(shards []*shard, cluster string) *shard {
	for _, s := range shards {
		if s.cluster == cluster {
			return s
		}
	}
	return nil
}

// clusterList renders a site's micro-shard cluster labels for error hints.
func clusterList(shards []*shard) string {
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.cluster
	}
	return strings.Join(names, ", ")
}

func (g *Gateway) handleRefInventory(w http.ResponseWriter, r *http.Request) {
	shards := g.refShards()
	switch len(shards) {
	case 0:
		notConfigured(w, "reference API")
	case 1:
		if g.shardDown(shards[0]) {
			siteUnavailable(w, shards[0].site)
			return
		}
		g.serveShardInventory(shards[0], w, r)
	default:
		g.serveFederatedInventory(shards, w, r)
	}
}

// downSetKey suffixes a federated cache/ETag key with the lost-site set, so
// a degraded merge never serves (or matches a conditional request against)
// a body rendered while the grid was whole, and vice versa.
func downSetKey(d *DegradedJSON) string {
	if d == nil {
		return ""
	}
	lost := append(append([]string(nil), d.DownSites...), d.UnreachableSites...)
	return "|down:" + strings.Join(lost, "+")
}

// serveShardInventory is the single-store path: full ?version= archive
// access with per-version ETags, plus ?at= time travel (the version that
// was current at a sim-time, resolved by one binary search — same ETag and
// cache identity as asking for that version by number).
func (g *Gateway) serveShardInventory(s *shard, w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Ref
	var cur int
	s.rlocked(func() { cur = st.VersionCount() })
	ver, err := parseVersion(r, "version")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if atQ := r.URL.Query().Get("at"); atQ != "" {
		if ver != 0 {
			httpError(w, http.StatusBadRequest, "pick one of ?version= and ?at=")
			return
		}
		sec, err := floatParam(atQ, 0)
		if err != nil || sec < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad at %q (simtime seconds)", atQ))
			return
		}
		var ok bool
		s.rlocked(func() { ver, ok = st.VersionAt(secondsToSim(sec)) })
		if !ok {
			httpError(w, http.StatusNotFound,
				fmt.Sprintf("no capture at or before t=%ss (the first capture postdates it)", atQ))
			return
		}
	}
	if ver == 0 {
		ver = cur
	}
	if ver > cur {
		httpError(w, http.StatusNotFound, fmt.Sprintf("version %d not archived (latest is %d)", ver, cur))
		return
	}
	etag := versionETag(ver)
	w.Header().Set("ETag", etag)
	if ver < cur {
		// Archived versions are immutable: let clients cache them hard.
		w.Header().Set("Cache-Control", "public, max-age=86400")
	}
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := s.inventoryBody(ver)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// inventoryBody returns the rendered JSON of one archived version, from the
// per-version cache when possible. The cache is bounded: campaigns archive
// thousands of versions but traffic concentrates on the newest few. The
// render happens outside invMu — cache hits (the hot path) must never
// queue behind a cache miss marshaling a multi-thousand-node snapshot; a
// duplicate render per version under contention is the cheaper price.
func (s *shard) inventoryBody(ver int) ([]byte, error) {
	s.invMu.Lock()
	body, ok := s.invCache[ver]
	s.invMu.Unlock()
	if ok {
		return body, nil
	}
	var snap *refapi.Snapshot
	s.rlocked(func() { snap = s.cfg.Ref.Version(ver) })
	if snap == nil {
		return nil, fmt.Errorf("version %d vanished", ver)
	}
	body, err := snap.MarshalJSONIndent()
	if err != nil {
		return nil, err
	}
	s.invMu.Lock()
	defer s.invMu.Unlock()
	if cached, ok := s.invCache[ver]; ok {
		return cached, nil // raced with another renderer; keep its copy
	}
	// Bounded: evict oldest versions first, never the one just rendered —
	// under churn the hot current version must stay cached. When every
	// cached entry is newer (a client scraping history oldest-ward), skip
	// caching entirely rather than grow past the bound.
	for len(s.invCache) >= 8 {
		oldest := ver
		for v := range s.invCache {
			if v < oldest {
				oldest = v
			}
		}
		if oldest == ver {
			return body, nil
		}
		delete(s.invCache, oldest)
	}
	s.invCache[ver] = body
	return body, nil
}

// ClusterInventoryJSON is one store's slice of a site inventory section —
// a whole-site store (Cluster empty) or one cluster micro-shard.
type ClusterInventoryJSON struct {
	Cluster   string           `json:"cluster,omitempty"`
	Version   int              `json:"version"`
	Inventory *refapi.Snapshot `json:"inventory"`
}

// SiteInventoryJSON is one site's section of a federated (or joined
// site-scoped) inventory: its stores in cluster order.
type SiteInventoryJSON struct {
	Site     string                 `json:"site"`
	Clusters []ClusterInventoryJSON `json:"clusters"`
}

// FederatedInventoryJSON is the wire form of GET /ref/inventory on a
// federated gateway: one per-site section per surviving site, in shard
// order.
type FederatedInventoryJSON struct {
	Degraded *DegradedJSON       `json:"degraded,omitempty"`
	Sites    []SiteInventoryJSON `json:"sites"`
}

// joinedVersions snapshots every shard's version counter (each under its
// own gate) and renders the combined ETag payload, e.g. "v3.1.7".
func joinedVersions(shards []*shard) (string, []int) {
	vers := make([]int, len(shards))
	var sb strings.Builder
	sb.WriteByte('v')
	for i, s := range shards {
		s.rlocked(func() { vers[i] = s.cfg.Ref.VersionCount() })
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.Itoa(vers[i]))
	}
	return sb.String(), vers
}

func (g *Gateway) serveFederatedInventory(shards []*shard, w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("version") != "" {
		httpError(w, http.StatusBadRequest,
			"archived versions are per-site; use /sites/{site}/ref/inventory?version=N "+
				"(or time travel with ?at=<simtime seconds> there, and /grid/at?t= for the whole grid)")
		return
	}
	degraded := g.degradedMarker()
	shards = g.availableShards(shards)
	key, vers := joinedVersions(shards)
	key += downSetKey(degraded)
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.fedMu.Lock()
	body := g.fedInvBody
	hit := g.fedInvKey == key && body != nil
	g.fedMu.Unlock()
	if !hit {
		out := FederatedInventoryJSON{Degraded: degraded, Sites: []SiteInventoryJSON{}}
		idxOf := map[string]int{}
		for i, s := range shards {
			var snap *refapi.Snapshot
			s.rlocked(func() { snap = s.cfg.Ref.Version(vers[i]) })
			if snap == nil {
				httpError(w, http.StatusInternalServerError,
					fmt.Sprintf("site %q version %d vanished", s.site, vers[i]))
				return
			}
			j, ok := idxOf[s.site]
			if !ok {
				j = len(out.Sites)
				idxOf[s.site] = j
				out.Sites = append(out.Sites, SiteInventoryJSON{Site: s.site})
			}
			out.Sites[j].Clusters = append(out.Sites[j].Clusters,
				ClusterInventoryJSON{Cluster: s.cluster, Version: vers[i], Inventory: snap})
		}
		var err error
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.fedMu.Lock()
		g.fedInvKey, g.fedInvBody = key, body
		g.fedMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// RefDiffJSON is the wire form of GET /ref/diff.
type RefDiffJSON struct {
	Site        string              `json:"site,omitempty"`    // set in federated sections
	Cluster     string              `json:"cluster,omitempty"` // micro-shard sections
	From        int                 `json:"from"`
	To          int                 `json:"to"`
	Count       int                 `json:"count"`
	Differences []refapi.Difference `json:"differences"`
}

// SiteDiffJSON is one site's section of a federated (or joined
// site-scoped) diff: each store's latest-step diff, in cluster order.
type SiteDiffJSON struct {
	Site     string        `json:"site"`
	Count    int           `json:"count"`
	Clusters []RefDiffJSON `json:"clusters"`
}

// FederatedDiffJSON is the wire form of GET /ref/diff on a federated
// gateway: one per-site section per surviving site, in shard order.
type FederatedDiffJSON struct {
	Degraded *DegradedJSON  `json:"degraded,omitempty"`
	Count    int            `json:"count"`
	Sites    []SiteDiffJSON `json:"sites"`
}

func (g *Gateway) handleRefDiff(w http.ResponseWriter, r *http.Request) {
	shards := g.refShards()
	switch len(shards) {
	case 0:
		notConfigured(w, "reference API")
	case 1:
		if g.shardDown(shards[0]) {
			siteUnavailable(w, shards[0].site)
			return
		}
		g.serveShardDiff(shards[0], w, r)
	default:
		g.serveFederatedDiff(shards, w, r)
	}
}

func (g *Gateway) serveShardDiff(s *shard, w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Ref
	var cur int
	s.rlocked(func() { cur = st.VersionCount() })
	from, err := parseVersion(r, "from")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := parseVersion(r, "to")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if to == 0 {
		to = cur
	}
	if from == 0 {
		// Default: what changed in the latest version.
		from = to - 1
		if from < 1 {
			from = 1
		}
	}
	if from > cur || to > cur {
		httpError(w, http.StatusNotFound, fmt.Sprintf("version range %d..%d exceeds latest %d", from, to, cur))
		return
	}
	if from > to {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("from %d > to %d", from, to))
		return
	}
	etag := fmt.Sprintf(`"v%d-v%d"`, from, to)
	w.Header().Set("ETag", etag)
	if to < cur {
		w.Header().Set("Cache-Control", "public, max-age=86400")
	}
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := s.refDiffBody(from, to)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// refDiffBody renders (and memoizes) the diff between two archived
// versions. A single-entry cache suffices: traffic overwhelmingly asks for
// the same (latest-1, latest) pair until the store moves on.
func (s *shard) refDiffBody(from, to int) ([]byte, error) {
	s.diffMu.Lock()
	defer s.diffMu.Unlock()
	if s.diffBody != nil && s.diffFrom == from && s.diffTo == to {
		return s.diffBody, nil
	}
	diffs, err := s.diffSlice(from, to)
	if err != nil {
		return nil, err
	}
	out := RefDiffJSON{From: from, To: to, Count: len(diffs), Differences: diffs}
	body, err := marshalIndent(out)
	if err != nil {
		return nil, err
	}
	s.diffFrom, s.diffTo, s.diffBody = from, to, body
	return body, nil
}

// diffSlice computes the differences between two archived versions under
// the shard gate.
func (s *shard) diffSlice(from, to int) ([]refapi.Difference, error) {
	var a, b *refapi.Snapshot
	s.rlocked(func() { a, b = s.cfg.Ref.Version(from), s.cfg.Ref.Version(to) })
	if a == nil || b == nil {
		return nil, fmt.Errorf("version range %d..%d vanished", from, to)
	}
	diffs := refapi.DiffSnapshots(a, b)
	if diffs == nil {
		diffs = []refapi.Difference{}
	}
	return diffs, nil
}

func (g *Gateway) serveFederatedDiff(shards []*shard, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("from") != "" || q.Get("to") != "" {
		httpError(w, http.StatusBadRequest,
			"version ranges are per-site; use /sites/{site}/ref/diff?from=&to=")
		return
	}
	degraded := g.degradedMarker()
	shards = g.availableShards(shards)
	key, vers := joinedVersions(shards)
	key = "d" + key + downSetKey(degraded)
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.fedMu.Lock()
	body := g.fedDiffBody
	hit := g.fedDiffKey == key && body != nil
	g.fedMu.Unlock()
	if !hit {
		out := FederatedDiffJSON{Degraded: degraded, Sites: []SiteDiffJSON{}}
		idxOf := map[string]int{}
		for i, s := range shards {
			to := vers[i]
			from := to - 1
			if from < 1 {
				from = 1
			}
			diffs, err := s.diffSlice(from, to)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			j, ok := idxOf[s.site]
			if !ok {
				j = len(out.Sites)
				idxOf[s.site] = j
				out.Sites = append(out.Sites, SiteDiffJSON{Site: s.site})
			}
			out.Sites[j].Clusters = append(out.Sites[j].Clusters,
				RefDiffJSON{Cluster: s.cluster, From: from, To: to,
					Count: len(diffs), Differences: diffs})
			out.Sites[j].Count += len(diffs)
			out.Count += len(diffs)
		}
		var err error
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.fedMu.Lock()
		g.fedDiffKey, g.fedDiffBody = key, body
		g.fedMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// ---- site-scoped views over micro-shards ------------------------------------

// siteRefCache is one rendered joined site view plus the joined version
// key it was rendered at.
type siteRefCache struct {
	key  string
	body []byte
}

// serveSiteInventory implements /sites/{site}/ref/inventory. A site with a
// single store keeps full single-store semantics on the bare path
// (?version=, ?at=, per-version ETags). A micro-sharded site serves a
// joined per-cluster view by default — ETag "sv3.1.7" over its stores'
// version counters, conditional 304s, body cached per joined version —
// and requires ?cluster=X for archived access, which then has full
// single-store semantics against that cluster's store.
func (g *Gateway) serveSiteInventory(w http.ResponseWriter, r *http.Request, site string) {
	shards := refShardsOf(g.siteShards[site])
	if len(shards) == 0 {
		notConfigured(w, "reference API")
		return
	}
	if len(shards) == 1 {
		g.serveShardInventory(shards[0], w, r)
		return
	}
	q := r.URL.Query()
	if cl := q.Get("cluster"); cl != "" {
		s := siteClusterShard(shards, cl)
		if s == nil {
			httpError(w, http.StatusNotFound, fmt.Sprintf("no cluster %q at site %q", cl, site))
			return
		}
		g.serveShardInventory(s, w, r)
		return
	}
	if q.Get("version") != "" || q.Get("at") != "" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"site %q is micro-sharded and archives are per cluster store; add ?cluster=X (one of: %s)",
			site, clusterList(shards)))
		return
	}
	key, vers := joinedVersions(shards)
	key = "s" + key
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.siteRefMu.Lock()
	cached := g.siteInvCache[site]
	g.siteRefMu.Unlock()
	body := cached.body
	if cached.key != key || body == nil {
		out := SiteInventoryJSON{Site: site}
		for i, s := range shards {
			var snap *refapi.Snapshot
			s.rlocked(func() { snap = s.cfg.Ref.Version(vers[i]) })
			if snap == nil {
				httpError(w, http.StatusInternalServerError,
					fmt.Sprintf("cluster %q version %d vanished", s.cluster, vers[i]))
				return
			}
			out.Clusters = append(out.Clusters,
				ClusterInventoryJSON{Cluster: s.cluster, Version: vers[i], Inventory: snap})
		}
		var err error
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.siteRefMu.Lock()
		if g.siteInvCache == nil {
			g.siteInvCache = map[string]siteRefCache{}
		}
		g.siteInvCache[site] = siteRefCache{key: key, body: body}
		g.siteRefMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// serveSiteDiff implements /sites/{site}/ref/diff with the same shape as
// serveSiteInventory: single-store semantics for a one-store site or with
// ?cluster=X, a joined latest-step per-cluster view ("sd"-prefixed ETag)
// otherwise; ?from=/?to= on the joined view point at ?cluster=.
func (g *Gateway) serveSiteDiff(w http.ResponseWriter, r *http.Request, site string) {
	shards := refShardsOf(g.siteShards[site])
	if len(shards) == 0 {
		notConfigured(w, "reference API")
		return
	}
	if len(shards) == 1 {
		g.serveShardDiff(shards[0], w, r)
		return
	}
	q := r.URL.Query()
	if cl := q.Get("cluster"); cl != "" {
		s := siteClusterShard(shards, cl)
		if s == nil {
			httpError(w, http.StatusNotFound, fmt.Sprintf("no cluster %q at site %q", cl, site))
			return
		}
		g.serveShardDiff(s, w, r)
		return
	}
	if q.Get("from") != "" || q.Get("to") != "" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"site %q is micro-sharded and version ranges are per cluster store; add ?cluster=X (one of: %s)",
			site, clusterList(shards)))
		return
	}
	key, vers := joinedVersions(shards)
	key = "sd" + key
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	g.siteRefMu.Lock()
	cached := g.siteDiffCache[site]
	g.siteRefMu.Unlock()
	body := cached.body
	if cached.key != key || body == nil {
		out := SiteDiffJSON{Site: site}
		for i, s := range shards {
			to := vers[i]
			from := to - 1
			if from < 1 {
				from = 1
			}
			diffs, err := s.diffSlice(from, to)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			out.Clusters = append(out.Clusters,
				RefDiffJSON{Cluster: s.cluster, From: from, To: to,
					Count: len(diffs), Differences: diffs})
			out.Count += len(diffs)
		}
		var err error
		body, err = marshalIndent(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.siteRefMu.Lock()
		if g.siteDiffCache == nil {
			g.siteDiffCache = map[string]siteRefCache{}
		}
		g.siteDiffCache[site] = siteRefCache{key: key, body: body}
		g.siteRefMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}
