package gateway

// Assembly over a federated campaign. Kept in its own file so the
// federation dependency stays out of the core gateway machinery.

import (
	"repro/internal/federation"
)

// ForFederation mounts one gateway shard per federation shard: each site's
// OAR, Reference API store, monitor, bug tracker and CI server is served
// behind that site's own lock, with the shard's Advance hook stepping only
// its own framework. Gateway.Advance therefore steps the sites
// concurrently under per-shard write locks, and Gateway.AdvanceSite steps
// exactly one — reads against every other site keep flowing.
func ForFederation(fed *federation.Federation) *Gateway {
	var shards []ShardConfig
	for _, sh := range fed.Shards() {
		f := sh.F
		shards = append(shards, ShardConfig{
			Site: sh.Site,
			Config: Config{
				Clock:   f.Clock,
				TB:      f.TB,
				OAR:     f.OAR,
				Ref:     f.Ref,
				Monitor: f.Monitor,
				Bugs:    f.Bugs,
				CI:      f.CI,
				Advance: f.RunFor,
			},
		})
	}
	gw := NewFederated(shards)
	gw.SetAdvanceWorkers(fed.Workers())
	return gw
}
