package gateway

// Assembly over a federated campaign. Kept in its own file so the
// federation dependency stays out of the core gateway machinery.

import (
	"time"

	"repro/internal/admit"
	"repro/internal/federation"
	"repro/internal/sched"
)

// ForFederation mounts one gateway shard per federation micro-shard: each
// cluster's OAR, Reference API store, monitor, bug tracker and CI server
// is served behind that micro-shard's own lock, labeled with the owning
// site. Time is wired through the federation's barrier engine in both
// directions:
//
//   - Gateway.Advance delegates to Federation.Advance, whose per-shard
//     barrier ticks run under the owning gateway shard's write lock (the
//     step gate below) — so downed sites freeze all of their micro-shards,
//     heals replay catch-up ticks, and reads against live shards keep
//     flowing throughout;
//   - Gateway.AdvanceSite steps exactly one site through
//     Federation.StepSite, which runs all of the site's micro-shards ahead
//     of the federated clock in lockstep and lets the next Advance skip
//     them rather than double-step.
//
// The federation is also installed as the gateway's chaos controller, so
// grid events injected via POST /chaos/inject (or a schedule) drive the
// degraded-mode routing: lost sites answer 503, merges exclude them.
func ForFederation(fed *federation.Federation) *Gateway {
	var shards []ShardConfig
	for _, sh := range fed.Shards() {
		f := sh.F
		shards = append(shards, ShardConfig{
			Site:    sh.Site,
			Cluster: sh.Cluster,
			Config: Config{
				Clock:   f.Clock,
				TB:      f.TB,
				OAR:     f.OAR,
				Ref:     f.Ref,
				Monitor: f.Monitor,
				Bugs:    f.Bugs,
				CI:      f.CI,
				// No per-shard Advance hook: every step — barrier ticks and
				// AdvanceSite alike — reaches the micro-shards through the
				// federation, which locks each via the step gate below.
			},
		})
	}
	gw := NewFederated(shards)
	gw.SetAdvanceWorkers(fed.Workers())
	gw.SetChaos(fed)
	gw.SetAdvance(fed.Advance)
	gw.siteAdvance = fed.StepSite
	fed.SetStepGate(func(site, cluster string, step func()) {
		s := gw.shardFor(site, cluster)
		if s == nil {
			step()
			return
		}
		s.sim.Lock()
		defer s.sim.Unlock()
		start := time.Now()
		step()
		gw.lockHold.record(time.Since(start))
	})
	// Grid admission: unanchored submissions route to the least-loaded live
	// site or queue against freed capacity; the federation's grid listener
	// pumps the queue on every advance and chaos transition so a site outage
	// fails queued reservations fast. The grid-wide peak policy defers
	// whole-cluster demands during working hours.
	policy := sched.DefaultGridPolicy()
	gw.EnableAdmission(admit.Config{Now: fed.Now, Policy: &policy})
	fed.SetGridListener(gw.pumpAdmission)
	return gw
}
