package gateway

// The site-scoped routes: /sites lists the federation layout, and
// /sites/{site}/... exposes the shard(s) owning the site — one whole-grid
// shard narrowed to the site (monolithic), or all of the site's
// per-cluster micro-shards merged (federated). These are the endpoints
// whose latency is immune to other sites' campaign progress:
// /sites/{site}/... takes only the owning shards' read gates, and /sites
// takes none at all (topology is precomputed at assembly; node states are
// read through the testbed's own mutex). (The mux predates Go 1.22
// pattern wildcards, so the subtree is dispatched by hand; every route
// under /sites/ shares one metrics bucket.)

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/testbed"
)

// SiteJSON is one entry of GET /sites. Shard is the index of the site's
// coordinator shard (its first micro-shard, when cluster-carved).
type SiteJSON struct {
	Name     string         `json:"name"`
	Shard    int            `json:"shard"`
	Clusters []string       `json:"clusters,omitempty"`
	Nodes    int            `json:"nodes,omitempty"`
	Cores    int            `json:"cores,omitempty"`
	States   map[string]int `json:"states,omitempty"`
	// Down and Unreachable flag sites lost to an active grid event: down
	// sites answer 503 on their scoped routes, unreachable (partitioned)
	// sites still serve but are excluded from merged views.
	Down        bool `json:"down,omitempty"`
	Unreachable bool `json:"unreachable,omitempty"`
}

// SitesJSON is the wire form of GET /sites.
type SitesJSON struct {
	Shards   int           `json:"shards"`
	Degraded *DegradedJSON `json:"degraded,omitempty"`
	Sites    []SiteJSON    `json:"sites"`
}

// siteTopo is one site's precomputed layout: everything except node
// states, which are live.
type siteTopo struct {
	entry SiteJSON // States left nil; filled per request
	nodes []string
}

// siteTopology snapshots a shard's site layout at assembly time, when no
// campaign is advancing — the topology (names, clusters, core counts)
// never changes afterwards.
func siteTopology(label string, tb *testbed.Testbed) []siteTopo {
	if tb == nil {
		if label == "" {
			return nil
		}
		return []siteTopo{{entry: SiteJSON{Name: label}}}
	}
	var out []siteTopo
	for _, site := range tb.Sites {
		st := siteTopo{entry: SiteJSON{Name: site.Name}}
		for _, cl := range site.Clusters {
			st.entry.Clusters = append(st.entry.Clusters, cl.Name)
			st.entry.Cores += cl.Cores()
		}
		for _, n := range site.Nodes() {
			st.nodes = append(st.nodes, n.Name)
			st.entry.Nodes++
		}
		out = append(out, st)
	}
	return out
}

// handleSites lists the federation layout. Deliberately gate-free: the
// topology is the assembly-time snapshot and node states go through the
// testbed's own mutex, so this listing never queues behind any shard's
// Advance — the property the site-pinned loadgen scenarios lean on.
func (g *Gateway) handleSites(w http.ResponseWriter, r *http.Request) {
	out := SitesJSON{Shards: len(g.shards), Degraded: g.degradedMarker()}
	down := map[string]bool{}
	unreachable := map[string]bool{}
	if out.Degraded != nil {
		for _, name := range out.Degraded.DownSites {
			down[name] = true
		}
		for _, name := range out.Degraded.UnreachableSites {
			unreachable[name] = true
		}
	}
	idxOf := map[string]int{} // site name → position in out.Sites
	for i, s := range g.shards {
		for _, st := range s.sites {
			var states map[string]int
			if s.cfg.TB != nil && len(st.nodes) > 0 {
				states = make(map[string]int, 2)
				for _, name := range st.nodes {
					state, _ := s.cfg.TB.NodeState(name)
					states[state.String()]++
				}
			}
			j, seen := idxOf[st.entry.Name]
			if !seen {
				entry := st.entry
				entry.Clusters = append([]string(nil), st.entry.Clusters...)
				entry.Shard = i
				entry.Down = down[entry.Name]
				entry.Unreachable = unreachable[entry.Name]
				entry.States = states
				idxOf[entry.Name] = len(out.Sites)
				out.Sites = append(out.Sites, entry)
				continue
			}
			// Another micro-shard of an already-listed site: fold it in.
			// Shard stays the coordinator's index.
			e := &out.Sites[j]
			e.Clusters = append(e.Clusters, st.entry.Clusters...)
			e.Nodes += st.entry.Nodes
			e.Cores += st.entry.Cores
			for k, v := range states {
				if e.States == nil {
					e.States = map[string]int{}
				}
				e.States[k] += v
			}
		}
	}
	writeJSON(w, out)
}

// handleSiteScoped dispatches /sites/{site}/... to the shards owning the
// site. Monolithic gateways serve these too: the single shard owns every
// site and each view narrows to the requested one (resources and
// monitoring filter by site; jobs list only jobs tied to the site;
// submissions are validated against — and pinned to — the site). Under
// micro-sharding reads merge over the site's cluster shards and
// submissions probe them in cluster order; the ci subtree proxies to the
// coordinator cluster's server.
func (g *Gateway) handleSiteScoped(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sites/")
	site, sub, _ := strings.Cut(rest, "/")
	if site == "" {
		http.NotFound(w, r)
		return
	}
	ss := g.siteShards[site]
	if len(ss) == 0 {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown site %q", site))
		return
	}
	if !g.siteAvailable(site) {
		// The site is lost to an active grid event: every scoped view of it
		// is 503-by-design until heal. Partitioned sites do not take this
		// path — their shard is alive, only the merge plane lost them.
		siteUnavailable(w, site)
		return
	}
	requireMethod := func(m string) bool {
		if r.Method == m {
			return true
		}
		w.Header().Set("Allow", m)
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		return false
	}
	switch sub {
	case "oar/resources":
		if requireMethod(http.MethodGet) {
			g.serveOARResources(w, r, site)
		}
	case "oar/jobs":
		if requireMethod(http.MethodGet) {
			g.serveOARJobs(w, r, ss, site)
		}
	case "oar/submit":
		if requireMethod(http.MethodPost) {
			g.serveOARSubmit(w, r, ss, site)
		}
	case "monitor/metrics":
		if requireMethod(http.MethodGet) {
			g.serveMonitorMetrics(w, r, site)
		}
	case "ref/inventory":
		if requireMethod(http.MethodGet) {
			g.serveSiteInventory(w, r, site)
		}
	case "ref/diff":
		if requireMethod(http.MethodGet) {
			g.serveSiteDiff(w, r, site)
		}
	default:
		if sub == "ci" || strings.HasPrefix(sub, "ci/") {
			// The site's CI view is its coordinator cluster's server: under
			// micro-sharding that is where the federation files grid tickets,
			// so the scoped tree stays one coherent Jenkins.
			var target *shard
			for _, s := range ss {
				if s.cfg.CI != nil {
					target = s
					break
				}
			}
			if target == nil {
				notConfigured(w, "ci")
				return
			}
			proxy := http.StripPrefix("/sites/"+site+"/ci", target.cfg.CI.Handler())
			target.rlocked(func() { proxy.ServeHTTP(w, r) })
			return
		}
		http.NotFound(w, r)
	}
}
