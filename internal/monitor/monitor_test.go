package monitor

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func setup(seed int64) (*simclock.Clock, *testbed.Testbed, *faults.Injector, *Collector) {
	c := simclock.New(seed)
	tb := testbed.Default()
	inj := faults.NewInjector(c, tb)
	return c, tb, inj, NewCollector(c, tb, inj)
}

func TestSamplesAtOneHz(t *testing.T) {
	c, _, _, col := setup(1)
	c.RunUntil(2 * simclock.Minute)
	ss, err := col.Query(MetricPowerW, "taurus-1.lyon", 0, simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 61 {
		t.Fatalf("got %d samples over 60s, want 61", len(ss))
	}
	if err := CheckRate(ss); err != nil {
		t.Fatal(err)
	}
}

func TestPowerRisesWithLoad(t *testing.T) {
	c, _, _, col := setup(2)
	node := "taurus-5.lyon"
	c.RunUntil(10 * simclock.Second)
	idle, err := col.Query(MetricPowerW, node, 0, 9*simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	col.SetLoad(node, 1.0, 0)
	c.RunUntil(30 * simclock.Second)
	busy, err := col.Query(MetricPowerW, node, 15*simclock.Second, 29*simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	rise := Mean(busy) - Mean(idle)
	// taurus has 12 cores → peak extra = 108 W.
	if rise < 90 || rise > 125 {
		t.Fatalf("power rise = %.1f W, want ≈108", rise)
	}
}

func TestCablingSwapMisattributesPower(t *testing.T) {
	c, _, inj, col := setup(3)
	a, b := "sol-1.sophia", "sol-2.sophia"
	if _, err := inj.InjectCablingSwap(a, b); err != nil {
		t.Fatal(err)
	}
	// Load node a only.
	col.SetLoad(a, 1.0, 0)
	c.RunUntil(simclock.Minute)

	sa, _ := col.Query(MetricPowerW, a, 30*simclock.Second, 59*simclock.Second)
	sb, _ := col.Query(MetricPowerW, b, 30*simclock.Second, 59*simclock.Second)
	// The power rise shows up on b's series, not a's.
	idle := idlePowerW(mustNode(t, col, a))
	if Mean(sa) > idle+10 {
		t.Fatalf("a's series shows its own load despite swap (%.1f W)", Mean(sa))
	}
	// sol nodes have 4 cores → full-load rise ≈ 36 W.
	if Mean(sb) < idle+25 {
		t.Fatalf("b's series does not show a's load (%.1f W)", Mean(sb))
	}

	// System-level CPU metric is immune (agent runs on the node itself).
	ca, _ := col.Query(MetricCPULoad, a, 30*simclock.Second, 59*simclock.Second)
	if Mean(ca) < 0.99 {
		t.Fatalf("cpu series affected by cabling swap: %v", Mean(ca))
	}
}

func mustNode(t *testing.T, col *Collector, name string) *testbed.Node {
	t.Helper()
	n := col.tb.Node(name)
	if n == nil {
		t.Fatalf("node %s missing", name)
	}
	return n
}

func TestFixingSwapRestoresAttribution(t *testing.T) {
	c, _, inj, col := setup(4)
	a, b := "uvb-1.sophia", "uvb-2.sophia"
	f, _ := inj.InjectCablingSwap(a, b)
	inj.Fix(f.ID)
	col.SetLoad(a, 1.0, 0)
	c.RunUntil(simclock.Minute)
	sa, _ := col.Query(MetricPowerW, a, 30*simclock.Second, 59*simclock.Second)
	if Mean(sa) < idlePowerW(mustNode(t, col, a))+30 {
		t.Fatalf("a's own load invisible after fix: %.1f", Mean(sa))
	}
}

func TestNetMetric(t *testing.T) {
	c, _, _, col := setup(5)
	col.SetLoad("grisou-1.nancy", 0.2, 800)
	c.RunUntil(10 * simclock.Second)
	ss, err := col.Query(MetricNetMbps, "grisou-1.nancy", 5*simclock.Second, 9*simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if Mean(ss) != 800 {
		t.Fatalf("net = %v, want 800", Mean(ss))
	}
}

func TestLoadHistoryStepFunction(t *testing.T) {
	c, _, _, col := setup(6)
	n := "sol-10.sophia"
	c.RunUntil(10 * simclock.Second)
	col.SetLoad(n, 1.0, 0)
	c.RunUntil(20 * simclock.Second)
	col.SetLoad(n, 0, 0)
	c.RunUntil(40 * simclock.Second)

	ss, _ := col.Query(MetricCPULoad, n, 0, 39*simclock.Second)
	for _, s := range ss {
		sec := int64(s.T / simclock.Second)
		want := 0.0
		if sec >= 10 && sec < 20 {
			want = 1.0
		}
		if math.Abs(s.V-want) > 1e-9 {
			t.Fatalf("load at %ds = %v, want %v", sec, s.V, want)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	c, _, inj, col := setup(7)
	c.RunUntil(simclock.Minute)
	if _, err := col.Query(MetricPowerW, "ghost-1.limbo", 0, 1); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := col.Query("temperature", "sol-1.sophia", 0, 1); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := col.Query(MetricPowerW, "sol-1.sophia", simclock.Minute, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
	inj.InjectService("sophia", "kwapi", 1.0)
	if _, err := col.Query(MetricPowerW, "sol-1.sophia", 0, 1); err == nil {
		t.Fatal("query succeeded with dead kwapi")
	}
	if _, err := col.Query(MetricPowerW, "taurus-1.lyon", 0, 1); err != nil {
		t.Fatalf("other site affected: %v", err)
	}
}

func TestQueryClampsToNow(t *testing.T) {
	c, _, _, col := setup(8)
	c.RunUntil(10 * simclock.Second)
	ss, err := col.Query(MetricPowerW, "sol-1.sophia", 0, simclock.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 11 {
		t.Fatalf("got %d samples, want 11 (clamped to now)", len(ss))
	}
}

func TestNoiseIsDeterministicAndBounded(t *testing.T) {
	for _, node := range []string{"a", "sol-1.sophia", "graphene-9.nancy"} {
		for sec := int64(0); sec < 1000; sec++ {
			n1, n2 := noise(node, sec), noise(node, sec)
			if n1 != n2 {
				t.Fatal("noise not deterministic")
			}
			if n1 < -1 || n1 >= 1 {
				t.Fatalf("noise %v out of [-1,1)", n1)
			}
		}
	}
}

func TestSetLoadValidation(t *testing.T) {
	_, _, _, col := setup(9)
	if err := col.SetLoad("ghost-1.limbo", 1, 0); err == nil {
		t.Fatal("unknown node accepted")
	}
	// Clamping.
	col.SetLoad("sol-1.sophia", 5.0, 0)
	lc := col.loadAt("sol-1.sophia", 0)
	if lc.cpu != 1.0 {
		t.Fatalf("cpu not clamped: %v", lc.cpu)
	}
	col.SetLoad("sol-1.sophia", -2, 0)
	lc = col.loadAt("sol-1.sophia", 0)
	if lc.cpu != 0 {
		t.Fatalf("negative cpu not clamped: %v", lc.cpu)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestCheckRateDetectsGaps(t *testing.T) {
	good := []Sample{{T: 0}, {T: simclock.Second}, {T: 2 * simclock.Second}}
	if err := CheckRate(good); err != nil {
		t.Fatal(err)
	}
	bad := []Sample{{T: 0}, {T: 3 * simclock.Second}}
	if err := CheckRate(bad); err == nil {
		t.Fatal("gap not detected")
	}
	if err := CheckRate(nil); err == nil {
		t.Fatal("empty series accepted")
	}
}
